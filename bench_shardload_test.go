// Shard-native loading benchmarks (the pr5-shardload series of
// BENCH_kernels.json): the full-decode baselines (ReadBinary and the
// mapped reader decoding everything) against what a distributed rank
// actually pays — mapping the file and decoding only the quarter of
// the shards covering its own row range — plus the bounded-memory
// stream iterator. Same ml-20m 5%-scale synthetic as BenchmarkIngest,
// written with 2^14-entry shards (~60 panels). Record with:
//
//	go test -run='^$' -bench=BenchmarkShardLoad -benchmem . |
//	    go run ./cmd/bench2json -label pr5-shardload -out BENCH_kernels.json
package bpmf_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/partition"
	"repro/internal/sparse"
)

var shardLoadData struct {
	once sync.Once
	path string
	csr  *sparse.CSR
	size int64
}

func shardLoadSetup(b *testing.B) (string, *sparse.CSR, int64) {
	b.Helper()
	shardLoadData.once.Do(func() {
		csr, _, _ := ingestSetup(b)
		dir, err := os.MkdirTemp("", "bpmf-shardload")
		if err != nil {
			panic(err)
		}
		path := filepath.Join(dir, "bench.bcsr")
		f, err := os.Create(path)
		if err != nil {
			panic(err)
		}
		if err := sparse.WriteBinarySharded(f, csr, 1<<14); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			panic(err)
		}
		shardLoadData.path = path
		shardLoadData.csr = csr
		shardLoadData.size = st.Size()
	})
	return shardLoadData.path, shardLoadData.csr, shardLoadData.size
}

func BenchmarkShardLoad(b *testing.B) {
	path, csr, size := shardLoadSetup(b)
	entries := csr.NNZ()

	b.Run("read_binary/ml20m-5pct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			a, err := sparse.ReadBinary(f)
			f.Close()
			if err != nil || a.NNZ() != entries {
				b.Fatalf("read failed: %v", err)
			}
		}
		reportIngest(b, int(size), entries)
	})

	b.Run("mmap_decode_all/ml20m-5pct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mp, err := sparse.OpenBinary(path)
			if err != nil {
				b.Fatal(err)
			}
			a, err := mp.Matrix()
			if err != nil || a.NNZ() != entries {
				b.Fatalf("decode failed: %v", err)
			}
			mp.Close()
		}
		reportIngest(b, int(size), entries)
	})

	// One rank of four: open, assign shards from the table, decode only
	// the own quarter — the cmd/bpmf-dist startup path per rank.
	b.Run("mmap_own_quarter/ml20m-5pct", func(b *testing.B) {
		var ownEntries int64
		for i := 0; i < b.N; i++ {
			mp, err := sparse.OpenBinary(path)
			if err != nil {
				b.Fatal(err)
			}
			panels := partition.PanelsOf(mp)
			bounds := partition.AssignPanels(panels, 4, partition.CostModel{})
			rowLo, rowHi := bounds[1], bounds[2] // rank 1 of 4
			a := &sparse.CSR{M: csr.M, N: csr.N, RowPtr: make([]int64, csr.M+1)}
			for s := range panels.Lo {
				if panels.Lo[s] >= rowLo && panels.Hi[s] <= rowHi {
					if err := mp.DecodePanelInto(a, s); err != nil {
						b.Fatal(err)
					}
				}
			}
			ownEntries = int64(a.NNZ())
			mp.Close()
		}
		b.ReportMetric(float64(ownEntries), "own_entries")
		reportIngest(b, int(size)/4, int(ownEntries))
	})

	b.Run("stream_panels/ml20m-5pct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it, err := sparse.LoadStream(path)
			if err != nil {
				b.Fatal(err)
			}
			var total int
			for it.Next() {
				total += it.Panel().A.NNZ()
			}
			if err := it.Err(); err != nil || total != entries {
				b.Fatalf("stream failed: %v (%d of %d entries)", err, total, entries)
			}
			it.Close()
		}
		reportIngest(b, int(size), entries)
	})
}
