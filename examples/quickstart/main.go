// Quickstart: factorize a tiny hand-made rating matrix, inspect the
// held-out RMSE and make a few predictions.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A toy 6-user x 5-item rating matrix (think movies): users 0-2 like
	// the first two items, users 3-5 like the last two.
	ratings := []bpmf.Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 1, Value: 4}, {User: 0, Item: 3, Value: 1},
		{User: 1, Item: 0, Value: 4}, {User: 1, Item: 1, Value: 5}, {User: 1, Item: 2, Value: 2},
		{User: 2, Item: 0, Value: 5}, {User: 2, Item: 1, Value: 5}, {User: 2, Item: 4, Value: 2},
		{User: 3, Item: 3, Value: 5}, {User: 3, Item: 4, Value: 4}, {User: 3, Item: 0, Value: 1},
		{User: 4, Item: 3, Value: 4}, {User: 4, Item: 4, Value: 5}, {User: 4, Item: 1, Value: 2},
		{User: 5, Item: 3, Value: 5}, {User: 5, Item: 4, Value: 5}, {User: 5, Item: 2, Value: 1},
	}
	data, err := bpmf.DataFromRatings(6, 5, ratings, 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	cfg := bpmf.Defaults()
	cfg.K = 4
	cfg.Iters = 50
	cfg.Burnin = 20
	cfg.ClampMin, cfg.ClampMax = 1, 5
	res, err := bpmf.Train(data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Predicted ratings for unseen (user, item) pairs:")
	fmt.Printf("  user 0 x item 4 (should be low):  %.2f\n", res.Predict(0, 4))
	fmt.Printf("  user 2 x item 2 (should be low):  %.2f\n", res.Predict(2, 2))
	fmt.Printf("  user 4 x item 0 (should be low):  %.2f\n", res.Predict(4, 0))
	fmt.Printf("  user 1 x item 1 (seen, was 5):    %.2f\n", res.Predict(1, 1))
	fmt.Printf("  user 5 x item 4 (seen, was 5):    %.2f\n", res.Predict(5, 4))
	fmt.Printf("throughput: %.0f item updates/s\n", res.UpdatesPerSec())
}
