// Serving: train a model, checkpoint it, load the checkpoint into a
// serving snapshot, and answer the three production query shapes — a
// point prediction with its confidence interval, a top-N recommendation,
// and a cold-start fold-in for a user the chain never saw. A second act
// launches a two-model registry from one JSON config file — the
// multi-model deployment `bpmf-serve -config` runs behind HTTP — and
// hot-reloads one model while the other's answers stay put. A third act
// enables request batching on the registry and drives it with the
// closed-loop load scheduler from cmd/bpmf-load, reading back the
// latency percentiles and checking the batched answers stay
// bit-identical to the per-request path.
//
// This is the paper's end-to-end story in miniature: a long Gibbs run
// publishes its posterior as a checkpoint, and a server turns that
// checkpoint into live predictions with the uncertainty estimates BPMF
// is valued for.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/config"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func main() {
	// A tiny two-taste world: users 0-2 like items 0-1, users 3-5 like
	// items 3-4; item 2 is polarizing.
	ratings := []bpmf.Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 1, Value: 4}, {User: 0, Item: 3, Value: 1},
		{User: 1, Item: 0, Value: 4}, {User: 1, Item: 1, Value: 5}, {User: 1, Item: 2, Value: 2},
		{User: 2, Item: 0, Value: 5}, {User: 2, Item: 1, Value: 5}, {User: 2, Item: 4, Value: 2},
		{User: 3, Item: 3, Value: 5}, {User: 3, Item: 4, Value: 4}, {User: 3, Item: 0, Value: 1},
		{User: 4, Item: 3, Value: 4}, {User: 4, Item: 4, Value: 5}, {User: 4, Item: 1, Value: 2},
		{User: 5, Item: 3, Value: 5}, {User: 5, Item: 4, Value: 5}, {User: 5, Item: 2, Value: 1},
	}
	data, err := bpmf.DataFromRatings(6, 5, ratings, 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	cfg := bpmf.Defaults()
	cfg.K = 4
	cfg.Iters = 60
	cfg.Burnin = 20
	cfg.ClampMin, cfg.ClampMax = 1, 5

	// Train and publish the chain as a checkpoint file — exactly what
	// `bpmf -ckpt-out` does.
	dir, err := os.MkdirTemp("", "bpmf-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckptPath := filepath.Join(dir, "model.ckpt")
	f, err := os.Create(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bpmf.TrainWithCheckpoint(data, cfg, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// The training matrix doubles as the exclusion list: Recommend skips
	// items a user already rated.
	coo := sparse.NewCOO(6, 5, len(ratings))
	for _, r := range ratings {
		coo.Add(r.User, r.Item, r.Value)
	}

	// Load the checkpoint into a hot-swappable server — what bpmf-serve
	// does behind HTTP.
	srv, err := serve.Open(ckptPath, serve.Options{
		Alpha: cfg.Alpha, ClampMin: 1, ClampMax: 5,
		Exclude: coo.ToCSR(),
	})
	if err != nil {
		log.Fatal(err)
	}
	m := srv.Model()

	p, err := m.Predict(0, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 0 x item 4 (should be low):  %.2f ± %.2f\n", p.Score, p.Std)

	top, err := m.Recommend(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-2 for user 1:")
	for _, it := range top {
		fmt.Printf("  item %d (%.2f)", it.Index, it.Score)
	}
	fmt.Println()

	// Cold start: a brand-new user who loved items 3 and 4 gets a factor
	// row sampled from the posterior conditional — no retraining.
	u, err := m.FoldIn([]int32{3, 4}, []float64{5, 5}, 0)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := m.RecommendVector(u, []int32{3, 4}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folded-in user (likes 3, 4) gets:")
	for _, it := range rec {
		fmt.Printf("  item %d (%.2f)", it.Index, it.Score)
	}
	fmt.Println()

	// --- Act two: a two-model registry from one config file. ---
	//
	// Train a second, longer chain on the same data and publish both
	// checkpoints side by side — a staging model next to production.
	stagingPath := filepath.Join(dir, "staging.ckpt")
	longCfg := cfg
	longCfg.Iters, longCfg.Burnin = 120, 40
	f, err = os.Create(stagingPath)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bpmf.TrainWithCheckpoint(data, longCfg, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// One JSON file declares the whole registry; `bpmf-serve -config`
	// accepts exactly this shape.
	cfgPath := filepath.Join(dir, "serve.json")
	registryJSON := fmt.Sprintf(`{
  "models": {
    "prod":    {"ckpt": %q, "clamp": {"enable": true, "min": 1, "max": 5}},
    "staging": {"ckpt": %q}
  }
}`, ckptPath, stagingPath)
	if err := os.WriteFile(cfgPath, []byte(registryJSON), 0o644); err != nil {
		log.Fatal(err)
	}

	sc := config.DefaultServe()
	if err := config.LoadFile(cfgPath, &sc); err != nil {
		log.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		log.Fatal(err)
	}
	models, err := sc.EffectiveModels()
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]serve.ModelSpec, 0, len(models))
	for name, mc := range models {
		specs = append(specs, serve.ModelSpec{
			Name: name,
			Path: mc.Ckpt,
			Opts: serve.Options{
				Alpha:        mc.Alpha,
				ClampMin:     mc.Clamp.Min,
				ClampMax:     mc.Clamp.Max,
				ClampEnabled: mc.Clamp.Enable,
			},
		})
	}
	reg, err := serve.NewRegistry(specs)
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	fmt.Printf("\nregistry serves %d models: %v\n", reg.Len(), reg.Names())
	for _, name := range reg.Names() {
		msrv, _ := reg.Get(name)
		p, err := msrv.Model().Predict(0, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s  user 0 x item 4: %.2f ± %.2f\n", name, p.Score, p.Std)
	}

	// Hot-reload only staging (a longer retrain just landed); prod's
	// snapshot — and its answers — never move.
	prodSrv, _ := reg.Get("prod")
	prodBefore, err := prodSrv.Model().Predict(0, 4)
	if err != nil {
		log.Fatal(err)
	}
	stagingSrv, _ := reg.Get("staging")
	if err := stagingSrv.Reload(); err != nil {
		log.Fatal(err)
	}
	prodAfter, err := prodSrv.Model().Predict(0, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reloading staging: prod still answers %.2f (was %.2f), staging reloads=%d, prod reloads=%d\n",
		prodAfter.Score, prodBefore.Score, stagingSrv.Reloads.Load(), prodSrv.Reloads.Load())

	// --- Act three: batched serving under load. ---
	//
	// Enable the request batcher on the registry (what bpmf-serve does
	// from its Serving config) and drive the prod route with the same
	// closed-loop scheduler cmd/bpmf-load uses over HTTP — here
	// in-process, so the story runs anywhere. Concurrent VUs get their
	// recommends coalesced into shared panel-blocked scoring flushes;
	// every answer stays bit-identical to the per-request path.
	reg.EnableBatching(serve.DefaultBatchOptions())
	bt := reg.Batcher("prod")
	prodModel := prodSrv.Model()

	sched := load.Config{Mode: "closed", VUs: 8, Duration: 300 * time.Millisecond, Warmup: 50 * time.Millisecond}
	res, err := load.Run(context.Background(), sched, func(ctx context.Context, vu, seq int) (load.Response, error) {
		if _, err := bt.Recommend(prodModel, (vu+seq)%6, 2); err != nil {
			return load.Response{}, err
		}
		return load.Response{Status: 200}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatched load (8 VUs, closed loop): %d requests, p50=%s p99=%s, %.0f req/s, shed=%d\n",
		res.Completed, res.P50, res.P99, res.Throughput, res.Shed)

	// And the answers under load are exactly the quiet-path answers.
	batched, err := bt.Recommend(prodModel, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := prodModel.Recommend(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	same := len(batched) == len(direct)
	for i := 0; same && i < len(batched); i++ {
		same = batched[i] == direct[i]
	}
	fmt.Printf("batched answers bit-identical to per-request path: %v\n", same)
}
