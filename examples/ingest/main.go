// Ingest: the dataset pipeline end to end — generate a MatrixMarket
// export the way an upstream preprocessing job would, convert it to the
// .bcsr binary shard format in bounded memory, verify the two files
// load to the identical matrix, and train on the binary shards.
//
// This is the production startup story: text MatrixMarket is the
// interchange format the paper's ChEMBL/MovieLens tooling emits, but a
// long-running service wants its restarts bottlenecked on checksummed
// binary shards, not on 20M lines of decimal parsing.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/sparse"
)

func main() {
	dir, err := os.MkdirTemp("", "bpmf-ingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mmPath := filepath.Join(dir, "ratings.mtx")
	bcsrPath := filepath.Join(dir, "ratings.bcsr")

	// An ml-20m-shaped dataset at 1% scale (~200k ratings) so the example
	// runs in seconds; datagen -spec ml-20m writes the full thing.
	ds := datagen.Generate(datagen.Scaled(datagen.ML20M(3), 0.01))
	f, err := os.Create(mmPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := sparse.WriteMatrixMarket(f, ds.R); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fi, _ := os.Stat(mmPath)
	fmt.Printf("MatrixMarket export: %d x %d, %d ratings, %.1f MB of text\n",
		ds.R.M, ds.R.N, ds.R.NNZ(), float64(fi.Size())/1e6)

	// Convert to row-panel binary shards (CRC32 per shard). The converter
	// streams: its memory is bounded by the largest shard, not the file.
	start := time.Now()
	stats, err := sparse.Converter{ShardNNZ: 1 << 13}.Convert(mmPath, bcsrPath)
	if err != nil {
		log.Fatal(err)
	}
	bi, _ := os.Stat(bcsrPath)
	fmt.Printf("converted to %d bcsr shards in %v (%.1f MB binary)\n",
		stats.Shards, time.Since(start).Round(time.Millisecond), float64(bi.Size())/1e6)

	// Both files load through the one sniffing entry point, to the same
	// matrix, bit for bit.
	tLoad := time.Now()
	fromText, err := sparse.Load(mmPath)
	if err != nil {
		log.Fatal(err)
	}
	textTime := time.Since(tLoad)
	tLoad = time.Now()
	fromShards, err := sparse.Load(bcsrPath)
	if err != nil {
		log.Fatal(err)
	}
	shardTime := time.Since(tLoad)
	if !sparse.Equal(fromText, fromShards) {
		log.Fatal("text and binary loads disagree")
	}
	fmt.Printf("load: MatrixMarket %v, bcsr %v — identical matrices\n",
		textTime.Round(time.Millisecond), shardTime.Round(time.Millisecond))

	// A serving restart doesn't need the decoded matrix at all: map the
	// shards and read single rows on demand. Only the touched rows'
	// shards are CRC-verified, and co-located processes mapping the
	// same file share page cache instead of private decoded copies.
	mp, err := sparse.OpenBinary(bcsrPath)
	if err != nil {
		log.Fatal(err)
	}
	cols, err := mp.AppendRowCols(nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	st := mp.Stats()
	fmt.Printf("mapped: user 0 has %d ratings; touched %d of %d shards (%.1f kB of %.1f MB)\n",
		len(cols), st.ShardsTouched, mp.Shards(),
		float64(st.PayloadBytesTouched)/1e3, float64(bi.Size())/1e6)
	mp.Close()

	// And a matrix larger than RAM streams panel by panel: peak memory
	// is one shard, not the file.
	it, err := sparse.LoadStream(bcsrPath)
	if err != nil {
		log.Fatal(err)
	}
	panels, maxPanel := 0, 0
	for it.Next() {
		panels++
		if nnz := it.Panel().A.NNZ(); nnz > maxPanel {
			maxPanel = nnz
		}
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	it.Close()
	fmt.Printf("streamed %d panels in bounded memory (largest holds %d entries)\n", panels, maxPanel)

	// Train straight off the shards via the public API.
	data, err := bpmf.DataFromFile(bcsrPath, 0.2, 3)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bpmf.Defaults()
	cfg.K = 8
	cfg.Iters = 6
	cfg.Burnin = 3
	cfg.Threads = 4
	res, err := bpmf.Train(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on the shards: held-out RMSE %.4f\n", res.RMSE())
}
