// MovieLens: a recommender on an ml-20m-shaped dataset with ratings
// clamped to the 0.5-5 star range, comparing engines on the same chain
// (they are bit-identical by construction) and printing the RMSE
// convergence trace the paper's §V-B describes.
//
// Pass a rating matrix file (MatrixMarket .mtx or binary .bcsr, e.g.
// from cmd/datagen) as the first argument to train on it instead of the
// built-in synthetic dataset.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/datagen"
)

func main() {
	var data *bpmf.Data
	var err error
	if len(os.Args) > 1 {
		data, err = bpmf.DataFromFile(os.Args[1], 0.2, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: %d users x %d movies, %d ratings\n",
			os.Args[1], data.NumUsers(), data.NumItems(), data.NumTrain()+data.NumTest())
	} else {
		spec := datagen.Scaled(datagen.ML20M(11), 0.005)
		ds := datagen.Generate(spec)
		fmt.Printf("synthetic MovieLens: %d users x %d movies, %d ratings\n",
			ds.R.M, ds.R.N, ds.R.NNZ())

		var ratings []bpmf.Rating
		for i := 0; i < ds.R.M; i++ {
			cols, vals := ds.R.Row(i)
			for k, c := range cols {
				ratings = append(ratings, bpmf.Rating{User: i, Item: int(c), Value: vals[k]})
			}
		}
		data, err = bpmf.DataFromRatings(ds.R.M, ds.R.N, ratings, 0.2, 11)
		if err != nil {
			log.Fatal(err)
		}
	}

	base := bpmf.Defaults()
	base.K = 16
	base.Iters = 12
	base.Burnin = 6
	base.ClampMin, base.ClampMax = 0.5, 5
	base.Threads = 4

	fmt.Println("\nRMSE convergence (posterior-mean predictor after burn-in):")
	var traces [][]float64
	engines := []bpmf.Engine{bpmf.Sequential, bpmf.WorkSteal, bpmf.Static, bpmf.GraphLab}
	for _, e := range engines {
		cfg := base
		cfg.Engine = e
		res, err := bpmf.Train(data, cfg)
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, res.RMSETrace())
		fmt.Printf("  %-11s final RMSE %.5f  (%.0f updates/s)\n",
			e, res.RMSE(), res.UpdatesPerSec())
	}
	identical := true
	for _, tr := range traces[1:] {
		for i := range tr {
			if tr[i] != traces[0][i] {
				identical = false
			}
		}
	}
	fmt.Printf("\nall engines produced identical RMSE traces: %v\n", identical)
	fmt.Println("(the paper's §V-B claim, provable here because random streams are keyed")
	fmt.Println(" by (iteration, side, item) rather than by thread)")

	fmt.Println("\niter  RMSE (sequential trace)")
	for i, r := range traces[0] {
		fmt.Printf("%4d  %.5f\n", i+1, r)
	}
}
