// Drug discovery: the paper's motivating ChEMBL workload — compounds
// (acting as "users") x protein targets (acting as "movies") with IC50
// activity measurements. A ChEMBL-shaped synthetic dataset is factorized
// with the work-stealing engine and the model is used the way a
// compound-screening pipeline would: rank unmeasured compounds for a
// target.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/datagen"
)

func main() {
	// ChEMBL shape at 2% scale so the example runs in seconds; pass the
	// full spec for the real 483 500 x 5 775 matrix.
	spec := datagen.Scaled(datagen.ChEMBL(7), 0.02)
	ds := datagen.Generate(spec)
	fmt.Printf("synthetic ChEMBL: %d compounds x %d targets, %d activities\n",
		ds.R.M, ds.R.N, ds.R.NNZ())

	var ratings []bpmf.Rating
	for i := 0; i < ds.R.M; i++ {
		cols, vals := ds.R.Row(i)
		for k, c := range cols {
			ratings = append(ratings, bpmf.Rating{User: i, Item: int(c), Value: vals[k]})
		}
	}
	data, err := bpmf.DataFromRatings(ds.R.M, ds.R.N, ratings, 0.2, 7)
	if err != nil {
		log.Fatal(err)
	}

	cfg := bpmf.Defaults()
	cfg.K = 16
	cfg.Iters = 15
	cfg.Burnin = 8
	cfg.Engine = bpmf.WorkSteal
	cfg.Threads = 4
	res, err := bpmf.Train(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out RMSE: %.4f (planted noise floor %.2f)\n", res.RMSE(), spec.NoiseSD)

	// Virtual screen: rank all compounds for target 0 by predicted
	// activity and show the top candidates.
	target := 0
	type hit struct {
		compound int
		score    float64
	}
	hits := make([]hit, ds.R.M)
	for c := 0; c < ds.R.M; c++ {
		hits[c] = hit{c, res.Predict(c, target)}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].score > hits[b].score })
	fmt.Printf("top predicted binders for target %d:\n", target)
	for _, h := range hits[:5] {
		fmt.Printf("  compound %6d  predicted activity %.3f\n", h.compound, h.score)
	}
	kc := res.KernelCounts()
	fmt.Printf("kernel mix: %d rank-one, %d serial Cholesky, %d parallel Cholesky updates\n",
		kc[0], kc[1], kc[2])
}
