// Distributed: run BPMF on an in-process virtual cluster (four ranks over
// the channel-backed message-passing fabric), with the Section IV
// machinery visible: workload-balanced contiguous partitioning, ghost
// routing, coalesced asynchronous item exchange, and deterministic
// hyperparameter allreduce. Prints per-rank traffic statistics.
//
// For real multi-process runs over TCP, see cmd/bpmf-dist.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/sparse"
)

func main() {
	ds := datagen.Generate(datagen.Small(5))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, 5)
	prob := core.NewProblem(train, test)
	fmt.Printf("dataset: %d x %d, %d train / %d test ratings\n",
		train.M, train.N, train.NNZ(), len(test))

	cfg := core.DefaultConfig()
	cfg.K = 16
	cfg.Iters = 12
	cfg.Burnin = 6

	for _, ranks := range []int{1, 2, 4} {
		res, stats, err := dist.RunInProc(cfg, prob, dist.Options{
			Ranks:          ranks,
			ThreadsPerRank: 1,
			BufferSize:     4 << 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d rank(s): final RMSE %.5f, %.0f updates/s\n",
			ranks, res.FinalRMSE(), res.UpdatesPerSec())
		for _, s := range stats {
			fmt.Printf("  rank %d: %5d items sent in %3d msgs, %5d ghosts in, compute %6s, wait %6s, overlap %6s\n",
				s.Rank, s.ItemsSent, s.Comm.MsgsSent, s.GhostsRecv,
				s.ComputeTime.Round(100*time.Microsecond),
				s.WaitTime.Round(100*time.Microsecond),
				s.OverlapTime.Round(100*time.Microsecond))
		}
	}
	fmt.Println("\nNote: the RMSE is the same at every rank count — the distributed chain")
	fmt.Println("reproduces the sequential sampler bit-for-bit when the sequential run is")
	fmt.Println("configured with the partition's moment grouping (see internal/dist tests).")
}
