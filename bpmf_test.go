package bpmf

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sparse"
)

// syntheticRatings converts a generated dataset to the public Rating type.
func syntheticRatings(t *testing.T, seed uint64) (int, int, []Rating) {
	t.Helper()
	ds := datagen.Generate(datagen.Small(seed))
	var ratings []Rating
	for i := 0; i < ds.R.M; i++ {
		cols, vals := ds.R.Row(i)
		for k, c := range cols {
			ratings = append(ratings, Rating{User: i, Item: int(c), Value: vals[k]})
		}
	}
	return ds.R.M, ds.R.N, ratings
}

func quickConfig(e Engine) Config {
	cfg := Defaults()
	cfg.K = 8
	cfg.Iters = 6
	cfg.Burnin = 3
	cfg.Engine = e
	cfg.Threads = 2
	cfg.Ranks = 2
	return cfg
}

func TestTrainAllEngines(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 41)
	data, err := DataFromRatings(m, n, ratings, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	var rmses []float64
	for _, e := range []Engine{Sequential, WorkSteal, Static, GraphLab, Distributed} {
		res, err := Train(data, quickConfig(e))
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if math.IsNaN(res.RMSE()) || res.RMSE() <= 0 {
			t.Fatalf("%v: bad RMSE %v", e, res.RMSE())
		}
		rmses = append(rmses, res.RMSE())
	}
	// §V-B: every version reaches the same accuracy. The in-process
	// engines share the chain exactly; the distributed engine's moment
	// grouping differs (partition boundaries), so allow a statistical
	// tolerance there.
	for i := 1; i < 4; i++ {
		if rmses[i] != rmses[0] {
			t.Fatalf("engine %d RMSE %v != sequential %v", i, rmses[i], rmses[0])
		}
	}
	if math.Abs(rmses[4]-rmses[0]) > 0.1 {
		t.Fatalf("distributed RMSE %v too far from sequential %v", rmses[4], rmses[0])
	}
}

func TestPredictIsFinite(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 42)
	data, err := DataFromRatings(m, n, ratings, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(data, quickConfig(WorkSteal))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 0}, {m - 1, n - 1}, {m / 2, n / 3}} {
		p := res.Predict(pair[0], pair[1])
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("non-finite prediction at %v", pair)
		}
	}
	if len(res.UserFactors(0)) != 8 || len(res.ItemFactors(0)) != 8 {
		t.Fatal("factor vectors must have K entries")
	}
}

func TestDistributedReorderedPredictionsConsistent(t *testing.T) {
	// With reordering on, factors must be mapped back to original index
	// space: predictions on training pairs should correlate with the
	// observed values (sanity that rows weren't scrambled).
	m, n, ratings := syntheticRatings(t, 43)
	data, err := DataFromRatings(m, n, ratings, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(Distributed)
	cfg.Reorder = true
	cfg.Iters = 10
	cfg.Burnin = 5
	res, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var se, n2 float64
	for _, r := range ratings[:500] {
		d := res.Predict(r.User, r.Item) - r.Value
		se += d * d
		n2++
	}
	trainRMSE := math.Sqrt(se / n2)
	if trainRMSE > 0.8 {
		t.Fatalf("training RMSE %v too high — factors likely scrambled", trainRMSE)
	}
}

func TestDataValidation(t *testing.T) {
	if _, err := DataFromRatings(0, 5, []Rating{{0, 0, 1}}, 0, 1); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := DataFromRatings(5, 5, nil, 0, 1); err == nil {
		t.Fatal("expected empty-ratings error")
	}
	if _, err := DataFromRatings(2, 2, []Rating{{5, 0, 1}}, 0, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := Train(nil, Defaults()); err == nil {
		t.Fatal("expected nil-data error")
	}
}

func TestDataAccessors(t *testing.T) {
	data, err := DataFromRatings(4, 3, []Rating{
		{0, 0, 1}, {1, 1, 2}, {2, 2, 3}, {3, 0, 4}, {0, 1, 5},
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if data.NumUsers() != 4 || data.NumItems() != 3 {
		t.Fatal("dims wrong")
	}
	if data.NumTrain() != 5 || data.NumTest() != 0 {
		t.Fatal("counts wrong without split")
	}
}

func TestDataFromMatrixMarket(t *testing.T) {
	var buf bytes.Buffer
	ds := datagen.Generate(datagen.Tiny(9))
	if err := sparse.WriteMatrixMarket(&buf, ds.R); err != nil {
		t.Fatal(err)
	}
	data, err := DataFromMatrixMarket(&buf, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if data.NumUsers() != ds.R.M || data.NumTrain()+data.NumTest() != ds.R.NNZ() {
		t.Fatal("MatrixMarket load mismatch")
	}
	if _, err := DataFromMatrixMarket(bytes.NewBufferString("junk"), 0, 1); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestEngineNames(t *testing.T) {
	names := map[Engine]string{
		Sequential: "sequential", WorkSteal: "worksteal", Static: "static",
		GraphLab: "graphlab", Distributed: "distributed", Engine(99): "unknown",
	}
	for e, want := range names {
		if e.String() != want {
			t.Fatalf("Engine(%d).String() = %q", e, e.String())
		}
	}
}

func TestUnknownEngineErrors(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 44)
	data, _ := DataFromRatings(m, n, ratings, 0, 1)
	cfg := Defaults()
	cfg.Engine = Engine(99)
	if _, err := Train(data, cfg); err == nil {
		t.Fatal("expected unknown-engine error")
	}
}

func TestRMSETraceShape(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 45)
	data, _ := DataFromRatings(m, n, ratings, 0.2, 7)
	cfg := quickConfig(Sequential)
	res, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RMSETrace()) != cfg.Iters || len(res.SampleRMSETrace()) != cfg.Iters {
		t.Fatal("trace length mismatch")
	}
	// Traces are defensive copies.
	res.RMSETrace()[0] = -1
	if res.RMSETrace()[0] == -1 {
		t.Fatal("RMSETrace must copy")
	}
	var counts int64
	for _, c := range res.KernelCounts() {
		counts += c
	}
	if counts <= 0 {
		t.Fatal("kernel counts empty")
	}
	if res.UpdatesPerSec() <= 0 {
		t.Fatal("throughput not positive")
	}
}
