package bpmf

import (
	"bytes"
	"strings"
	"testing"
)

// TestResumeWithCheckpointMatchesOneShot: interrupting a chain at a
// checkpoint and resuming it with ResumeWithCheckpoint must reproduce
// the uninterrupted chain bit-for-bit — RMSE trace, predictions, and
// the re-serialized checkpoint bytes.
func TestResumeWithCheckpointMatchesOneShot(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 7)
	data, err := DataFromRatings(m, n, ratings, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(Sequential)

	// One-shot reference to cfg.Iters.
	var oneShot bytes.Buffer
	ref, err := TrainWithCheckpoint(data, cfg, &oneShot)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: stop partway (same Burnin — it decides which
	// iterations feed the posterior accumulators, so it is part of the
	// chain's identity), checkpoint, resume to the full length.
	half := cfg
	half.Iters = cfg.Iters - 2
	var mid bytes.Buffer
	if _, err := TrainWithCheckpoint(data, half, &mid); err != nil {
		t.Fatal(err)
	}
	var final bytes.Buffer
	res, err := ResumeWithCheckpoint(data, cfg, &mid, &final)
	if err != nil {
		t.Fatal(err)
	}

	refTrace, resTrace := ref.RMSETrace(), res.RMSETrace()
	if len(refTrace) != len(resTrace) {
		t.Fatalf("trace length %d, want %d", len(resTrace), len(refTrace))
	}
	for i := range refTrace {
		if refTrace[i] != resTrace[i] {
			t.Fatalf("iteration %d: resumed RMSE %v, one-shot %v", i, resTrace[i], refTrace[i])
		}
	}
	if !bytes.Equal(oneShot.Bytes(), final.Bytes()) {
		t.Fatal("resumed checkpoint bytes differ from the one-shot chain's")
	}
	for u := 0; u < m; u += 31 {
		for i := 0; i < n; i += 17 {
			if ref.Predict(u, i) != res.Predict(u, i) {
				t.Fatalf("prediction (%d, %d) differs after resume", u, i)
			}
		}
	}
}

func TestResumeWithCheckpointRejects(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 7)
	data, err := DataFromRatings(m, n, ratings, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(Sequential)
	var ckpt bytes.Buffer
	if _, err := TrainWithCheckpoint(data, cfg, &ckpt); err != nil {
		t.Fatal(err)
	}

	// A finished chain cannot be "resumed" to the same length.
	_, err = ResumeWithCheckpoint(data, cfg, bytes.NewReader(ckpt.Bytes()), nil)
	if err == nil || !strings.Contains(err.Error(), "must exceed") {
		t.Fatalf("resume to the same iteration count accepted: %v", err)
	}

	// Seed mismatch is the lineage guard at the training layer.
	bad := cfg
	bad.Seed = cfg.Seed + 1
	bad.Iters = cfg.Iters + 2
	if _, err := ResumeWithCheckpoint(data, bad, bytes.NewReader(ckpt.Bytes()), nil); err == nil {
		t.Fatal("seed mismatch accepted")
	}

	if _, err := ResumeWithCheckpoint(nil, cfg, bytes.NewReader(ckpt.Bytes()), nil); err == nil {
		t.Fatal("nil data accepted")
	}

	// Garbage checkpoint bytes fail cleanly.
	grow := cfg
	grow.Iters = cfg.Iters + 2
	if _, err := ResumeWithCheckpoint(data, grow, strings.NewReader("not a checkpoint"), nil); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}
