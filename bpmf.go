// Package bpmf is a Go implementation of Distributed Bayesian
// Probabilistic Matrix Factorization (Vander Aa, Chakroun, Haber —
// IEEE CLUSTER 2016): the BPMF Gibbs sampler of Salakhutdinov & Mnih with
// the paper's multi-core work-stealing engine, OpenMP-style and
// GraphLab-style baselines, and a distributed engine with asynchronous
// buffered communication over a hand-rolled message-passing layer.
//
// Quick start:
//
//	ratings := []bpmf.Rating{{User: 0, Item: 1, Value: 4.5}, ...}
//	res, err := bpmf.Train(bpmf.DataFromRatings(nUsers, nItems, ratings), bpmf.Defaults())
//	fmt.Println(res.RMSE())            // held-out accuracy
//	fmt.Println(res.Predict(0, 7))     // predicted rating
//
// Engine selection, thread/rank counts and sampler hyperparameters are
// all on Config; every engine samples the identical Markov chain for a
// given Config (see the package's DESIGN.md).
package bpmf

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graphlab"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/sparse"
)

// Rating is one observed (user, item, value) triple. Users and items are
// dense 0-based indices.
type Rating struct {
	User, Item int
	Value      float64
}

// Data is a prepared training problem: a sparse rating matrix plus a
// held-out test set.
type Data struct {
	prob *core.Problem
}

// NumUsers returns the number of user rows.
func (d *Data) NumUsers() int { return d.prob.R.M }

// NumItems returns the number of item (movie) columns.
func (d *Data) NumItems() int { return d.prob.R.N }

// NumTrain returns the number of training ratings.
func (d *Data) NumTrain() int { return d.prob.R.NNZ() }

// NumTest returns the number of held-out ratings.
func (d *Data) NumTest() int { return len(d.prob.Test) }

// DataFromRatings builds a training problem from raw ratings, holding
// out testFrac of them (default 0 = no test set) for RMSE evaluation.
// The split is deterministic in seed and never strands a user or item
// without training data.
func DataFromRatings(nUsers, nItems int, ratings []Rating, testFrac float64, seed uint64) (*Data, error) {
	if nUsers < 1 || nItems < 1 {
		return nil, fmt.Errorf("bpmf: need positive matrix dimensions, got %dx%d", nUsers, nItems)
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("bpmf: no ratings")
	}
	coo := sparse.NewCOO(nUsers, nItems, len(ratings))
	for _, r := range ratings {
		if r.User < 0 || r.User >= nUsers || r.Item < 0 || r.Item >= nItems {
			return nil, fmt.Errorf("bpmf: rating (%d, %d) outside %dx%d", r.User, r.Item, nUsers, nItems)
		}
		coo.Add(r.User, r.Item, r.Value)
	}
	full := coo.ToCSR()
	var train *sparse.CSR
	var test []sparse.Entry
	if testFrac > 0 {
		train, test = sparse.SplitTrainTest(full, testFrac, seed)
	} else {
		train = full
	}
	return &Data{prob: core.NewProblem(train, test)}, nil
}

// DataFromMatrixMarket reads a MatrixMarket coordinate file as the rating
// matrix and holds out testFrac for evaluation.
func DataFromMatrixMarket(r io.Reader, testFrac float64, seed uint64) (*Data, error) {
	full, err := sparse.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	return dataFromMatrix(full, testFrac, seed), nil
}

// DataFromFile reads the rating matrix at path, sniffing the on-disk
// format — MatrixMarket text (parsed with the parallel ingestion path)
// or .bcsr binary shards (written by `datagen -out x.bcsr` or
// sparse.WriteBinary) — and holds out testFrac for evaluation. Malformed
// or corrupt files of either format are reported as errors.
func DataFromFile(path string, testFrac float64, seed uint64) (*Data, error) {
	full, err := sparse.Load(path)
	if err != nil {
		return nil, err
	}
	return dataFromMatrix(full, testFrac, seed), nil
}

func dataFromMatrix(full *sparse.CSR, testFrac float64, seed uint64) *Data {
	var train *sparse.CSR
	var test []sparse.Entry
	if testFrac > 0 {
		train, test = sparse.SplitTrainTest(full, testFrac, seed)
	} else {
		train = full
	}
	return &Data{prob: core.NewProblem(train, test)}
}

// Engine selects the execution strategy.
type Engine int

// Available engines. All sample the identical chain for equal Config.
const (
	// Sequential is the single-threaded reference sampler.
	Sequential Engine = iota
	// WorkSteal is the paper's TBB-style engine: work-stealing item
	// scheduling with nested parallelism for heavy items.
	WorkSteal
	// Static is the OpenMP-style engine: static contiguous chunks.
	Static
	// GraphLab is the synchronous vertex-engine baseline of Figure 3.
	GraphLab
	// Distributed runs an in-process virtual cluster over the message-
	// passing layer (Config.Ranks nodes, Config.Threads per node). Use
	// cmd/bpmf-dist for real multi-process TCP runs.
	Distributed
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case Sequential:
		return "sequential"
	case WorkSteal:
		return "worksteal"
	case Static:
		return "static"
	case GraphLab:
		return "graphlab"
	case Distributed:
		return "distributed"
	default:
		return "unknown"
	}
}

// Config controls training. Zero values fall back to Defaults().
type Config struct {
	// K is the number of latent features.
	K int
	// Alpha is the observation precision.
	Alpha float64
	// Iters and Burnin control the Gibbs chain; samples after Burnin
	// feed the posterior-mean predictor.
	Iters, Burnin int
	// Seed drives all keyed random streams (schedule-independent).
	Seed uint64
	// Engine selects the execution strategy.
	Engine Engine
	// Threads is the worker count for multi-core engines (and per-rank
	// threads for Distributed). 0 means 1.
	Threads int
	// Ranks is the virtual node count for the Distributed engine.
	Ranks int
	// ClampMin/ClampMax clip predictions to a rating range (0,0 = off).
	ClampMin, ClampMax float64
	// BufferBytes is the distributed coalescing buffer (0 = 64 KiB).
	BufferBytes int
	// Reorder applies the communication-minimizing reordering before
	// distributed partitioning.
	Reorder bool
}

// Defaults returns the paper's default configuration: K = 32, alpha = 2,
// 20 iterations with 10 burn-in, work-stealing engine.
func Defaults() Config {
	return Config{
		K: 32, Alpha: 2, Iters: 20, Burnin: 10, Seed: 42,
		Engine: WorkSteal, Threads: 1, Ranks: 1,
	}
}

// toCore converts the public config to the internal one, validating it at
// the public boundary: zero fields fall back to Defaults(), negative
// fields are rejected, and chain-length consistency (Burnin < Iters —
// otherwise no post-burn-in samples would remain and every posterior mean
// would be NaN) is checked on the *effective* values, so the outcome does
// not depend on which of Iters/Burnin was left to default.
func (c Config) toCore() (core.Config, error) {
	cc := core.DefaultConfig()
	switch {
	case c.K < 0:
		return cc, fmt.Errorf("bpmf: K must be >= 0 (0 = default %d), got %d", cc.K, c.K)
	case c.Alpha < 0:
		return cc, fmt.Errorf("bpmf: Alpha must be >= 0 (0 = default %g), got %g", cc.Alpha, c.Alpha)
	case c.Iters < 0:
		return cc, fmt.Errorf("bpmf: Iters must be >= 0 (0 = default %d), got %d", cc.Iters, c.Iters)
	case c.Burnin < 0:
		return cc, fmt.Errorf("bpmf: Burnin must be >= 0, got %d", c.Burnin)
	}
	if c.K > 0 {
		cc.K = c.K
	}
	if c.Alpha > 0 {
		cc.Alpha = c.Alpha
	}
	if c.Iters > 0 {
		cc.Iters = c.Iters
	}
	if c.Burnin > 0 || c.Iters > 0 {
		// The chain lengths are taken together: leaving both zero means the
		// default 20/10 chain, setting either means Burnin is exactly
		// c.Burnin (zero = no burn-in), never a leftover default.
		cc.Burnin = c.Burnin
	}
	if cc.Burnin >= cc.Iters {
		return cc, fmt.Errorf(
			"bpmf: Burnin (%d) must be less than Iters (%d): no post-burn-in samples would remain for the posterior mean",
			cc.Burnin, cc.Iters)
	}
	cc.Seed = c.Seed
	cc.ClampMin, cc.ClampMax = c.ClampMin, c.ClampMax
	return cc, nil
}

// Result holds a trained model and its evaluation trace.
type Result struct {
	res  *core.Result
	data *Data
}

// RMSE returns the final posterior-mean held-out RMSE (NaN without a
// test set).
func (r *Result) RMSE() float64 { return r.res.FinalRMSE() }

// RMSETrace returns the posterior-mean RMSE after each iteration.
func (r *Result) RMSETrace() []float64 {
	return append([]float64(nil), r.res.AvgRMSE...)
}

// SampleRMSETrace returns each iteration's single-sample RMSE.
func (r *Result) SampleRMSETrace() []float64 {
	return append([]float64(nil), r.res.SampleRMSE...)
}

// Predict returns the model's rating estimate for (user, item) from the
// final factor sample, or NaN if either index is out of range.
func (r *Result) Predict(user, item int) float64 {
	if user < 0 || user >= r.res.U.Rows || item < 0 || item >= r.res.V.Rows {
		return math.NaN()
	}
	return la.Dot(r.res.U.Row(user), r.res.V.Row(item))
}

// UserFactors returns a copy of the user's latent feature vector, or nil
// if user is out of range.
func (r *Result) UserFactors(user int) []float64 {
	if user < 0 || user >= r.res.U.Rows {
		return nil
	}
	return append([]float64(nil), r.res.U.Row(user)...)
}

// ItemFactors returns a copy of the item's latent feature vector, or nil
// if item is out of range.
func (r *Result) ItemFactors(item int) []float64 {
	if item < 0 || item >= r.res.V.Rows {
		return nil
	}
	return append([]float64(nil), r.res.V.Row(item)...)
}

// UpdatesPerSec reports the paper's throughput metric.
func (r *Result) UpdatesPerSec() float64 { return r.res.UpdatesPerSec() }

// PredictionInterval is a held-out prediction with its posterior
// uncertainty — the confidence intervals the paper's introduction lists
// among BPMF's advantages over point-estimate factorization.
type PredictionInterval struct {
	User, Item int
	Actual     float64
	// Mean is the posterior-mean prediction; Std the predictive standard
	// deviation (posterior spread of u·v plus 1/Alpha observation noise).
	Mean, Std float64
}

// Intervals returns posterior predictive intervals for every held-out
// rating (nil if no test set was held out or burn-in never completed).
func (r *Result) Intervals() []PredictionInterval {
	if len(r.res.Intervals) == 0 {
		return nil
	}
	out := make([]PredictionInterval, len(r.res.Intervals))
	for i, iv := range r.res.Intervals {
		out[i] = PredictionInterval{
			User: int(iv.Row), Item: int(iv.Col),
			Actual: iv.Actual, Mean: iv.Mean, Std: iv.Std,
		}
	}
	return out
}

// KernelCounts reports how many item updates used each Figure 2 kernel:
// rank-one, serial Cholesky, parallel Cholesky.
func (r *Result) KernelCounts() [3]int64 { return r.res.KernelCounts }

// Train runs BPMF on the data with the chosen engine.
func Train(data *Data, cfg Config) (*Result, error) {
	if data == nil || data.prob == nil {
		return nil, fmt.Errorf("bpmf: nil data")
	}
	cc, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	var res *core.Result
	switch cfg.Engine {
	case Sequential:
		var s *core.Sampler
		s, err = core.NewSampler(cc, data.prob)
		if err == nil {
			res = s.Run()
		}
	case WorkSteal:
		res, err = mc.Run(mc.WorkSteal, cc, data.prob, threads)
	case Static:
		res, err = mc.Run(mc.Static, cc, data.prob, threads)
	case GraphLab:
		res, _, err = graphlab.Run(cc, data.prob, threads)
	case Distributed:
		ranks := cfg.Ranks
		if ranks < 1 {
			ranks = 1
		}
		res, _, err = dist.RunInProc(cc, data.prob, dist.Options{
			Ranks:          ranks,
			ThreadsPerRank: threads,
			BufferSize:     cfg.BufferBytes,
			Reorder:        cfg.Reorder,
		})
	default:
		err = fmt.Errorf("bpmf: unknown engine %d", cfg.Engine)
	}
	if err != nil {
		return nil, err
	}
	return &Result{res: res, data: data}, nil
}

// TrainWithCheckpoint trains like Train and then serializes a resumable
// snapshot of the finished chain to w — the file cmd/bpmf-serve loads
// into a serving model. The snapshot is produced by the sequential
// reference sampler regardless of cfg.Engine: every engine samples the
// identical chain for a given Config, so the checkpoint bytes are the
// same ones any engine's run would yield, and only wall-clock time
// differs. Training errors and checkpoint I/O errors (full disk,
// closed pipe) are both reported.
func TrainWithCheckpoint(data *Data, cfg Config, w io.Writer) (*Result, error) {
	if data == nil || data.prob == nil {
		return nil, fmt.Errorf("bpmf: nil data")
	}
	cc, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	s, err := core.NewSampler(cc, data.prob)
	if err != nil {
		return nil, err
	}
	res := s.Run()
	if err := s.Checkpoint().Write(w); err != nil {
		return nil, fmt.Errorf("bpmf: writing checkpoint: %w", err)
	}
	return &Result{res: res, data: data}, nil
}

// ResumeWithCheckpoint warm-starts the Gibbs chain from a checkpoint
// read from r and continues it on data through cfg.Iters total
// iterations; when w is non-nil the finished chain is serialized back
// out (the next cycle's warm-start). cfg.K and cfg.Seed must match the
// checkpointed run, and data's test split must be the one the
// checkpoint's posterior accumulators were built over.
//
// data may hold *more users* than the checkpoint (new users observed
// since it was written): their factor rows are folded in with the
// sampler's own keyed item-update conditional, so the resumed chain is
// bit-identical to a chain that had resumed over the same merged matrix
// in one shot — path independence is what makes incremental delta
// merging safe. The item catalog cannot grow (V's shape is pinned);
// new items need a full retrain.
func ResumeWithCheckpoint(data *Data, cfg Config, r io.Reader, w io.Writer) (*Result, error) {
	if data == nil || data.prob == nil {
		return nil, fmt.Errorf("bpmf: nil data")
	}
	cc, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	ckpt, err := core.ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if ckpt.NextIter >= cc.Iters {
		return nil, fmt.Errorf("bpmf: checkpoint already holds %d iterations; Iters (%d) must exceed it",
			ckpt.NextIter, cc.Iters)
	}
	s, err := core.ResumeSamplerGrown(cc, data.prob, ckpt)
	if err != nil {
		return nil, err
	}
	res := s.RunFrom(ckpt.NextIter)
	if w != nil {
		if err := s.Checkpoint().Write(w); err != nil {
			return nil, fmt.Errorf("bpmf: writing checkpoint: %w", err)
		}
	}
	return &Result{res: res, data: data}, nil
}
