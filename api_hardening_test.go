package bpmf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// trainedSmall trains a small model once per test with the given held-out
// fraction.
func trainedSmall(t *testing.T, testFrac float64) (*Result, int, int) {
	t.Helper()
	m, n, ratings := syntheticRatings(t, 90)
	data, err := DataFromRatings(m, n, ratings, testFrac, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(data, quickConfig(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	return res, m, n
}

// TestPublicQueryAPINoPanics is the table test pinning the bounds-check
// contract: no public query entry point may panic on out-of-range input.
func TestPublicQueryAPINoPanics(t *testing.T) {
	res, m, n := trainedSmall(t, 0.2)
	badUsers := []int{-1, -1 << 40, m, m + 1, math.MaxInt, math.MinInt}
	badItems := []int{-1, -1 << 40, n, n + 7, math.MaxInt, math.MinInt}
	for _, u := range badUsers {
		for _, it := range badItems {
			if p := res.Predict(u, it); !math.IsNaN(p) {
				t.Fatalf("Predict(%d, %d) = %v, want NaN", u, it, p)
			}
		}
		if p := res.Predict(u, 0); !math.IsNaN(p) {
			t.Fatalf("Predict(%d, 0) = %v, want NaN", u, p)
		}
		if f := res.UserFactors(u); f != nil {
			t.Fatalf("UserFactors(%d) = %v, want nil", u, f)
		}
		if top := res.Recommend(u, 5); top != nil {
			t.Fatalf("Recommend(%d, 5) = %v, want nil", u, top)
		}
	}
	for _, it := range badItems {
		if p := res.Predict(0, it); !math.IsNaN(p) {
			t.Fatalf("Predict(0, %d) = %v, want NaN", it, p)
		}
		if f := res.ItemFactors(it); f != nil {
			t.Fatalf("ItemFactors(%d) = %v, want nil", it, f)
		}
	}
	// A request-controlled huge n must not panic or pre-allocate.
	if top := res.Recommend(0, math.MaxInt); len(top) == 0 || len(top) > n {
		t.Fatalf("Recommend with huge n returned %d items", len(top))
	}
	// In-range still works.
	if math.IsNaN(res.Predict(0, 0)) {
		t.Fatal("in-range Predict became NaN")
	}
	if res.UserFactors(0) == nil || res.ItemFactors(n-1) == nil {
		t.Fatal("in-range factor queries became nil")
	}
}

func TestIntervalsNilWithoutTestSet(t *testing.T) {
	res, _, _ := trainedSmall(t, 0)
	if iv := res.Intervals(); iv != nil {
		t.Fatalf("Intervals() with no test set = %v (len %d), want nil", iv, len(iv))
	}
	// With a test set and completed burn-in they are non-nil.
	res2, _, _ := trainedSmall(t, 0.2)
	if res2.Intervals() == nil {
		t.Fatal("Intervals() with held-out test set must be non-nil")
	}
}

func TestRecommendUserWithEveryItemRated(t *testing.T) {
	// 2 users x 3 items; user 0 rated everything.
	ratings := []Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 1, Value: 3}, {User: 0, Item: 2, Value: 4},
		{User: 1, Item: 0, Value: 2}, {User: 1, Item: 1, Value: 5},
	}
	data, err := DataFromRatings(2, 3, ratings, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	cfg.K = 4
	cfg.Iters = 4
	cfg.Burnin = 2
	res, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if top := res.Recommend(0, 5); top != nil {
		t.Fatalf("user with every item rated: got %v, want nil", top)
	}
	// User 1 has exactly one unrated item.
	top := res.Recommend(1, 5)
	if len(top) != 1 || top[0].Item != 2 {
		t.Fatalf("user 1: got %v, want exactly item 2", top)
	}
}

func TestEvaluateRankingShortCatalogDoesNotDeflate(t *testing.T) {
	// 1 item unrated in training per user, held-out relevant. A perfect
	// model should reach precision 1 even with k = 10 >> catalog.
	ratings := []Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 1, Value: 4}, {User: 0, Item: 2, Value: 5},
		{User: 1, Item: 0, Value: 4}, {User: 1, Item: 1, Value: 5}, {User: 1, Item: 2, Value: 4},
	}
	data, err := DataFromRatings(2, 3, ratings, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if data.NumTest() == 0 {
		t.Skip("split held nothing out at this seed")
	}
	cfg := Defaults()
	cfg.K = 4
	cfg.Iters = 10
	cfg.Burnin = 5
	res, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.EvaluateRanking(10, 0) // every held-out rating is relevant
	if rep.Users == 0 {
		t.Fatal("no users evaluated")
	}
	// Every user's recommendable set is exactly its held-out relevant
	// set, so an undeflated precision@k must be exactly 1.
	if rep.PrecisionAtK != 1 {
		t.Fatalf("precision@10 = %v, want 1 (deflated by k > catalog?)", rep.PrecisionAtK)
	}
	if rep.NDCGAtK != 1 {
		t.Fatalf("NDCG@10 = %v, want 1", rep.NDCGAtK)
	}
}

func TestConfigValidationAtPublicBoundary(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 91)
	data, err := DataFromRatings(m, n, ratings, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"burnin >= iters", Config{Iters: 10, Burnin: 10}, "Burnin"},
		{"burnin > iters", Config{Iters: 5, Burnin: 50}, "Burnin"},
		{"burnin >= default iters", Config{Burnin: 25}, "Burnin"},
		{"negative K", Config{K: -1}, "K"},
		{"negative Alpha", Config{Alpha: -2}, "Alpha"},
		{"negative Iters", Config{Iters: -3}, "Iters"},
		{"negative Burnin", Config{Iters: 5, Burnin: -1}, "Burnin"},
	}
	for _, tc := range cases {
		_, err := Train(data, tc.cfg)
		if err == nil {
			t.Fatalf("%s: Train accepted %+v", tc.name, tc.cfg)
		}
		if !strings.Contains(err.Error(), "bpmf:") || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q at the bpmf boundary", tc.name, err, tc.want)
		}
	}
	// Zero-value config still falls back to the defaults and trains.
	cfg := Config{Iters: 2, Burnin: 1, K: 4}
	if _, err := Train(data, cfg); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Iters alone (no burn-in) stays valid: chain lengths are taken
	// together, never an Iters override against a leftover default Burnin.
	if _, err := Train(data, Config{Iters: 2, K: 4}); err != nil {
		t.Fatalf("Iters-only config rejected: %v", err)
	}
}

func TestTrainWithCheckpointWritesLoadableSnapshot(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 92)
	data, err := DataFromRatings(m, n, ratings, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(Sequential)
	var buf bytes.Buffer
	res, err := TrainWithCheckpoint(data, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no checkpoint bytes written")
	}
	// The result must match a plain sequential Train bit for bit.
	want, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE() != want.RMSE() {
		t.Fatalf("RMSE %v != plain Train %v", res.RMSE(), want.RMSE())
	}
}

func TestTrainWithCheckpointPropagatesWriteError(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 93)
	data, err := DataFromRatings(m, n, ratings, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainWithCheckpoint(data, quickConfig(Sequential), failingWriter{}); err == nil {
		t.Fatal("expected write error to surface")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, errDiskFull
}

var errDiskFull = &writeError{"disk full"}

type writeError struct{ msg string }

func (e *writeError) Error() string { return e.msg }
