package bpmf_test

import (
	"repro/internal/comm"
)

// benchFabric wraps a 2-rank in-process fabric for the message-layer
// benchmark.
type benchFabric struct {
	f *comm.Fabric
}

func newBenchFabric() *benchFabric {
	return &benchFabric{f: comm.NewFabric(2)}
}

func (bf *benchFabric) coalescer(size int) *comm.Coalescer {
	return comm.NewCoalescer(bf.f.Comms()[0], 1, 1, size)
}

// drain receives until records items of recSize bytes have arrived.
func (bf *benchFabric) drain(records, recSize int) {
	c := bf.f.Comms()[1]
	got := 0
	for got < records {
		m := c.Recv(comm.AnySource, 1)
		got += len(m.Data) / recSize
	}
}

func (bf *benchFabric) close() { bf.f.Close() }
