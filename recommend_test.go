package bpmf

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// cloneCoreResult deep-copies the factor matrices of a result.
func cloneCoreResult(r *Result) *core.Result {
	c := *r.res
	c.U = r.res.U.Clone()
	c.V = r.res.V.Clone()
	return &c
}

func TestRecommendExcludesSeenAndSorts(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 80)
	data, err := DataFromRatings(m, n, ratings, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(data, quickConfig(WorkSteal))
	if err != nil {
		t.Fatal(err)
	}
	user := 0
	top := res.Recommend(user, 10)
	if len(top) != 10 {
		t.Fatalf("got %d recommendations", len(top))
	}
	if !sort.SliceIsSorted(top, func(a, b int) bool { return top[a].Score > top[b].Score }) {
		t.Fatal("recommendations not sorted by score")
	}
	seen := map[int]bool{}
	for _, r := range ratings {
		if r.User == user {
			seen[r.Item] = true
		}
	}
	// The test split moves some ratings out of training, so check against
	// the training matrix via prediction consistency: no training item of
	// this user may appear.
	cols, _ := data.prob.R.Row(user)
	trainSeen := map[int]bool{}
	for _, c := range cols {
		trainSeen[int(c)] = true
	}
	for _, s := range top {
		if trainSeen[s.Item] {
			t.Fatalf("recommended already-rated item %d", s.Item)
		}
		if p := res.Predict(user, s.Item); p != s.Score {
			t.Fatalf("score %v != Predict %v", s.Score, p)
		}
	}
}

func TestRecommendTopNMatchesFullSort(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 81)
	data, err := DataFromRatings(m, n, ratings, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(Sequential)
	res, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	user := 3
	top := res.Recommend(user, 5)
	// Brute force.
	cols, _ := data.prob.R.Row(user)
	seen := map[int]bool{}
	for _, c := range cols {
		seen[int(c)] = true
	}
	var all []Scored
	for item := 0; item < n; item++ {
		if !seen[item] {
			all = append(all, Scored{Item: item, Score: res.Predict(user, item)})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Score > all[b].Score })
	for i := range top {
		if top[i].Score != all[i].Score {
			t.Fatalf("rank %d: heap top-n %v != full sort %v", i, top[i], all[i])
		}
	}
}

func TestRecommendEdgeCases(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 82)
	data, _ := DataFromRatings(m, n, ratings, 0, 7)
	res, err := Train(data, quickConfig(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recommend(0, 0) != nil {
		t.Fatal("n=0 must return nil")
	}
	huge := res.Recommend(0, n*10) // more than available items
	if len(huge) >= n {
		t.Fatalf("cannot recommend %d items from %d minus seen", len(huge), n)
	}
}

func TestEvaluateRankingBeatsRandom(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 83)
	data, err := DataFromRatings(m, n, ratings, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(WorkSteal)
	cfg.Iters = 12
	cfg.Burnin = 6
	res, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Relevance = top quartile of the rating scale on this synthetic data.
	var vals []float64
	for _, r := range ratings {
		vals = append(vals, r.Value)
	}
	sort.Float64s(vals)
	thr := vals[len(vals)*3/4]

	rep := res.EvaluateRanking(10, thr)
	if rep.Users == 0 {
		t.Fatal("no users evaluated")
	}
	if rep.NDCGAtK < 0 || rep.NDCGAtK > 1 || rep.PrecisionAtK < 0 || rep.PrecisionAtK > 1 {
		t.Fatalf("metrics out of range: %+v", rep)
	}

	// Random-factor baseline must do notably worse on recall@10.
	rnd := *res
	rndRes := cloneResultWithRandomFactors(res)
	baseline := rndRes.EvaluateRanking(10, thr)
	_ = rnd
	if !(rep.RecallAtK > baseline.RecallAtK+0.02) {
		t.Fatalf("model recall@10 %.3f not better than random %.3f",
			rep.RecallAtK, baseline.RecallAtK)
	}
}

// cloneResultWithRandomFactors replaces the factors with noise, keeping
// the data reference (a null-model baseline).
func cloneResultWithRandomFactors(r *Result) *Result {
	clone := &Result{res: cloneCoreResult(r), data: r.data}
	stream := rng.New(999)
	stream.FillNorm(clone.res.U.Data)
	stream.FillNorm(clone.res.V.Data)
	return clone
}

func TestEvaluateRankingNoRelevant(t *testing.T) {
	m, n, ratings := syntheticRatings(t, 84)
	data, _ := DataFromRatings(m, n, ratings, 0.2, 7)
	res, err := Train(data, quickConfig(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.EvaluateRanking(10, math.Inf(1)) // nothing is relevant
	if rep.Users != 0 || rep.NDCGAtK != 0 {
		t.Fatalf("expected empty report, got %+v", rep)
	}
	if (&Result{res: res.res}).EvaluateRanking(10, 0).Users != 0 {
		t.Fatal("nil data must give empty report")
	}
}
