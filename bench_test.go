// Benchmark harness: one benchmark per paper figure plus ablation benches
// for the design decisions of the paper's Sections III–IV (see PERF.md
// for the harness guide and the recorded kernel trajectory). Real kernel
// and engine arithmetic is measured with testing.B; cluster-scale series
// are produced by the calibrated discrete-event simulator and attached as
// custom metrics (vitems/s = virtual items per second of simulated time).
//
// Regenerate everything with:
//
//	go test -run='^$' -bench=. -benchmem .
//
// and record the Figure 2 kernel series into BENCH_kernels.json with
// cmd/bench2json (PERF.md).
package bpmf_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/graphlab"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// ---------------------------------------------------------------------------
// Figure 2: time to update one item vs number of ratings, three kernels.
// ---------------------------------------------------------------------------

func benchmarkKernel(b *testing.B, kern core.Kernel, nnz int) {
	cfg := core.DefaultConfig()
	k := cfg.K
	stream := rng.New(7)
	other := la.NewMatrix(nnz, k)
	stream.FillNorm(other.Data)
	cols := make([]int32, nnz)
	vals := make([]float64, nnz)
	for i := range cols {
		cols[i] = int32(i)
		vals[i] = stream.Norm()
	}
	hyper := core.NewHyper(k)
	ws := core.NewWorkspace(k)
	out := la.NewVector(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.UpdateItem(ws, kern, &cfg, cols, vals, other, hyper,
			core.ItemStream(1, 0, core.SideV, 0), nil, nil, out)
	}
	b.ReportMetric(float64(nnz), "ratings")
}

func BenchmarkFig2UpdateKernels(b *testing.B) {
	for _, nnz := range []int{1, 10, 100, 1000, 10000} {
		for _, kern := range []core.Kernel{core.KernelRankOne, core.KernelCholesky, core.KernelParallelCholesky} {
			b.Run(fmt.Sprintf("%s/nnz=%d", kern, nnz), func(b *testing.B) {
				benchmarkKernel(b, kern, nnz)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 3: multi-core engines on the ChEMBL workload.
// Real runs measure one Gibbs iteration; the virtual-time series for
// 1..16 threads (this container has one core) is attached as vitems/s.
// ---------------------------------------------------------------------------

func chemblProblem(b *testing.B) *core.Problem {
	b.Helper()
	ds := datagen.Generate(datagen.Scaled(datagen.ChEMBL(7), 0.02))
	train, test := sparse.SplitTrainTest(ds.R, 0.05, 7)
	return core.NewProblem(train, test)
}

func oneIterConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 16
	cfg.Iters = 1
	cfg.Burnin = 0
	return cfg
}

func BenchmarkFig3Multicore(b *testing.B) {
	prob := chemblProblem(b)
	cfg := oneIterConfig()
	ds := datagen.Generate(datagen.Scaled(datagen.ChEMBL(7), 0.02))
	movie := ds.R.Transpose().RowDegrees()
	user := ds.R.RowDegrees()
	cm := des.DefaultCostModel(cfg.K)
	// The locality schedules are per-problem setup (built once, reused for
	// every iteration of a real run), so they are excluded from the per-
	// iteration measurement. Heavy-first binning is for the work-stealing
	// engine only; the static-split engines take the pure RCM order.
	schWS := order.Build(prob.R, order.Options{HeavyThreshold: cfg.KernelThreshold})
	schStatic := order.Build(prob.R, order.Options{})

	engines := []struct {
		name string
		pol  des.Policy
		run  func() (*core.Result, error)
	}{
		{"TBB", des.PolicyWorkSteal, func() (*core.Result, error) { return mc.RunScheduled(mc.WorkSteal, cfg, prob, 4, schWS) }},
		{"OpenMP", des.PolicyStatic, func() (*core.Result, error) { return mc.RunScheduled(mc.Static, cfg, prob, 4, schStatic) }},
		{"GraphLab", des.PolicyGraphLab, func() (*core.Result, error) {
			r, _, e := graphlab.RunScheduled(cfg, prob, 4, schStatic)
			return r, e
		}},
	}
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			var updates int64
			for i := 0; i < b.N; i++ {
				res, err := e.run()
				if err != nil {
					b.Fatal(err)
				}
				updates = res.ItemUpdates
			}
			b.ReportMetric(float64(updates), "items/iter")
			// Virtual-time 16-thread projection (the figure's right edge),
			// over the full iteration including the chunk-parallel
			// evaluation the real runs above perform.
			v16 := des.Fig3PointEval(movie, user, len(prob.Test), 16, e.pol, cm, &cfg)
			b.ReportMetric(v16, "vitems/s@16t")
		})
	}
}

// ---------------------------------------------------------------------------
// Iteration anatomy: one Gibbs iteration decomposed into its three phases
// (the `pr4-iteration` series, PERF.md "Iteration anatomy") on an
// ml-20m-shaped workload:
//
//	kernel — the item-update sweeps of both sides (the part PR 1
//	         optimized), walked in storage order vs the locality schedule;
//	hyper  — grouped moment reduction + Normal–Wishart draws, both sides;
//	score  — held-out evaluation through the fixed EvalChunk tree,
//	         serial vs chunk-parallel on a pool.
// ---------------------------------------------------------------------------

func BenchmarkIterationPhases(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ML20M(5), 0.05))
	train, test := sparse.SplitTrainTest(ds.R, 0.05, 5)
	prob := core.NewProblem(train, test)
	cfg := core.DefaultConfig()
	cfg.Iters, cfg.Burnin = 1, 0
	k := cfg.K

	// One iteration-0 hyper draw per side, fixed across all phase benches.
	prior := core.DefaultNWPrior(k)
	hws := core.NewHyperWorkspace(k)
	mws := core.NewMomentsWorkspace(k)
	hu, hv := core.NewHyper(k), core.NewHyper(k)
	u := core.InitFactors(cfg.Seed, core.SideU, prob.R.M, k)
	v := core.InitFactors(cfg.Seed, core.SideV, prob.R.N, k)
	groupsU := core.GroupBoundaries(cfg.MomentGroupsU, u.Rows)
	groupsV := core.GroupBoundaries(cfg.MomentGroupsV, v.Rows)
	core.SampleHyperWS(prior, core.MomentsGroupedWS(v, groupsV, k, nil, mws),
		core.HyperStream(cfg.Seed, 0, core.SideV), hv, hws)
	core.SampleHyperWS(prior, core.MomentsGroupedWS(u, groupsU, k, nil, mws),
		core.HyperStream(cfg.Seed, 0, core.SideU), hu, hws)
	sch := order.Build(train, order.Options{HeavyThreshold: cfg.KernelThreshold})
	ws := core.NewWorkspace(k)

	// kernel: both item-update sweeps, walked serially so the order effect
	// (storage vs locality schedule) is isolated from scheduling noise;
	// streams come from the workspace's re-keyed scratch, as in the
	// engines, so the sweep is allocation-free.
	sweep := func(ordV, ordU []int32) {
		for pos := 0; pos < prob.Rt.M; pos++ {
			j := pos
			if ordV != nil {
				j = int(ordV[pos])
			}
			cols, vals := prob.Rt.Row(j)
			core.UpdateItem(ws, cfg.SelectKernel(len(cols)), &cfg, cols, vals, u, hv,
				ws.ItemStream(cfg.Seed, 0, core.SideV, j), nil, nil, v.Row(j))
		}
		for pos := 0; pos < prob.R.M; pos++ {
			i := pos
			if ordU != nil {
				i = int(ordU[pos])
			}
			cols, vals := prob.R.Row(i)
			core.UpdateItem(ws, cfg.SelectKernel(len(cols)), &cfg, cols, vals, v, hu,
				ws.ItemStream(cfg.Seed, 0, core.SideU, i), nil, nil, u.Row(i))
		}
	}
	b.Run("kernel/order=storage", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep(nil, nil)
		}
		b.ReportMetric(float64(prob.R.M+prob.R.N), "items")
	})
	b.Run("kernel/order=locality", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep(sch.V, sch.U)
		}
		b.ReportMetric(float64(prob.R.M+prob.R.N), "items")
	})

	b.Run("hyper", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.SampleHyperWS(prior, core.MomentsGroupedWS(v, groupsV, k, nil, mws),
				core.HyperStream(cfg.Seed, 0, core.SideV), hv, hws)
			core.SampleHyperWS(prior, core.MomentsGroupedWS(u, groupsU, k, nil, mws),
				core.HyperStream(cfg.Seed, 0, core.SideU), hu, hws)
		}
	})

	// score: the end-of-iteration evaluation, serial vs chunk-parallel.
	// (The reference container has one core, so the chunked variant here
	// demonstrates bounded scheduling overhead; the chunks are what divide
	// across real cores.)
	predSerial := core.NewPredictor(prob.Test, cfg.ClampMin, cfg.ClampMax)
	b.Run("score/serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			predSerial.Update(u, v, false)
		}
		b.ReportMetric(float64(len(prob.Test)), "entries")
	})
	predPar := core.NewPredictor(prob.Test, cfg.ClampMin, cfg.ClampMax)
	pool := sched.NewPool(4)
	defer pool.Close()
	pfor := func(n int, run func(c int)) {
		pool.ParallelFor(0, n, 1, func(_ *sched.Worker, lo, hi int) {
			for c := lo; c < hi; c++ {
				run(c)
			}
		})
	}
	b.Run("score/chunked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			predPar.UpdatePar(u, v, false, pfor)
		}
		b.ReportMetric(float64(predPar.NumChunks()), "chunks")
	})
}

// ---------------------------------------------------------------------------
// Figure 4: distributed strong scaling (virtual time via the DES).
// ---------------------------------------------------------------------------

func BenchmarkFig4DistributedScaling(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ML20M(5), 0.02))
	cfg := core.DefaultConfig()
	cm := des.DefaultCostModel(cfg.K)
	for _, nodes := range []int{1, 4, 16, 32, 64, 256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var res des.ClusterResult
			for i := 0; i < b.N; i++ {
				plan := partition.Build(ds.R, partition.Options{Ranks: nodes})
				w := des.BuildClusterWorkload(plan, cfg)
				// Model the evaluation of a 5% held-out split, like the
				// real engine's per-rank chunk-parallel predictors.
				w.TestEntries = int64(ds.R.NNZ() / 20)
				m := des.BlueGeneQ(nodes)
				m.CacheBytes *= 0.02
				res = des.SimulateCluster(w, m, cm, dist.DefaultBufferSize, 3)
			}
			b.ReportMetric(res.ItemsPerSec, "vitems/s")
			b.ReportMetric(res.IterTime*1000, "viter-ms")
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 5: compute / communicate / both breakdown (virtual time).
// ---------------------------------------------------------------------------

func BenchmarkFig5Overlap(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ML20M(5), 0.02))
	cfg := core.DefaultConfig()
	cm := des.DefaultCostModel(cfg.K)
	for _, nodes := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var res des.ClusterResult
			for i := 0; i < b.N; i++ {
				plan := partition.Build(ds.R, partition.Options{Ranks: nodes})
				w := des.BuildClusterWorkload(plan, cfg)
				w.TestEntries = int64(ds.R.NNZ() / 20)
				m := des.BlueGeneQ(nodes)
				m.CacheBytes *= 0.02
				res = des.SimulateCluster(w, m, cm, dist.DefaultBufferSize, 3)
			}
			b.ReportMetric(res.Breakdown.ComputeOnly*100, "compute%")
			b.ReportMetric(res.Breakdown.Both*100, "both%")
			b.ReportMetric(res.Breakdown.CommunicateOnly*100, "comm%")
		})
	}
}

// ---------------------------------------------------------------------------
// Real distributed engine throughput on the in-process fabric.
// ---------------------------------------------------------------------------

func BenchmarkDistributedInProc(b *testing.B) {
	ds := datagen.Generate(datagen.Small(9))
	train, test := sparse.SplitTrainTest(ds.R, 0.1, 9)
	prob := core.NewProblem(train, test)
	cfg := oneIterConfig()
	for _, ranks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dist.RunInProc(cfg, prob, dist.Options{Ranks: ranks}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 1 (paper §III-B): hybrid kernel threshold sweep.
// ---------------------------------------------------------------------------

func BenchmarkAblationKernelThreshold(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ChEMBL(7), 0.02))
	movie := ds.R.Transpose().RowDegrees()
	user := ds.R.RowDegrees()
	cm := des.DefaultCostModel(32)
	for _, threshold := range []int{100, 1000, 10000, 1 << 30} {
		name := fmt.Sprintf("threshold=%d", threshold)
		if threshold == 1<<30 {
			name = "threshold=off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.KernelThreshold = threshold
			var v float64
			for i := 0; i < b.N; i++ {
				v = des.Fig3Point(movie, user, 12, des.PolicyWorkSteal, cm, &cfg)
			}
			b.ReportMetric(v, "vitems/s@12t")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 2: coalescing buffer size (paper IV-C).
// ---------------------------------------------------------------------------

func BenchmarkAblationBufferSize(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ML20M(5), 0.02))
	cfg := core.DefaultConfig()
	cm := des.DefaultCostModel(cfg.K)
	plan := partition.Build(ds.R, partition.Options{Ranks: 32})
	w := des.BuildClusterWorkload(plan, cfg)
	for _, buf := range []int{0, 4 << 10, 64 << 10, 1 << 20} {
		name := fmt.Sprintf("buffer=%dKiB", buf>>10)
		if buf == 0 {
			name = "buffer=per-item"
		}
		b.Run(name, func(b *testing.B) {
			var res des.ClusterResult
			for i := 0; i < b.N; i++ {
				res = des.SimulateCluster(w, des.BlueGeneQ(32), cm, buf, 3)
			}
			b.ReportMetric(res.ItemsPerSec, "vitems/s")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 3 (paper IV-B): workload-model partitioning vs equal count.
// ---------------------------------------------------------------------------

func BenchmarkAblationPartitioning(b *testing.B) {
	ds := datagen.Generate(datagen.Scaled(datagen.ChEMBL(7), 0.05))
	model := partition.DefaultCostModel()
	rowW := model.Weights(ds.R.RowDegrees())
	colW := model.Weights(ds.R.Transpose().RowDegrees())
	const ranks = 16
	b.Run("chains-on-chains", func(b *testing.B) {
		var bn float64
		for i := 0; i < b.N; i++ {
			bounds := partition.ChainsOnChains(colW, ranks)
			bn = partition.Bottleneck(colW, bounds)
		}
		b.ReportMetric(bn, "bottleneck")
	})
	b.Run("equal-count", func(b *testing.B) {
		var bn float64
		for i := 0; i < b.N; i++ {
			bounds := partition.EqualCount(len(colW), ranks)
			bn = partition.Bottleneck(colW, bounds)
		}
		b.ReportMetric(bn, "bottleneck")
	})
	_ = rowW
}

// ---------------------------------------------------------------------------
// Ablation 4 (deterministic reductions): ordered vs tree allreduce (real runs).
// ---------------------------------------------------------------------------

func BenchmarkAblationAllreduce(b *testing.B) {
	ds := datagen.Generate(datagen.Small(9))
	train, test := sparse.SplitTrainTest(ds.R, 0.1, 9)
	prob := core.NewProblem(train, test)
	cfg := oneIterConfig()
	for _, tree := range []bool{false, true} {
		name := "ordered"
		if tree {
			name = "tree"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := dist.RunInProc(cfg, prob, dist.Options{Ranks: 4, TreeAllreduce: tree})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks (the Eigen-replacement hot paths).
// ---------------------------------------------------------------------------

func BenchmarkCholesky(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			stream := rng.New(3)
			g := la.NewMatrix(n, n)
			stream.FillNorm(g.Data)
			a := la.NewMatrix(n, n)
			la.Gemm(1, g, g.Transpose(), 0, a)
			for i := 0; i < n; i++ {
				a.Set(i, i, a.At(i, i)+float64(n))
			}
			l := la.NewMatrix(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := la.Cholesky(a, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWishart(b *testing.B) {
	k := 32
	stream := rng.New(5)
	scale := la.Eye(k)
	dst := la.NewMatrix(k, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Wishart(scale, float64(k)+2, dst)
	}
}

func BenchmarkCoalescedExchange(b *testing.B) {
	// Raw message-layer throughput: 1000 coalesced item records between
	// two in-process ranks.
	k := 32
	rec := make([]byte, 4+8*k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fab := newBenchFabric()
		co := fab.coalescer(64 << 10)
		for j := 0; j < 1000; j++ {
			co.Append(rec)
		}
		co.Flush()
		fab.drain(1000, len(rec))
		fab.close()
	}
}

// ---------------------------------------------------------------------------
// Serving: the checkpoint-backed model server's hot paths.
// serve_topn  = one user's top-N request (blocked batch Gemv + bounded
//               heap + training-set exclusion), live and precomputed.
// serve_foldin = one cold-start fold-in draw (core.UpdateItem
//               conditional against the full item catalog).
// ---------------------------------------------------------------------------

// benchServeModel trains a short chain on a scaled ML-20M-shaped problem
// and loads its checkpoint into a serving snapshot.
func benchServeModel(b *testing.B, topn int) (*serve.Model, *core.Problem) {
	b.Helper()
	ds := datagen.Generate(datagen.Scaled(datagen.ML20M(7), 0.02))
	train, test := sparse.SplitTrainTest(ds.R, 0.05, 7)
	prob := core.NewProblem(train, test)
	cfg := core.DefaultConfig()
	cfg.Iters, cfg.Burnin = 2, 1
	s, err := core.NewSampler(cfg, prob)
	if err != nil {
		b.Fatal(err)
	}
	for it := 0; it < cfg.Iters; it++ {
		s.Step(it)
	}
	opts := serve.Options{Alpha: cfg.Alpha, Exclude: prob.R, Test: prob.Test, TopN: topn}
	m, err := serve.NewModel(s.Checkpoint(), opts)
	if err != nil {
		b.Fatal(err)
	}
	return m, prob
}

func BenchmarkServeTopN(b *testing.B) {
	live, _ := benchServeModel(b, 0)
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("live/items=%d/n=%d", live.NumItems(), n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := live.Recommend(i%live.NumUsers(), n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(live.NumItems())*float64(b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
	tab, _ := benchServeModel(b, 100)
	b.Run(fmt.Sprintf("precomputed/items=%d/n=100", tab.NumItems()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tab.Recommend(i%tab.NumUsers(), 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkServeFoldIn(b *testing.B) {
	m, _ := benchServeModel(b, 0)
	for _, nnz := range []int{20, 200} {
		items := make([]int32, nnz)
		vals := make([]float64, nnz)
		for i := range items {
			items[i] = int32(i * (m.NumItems() / nnz))
			vals[i] = 1 + float64(i%5)
		}
		b.Run(fmt.Sprintf("nnz=%d", nnz), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.FoldIn(items, vals, i); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nnz), "ratings")
		})
	}
}
