package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/graphlab"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// fig2 reproduces Figure 2: time to update one item versus the number of
// ratings, for the three kernels. The two serial kernels are measured for
// real on this machine; the parallel kernel is measured for its real
// arithmetic and additionally projected onto the paper's 12-core node
// with the calibrated work-span model (this host has one core).
func fig2(cfg core.Config, cm des.CostModel) {
	fmt.Println("\n== Figure 2: compute time to update one item (K=32) ==")
	fmt.Println("# columns: ratings, rankupdate(ms), serial_chol(ms), parallel_chol@1core(ms), parallel_chol@12cores-model(ms)")

	k := cfg.K
	hyper := core.NewHyper(k)
	stream := rng.New(2)

	measure := func(kern core.Kernel, cols []int32, vals []float64, other *la.Matrix) float64 {
		ws := core.NewWorkspace(k)
		out := la.NewVector(k)
		reps := 1
		// Aim for ~20ms of measurement.
		for {
			start := time.Now()
			for r := 0; r < reps; r++ {
				core.UpdateItem(ws, kern, &cfg, cols, vals, other, hyper,
					core.ItemStream(1, 0, core.SideV, 0), nil, nil, out)
			}
			el := time.Since(start)
			if el > 20*time.Millisecond || reps > 1<<20 {
				return el.Seconds() / float64(reps) * 1000 // ms
			}
			reps *= 4
		}
	}

	for _, nnz := range []int{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000} {
		other := la.NewMatrix(nnz, k)
		stream.FillNorm(other.Data)
		cols := make([]int32, nnz)
		vals := make([]float64, nnz)
		for i := range cols {
			cols[i] = int32(i)
			vals[i] = stream.Norm()
		}
		r1 := measure(core.KernelRankOne, cols, vals, other)
		sc := measure(core.KernelCholesky, cols, vals, other)
		pc1 := measure(core.KernelParallelCholesky, cols, vals, other)
		pc12 := cm.ParallelItemCost(nnz, cfg.ParallelGrain, 12) * 1000
		fmt.Printf("%8d  %12.5f  %12.5f  %12.5f  %12.5f\n", nnz, r1, sc, pc1, pc12)
	}
	fmt.Println("# paper shape: rankupdate cheapest for few ratings, serial Cholesky in the middle,")
	fmt.Println("# parallel Cholesky wins beyond ~1000 ratings (the hybrid threshold).")
}

// fig3 reproduces Figure 3: multi-core throughput (item updates per
// second) on the ChEMBL workload versus thread count for the TBB-style,
// OpenMP-style and GraphLab-style engines. Thread scaling is virtual-time
// (this host has one core); the same engines are additionally run for
// real at 1 thread to validate the model's single-thread ratio.
func fig3(cfg core.Config, cm des.CostModel, scale float64) {
	fmt.Println("\n== Figure 3: multi-core BPMF on ChEMBL (updates/second) ==")
	ds := chemblData(scale)
	fmt.Printf("# workload: %d compounds x %d targets, %d ratings (scale %.3g)\n",
		ds.R.M, ds.R.N, ds.R.NNZ(), scale)
	movie := ds.R.Transpose().RowDegrees()
	user := ds.R.RowDegrees()

	fmt.Println("# columns: threads, TBB, OpenMP, GraphLab  (x1000 items/s, virtual time,")
	fmt.Println("# full iteration incl. chunk-parallel evaluation of a 5% held-out split)")
	nTest := ds.R.NNZ() / 20
	for _, threads := range []int{1, 2, 4, 8, 16} {
		tbb := des.Fig3PointEval(movie, user, nTest, threads, des.PolicyWorkSteal, cm, &cfg)
		omp := des.Fig3PointEval(movie, user, nTest, threads, des.PolicyStatic, cm, &cfg)
		gl := des.Fig3PointEval(movie, user, nTest, threads, des.PolicyGraphLab, cm, &cfg)
		fmt.Printf("%8d  %10.2f  %10.2f  %10.2f\n", threads, tbb/1000, omp/1000, gl/1000)
	}

	// Real single-thread validation runs (one Gibbs iteration each).
	fmt.Println("# real 1-thread validation (measured on this host, 1 iteration):")
	train, test := sparse.SplitTrainTest(ds.R, 0.05, 1)
	prob := core.NewProblem(train, test)
	one := cfg
	one.Iters, one.Burnin = 1, 0
	type run struct {
		name string
		fn   func() (*core.Result, error)
	}
	for _, r := range []run{
		{"TBB(worksteal)", func() (*core.Result, error) { return mc.Run(mc.WorkSteal, one, prob, 1) }},
		{"OpenMP(static)", func() (*core.Result, error) { return mc.Run(mc.Static, one, prob, 1) }},
		{"GraphLab", func() (*core.Result, error) { r, _, e := graphlab.Run(one, prob, 1); return r, e }},
	} {
		res, err := r.fn()
		if err != nil {
			fmt.Printf("#   %-16s error: %v\n", r.name, err)
			continue
		}
		fmt.Printf("#   %-16s %10.2f x1000 items/s\n", r.name, res.UpdatesPerSec()/1000)
	}
	fmt.Println("# paper shape: all engines scale with cores; TBB > OpenMP (work stealing wins on")
	fmt.Println("# the skewed rating distribution); GraphLab trails both by a wide margin.")
}

// fig4 reproduces Figure 4: distributed strong scaling on the MovieLens
// workload — items per second and parallel efficiency versus node count
// on the BlueGene/Q machine model (16 cores/node, 32-node racks).
func fig4(cfg core.Config, cm des.CostModel, scale float64) {
	fmt.Println("\n== Figure 4: distributed BPMF strong scaling on MovieLens ==")
	ds := ml20mData(scale)
	fmt.Printf("# workload: %d users x %d movies, %d ratings (scale %.3g)\n",
		ds.R.M, ds.R.N, ds.R.NNZ(), scale)
	fmt.Println("# columns: nodes, cores, items/s, parallel efficiency (vs 1 node)")

	var base float64
	for _, nodes := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		plan := partition.Build(ds.R, partition.Options{Ranks: nodes, Reorder: false})
		w := des.BuildClusterWorkload(plan, cfg)
		w.TestEntries = int64(ds.R.NNZ() / 20)
		m := des.BlueGeneQ(nodes)
		if scale != 1 {
			// Scale the cache with the workload so the working-set /
			// cache crossover (the super-linear region) falls at the same
			// node count as the full-size run — for upscaled workloads as
			// much as downscaled ones (scale > 1 was silently ignored
			// here, shifting the crossover).
			m.CacheBytes *= scale
		}
		res := des.SimulateCluster(w, m, cm, dist.DefaultBufferSize, 3)
		if nodes == 1 {
			base = res.ItemsPerSec
		}
		eff := res.ItemsPerSec / (base * float64(nodes))
		fmt.Printf("%6d  %7d  %14.0f  %8.1f%%\n", nodes, res.Cores, res.ItemsPerSec, eff*100)
	}
	fmt.Println("# paper shape: good, even super-linear scaling up to 32 nodes (one rack on the")
	fmt.Println("# BG/Q: the per-node working set drops into cache); past one rack the shared")
	fmt.Println("# inter-rack uplink saturates and performance degrades significantly.")
}

// fig5 reproduces Figure 5: fraction of iteration time each node spends
// computing, communicating, and doing both (overlap), versus node count.
func fig5(cfg core.Config, cm des.CostModel, scale float64) {
	fmt.Println("\n== Figure 5: compute / communicate / overlap breakdown ==")
	ds := ml20mData(scale)
	fmt.Println("# columns: nodes, cores, compute%, both%, communicate%, idle%")
	for _, nodes := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		plan := partition.Build(ds.R, partition.Options{Ranks: nodes, Reorder: false})
		w := des.BuildClusterWorkload(plan, cfg)
		w.TestEntries = int64(ds.R.NNZ() / 20)
		m := des.BlueGeneQ(nodes)
		if scale != 1 {
			m.CacheBytes *= scale
		}
		res := des.SimulateCluster(w, m, cm, dist.DefaultBufferSize, 3)
		b := res.Breakdown
		fmt.Printf("%6d  %7d  %8.1f%%  %7.1f%%  %12.1f%%  %6.1f%%\n",
			nodes, res.Cores, b.ComputeOnly*100, b.Both*100, b.CommunicateOnly*100, b.Idle*100)
	}
	fmt.Println("# paper shape: at small node counts communication overlaps computation (the")
	fmt.Println("# 'both' band); at large counts overlap stops helping and exposed communication")
	fmt.Println("# plus waiting dominates.")
}

// rmseExperiment verifies §V-B: every engine reaches the same prediction
// accuracy. With this implementation's keyed streams the in-process
// engines reproduce the sequential chain exactly; the distributed engine
// matches it bit-for-bit when configured with the partition's moment
// grouping.
func rmseExperiment() {
	fmt.Println("\n== §V-B: all versions reach the same RMSE ==")
	ds := datagen.Generate(datagen.Small(99))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, 99)
	prob := core.NewProblem(train, test)
	cfg := core.DefaultConfig()
	cfg.K = 16
	cfg.Iters = 20
	cfg.Burnin = 10
	fmt.Printf("# workload: %dx%d, %d train / %d test ratings; K=%d, %d iterations\n",
		train.M, train.N, train.NNZ(), len(test), cfg.K, cfg.Iters)

	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		panic(err)
	}
	seqRes := seq.Run()
	report := func(name string, res *core.Result) {
		match := "bitwise-identical chain"
		if la.MaxAbsDiff(res.U, seqRes.U) != 0 {
			match = fmt.Sprintf("|ΔRMSE| = %.2e", math.Abs(res.FinalRMSE()-seqRes.FinalRMSE()))
		}
		fmt.Printf("%-22s final RMSE %.6f   (%s)\n", name, res.FinalRMSE(), match)
	}
	report("sequential", seqRes)
	if r, err := mc.Run(mc.WorkSteal, cfg, prob, 4); err == nil {
		report("worksteal (4 threads)", r)
	}
	if r, err := mc.Run(mc.Static, cfg, prob, 4); err == nil {
		report("static (4 threads)", r)
	}
	if r, _, err := graphlab.Run(cfg, prob, 4); err == nil {
		report("graphlab (4 threads)", r)
	}
	if r, _, err := dist.RunInProc(cfg, prob, dist.Options{Ranks: 4}); err == nil {
		report("distributed (4 ranks)", r)
	}
	// Distributed with the sequential reference configured to the same
	// moment grouping: exact equality.
	opt := dist.Options{Ranks: 4}
	plan, _ := dist.BuildPlan(prob, opt)
	cfg2 := cfg
	cfg2.MomentGroupsU, cfg2.MomentGroupsV = dist.MomentGroupsOf(plan)
	seq2, _ := core.NewSampler(cfg2, prob)
	report("sequential@dist-groups", seq2.Run())
	fmt.Println("# paper claim: all parallel versions reach the same accuracy as the sequential")
	fmt.Println("# sampler — here provable bit-for-bit thanks to keyed random streams.")
}

// speedupExperiment estimates the §VI anecdote: the industrial ChEMBL run
// that took 15 days in the initial (interpreted, single-threaded) version
// and 30 minutes distributed.
func speedupExperiment(cfg core.Config, cm des.CostModel, scale float64) {
	fmt.Println("\n== §VI: end-to-end wall-clock estimate for the ChEMBL run ==")
	ds := chemblData(scale)
	const nodes = 20 // the paper's Lynx cluster
	plan := partition.Build(ds.R, partition.Options{Ranks: nodes, Reorder: false})
	w := des.BuildClusterWorkload(plan, cfg)
	res := des.SimulateCluster(w, des.Lynx(nodes), cm, dist.DefaultBufferSize, 3)

	items := float64(ds.R.M + ds.R.N)
	iters := 1000.0 // a production-length chain
	seqIter := 0.0
	movie := ds.R.Transpose().RowDegrees()
	user := ds.R.RowDegrees()
	for _, d := range movie {
		seqIter += cm.SerialItemCost(d)
	}
	for _, d := range user {
		seqIter += cm.SerialItemCost(d)
	}
	// The paper's initial version was Julia (interpreted overhead ~20x a
	// tuned native kernel on this workload class).
	juliaFactor := 20.0
	seqDays := seqIter * iters * juliaFactor / 86400
	distMinutes := items * iters / res.ItemsPerSec / 60
	fmt.Printf("single-threaded interpreted baseline: %8.1f days\n", seqDays)
	fmt.Printf("distributed on 20x12-core nodes (simulated): %8.1f minutes\n", distMinutes)
	fmt.Printf("speed-up: %.0fx\n", seqDays*86400/(distMinutes*60))
	fmt.Println("# paper: 15 days -> 30 minutes (720x) on the full ChEMBL subset.")
}
