package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// ablations prints the DESIGN.md §5 ablation tables: the effect of each
// design decision the paper's Sections III–IV argue for.
func ablations(cfg core.Config, cm des.CostModel, scale float64) {
	fmt.Println("\n== Ablations (DESIGN.md §5) ==")
	chembl := chemblData(scale)
	ml := ml20mData(scale)

	// 1. Hybrid kernel threshold (paper: 1000 ratings).
	fmt.Println("\n-- hybrid kernel threshold (virtual 12-thread throughput, ChEMBL) --")
	movie := chembl.R.Transpose().RowDegrees()
	user := chembl.R.RowDegrees()
	for _, thr := range []int{100, 300, 1000, 3000, 10000, 1 << 30} {
		c := cfg
		c.KernelThreshold = thr
		v := des.Fig3Point(movie, user, 12, des.PolicyWorkSteal, cm, &c)
		label := fmt.Sprintf("%d", thr)
		if thr == 1<<30 {
			label = "off (never parallel)"
		}
		fmt.Printf("  threshold %-22s %10.1f x1000 items/s\n", label, v/1000)
	}

	// 2. Coalescing buffer size (paper IV-C) on 32 nodes.
	fmt.Println("\n-- coalescing buffer size (32 BG/Q nodes, MovieLens) --")
	plan := partition.Build(ml.R, partition.Options{Ranks: 32})
	w := des.BuildClusterWorkload(plan, cfg)
	for _, buf := range []int{0, 1 << 10, 8 << 10, 64 << 10, 1 << 20} {
		res := des.SimulateCluster(w, des.BlueGeneQ(32), cm, buf, 3)
		label := fmt.Sprintf("%d KiB", buf>>10)
		if buf == 0 {
			label = "per-item sends"
		}
		fmt.Printf("  buffer %-16s %12.0f items/s   (comm-only %.1f%%)\n",
			label, res.ItemsPerSec, res.Breakdown.CommunicateOnly*100)
	}

	// 3. Workload-model partitioning vs equal count.
	fmt.Println("\n-- partitioning: chains-on-chains + cost model vs equal count (16 ranks, ChEMBL movies) --")
	model := partition.DefaultCostModel()
	colW := model.Weights(chembl.R.Transpose().RowDegrees())
	ccp := partition.Bottleneck(colW, partition.ChainsOnChains(colW, 16))
	eq := partition.Bottleneck(colW, partition.EqualCount(len(colW), 16))
	fmt.Printf("  bottleneck load: CCP %.1f vs equal-count %.1f (%.0f%% better balance)\n",
		ccp, eq, (eq/ccp-1)*100)

	// 4. Reordering effect on communication volume.
	fmt.Println("\n-- RCM reordering vs natural order: items exchanged per iteration (8 ranks, MovieLens) --")
	plain := partition.Build(ml.R, partition.Options{Ranks: 8, Reorder: false})
	vPlain, _ := partition.CommVolume(plain.R, plain.RowBounds, plain.ColBounds)
	reord := partition.Build(ml.R, partition.Options{Ranks: 8, Reorder: true})
	vReord, _ := partition.CommVolume(reord.R, reord.RowBounds, reord.ColBounds)
	fmt.Printf("  natural order: %d   RCM reordered: %d\n", vPlain, vReord)
	fmt.Println("  (synthetic data scatters community structure randomly, so the gain is")
	fmt.Println("   modest here; on clustered real data the reordering matters more)")

	// 5. Two-sided buffered vs one-sided notified puts (real runs).
	fmt.Println("\n-- exchange mechanism (real in-process runs, 4 ranks, small dataset) --")
	small := datagen.Generate(datagen.Small(3))
	probTrain, probTest := splitFor(small)
	prob := core.NewProblem(probTrain, probTest)
	one := cfg
	one.Iters, one.Burnin = 2, 1
	one.K = 16
	if twoRes, stats, err := dist.RunInProc(one, prob, dist.Options{Ranks: 4}); err == nil {
		var msgs int64
		for _, s := range stats {
			msgs += s.Comm.MsgsSent
		}
		fmt.Printf("  two-sided buffered:   RMSE %.5f, %5d messages\n", twoRes.FinalRMSE(), msgs)
	}
	if oneRes, stats, err := dist.RunInProc(one, prob, dist.Options{Ranks: 4, OneSided: true}); err == nil {
		var msgs int64
		for _, s := range stats {
			msgs += s.Comm.MsgsSent
		}
		fmt.Printf("  one-sided (GASPI):    RMSE %.5f, %5d messages (identical chain, per-item puts)\n",
			oneRes.FinalRMSE(), msgs)
	}
}

func splitFor(ds *datagen.Dataset) (*sparse.CSR, []sparse.Entry) {
	return sparse.SplitTrainTest(ds.R, 0.2, ds.Spec.Seed)
}
