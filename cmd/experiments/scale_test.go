package main

import (
	"testing"

	"repro/internal/datagen"
)

// TestWorkloadScaleAppliesBothDirections pins the -scale regression:
// the DES workload builders must honor upscales, not just downscales
// (scale > 1 used to be silently ignored, so "-scale 2" quietly ran
// the full-size workload).
func TestWorkloadScaleAppliesBothDirections(t *testing.T) {
	for name, gen := range map[string]func(float64) *datagen.Dataset{
		"chembl": chemblData,
		"ml20m":  ml20mData,
	} {
		base := gen(0.02)
		up := gen(0.04)
		if up.R.M <= base.R.M || up.R.NNZ() <= base.R.NNZ() {
			t.Errorf("%s: doubling the scale did not grow the workload (%d rows / %d nnz vs %d / %d)",
				name, up.R.M, up.R.NNZ(), base.R.M, base.R.NNZ())
		}
	}
	// The full-size specs are too big to generate in a unit test, so
	// pin the > 1 branch at the spec level: scaling must change the
	// spec, not fall through to the unscaled one.
	spec := datagen.ChEMBL(20)
	upSpec := datagen.Scaled(spec, 2)
	if upSpec.Rows <= spec.Rows || upSpec.NNZ <= spec.NNZ {
		t.Fatalf("datagen.Scaled(2) did not upscale the spec: %+v vs %+v", upSpec, spec)
	}
	// And the workload builders route through Scaled for any scale != 1:
	// a tiny upscale of a tiny base must differ from the base.
	small := ml20mData(0.011)
	smaller := ml20mData(0.01)
	if small.R.NNZ() <= smaller.R.NNZ() {
		t.Fatalf("scale 0.011 vs 0.01 produced no growth (%d vs %d nnz)", small.R.NNZ(), smaller.R.NNZ())
	}
}
