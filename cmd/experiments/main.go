// Command experiments regenerates every figure of the paper's evaluation
// section (and the §V-B accuracy claim) as printed series. See
// EXPERIMENTS.md for the recorded outputs and paper-vs-measured notes.
//
// Usage:
//
//	experiments -fig 2            # Figure 2: per-item update cost vs #ratings
//	experiments -fig 3            # Figure 3: multi-core throughput vs threads
//	experiments -fig 4            # Figure 4: distributed strong scaling
//	experiments -fig 5            # Figure 5: compute/communicate/both breakdown
//	experiments -rmse             # §V-B: all engines reach the same RMSE
//	experiments -speedup          # §VI: the "15 days -> 30 minutes" estimate
//	experiments -all              # everything
//
// Flags:
//
//	-scale f     dataset scale factor for the DES workloads (default 0.05;
//	             1.0 reproduces the full ChEMBL / ml-20m shapes but needs
//	             several GB and minutes of generation time)
//	-calibrate   measure kernel costs on this machine instead of using the
//	             fixed Westmere-like model
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/des"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	ec := config.DefaultExperiments()
	if err := config.Parse(flag.CommandLine, os.Args[1:], &ec); err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	var cm des.CostModel
	if ec.Calibrate {
		fmt.Println("# calibrating kernel cost model on this machine...")
		cm = des.CalibrateCostModel(cfg.K)
	} else {
		cm = des.DefaultCostModel(cfg.K)
	}
	fmt.Printf("# cost model: perRating=%.3gs perItem=%.3gs rankOnePerRating=%.3gs rankOnePerItem=%.3gs\n",
		cm.PerRating, cm.PerItem, cm.RankOnePerRating, cm.RankOnePerItem)

	ran := false
	if ec.All || ec.Fig == 2 {
		fig2(cfg, cm)
		ran = true
	}
	if ec.All || ec.Fig == 3 {
		fig3(cfg, cm, ec.Scale)
		ran = true
	}
	if ec.All || ec.Fig == 4 {
		fig4(cfg, cm, ec.Scale)
		ran = true
	}
	if ec.All || ec.Fig == 5 {
		fig5(cfg, cm, ec.Scale)
		ran = true
	}
	if ec.All || ec.RMSE {
		rmseExperiment()
		ran = true
	}
	if ec.All || ec.Speedup {
		speedupExperiment(cfg, cm, ec.Scale)
		ran = true
	}
	if ec.All || ec.Ablations {
		ablations(cfg, cm, ec.Scale)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// chemblData generates the ChEMBL-shaped workload at the given scale.
// Any scale other than 1 is applied — upscaled DES workloads included
// (main rejects non-positive scales up front).
func chemblData(scale float64) *datagen.Dataset {
	spec := datagen.ChEMBL(20)
	if scale != 1 {
		spec = datagen.Scaled(spec, scale)
	}
	return datagen.Generate(spec)
}

// ml20mData generates the MovieLens-shaped workload at the given scale.
func ml20mData(scale float64) *datagen.Dataset {
	spec := datagen.ML20M(20)
	if scale != 1 {
		spec = datagen.Scaled(spec, scale)
	}
	return datagen.Generate(spec)
}
