// Command bench2json converts `go test -bench` output into the repo's
// benchmark-trajectory file (BENCH_kernels.json by default): a JSON array
// of labelled snapshots, one appended per run, so successive PRs record
// how the kernel hot paths move.
//
// Usage:
//
//	go test -run='^$' -bench=BenchmarkFig2UpdateKernels -benchmem . |
//	    go run ./cmd/bench2json -label my-change -out BENCH_kernels.json
//
// An existing snapshot with the same label is replaced in place (so a PR
// can re-run its measurement without duplicating entries); otherwise the
// snapshot is appended. See PERF.md for the workflow.
//
// Compare two recorded snapshots with a per-benchmark speedup table:
//
//	go run ./cmd/bench2json -diff pr4-pre-iteration,pr4-iteration
//
// which prints ns/op of both labels and the old/new ratio (>1 = the
// second label is faster) for every benchmark present in both.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and the
	// trailing -GOMAXPROCS suffix stripped, e.g.
	// "Fig2UpdateKernels/serial_chol/nnz=1000".
	Name string `json:"name"`
	// Iters is testing.B's iteration count for the measurement.
	Iters int64 `json:"iters"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other reported unit (B/op, allocs/op and custom
	// b.ReportMetric units such as ratings or vitems/s).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one labelled benchmark run.
type Snapshot struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	Go         string      `json:"go,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench2json: ")
	cfg := config.DefaultBench()
	if err := config.Parse(flag.CommandLine, os.Args[1:], &cfg); err != nil {
		log.Fatal(err)
	}

	if cfg.Diff != "" {
		labelA, labelB := cfg.DiffLabels()
		data, err := os.ReadFile(cfg.Out)
		if err != nil {
			log.Fatal(err)
		}
		var traj []Snapshot
		if err := json.Unmarshal(data, &traj); err != nil {
			log.Fatalf("%s is not a trajectory file: %v", cfg.Out, err)
		}
		table, err := Diff(traj, labelA, labelB, cfg.Metric)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(table)
		return
	}

	var src io.Reader = os.Stdin
	if cfg.In != "-" {
		f, err := os.Open(cfg.In)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	snap, err := Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	snap.Label = cfg.Label
	snap.Date = time.Now().UTC().Format("2006-01-02")
	snap.Go = runtime.Version()

	var traj []Snapshot
	if data, err := os.ReadFile(cfg.Out); err == nil {
		if err := json.Unmarshal(data, &traj); err != nil {
			log.Fatalf("existing %s is not a trajectory file: %v", cfg.Out, err)
		}
	}
	replaced := false
	for i := range traj {
		if traj[i].Label == snap.Label {
			traj[i] = *snap
			replaced = true
			break
		}
	}
	if !replaced {
		traj = append(traj, *snap)
	}
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d benchmarks under label %q in %s\n",
		len(snap.Benchmarks), snap.Label, cfg.Out)
}

// Diff renders the per-benchmark comparison table between two labelled
// snapshots. With metric == "" it compares the headline ns/op and the
// ratio column is the speedup old/new (>1 means b is faster). A named
// metric (p99-ns, req/s, B/op, ...) compares that recorded unit
// instead, and the ratio column becomes new/old (>1 means b reports a
// larger value — better or worse depends on the metric, so the header
// says what it is). Benchmarks present in only one snapshot (or
// missing the metric) are listed below the table so a renamed series is
// visible rather than silently dropped.
func Diff(traj []Snapshot, labelA, labelB, metric string) (string, error) {
	find := func(label string) (*Snapshot, error) {
		for i := range traj {
			if traj[i].Label == label {
				return &traj[i], nil
			}
		}
		known := make([]string, len(traj))
		for i := range traj {
			known[i] = traj[i].Label
		}
		return nil, fmt.Errorf("no snapshot labelled %q (have: %s)", label, strings.Join(known, ", "))
	}
	a, err := find(labelA)
	if err != nil {
		return "", err
	}
	b, err := find(labelB)
	if err != nil {
		return "", err
	}

	// value pulls the compared figure out of one benchmark; render and
	// the ratio direction depend on whether it is the headline ns/op or
	// a named metric.
	value := func(bench Benchmark) (float64, bool) {
		if metric == "" {
			return bench.NsPerOp, true
		}
		v, ok := bench.Metrics[metric]
		return v, ok
	}
	render := fmtNs
	ratioHead := "speedup"
	if metric != "" {
		render = func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
		ratioHead = metric + " new/old"
	}

	aByName := make(map[string]Benchmark, len(a.Benchmarks))
	for _, bench := range a.Benchmarks {
		aByName[bench.Name] = bench
	}
	var sb strings.Builder
	width := len("benchmark")
	for _, bench := range b.Benchmarks {
		if _, ok := aByName[bench.Name]; ok && len(bench.Name) > width {
			width = len(bench.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %14s  %14s  %*s\n", width, "benchmark", labelA, labelB, len(ratioHead), ratioHead)
	matched := make(map[string]bool, len(b.Benchmarks))
	for _, bb := range b.Benchmarks {
		ab, inA := aByName[bb.Name]
		if !inA {
			continue
		}
		av, aOK := value(ab)
		bv, bOK := value(bb)
		if !aOK || !bOK {
			fmt.Fprintf(&sb, "# no %s recorded for %s in both labels\n", metric, bb.Name)
			matched[bb.Name] = true // present in both; just not comparable
			continue
		}
		matched[bb.Name] = true
		ratio := "n/a"
		switch {
		case metric == "" && bv > 0:
			ratio = fmt.Sprintf("%.2fx", av/bv)
		case metric != "" && av > 0:
			ratio = fmt.Sprintf("%.2fx", bv/av)
		}
		fmt.Fprintf(&sb, "%-*s  %14s  %14s  %*s\n",
			width, bb.Name, render(av), render(bv), len(ratioHead), ratio)
	}
	for _, ab := range a.Benchmarks {
		if !matched[ab.Name] {
			fmt.Fprintf(&sb, "# only in %s: %s\n", labelA, ab.Name)
		}
	}
	for _, bb := range b.Benchmarks {
		if !matched[bb.Name] {
			fmt.Fprintf(&sb, "# only in %s: %s\n", labelB, bb.Name)
		}
	}
	if len(matched) == 0 {
		return "", fmt.Errorf("snapshots %q and %q share no benchmarks", labelA, labelB)
	}
	return sb.String(), nil
}

// fmtNs renders a ns/op figure with a human unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// Parse reads `go test -bench` output and collects its benchmark lines.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	return snap, sc.Err()
}

// parseLine parses one "BenchmarkX-N  iters  v unit  v unit ..." line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix if it is purely numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
