package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkFig2UpdateKernels/serial_chol/nnz=1000-8   	    6452	    185432 ns/op	      1000 ratings	      48 B/op	       1 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "Fig2UpdateKernels/serial_chol/nnz=1000" {
		t.Fatalf("name %q", b.Name)
	}
	if b.Iters != 6452 || b.NsPerOp != 185432 {
		t.Fatalf("iters=%d ns=%v", b.Iters, b.NsPerOp)
	}
	if b.Metrics["ratings"] != 1000 || b.Metrics["B/op"] != 48 {
		t.Fatalf("metrics %v", b.Metrics)
	}
	if _, ok := parseLine("ok  \trepro\t4.0s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
}

func diffFixture() []Snapshot {
	return []Snapshot{
		{Label: "old", Benchmarks: []Benchmark{
			{Name: "Fig3Multicore/TBB", NsPerOp: 30e6},
			{Name: "Fig3Multicore/OpenMP", NsPerOp: 40e6},
			{Name: "Retired/Series", NsPerOp: 5},
		}},
		{Label: "new", Benchmarks: []Benchmark{
			{Name: "Fig3Multicore/TBB", NsPerOp: 15e6},
			{Name: "Fig3Multicore/OpenMP", NsPerOp: 40e6},
			{Name: "IterationPhases/score", NsPerOp: 9},
		}},
	}
}

func TestDiffSpeedupTable(t *testing.T) {
	table, err := Diff(diffFixture(), "old", "new", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Fig3Multicore/TBB", "2.00x", // 30ms -> 15ms
		"Fig3Multicore/OpenMP", "1.00x",
		"# only in old: Retired/Series",
		"# only in new: IterationPhases/score",
		"30.00ms", "15.00ms",
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestDiffNamedMetric pins the -metric extension: a named unit is
// compared instead of ns/op, the ratio flips to new/old, and series
// missing the metric are flagged instead of silently dropped.
func TestDiffNamedMetric(t *testing.T) {
	traj := []Snapshot{
		{Label: "unbatched", Benchmarks: []Benchmark{
			{Name: "ServeLoad/closed/vus=8", NsPerOp: 5e6, Metrics: map[string]float64{"req/s": 1000, "p99-ns": 9e6}},
			{Name: "ServeLoad/closed/vus=1", NsPerOp: 1e6, Metrics: map[string]float64{"p99-ns": 2e6}},
		}},
		{Label: "batched", Benchmarks: []Benchmark{
			{Name: "ServeLoad/closed/vus=8", NsPerOp: 4e6, Metrics: map[string]float64{"req/s": 2500, "p99-ns": 8e6}},
			{Name: "ServeLoad/closed/vus=1", NsPerOp: 1e6, Metrics: map[string]float64{"p99-ns": 2e6}},
		}},
	}
	table, err := Diff(traj, "unbatched", "batched", "req/s")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"req/s new/old", "2.50x", "1000", "2500",
		"# no req/s recorded for ServeLoad/closed/vus=1 in both labels",
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("metric table missing %q:\n%s", want, table)
		}
	}

	// The default ns/op diff still reads speedup = old/new.
	table, err = Diff(traj, "unbatched", "batched", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "1.25x") || !strings.Contains(table, "speedup") {
		t.Fatalf("default diff broken:\n%s", table)
	}
}

func TestDiffUnknownLabel(t *testing.T) {
	if _, err := Diff(diffFixture(), "old", "nope", ""); err == nil {
		t.Fatal("unknown label must error")
	}
	if _, err := Diff(diffFixture(), "nope", "new", ""); err == nil {
		t.Fatal("unknown label must error")
	}
}

func TestDiffNoSharedBenchmarks(t *testing.T) {
	traj := []Snapshot{
		{Label: "a", Benchmarks: []Benchmark{{Name: "X", NsPerOp: 1}}},
		{Label: "b", Benchmarks: []Benchmark{{Name: "Y", NsPerOp: 1}}},
	}
	if _, err := Diff(traj, "a", "b", ""); err == nil {
		t.Fatal("disjoint snapshots must error")
	}
}

func TestFmtNs(t *testing.T) {
	for _, tc := range []struct {
		ns   float64
		want string
	}{
		{500, "500ns"}, {1500, "1.50µs"}, {2.5e6, "2.50ms"}, {3e9, "3.00s"},
	} {
		if got := fmtNs(tc.ns); got != tc.want {
			t.Fatalf("fmtNs(%v) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
