package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/config"
	"repro/internal/serve"
)

// testCkpt trains a tiny model and writes its checkpoint, exercising
// the same trainer path a real deployment uses. seed varies the chain
// so two checkpoints can hold genuinely different posteriors.
func testCkpt(t *testing.T, dir, name string, seed uint64) (string, bpmf.Config) {
	t.Helper()
	ratings := []bpmf.Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 1, Value: 4},
		{User: 1, Item: 0, Value: 4}, {User: 1, Item: 2, Value: 2},
		{User: 2, Item: 1, Value: 5}, {User: 2, Item: 2, Value: 1},
	}
	data, err := bpmf.DataFromRatings(3, 3, ratings, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bpmf.Defaults()
	cfg.K = 2
	cfg.Iters = 4
	cfg.Burnin = 2
	cfg.Seed = seed
	ckpt := filepath.Join(dir, name)
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bpmf.TrainWithCheckpoint(data, cfg, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return ckpt, cfg
}

// testRegistry opens a single-model registry over a fresh checkpoint,
// the way main() synthesizes one from classic single-model flags.
func testRegistry(t *testing.T) *serve.Registry {
	t.Helper()
	ckpt, cfg := testCkpt(t, t.TempDir(), "model.ckpt", 42)
	reg, err := serve.NewRegistry([]serve.ModelSpec{
		{Name: "default", Path: ckpt, Opts: serve.Options{Alpha: cfg.Alpha}},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.EnableBatching(serve.DefaultBatchOptions())
	t.Cleanup(func() { reg.Close() })
	return reg
}

// TestReloadRequiresPOST pins the /reload method guard: reload mutates
// server state, so GET (and friends) must get 405 without triggering a
// snapshot swap, while POST still reloads. Both the legacy route and
// the versioned per-model route share the guard.
func TestReloadRequiresPOST(t *testing.T) {
	reg := testRegistry(t)
	mux := newMux(reg)
	srv, _ := reg.Get("default")
	base := srv.Reloads.Load() // the initial Open counts as the first load

	for _, path := range []string{"/reload", "/v1/default/reload"} {
		for _, method := range []string{http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete} {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want %d", method, path, rec.Code, http.StatusMethodNotAllowed)
			}
			if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
				t.Errorf("%s %s Allow header = %q, want POST", method, path, allow)
			}
		}
	}
	if got := srv.Reloads.Load(); got != base {
		t.Fatalf("non-POST methods triggered %d reloads", got-base)
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /reload = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := srv.Reloads.Load(); got != base+1 {
		t.Fatalf("POST /reload performed %d reloads, want 1", got-base)
	}
}

// TestHealthzAndPredictStillServe is a smoke check that the extracted
// mux wires the read-only endpoints the way main always did — on both
// the legacy routes and their /v1/default/ aliases.
func TestHealthzAndPredictStillServe(t *testing.T) {
	mux := newMux(testRegistry(t))
	for _, url := range []string{
		"/healthz",
		"/predict?user=0&item=1", "/recommend?user=0&n=2",
		"/v1/default/predict?user=0&item=1", "/v1/default/recommend?user=0&n=2",
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, body %s", url, rec.Code, rec.Body.String())
		}
	}
}

// TestUnknownModel404 pins the unknown-model contract: a request for an
// unregistered model name answers 404 with a JSON body that names the
// registered models, so a typo'd route is self-diagnosing.
func TestUnknownModel404(t *testing.T) {
	mux := newMux(testRegistry(t))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/nope/predict?user=0&item=1", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /v1/nope/predict = %d, want 404 (body %s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Error  string   `json:"error"`
		Models []string `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("404 body is not JSON: %v (body %s)", err, rec.Body.String())
	}
	if !strings.Contains(body.Error, "nope") {
		t.Errorf("404 error %q does not name the unknown model", body.Error)
	}
	if len(body.Models) != 1 || body.Models[0] != "default" {
		t.Errorf("404 models = %v, want [default]", body.Models)
	}
}

// TestPredictMatchesPreRegistryPath is the refactor regression pin: the
// answers served through the config-built registry must be
// bit-identical to what the pre-registry path (serve.Open on the same
// checkpoint with the same options) computes.
func TestPredictMatchesPreRegistryPath(t *testing.T) {
	ckpt, tcfg := testCkpt(t, t.TempDir(), "model.ckpt", 42)

	// Pre-refactor path: open the checkpoint directly.
	old, err := serve.Open(ckpt, serve.Options{Alpha: tcfg.Alpha})
	if err != nil {
		t.Fatal(err)
	}

	// New path: single-model config -> buildSpecs -> registry -> mux.
	cfg := config.DefaultServe()
	cfg.Model.Ckpt = ckpt
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	models, err := cfg.EffectiveModels()
	if err != nil {
		t.Fatal(err)
	}
	specs, err := buildSpecs(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := serve.NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	reg.EnableBatching(serve.DefaultBatchOptions())
	mux := newMux(reg)

	for user := 0; user < 3; user++ {
		for item := 0; item < 3; item++ {
			want, err := old.Model().Predict(user, item)
			if err != nil {
				t.Fatal(err)
			}
			for _, path := range []string{"/predict", "/v1/default/predict"} {
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
					fmt.Sprintf("%s?user=%d&item=%d", path, user, item), nil))
				if rec.Code != http.StatusOK {
					t.Fatalf("GET %s u=%d i=%d = %d, body %s", path, user, item, rec.Code, rec.Body.String())
				}
				var got struct {
					Score float64 `json:"score"`
					Mean  float64 `json:"mean"`
					Std   float64 `json:"std"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
					t.Fatal(err)
				}
				if got.Score != want.Score || got.Mean != want.Mean || got.Std != want.Std {
					t.Errorf("%s u=%d i=%d = (%v,%v,%v), pre-registry path = (%v,%v,%v)",
						path, user, item, got.Score, got.Mean, got.Std, want.Score, want.Mean, want.Std)
				}
			}
		}
	}
}

// TestTwoModelIndependentReload pins registry isolation: reloading one
// model must not change the other's answers or reload count.
func TestTwoModelIndependentReload(t *testing.T) {
	dir := t.TempDir()
	ckptA, cfgA := testCkpt(t, dir, "a.ckpt", 1)
	ckptB, cfgB := testCkpt(t, dir, "b.ckpt", 2)
	reg, err := serve.NewRegistry([]serve.ModelSpec{
		{Name: "a", Path: ckptA, Opts: serve.Options{Alpha: cfgA.Alpha}},
		{Name: "b", Path: ckptB, Opts: serve.Options{Alpha: cfgB.Alpha}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	mux := newMux(reg)

	predict := func(model string) string {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/"+model+"/predict?user=0&item=2", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/%s/predict = %d, body %s", model, rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}
	beforeA, beforeB := predict("a"), predict("b")
	if beforeA == beforeB {
		t.Fatal("models a and b serve identical answers; the two-chain setup is broken")
	}

	// Retrain model a under a different seed and hot-reload only it.
	retrained, _ := testCkpt(t, dir, "a2.ckpt", 3)
	blob, err := os.ReadFile(retrained)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckptA, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	srvA, _ := reg.Get("a")
	srvB, _ := reg.Get("b")
	baseB := srvB.Reloads.Load()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/a/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/a/reload = %d, body %s", rec.Code, rec.Body.String())
	}
	if srvA.Reloads.Load() != 2 {
		t.Errorf("model a reloads = %d, want 2 (open + explicit reload)", srvA.Reloads.Load())
	}
	if srvB.Reloads.Load() != baseB {
		t.Errorf("reloading model a bumped model b's reload count")
	}
	if got := predict("a"); got == beforeA {
		t.Error("model a serves the same answers after reloading a retrained chain")
	}
	if got := predict("b"); got != beforeB {
		t.Errorf("model b's answers changed when model a reloaded:\n before %s after %s", beforeB, got)
	}
}

// rateLimitedRegistry opens a single-model registry whose admission
// control allows one request per client, then sheds.
func rateLimitedRegistry(t *testing.T) *serve.Registry {
	t.Helper()
	ckpt, cfg := testCkpt(t, t.TempDir(), "model.ckpt", 42)
	reg, err := serve.NewRegistry([]serve.ModelSpec{
		{Name: "default", Path: ckpt, Opts: serve.Options{Alpha: cfg.Alpha}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	opts := serve.DefaultBatchOptions()
	opts.Rate, opts.Burst = 0.001, 1
	reg.EnableBatching(opts)
	return reg
}

// TestRateLimitSheds429WithRetryAfter pins the admission-control
// surface: a client over its rate gets 429 with a Retry-After hint and
// a JSON error body, per client — another client is still served.
func TestRateLimitSheds429WithRetryAfter(t *testing.T) {
	mux := newMux(rateLimitedRegistry(t))
	get := func(remote, path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.RemoteAddr = remote
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec
	}
	if rec := get("10.0.0.1:555", "/predict?user=0&item=1"); rec.Code != http.StatusOK {
		t.Fatalf("first request = %d, body %s", rec.Code, rec.Body.String())
	}
	rec := get("10.0.0.1:666", "/recommend?user=0&n=2") // same host, new port: same bucket
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("429 Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Errorf("429 body not a JSON error: %v (%s)", err, rec.Body.String())
	}
	if rec := get("10.0.0.2:555", "/predict?user=0&item=1"); rec.Code != http.StatusOK {
		t.Errorf("other client shed too: %d (body %s)", rec.Code, rec.Body.String())
	}
}

// postFoldIn sends one /foldin body and returns the recorder.
func postFoldIn(mux *http.ServeMux, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/foldin", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// TestFoldInBodyHygiene pins the request-body satellite: oversized
// bodies get 413, unknown fields and trailing garbage get 400, and a
// well-formed body still works.
func TestFoldInBodyHygiene(t *testing.T) {
	mux := newMux(testRegistry(t))

	if rec := postFoldIn(mux, `{"items":[0,1],"values":[5,4],"key":1,"n":2}`); rec.Code != http.StatusOK {
		t.Fatalf("well-formed foldin = %d, body %s", rec.Code, rec.Body.String())
	}
	if rec := postFoldIn(mux, `{"items":[0],"values":[5],"key":1,"frobnicate":true}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400 (body %s)", rec.Code, rec.Body.String())
	}
	if rec := postFoldIn(mux, `{"items":[0],"values":[5],"key":1} {"sneaky":1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("trailing garbage = %d, want 400 (body %s)", rec.Code, rec.Body.String())
	}
	huge := `{"items":[0],"values":[5],"key":1,"n":0` + strings.Repeat(" ", maxFoldInBody) + `}`
	if rec := postFoldIn(mux, huge); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413 (body %s)", rec.Code, rec.Body.String())
	}
}

// TestStatusOfShed pins the error → status mapping for admission sheds.
func TestStatusOfShed(t *testing.T) {
	if s := statusOf(&serve.Shed{RateLimited: true}); s != http.StatusTooManyRequests {
		t.Errorf("rate-limit shed = %d, want 429", s)
	}
	if s := statusOf(&serve.Shed{}); s != http.StatusServiceUnavailable {
		t.Errorf("overload shed = %d, want 503", s)
	}
	if s := statusOf(fmt.Errorf("wrapped: %w", &serve.Shed{})); s != http.StatusServiceUnavailable {
		t.Errorf("wrapped shed = %d, want 503", s)
	}
}
