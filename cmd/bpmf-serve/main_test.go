package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/serve"
)

// testServer trains a tiny model, checkpoints it and opens a serving
// snapshot over it, exercising the same path main() takes.
func testServer(t *testing.T) *serve.Server {
	t.Helper()
	ratings := []bpmf.Rating{
		{User: 0, Item: 0, Value: 5}, {User: 0, Item: 1, Value: 4},
		{User: 1, Item: 0, Value: 4}, {User: 1, Item: 2, Value: 2},
		{User: 2, Item: 1, Value: 5}, {User: 2, Item: 2, Value: 1},
	}
	data, err := bpmf.DataFromRatings(3, 3, ratings, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bpmf.Defaults()
	cfg.K = 2
	cfg.Iters = 4
	cfg.Burnin = 2
	ckpt := filepath.Join(t.TempDir(), "model.ckpt")
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bpmf.TrainWithCheckpoint(data, cfg, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.Open(ckpt, serve.Options{Alpha: cfg.Alpha})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestReloadRequiresPOST pins the /reload method guard: reload mutates
// server state, so GET (and friends) must get 405 without triggering a
// snapshot swap, while POST still reloads.
func TestReloadRequiresPOST(t *testing.T) {
	srv := testServer(t)
	mux := newMux(srv)
	base := srv.Reloads.Load() // the initial Open counts as the first load

	for _, method := range []string{http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(method, "/reload", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s /reload = %d, want %d", method, rec.Code, http.StatusMethodNotAllowed)
		}
		if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
			t.Errorf("%s /reload Allow header = %q, want POST", method, allow)
		}
	}
	if got := srv.Reloads.Load(); got != base {
		t.Fatalf("non-POST methods triggered %d reloads", got-base)
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /reload = %d, body %s", rec.Code, rec.Body.String())
	}
	if got := srv.Reloads.Load(); got != base+1 {
		t.Fatalf("POST /reload performed %d reloads, want 1", got-base)
	}
}

// TestHealthzAndPredictStillServe is a smoke check that the extracted
// mux wires the read-only endpoints the way main always did.
func TestHealthzAndPredictStillServe(t *testing.T) {
	mux := newMux(testServer(t))
	for _, url := range []string{"/healthz", "/predict?user=0&item=1", "/recommend?user=0&n=2"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, body %s", url, rec.Code, rec.Body.String())
		}
	}
}
