// Command bpmf-serve is the checkpoint-backed model server: it loads a
// BPMF checkpoint (written by `bpmf -ckpt-out` or bpmf.TrainWithCheckpoint)
// into an immutable serving snapshot and answers prediction,
// recommendation and cold-start fold-in queries over HTTP. The snapshot
// hot-reloads on SIGHUP or when the checkpoint file changes on disk
// (-watch), so a long-running trainer can keep publishing fresher
// posteriors next to a live server.
//
// Examples:
//
//	bpmf -synthetic small -ckpt-out model.ckpt
//	bpmf-serve -ckpt model.ckpt -addr :8080 -topn 100 -threads 8
//
//	curl 'localhost:8080/predict?user=3&item=17'
//	curl 'localhost:8080/recommend?user=3&n=10'
//	curl -d '{"items":[1,5,9],"values":[5,4,1],"key":7,"n":5}' localhost:8080/foldin
//
// Endpoints:
//
//	GET  /predict?user=U&item=I   point score + posterior mean/std
//	GET  /recommend?user=U&n=N    top-N unseen items
//	POST /foldin                  sample a new user's factors from ratings
//	POST /reload                  force a snapshot reload
//	GET  /healthz                 liveness + snapshot stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/rank"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf-serve: ")

	ckptPath := flag.String("ckpt", "", "checkpoint file to serve (required)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	dataPath := flag.String("data", "", "rating matrix (MatrixMarket .mtx or binary .bcsr): enables already-rated exclusion in /recommend")
	testFrac := flag.Float64("test", 0, "held-out fraction of the training run; with -data, reconstructs the test split (seeded by the checkpoint) so /predict serves exact posterior intervals")
	alpha := flag.Float64("alpha", 2.0, "observation precision the chain was trained with")
	clampMin := flag.Float64("clamp-min", 0, "minimum served rating (with -clamp-max)")
	clampMax := flag.Float64("clamp-max", 0, "maximum served rating (0,0 = no clipping)")
	topn := flag.Int("topn", 0, "precompute every user's top-N list at (re)load time (0 = off)")
	threads := flag.Int("threads", 0, "worker threads for the top-N precompute (0 = GOMAXPROCS)")
	watch := flag.Duration("watch", 0, "poll the checkpoint file at this interval and hot-reload on change (0 = SIGHUP only)")
	flag.Parse()
	if *ckptPath == "" {
		log.Fatal("-ckpt is required")
	}

	opts := serve.Options{Alpha: *alpha, ClampMin: *clampMin, ClampMax: *clampMax, TopN: *topn}
	if *topn > 0 {
		pool := sched.NewPool(*threads)
		defer pool.Close()
		opts.Pool = pool
	}
	if *dataPath != "" {
		isB, err := sparse.IsBCSR(*dataPath)
		if err != nil {
			log.Fatal(err)
		}
		if isB && *testFrac <= 0 {
			// Exclusion-only mode over binary shards: map the file instead
			// of decoding it. Restarts touch no payload bytes up front;
			// each user's shard is verified the first time that user asks
			// for a recommendation, and co-located servers share the page
			// cache. (-test > 0 needs the decoded matrix for the split.)
			mp, err := sparse.OpenBinary(*dataPath)
			if err != nil {
				log.Fatal(err)
			}
			defer mp.Close()
			opts.ExcludeSource = mp
			if *topn > 0 {
				// The top-N precompute sweeps every user, so all shards get
				// verified at load time anyway; the mapping still avoids
				// retaining a decoded copy of the matrix.
				log.Printf("exclusions mapped from %s (%d shards; -topn precompute verifies all of them at load)", *dataPath, mp.Shards())
			} else {
				log.Printf("exclusions mapped from %s (%d shards, verified lazily per first query)", *dataPath, mp.Shards())
			}
		} else {
			excl, test, seed, err := loadExclusions(*dataPath, *testFrac, *ckptPath)
			if err != nil {
				log.Fatal(err)
			}
			opts.Exclude, opts.Test = excl, test
			if test != nil {
				// The test split was derived from this checkpoint's seed; pin
				// it so a hot reload of a chain retrained under another seed
				// cannot serve misaligned posterior accumulators.
				opts.PinSeed, opts.Seed = true, seed
			}
		}
	}

	srv, err := serve.Open(*ckptPath, opts)
	if err != nil {
		log.Fatal(err)
	}
	m := srv.Model()
	log.Printf("serving %d users x %d items (K=%d, %d posterior samples) from %s",
		m.NumUsers(), m.NumItems(), m.K(), m.NSamples(), *ckptPath)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP = operator-driven hot reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				log.Printf("SIGHUP reload failed (still serving previous snapshot): %v", err)
			} else {
				log.Printf("SIGHUP reload ok (%d reloads)", srv.Reloads.Load())
			}
		}
	}()
	if *watch > 0 {
		go srv.Watch(ctx, *watch, func(err error) { log.Printf("watch reload failed: %v", err) })
	}

	hs := &http.Server{Addr: *addr, Handler: newMux(srv)}
	go func() {
		<-ctx.Done()
		sd, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(sd)
	}()
	log.Printf("listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// newMux wires the HTTP endpoints onto a serving snapshot.
func newMux(srv *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) { handlePredict(srv, w, r) })
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, r *http.Request) { handleRecommend(srv, w, r) })
	mux.HandleFunc("/foldin", func(w http.ResponseWriter, r *http.Request) { handleFoldIn(srv, w, r) })
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) { handleReload(srv, w, r) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m := srv.Model()
		writeJSON(w, map[string]any{
			"users": m.NumUsers(), "items": m.NumItems(), "k": m.K(),
			"samples": m.NSamples(), "reloads": srv.Reloads.Load(),
		})
	})
	return mux
}

// handleReload swaps in a fresh snapshot. Reload mutates server state,
// so it demands POST — a crawler or monitoring GET must never trigger
// a reload the way it could when every method was accepted.
func handleReload(srv *serve.Server, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST to reload"))
		return
	}
	if err := srv.Reload(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]any{"reloads": srv.Reloads.Load()})
}

// loadExclusions reads the training rating matrix and, when testFrac > 0,
// reconstructs the training run's train/test split so the served
// posterior intervals line up with the checkpoint's accumulators. The
// split is seeded by the checkpoint's own seed, so it matches the run
// that produced the checkpoint exactly.
func loadExclusions(dataPath string, testFrac float64, ckptPath string) (*sparse.CSR, []sparse.Entry, uint64, error) {
	cf, err := os.Open(ckptPath)
	if err != nil {
		return nil, nil, 0, err
	}
	ckpt, err := core.ReadCheckpoint(cf)
	cf.Close()
	if err != nil {
		return nil, nil, 0, err
	}
	full, err := sparse.Load(dataPath)
	if err != nil {
		return nil, nil, 0, err
	}
	if testFrac <= 0 {
		return full, nil, ckpt.Seed, nil
	}
	train, test := sparse.SplitTrainTest(full, testFrac, ckpt.Seed)
	if len(test) != len(ckpt.PredSum) {
		return nil, nil, 0, fmt.Errorf("reconstructed split has %d test entries, checkpoint has %d accumulators: -test does not match the training run",
			len(test), len(ckpt.PredSum))
	}
	return train, test, ckpt.Seed, nil
}

func handlePredict(srv *serve.Server, w http.ResponseWriter, r *http.Request) {
	user, err := intParam(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	item, err := intParam(r, "item")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := srv.Model().Predict(user, item)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, map[string]any{
		"user": user, "item": item,
		"score": p.Score, "mean": p.Mean, "std": p.Std, "posterior": p.Posterior,
	})
}

func handleRecommend(srv *serve.Server, w http.ResponseWriter, r *http.Request) {
	user, err := intParam(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	n, err := intParam(r, "n")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	top, err := srv.Model().Recommend(user, n)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, map[string]any{"user": user, "items": itemsJSON(top)})
}

// foldInRequest is the /foldin body: a new user's observed ratings, a
// deterministic draw key, and how many recommendations to return.
type foldInRequest struct {
	Items  []int32   `json:"items"`
	Values []float64 `json:"values"`
	Key    int       `json:"key"`
	N      int       `json:"n"`
}

func handleFoldIn(srv *serve.Server, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST a JSON body"))
		return
	}
	var req foldInRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	m := srv.Model()
	u, err := m.FoldIn(req.Items, req.Values, req.Key)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	resp := map[string]any{"factors": []float64(u)}
	if req.N > 0 {
		top, err := m.RecommendVector(u, req.Items, req.N)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		resp["items"] = itemsJSON(top)
	}
	writeJSON(w, resp)
}

func itemsJSON(top []rank.Item) []map[string]any {
	out := make([]map[string]any, len(top))
	for i, it := range top {
		out[i] = map[string]any{"item": it.Index, "score": it.Score}
	}
	return out
}

// statusOf maps the serving layer's documented errors to HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrUserRange), errors.Is(err, serve.ErrItemRange):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrBadInput):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func intParam(r *http.Request, name string) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
