// Command bpmf-serve is the checkpoint-backed model server: it loads
// BPMF checkpoints (written by `bpmf -ckpt-out` or
// bpmf.TrainWithCheckpoint) into immutable serving snapshots and
// answers prediction, recommendation and cold-start fold-in queries
// over HTTP. It hosts a registry of N named models — each with its own
// checkpoint path, exclusion source, top-N, clamp and lineage
// configuration — and each model hot-reloads independently on SIGHUP or
// when its checkpoint file changes on disk (-watch), so long-running
// trainers can keep publishing fresher posteriors next to a live
// server, one model at a time.
//
// Single-model (classic flags; serves under the name "default"):
//
//	bpmf -synthetic small -ckpt-out model.ckpt
//	bpmf-serve -ckpt model.ckpt -addr :8080 -topn 100 -threads 8
//
//	curl 'localhost:8080/predict?user=3&item=17'
//	curl 'localhost:8080/v1/default/recommend?user=3&n=10'
//
// Multi-model (one JSON config file; flags still win where they overlap):
//
//	bpmf-serve -config serve.json
//
//	// serve.json
//	{
//	  "addr": ":8080",
//	  "watch": "2s",
//	  "models": {
//	    "movies": {"ckpt": "movies.ckpt", "data": "movies.bcsr", "topn": 100},
//	    "drugs":  {"ckpt": "drugs.ckpt", "lineage": {"seed": 42}}
//	  }
//	}
//
//	curl 'localhost:8080/v1/movies/predict?user=3&item=17'
//	curl 'localhost:8080/v1/drugs/recommend?user=3&n=10'
//
// Endpoints (the unversioned forms serve the model named "default"):
//
//	GET  /v1/<model>/predict?user=U&item=I   point score + posterior mean/std
//	GET  /v1/<model>/recommend?user=U&n=N    top-N unseen items
//	POST /v1/<model>/foldin                  sample a new user's factors from ratings
//	POST /v1/<model>/reload                  force a snapshot reload of one model
//	GET  /healthz                            liveness + per-model readiness
//
// Unknown model names return 404 with a JSON body listing the
// registered names.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/rank"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf-serve: ")

	cfg := config.DefaultServe()
	if err := config.Parse(flag.CommandLine, os.Args[1:], &cfg); err != nil {
		log.Fatal(err)
	}

	models, err := cfg.EffectiveModels()
	if err != nil {
		log.Fatal(err)
	}
	var pool *sched.Pool
	for _, mc := range models {
		if mc.TopN > 0 {
			pool = sched.NewPool(cfg.Threads)
			defer pool.Close()
			break
		}
	}
	specs, err := buildSpecs(models, pool, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	reg, err := serve.NewRegistry(specs)
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()
	for _, h := range reg.Health() {
		log.Printf("model %q: %d users x %d items (K=%d, %d posterior samples)",
			h.Name, h.Users, h.Items, h.K, h.Samples)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP = operator-driven hot reload of every model; each model
	// swaps (or keeps its previous snapshot) independently.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if errs := reg.ReloadAll(); len(errs) == 0 {
				log.Printf("SIGHUP reload ok (%d models)", reg.Len())
			} else {
				for name, err := range errs {
					log.Printf("SIGHUP reload of model %q failed (still serving previous snapshot): %v", name, err)
				}
			}
		}
	}()
	if cfg.Watch > 0 {
		reg.Watch(ctx, cfg.Watch.Std(), func(name string, err error) {
			log.Printf("watch reload of model %q failed: %v", name, err)
		})
	}

	reg.EnableBatching(batchOptions(cfg.Serving))
	log.Printf("serving path: max-batch=%d max-delay=%s queue-bound=%d rate=%g",
		cfg.Serving.MaxBatch, cfg.Serving.MaxDelay, cfg.Serving.QueueBound, cfg.Serving.Rate)

	// Timeouts on every phase of the exchange so one stalled or
	// malicious client can never pin a connection (and its goroutine)
	// forever: slowloris headers, dribbled bodies, unread responses and
	// idle keep-alives all get bounded.
	hs := &http.Server{
		Addr:              cfg.Addr,
		Handler:           newMux(reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		<-ctx.Done()
		sd, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(sd)
	}()
	log.Printf("listening on %s (%d models)", cfg.Addr, reg.Len())
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// batchOptions maps the validated Serving config onto the serving
// layer's batcher knobs.
func batchOptions(s config.Serving) serve.BatchOptions {
	return serve.BatchOptions{
		MaxBatch:   s.MaxBatch,
		MaxDelay:   s.MaxDelay.Std(),
		QueueBound: s.QueueBound,
		Rate:       s.Rate,
		Burst:      s.Burst,
		RetryAfter: s.RetryAfter.Std(),
	}
}

// buildSpecs turns the validated config entries into registry specs,
// in deterministic name order. logf receives informational messages
// (nil = silent), keeping the function testable.
func buildSpecs(models map[string]config.ServeModel, pool *sched.Pool, logf func(string, ...any)) ([]serve.ModelSpec, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	specs := make([]serve.ModelSpec, 0, len(models))
	for _, name := range names {
		sp, err := buildSpec(name, models[name], pool, logf)
		if err != nil {
			// Release the exclusion mappings of already-built specs: the
			// registry never sees them, so nobody else will.
			for _, s := range specs {
				if s.Close != nil {
					_ = s.Close()
				}
			}
			return nil, fmt.Errorf("model %q: %w", name, err)
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// buildSpec resolves one model's serving options: clamp/top-N/lineage
// straight from the config, plus the exclusion source — a zero-copy
// .bcsr mapping when possible, a decoded matrix (and optionally the
// reconstructed test split) otherwise.
func buildSpec(name string, mc config.ServeModel, pool *sched.Pool, logf func(string, ...any)) (serve.ModelSpec, error) {
	opts := serve.Options{
		Alpha:        mc.Alpha,
		ClampMin:     mc.Clamp.Min,
		ClampMax:     mc.Clamp.Max,
		ClampEnabled: mc.Clamp.Enable,
		TopN:         mc.TopN,
	}
	if mc.TopN > 0 {
		opts.Pool = pool
	}
	if mc.Lineage != nil {
		opts.Lineage = &serve.Lineage{Seed: mc.Lineage.Seed, K: mc.Lineage.K}
	}
	spec := serve.ModelSpec{Name: name, Path: mc.Ckpt}
	if mc.Data != "" {
		isB, err := sparse.IsBCSR(mc.Data)
		if err != nil {
			return serve.ModelSpec{}, err
		}
		if isB && mc.TestFrac <= 0 {
			// Exclusion-only mode over binary shards: map the file instead
			// of decoding it. Restarts touch no payload bytes up front;
			// each user's shard is verified the first time that user asks
			// for a recommendation, and co-located servers share the page
			// cache. (TestFrac > 0 needs the decoded matrix for the split.)
			mp, err := sparse.OpenBinary(mc.Data)
			if err != nil {
				return serve.ModelSpec{}, err
			}
			opts.ExcludeSource = mp
			spec.Close = mp.Close
			if mc.TopN > 0 {
				// The top-N precompute sweeps every user, so all shards get
				// verified at load time anyway; the mapping still avoids
				// retaining a decoded copy of the matrix.
				logf("model %q: exclusions mapped from %s (%d shards; -topn precompute verifies all of them at load)", name, mc.Data, mp.Shards())
			} else {
				logf("model %q: exclusions mapped from %s (%d shards, verified lazily per first query)", name, mc.Data, mp.Shards())
			}
		} else {
			excl, test, seed, err := loadExclusions(mc.Data, mc.TestFrac, mc.Ckpt)
			if err != nil {
				return serve.ModelSpec{}, err
			}
			opts.Exclude, opts.Test = excl, test
			if test != nil && opts.Lineage == nil {
				// The test split was derived from this checkpoint's seed; pin
				// the lineage so a hot reload of a chain retrained under
				// another seed cannot serve misaligned posterior accumulators.
				opts.Lineage = &serve.Lineage{Seed: seed}
			}
		}
	}
	spec.Opts = opts
	return spec, nil
}

// route is one model's request path: its hot-reloading server plus the
// batcher coalescing its scoring work (nil = batching disabled, serve
// the per-request path directly).
type route struct {
	srv *serve.Server
	bt  *serve.Batcher
}

// admit applies per-client admission control before any scoring work.
// A false return means the request was shed and the 429 response (with
// its Retry-After hint) already written.
func (rt route) admit(w http.ResponseWriter, r *http.Request) bool {
	if rt.bt == nil {
		return true
	}
	if err := rt.bt.Admit(clientKey(r)); err != nil {
		httpError(w, statusOf(err), err)
		return false
	}
	return true
}

// clientKey buckets requests for rate limiting by client host.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (rt route) predict(user, item int) (serve.Prediction, error) {
	m := rt.srv.Model()
	if rt.bt != nil {
		return rt.bt.Predict(m, user, item)
	}
	return m.Predict(user, item)
}

func (rt route) recommend(user, n int) ([]rank.Item, error) {
	m := rt.srv.Model()
	if rt.bt != nil {
		return rt.bt.Recommend(m, user, n)
	}
	return m.Recommend(user, n)
}

func (rt route) recommendVector(m *serve.Model, u la.Vector, excl []int32, n int) ([]rank.Item, error) {
	if rt.bt != nil {
		return rt.bt.RecommendVector(m, u, excl, n)
	}
	return m.RecommendVector(u, excl, n)
}

// newMux wires the HTTP endpoints onto the model registry. The
// /v1/<model>/... routes address models by name; the unversioned
// legacy routes serve the model named "default", so pre-registry
// single-model deployments keep their URLs.
func newMux(reg *serve.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	byName := func(h func(route, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			srv, ok := reg.Get(r.PathValue("model"))
			if !ok {
				unknownModel(w, reg, r.PathValue("model"))
				return
			}
			h(route{srv: srv, bt: reg.Batcher(r.PathValue("model"))}, w, r)
		}
	}
	legacy := func(h func(route, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			srv, ok := reg.Get("default")
			if !ok {
				unknownModel(w, reg, "default")
				return
			}
			h(route{srv: srv, bt: reg.Batcher("default")}, w, r)
		}
	}
	mux.HandleFunc("/v1/{model}/predict", byName(handlePredict))
	mux.HandleFunc("/v1/{model}/recommend", byName(handleRecommend))
	mux.HandleFunc("/v1/{model}/foldin", byName(handleFoldIn))
	mux.HandleFunc("/v1/{model}/reload", byName(handleReload))
	mux.HandleFunc("/predict", legacy(handlePredict))
	mux.HandleFunc("/recommend", legacy(handleRecommend))
	mux.HandleFunc("/foldin", legacy(handleFoldIn))
	mux.HandleFunc("/reload", legacy(handleReload))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { handleHealthz(reg, w) })
	return mux
}

// handleHealthz reports registry-level liveness with per-model
// readiness: dimensions, reload counts, and the last reload error of
// any model still serving a stale-but-good snapshot.
func handleHealthz(reg *serve.Registry, w http.ResponseWriter) {
	models := make(map[string]any, reg.Len())
	ready := true
	for _, h := range reg.Health() {
		entry := map[string]any{
			"users": h.Users, "items": h.Items, "k": h.K,
			"samples": h.Samples, "reloads": h.Reloads,
			"ready": h.LastError == "",
		}
		if h.LastError != "" {
			entry["last_error"] = h.LastError
			ready = false
		}
		models[h.Name] = entry
	}
	writeJSON(w, map[string]any{"ready": ready, "models": models})
}

// unknownModel answers a request for an unregistered model name: 404
// with a JSON body listing the registered names, so a typo'd route is
// self-diagnosing.
func unknownModel(w http.ResponseWriter, reg *serve.Registry, name string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusNotFound)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error":  fmt.Sprintf("unknown model %q", name),
		"models": reg.Names(),
	})
}

// handleReload swaps in a fresh snapshot for one model. Reload mutates
// server state, so it demands POST — a crawler or monitoring GET must
// never trigger a reload the way it could when every method was
// accepted.
func handleReload(rt route, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST to reload"))
		return
	}
	if err := rt.srv.Reload(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]any{"reloads": rt.srv.Reloads.Load()})
}

// loadExclusions reads the training rating matrix and, when testFrac > 0,
// reconstructs the training run's train/test split so the served
// posterior intervals line up with the checkpoint's accumulators. The
// split is seeded by the checkpoint's own seed, so it matches the run
// that produced the checkpoint exactly.
func loadExclusions(dataPath string, testFrac float64, ckptPath string) (*sparse.CSR, []sparse.Entry, uint64, error) {
	cf, err := os.Open(ckptPath)
	if err != nil {
		return nil, nil, 0, err
	}
	ckpt, err := core.ReadCheckpoint(cf)
	cf.Close()
	if err != nil {
		return nil, nil, 0, err
	}
	full, err := sparse.Load(dataPath)
	if err != nil {
		return nil, nil, 0, err
	}
	if testFrac <= 0 {
		return full, nil, ckpt.Seed, nil
	}
	train, test := sparse.SplitTrainTest(full, testFrac, ckpt.Seed)
	if len(test) != len(ckpt.PredSum) {
		return nil, nil, 0, fmt.Errorf("reconstructed split has %d test entries, checkpoint has %d accumulators: -test does not match the training run",
			len(test), len(ckpt.PredSum))
	}
	return train, test, ckpt.Seed, nil
}

func handlePredict(rt route, w http.ResponseWriter, r *http.Request) {
	if !rt.admit(w, r) {
		return
	}
	user, err := intParam(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	item, err := intParam(r, "item")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := rt.predict(user, item)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, map[string]any{
		"user": user, "item": item,
		"score": p.Score, "mean": p.Mean, "std": p.Std, "posterior": p.Posterior,
	})
}

func handleRecommend(rt route, w http.ResponseWriter, r *http.Request) {
	if !rt.admit(w, r) {
		return
	}
	user, err := intParam(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	n, err := intParam(r, "n")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	top, err := rt.recommend(user, n)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeJSON(w, map[string]any{"user": user, "items": itemsJSON(top)})
}

// foldInRequest is the /foldin body: a new user's observed ratings, a
// deterministic draw key, and how many recommendations to return.
type foldInRequest struct {
	Items  []int32   `json:"items"`
	Values []float64 `json:"values"`
	Key    int       `json:"key"`
	N      int       `json:"n"`
}

// maxFoldInBody caps /foldin request bodies: a fold-in carries one
// user's ratings, so 1 MiB is generous — anything bigger is a mistake
// or abuse, rejected with 413 before it can balloon the decoder.
const maxFoldInBody = 1 << 20

func handleFoldIn(rt route, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST a JSON body"))
		return
	}
	if !rt.admit(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxFoldInBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req foldInRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// One JSON document per request: trailing garbage would be silently
	// ignored by a bare Decode, masking client bugs.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		httpError(w, http.StatusBadRequest, errors.New("request body holds more than one JSON document"))
		return
	}
	m := rt.srv.Model()
	u, err := m.FoldIn(req.Items, req.Values, req.Key)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	resp := map[string]any{"factors": []float64(u)}
	if req.N > 0 {
		top, err := rt.recommendVector(m, u, req.Items, req.N)
		if err != nil {
			httpError(w, statusOf(err), err)
			return
		}
		resp["items"] = itemsJSON(top)
	}
	writeJSON(w, resp)
}

func itemsJSON(top []rank.Item) []map[string]any {
	out := make([]map[string]any, len(top))
	for i, it := range top {
		out[i] = map[string]any{"item": it.Index, "score": it.Score}
	}
	return out
}

// statusOf maps the serving layer's documented errors to HTTP statuses.
// Admission-control sheds map to 429 (client over its rate) or 503
// (queue at its SLO bound); httpError attaches their Retry-After hint.
func statusOf(err error) int {
	var shed *serve.Shed
	switch {
	case errors.As(err, &shed):
		if shed.RateLimited {
			return http.StatusTooManyRequests
		}
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrUserRange), errors.Is(err, serve.ErrItemRange):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrBadInput):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func intParam(r *http.Request, name string) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	var shed *serve.Shed
	if errors.As(err, &shed) {
		// Whole seconds, rounded up, minimum 1: Retry-After's integer
		// form cannot express sub-second hints.
		secs := int(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
