// Command bpmf-trainer is the continuous-training loop: it drains an
// append-only rating log into compacted delta .bcsr shards, warm-starts
// the Gibbs chain from the last checkpoint over base + deltas (folding
// in users that appeared since), extends the chain, and atomically
// rotates the finished checkpoint into the path a bpmf-serve watcher
// hot-reloads — fresher posteriors without a server restart.
//
// Producer side (append observations durably, then exit):
//
//	printf '7 3 4.5\n812 19 2.0\n' | bpmf-trainer -ingest -feed-log ratings.feedlog -items 25
//
// Training loop (one cycle per -interval, -cycles of them):
//
//	bpmf -synthetic tiny -k 8 -iters 10 -burnin 4 -ckpt-out base.ckpt
//	bpmf-trainer -synthetic tiny -k 8 -iters 10 -burnin 4 \
//	  -ckpt base.ckpt -feed-log ratings.feedlog -delta-dir deltas \
//	  -publish model.ckpt -add-iters 5 -cycles 3
//
// The sampler knobs (-k, -burnin, -seed, -alpha and the data source)
// must repeat the base run's: they are the chain's identity, and the
// publish-side lineage guard refuses to rotate a checkpoint whose
// (seed, K) do not match the pinned lineage (-pin-seed overrides the
// pin — deliberately mismatching it demonstrates the refusal).
//
// Each cycle is bit-deterministic: the published checkpoint depends
// only on the base chain, the merged rating matrix and the added
// iteration count — not on how many cycles or delta shards produced
// the merge.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/feed"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf-trainer: ")

	cfg := config.DefaultTrainer()
	if err := config.Parse(flag.CommandLine, os.Args[1:], &cfg); err != nil {
		log.Fatal(err)
	}
	if cfg.Ingest {
		n, err := runIngest(cfg, os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("appended %d ratings to %s\n", n, cfg.Feed.Log)
		return
	}
	if err := runLoop(cfg, log.Printf); err != nil {
		log.Fatal(err)
	}
}

// runIngest appends "user item value" lines (one rating each; blank
// lines and #-comments skipped) from r to the feed log as one durable
// batch: a single fsync'd append, so a crash either keeps every rating
// or leaves the log exactly as it was.
func runIngest(cfg config.Trainer, r io.Reader) (int, error) {
	if cfg.Feed.Items < 1 {
		return 0, fmt.Errorf("-ingest needs -items: the item-catalog width of the log")
	}
	var batch []sparse.Entry
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		fields := splitFields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return 0, fmt.Errorf("stdin line %d: want \"user item value\", got %q", lineNo, sc.Text())
		}
		user, err1 := strconv.ParseInt(fields[0], 10, 32)
		item, err2 := strconv.ParseInt(fields[1], 10, 32)
		val, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return 0, fmt.Errorf("stdin line %d: want \"user item value\", got %q", lineNo, sc.Text())
		}
		batch = append(batch, sparse.Entry{Row: int32(user), Col: int32(item), Val: val})
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("reading stdin: %w", err)
	}
	if len(batch) == 0 {
		return 0, nil
	}
	l, err := feed.OpenLog(cfg.Feed.Log, cfg.Feed.Items)
	if err != nil {
		return 0, err
	}
	if err := l.Append(batch); err != nil {
		l.Close()
		return 0, err
	}
	return len(batch), l.Close()
}

// splitFields splits an ingest line on whitespace, dropping everything
// from a '#' on as a comment.
func splitFields(line string) []string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	return strings.Fields(line)
}

// runLoop is the continuous-training loop. Each cycle: compact the
// rating log into a delta shard (when it holds enough records), merge
// the delta over the current matrix last-write-wins, warm-start the
// chain from the previous cycle's checkpoint (growing U for users the
// deltas introduced), extend it by add-iters iterations, and publish
// the result atomically under the lineage pin. logf receives progress
// lines, keeping the loop testable in-process.
func runLoop(cfg config.Trainer, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	train, test, err := loadBase(cfg)
	if err != nil {
		return err
	}
	// A restart resumes the published chain, not the base checkpoint:
	// the publish path is the loop's own durable state.
	ckptPath := cfg.Ckpt
	if _, statErr := os.Stat(cfg.Publish.Ckpt); statErr == nil {
		ckptPath = cfg.Publish.Ckpt
		logf("warm-starting from previously published %s", ckptPath)
	}
	ckpt, err := readCheckpoint(ckptPath)
	if err != nil {
		return err
	}

	cc := core.DefaultConfig()
	cc.K = cfg.Sampler.K
	cc.Alpha = cfg.Sampler.Alpha
	cc.Burnin = cfg.Sampler.Burnin
	cc.Seed = cfg.Sampler.Seed

	if cfg.Feed.Items != 0 && cfg.Feed.Items != train.N {
		return fmt.Errorf("-items %d does not match the base data's %d-item catalog", cfg.Feed.Items, train.N)
	}
	lg, err := feed.OpenLog(cfg.Feed.Log, train.N)
	if err != nil {
		return err
	}
	defer lg.Close()
	if rec := lg.RecoveredBytes(); rec > 0 {
		logf("recovered rating log %s: truncated a %d-byte torn tail", cfg.Feed.Log, rec)
	}

	deltaDir := cfg.Feed.DeltaDir
	if deltaDir == "" {
		deltaDir = filepath.Dir(cfg.Feed.Log)
	}
	if err := os.MkdirAll(deltaDir, 0o755); err != nil {
		return fmt.Errorf("creating delta dir: %w", err)
	}
	cur, nextDelta, err := replayDeltas(train, deltaDir, logf)
	if err != nil {
		return err
	}

	lin := &serve.Lineage{Seed: cfg.Sampler.Seed, K: cfg.Sampler.K}
	if cfg.Publish.PinSeed != 0 {
		lin.Seed = cfg.Publish.PinSeed
	}

	minRecords := int64(cfg.Feed.MinRecords)
	if minRecords < 1 {
		minRecords = 1
	}
	for cycle := 1; cfg.Publish.Cycles == 0 || cycle <= cfg.Publish.Cycles; cycle++ {
		start := time.Now()
		newRatings := int64(0)
		if rec := lg.Records(); rec >= minRecords {
			path := filepath.Join(deltaDir, deltaName(nextDelta))
			stats, err := lg.Compact(path, cur.M, cfg.Feed.ShardNNZ)
			if err != nil {
				return fmt.Errorf("cycle %d: compacting the rating log: %w", cycle, err)
			}
			delta, err := sparse.Load(path)
			if err != nil {
				return fmt.Errorf("cycle %d: reading back delta shard: %w", cycle, err)
			}
			cur, err = sparse.MergeLastWins(cur, delta)
			if err != nil {
				return fmt.Errorf("cycle %d: merging delta shard: %w", cycle, err)
			}
			// Only after the delta shard is durable may the log forget the
			// ratings; a crash between the two replays the shard at startup,
			// which last-write-wins makes idempotent.
			if err := lg.Truncate(); err != nil {
				return fmt.Errorf("cycle %d: truncating the rating log: %w", cycle, err)
			}
			nextDelta++
			newRatings = stats.NNZ
		} else if rec > 0 {
			logf("cycle %d: %d ratings buffered (min %d), deferring compaction", cycle, rec, minRecords)
		}

		cc.Iters = ckpt.NextIter + cfg.Publish.AddIters
		s, err := core.ResumeSamplerGrown(cc, core.NewProblem(cur, test), ckpt)
		if err != nil {
			return fmt.Errorf("cycle %d: warm-starting the chain: %w", cycle, err)
		}
		res := s.RunFrom(ckpt.NextIter)
		prev := ckpt.NextIter
		ckpt = s.Checkpoint()

		if err := serve.PublishCheckpoint(cfg.Publish.Ckpt, ckpt, lin); err != nil {
			return fmt.Errorf("cycle %d: %w", cycle, err)
		}
		logf("cycle %d: +%d ratings, %d users x %d items, chain %d -> %d iterations, RMSE %.6f, published %s",
			cycle, newRatings, cur.M, cur.N, prev, ckpt.NextIter, res.FinalRMSE(), cfg.Publish.Ckpt)

		if iv := cfg.Publish.Interval.Std(); iv > 0 && (cfg.Publish.Cycles == 0 || cycle < cfg.Publish.Cycles) {
			if rem := iv - time.Since(start); rem > 0 {
				time.Sleep(rem)
			}
		}
	}
	return nil
}

// deltaName numbers delta shards so lexical order is creation order —
// the order crash recovery must replay them in.
func deltaName(i int) string { return fmt.Sprintf("delta-%06d.bcsr", i) }

// replayDeltas overlays the delta shards already in dir (from earlier
// runs or a crash between compaction and publish) over the base matrix,
// in creation order, and returns the merged matrix plus the next free
// shard number.
func replayDeltas(base *sparse.CSR, dir string, logf func(string, ...any)) (*sparse.CSR, int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "delta-*.bcsr"))
	if err != nil {
		return nil, 0, err
	}
	sort.Strings(paths)
	cur := base
	next := 0
	for _, p := range paths {
		d, err := sparse.Load(p)
		if err != nil {
			return nil, 0, fmt.Errorf("replaying delta shard %s: %w", p, err)
		}
		cur, err = sparse.MergeLastWins(cur, d)
		if err != nil {
			return nil, 0, fmt.Errorf("replaying delta shard %s: %w", p, err)
		}
		if n, err := strconv.Atoi(p[len(p)-len("000000.bcsr") : len(p)-len(".bcsr")]); err == nil && n >= next {
			next = n + 1
		} else {
			next = len(paths)
		}
	}
	if len(paths) > 0 {
		logf("replayed %d delta shards from %s (%d users x %d items)", len(paths), dir, cur.M, cur.N)
	}
	return cur, next, nil
}

// loadBase resolves the base training matrix and its frozen test split
// — the exact split the base checkpoint's posterior accumulators were
// built over, reconstructed from (data source, test fraction, seed)
// the same way cmd/bpmf produced it.
func loadBase(cfg config.Trainer) (*sparse.CSR, []sparse.Entry, error) {
	var full *sparse.CSR
	if cfg.Data.Path != "" {
		var err error
		full, err = sparse.Load(cfg.Data.Path)
		if err != nil {
			return nil, nil, err
		}
	} else {
		spec, err := cfg.Data.Spec(cfg.Sampler.Seed)
		if err != nil {
			return nil, nil, err
		}
		full = datagen.Generate(spec).R
	}
	if cfg.Data.TestFrac <= 0 {
		return full, nil, nil
	}
	train, test := sparse.SplitTrainTest(full, cfg.Data.TestFrac, cfg.Sampler.Seed)
	return train, test, nil
}

// readCheckpoint loads the warm-start checkpoint.
func readCheckpoint(path string) (*core.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadCheckpoint(f)
}
