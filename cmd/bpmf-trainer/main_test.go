package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// trainerConfig is a tiny-benchmark loop configuration rooted in dir.
func trainerConfig(dir string) config.Trainer {
	cfg := config.DefaultTrainer()
	cfg.Data = config.Data{Synthetic: "tiny", Scale: 1, TestFrac: 0.2}
	cfg.Sampler = config.Sampler{K: 6, Alpha: 2, Iters: 6, Burnin: 2, Seed: 21}
	cfg.Ckpt = filepath.Join(dir, "base.ckpt")
	cfg.Feed.Log = filepath.Join(dir, "ratings.feedlog")
	cfg.Feed.DeltaDir = filepath.Join(dir, "deltas")
	cfg.Publish.Ckpt = filepath.Join(dir, "model.ckpt")
	cfg.Publish.AddIters = 3
	cfg.Publish.Cycles = 1
	return cfg
}

// coreConfig mirrors runLoop's sampler-config construction.
func coreConfig(cfg config.Trainer, iters int) core.Config {
	cc := core.DefaultConfig()
	cc.K = cfg.Sampler.K
	cc.Alpha = cfg.Sampler.Alpha
	cc.Iters = iters
	cc.Burnin = cfg.Sampler.Burnin
	cc.Seed = cfg.Sampler.Seed
	return cc
}

// writeBaseCheckpoint trains the base chain to cfg.Sampler.Iters and
// writes its checkpoint to cfg.Ckpt, returning the checkpoint and the
// base problem.
func writeBaseCheckpoint(t *testing.T, cfg config.Trainer) (*core.Checkpoint, *sparse.CSR, []sparse.Entry) {
	t.Helper()
	train, test, err := loadBase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSampler(coreConfig(cfg, cfg.Sampler.Iters), core.NewProblem(train, test))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < cfg.Sampler.Iters; it++ {
		s.Step(it)
	}
	ckpt := s.Checkpoint()
	if err := core.WriteCheckpointFile(cfg.Ckpt, ckpt.Write); err != nil {
		t.Fatal(err)
	}
	return ckpt, train, test
}

func appendRatings(t *testing.T, cfg config.Trainer, items int, entries []sparse.Entry) {
	t.Helper()
	l, err := feed.OpenLog(cfg.Feed.Log, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entries); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLoopDifferentialOneShot is the acceptance differential: one full
// trainer cycle — log append, compaction through the spill/sort/dedup
// converter, delta merge, warm-start with user growth, publish — must
// produce the exact bytes of a direct in-memory resume over the
// equivalently merged dataset. The log/shard plumbing may not perturb
// the chain by one bit.
func TestLoopDifferentialOneShot(t *testing.T) {
	cfg := trainerConfig(t.TempDir())
	base, train, test := writeBaseCheckpoint(t, cfg)

	// New observations: two unseen users plus a re-rate of a trained one.
	m := train.M
	cols0, _ := train.Row(0)
	entries := []sparse.Entry{
		{Row: int32(m), Col: 3, Val: 4.5},
		{Row: int32(m), Col: 7, Val: 2.0},
		{Row: int32(m + 1), Col: 1, Val: 5.0},
		{Row: 0, Col: cols0[0], Val: 1.5},
	}
	appendRatings(t, cfg, train.N, entries)

	if err := runLoop(cfg, t.Logf); err != nil {
		t.Fatal(err)
	}

	// Reference: the same merge done directly in memory, resumed in one
	// shot to the same total iteration count.
	coo := sparse.NewCOO(m+2, train.N, len(entries))
	for _, e := range entries {
		coo.Add(int(e.Row), int(e.Col), e.Val)
	}
	merged, err := sparse.MergeLastWins(train, coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.ResumeSamplerGrown(
		coreConfig(cfg, cfg.Sampler.Iters+cfg.Publish.AddIters),
		core.NewProblem(merged, test), base)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFrom(base.NextIter)
	var want bytes.Buffer
	if err := s.Checkpoint().Write(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, cfg.Publish.Ckpt), want.Bytes()) {
		t.Fatal("published checkpoint differs from the one-shot merged-dataset resume")
	}

	// The drained log is empty; the delta shard persists for recovery.
	l, err := feed.OpenLog(cfg.Feed.Log, train.N)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Records() != 0 {
		t.Fatalf("log holds %d records after compaction, want 0", l.Records())
	}
	if _, err := os.Stat(filepath.Join(cfg.Feed.DeltaDir, deltaName(0))); err != nil {
		t.Fatalf("delta shard missing after the cycle: %v", err)
	}
}

// TestLoopRestartEqualsContinuousRun: two single-cycle trainer runs —
// the second warm-starting from the published checkpoint and replaying
// the persisted delta shard, exactly the crash-restart path — must
// reproduce the direct in-memory double resume bit for bit. The restart
// path may not fork the chain.
func TestLoopRestartEqualsContinuousRun(t *testing.T) {
	cfg := trainerConfig(t.TempDir())
	base, train, test := writeBaseCheckpoint(t, cfg)

	m := train.M
	cols0, _ := train.Row(1)
	batch1 := []sparse.Entry{{Row: int32(m), Col: 2, Val: 3.0}, {Row: 1, Col: cols0[0], Val: 4.0}}
	batch2 := []sparse.Entry{{Row: int32(m), Col: 2, Val: 5.0}, {Row: int32(m + 1), Col: 6, Val: 2.5}}

	// Pipeline: cycle, restart, cycle.
	appendRatings(t, cfg, train.N, batch1)
	if err := runLoop(cfg, t.Logf); err != nil {
		t.Fatal(err)
	}
	appendRatings(t, cfg, train.N, batch2)
	if err := runLoop(cfg, t.Logf); err != nil {
		t.Fatal(err)
	}

	// Reference: the same two merges and resumes, purely in memory.
	coo1 := sparse.NewCOO(m+1, train.N, len(batch1))
	for _, e := range batch1 {
		coo1.Add(int(e.Row), int(e.Col), e.Val)
	}
	merged1, err := sparse.MergeLastWins(train, coo1.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := core.ResumeSamplerGrown(coreConfig(cfg, cfg.Sampler.Iters+cfg.Publish.AddIters),
		core.NewProblem(merged1, test), base)
	if err != nil {
		t.Fatal(err)
	}
	s1.RunFrom(base.NextIter)
	mid := s1.Checkpoint()

	coo2 := sparse.NewCOO(m+2, train.N, len(batch2))
	for _, e := range batch2 {
		coo2.Add(int(e.Row), int(e.Col), e.Val)
	}
	merged2, err := sparse.MergeLastWins(merged1, coo2.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.ResumeSamplerGrown(coreConfig(cfg, mid.NextIter+cfg.Publish.AddIters),
		core.NewProblem(merged2, test), mid)
	if err != nil {
		t.Fatal(err)
	}
	s2.RunFrom(mid.NextIter)
	var want bytes.Buffer
	if err := s2.Checkpoint().Write(&want); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(readFile(t, cfg.Publish.Ckpt), want.Bytes()) {
		t.Fatal("restarted pipeline diverged from the continuous double-resume reference")
	}
}

// TestLoopRefusesMismatchedLineage: a pin-seed that does not match the
// chain makes the publish guard refuse before a byte lands — the loop
// errors out and the watched path is untouched.
func TestLoopRefusesMismatchedLineage(t *testing.T) {
	cfg := trainerConfig(t.TempDir())
	writeBaseCheckpoint(t, cfg)
	cfg.Publish.PinSeed = cfg.Sampler.Seed + 1

	err := runLoop(cfg, t.Logf)
	if err == nil || !strings.Contains(err.Error(), "refusing to publish") {
		t.Fatalf("mismatched lineage accepted: %v", err)
	}
	if _, statErr := os.Stat(cfg.Publish.Ckpt); !os.IsNotExist(statErr) {
		t.Fatal("refused publish touched the watched path")
	}
}

// TestLoopServeRoundTrip: after a cycle, a bpmf-serve Server watching
// the published path picks the new chain up via MaybeReload (no
// restart) and the lineage pin accepts it.
func TestLoopServeRoundTrip(t *testing.T) {
	cfg := trainerConfig(t.TempDir())
	_, train, _ := writeBaseCheckpoint(t, cfg)

	// Serve the base checkpoint under the trainer's lineage.
	if err := os.Link(cfg.Ckpt, cfg.Publish.Ckpt); err != nil {
		// Copy if the filesystem refuses links.
		b := readFile(t, cfg.Ckpt)
		if err := os.WriteFile(cfg.Publish.Ckpt, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := serve.Open(cfg.Publish.Ckpt, serve.Options{
		Alpha:   cfg.Sampler.Alpha,
		Lineage: &serve.Lineage{Seed: cfg.Sampler.Seed, K: cfg.Sampler.K},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Model()

	m := train.M
	appendRatings(t, cfg, train.N, []sparse.Entry{{Row: int32(m), Col: 4, Val: 3.5}})
	if err := runLoop(cfg, t.Logf); err != nil {
		t.Fatal(err)
	}

	swapped, err := srv.MaybeReload()
	if err != nil {
		t.Fatal(err)
	}
	if !swapped || srv.Model() == before {
		t.Fatal("published cycle not picked up by the watcher path")
	}
	if got, want := srv.Model().NumUsers(), m+1; got != want {
		t.Fatalf("served model has %d users, want %d (the folded-in new user)", got, want)
	}
}

// TestIngest: stdin lines append durably (comments and blanks skipped),
// malformed lines are rejected with their line number, and appends
// accumulate across invocations.
func TestIngest(t *testing.T) {
	dir := t.TempDir()
	cfg := config.DefaultTrainer()
	cfg.Feed.Log = filepath.Join(dir, "ratings.feedlog")
	cfg.Feed.Items = 25
	cfg.Ingest = true

	n, err := runIngest(cfg, strings.NewReader("0 1 4.5\n# comment\n\n41 3 2.0  # trailing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("appended %d ratings, want 2", n)
	}
	n, err = runIngest(cfg, strings.NewReader("7 24 1.0\n"))
	if err != nil || n != 1 {
		t.Fatalf("second ingest: n=%d err=%v", n, err)
	}

	l, err := feed.OpenLog(cfg.Feed.Log, 25)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var got []sparse.Entry
	if err := l.Scan(func(e sparse.Entry) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []sparse.Entry{{Row: 0, Col: 1, Val: 4.5}, {Row: 41, Col: 3, Val: 2.0}, {Row: 7, Col: 24, Val: 1.0}}
	if len(got) != len(want) {
		t.Fatalf("log holds %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	if _, err := runIngest(cfg, strings.NewReader("0 1\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("malformed line accepted: %v", err)
	}
	if _, err := runIngest(cfg, strings.NewReader("0 999 1.0\n")); err == nil {
		t.Fatal("out-of-catalog item accepted")
	}
	bad := cfg
	bad.Feed.Items = 0
	if _, err := runIngest(bad, strings.NewReader("0 1 1.0\n")); err == nil || !strings.Contains(err.Error(), "-items") {
		t.Fatalf("ingest without -items accepted: %v", err)
	}
}
