package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
)

// fakeServe mimics the slice of the bpmf-serve surface the harness
// touches: /healthz discovery plus the /v1/<model>/... data plane.
func fakeServe(t *testing.T, hits *atomic.Int64, shedEvery int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ready":true,"models":{"movies":{"users":50,"items":200,"k":8,"ready":true},"drugs":{"users":10,"items":30,"k":4,"ready":true}}}`))
	})
	data := func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if shedEvery > 0 && n%shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"rate limited"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"items":[]}`))
	}
	mux.HandleFunc("/v1/{model}/predict", data)
	mux.HandleFunc("/v1/{model}/recommend", data)
	return httptest.NewServer(mux)
}

func testLoadConfig(url string) config.Load {
	cfg := config.DefaultLoad()
	cfg.URL = url
	cfg.VUs = 2
	cfg.Duration = config.Duration(200 * time.Millisecond)
	cfg.Warmup = config.Duration(20 * time.Millisecond)
	return cfg
}

// TestRunDiscoversAndSummarizes drives a closed loop against the fake
// registry: the target model is discovered from /healthz (first sorted
// name), requests complete, and the summary carries the greppable
// err5xx/shed fields plus bench lines when asked.
func TestRunDiscoversAndSummarizes(t *testing.T) {
	var hits atomic.Int64
	ts := fakeServe(t, &hits, 0)
	defer ts.Close()

	cfg := testLoadConfig(ts.URL)
	cfg.Bench = true
	var out strings.Builder
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// "drugs" sorts before "movies": discovery picks it.
	for _, want := range []string{"drugs/closed/vus=2", "err5xx=0", "shed=0", "BenchmarkServeLoad/model=drugs/closed/vus=2", "ns/op", "req/s"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if hits.Load() == 0 {
		t.Fatal("no requests reached the server")
	}
}

// TestRunExplicitModelAndShedAccounting pins -model selection and the
// Retry-After bookkeeping: a server shedding every 3rd request with the
// hint present must show shed>0 but shed_without_retry_after=0.
func TestRunExplicitModelAndShedAccounting(t *testing.T) {
	var hits atomic.Int64
	ts := fakeServe(t, &hits, 3)
	defer ts.Close()

	cfg := testLoadConfig(ts.URL)
	cfg.Model = "movies"
	var out strings.Builder
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "movies/closed/vus=2") {
		t.Errorf("explicit -model not honored:\n%s", got)
	}
	if strings.Contains(got, "shed=0 ") {
		t.Errorf("expected sheds in summary:\n%s", got)
	}
	if !strings.Contains(got, "shed_without_retry_after=0") {
		t.Errorf("sheds with Retry-After miscounted:\n%s", got)
	}
}

// TestRunOpenLoop exercises the open scheduler end-to-end at a modest
// offered rate.
func TestRunOpenLoop(t *testing.T) {
	var hits atomic.Int64
	ts := fakeServe(t, &hits, 0)
	defer ts.Close()

	cfg := testLoadConfig(ts.URL)
	cfg.Mode = "open"
	cfg.Rate = 200
	var out strings.Builder
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "drugs/open/vus=2") {
		t.Errorf("open-loop summary missing:\n%s", out.String())
	}
}

// TestRunFailsWhenNothingCompletes pins the CI contract: a dead target
// is a hard error, not an empty success.
func TestRunFailsWhenNothingCompletes(t *testing.T) {
	cfg := testLoadConfig("http://127.0.0.1:1")
	cfg.Model = "movies"
	cfg.Users, cfg.Items = 10, 10 // skip discovery; fail in the run itself
	cfg.Duration = config.Duration(50 * time.Millisecond)
	cfg.Warmup = 0
	cfg.Timeout = config.Duration(20 * time.Millisecond)
	var out strings.Builder
	err := run(context.Background(), cfg, &out)
	if err == nil || !strings.Contains(err.Error(), "no requests completed") {
		t.Fatalf("dead target: err = %v", err)
	}
}

// TestDiscoverUnknownModel pins the self-diagnosing error.
func TestDiscoverUnknownModel(t *testing.T) {
	var hits atomic.Int64
	ts := fakeServe(t, &hits, 0)
	defer ts.Close()
	_, _, _, err := discover(context.Background(), ts.URL, "nope")
	if err == nil || !strings.Contains(err.Error(), `"nope" not registered`) {
		t.Fatalf("unknown model: err = %v", err)
	}
	model, users, items, err := discover(context.Background(), ts.URL, "movies")
	if err != nil || model != "movies" || users != 50 || items != 200 {
		t.Fatalf("explicit discovery = %q %d %d (%v)", model, users, items, err)
	}
}
