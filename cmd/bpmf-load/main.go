// Command bpmf-load is the serving load harness: a k6-style open- or
// closed-loop generator that drives a bpmf-serve registry with a mixed
// /predict + /recommend workload and reports latency percentiles,
// throughput and shed accounting.
//
// Closed loop (VUs issue requests back-to-back; measures capacity):
//
//	bpmf-load -url http://127.0.0.1:8080 -vus 8 -duration 5s
//
// Open loop (fixed arrival rate; measures latency at an offered load;
// arrivals beyond capacity are dropped and counted):
//
//	bpmf-load -url http://127.0.0.1:8080 -mode open -rate 500 -vus 32 -duration 5s
//
// The target model and its user/item id bounds are discovered from
// /healthz unless given explicitly. -bench additionally emits
// Go-bench-style lines for bench2json, growing the BENCH_serve_load.json
// trajectory:
//
//	bpmf-load -url ... -bench | bench2json -label pr8-batched -out BENCH_serve_load.json
//
// The summary is greppable: `err5xx=0` means no server errors (503
// sheds are the SLO working, not errors), `shed_without_retry_after=0`
// means every shed carried its back-off hint.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/load"
	"repro/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf-load: ")
	cfg := config.DefaultLoad()
	if err := config.Parse(flag.CommandLine, os.Args[1:], &cfg); err != nil {
		log.Fatal(err)
	}
	if err := run(context.Background(), cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one load schedule against the configured server and
// writes the summary (and optional bench lines) to out.
func run(ctx context.Context, cfg config.Load, out io.Writer) error {
	base := strings.TrimSuffix(cfg.URL, "/")
	model, users, items := cfg.Model, cfg.Users, cfg.Items
	if model == "" || users == 0 || items == 0 {
		dm, du, di, err := discover(ctx, base, cfg.Model)
		if err != nil {
			return fmt.Errorf("discovering the target model from /healthz: %w (give -model/-users/-items explicitly to skip discovery)", err)
		}
		if model == "" {
			model = dm
		}
		if users == 0 {
			users = du
		}
		if items == 0 {
			items = di
		}
	}
	if users < 1 || items < 1 {
		return fmt.Errorf("model %q reports %d users x %d items; nothing to query", model, users, items)
	}

	client := &http.Client{Timeout: cfg.Timeout.Std()}
	// Per-VU request streams: a VU's requests run sequentially, so one
	// unshared generator per VU gives a deterministic mix without locks.
	streams := make([]*rng.Stream, cfg.VUs)
	for vu := range streams {
		streams[vu] = rng.New(cfg.Seed + uint64(vu)*1_000_003)
	}
	fn := func(ctx context.Context, vu, seq int) (load.Response, error) {
		stream := streams[vu]
		var target string
		if stream.Float64() < cfg.PredictFrac {
			target = fmt.Sprintf("%s/v1/%s/predict?user=%d&item=%d",
				base, url.PathEscape(model), stream.Intn(users), stream.Intn(items))
		} else {
			target = fmt.Sprintf("%s/v1/%s/recommend?user=%d&n=%d",
				base, url.PathEscape(model), stream.Intn(users), cfg.N)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
		if err != nil {
			return load.Response{}, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return load.Response{}, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return load.Response{
			Status:     resp.StatusCode,
			RetryAfter: resp.Header.Get("Retry-After") != "",
		}, nil
	}

	sched := load.Config{
		Mode:     cfg.Mode,
		VUs:      cfg.VUs,
		Rate:     cfg.Rate,
		Duration: cfg.Duration.Std(),
		Warmup:   cfg.Warmup.Std(),
	}
	res, err := load.Run(ctx, sched, fn)
	if err != nil {
		return err
	}
	label := fmt.Sprintf("%s/%s/vus=%d", model, cfg.Mode, cfg.VUs)
	fmt.Fprint(out, res.Summary(label))
	if cfg.Bench {
		fmt.Fprintln(out, res.BenchLine(fmt.Sprintf("ServeLoad/model=%s/%s/vus=%d", model, cfg.Mode, cfg.VUs)))
	}
	if res.Completed-res.Errors == 0 {
		return fmt.Errorf("no requests completed against %s (model %q)", base, model)
	}
	return nil
}

// healthzModel is the per-model slice of bpmf-serve's /healthz body
// this command needs.
type healthzModel struct {
	Users int `json:"users"`
	Items int `json:"items"`
}

// discover asks /healthz for the target model and its id bounds. With
// want == "" the first registered model (sorted by name) is chosen.
func discover(ctx context.Context, base, want string) (model string, users, items int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return "", 0, 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, 0, fmt.Errorf("healthz returned %s", resp.Status)
	}
	var body struct {
		Models map[string]healthzModel `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", 0, 0, err
	}
	if len(body.Models) == 0 {
		return "", 0, 0, fmt.Errorf("healthz reports no models")
	}
	names := make([]string, 0, len(body.Models))
	for name := range body.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	if want == "" {
		want = names[0]
	}
	m, ok := body.Models[want]
	if !ok {
		return "", 0, 0, fmt.Errorf("model %q not registered (have: %s)", want, strings.Join(names, ", "))
	}
	return want, m.Users, m.Items, nil
}
