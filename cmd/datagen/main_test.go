package main

import (
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sparse"
)

// TestBuildSpecAppliesUpscale is the regression test for the silently
// ignored -scale > 1: upscales must actually grow the spec.
func TestBuildSpecAppliesUpscale(t *testing.T) {
	base := datagen.Tiny(1)
	up, err := buildSpec("tiny", 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if up.Rows != 2*base.Rows || up.Cols != 2*base.Cols || up.NNZ != 2*base.NNZ {
		t.Fatalf("-scale 2 did not double the spec: %dx%d nnz %d from %dx%d nnz %d",
			up.Rows, up.Cols, up.NNZ, base.Rows, base.Cols, base.NNZ)
	}
	down, err := buildSpec("small", 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sm := datagen.Small(1); down.Rows != sm.Rows/2 {
		t.Fatalf("-scale 0.5 rows = %d, want %d", down.Rows, sm.Rows/2)
	}
	ident, err := buildSpec("tiny", 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ident != base {
		t.Fatalf("-scale 1 must leave the spec untouched: %+v vs %+v", ident, base)
	}
}

func TestBuildSpecRejectsBadInput(t *testing.T) {
	if _, err := buildSpec("tiny", 0, 1); err == nil {
		t.Fatal("-scale 0 must be rejected")
	}
	if _, err := buildSpec("tiny", -0.5, 1); err == nil {
		t.Fatal("negative -scale must be rejected")
	}
	if _, err := buildSpec("nope", 1, 1); err == nil {
		t.Fatal("unknown spec must be rejected")
	}
}

// TestWriteMatrixPicksFormat pins the extension sniffing: .bcsr gets
// binary shards, anything else MatrixMarket, and both load back equal.
func TestWriteMatrixPicksFormat(t *testing.T) {
	ds := datagen.Generate(datagen.Tiny(7))
	dir := t.TempDir()
	for _, name := range []string{"t.mtx", "t.bcsr", "t.dat"} {
		path := filepath.Join(dir, name)
		if err := writeMatrix(path, ds.R, 0); err != nil {
			t.Fatal(err)
		}
		got, err := sparse.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sparse.Equal(ds.R, got) {
			t.Fatalf("%s: round trip changed the matrix", name)
		}
	}
}
