// Command datagen writes synthetic rating benchmarks (the ChEMBL- and
// MovieLens-shaped workloads of the paper's evaluation) as MatrixMarket
// text or .bcsr binary shards, chosen by the output extension.
//
//	datagen -spec chembl -scale 0.1 -out chembl-10pct.mtx
//	datagen -spec ml-20m -scale 2 -out ml-40m.bcsr
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/datagen"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	cfg := config.DefaultDatagen()
	if err := config.Parse(flag.CommandLine, os.Args[1:], &cfg); err != nil {
		log.Fatal(err)
	}

	s, err := buildSpec(cfg.Spec, cfg.Scale, cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}
	ds := datagen.Generate(s)

	if cfg.Stats {
		rows := sparse.Stats(ds.R.RowDegrees())
		cols := sparse.Stats(ds.R.Transpose().RowDegrees())
		fmt.Printf("%s: %d x %d, %d ratings\n", s.Name, ds.R.M, ds.R.N, ds.R.NNZ())
		fmt.Printf("row degrees: %+v\n", rows)
		fmt.Printf("col degrees: %+v\n", cols)
		return
	}

	if err := writeMatrix(cfg.Out, ds.R, cfg.ShardNNZ); err != nil {
		log.Fatal(err)
	}
	if cfg.Out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s: %d x %d, %d ratings\n", cfg.Out, ds.R.M, ds.R.N, ds.R.NNZ())
	}
}

// buildSpec resolves the named benchmark spec and applies the scale
// factor through the shared config contract. Any scale other than 1 is
// applied — the silent old behavior of ignoring upscales is gone — and
// a non-positive scale is an error rather than an accidental full-size
// dataset.
func buildSpec(name string, scale float64, seed uint64) (datagen.Spec, error) {
	return config.Datagen{Spec: name, Scale: scale, Seed: seed}.ResolveSpec()
}

// writeMatrix writes r to path, picking the format from the extension:
// .bcsr binary shards (shardNNZ entries per shard, 0 = default),
// MatrixMarket otherwise. An empty path streams MatrixMarket to stdout.
func writeMatrix(path string, r *sparse.CSR, shardNNZ int) error {
	if path == "" {
		return sparse.WriteMatrixMarket(os.Stdout, r)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".bcsr" {
		err = sparse.WriteBinarySharded(f, r, shardNNZ)
	} else {
		err = sparse.WriteMatrixMarket(f, r)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
