// Command datagen writes synthetic rating benchmarks (the ChEMBL- and
// MovieLens-shaped workloads of the paper's evaluation) as MatrixMarket
// text or .bcsr binary shards, chosen by the output extension.
//
//	datagen -spec chembl -scale 0.1 -out chembl-10pct.mtx
//	datagen -spec ml-20m -scale 2 -out ml-40m.bcsr
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	spec := flag.String("spec", "small", "chembl | ml-20m | small | tiny")
	scale := flag.Float64("scale", 1.0, "scale factor for rows, cols and nnz (values > 1 scale up)")
	seed := flag.Uint64("seed", 42, "random seed")
	out := flag.String("out", "", "output file: *.bcsr writes binary shards, anything else MatrixMarket (default stdout)")
	shardNNZ := flag.Int("shard-nnz", 0, "target entries per .bcsr shard (0 = library default; small values make many shards for multi-rank loading)")
	stats := flag.Bool("stats", false, "print degree statistics instead of the matrix")
	flag.Parse()

	s, err := buildSpec(*spec, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	ds := datagen.Generate(s)

	if *stats {
		rows := sparse.Stats(ds.R.RowDegrees())
		cols := sparse.Stats(ds.R.Transpose().RowDegrees())
		fmt.Printf("%s: %d x %d, %d ratings\n", s.Name, ds.R.M, ds.R.N, ds.R.NNZ())
		fmt.Printf("row degrees: %+v\n", rows)
		fmt.Printf("col degrees: %+v\n", cols)
		return
	}

	if err := writeMatrix(*out, ds.R, *shardNNZ); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s: %d x %d, %d ratings\n", *out, ds.R.M, ds.R.N, ds.R.NNZ())
	}
}

// buildSpec resolves the named benchmark spec and applies the scale
// factor. Any scale other than 1 is applied — the silent old behavior
// of ignoring upscales is gone — and a non-positive scale is an error
// rather than an accidental full-size dataset.
func buildSpec(name string, scale float64, seed uint64) (datagen.Spec, error) {
	var s datagen.Spec
	switch strings.ToLower(name) {
	case "chembl":
		s = datagen.ChEMBL(seed)
	case "ml-20m", "ml20m", "movielens":
		s = datagen.ML20M(seed)
	case "small":
		s = datagen.Small(seed)
	case "tiny":
		s = datagen.Tiny(seed)
	default:
		return datagen.Spec{}, fmt.Errorf("unknown spec %q", name)
	}
	if scale <= 0 {
		return datagen.Spec{}, fmt.Errorf("-scale must be positive, got %g", scale)
	}
	if scale != 1 {
		s = datagen.Scaled(s, scale)
	}
	return s, nil
}

// writeMatrix writes r to path, picking the format from the extension:
// .bcsr binary shards (shardNNZ entries per shard, 0 = default),
// MatrixMarket otherwise. An empty path streams MatrixMarket to stdout.
func writeMatrix(path string, r *sparse.CSR, shardNNZ int) error {
	if path == "" {
		return sparse.WriteMatrixMarket(os.Stdout, r)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".bcsr" {
		err = sparse.WriteBinarySharded(f, r, shardNNZ)
	} else {
		err = sparse.WriteMatrixMarket(f, r)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
