// Command datagen writes synthetic rating benchmarks (the ChEMBL- and
// MovieLens-shaped workloads of the paper's evaluation) as MatrixMarket
// files.
//
//	datagen -spec chembl -scale 0.1 -out chembl-10pct.mtx
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	spec := flag.String("spec", "small", "chembl | ml-20m | small | tiny")
	scale := flag.Float64("scale", 1.0, "scale factor (rows, cols and nnz)")
	seed := flag.Uint64("seed", 42, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print degree statistics instead of the matrix")
	flag.Parse()

	var s datagen.Spec
	switch strings.ToLower(*spec) {
	case "chembl":
		s = datagen.ChEMBL(*seed)
	case "ml-20m", "ml20m", "movielens":
		s = datagen.ML20M(*seed)
	case "small":
		s = datagen.Small(*seed)
	case "tiny":
		s = datagen.Tiny(*seed)
	default:
		log.Fatalf("unknown spec %q", *spec)
	}
	if *scale < 1 {
		s = datagen.Scaled(s, *scale)
	}
	ds := datagen.Generate(s)

	if *stats {
		rows := sparse.Stats(ds.R.RowDegrees())
		cols := sparse.Stats(ds.R.Transpose().RowDegrees())
		fmt.Printf("%s: %d x %d, %d ratings\n", s.Name, ds.R.M, ds.R.N, ds.R.NNZ())
		fmt.Printf("row degrees: %+v\n", rows)
		fmt.Printf("col degrees: %+v\n", cols)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := sparse.WriteMatrixMarket(w, ds.R); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s: %d x %d, %d ratings\n", *out, ds.R.M, ds.R.N, ds.R.NNZ())
	}
}
