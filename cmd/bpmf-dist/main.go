// Command bpmf-dist runs distributed BPMF across real OS processes over
// the TCP transport — the deployment mode the paper runs with MPI across
// cluster nodes.
//
// Every process runs the same command with its own -rank; -peers lists
// every rank's listen address in rank order. A convenience -launch mode
// forks all ranks locally:
//
//	# one shot, 4 local worker processes:
//	bpmf-dist -launch 4 -synthetic small -iters 10
//
//	# or across machines (run one per host):
//	bpmf-dist -rank 0 -peers host0:9000,host1:9000 -synthetic small
//	bpmf-dist -rank 1 -peers host0:9000,host1:9000 -synthetic small
//
// All ranks must use identical data/sampler flags. With a synthetic
// benchmark or a MatrixMarket file, each rank regenerates or reloads the
// full dataset and derives the partition plan deterministically from the
// shared seed. With a .bcsr shard file, each rank instead maps the file
// and decodes only the shards covering its own row range — the row
// panels are assigned to ranks straight from the shard table — and the
// pieces it cannot read locally (split cursor, column ghosts, test set)
// travel over the fabric once at startup. The sampled chain is
// bit-identical either way; -full-load forces the old
// every-rank-decodes-everything behavior for comparison.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/partition"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf-dist: ")

	launch := flag.Int("launch", 0, "fork N local worker processes and wait")
	rank := flag.Int("rank", -1, "this process's rank")
	peers := flag.String("peers", "", "comma-separated rank addresses (host:port per rank)")
	basePort := flag.Int("baseport", 9800, "first port for -launch mode")
	dataPath := flag.String("data", "", "rating matrix file (MatrixMarket .mtx or binary .bcsr); overrides -synthetic")
	fullLoad := flag.Bool("full-load", false, "decode the whole .bcsr on every rank instead of shard-native per-rank loading")
	synthetic := flag.String("synthetic", "small", "benchmark: chembl | ml-20m | small")
	scale := flag.Float64("scale", 1.0, "synthetic scale factor (> 1 scales up)")
	k := flag.Int("k", 16, "latent features")
	iters := flag.Int("iters", 10, "Gibbs iterations")
	burnin := flag.Int("burnin", 5, "burn-in iterations")
	seed := flag.Uint64("seed", 42, "random seed")
	threads := flag.Int("threads", 1, "threads per rank")
	bufBytes := flag.Int("buffer", dist.DefaultBufferSize, "coalescing buffer bytes")
	reorder := flag.Bool("reorder", false, "communication-minimizing reordering")
	testFrac := flag.Float64("test", 0.2, "held-out fraction")
	flag.Parse()

	if *launch > 0 {
		if err := launchLocal(*launch, *basePort); err != nil {
			log.Fatal(err)
		}
		return
	}
	addrs, err := parsePeers(*peers)
	if err != nil {
		log.Fatalf("%v (worker mode needs -rank and -peers; or use -launch N)", err)
	}
	if *rank < 0 || *rank >= len(addrs) {
		log.Fatalf("-rank %d outside the %d addresses in -peers", *rank, len(addrs))
	}

	cfg := core.DefaultConfig()
	cfg.K = *k
	cfg.Iters = *iters
	cfg.Burnin = *burnin
	cfg.Seed = *seed
	opt := dist.Options{
		Ranks:          len(addrs),
		ThreadsPerRank: *threads,
		BufferSize:     *bufBytes,
		Reorder:        *reorder,
	}

	useShards, err := shardNative(*dataPath, *fullLoad, *reorder)
	if err != nil {
		log.Fatal(err)
	}

	var node *dist.Node
	var c *comm.Comm
	if useShards {
		// Open (and validate) the file before joining the cluster:
		// OpenBinary checks the header, shard table and framing eagerly,
		// so a corrupt file fails here instead of wedging the collective
		// load — and the same mapping then feeds the load itself.
		mp, err := sparse.OpenBinary(*dataPath)
		if err != nil {
			log.Fatal(err)
		}
		defer mp.Close()
		if c, err = comm.DialTCP(*rank, addrs, 30*time.Second); err != nil {
			log.Fatalf("rank %d: %v", *rank, err)
		}
		defer c.Close()
		sp, err := dist.LoadShards(c, mp, *testFrac, *seed, opt)
		if err != nil {
			log.Fatalf("rank %d: %v", *rank, err)
		}
		fmt.Printf("rank %d: mapped %d of %d shards (%.2f MB payload + %.2f KB metadata)\n",
			*rank, sp.Shards, sp.TotalShards,
			float64(sp.Load.PayloadBytesTouched)/1e6, float64(sp.Load.HeaderBytes)/1e3)
		node, err = dist.NewNodeLocal(c, cfg, sp.Plan, sp.RT, sp.Test, opt)
		if err != nil {
			log.Fatalf("rank %d: %v", *rank, err)
		}
	} else {
		prob, panels, err := buildProblem(*dataPath, *synthetic, *scale, *testFrac, *seed)
		if err != nil {
			log.Fatal(err)
		}
		var plan *partition.Plan
		var test []sparse.Entry
		if panels != nil && !*reorder {
			// Full-load .bcsr still takes the panel-aligned plan so the
			// chain matches the shard-native path bit for bit.
			if plan, test, err = dist.BuildPlanPanels(prob, *panels, opt); err != nil {
				log.Fatal(err)
			}
		} else {
			plan, test = dist.BuildPlan(prob, opt)
		}
		if c, err = comm.DialTCP(*rank, addrs, 30*time.Second); err != nil {
			log.Fatalf("rank %d: %v", *rank, err)
		}
		defer c.Close()
		if node, err = dist.NewNode(c, cfg, plan, test, opt); err != nil {
			log.Fatalf("rank %d: %v", *rank, err)
		}
	}

	res, stats, err := node.Run()
	if err != nil {
		log.Fatalf("rank %d: %v", *rank, err)
	}
	if *rank == 0 {
		for i, r := range res.AvgRMSE {
			fmt.Printf("iter %3d  RMSE %.6f\n", i+1, r)
		}
		fmt.Printf("final RMSE %.6f  %.0f updates/s\n", res.FinalRMSE(), res.UpdatesPerSec())
	}
	fmt.Printf("rank %d: sent %d items in %d msgs (%d flushes), received %d ghosts, compute %v, wait %v\n",
		*rank, stats.ItemsSent, stats.Comm.MsgsSent, stats.Flushes,
		stats.GhostsRecv, stats.ComputeTime.Round(time.Millisecond),
		stats.WaitTime.Round(time.Millisecond))
}

// shardNative decides whether this run takes the shard-native .bcsr
// path, logging loudly when a flag forces the fallback.
func shardNative(dataPath string, fullLoad, reorder bool) (bool, error) {
	if dataPath == "" {
		return false, nil
	}
	isB, err := sparse.IsBCSR(dataPath)
	if err != nil || !isB {
		return false, err
	}
	if fullLoad {
		return false, nil
	}
	if reorder {
		log.Printf("-reorder needs the full matrix on every rank; falling back to -full-load for %s", dataPath)
		return false, nil
	}
	return true, nil
}

// parsePeers validates the -peers list up front: empty entries (stray
// commas), whitespace, malformed host:port pairs and duplicate
// addresses all produce a clear error here instead of a cluster that
// dials itself into a deadlock.
func parsePeers(peers string) ([]string, error) {
	if strings.TrimSpace(peers) == "" {
		return nil, errors.New("missing -peers")
	}
	addrs := strings.Split(peers, ",")
	seen := make(map[string]int, len(addrs))
	for i, a := range addrs {
		if strings.TrimSpace(a) == "" {
			return nil, fmt.Errorf("-peers entry %d is empty (stray comma in %q)", i, peers)
		}
		if a != strings.TrimSpace(a) {
			return nil, fmt.Errorf("-peers entry %d %q has surrounding whitespace", i, a)
		}
		if _, _, err := net.SplitHostPort(a); err != nil {
			return nil, fmt.Errorf("-peers entry %d %q is not host:port: %v", i, a, err)
		}
		if prev, dup := seen[a]; dup {
			return nil, fmt.Errorf("-peers lists %q for both rank %d and rank %d; every rank needs its own listen address", a, prev, i)
		}
		seen[a] = i
	}
	return addrs, nil
}

// launchLocal forks n worker copies of this binary on localhost ports.
// If any rank exits with an error, the remaining ranks are killed —
// a failed collective otherwise leaves the survivors blocked forever
// on receives that will never arrive.
func launchLocal(n, basePort int) error {
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		addrs[r] = fmt.Sprintf("127.0.0.1:%d", basePort+r)
	}
	peerList := strings.Join(addrs, ",")
	// Forward every flag except the launch controls.
	var common []string
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "launch" || f.Name == "baseport" {
			return
		}
		common = append(common, "-"+f.Name+"="+f.Value.String())
	})
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	procs := make([]*exec.Cmd, 0, n)
	killAll := func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}
	type exit struct {
		rank int
		err  error
	}
	done := make(chan exit, n)
	for r := 0; r < n; r++ {
		args := append([]string{"-rank", strconv.Itoa(r), "-peers", peerList}, common...)
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			killAll()
			for range procs {
				<-done
			}
			return fmt.Errorf("start rank %d: %w", r, err)
		}
		procs = append(procs, cmd)
		rr := r
		go func() { done <- exit{rr, cmd.Wait()} }()
	}
	var firstErr error
	for i := 0; i < n; i++ {
		e := <-done
		if e.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w (remaining ranks killed)", e.rank, e.err)
			killAll()
		}
	}
	return firstErr
}

// buildProblem loads -data when given (every rank reads the same file,
// so the deterministic split and partition plan agree across ranks) and
// falls back to regenerating the named synthetic benchmark. For .bcsr
// input it also returns the file's panel table so the planner can align
// rank boundaries to shards.
func buildProblem(dataPath, name string, scale, testFrac float64, seed uint64) (*core.Problem, *partition.Panels, error) {
	if dataPath != "" {
		isB, err := sparse.IsBCSR(dataPath)
		if err != nil {
			return nil, nil, err
		}
		if isB {
			mp, err := sparse.OpenBinary(dataPath)
			if err != nil {
				return nil, nil, err
			}
			defer mp.Close()
			full, err := mp.Matrix()
			if err != nil {
				return nil, nil, err
			}
			panels := partition.PanelsOf(mp)
			train, test := sparse.SplitTrainTest(full, testFrac, seed)
			return core.NewProblem(train, test), &panels, nil
		}
		full, err := sparse.Load(dataPath)
		if err != nil {
			return nil, nil, err
		}
		train, test := sparse.SplitTrainTest(full, testFrac, seed)
		return core.NewProblem(train, test), nil, nil
	}
	if scale <= 0 {
		return nil, nil, fmt.Errorf("-scale must be positive, got %g", scale)
	}
	var spec datagen.Spec
	switch strings.ToLower(name) {
	case "chembl":
		spec = datagen.ChEMBL(seed)
	case "ml-20m", "ml20m", "movielens":
		spec = datagen.ML20M(seed)
	case "small":
		spec = datagen.Small(seed)
	default:
		return nil, nil, fmt.Errorf("unknown benchmark %q", name)
	}
	if scale != 1 {
		spec = datagen.Scaled(spec, scale)
	}
	ds := datagen.Generate(spec)
	train, test := sparse.SplitTrainTest(ds.R, testFrac, seed)
	return core.NewProblem(train, test), nil, nil
}
