// Command bpmf-dist runs distributed BPMF across real OS processes over
// the TCP transport — the deployment mode the paper runs with MPI across
// cluster nodes.
//
// Every process runs the same command with its own -rank; -peers lists
// every rank's listen address in rank order. A convenience -launch mode
// forks all ranks locally:
//
//	# one shot, 4 local worker processes:
//	bpmf-dist -launch 4 -synthetic small -iters 10
//
//	# or across machines (run one per host):
//	bpmf-dist -rank 0 -peers host0:9000,host1:9000 -synthetic small
//	bpmf-dist -rank 1 -peers host0:9000,host1:9000 -synthetic small
//
// All ranks must use identical data/sampler flags. With a synthetic
// benchmark or a MatrixMarket file, each rank regenerates or reloads the
// full dataset and derives the partition plan deterministically from the
// shared seed. With a .bcsr shard file, each rank instead maps the file
// and decodes only the shards covering its own row range — the row
// panels are assigned to ranks straight from the shard table — and the
// pieces it cannot read locally (split cursor, column ghosts, test set)
// travel over the fabric once at startup. The sampled chain is
// bit-identical either way; -full-load forces the old
// every-rank-decodes-everything behavior for comparison.
//
// With -elastic (plus -ckpt-dir and -ckpt-every), the cluster survives
// rank failures: a heartbeat detector declares a silent peer dead after
// -suspicion, the survivors renumber themselves over the remaining
// addresses, rebuild the partition plan, and resume from the latest
// sealed checkpoint manifest — producing the same chain, bit for bit, as
// a clean restart of the smaller cluster from that checkpoint. Recovery
// handles one failure burst at a time and needs -ckpt-dir on storage all
// ranks share. -die-rank/-die-iter inject a deterministic self-kill for
// smoke tests, and -resume-iter pins a restart to a specific manifest.
//
// The membership plane makes the cluster elastic in the other direction
// too. With -join-addr, the coordinator (rank 0, or the lowest survivor
// after failures) accepts join requests; a late worker started with
//
//	bpmf-dist -join host0:9100 -advertise host9:9000 -elastic ...
//
// is admitted at the next iteration boundary at or after -grow-at-iter:
// every rank checkpoints, the coordinator seals the new view (a fresh
// epoch and member list), the old fabric tears down, and the grown
// cluster re-meshes and resumes from the just-sealed manifest — bitwise
// identical to a fresh cluster of the new size started from that
// manifest. Members carry incarnation numbers, so a convicted rank can
// rejoin at the same address under a higher incarnation without being
// re-convicted by stale verdicts. -min-ranks/-max-ranks bound the view,
// and -join-delay/-iter-delay pace smoke tests.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/partition"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf-dist: ")

	cfg := config.DefaultDist()
	if err := config.Parse(flag.CommandLine, os.Args[1:], &cfg); err != nil {
		log.Fatal(err)
	}

	if cfg.Launch > 0 {
		if err := launchLocal(cfg.Launch, cfg.BasePort, cfg.Elastic); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Establish the starting view: workers derive epoch 0 from -peers;
	// a -join worker instead asks the coordinator for admission and
	// receives the sealed view (plus its rank and resume iteration) to
	// mesh into.
	var view comm.View
	var myAddr string
	pin := cfg.Checkpoint.ResumeIter
	origRank := cfg.Rank
	if cfg.Join != "" {
		origRank = -1 // joiners have no original rank; -die-rank never matches
		if d := cfg.Fault.JoinDelay.Std(); d > 0 {
			time.Sleep(d)
		}
		v, rank, resume, err := comm.RequestJoinTCP(cfg.Join, cfg.Advertise, 2*time.Minute)
		if err != nil {
			log.Fatalf("join %s: %v", cfg.Join, err)
		}
		view, pin, myAddr = v, resume, cfg.Advertise
		log.Printf("joined epoch %d as rank %d of %d, resuming at iteration %d",
			view.Epoch, rank, len(view.Members), resume)
	} else {
		addrs, err := cfg.Addrs() // already vetted by Validate
		if err != nil {
			log.Fatal(err)
		}
		view = comm.InitialView(addrs)
		myAddr = addrs[cfg.Rank]
	}

	ccfg := core.DefaultConfig()
	ccfg.K = cfg.Sampler.K
	ccfg.Alpha = cfg.Sampler.Alpha
	ccfg.Iters = cfg.Sampler.Iters
	ccfg.Burnin = cfg.Sampler.Burnin
	ccfg.Seed = cfg.Sampler.Seed
	opt := dist.Options{
		ThreadsPerRank:  cfg.Threads,
		BufferSize:      cfg.Buffer,
		Reorder:         cfg.Reorder,
		CheckpointDir:   cfg.Checkpoint.Dir,
		CheckpointEvery: cfg.Checkpoint.Every,
	}
	if cfg.Elastic {
		opt.SuspicionTimeout = cfg.Suspicion.Std()
	}

	useShards, err := shardNative(cfg.Data.Path, cfg.FullLoad, cfg.Reorder)
	if err != nil {
		log.Fatal(err)
	}

	// Load whatever is rank-count-independent once; each round (one round,
	// unless -elastic recovers from failures or admits joiners) rebuilds
	// the plan over the current view.
	w := &worker{
		cfg: ccfg, opt: opt, testFrac: cfg.Data.TestFrac, reorder: cfg.Reorder,
		synthetic: cfg.Data.Synthetic, scale: cfg.Data.Scale,
		elastic: cfg.Elastic, origRank: origRank,
		dieRank: cfg.Fault.DieRank, dieIter: cfg.Fault.DieIter,
		table:   comm.NewSuspicionTable(),
		growAt:  cfg.Fault.GrowAtIter, iterDelay: cfg.Fault.IterDelay.Std(),
	}
	if useShards {
		// Open (and validate) the file before joining the cluster:
		// OpenBinary checks the header, shard table and framing eagerly,
		// so a corrupt file fails here instead of wedging the collective
		// load — and the same mapping then feeds the load itself.
		if w.mp, err = sparse.OpenBinary(cfg.Data.Path); err != nil {
			log.Fatal(err)
		}
		defer w.mp.Close()
	} else {
		if w.prob, w.panels, err = buildProblem(cfg.Data.Path, cfg.Data.Synthetic, cfg.Data.Scale, cfg.Data.TestFrac, cfg.Sampler.Seed); err != nil {
			log.Fatal(err)
		}
	}

	// Each round runs one sealed view (an epoch plus a member list in
	// rank order); ranks renumber themselves by their address's position.
	// A round ends three ways: clean (done), a sealed view change (grow —
	// re-mesh and resume), or a peer failure (shrink the view locally and
	// resume; one process can only be sure of failures its own detector
	// or a reset connection reported, so recovery handles one failure
	// burst at a time — see PERF.md for the semantics).
	var mem *comm.Membership
	var srv *comm.MembershipServer
	for {
		me := view.RankOf(myAddr)
		if me < 0 {
			log.Fatalf("%s is not a member of epoch %d", myAddr, view.Epoch)
		}
		if len(view.Members) < cfg.MinRanks {
			log.Fatalf("epoch %d has %d ranks, below -min-ranks %d", view.Epoch, len(view.Members), cfg.MinRanks)
		}
		if me == 0 && cfg.JoinAddr != "" {
			if mem == nil {
				// First round as coordinator (rank 0 from the start, or the
				// lowest survivor after the old coordinator died): start the
				// membership listener. Joiners whose requests died with the
				// old coordinator retry and land here.
				mem = comm.NewMembership(view, cfg.MaxRanks, w.table)
				s, err := comm.ServeMembership(cfg.JoinAddr, mem)
				if err != nil {
					log.Printf("membership: cannot listen on %s (%v) — joins disabled", cfg.JoinAddr, err)
					mem = nil
				} else {
					srv = s
					defer srv.Close()
					log.Printf("membership: coordinator listening on %s (epoch %d)", s.Addr(), view.Epoch)
				}
			} else {
				// A shrink committed outside the membership object; sealed
				// views were committed by Seal below.
				mem.Adopt(view)
			}
		}
		res, stats, err := w.round(me, view, pin, mem)
		if err == nil {
			if me == 0 {
				for i, r := range res.AvgRMSE {
					fmt.Printf("iter %3d  RMSE %.6f\n", i+1, r)
				}
				fmt.Printf("final RMSE %.6f  %.0f updates/s\n", res.FinalRMSE(), res.UpdatesPerSec())
			}
			fmt.Printf("rank %d: sent %d items in %d msgs (%d flushes), received %d ghosts, compute %v, wait %v\n",
				me, stats.ItemsSent, stats.Comm.MsgsSent, stats.Flushes,
				stats.GhostsRecv, stats.ComputeTime.Round(time.Millisecond),
				stats.WaitTime.Round(time.Millisecond))
			if srv != nil {
				srv.Close()
			}
			return
		}
		var vc *dist.ViewChange
		if errors.As(err, &vc) {
			if mem != nil && me == 0 {
				mem.Seal(vc.View, vc.NextIter)
				log.Printf("membership: sealed epoch %d at iteration %d (%d ranks)",
					vc.View.Epoch, vc.NextIter, len(vc.View.Members))
			}
			view = vc.View
			pin = vc.NextIter
			continue
		}
		var rf *comm.RankFailedError
		if !cfg.Elastic || !errors.As(err, &rf) || rf.Rank < 0 || rf.Rank >= len(view.Members) || rf.Rank == me {
			log.Fatalf("rank %d: %v", me, err)
		}
		dead := view.Members[rf.Rank]
		// Record the conviction so a future coordinator takeover on this
		// process never re-issues a dead incarnation to a rejoiner.
		w.table.Convict(dead.Addr, dead.Incarnation)
		log.Printf("rank %d: peer rank %d (%s, incarnation %d) failed: %v — resuming with %d survivors from the latest checkpoint",
			me, rf.Rank, dead.Addr, dead.Incarnation, rf.Err, len(view.Members)-1)
		view = view.Shrink(dead.Addr)
		pin = 0
		// Let every survivor unwind, close its sockets, and free its listen
		// port before the re-dial.
		time.Sleep(2 * cfg.Suspicion.Std())
	}
}

// worker bundles a process's rank-count-independent state; round() runs
// one attempt over the currently sealed view.
type worker struct {
	cfg              core.Config
	opt              dist.Options // Ranks is overwritten per round
	mp               *sparse.Mapped
	prob             *core.Problem
	panels           *partition.Panels
	testFrac         float64
	scale            float64
	synthetic        string
	reorder          bool
	elastic          bool
	origRank         int // rank in the epoch-0 view; -1 for a -join worker
	dieRank, dieIter int
	table            *comm.SuspicionTable
	growAt           int
	iterDelay        time.Duration
}

// round dials the view's mesh (members renumbered 0..n-1 in view order),
// rebuilds the partition plan over the current rank count, resumes from a
// sealed checkpoint when one exists, and runs the sampler until it
// finishes, a view change drains it, or a peer failure unwinds it.
func (w *worker) round(me int, view comm.View, pin int, mem *comm.Membership) (*core.Result, *dist.Stats, error) {
	cur := view.Addrs()
	opt := w.opt
	opt.Ranks = len(cur)
	opt.Epoch = view.Epoch
	opt.Members = view.Members
	opt.Suspicions = w.table
	opt.Membership = mem
	opt.GrowAtIter = w.growAt
	opt.IterDelay = w.iterDelay
	if w.dieRank >= 0 && w.dieRank == w.origRank && w.dieIter >= 0 {
		// Deterministic self-kill for fault-injection smoke tests: exit
		// hard (no cleanup) right after the configured iteration — from
		// the survivors' side this is indistinguishable from a crash.
		opt.OnIteration = func(_, iter int) {
			if iter == w.dieIter {
				fmt.Fprintf(os.Stderr, "rank %d: injected crash after iteration %d\n", w.origRank, iter)
				os.Exit(3)
			}
		}
	}

	c, err := comm.DialTCP(me, cur, 30*time.Second)
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()

	var node *dist.Node
	var test []sparse.Entry
	if w.mp != nil {
		sp, err := dist.LoadShards(c, w.mp, w.testFrac, w.cfg.Seed, opt)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("rank %d: mapped %d of %d shards (%.2f MB payload + %.2f KB metadata)\n",
			me, sp.Shards, sp.TotalShards,
			float64(sp.Load.PayloadBytesTouched)/1e6, float64(sp.Load.HeaderBytes)/1e3)
		if node, err = dist.NewNodeLocal(c, w.cfg, sp.Plan, sp.RT, sp.Test, opt); err != nil {
			return nil, nil, err
		}
		test = sp.Test
	} else {
		var plan *partition.Plan
		if w.panels != nil && !w.reorder {
			// Full-load .bcsr still takes the panel-aligned plan so the
			// chain matches the shard-native path bit for bit.
			if plan, test, err = dist.BuildPlanPanels(w.prob, *w.panels, opt); err != nil {
				return nil, nil, err
			}
		} else {
			plan, test = dist.BuildPlan(w.prob, opt)
		}
		if node, err = dist.NewNode(c, w.cfg, plan, test, opt); err != nil {
			return nil, nil, err
		}
	}

	if opt.CheckpointDir != "" && (w.elastic || pin > 0) {
		var man *dist.Manifest
		if pin > 0 {
			if man, err = dist.ReadManifest(opt.CheckpointDir, pin); err != nil {
				return nil, nil, err
			}
		} else if man, err = dist.LatestManifest(opt.CheckpointDir); err != nil {
			return nil, nil, err
		}
		if man != nil {
			base, err := dist.LoadDistCheckpoint(opt.CheckpointDir, man, test)
			if err != nil {
				return nil, nil, err
			}
			if err := node.Resume(base); err != nil {
				return nil, nil, err
			}
			if me == 0 {
				log.Printf("resuming from the iteration-%d checkpoint (written by %d ranks)", man.Iter, man.Ranks)
			}
		}
	}
	res, stats, rerr := node.Run()
	var rf *comm.RankFailedError
	if w.elastic && errors.As(rerr, &rf) {
		// Our verdict on the dead rank is in, but peers relying on
		// heartbeat silence need up to a full suspicion window to convict
		// the same rank — keep proving we are alive until they have, or
		// the survivors disagree about who died and cannot re-mesh. The
		// beats carry our incarnation so peers with a conviction against a
		// previous life at this address still count them.
		comm.KeepaliveView(c, 0, w.opt.SuspicionTimeout*3/2, view.Members[me].Incarnation)
	}
	return res, stats, rerr
}

// shardNative decides whether this run takes the shard-native .bcsr
// path, logging loudly when a flag forces the fallback.
func shardNative(dataPath string, fullLoad, reorder bool) (bool, error) {
	if dataPath == "" {
		return false, nil
	}
	isB, err := sparse.IsBCSR(dataPath)
	if err != nil || !isB {
		return false, err
	}
	if fullLoad {
		return false, nil
	}
	if reorder {
		log.Printf("-reorder needs the full matrix on every rank; falling back to -full-load for %s", dataPath)
		return false, nil
	}
	return true, nil
}

// launchLocal forks n worker copies of this binary on localhost ports,
// forwarding every set flag except the launch controls. A -config flag
// is forwarded like any other, so file-only settings reach the workers
// by re-reading the same file; the explicit -launch=0 below overrides a
// launch count the file may carry, or the workers would fork again.
func launchLocal(n, basePort int, elastic bool) error {
	common := []string{"-launch=0"}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "launch" || f.Name == "baseport" {
			return
		}
		common = append(common, "-"+f.Name+"="+f.Value.String())
	})
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	return launchWorkers(exe, n, basePort, common, elastic, os.Stdout, os.Stderr)
}

// tailBuffer keeps the last max bytes written through it, so a failed
// worker's diagnostic survives into the launcher's error even though the
// full stream already scrolled past on the terminal.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
	max int
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-t.max:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return strings.TrimSpace(string(t.buf))
}

// launchWorkers starts n worker processes on consecutive localhost ports
// and waits for all of them. Without -elastic, the first rank that exits
// with an error gets the remaining ranks killed — a failed collective
// otherwise leaves the survivors blocked forever on receives that will
// never arrive — and the returned error names the failed rank, its exit
// code, and the tail of its stderr. With -elastic, a worker exit may be
// an injected death the survivors recover from, so the others run on and
// the launch fails only when no rank finishes cleanly.
func launchWorkers(exe string, n, basePort int, common []string, elastic bool, stdout, stderr io.Writer) error {
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		addrs[r] = fmt.Sprintf("127.0.0.1:%d", basePort+r)
	}
	peerList := strings.Join(addrs, ",")
	procs := make([]*exec.Cmd, 0, n)
	tails := make([]*tailBuffer, n)
	killAll := func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}
	type exit struct {
		rank int
		err  error
	}
	done := make(chan exit, n)
	for r := 0; r < n; r++ {
		args := append([]string{"-rank", strconv.Itoa(r), "-peers", peerList}, common...)
		cmd := exec.Command(exe, args...)
		tails[r] = &tailBuffer{max: 4096}
		cmd.Stdout = stdout
		cmd.Stderr = io.MultiWriter(stderr, tails[r])
		if err := cmd.Start(); err != nil {
			killAll()
			for range procs {
				<-done
			}
			return fmt.Errorf("start rank %d: %w", r, err)
		}
		procs = append(procs, cmd)
		rr := r
		go func() { done <- exit{rr, cmd.Wait()} }()
	}
	var firstErr error
	clean := 0
	for i := 0; i < n; i++ {
		e := <-done
		if e.err == nil {
			clean++
			continue
		}
		code := -1
		var ee *exec.ExitError
		if errors.As(e.err, &ee) {
			code = ee.ExitCode()
		}
		if elastic {
			fmt.Fprintf(stderr, "bpmf-dist: rank %d exited with code %d (elastic run continues)\n", e.rank, code)
			continue
		}
		if firstErr == nil {
			msg := fmt.Sprintf("rank %d exited with code %d (remaining ranks killed)", e.rank, code)
			if tail := tails[e.rank].String(); tail != "" {
				msg += "\nstderr tail:\n" + tail
			}
			firstErr = errors.New(msg)
			killAll()
		}
	}
	if elastic && clean == 0 && firstErr == nil {
		firstErr = errors.New("elastic launch: no rank finished cleanly")
	}
	return firstErr
}

// buildProblem loads -data when given (every rank reads the same file,
// so the deterministic split and partition plan agree across ranks) and
// falls back to regenerating the named synthetic benchmark. For .bcsr
// input it also returns the file's panel table so the planner can align
// rank boundaries to shards.
func buildProblem(dataPath, name string, scale, testFrac float64, seed uint64) (*core.Problem, *partition.Panels, error) {
	if dataPath != "" {
		isB, err := sparse.IsBCSR(dataPath)
		if err != nil {
			return nil, nil, err
		}
		if isB {
			mp, err := sparse.OpenBinary(dataPath)
			if err != nil {
				return nil, nil, err
			}
			defer mp.Close()
			full, err := mp.Matrix()
			if err != nil {
				return nil, nil, err
			}
			panels := partition.PanelsOf(mp)
			train, test := sparse.SplitTrainTest(full, testFrac, seed)
			return core.NewProblem(train, test), &panels, nil
		}
		full, err := sparse.Load(dataPath)
		if err != nil {
			return nil, nil, err
		}
		train, test := sparse.SplitTrainTest(full, testFrac, seed)
		return core.NewProblem(train, test), nil, nil
	}
	spec, err := config.Data{Synthetic: name, Scale: scale}.Spec(seed)
	if err != nil {
		return nil, nil, err
	}
	ds := datagen.Generate(spec)
	train, test := sparse.SplitTrainTest(ds.R, testFrac, seed)
	return core.NewProblem(train, test), nil, nil
}
