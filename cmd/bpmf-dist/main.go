// Command bpmf-dist runs distributed BPMF across real OS processes over
// the TCP transport — the deployment mode the paper runs with MPI across
// cluster nodes.
//
// Every process runs the same command with its own -rank; -peers lists
// every rank's listen address in rank order. A convenience -launch mode
// forks all ranks locally:
//
//	# one shot, 4 local worker processes:
//	bpmf-dist -launch 4 -synthetic small -iters 10
//
//	# or across machines (run one per host):
//	bpmf-dist -rank 0 -peers host0:9000,host1:9000 -synthetic small
//	bpmf-dist -rank 1 -peers host0:9000,host1:9000 -synthetic small
//
// All ranks must use identical data/sampler flags: each rank regenerates
// the dataset (or loads the same -data file — MatrixMarket or .bcsr,
// sniffed) and derives the partition plan deterministically from the
// shared seed, so only factor updates travel over the network.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf-dist: ")

	launch := flag.Int("launch", 0, "fork N local worker processes and wait")
	rank := flag.Int("rank", -1, "this process's rank")
	peers := flag.String("peers", "", "comma-separated rank addresses (host:port per rank)")
	basePort := flag.Int("baseport", 9800, "first port for -launch mode")
	dataPath := flag.String("data", "", "rating matrix file (MatrixMarket .mtx or binary .bcsr); overrides -synthetic")
	synthetic := flag.String("synthetic", "small", "benchmark: chembl | ml-20m | small")
	scale := flag.Float64("scale", 1.0, "synthetic scale factor")
	k := flag.Int("k", 16, "latent features")
	iters := flag.Int("iters", 10, "Gibbs iterations")
	burnin := flag.Int("burnin", 5, "burn-in iterations")
	seed := flag.Uint64("seed", 42, "random seed")
	threads := flag.Int("threads", 1, "threads per rank")
	bufBytes := flag.Int("buffer", dist.DefaultBufferSize, "coalescing buffer bytes")
	reorder := flag.Bool("reorder", false, "communication-minimizing reordering")
	testFrac := flag.Float64("test", 0.2, "held-out fraction")
	flag.Parse()

	if *launch > 0 {
		if err := launchLocal(*launch, *basePort); err != nil {
			log.Fatal(err)
		}
		return
	}
	addrs := strings.Split(*peers, ",")
	if *rank < 0 || *peers == "" || *rank >= len(addrs) {
		log.Fatal("worker mode needs -rank and -peers (or use -launch N)")
	}

	prob, err := buildProblem(*dataPath, *synthetic, *scale, *testFrac, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.K = *k
	cfg.Iters = *iters
	cfg.Burnin = *burnin
	cfg.Seed = *seed
	opt := dist.Options{
		Ranks:          len(addrs),
		ThreadsPerRank: *threads,
		BufferSize:     *bufBytes,
		Reorder:        *reorder,
	}
	plan, test := dist.BuildPlan(prob, opt)

	c, err := comm.DialTCP(*rank, addrs, 30*time.Second)
	if err != nil {
		log.Fatalf("rank %d: %v", *rank, err)
	}
	defer c.Close()
	node, err := dist.NewNode(c, cfg, plan, test, opt)
	if err != nil {
		log.Fatalf("rank %d: %v", *rank, err)
	}
	res, stats, err := node.Run()
	if err != nil {
		log.Fatalf("rank %d: %v", *rank, err)
	}
	if *rank == 0 {
		for i, r := range res.AvgRMSE {
			fmt.Printf("iter %3d  RMSE %.6f\n", i+1, r)
		}
		fmt.Printf("final RMSE %.6f  %.0f updates/s\n", res.FinalRMSE(), res.UpdatesPerSec())
	}
	fmt.Printf("rank %d: sent %d items in %d msgs (%d flushes), received %d ghosts, compute %v, wait %v\n",
		*rank, stats.ItemsSent, stats.Comm.MsgsSent, stats.Flushes,
		stats.GhostsRecv, stats.ComputeTime.Round(time.Millisecond),
		stats.WaitTime.Round(time.Millisecond))
}

// launchLocal forks n worker copies of this binary on localhost ports.
func launchLocal(n, basePort int) error {
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		addrs[r] = fmt.Sprintf("127.0.0.1:%d", basePort+r)
	}
	peerList := strings.Join(addrs, ",")
	// Forward every flag except the launch controls.
	var common []string
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "launch" || f.Name == "baseport" {
			return
		}
		common = append(common, "-"+f.Name+"="+f.Value.String())
	})
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	procs := make([]*exec.Cmd, n)
	for r := 0; r < n; r++ {
		args := append([]string{"-rank", strconv.Itoa(r), "-peers", peerList}, common...)
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start rank %d: %w", r, err)
		}
		procs[r] = cmd
	}
	var firstErr error
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return firstErr
}

// buildProblem loads -data when given (every rank reads the same file,
// so the deterministic split and partition plan agree across ranks) and
// falls back to regenerating the named synthetic benchmark.
func buildProblem(dataPath, name string, scale, testFrac float64, seed uint64) (*core.Problem, error) {
	if dataPath != "" {
		full, err := sparse.Load(dataPath)
		if err != nil {
			return nil, err
		}
		train, test := sparse.SplitTrainTest(full, testFrac, seed)
		return core.NewProblem(train, test), nil
	}
	var spec datagen.Spec
	switch strings.ToLower(name) {
	case "chembl":
		spec = datagen.ChEMBL(seed)
	case "ml-20m", "ml20m", "movielens":
		spec = datagen.ML20M(seed)
	case "small":
		spec = datagen.Small(seed)
	default:
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	if scale < 1 {
		spec = datagen.Scaled(spec, scale)
	}
	ds := datagen.Generate(spec)
	train, test := sparse.SplitTrainTest(ds.R, testFrac, seed)
	return core.NewProblem(train, test), nil
}
