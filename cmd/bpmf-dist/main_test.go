package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/datagen"
	"repro/internal/sparse"
)

// TestMain lets this test binary impersonate a bpmf-dist worker: when the
// gate variable is set, the process plays a worker that crashes with a
// diagnostic on stderr instead of running the test suite. launchWorkers
// re-executes the test binary itself, so no separate build is needed.
func TestMain(m *testing.M) {
	if os.Getenv("BPMF_DIST_TEST_WORKER") == "crash" {
		os.Stderr.WriteString("synthetic worker failure: cannot reach peers\n")
		os.Exit(7)
	}
	os.Exit(m.Run())
}

func TestParsePeers(t *testing.T) {
	good := []string{
		"127.0.0.1:9800",
		"127.0.0.1:9800,127.0.0.1:9801",
		"host0:9000,host1:9000", // same port, different hosts: fine
	}
	for _, p := range good {
		addrs, err := config.ParsePeers(p)
		if err != nil {
			t.Errorf("parsePeers(%q): %v", p, err)
		}
		if len(addrs) != strings.Count(p, ",")+1 {
			t.Errorf("parsePeers(%q) returned %d addrs", p, len(addrs))
		}
	}
	bad := map[string]string{
		"":                               "missing",
		"  ":                             "missing",
		"127.0.0.1:9800,":                "empty",
		",127.0.0.1:9800":                "empty",
		"127.0.0.1:9800,,127.0.0.1:9801": "empty",
		"127.0.0.1:9800, 127.0.0.1:9801": "whitespace",
		"localhost":                      "host:port",
		"127.0.0.1:9800,127.0.0.1:9800":  "own listen address",
		"h:1,h:2,h:1":                    "own listen address",
	}
	for p, wantSub := range bad {
		if _, err := config.ParsePeers(p); err == nil {
			t.Errorf("parsePeers(%q) accepted", p)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("parsePeers(%q) error %q does not mention %q", p, err, wantSub)
		}
	}
}

// TestBuildProblemScale pins the -scale contract: != 1 is applied
// (upscales included), <= 0 fails loudly.
func TestBuildProblemScale(t *testing.T) {
	base, _, err := buildProblem("", "small", 1, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	up, _, err := buildProblem("", "small", 2, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if up.R.M <= base.R.M || up.R.N <= base.R.N {
		t.Fatalf("-scale 2 did not upscale: %dx%d vs %dx%d", up.R.M, up.R.N, base.R.M, base.R.N)
	}
	down, _, err := buildProblem("", "small", 0.5, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if down.R.M >= base.R.M {
		t.Fatalf("-scale 0.5 did not downscale: %d vs %d", down.R.M, base.R.M)
	}
	for _, s := range []float64{0, -1} {
		if _, _, err := buildProblem("", "small", s, 0.2, 7); err == nil {
			t.Fatalf("-scale %g accepted", s)
		}
	}
}

// TestBuildProblemReturnsPanelsForBCSR: the full-load .bcsr path must
// surface the shard table so the plan aligns with the shard-native one.
func TestBuildProblemReturnsPanelsForBCSR(t *testing.T) {
	ds := datagen.Generate(datagen.Tiny(5))
	dir := t.TempDir()
	bc := filepath.Join(dir, "r.bcsr")
	f, err := os.Create(bc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteBinarySharded(f, ds.R, 50); err != nil {
		t.Fatal(err)
	}
	f.Close()

	prob, panels, err := buildProblem(bc, "", 1, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if panels == nil || len(panels.Lo) < 2 {
		t.Fatalf("no panel table for .bcsr input (panels=%v)", panels)
	}
	if prob.R.M != ds.R.M {
		t.Fatalf("train matrix has %d rows, want %d", prob.R.M, ds.R.M)
	}

	mm := filepath.Join(dir, "r.mtx")
	g, err := os.Create(mm)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteMatrixMarket(g, ds.R); err != nil {
		t.Fatal(err)
	}
	g.Close()
	_, panels, err = buildProblem(mm, "", 1, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if panels != nil {
		t.Fatal("MatrixMarket input produced a panel table")
	}
}

func TestShardNativeDecision(t *testing.T) {
	ds := datagen.Generate(datagen.Tiny(9))
	bc := filepath.Join(t.TempDir(), "r.bcsr")
	f, err := os.Create(bc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteBinary(f, ds.R); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if on, err := shardNative(bc, false, false); err != nil || !on {
		t.Fatalf("bcsr input must default to shard-native (on=%v err=%v)", on, err)
	}
	if on, _ := shardNative(bc, true, false); on {
		t.Fatal("-full-load did not disable shard-native loading")
	}
	if on, _ := shardNative(bc, false, true); on {
		t.Fatal("-reorder did not force full load")
	}
	if on, err := shardNative("", false, false); err != nil || on {
		t.Fatalf("synthetic run classified as shard-native (on=%v err=%v)", on, err)
	}
}

// TestLaunchWorkersReportsFailedRank pins the launcher's failure report:
// the error must name the failed rank, its exit code, and carry the tail
// of its stderr — the three things someone debugging a dead cluster
// actually needs.
func TestLaunchWorkersReportsFailedRank(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("BPMF_DIST_TEST_WORKER", "crash")
	// tailBuffer doubles as the concurrency-safe sink for both workers'
	// streams (a plain bytes.Buffer would race between the pipe copiers).
	stdout, stderr := &tailBuffer{max: 1 << 20}, &tailBuffer{max: 1 << 20}
	lerr := launchWorkers(exe, 2, 19840, nil, false, stdout, stderr)
	if lerr == nil {
		t.Fatal("a crashing worker must fail the launch")
	}
	msg := lerr.Error()
	if !strings.Contains(msg, "rank 0") && !strings.Contains(msg, "rank 1") {
		t.Fatalf("error does not name the failed rank: %q", msg)
	}
	if !strings.Contains(msg, "exited with code 7") {
		t.Fatalf("error does not name the exit code: %q", msg)
	}
	if !strings.Contains(msg, "synthetic worker failure: cannot reach peers") {
		t.Fatalf("error does not carry the worker's stderr tail: %q", msg)
	}
}

// TestLaunchWorkersElasticNoCleanFinish pins the elastic launch's only
// failure condition: worker exits are tolerated (they may be injected
// deaths the survivors recover from), but a run where no rank finishes
// cleanly is still an error.
func TestLaunchWorkersElasticNoCleanFinish(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("BPMF_DIST_TEST_WORKER", "crash")
	stdout, stderr := &tailBuffer{max: 1 << 20}, &tailBuffer{max: 1 << 20}
	lerr := launchWorkers(exe, 2, 19850, nil, true, stdout, stderr)
	if lerr == nil {
		t.Fatal("an elastic launch where every rank crashed must fail")
	}
	if !strings.Contains(lerr.Error(), "no rank finished cleanly") {
		t.Fatalf("got %q", lerr)
	}
	if !strings.Contains(stderr.String(), "elastic run continues") {
		t.Fatalf("per-rank exits were not reported: %q", stderr.String())
	}
}

func TestTailBufferKeepsTail(t *testing.T) {
	tb := &tailBuffer{max: 8}
	if _, err := tb.Write([]byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if got := tb.String(); got != "89abcdef" {
		t.Fatalf("tail %q, want the last 8 bytes", got)
	}
}
