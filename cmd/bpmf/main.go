// Command bpmf trains BPMF on a rating matrix (a MatrixMarket .mtx or
// binary .bcsr file — the format is sniffed — or a built-in synthetic
// benchmark) with a selectable engine.
//
// Examples:
//
//	bpmf -data ratings.mtx -k 32 -iters 40 -engine worksteal -threads 8
//	bpmf -data ratings.bcsr -k 32 -iters 40
//	bpmf -synthetic chembl -scale 0.05 -engine distributed -ranks 4
//	bpmf -config train.json -iters 50   # file values, -iters overrides
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf: ")

	cfg := config.DefaultTrain()
	if err := config.Parse(flag.CommandLine, os.Args[1:], &cfg); err != nil {
		log.Fatal(err)
	}

	data, err := loadData(cfg.Data.Path, cfg.Data.Synthetic, cfg.Data.Scale, cfg.Data.TestFrac, cfg.Sampler.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d users x %d items, %d train / %d test ratings\n",
		data.NumUsers(), data.NumItems(), data.NumTrain(), data.NumTest())

	eng, err := parseEngine(cfg.Engine)
	if err != nil {
		log.Fatal(err)
	}
	bc := bpmf.Defaults()
	bc.K = cfg.Sampler.K
	bc.Alpha = cfg.Sampler.Alpha
	bc.Iters = cfg.Sampler.Iters
	bc.Burnin = cfg.Sampler.Burnin
	bc.Seed = cfg.Sampler.Seed
	bc.Engine = eng
	bc.Threads = cfg.Threads
	bc.Ranks = cfg.Ranks
	bc.Reorder = cfg.Reorder

	res, err := train(data, bc, cfg.CkptOut, cfg.ResumeCkpt)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.RMSETrace() {
		phase := "sample"
		if i >= bc.Burnin {
			phase = "avg"
		}
		fmt.Printf("iter %3d  RMSE(%s) %.6f\n", i+1, phase, r)
	}
	kc := res.KernelCounts()
	fmt.Printf("final RMSE %.6f  throughput %.0f updates/s  kernels[rankupdate=%d serial_chol=%d parallel_chol=%d]\n",
		res.RMSE(), res.UpdatesPerSec(), kc[0], kc[1], kc[2])
}

// train runs Train, or TrainWithCheckpoint when a checkpoint path was
// given, or ResumeWithCheckpoint when warm-starting from -resume-ckpt.
// Checkpoints are written to a temp file and renamed into place so a
// bpmf-serve watcher never observes a half-written snapshot.
func train(data *bpmf.Data, cfg bpmf.Config, ckptOut, resumeCkpt string) (*bpmf.Result, error) {
	if resumeCkpt != "" {
		return resume(data, cfg, ckptOut, resumeCkpt)
	}
	if ckptOut == "" {
		return bpmf.Train(data, cfg)
	}
	if cfg.Engine != bpmf.Sequential {
		// TrainWithCheckpoint snapshots full sampler state, which only the
		// sequential reference retains; the chain (and so the checkpoint)
		// is bit-identical to what the requested engine would sample, but
		// the run is single-threaded — say so instead of silently losing
		// the parallelism the user asked for.
		fmt.Printf("checkpoint requested: training with the sequential reference sampler (same chain; -engine %s and -threads ignored)\n", cfg.Engine)
	}
	var res *bpmf.Result
	err := core.WriteCheckpointFile(ckptOut, func(w io.Writer) error {
		var trainErr error
		res, trainErr = bpmf.TrainWithCheckpoint(data, cfg, w)
		return trainErr
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("checkpoint written to %s\n", ckptOut)
	return res, nil
}

// resume warm-starts the chain from resumeCkpt (sequential reference
// sampler — the only engine that retains full resumable state; the
// chain is the same one every engine samples) and continues it to
// cfg.Iters total iterations, optionally rotating the finished chain
// into ckptOut.
func resume(data *bpmf.Data, cfg bpmf.Config, ckptOut, resumeCkpt string) (*bpmf.Result, error) {
	if cfg.Engine != bpmf.Sequential {
		fmt.Printf("resume requested: training with the sequential reference sampler (same chain; -engine %s and -threads ignored)\n", cfg.Engine)
	}
	f, err := os.Open(resumeCkpt)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if ckptOut == "" {
		return bpmf.ResumeWithCheckpoint(data, cfg, f, nil)
	}
	var res *bpmf.Result
	err = core.WriteCheckpointFile(ckptOut, func(w io.Writer) error {
		var trainErr error
		res, trainErr = bpmf.ResumeWithCheckpoint(data, cfg, f, w)
		return trainErr
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("checkpoint written to %s\n", ckptOut)
	return res, nil
}

// loadData resolves the data source through the shared config contract:
// a file path wins, otherwise the named synthetic benchmark is
// generated at the given scale.
func loadData(path, synthetic string, scale, testFrac float64, seed uint64) (*bpmf.Data, error) {
	dc := config.Data{Path: path, Synthetic: synthetic, Scale: scale, TestFrac: testFrac}
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	if path != "" {
		return bpmf.DataFromFile(path, testFrac, seed)
	}
	if synthetic == "" {
		return nil, fmt.Errorf("need -data or -synthetic")
	}
	spec, err := dc.Spec(seed)
	if err != nil {
		return nil, err
	}
	return dataFromCSR(datagen.Generate(spec), testFrac, seed)
}

// dataFromCSR round-trips a generated matrix through the public API.
func dataFromCSR(ds *datagen.Dataset, testFrac float64, seed uint64) (*bpmf.Data, error) {
	var ratings []bpmf.Rating
	for i := 0; i < ds.R.M; i++ {
		cols, vals := rowOf(ds.R, i)
		for k, c := range cols {
			ratings = append(ratings, bpmf.Rating{User: i, Item: int(c), Value: vals[k]})
		}
	}
	return bpmf.DataFromRatings(ds.R.M, ds.R.N, ratings, testFrac, seed)
}

func rowOf(r *sparse.CSR, i int) ([]int32, []float64) { return r.Row(i) }

// parseEngine maps the validated engine name onto the public API's
// engine constant. config.Train.Validate has already vetted the name,
// but the mapping stays total so helper callers get a clean error too.
func parseEngine(s string) (bpmf.Engine, error) {
	switch config.CanonicalEngine(s) {
	case "sequential":
		return bpmf.Sequential, nil
	case "worksteal":
		return bpmf.WorkSteal, nil
	case "static":
		return bpmf.Static, nil
	case "graphlab":
		return bpmf.GraphLab, nil
	case "distributed":
		return bpmf.Distributed, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", s)
	}
}
