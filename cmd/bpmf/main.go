// Command bpmf trains BPMF on a rating matrix (a MatrixMarket .mtx or
// binary .bcsr file — the format is sniffed — or a built-in synthetic
// benchmark) with a selectable engine.
//
// Examples:
//
//	bpmf -data ratings.mtx -k 32 -iters 40 -engine worksteal -threads 8
//	bpmf -data ratings.bcsr -k 32 -iters 40
//	bpmf -synthetic chembl -scale 0.05 -engine distributed -ranks 4
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bpmf: ")

	dataPath := flag.String("data", "", "rating matrix to train on (MatrixMarket .mtx or binary .bcsr, sniffed)")
	synthetic := flag.String("synthetic", "", "built-in benchmark: chembl | ml-20m | small")
	scale := flag.Float64("scale", 1.0, "scale factor for the synthetic benchmark")
	k := flag.Int("k", 32, "latent features")
	alpha := flag.Float64("alpha", 2.0, "observation precision")
	iters := flag.Int("iters", 20, "Gibbs iterations")
	burnin := flag.Int("burnin", 10, "burn-in iterations")
	seed := flag.Uint64("seed", 42, "random seed")
	engine := flag.String("engine", "worksteal", "sequential | worksteal | static | graphlab | distributed")
	threads := flag.Int("threads", 1, "threads (per rank for distributed)")
	ranks := flag.Int("ranks", 1, "virtual ranks for the distributed engine")
	testFrac := flag.Float64("test", 0.2, "held-out fraction for RMSE")
	reorder := flag.Bool("reorder", false, "communication-minimizing reordering (distributed)")
	ckptOut := flag.String("ckpt-out", "", "write a resumable chain checkpoint here after training (servable with bpmf-serve)")
	flag.Parse()

	data, err := loadData(*dataPath, *synthetic, *scale, *testFrac, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d users x %d items, %d train / %d test ratings\n",
		data.NumUsers(), data.NumItems(), data.NumTrain(), data.NumTest())

	eng, err := parseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bpmf.Defaults()
	cfg.K = *k
	cfg.Alpha = *alpha
	cfg.Iters = *iters
	cfg.Burnin = *burnin
	cfg.Seed = *seed
	cfg.Engine = eng
	cfg.Threads = *threads
	cfg.Ranks = *ranks
	cfg.Reorder = *reorder

	res, err := train(data, cfg, *ckptOut)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.RMSETrace() {
		phase := "sample"
		if i >= cfg.Burnin {
			phase = "avg"
		}
		fmt.Printf("iter %3d  RMSE(%s) %.6f\n", i+1, phase, r)
	}
	kc := res.KernelCounts()
	fmt.Printf("final RMSE %.6f  throughput %.0f updates/s  kernels[rankupdate=%d serial_chol=%d parallel_chol=%d]\n",
		res.RMSE(), res.UpdatesPerSec(), kc[0], kc[1], kc[2])
}

// train runs Train, or TrainWithCheckpoint when a checkpoint path was
// given. The checkpoint is written to a temp file and renamed into place
// so a bpmf-serve watcher never observes a half-written snapshot.
func train(data *bpmf.Data, cfg bpmf.Config, ckptOut string) (*bpmf.Result, error) {
	if ckptOut == "" {
		return bpmf.Train(data, cfg)
	}
	if cfg.Engine != bpmf.Sequential {
		// TrainWithCheckpoint snapshots full sampler state, which only the
		// sequential reference retains; the chain (and so the checkpoint)
		// is bit-identical to what the requested engine would sample, but
		// the run is single-threaded — say so instead of silently losing
		// the parallelism the user asked for.
		fmt.Printf("checkpoint requested: training with the sequential reference sampler (same chain; -engine %s and -threads ignored)\n", cfg.Engine)
	}
	var res *bpmf.Result
	err := core.WriteCheckpointFile(ckptOut, func(w io.Writer) error {
		var trainErr error
		res, trainErr = bpmf.TrainWithCheckpoint(data, cfg, w)
		return trainErr
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("checkpoint written to %s\n", ckptOut)
	return res, nil
}

func loadData(path, synthetic string, scale, testFrac float64, seed uint64) (*bpmf.Data, error) {
	switch {
	case path != "":
		return bpmf.DataFromFile(path, testFrac, seed)
	case synthetic != "":
		var spec datagen.Spec
		switch strings.ToLower(synthetic) {
		case "chembl":
			spec = datagen.ChEMBL(seed)
		case "ml-20m", "ml20m", "movielens":
			spec = datagen.ML20M(seed)
		case "small":
			spec = datagen.Small(seed)
		default:
			return nil, fmt.Errorf("unknown synthetic benchmark %q", synthetic)
		}
		// Any scale other than 1 is applied — upscales included — and a
		// non-positive scale is an error, not a silently unscaled run.
		if scale <= 0 {
			return nil, fmt.Errorf("-scale must be positive, got %g", scale)
		}
		if scale != 1 {
			spec = datagen.Scaled(spec, scale)
		}
		ds := datagen.Generate(spec)
		return dataFromCSR(ds, testFrac, seed)
	default:
		return nil, fmt.Errorf("need -data or -synthetic")
	}
}

// dataFromCSR round-trips a generated matrix through the public API.
func dataFromCSR(ds *datagen.Dataset, testFrac float64, seed uint64) (*bpmf.Data, error) {
	var ratings []bpmf.Rating
	for i := 0; i < ds.R.M; i++ {
		cols, vals := rowOf(ds.R, i)
		for k, c := range cols {
			ratings = append(ratings, bpmf.Rating{User: i, Item: int(c), Value: vals[k]})
		}
	}
	return bpmf.DataFromRatings(ds.R.M, ds.R.N, ratings, testFrac, seed)
}

func rowOf(r *sparse.CSR, i int) ([]int32, []float64) { return r.Row(i) }

func parseEngine(s string) (bpmf.Engine, error) {
	switch strings.ToLower(s) {
	case "sequential", "seq":
		return bpmf.Sequential, nil
	case "worksteal", "tbb":
		return bpmf.WorkSteal, nil
	case "static", "openmp":
		return bpmf.Static, nil
	case "graphlab":
		return bpmf.GraphLab, nil
	case "distributed", "dist", "mpi":
		return bpmf.Distributed, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", s)
	}
}
