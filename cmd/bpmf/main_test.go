package main

import "testing"

// TestLoadDataScale pins the -scale contract (the silent-ignore bug
// where only downscales were applied): != 1 is applied in both
// directions, <= 0 fails loudly.
func TestLoadDataScale(t *testing.T) {
	base, err := loadData("", "small", 1, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	up, err := loadData("", "small", 2, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if up.NumUsers() <= base.NumUsers() || up.NumItems() <= base.NumItems() {
		t.Fatalf("-scale 2 did not upscale: %dx%d vs %dx%d",
			up.NumUsers(), up.NumItems(), base.NumUsers(), base.NumItems())
	}
	down, err := loadData("", "small", 0.5, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if down.NumUsers() >= base.NumUsers() {
		t.Fatalf("-scale 0.5 did not downscale: %d vs %d", down.NumUsers(), base.NumUsers())
	}
	for _, s := range []float64{0, -0.5} {
		if _, err := loadData("", "small", s, 0.2, 7); err == nil {
			t.Fatalf("-scale %g accepted", s)
		}
	}
}
