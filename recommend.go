package bpmf

import (
	"math"
	"sort"

	"repro/internal/rank"
)

// Scored is one recommendation: an item and its predicted rating.
type Scored struct {
	Item  int
	Score float64
}

// Recommend returns the user's top-n unseen items by predicted rating
// (items the user rated in the training data are excluded — the standard
// recommender-system protocol the paper's introduction describes). It
// returns nil if user is out of range or n <= 0, and fewer than n items
// when the user has fewer than n unrated items. Scoring and selection run
// through the same ranking core the serving layer uses (internal/rank):
// a blocked Gemv over item panels feeding a bounded min-heap.
func (r *Result) Recommend(user, n int) []Scored {
	return r.recommendInto(user, n, nil)
}

// recommendInto is Recommend with an optional reusable score buffer of
// length NumItems (nil allocates one): EvaluateRanking calls it once per
// evaluated user and must not churn a catalog-sized slice per call.
func (r *Result) recommendInto(user, n int, scores []float64) []Scored {
	if n <= 0 || user < 0 || user >= r.res.U.Rows {
		return nil
	}
	var excl []int32
	if r.data != nil {
		excl, _ = r.data.prob.R.Row(user)
	}
	if scores == nil {
		scores = make([]float64, r.res.V.Rows)
	}
	rank.ScoreInto(r.res.V, r.res.U.Row(user), scores)
	items := rank.TopNScoresExcluding(scores, excl, n)
	if len(items) == 0 {
		return nil
	}
	out := make([]Scored, len(items))
	for i, it := range items {
		out[i] = Scored{Item: it.Index, Score: it.Score}
	}
	return out
}

// RankingReport holds averaged top-k ranking quality over the held-out
// test set.
type RankingReport struct {
	// Users is the number of users with at least one relevant held-out
	// item and at least one recommendable item that entered the average.
	Users int
	// PrecisionAtK / RecallAtK / NDCGAtK are means over those users.
	PrecisionAtK, RecallAtK, NDCGAtK float64
}

// EvaluateRanking scores the model as a top-k recommender against the
// held-out ratings: an item is *relevant* for a user if its held-out
// rating is >= relevanceThreshold. Returns averaged precision@k,
// recall@k and NDCG@k over users with at least one relevant held-out
// item. Users with nothing recommendable (every item rated in training)
// are skipped; for users with fewer than k recommendable items the
// metrics are computed over the list actually recommended, so a short
// catalog does not deflate precision@k or NDCG@k.
func (r *Result) EvaluateRanking(k int, relevanceThreshold float64) RankingReport {
	if r.data == nil || k <= 0 {
		return RankingReport{}
	}
	// Collect each user's relevant held-out items.
	relevant := map[int]map[int]bool{}
	for _, e := range r.data.prob.Test {
		if e.Val >= relevanceThreshold {
			u := int(e.Row)
			if relevant[u] == nil {
				relevant[u] = map[int]bool{}
			}
			relevant[u][int(e.Col)] = true
		}
	}
	users := make([]int, 0, len(relevant))
	for u := range relevant {
		users = append(users, u)
	}
	sort.Ints(users)

	var rep RankingReport
	scores := make([]float64, r.res.V.Rows)
	for _, u := range users {
		rel := relevant[u]
		top := r.recommendInto(u, k, scores)
		if len(top) == 0 {
			// Nothing recommendable for this user; precision is undefined.
			continue
		}
		hits := 0
		dcg := 0.0
		for rank, s := range top {
			if rel[s.Item] {
				hits++
				dcg += 1 / math.Log2(float64(rank)+2)
			}
		}
		// The ideal ranker can place at most min(|relevant|, |returned|)
		// hits in the list it was able to produce.
		idealHits := len(rel)
		if idealHits > len(top) {
			idealHits = len(top)
		}
		idcg := 0.0
		for rank := 0; rank < idealHits; rank++ {
			idcg += 1 / math.Log2(float64(rank)+2)
		}
		rep.Users++
		rep.PrecisionAtK += float64(hits) / float64(len(top))
		rep.RecallAtK += float64(hits) / float64(len(rel))
		if idcg > 0 {
			rep.NDCGAtK += dcg / idcg
		}
	}
	if rep.Users > 0 {
		rep.PrecisionAtK /= float64(rep.Users)
		rep.RecallAtK /= float64(rep.Users)
		rep.NDCGAtK /= float64(rep.Users)
	}
	return rep
}
