package bpmf

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/la"
)

// Scored is one recommendation: an item and its predicted rating.
type Scored struct {
	Item  int
	Score float64
}

// Recommend returns the user's top-n unseen items by predicted rating
// (items the user rated in the training data are excluded — the standard
// recommender-system protocol the paper's introduction describes).
func (r *Result) Recommend(user, n int) []Scored {
	if n <= 0 {
		return nil
	}
	seen := map[int32]bool{}
	if r.data != nil {
		cols, _ := r.data.prob.R.Row(user)
		for _, c := range cols {
			seen[c] = true
		}
	}
	u := r.res.U.Row(user)
	h := &scoredHeap{}
	heap.Init(h)
	for item := 0; item < r.res.V.Rows; item++ {
		if seen[int32(item)] {
			continue
		}
		s := la.Dot(u, r.res.V.Row(item))
		if h.Len() < n {
			heap.Push(h, Scored{Item: item, Score: s})
		} else if s > (*h)[0].Score {
			(*h)[0] = Scored{Item: item, Score: s}
			heap.Fix(h, 0)
		}
	}
	out := make([]Scored, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Scored)
	}
	return out
}

// scoredHeap is a min-heap by score (the root is the weakest of the
// current top-n).
type scoredHeap []Scored

func (h scoredHeap) Len() int           { return len(h) }
func (h scoredHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h scoredHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x any)        { *h = append(*h, x.(Scored)) }
func (h *scoredHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RankingReport holds averaged top-k ranking quality over the held-out
// test set.
type RankingReport struct {
	// Users is the number of users with at least one relevant held-out
	// item that entered the average.
	Users int
	// PrecisionAtK / RecallAtK / NDCGAtK are means over those users.
	PrecisionAtK, RecallAtK, NDCGAtK float64
}

// EvaluateRanking scores the model as a top-k recommender against the
// held-out ratings: an item is *relevant* for a user if its held-out
// rating is >= relevanceThreshold. Returns averaged precision@k,
// recall@k and NDCG@k over users with at least one relevant held-out
// item.
func (r *Result) EvaluateRanking(k int, relevanceThreshold float64) RankingReport {
	if r.data == nil || k <= 0 {
		return RankingReport{}
	}
	// Collect each user's relevant held-out items.
	relevant := map[int]map[int]bool{}
	for _, e := range r.data.prob.Test {
		if e.Val >= relevanceThreshold {
			u := int(e.Row)
			if relevant[u] == nil {
				relevant[u] = map[int]bool{}
			}
			relevant[u][int(e.Col)] = true
		}
	}
	users := make([]int, 0, len(relevant))
	for u := range relevant {
		users = append(users, u)
	}
	sort.Ints(users)

	var rep RankingReport
	for _, u := range users {
		rel := relevant[u]
		top := r.Recommend(u, k)
		hits := 0
		dcg := 0.0
		for rank, s := range top {
			if rel[s.Item] {
				hits++
				dcg += 1 / math.Log2(float64(rank)+2)
			}
		}
		idealHits := len(rel)
		if idealHits > k {
			idealHits = k
		}
		idcg := 0.0
		for rank := 0; rank < idealHits; rank++ {
			idcg += 1 / math.Log2(float64(rank)+2)
		}
		rep.Users++
		rep.PrecisionAtK += float64(hits) / float64(k)
		rep.RecallAtK += float64(hits) / float64(len(rel))
		if idcg > 0 {
			rep.NDCGAtK += dcg / idcg
		}
	}
	if rep.Users > 0 {
		rep.PrecisionAtK /= float64(rep.Users)
		rep.RecallAtK /= float64(rep.Users)
		rep.NDCGAtK /= float64(rep.Users)
	}
	return rep
}
