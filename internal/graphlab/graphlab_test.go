package graphlab

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func problem(t *testing.T, spec datagen.Spec) *core.Problem {
	t.Helper()
	ds := datagen.Generate(spec)
	train, test := sparse.SplitTrainTest(ds.R, 0.2, spec.Seed)
	return core.NewProblem(train, test)
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 6
	cfg.Iters = 4
	cfg.Burnin = 2
	cfg.RankOneMax = 4
	cfg.KernelThreshold = 20
	cfg.ParallelGrain = 7
	return cfg
}

func TestGraphConstruction(t *testing.T) {
	prob := problem(t, datagen.Tiny(2))
	g := NewGraph(prob)
	if g.NumVertices() != prob.R.M+prob.R.N {
		t.Fatal("vertex count wrong")
	}
	// User edges come from R, movie edges from the transpose.
	cols, _ := g.Edges(core.SideU, 0)
	wcols, _ := prob.R.Row(0)
	if len(cols) != len(wcols) {
		t.Fatal("user edge list mismatch")
	}
	mcols, _ := g.Edges(core.SideV, 0)
	wmcols, _ := prob.Rt.Row(0)
	if len(mcols) != len(wmcols) {
		t.Fatal("movie edge list mismatch")
	}
}

func TestGraphLabMatchesSequentialBitwise(t *testing.T) {
	// "All versions reach the same level of prediction accuracy" — here
	// exactly, because the vertex program delegates to the same kernels
	// with the same keyed streams.
	prob := problem(t, datagen.Small(9))
	cfg := testConfig()
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	for _, threads := range []int{1, 3} {
		got, _, err := Run(cfg, prob, threads)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
			t.Fatalf("threads=%d: GraphLab chain differs from sequential", threads)
		}
		for i := range want.AvgRMSE {
			if got.AvgRMSE[i] != want.AvgRMSE[i] {
				t.Fatalf("threads=%d: RMSE trace differs at %d", threads, i)
			}
		}
	}
}

// TestActivationOrderIsChainInvariant drives the engine over random
// vertex activation orders: any permutation must reproduce the sequential
// chain and RMSE trace bit for bit (the ordering freedom the locality
// schedule exploits).
func TestActivationOrderIsChainInvariant(t *testing.T) {
	prob := problem(t, datagen.Small(13))
	cfg := testConfig()
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	m, n := prob.Dims()
	r := rng.New(55)
	perm := func(size int) []int32 {
		p := make([]int32, size)
		for i := range p {
			p[i] = int32(i)
		}
		for i := size - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			p[i], p[j] = p[j], p[i]
		}
		return p
	}
	for trial := 0; trial < 3; trial++ {
		sch := &order.Schedule{U: perm(m), V: perm(n)}
		got, _, err := RunScheduled(cfg, prob, 2, sch)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
			t.Fatalf("trial %d: random activation order changed the chain", trial)
		}
		for i := range want.AvgRMSE {
			if got.AvgRMSE[i] != want.AvgRMSE[i] || got.SampleRMSE[i] != want.SampleRMSE[i] {
				t.Fatalf("trial %d: RMSE trace not bit-identical at iter %d", trial, i)
			}
		}
	}
}

func TestEngineStats(t *testing.T) {
	prob := problem(t, datagen.Tiny(7))
	cfg := testConfig()
	cfg.Iters = 3
	cfg.Burnin = 1
	_, stats, err := Run(cfg, prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, n := prob.Dims()
	if stats.Supersteps != 2*cfg.Iters {
		t.Fatalf("supersteps = %d, want %d", stats.Supersteps, 2*cfg.Iters)
	}
	if stats.VertexActivations != int64(cfg.Iters)*int64(m+n) {
		t.Fatalf("activations = %d", stats.VertexActivations)
	}
	if stats.EdgeGathers != int64(cfg.Iters)*2*int64(prob.R.NNZ()) {
		t.Fatalf("gathers = %d, want %d", stats.EdgeGathers, int64(cfg.Iters)*2*int64(prob.R.NNZ()))
	}
	if stats.Barriers != stats.Supersteps {
		t.Fatal("one barrier per superstep")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	prob := problem(t, datagen.Tiny(1))
	cfg := testConfig()
	cfg.Alpha = -1
	if _, _, err := Run(cfg, prob, 2); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestKernelCountsReported(t *testing.T) {
	prob := problem(t, datagen.Small(9))
	cfg := testConfig()
	cfg.Iters = 2
	cfg.Burnin = 1
	res, _, err := Run(cfg, prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range res.KernelCounts {
		total += c
	}
	m, n := prob.Dims()
	if total != int64(cfg.Iters)*int64(m+n) {
		t.Fatalf("kernel counts %v don't cover all updates", res.KernelCounts)
	}
}
