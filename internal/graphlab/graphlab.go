// Package graphlab implements the baseline the paper compares against in
// Figure 3: a GraphLab-style synchronous vertex-program engine running
// BPMF over the bipartite rating graph.
//
// The engine reproduces the structural properties that make the real
// GraphLab trail the hand-tuned TBB code on this workload:
//
//   - programmer-productivity abstraction: vertex programs are invoked
//     through an interface, gather accumulators are allocated per vertex
//     activation, and neighbor factors are copied into the accumulator
//     and re-materialized before the update (the kernels' internal
//     scratch is leased from a shared arena — our substrate detail — but
//     the gather copies themselves are the abstraction's tax);
//   - synchronous supersteps: one barrier per side per Gibbs iteration,
//     so a straggler vertex (a movie with 10⁵ ratings) stalls every
//     thread;
//   - static vertex partitioning with no work stealing and no nested
//     parallelism inside one vertex program.
//
// The arithmetic inside Apply delegates to the same core.UpdateItem hybrid
// kernels (executed inline, without nested tasks), so the chain it samples
// is bit-identical to the sequential reference — the paper's "all versions
// reach the same level of prediction accuracy" holds exactly.
package graphlab

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/order"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// Graph is the bipartite rating graph: user vertices [0, M) and movie
// vertices [M, M+N), with one edge per observed rating.
type Graph struct {
	NumUsers, NumMovies int
	R                   *sparse.CSR // user -> movie edges
	Rt                  *sparse.CSR // movie -> user edges
}

// NewGraph builds the bipartite graph of a problem.
func NewGraph(prob *core.Problem) *Graph {
	return &Graph{
		NumUsers:  prob.R.M,
		NumMovies: prob.R.N,
		R:         prob.R,
		Rt:        prob.Rt,
	}
}

// NumVertices returns the total vertex count.
func (g *Graph) NumVertices() int { return g.NumUsers + g.NumMovies }

// Edges returns the neighbor list of one side's local vertex.
func (g *Graph) Edges(side core.Side, local int) ([]int32, []float64) {
	if side == core.SideU {
		return g.R.Row(local)
	}
	return g.Rt.Row(local)
}

// Program is the vertex-program abstraction (gather–apply; BPMF needs no
// scatter because the engine signals the full opposite side each
// superstep). Implementations receive one freshly allocated accumulator
// per vertex activation, GraphLab-style.
type Program interface {
	// InitAcc allocates the gather accumulator for one vertex activation.
	InitAcc(nEdges int) any
	// Gather folds one edge (the neighbor's current factor row and the
	// edge's rating) into the accumulator. Called once per edge, in
	// canonical storage order.
	Gather(acc any, neighbor la.Vector, rating float64)
	// Apply consumes the accumulator and writes the vertex's new factor.
	// thread is the engine thread running the activation (GraphLab's
	// execution-context id), letting programs keep thread-local scratch.
	Apply(side core.Side, local, thread int, acc any, out la.Vector)
}

// Stats counts engine activity, used by the discrete-event model
// calibration.
type Stats struct {
	Supersteps        int
	VertexActivations int64
	EdgeGathers       int64
	Barriers          int
}

// Engine is a synchronous (bulk-synchronous-parallel) vertex engine with
// static partitioning, the closest analogue of GraphLab's sync engine
// configuration used for matrix factorization benchmarks.
type Engine struct {
	G       *Graph
	Threads int
	Stats   Stats
}

// NewEngine creates a synchronous engine over g with the given thread
// count.
func NewEngine(g *Graph, threads int) *Engine {
	if threads < 1 {
		threads = 1
	}
	return &Engine{G: g, Threads: threads}
}

// Superstep activates every vertex of one side, running gather over all
// edges and then apply, with a barrier at the end (implicit in StaticFor).
// factors is the side's own factor matrix (written); other the partner
// side's (read). ord is the vertex activation order (nil = vertex-id
// order): a locality schedule keeps the gathered neighbor rows of
// consecutive activations cache-resident, and because every activation
// reads only the frozen partner side and writes only its own vertex, the
// order changes no sampled bit — GraphLab's own engines make the same
// no-ordering promise to vertex programs.
func (e *Engine) Superstep(side core.Side, prog Program, factors, other *la.Matrix, ord []int32) {
	n := factors.Rows
	var activations, gathers int64
	type counter struct{ a, g int64 }
	perThread := make([]counter, e.Threads)
	sched.StaticFor(e.Threads, 0, n, func(t, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			v := pos
			if ord != nil {
				v = int(ord[pos])
			}
			cols, vals := e.G.Edges(side, v)
			acc := prog.InitAcc(len(cols)) // per-activation allocation
			for k, c := range cols {
				prog.Gather(acc, other.Row(int(c)), vals[k])
			}
			prog.Apply(side, v, t, acc, factors.Row(v))
			perThread[t].a++
			perThread[t].g += int64(len(cols))
		}
	})
	for _, c := range perThread {
		activations += c.a
		gathers += c.g
	}
	e.Stats.Supersteps++
	e.Stats.Barriers++
	e.Stats.VertexActivations += activations
	e.Stats.EdgeGathers += gathers
}

// bpmfAcc is the BPMF program's gather accumulator: the neighbor factors
// and ratings copied out of the graph, GraphLab-style (the high-level
// abstraction prevents the in-place CSR iteration the hand-tuned kernels
// use — this copy is part of the productivity tax Figure 3 measures).
type bpmfAcc struct {
	cols []int32
	vals []float64
	rows []la.Vector
}

// Run executes BPMF on prob with the GraphLab-style engine and returns
// the result plus engine statistics, activating each superstep's vertices
// in the default locality schedule (pure RCM — no heavy-first binning,
// which would hand every heavy vertex to the static split's first
// thread).
func Run(cfg core.Config, prob *core.Problem, threads int) (*core.Result, *Stats, error) {
	return RunScheduled(cfg, prob, threads, order.Build(prob.R, order.Options{}))
}

// RunScheduled is Run with an explicit activation schedule (nil sch or nil
// sides mean vertex-id order). Any permutation yields the bit-identical
// chain; a non-permutation order is rejected — it would silently skip
// some vertices and activate others twice.
func RunScheduled(cfg core.Config, prob *core.Problem, threads int, sch *order.Schedule) (*core.Result, *Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if sch == nil {
		sch = &order.Schedule{}
	}
	m, n := prob.Dims()
	if sch.U != nil && !order.IsPermutation(sch.U, m) {
		return nil, nil, fmt.Errorf("graphlab: schedule U order is not a permutation of [0,%d)", m)
	}
	if sch.V != nil && !order.IsPermutation(sch.V, n) {
		return nil, nil, fmt.Errorf("graphlab: schedule V order is not a permutation of [0,%d)", n)
	}
	g := NewGraph(prob)
	e := NewEngine(g, threads)
	u := core.InitFactors(cfg.Seed, core.SideU, m, cfg.K)
	v := core.InitFactors(cfg.Seed, core.SideV, n, cfg.K)
	hu, hv := core.NewHyper(cfg.K), core.NewHyper(cfg.K)
	hws := core.NewHyperWorkspace(cfg.K)
	prior := core.DefaultNWPrior(cfg.K)
	pred := core.NewPredictor(prob.Test, cfg.ClampMin, cfg.ClampMax)
	pred.Alpha = cfg.Alpha
	mws := core.NewMomentsWorkspace(cfg.K)
	res := &core.Result{
		SampleRMSE: make([]float64, 0, cfg.Iters),
		AvgRMSE:    make([]float64, 0, cfg.Iters),
	}
	// The kernel scratch (our substrate, not part of the vertex-program
	// abstraction) is leased per activation from a shared arena; the
	// GraphLab productivity tax Figure 3 measures — per-activation gather
	// accumulators and neighbor-row copies — stays in InitAcc/Gather.
	acc := core.NewAccArena(cfg.K)
	wsArena := sched.NewArena(func() *core.Workspace {
		return core.NewWorkspaceShared(cfg.K, acc)
	})

	sfor := func(nGroups int, run func(gr int)) {
		sched.StaticFor(threads, 0, nGroups, func(_, lo, hi int) {
			for gr := lo; gr < hi; gr++ {
				run(gr)
			}
		})
	}

	start := time.Now()
	for it := 0; it < cfg.Iters; it++ {
		// Movies superstep.
		groupsV := core.GroupBoundaries(cfg.MomentGroupsV, v.Rows)
		mv := core.MomentsGroupedWS(v, groupsV, cfg.K, sfor, mws)
		core.SampleHyperWS(prior, mv, core.HyperStream(cfg.Seed, it, core.SideV), hv, hws)
		pv := &program{cfg: &cfg, iter: it, side: core.SideV, hyper: hv, res: res, ws: wsArena}
		e.Superstep(core.SideV, pv, v, u, sch.V)
		for k := range res.KernelCounts {
			res.KernelCounts[k] += pv.counts[k].Load()
		}

		// Users superstep.
		groupsU := core.GroupBoundaries(cfg.MomentGroupsU, u.Rows)
		mu := core.MomentsGroupedWS(u, groupsU, cfg.K, sfor, mws)
		core.SampleHyperWS(prior, mu, core.HyperStream(cfg.Seed, it, core.SideU), hu, hws)
		pu := &program{cfg: &cfg, iter: it, side: core.SideU, hyper: hu, res: res, ws: wsArena}
		e.Superstep(core.SideU, pu, u, v, sch.U)
		for k := range res.KernelCounts {
			res.KernelCounts[k] += pu.counts[k].Load()
		}

		// Evaluation runs through the engine's static split over the fixed
		// chunk tree — an aggregate in GraphLab's vocabulary.
		sr, ar := pred.UpdatePar(u, v, it >= cfg.Burnin, sfor)
		res.SampleRMSE = append(res.SampleRMSE, sr)
		res.AvgRMSE = append(res.AvgRMSE, ar)
	}
	res.Elapsed = time.Since(start)
	res.Iters = cfg.Iters
	res.ItemUpdates = int64(cfg.Iters) * int64(m+n)
	res.U, res.V = u, v
	res.Intervals = pred.Intervals()
	return res, &e.Stats, nil
}

// program is the concrete BPMF vertex program.
type program struct {
	cfg    *core.Config
	iter   int
	side   core.Side
	hyper  *core.Hyper
	res    *core.Result
	ws     *sched.Arena[*core.Workspace]
	counts [3]atomic.Int64
}

// InitAcc allocates the per-activation accumulator.
func (p *program) InitAcc(nEdges int) any {
	return &bpmfAcc{
		cols: make([]int32, 0, nEdges),
		vals: make([]float64, 0, nEdges),
		rows: make([]la.Vector, 0, nEdges),
	}
}

// Gather copies the neighbor's factor reference and the rating.
func (p *program) Gather(acc any, neighbor la.Vector, rating float64) {
	a := acc.(*bpmfAcc)
	a.cols = append(a.cols, int32(len(a.rows)))
	a.vals = append(a.vals, rating)
	a.rows = append(a.rows, neighbor)
}

// Apply performs the Gibbs draw with the hybrid kernel (inline, no nested
// parallelism), writing the new factor row. The workspace lease uses the
// engine thread's arena shard, so threads do not contend on one free list.
func (p *program) Apply(side core.Side, local, thread int, acc any, out la.Vector) {
	a := acc.(*bpmfAcc)
	// Rebuild a dense "other" view so core.UpdateItem accumulates in the
	// same canonical order as the flat engines.
	view := &rowView{rows: a.rows, k: p.cfg.K}
	ws := p.ws.GetShard(thread) // leased per activation, released below
	kern := p.cfg.SelectKernel(len(a.cols))
	p.counts[kern].Add(1)
	core.UpdateItem(ws, kern, p.cfg, a.cols, a.vals, view.matrix(), p.hyper,
		ws.ItemStream(p.cfg.Seed, p.iter, side, local), nil, nil, out)
	p.ws.PutShard(thread, ws)
}

// rowView materializes gathered rows into a contiguous matrix (another
// copy the high-level abstraction forces).
type rowView struct {
	rows []la.Vector
	k    int
}

func (rv *rowView) matrix() *la.Matrix {
	m := la.NewMatrix(len(rv.rows), rv.k)
	for i, r := range rv.rows {
		copy(m.Row(i), r)
	}
	return m
}
