package datagen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestGenerateShape(t *testing.T) {
	ds := Generate(Small(3))
	if ds.R.M != 600 || ds.R.N != 180 {
		t.Fatalf("dims %dx%d", ds.R.M, ds.R.N)
	}
	if ds.R.NNZ() != 12000 {
		t.Fatalf("nnz %d, want 12000", ds.R.NNZ())
	}
	if len(ds.UTrue) != 600 || len(ds.VTrue) != 180 || len(ds.UTrue[0]) != 8 {
		t.Fatal("planted factor shapes wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Tiny(7))
	b := Generate(Tiny(7))
	if !sparse.Equal(a.R, b.R) {
		t.Fatal("generation not deterministic")
	}
	c := Generate(Tiny(8))
	if sparse.Equal(a.R, c.R) {
		t.Fatal("different seeds gave identical data")
	}
}

func TestGenerateNoDuplicates(t *testing.T) {
	ds := Generate(Small(5))
	for i := 0; i < ds.R.M; i++ {
		cols, _ := ds.R.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] == cols[k-1] {
				t.Fatalf("duplicate entry in row %d", i)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// The column-degree distribution must be heavy-tailed: the busiest
	// column far above the mean (this skew drives Figures 2-3).
	ds := Generate(Small(11))
	st := sparse.Stats(ds.R.Transpose().RowDegrees())
	if float64(st.Max) < 4*st.Mean {
		t.Fatalf("max degree %d not >> mean %.1f; Zipf skew missing", st.Max, st.Mean)
	}
}

func TestPlantedSignalRecoverable(t *testing.T) {
	// Ratings must correlate with the planted factors: RMSE of the
	// ground-truth predictor ~ NoiseSD, far below the response's own
	// standard deviation.
	spec := Small(13)
	ds := Generate(spec)
	var se, sumsq, sum float64
	n := 0
	for i := 0; i < ds.R.M; i++ {
		cols, vals := ds.R.Row(i)
		for k, c := range cols {
			pred := dot(ds.UTrue[i], ds.VTrue[c])
			d := pred - vals[k]
			se += d * d
			sum += vals[k]
			sumsq += vals[k] * vals[k]
			n++
		}
	}
	rmseTruth := math.Sqrt(se / float64(n))
	sd := math.Sqrt(sumsq/float64(n) - (sum/float64(n))*(sum/float64(n)))
	if rmseTruth > spec.NoiseSD*1.2 {
		t.Fatalf("ground-truth RMSE %v far above noise floor %v", rmseTruth, spec.NoiseSD)
	}
	if rmseTruth > 0.7*sd {
		t.Fatalf("signal too weak: truth RMSE %v vs response SD %v", rmseTruth, sd)
	}
}

func TestClipping(t *testing.T) {
	ds := Generate(ML20MScaledForTest())
	for i := 0; i < ds.R.M; i++ {
		_, vals := ds.R.Row(i)
		for _, v := range vals {
			if v < 0.5 || v > 5 {
				t.Fatalf("rating %v outside [0.5, 5]", v)
			}
		}
	}
}

// ML20MScaledForTest returns a small ml-20m-shaped spec with clipping.
func ML20MScaledForTest() Spec {
	s := Scaled(ML20M(3), 0.002)
	return s
}

func TestScaled(t *testing.T) {
	base := ChEMBL(1)
	s := Scaled(base, 0.1)
	if s.Rows != base.Rows/10 || s.Cols != base.Cols/10 {
		t.Fatalf("scaled dims %dx%d", s.Rows, s.Cols)
	}
	if s.Name == base.Name {
		t.Fatal("scaled spec must be renamed")
	}
	// Scaling never drops below the floor.
	tinyScale := Scaled(base, 1e-9)
	if tinyScale.Rows < 8 || tinyScale.NNZ < 64 {
		t.Fatal("scale floor violated")
	}
}

func TestDensityCap(t *testing.T) {
	// Requesting more entries than 15% of cells must terminate and yield
	// a valid matrix (the saturation bailout).
	spec := Spec{
		Name: "overdense", Rows: 30, Cols: 20, NNZ: 100000,
		TrueRank: 2, NoiseSD: 0.1, ZipfS: 1.0, Seed: 3,
	}
	ds := Generate(spec)
	if ds.R.NNZ() == 0 || ds.R.NNZ() > 30*20 {
		t.Fatalf("capped generation produced %d entries", ds.R.NNZ())
	}
}

func TestPresetShapesMatchPaper(t *testing.T) {
	c := ChEMBL(1)
	if c.Rows != 483500 || c.Cols != 5775 || c.NNZ != 1023952 {
		t.Fatalf("ChEMBL preset %+v does not match the paper's dataset", c)
	}
	m := ML20M(1)
	if m.Rows != 138493 || m.Cols != 27278 || m.NNZ != 20000263 {
		t.Fatalf("ml-20m preset %+v does not match the paper's dataset", m)
	}
}

func TestEntriesInBounds(t *testing.T) {
	f := func(seed uint64) bool {
		ds := Generate(Tiny(seed))
		for i := 0; i < ds.R.M; i++ {
			cols, _ := ds.R.Row(i)
			for _, c := range cols {
				if c < 0 || int(c) >= ds.R.N {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
