// Package datagen synthesizes rating matrices with the shape and skew of
// the paper's two benchmarks — the ChEMBL-20 IC50 subset (483 500
// compounds x 5 775 targets, ~1.02 M measurements) and MovieLens ml-20m
// (138 493 users x 27 278 movies, 20 M ratings) — which are not shipped
// with this offline reproduction.
//
// Ratings are planted: R = U*·V*ᵀ + noise with low-rank ground-truth
// factors, so recovery is measurable (RMSE should approach the noise
// floor). Item popularity follows a Zipf law, giving the heavy-tailed
// per-item rating counts that drive the load-imbalance phenomena of
// Figures 2–3 (a few items with 10⁴–10⁵ ratings, most with a handful).
package datagen

import (
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// Spec describes a synthetic dataset.
type Spec struct {
	Name     string
	Rows     int     // users / compounds
	Cols     int     // movies / targets
	NNZ      int     // total observed ratings
	TrueRank int     // rank of the planted factors
	NoiseSD  float64 // observation noise standard deviation
	ZipfS    float64 // popularity exponent for columns (and rows)
	MinVal   float64 // ratings clipped to [MinVal, MaxVal]; 0,0 = no clip
	MaxVal   float64
	Seed     uint64
}

// ChEMBL returns the spec matching the paper's ChEMBL-20 IC50 subset.
func ChEMBL(seed uint64) Spec {
	return Spec{
		Name: "chembl", Rows: 483500, Cols: 5775, NNZ: 1023952,
		TrueRank: 16, NoiseSD: 0.6, ZipfS: 1.05, Seed: seed,
	}
}

// ML20M returns the spec matching MovieLens ml-20m.
func ML20M(seed uint64) Spec {
	return Spec{
		Name: "ml-20m", Rows: 138493, Cols: 27278, NNZ: 20000263,
		TrueRank: 16, NoiseSD: 0.5, ZipfS: 1.1,
		MinVal: 0.5, MaxVal: 5, Seed: seed,
	}
}

// Scaled returns a copy of s with every dimension and the nnz scaled by
// f (any f > 0: below 1 shrinks toward CI-sized runs, above 1 grows the
// benchmark past its reference shape), keeping the shape and skew.
func Scaled(s Spec, f float64) Spec {
	s.Rows = maxInt(8, int(float64(s.Rows)*f))
	s.Cols = maxInt(8, int(float64(s.Cols)*f))
	s.NNZ = maxInt(64, int(float64(s.NNZ)*f))
	s.Name = s.Name + "-scaled"
	return s
}

// Small returns a quick laptop-scale spec for examples and tests.
func Small(seed uint64) Spec {
	return Spec{
		Name: "small", Rows: 600, Cols: 180, NNZ: 12000,
		TrueRank: 8, NoiseSD: 0.4, ZipfS: 1.0, Seed: seed,
	}
}

// Tiny returns a minimal spec for unit tests.
func Tiny(seed uint64) Spec {
	return Spec{
		Name: "tiny", Rows: 40, Cols: 25, NNZ: 300,
		TrueRank: 4, NoiseSD: 0.3, ZipfS: 0.9, Seed: seed,
	}
}

// Dataset is a generated rating matrix with its planted ground truth.
type Dataset struct {
	Spec  Spec
	R     *sparse.CSR // users x movies rating matrix
	UTrue [][]float64 // planted user factors (Rows x TrueRank), row-major views
	VTrue [][]float64 // planted movie factors
}

// Generate synthesizes the dataset described by s. Generation is fully
// deterministic in s.Seed.
func Generate(s Spec) *Dataset {
	r := rng.NewKeyed(s.Seed, 0xda7a6e4)
	// Scale so the planted score has SD ≈ 1.5/√K·√K… i.e. comfortably
	// above the observation noise (signal SD ≈ 0.8 at rank 8), so the
	// factorization is recoverable and RMSE curves have room to fall.
	scale := 1.5 / math.Sqrt(float64(s.TrueRank))
	ut := planted(r, s.Rows, s.TrueRank, scale)
	vt := planted(r, s.Cols, s.TrueRank, scale)

	// Zipf popularity over columns: weight_j ∝ (j+1)^{-s} after a random
	// relabelling so popular columns are spread across the index space
	// (the partitioner's reordering has to find them, as with real data).
	colCum := zipfCumulative(s.Cols, s.ZipfS)
	colLabel := randPerm(r, s.Cols)
	rowCum := zipfCumulative(s.Rows, s.ZipfS*0.8) // milder skew on users
	rowLabel := randPerm(r, s.Rows)

	// A Zipf-popular cell saturates quickly on dense matrices; cap the
	// target density and bail out of the rejection loop rather than spin
	// (heavily scaled-down specs can otherwise request more entries than
	// the matrix has cells).
	target := s.NNZ
	if cells := int64(s.Rows) * int64(s.Cols); int64(target) > cells*15/100 {
		target = int(cells * 15 / 100)
		if target < 1 {
			target = 1
		}
	}
	coo := sparse.NewCOO(s.Rows, s.Cols, target)
	seen := make(map[int64]struct{}, target*2)
	maxAttempts := 40 * int64(target)
	for attempts := int64(0); len(coo.Entries) < target && attempts < maxAttempts; attempts++ {
		i := rowLabel[sampleCum(r, rowCum)]
		j := colLabel[sampleCum(r, colCum)]
		key := int64(i)*int64(s.Cols) + int64(j)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		v := dot(ut[i], vt[j]) + s.NoiseSD*r.Norm()
		if s.MaxVal > s.MinVal {
			// Map the (approximately standard normal) planted score into
			// the rating range, then clip — mimics 0.5..5 star ratings.
			v = (s.MaxVal+s.MinVal)/2 + v*(s.MaxVal-s.MinVal)/4
			v = math.Min(s.MaxVal, math.Max(s.MinVal, v))
		}
		coo.Add(i, j, v)
	}
	return &Dataset{Spec: s, R: coo.ToCSR(), UTrue: ut, VTrue: vt}
}

func planted(r *rng.Stream, n, k int, scale float64) [][]float64 {
	buf := make([]float64, n*k)
	r.FillNorm(buf)
	for i := range buf {
		buf[i] *= scale
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = buf[i*k : (i+1)*k]
	}
	return rows
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// zipfCumulative returns the cumulative distribution over n indices with
// probability ∝ (rank+1)^{-s}.
func zipfCumulative(n int, s float64) []float64 {
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1
	return cum
}

// sampleCum draws an index from the cumulative distribution by binary
// search.
func sampleCum(r *rng.Stream, cum []float64) int {
	u := r.Float64()
	return sort.SearchFloat64s(cum, u)
}

func randPerm(r *rng.Stream, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
