// Package rank is the ranking core shared by the public
// Recommend/EvaluateRanking API and the serving layer (internal/serve):
// batch scoring of one user vector against every item factor with the
// allocation-free la kernels, and top-N selection with training-set
// exclusion.
//
// Keeping one implementation here guarantees the offline evaluator and
// the online server rank identically: same scores (bit for bit — the
// blocked Gemv keeps each item's inner-product summation order equal to
// the per-item Dot loop it replaced), same heap tie-breaking, same
// exclusion semantics.
package rank

import (
	"container/heap"

	"repro/internal/la"
)

// Item is one ranked item: its index and predicted score.
type Item struct {
	Index int
	Score float64
}

// ScoreInto writes u·vⱼ for every item row vⱼ of v into out (len must be
// v.Rows). It is the single-user case of ScoreBatchInto — one pass of
// the panel-blocked batch GEMM — so the unbatched request path and the
// serving batcher share one scoring core. Per item the summation order
// equals la.Dot(u, v.Row(j)), so scores are bit-identical to the naive
// per-item loop. It allocates nothing.
func ScoreInto(v *la.Matrix, u la.Vector, out []float64) {
	if len(u) != v.Cols || len(out) != v.Rows {
		panic("rank: ScoreInto dimension mismatch")
	}
	users := la.Matrix{Rows: 1, Cols: len(u), Data: u}
	scores := la.Matrix{Rows: 1, Cols: len(out), Data: out}
	ScoreBatchInto(v, &users, &scores)
}

// TopN accumulates the n highest-scoring items offered to it, keeping a
// min-heap of the current winners (the root is the weakest). Offer order
// matters only for ties; callers that need deterministic output offer
// items in ascending index order.
type TopN struct {
	n int
	h itemHeap
}

// NewTopN returns an accumulator for the n best items (n >= 0). n is a
// request-controlled value: the pre-allocation is capped and the heap
// grows on demand, so an absurd n costs nothing until items are actually
// offered (the heap can never outgrow the number of offers).
func NewTopN(n int) *TopN {
	t := &TopN{n: n}
	if n > 0 {
		c := n
		if c > 1024 {
			c = 1024
		}
		t.h = make(itemHeap, 0, c)
	}
	return t
}

// Offer considers one item. It is kept if fewer than n items have been
// kept so far or its score strictly beats the current weakest.
func (t *TopN) Offer(index int, score float64) {
	if t.n <= 0 {
		return
	}
	if len(t.h) < t.n {
		heap.Push(&t.h, Item{Index: index, Score: score})
	} else if score > t.h[0].Score {
		t.h[0] = Item{Index: index, Score: score}
		heap.Fix(&t.h, 0)
	}
}

// Take drains the accumulator, returning the kept items sorted by
// descending score. The accumulator is empty afterwards.
func (t *TopN) Take() []Item {
	if len(t.h) == 0 {
		return nil
	}
	out := make([]Item, len(t.h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.h).(Item)
	}
	return out
}

// TopNScoresExcluding ranks scores[0..len) and returns the top n items,
// skipping the indices in excl (which must be sorted ascending — the CSR
// row-view contract; nil excludes nothing). Fewer than n items are
// returned when the catalog minus exclusions is smaller than n; any n,
// including math.MaxInt, is safe.
func TopNScoresExcluding(scores []float64, excl []int32, n int) []Item {
	if n > len(scores) {
		n = len(scores)
	}
	t := NewTopN(n)
	e := 0
	for i, s := range scores {
		for e < len(excl) && int(excl[e]) < i {
			e++
		}
		if e < len(excl) && int(excl[e]) == i {
			continue
		}
		t.Offer(i, s)
	}
	return t.Take()
}

// itemHeap is a min-heap of items by score.
type itemHeap []Item

func (h itemHeap) Len() int           { return len(h) }
func (h itemHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h itemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)        { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
