package rank

import (
	"math"
	"sort"
	"testing"

	"repro/internal/la"
	"repro/internal/rng"
)

// bruteTopN is the reference: filter exclusions, stable-sort by
// descending score, take n.
func bruteTopN(scores []float64, excl []int32, n int) []Item {
	skip := map[int]bool{}
	for _, e := range excl {
		skip[int(e)] = true
	}
	var all []Item
	for i, s := range scores {
		if !skip[i] {
			all = append(all, Item{Index: i, Score: s})
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].Score > all[b].Score })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

func TestTopNScoresExcludingMatchesBruteForce(t *testing.T) {
	stream := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		m := 1 + stream.Intn(400)
		scores := make([]float64, m)
		for i := range scores {
			// Coarse grid so score ties occur regularly.
			scores[i] = float64(stream.Intn(7))
		}
		var excl []int32
		for i := 0; i < m; i++ {
			if stream.Float64() < 0.3 {
				excl = append(excl, int32(i))
			}
		}
		n := stream.Intn(m + 5)
		got := TopNScoresExcluding(scores, excl, n)
		want := bruteTopN(scores, excl, n)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				t.Fatalf("trial %d rank %d: score %v != %v", trial, i, got[i].Score, want[i].Score)
			}
			if excludedIn(excl, got[i].Index) {
				t.Fatalf("trial %d: excluded index %d returned", trial, got[i].Index)
			}
		}
		if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].Score > got[b].Score }) {
			t.Fatalf("trial %d: output not sorted descending", trial)
		}
	}
}

func excludedIn(excl []int32, idx int) bool {
	for _, e := range excl {
		if int(e) == idx {
			return true
		}
	}
	return false
}

func TestTopNHugeNDoesNotAllocateOrPanic(t *testing.T) {
	// n is request-controlled: math.MaxInt must neither panic
	// (makeslice: cap out of range) nor pre-allocate.
	scores := []float64{3, 1, 2}
	got := TopNScoresExcluding(scores, nil, math.MaxInt)
	if len(got) != 3 || got[0].Index != 0 {
		t.Fatalf("huge n: got %v", got)
	}
	got = TopNScoresExcluding(scores, []int32{1}, 1<<40)
	if len(got) != 2 {
		t.Fatalf("huge n with exclusion: got %v", got)
	}
	t2 := NewTopN(math.MaxInt)
	for i := 0; i < 5000; i++ {
		t2.Offer(i, float64(i))
	}
	if items := t2.Take(); len(items) != 5000 || items[0].Index != 4999 {
		t.Fatalf("direct NewTopN with huge n: %d items", len(items))
	}
}

func TestTopNEdgeCases(t *testing.T) {
	if got := TopNScoresExcluding(nil, nil, 5); got != nil {
		t.Fatalf("empty scores must give nil, got %v", got)
	}
	if got := TopNScoresExcluding([]float64{1, 2}, nil, 0); got != nil {
		t.Fatalf("n=0 must give nil, got %v", got)
	}
	if got := TopNScoresExcluding([]float64{1, 2}, []int32{0, 1}, 3); got != nil {
		t.Fatalf("everything excluded must give nil, got %v", got)
	}
	got := TopNScoresExcluding([]float64{3, 1, 2}, nil, 10)
	if len(got) != 3 || got[0].Index != 0 || got[1].Index != 2 || got[2].Index != 1 {
		t.Fatalf("n beyond catalog: got %v", got)
	}
}

func TestScoreIntoMatchesDot(t *testing.T) {
	stream := rng.New(5)
	for _, rows := range []int{1, 7, 255, 256, 257, 1000} {
		k := 1 + stream.Intn(48)
		v := la.NewMatrix(rows, k)
		stream.FillNorm(v.Data)
		u := la.NewVector(k)
		stream.FillNorm(u)
		out := make([]float64, rows)
		ScoreInto(v, u, out)
		for j := 0; j < rows; j++ {
			if want := la.Dot(u, v.Row(j)); out[j] != want {
				t.Fatalf("rows=%d item %d: %v != Dot %v", rows, j, out[j], want)
			}
		}
	}
}

func TestScoreIntoDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched out length")
		}
	}()
	ScoreInto(la.NewMatrix(3, 2), la.NewVector(2), make([]float64, 2))
}
