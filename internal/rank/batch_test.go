package rank

import (
	"testing"

	"repro/internal/la"
	"repro/internal/rng"
)

// TestScoreBatchIntoMatchesIndependentScoreInto is the batch-core
// acceptance property: scoring B users in one panel-blocked GEMM pass
// must be bit-identical to B independent single-user ScoreInto calls,
// for batch sizes and catalog sizes that straddle every panel boundary.
func TestScoreBatchIntoMatchesIndependentScoreInto(t *testing.T) {
	stream := rng.New(17)
	for _, rows := range []int{1, 63, 64, 65, 128, 500} {
		for _, batch := range []int{1, 2, 16, 64} {
			k := 1 + stream.Intn(48)
			v := la.NewMatrix(rows, k)
			stream.FillNorm(v.Data)
			users := la.NewMatrix(batch, k)
			stream.FillNorm(users.Data)
			out := la.NewMatrix(batch, rows)
			ScoreBatchInto(v, users, out)
			ref := make([]float64, rows)
			for b := 0; b < batch; b++ {
				ScoreInto(v, users.Row(b), ref)
				for j := 0; j < rows; j++ {
					if out.Row(b)[j] != ref[j] {
						t.Fatalf("rows=%d batch=%d: user %d item %d: batched %v != single %v",
							rows, batch, b, j, out.Row(b)[j], ref[j])
					}
				}
			}
		}
	}
}

func TestScoreBatchIntoAllocsNothing(t *testing.T) {
	v := la.NewMatrix(200, 16)
	users := la.NewMatrix(8, 16)
	out := la.NewMatrix(8, 200)
	stream := rng.New(3)
	stream.FillNorm(v.Data)
	stream.FillNorm(users.Data)
	if n := testing.AllocsPerRun(10, func() { ScoreBatchInto(v, users, out) }); n != 0 {
		t.Fatalf("ScoreBatchInto allocates %v times per run, want 0", n)
	}
}

func TestScoreBatchIntoDimensionMismatchPanics(t *testing.T) {
	cases := []func(){
		// users width != v width
		func() { ScoreBatchInto(la.NewMatrix(4, 3), la.NewMatrix(2, 2), la.NewMatrix(2, 4)) },
		// out rows != batch rows
		func() { ScoreBatchInto(la.NewMatrix(4, 3), la.NewMatrix(2, 3), la.NewMatrix(3, 4)) },
		// out cols != catalog rows
		func() { ScoreBatchInto(la.NewMatrix(4, 3), la.NewMatrix(2, 3), la.NewMatrix(2, 5)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected dimension-mismatch panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestTopNBatchExcludingMatchesPerRow pins the batched selection driver
// to the single-row primitive it wraps, across mixed per-row n and
// exclusion lists.
func TestTopNBatchExcludingMatchesPerRow(t *testing.T) {
	stream := rng.New(29)
	for trial := 0; trial < 20; trial++ {
		items := 1 + stream.Intn(300)
		batch := 1 + stream.Intn(10)
		scores := la.NewMatrix(batch, items)
		for i := range scores.Data {
			// Coarse grid so ties occur and heap tie-breaking is exercised.
			scores.Data[i] = float64(stream.Intn(9))
		}
		excl := make([][]int32, batch)
		n := make([]int, batch)
		for b := 0; b < batch; b++ {
			for i := 0; i < items; i++ {
				if stream.Float64() < 0.2 {
					excl[b] = append(excl[b], int32(i))
				}
			}
			n[b] = stream.Intn(items + 3)
		}
		got := TopNBatchExcluding(scores, excl, n)
		for b := 0; b < batch; b++ {
			want := TopNScoresExcluding(scores.Row(b), excl[b], n[b])
			if len(got[b]) != len(want) {
				t.Fatalf("trial %d row %d: %d items, want %d", trial, b, len(got[b]), len(want))
			}
			for i := range want {
				if got[b][i] != want[i] {
					t.Fatalf("trial %d row %d rank %d: %+v != %+v", trial, b, i, got[b][i], want[i])
				}
			}
		}
	}
}

func TestTopNBatchExcludingDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched excl length")
		}
	}()
	TopNBatchExcluding(la.NewMatrix(2, 3), make([][]int32, 1), make([]int, 2))
}
