package rank

import "repro/internal/la"

// scoreBatchPanel is the item-panel height of the batched scoring pass:
// V is walked once per batch in contiguous panels of this many rows, and
// each cache-resident panel is streamed against every user of the batch
// before the next panel is touched. It matches la.GatherPanelRows — a
// 64-row x K-column panel sits comfortably in L1/L2 next to the users'
// factor rows — so the whole item-factor matrix is read from memory once
// per batch instead of once per request.
const scoreBatchPanel = la.GatherPanelRows

// ScoreBatchInto computes the multi-user score matrix out = U·Vᵀ
// (out.Row(b)[j] = users.Row(b) · v.Row(j)) as a panel-blocked GEMM:
// the item factors are streamed in scoreBatchPanel-row panels, each
// panel scored against every user of the batch while it is cache
// resident. users is the B x K batch of user factor rows; out must be
// B x v.Rows.
//
// Per element the inner product runs through the same unrolled la.Dot
// as ScoreInto and la.Gemv, so every score is bit-identical to scoring
// that user alone — batching changes memory traffic, never results. It
// allocates nothing.
func ScoreBatchInto(v, users, out *la.Matrix) {
	if users.Cols != v.Cols || out.Rows != users.Rows || out.Cols != v.Rows {
		panic("rank: ScoreBatchInto dimension mismatch")
	}
	panel := la.Matrix{Cols: v.Cols}
	for lo := 0; lo < v.Rows; lo += scoreBatchPanel {
		hi := lo + scoreBatchPanel
		if hi > v.Rows {
			hi = v.Rows
		}
		panel.Rows = hi - lo
		panel.Data = v.Data[lo*v.Cols : hi*v.Cols]
		for b := 0; b < users.Rows; b++ {
			la.Gemv(1, &panel, users.Row(b), 0, out.Row(b)[lo:hi])
		}
	}
}

// TopNBatchExcluding is the batched TopNScoresExcluding driver: row b of
// scores is ranked under exclusion list excl[b] (sorted ascending; nil
// excludes nothing) returning its top n[b] items. It is the selection
// stage the serving batcher runs after one ScoreBatchInto pass; each
// row's result is exactly TopNScoresExcluding(scores.Row(b), excl[b],
// n[b]) — same heap, same tie-breaking.
func TopNBatchExcluding(scores *la.Matrix, excl [][]int32, n []int) [][]Item {
	if len(excl) != scores.Rows || len(n) != scores.Rows {
		panic("rank: TopNBatchExcluding dimension mismatch")
	}
	out := make([][]Item, scores.Rows)
	for b := range out {
		out[b] = TopNScoresExcluding(scores.Row(b), excl[b], n[b])
	}
	return out
}
