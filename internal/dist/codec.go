package dist

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
)

// encodeFloats serializes a float64 slice little-endian.
func encodeFloats(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

// decodeFloatsInto fills dst from an encodeFloats blob.
func decodeFloatsInto(dst []float64, b []byte) {
	if len(b) != 8*len(dst) {
		panic("dist: float blob length mismatch")
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// interval wire format: 5 float64 per entry (row, col, actual, mean, std).
const intervalRecLen = 5

func encodeIntervals(ivs []core.Interval) []byte {
	v := make([]float64, 0, intervalRecLen*len(ivs))
	for _, iv := range ivs {
		v = append(v, float64(iv.Row), float64(iv.Col), iv.Actual, iv.Mean, iv.Std)
	}
	return encodeFloats(v)
}

func decodeIntervals(b []byte) []core.Interval {
	n := len(b) / (8 * intervalRecLen)
	out := make([]core.Interval, n)
	for t := 0; t < n; t++ {
		v := make([]float64, intervalRecLen)
		decodeFloatsInto(v, b[t*8*intervalRecLen:(t+1)*8*intervalRecLen])
		out[t] = core.Interval{
			Row: int32(v[0]), Col: int32(v[1]),
			Actual: v[2], Mean: v[3], Std: v[4],
		}
	}
	return out
}
