package dist

import (
	"sync"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/order"
)

// RunInProc executes a distributed run as a virtual cluster inside this
// process: opt.Ranks nodes over the channel-backed fabric, each on its own
// goroutine. It returns rank 0's result (every rank computes an identical
// one) and the per-rank statistics in rank order.
func RunInProc(cfg core.Config, prob *core.Problem, opt Options) (*core.Result, []Stats, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	plan, test := BuildPlan(prob, opt)
	if opt.Schedule == nil {
		// One schedule build shared by all in-process ranks.
		opt.Schedule = order.Build(plan.R, order.Options{HeavyThreshold: cfg.KernelThreshold})
	}
	fab := comm.NewFabric(opt.Ranks)
	defer fab.Close()

	results := make([]*core.Result, opt.Ranks)
	stats := make([]Stats, opt.Ranks)
	errs := make([]error, opt.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < opt.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			node, err := NewNode(fab.Comms()[r], cfg, plan, test, opt)
			if err != nil {
				errs[r] = err
				return
			}
			res, st, err := node.Run()
			results[r], errs[r] = res, err
			if st != nil {
				stats[r] = *st
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results[0], stats, nil
}
