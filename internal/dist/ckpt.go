package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/sparse"
)

// ckpt.go is the distributed checkpoint plane: every rank periodically
// writes its *owned* slice of the chain state as a fragment (the
// sequential core.Checkpoint format over the owned rows/columns and the
// locally owned test accumulators), then rank 0 seals the round with a
// JSON manifest naming the fragments. Both writes are temp-file +
// atomic-rename (core.WriteCheckpointFile) and the manifest is written
// only after a barrier confirms every fragment is durable — so the
// directory never holds a manifest whose fragments are torn or missing,
// and a recovering cluster can always trust the latest manifest it
// finds. Recovery reassembles the fragments into one global
// core.Checkpoint; any rank count can resume from it, because the
// fragments are sliced by the *manifest's* ownership bounds, not the
// resuming run's.

// Manifest seals one coordinated checkpoint round.
type Manifest struct {
	// Iter is the first iteration a resumed run executes (the round was
	// written after iteration Iter-1 completed).
	Iter  int
	K     int
	Ranks int
	Seed  uint64
	M, N  int
	// RowBounds/ColBounds are the ownership bounds the fragments were
	// sliced by (len Ranks+1 each).
	RowBounds, ColBounds []int
	// BaseKernelCounts carries the kernel tallies of all chain segments
	// *before* the run that wrote this round, so counts survive chained
	// recoveries: the fragments hold only their own run's live tallies.
	BaseKernelCounts [3]int64
	// Fragments names the per-rank fragment files, indexed by rank,
	// relative to the manifest's directory.
	Fragments []string
}

func manifestName(iter int) string { return fmt.Sprintf("manifest-iter%06d.json", iter) }

func fragmentName(iter, rank, ranks int) string {
	return fmt.Sprintf("ckpt-iter%06d-rank%d-of%d.frag", iter, rank, ranks)
}

// check validates the manifest's internal structure — the bounds and
// fragment lists a resume is about to index by.
func (m *Manifest) check() error {
	if len(m.RowBounds) != m.Ranks+1 || len(m.ColBounds) != m.Ranks+1 ||
		len(m.Fragments) != m.Ranks {
		return fmt.Errorf("dist: manifest for iter %d is inconsistent (%d ranks, %d/%d bounds, %d fragments)",
			m.Iter, m.Ranks, len(m.RowBounds), len(m.ColBounds), len(m.Fragments))
	}
	return nil
}

// ReadManifest loads the sealed manifest of one specific iteration —
// for pinning a resume to a known round instead of the latest. Unlike
// LatestManifest's scan, a pinned manifest fails loudly: the caller
// named this exact round, so a torn or inconsistent file is an error,
// never something to skip past.
func ReadManifest(dir string, iter int) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName(iter)))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dist: manifest for iter %d: %w", iter, err)
	}
	if err := m.check(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LatestManifest scans dir for sealed checkpoint manifests and returns
// the one with the highest iteration, or (nil, nil) when none exist.
// Unreadable, torn, or structurally inconsistent manifest files are
// skipped with a logged warning instead of failing the whole resume:
// the manifest write is atomic-rename, so a bad file is debris from a
// foreign writer or a damaged filesystem — and recovery should proceed
// from the newest manifest that is actually intact.
func LatestManifest(dir string) (*Manifest, error) {
	names, err := filepath.Glob(filepath.Join(dir, "manifest-iter*.json"))
	if err != nil {
		return nil, err
	}
	var best *Manifest
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			log.Printf("dist: skipping unreadable checkpoint manifest %s: %v", name, err)
			continue
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			log.Printf("dist: skipping torn checkpoint manifest %s: %v", name, err)
			continue
		}
		if err := m.check(); err != nil {
			log.Printf("dist: skipping checkpoint manifest %s: %v", name, err)
			continue
		}
		if best == nil || m.Iter > best.Iter {
			mm := m
			best = &mm
		}
	}
	return best, nil
}

// LoadDistCheckpoint reassembles a manifest's fragments into one global
// core.Checkpoint. test must be the global held-out set of the run that
// wrote the round (fragment accumulators are filtered by the manifest's
// row ownership, so the walk must see the same entries in the same
// order).
func LoadDistCheckpoint(dir string, man *Manifest, test []sparse.Entry) (*core.Checkpoint, error) {
	if err := man.check(); err != nil {
		return nil, err
	}
	out := &core.Checkpoint{
		K:           man.K,
		NextIter:    man.Iter,
		Seed:        man.Seed,
		U:           la.NewMatrix(man.M, man.K),
		V:           la.NewMatrix(man.N, man.K),
		PredSum:     make([]float64, len(test)),
		PredSumSq:   make([]float64, len(test)),
		ItemUpdates: int64(man.Iter) * int64(man.M+man.N),
	}
	out.KernelCounts = man.BaseKernelCounts
	rowOwner := ownersArray(man.RowBounds, man.M)
	// Per-rank cursors into the global accumulator positions owned by
	// that rank, in global test order (the order every rank's local
	// predictor stores them in).
	ownedPos := make([][]int, man.Ranks)
	for t, e := range test {
		r := rowOwner[e.Row]
		ownedPos[r] = append(ownedPos[r], t)
	}
	for r := 0; r < man.Ranks; r++ {
		frag, err := readFragment(filepath.Join(dir, man.Fragments[r]))
		if err != nil {
			return nil, err
		}
		if frag.K != man.K || frag.NextIter != man.Iter || frag.Seed != man.Seed {
			return nil, fmt.Errorf("dist: fragment %s does not match manifest (K=%d iter=%d seed=%d, want K=%d iter=%d seed=%d)",
				man.Fragments[r], frag.K, frag.NextIter, frag.Seed, man.K, man.Iter, man.Seed)
		}
		rowLo, rowHi := man.RowBounds[r], man.RowBounds[r+1]
		colLo, colHi := man.ColBounds[r], man.ColBounds[r+1]
		if frag.U.Rows != rowHi-rowLo || frag.V.Rows != colHi-colLo {
			return nil, fmt.Errorf("dist: fragment %s holds %dx%d owned rows/cols, manifest bounds say %dx%d",
				man.Fragments[r], frag.U.Rows, frag.V.Rows, rowHi-rowLo, colHi-colLo)
		}
		copy(out.U.Data[rowLo*man.K:rowHi*man.K], frag.U.Data)
		copy(out.V.Data[colLo*man.K:colHi*man.K], frag.V.Data)
		if len(frag.PredSum) != len(ownedPos[r]) {
			return nil, fmt.Errorf("dist: fragment %s holds %d test accumulators, ownership implies %d",
				man.Fragments[r], len(frag.PredSum), len(ownedPos[r]))
		}
		for i, t := range ownedPos[r] {
			out.PredSum[t] = frag.PredSum[i]
			out.PredSumSq[t] = frag.PredSumSq[i]
		}
		for i := range out.KernelCounts {
			out.KernelCounts[i] += frag.KernelCounts[i]
		}
		if r == 0 {
			// Traces and the sample count are rank-identical by
			// construction (deterministic allreduce), so any fragment's
			// copy is the global one.
			out.SampleRMSE = frag.SampleRMSE
			out.AvgRMSE = frag.AvgRMSE
			out.NSamples = frag.NSamples
		}
	}
	return out, nil
}

func readFragment(path string) (*core.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := core.ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("dist: fragment %s: %w", path, err)
	}
	return c, nil
}

// writeCheckpoint writes this rank's fragment of a coordinated round
// (after iteration nextIter-1), barriers so every fragment is durable,
// then has rank 0 seal the round with the manifest. Collective.
func (nd *Node) writeCheckpoint(nextIter int) error {
	rowLo, rowHi := nd.plan.RowBounds[nd.rank], nd.plan.RowBounds[nd.rank+1]
	colLo, colHi := nd.plan.ColBounds[nd.rank], nd.plan.ColBounds[nd.rank+1]
	sum, sumSq, nSamples := nd.pred.Snapshot()
	frag := &core.Checkpoint{
		K:        nd.k,
		NextIter: nextIter,
		Seed:     nd.cfg.Seed,
		U:        &la.Matrix{Rows: rowHi - rowLo, Cols: nd.k, Data: nd.u.Data[rowLo*nd.k : rowHi*nd.k]},
		V:        &la.Matrix{Rows: colHi - colLo, Cols: nd.k, Data: nd.v.Data[colLo*nd.k : colHi*nd.k]},
		PredSum:  sum, PredSumSq: sumSq, NSamples: nSamples,
		SampleRMSE: nd.res.SampleRMSE,
		AvgRMSE:    nd.res.AvgRMSE,
		KernelCounts: [3]int64{
			nd.kernelCounts[0].Load(), nd.kernelCounts[1].Load(), nd.kernelCounts[2].Load(),
		},
		ItemUpdates: int64(nextIter) * int64(nd.r.M+nd.r.N),
	}
	name := fragmentName(nextIter, nd.rank, nd.ranks)
	if err := core.WriteCheckpointFile(filepath.Join(nd.opt.CheckpointDir, name), frag.Write); err != nil {
		return err
	}
	// Every fragment must be durable before the manifest can name it: a
	// crash past this barrier either leaves the previous manifest as the
	// latest (all its fragments intact) or the new one (ditto).
	if err := nd.c.BarrierE(); err != nil {
		return err
	}
	if nd.rank != 0 {
		return nil
	}
	man := Manifest{
		Iter: nextIter, K: nd.k, Ranks: nd.ranks, Seed: nd.cfg.Seed,
		M: nd.r.M, N: nd.r.N,
		RowBounds:        append([]int(nil), nd.plan.RowBounds...),
		ColBounds:        append([]int(nil), nd.plan.ColBounds...),
		BaseKernelCounts: nd.ckBase,
		Fragments:        make([]string, nd.ranks),
	}
	for r := 0; r < nd.ranks; r++ {
		man.Fragments[r] = fragmentName(nextIter, r, nd.ranks)
	}
	return core.WriteCheckpointFile(filepath.Join(nd.opt.CheckpointDir, manifestName(nextIter)), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&man)
	})
}

// Resume loads a reassembled global checkpoint into a freshly built
// node, positioning the chain at c.NextIter. The node may have any rank
// count — c carries full replicas — but must share the checkpoint's
// K, seed, and problem shape, and its plan must be unreordered (a
// reordered plan lives in a permuted index space the checkpoint's
// factors know nothing about).
func (nd *Node) Resume(c *core.Checkpoint) error {
	if nd.plan.Reordered {
		return fmt.Errorf("dist: cannot resume onto a reordered plan")
	}
	if c.K != nd.k {
		return fmt.Errorf("dist: checkpoint K=%d, node K=%d", c.K, nd.k)
	}
	if c.Seed != nd.cfg.Seed {
		return fmt.Errorf("dist: checkpoint seed=%d, node seed=%d", c.Seed, nd.cfg.Seed)
	}
	if c.U.Rows != nd.r.M || c.V.Rows != nd.r.N {
		return fmt.Errorf("dist: checkpoint shape %dx%d does not match problem %dx%d",
			c.U.Rows, c.V.Rows, nd.r.M, nd.r.N)
	}
	if len(c.PredSum) != len(nd.test) {
		return fmt.Errorf("dist: checkpoint has %d test accumulators, run has %d test entries",
			len(c.PredSum), len(nd.test))
	}
	copy(nd.u.Data, c.U.Data)
	copy(nd.v.Data, c.V.Data)
	// The local predictor holds this rank's owned test entries in global
	// test order — filter the global accumulators the same way.
	var sum, sumSq []float64
	for t, e := range nd.test {
		if nd.rowOwner[e.Row] == int32(nd.rank) {
			sum = append(sum, c.PredSum[t])
			sumSq = append(sumSq, c.PredSumSq[t])
		}
	}
	if err := nd.pred.Restore(sum, sumSq, c.NSamples); err != nil {
		return err
	}
	nd.res.SampleRMSE = append(nd.res.SampleRMSE[:0], c.SampleRMSE...)
	nd.res.AvgRMSE = append(nd.res.AvgRMSE[:0], c.AvgRMSE...)
	nd.ckBase = c.KernelCounts
	nd.firstIter = c.NextIter
	return nil
}
