package dist

import (
	"math"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/la"
)

// elastic_test.go pins the fault-tolerance contract: a cluster that
// loses ranks mid-run detects the failure within the suspicion timeout,
// reassigns the dead ranks' shards/rows to the survivors, resumes from
// the last sealed checkpoint — and the recovered chain is bit-identical
// to a clean restart of a survivor-sized cluster from that same
// checkpoint (and to the sequential sampler resumed with the survivor
// partition's moment groups).

// readManifest loads one specific sealed manifest (LatestManifest would
// find the post-recovery rounds' newer ones).
func readManifest(t *testing.T, dir string, iter int) *Manifest {
	t.Helper()
	m, err := ReadManifest(dir, iter)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// killAtHook returns a FaultHook that kills the given ranks right after
// they complete iteration killIter of round 0.
func killAtHook(killIter int, victims []int) FaultHook {
	return func(round int, fb *comm.FaultFabric, opt *Options) {
		if round != 0 {
			opt.OnIteration = nil
			return
		}
		opt.OnIteration = func(rank, iter int) {
			if iter != killIter {
				return
			}
			for _, v := range victims {
				if rank == v {
					fb.Kill(rank)
				}
			}
		}
	}
}

func TestElasticKillRecoverMatchesCleanRestart(t *testing.T) {
	cases := []struct {
		name     string
		ranks    int
		victims  []int
		killIter int
		threads  int
	}{
		{"2ranks-kill1", 2, []int{1}, 5, 1},
		{"4ranks-kill2", 4, []int{1, 3}, 5, 1},
		{"2ranks-kill1-threaded", 2, []int{1}, 5, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prob := problem(t, 9)
			cfg := testConfig()
			cfg.Iters = 8
			dir := t.TempDir()
			opt := Options{
				Ranks: tc.ranks, ThreadsPerRank: tc.threads,
				CheckpointDir: dir, CheckpointEvery: 2,
				SuspicionTimeout: 400 * time.Millisecond,
			}
			got, _, finalRanks, err := RunInProcElastic(cfg, prob, opt, killAtHook(tc.killIter, tc.victims))
			if err != nil {
				t.Fatal(err)
			}
			survivors := tc.ranks - len(tc.victims)
			if finalRanks != survivors {
				t.Fatalf("finished with %d ranks, want %d", finalRanks, survivors)
			}

			// Kill fired after iteration killIter, whose checkpoint
			// (NextIter = killIter+1) was already sealed — recovery must
			// have resumed from exactly that manifest.
			man := readManifest(t, dir, tc.killIter+1)
			if man.Ranks != tc.ranks {
				t.Fatalf("manifest written by %d ranks, want %d", man.Ranks, tc.ranks)
			}
			base, err := LoadDistCheckpoint(dir, man, prob.Test)
			if err != nil {
				t.Fatal(err)
			}
			refOpt := Options{Ranks: survivors, ThreadsPerRank: tc.threads}
			want, _, err := ResumeInProc(cfg, prob, base, refOpt)
			if err != nil {
				t.Fatal(err)
			}

			if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
				t.Fatal("recovered chain differs from a clean restart from the same checkpoint")
			}
			if got.KernelCounts != want.KernelCounts {
				t.Fatalf("kernel counts %v != %v", got.KernelCounts, want.KernelCounts)
			}
			if len(got.SampleRMSE) != cfg.Iters || len(want.SampleRMSE) != cfg.Iters {
				t.Fatalf("trace lengths %d/%d, want %d", len(got.SampleRMSE), len(want.SampleRMSE), cfg.Iters)
			}
			for i := range want.SampleRMSE {
				if got.SampleRMSE[i] != want.SampleRMSE[i] || got.AvgRMSE[i] != want.AvgRMSE[i] {
					t.Fatalf("iter %d: RMSE (%v, %v) != clean restart (%v, %v)",
						i, got.SampleRMSE[i], got.AvgRMSE[i], want.SampleRMSE[i], want.AvgRMSE[i])
				}
			}
		})
	}
}

// TestElasticRecoveryMatchesSequentialResume cross-checks recovery
// against a genuinely independent implementation: the sequential
// sampler, resumed from the reassembled checkpoint with the survivor
// partition's moment groups, must reproduce the recovered distributed
// chain bit-for-bit.
func TestElasticRecoveryMatchesSequentialResume(t *testing.T) {
	prob := problem(t, 11)
	cfg := testConfig()
	cfg.Iters = 8
	dir := t.TempDir()
	opt := Options{
		Ranks: 4, CheckpointDir: dir, CheckpointEvery: 2,
		SuspicionTimeout: 400 * time.Millisecond,
	}
	got, _, finalRanks, err := RunInProcElastic(cfg, prob, opt, killAtHook(3, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	if finalRanks != 3 {
		t.Fatalf("finished with %d ranks, want 3", finalRanks)
	}

	man := readManifest(t, dir, 4)
	base, err := LoadDistCheckpoint(dir, man, prob.Test)
	if err != nil {
		t.Fatal(err)
	}
	survivorPlan, _ := BuildPlan(prob, Options{Ranks: 3})
	seqCfg := cfg
	seqCfg.MomentGroupsU, seqCfg.MomentGroupsV = MomentGroupsOf(survivorPlan)
	s, err := core.ResumeSampler(seqCfg, prob, base)
	if err != nil {
		t.Fatal(err)
	}
	want := s.RunFrom(base.NextIter)

	if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
		t.Fatal("recovered chain differs from the sequential resume with survivor moment groups")
	}
	if got.KernelCounts != want.KernelCounts {
		t.Fatalf("kernel counts %v != %v", got.KernelCounts, want.KernelCounts)
	}
	// The RMSE evaluation's summation tree differs between the engines
	// (per-rank partials vs the global chunk walk), so the trace matches
	// to reduction tolerance, not bitwise — same contract as the plain
	// distributed-vs-sequential test. The chain itself (U, V) is bitwise.
	for i := range want.SampleRMSE {
		if math.Abs(got.SampleRMSE[i]-want.SampleRMSE[i]) > 1e-12 {
			t.Fatalf("iter %d: RMSE %v != sequential %v", i, got.SampleRMSE[i], want.SampleRMSE[i])
		}
	}
}

// TestElasticFreshRunMatchesRunInProc pins that checkpointing and the
// failure detector are chain-inert: an elastic run with no faults is
// bit-identical to the plain engine.
func TestElasticFreshRunMatchesRunInProc(t *testing.T) {
	prob := problem(t, 13)
	cfg := testConfig()
	want, _, err := RunInProc(cfg, prob, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Ranks: 2, CheckpointDir: t.TempDir(), CheckpointEvery: 2,
		SuspicionTimeout: time.Second,
	}
	got, _, finalRanks, err := RunInProcElastic(cfg, prob, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if finalRanks != 2 {
		t.Fatalf("finished with %d ranks, want 2", finalRanks)
	}
	if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
		t.Fatal("elastic fresh run differs from RunInProc")
	}
	if got.KernelCounts != want.KernelCounts {
		t.Fatalf("kernel counts %v != %v", got.KernelCounts, want.KernelCounts)
	}
}

// TestElasticShardNativeKillRecover runs the shard-native data plane
// through a kill: after recovery the dead rank's .bcsr shards are
// reassigned (AssignPanels over the survivor count) and the resumed
// chain must equal a clean survivor-sized shard-native restart from the
// same manifest.
func TestElasticShardNativeKillRecover(t *testing.T) {
	path, _ := writeShardedFile(t, 31, 400)
	cfg := testConfig()
	cfg.Iters = 8
	dir := t.TempDir()
	opt := Options{
		Ranks: 3, CheckpointDir: dir, CheckpointEvery: 2,
		SuspicionTimeout: 400 * time.Millisecond,
	}
	got, _, finalRanks, err := RunInProcElasticShards(cfg, path, 0.2, opt, killAtHook(3, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	if finalRanks != 2 {
		t.Fatalf("finished with %d ranks, want 2", finalRanks)
	}

	man := readManifest(t, dir, 4)
	if man.Ranks != 3 {
		t.Fatalf("manifest written by %d ranks, want 3", man.Ranks)
	}
	want, _, err := ResumeInProcShards(cfg, path, 0.2, man, dir, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
		t.Fatal("recovered shard-native chain differs from a clean restart")
	}
	for i := range want.SampleRMSE {
		if got.SampleRMSE[i] != want.SampleRMSE[i] || got.AvgRMSE[i] != want.AvgRMSE[i] {
			t.Fatalf("iter %d: RMSE (%v, %v) != clean restart (%v, %v)",
				i, got.SampleRMSE[i], got.AvgRMSE[i], want.SampleRMSE[i], want.AvgRMSE[i])
		}
	}
}

// TestResumeRejectsMismatches pins the resume-time validation.
func TestResumeRejectsMismatches(t *testing.T) {
	prob := problem(t, 7)
	cfg := testConfig()
	cfg.Iters = 4
	dir := t.TempDir()
	opt := Options{Ranks: 2, CheckpointDir: dir, CheckpointEvery: 2}
	if _, _, err := RunInProc(cfg, prob, opt); err != nil {
		t.Fatal(err)
	}
	man, err := LatestManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Iter != 4 {
		t.Fatalf("latest manifest %+v, want iter 4", man)
	}
	base, err := LoadDistCheckpoint(dir, man, prob.Test)
	if err != nil {
		t.Fatal(err)
	}
	badCfg := cfg
	badCfg.Seed = cfg.Seed + 1
	if _, _, err := ResumeInProc(badCfg, prob, base, Options{Ranks: 2}); err == nil {
		t.Fatal("resume with a different seed must fail")
	}
	badCfg = cfg
	badCfg.K = cfg.K + 1
	if _, _, err := ResumeInProc(badCfg, prob, base, Options{Ranks: 2}); err == nil {
		t.Fatal("resume with a different K must fail")
	}
}
