package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// elastic.go is the membership-driven recovery driver of the
// fault-tolerant engine: a run is a sequence of rounds, each over one
// sealed membership view. Rounds end three ways —
//
//   - cleanly: the sampler finished; return the result.
//   - by failure: ranks died (detected by the heartbeat detector,
//     unwinding every survivor with a RankFailedError). The view shrinks
//     by the dead members (epoch+1), their incarnations are recorded in
//     the suspicion table, and the next round resumes from the latest
//     sealed manifest. Pending join requests survive the shrink, so a
//     coordinator death during a proposed-but-unsealed view resolves by
//     the takeover coordinator re-proposing.
//   - by drain: pending joins made rank 0 raise the drain flag in the
//     evaluation allreduce; every rank checkpointed at the boundary and
//     returned a *ViewChange carrying the proposed view, which the
//     driver seals. The next round runs the grown cluster from the
//     just-sealed manifest.
//
// The resumed chain is — bit for bit — the chain a fresh cluster of the
// new size would sample when started from the same manifest:
// partitioning, routing, and the moment-reduction order are pure
// functions of (problem, rank count), and the checkpoint's fragments
// are re-sliced by the *new* bounds on load. Growing, rejoining, and
// shrinking all ride the identical resume path.

// DefaultSuspicionTimeout is the failure-detector timeout the elastic
// drivers fall back to when Options.SuspicionTimeout is unset.
const DefaultSuspicionTimeout = 2 * time.Second

// FaultHook lets a caller (typically a test) inject faults into one
// recovery round: it runs before the round's nodes start, with the
// round's fabric — install Options.OnIteration kills through opt, sever
// links, etc. Round 0 is the initial run.
type FaultHook func(round int, fb *comm.FaultFabric, opt *Options)

// MembershipHook is FaultHook for the membership driver: it also sees
// the round's sealed view and the coordinator state machine, so tests
// can file join requests (mem.RequestJoin from an OnIteration seam) and
// assert epochs, on top of injecting faults.
type MembershipHook func(round int, view comm.View, fb *comm.FaultFabric, opt *Options, mem *comm.Membership)

// rankBody runs one rank of one round.
type rankBody func(r int, c *comm.Comm) (*core.Result, *Stats, error)

// RunInProcElastic executes a distributed run as a virtual in-process
// cluster that survives injected rank failures: every round runs on a
// fresh FaultFabric; when ranks are killed, the next round resumes from
// the latest checkpoint manifest with the surviving rank count.
// Requires checkpointing to be configured. Returns the final result,
// the last round's per-rank stats, and the rank count that finished.
func RunInProcElastic(cfg core.Config, prob *core.Problem, opt Options, hook FaultHook) (*core.Result, []Stats, int, error) {
	res, stats, view, err := RunInProcMembership(cfg, prob, opt, liftFaultHook(hook))
	return res, stats, len(view.Members), err
}

// RunInProcMembership is the full elastic driver: RunInProcElastic plus
// membership — the hook can file join requests, and the cluster then
// drains, seals the grown view, and resumes with more ranks. Returns
// the final sealed view alongside the result.
func RunInProcMembership(cfg core.Config, prob *core.Problem, opt Options, hook MembershipHook) (*core.Result, []Stats, comm.View, error) {
	return runViewRounds(cfg, opt, hook, func(ropt Options, man *Manifest) (rankBody, error) {
		plan, test := BuildPlan(prob, ropt)
		var base *core.Checkpoint
		if man != nil {
			var err error
			if base, err = LoadDistCheckpoint(ropt.CheckpointDir, man, test); err != nil {
				return nil, err
			}
		}
		return func(r int, c *comm.Comm) (*core.Result, *Stats, error) {
			node, err := NewNode(c, cfg, plan, test, ropt)
			if err != nil {
				return nil, nil, err
			}
			if base != nil {
				if err := node.Resume(base); err != nil {
					return nil, nil, err
				}
			}
			return node.Run()
		}, nil
	})
}

// RunInProcElasticShards is RunInProcElastic over the shard-native data
// plane: every round each rank re-runs the collective shard load —
// partition.AssignPanels over the *current* rank count — so shards are
// remapped whenever the view changes (a dead rank's shards move to
// survivors; an admitted rank takes its share). Each rank reassembles
// the checkpoint from the fragment files itself (shared storage in a
// real cluster).
func RunInProcElasticShards(cfg core.Config, path string, testFrac float64, opt Options, hook FaultHook) (*core.Result, []Stats, int, error) {
	res, stats, view, err := RunInProcMembershipShards(cfg, path, testFrac, opt, liftFaultHook(hook))
	return res, stats, len(view.Members), err
}

// RunInProcMembershipShards is RunInProcMembership over the shard-native
// data plane.
func RunInProcMembershipShards(cfg core.Config, path string, testFrac float64, opt Options, hook MembershipHook) (*core.Result, []Stats, comm.View, error) {
	return runViewRounds(cfg, opt, hook, func(ropt Options, man *Manifest) (rankBody, error) {
		return func(r int, c *comm.Comm) (*core.Result, *Stats, error) {
			sp, err := LoadShardsLocal(c, path, testFrac, cfg.Seed, ropt)
			if err != nil {
				return nil, nil, err
			}
			node, err := NewNodeLocal(c, cfg, sp.Plan, sp.RT, sp.Test, ropt)
			if err != nil {
				return nil, nil, err
			}
			if man != nil {
				base, err := LoadDistCheckpoint(ropt.CheckpointDir, man, sp.Test)
				if err != nil {
					return nil, nil, err
				}
				if err := node.Resume(base); err != nil {
					return nil, nil, err
				}
			}
			return node.Run()
		}, nil
	})
}

// liftFaultHook adapts the membership-unaware hook signature.
func liftFaultHook(hook FaultHook) MembershipHook {
	if hook == nil {
		return nil
	}
	return func(round int, _ comm.View, fb *comm.FaultFabric, opt *Options, _ *comm.Membership) {
		hook(round, fb, opt)
	}
}

// runViewRounds is the round loop shared by the full-data and
// shard-native drivers. prepare builds one round's per-rank body from
// the round's options and the manifest to resume from (nil on a fresh
// start).
func runViewRounds(cfg core.Config, opt Options, hook MembershipHook,
	prepare func(ropt Options, man *Manifest) (rankBody, error)) (*core.Result, []Stats, comm.View, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, comm.View{}, err
	}
	if opt.CheckpointDir == "" || opt.CheckpointEvery <= 0 {
		return nil, nil, comm.View{}, fmt.Errorf("dist: elastic runs need CheckpointDir and CheckpointEvery (recovery resumes from the latest manifest)")
	}
	if opt.OneSided {
		return nil, nil, comm.View{}, fmt.Errorf("dist: elastic runs are incompatible with OneSided")
	}
	if opt.SuspicionTimeout <= 0 {
		opt.SuspicionTimeout = DefaultSuspicionTimeout
	}

	table := comm.NewSuspicionTable()
	mem := comm.NewMembership(comm.InProcView(opt.Ranks), 0, table)
	for round := 0; ; round++ {
		view := mem.View()
		ranks := len(view.Members)
		ropt := opt
		ropt.Ranks = ranks
		ropt.Schedule = nil // rebuilt per rank from the round's plan
		ropt.Epoch = view.Epoch
		ropt.Members = view.Members
		ropt.Suspicions = table
		ropt.Membership = mem

		man, err := LatestManifest(ropt.CheckpointDir)
		if err != nil {
			return nil, nil, view, err
		}

		fb := comm.NewFaultFabric(ranks, cfg.Seed)
		if hook != nil {
			hook(round, view, fb, &ropt, mem)
		}
		body, err := prepare(ropt, man)
		if err != nil {
			fb.Close()
			return nil, nil, view, err
		}
		results, stats, errs := runRanks(ranks, func(r int) (*core.Result, *Stats, error) {
			return body(r, fb.Comms()[r])
		})
		fb.Close()

		firstErr := firstError(errs)
		if firstErr == nil {
			return results[0], stats, view, nil
		}
		if killed := fb.Killed(); len(killed) > 0 {
			// Failure shrink: depose the dead incarnations (recording them
			// in the suspicion table — a rejoin at the same address must be
			// issued a higher one) and rerun over the survivors. Any
			// ViewChange a rank returned this round was proposed but never
			// sealed; dropping it is safe because the pending joins behind
			// it survive in mem and the next drain re-proposes them.
			dead := make([]string, 0, len(killed))
			for _, r := range killed {
				table.Convict(view.Members[r].Addr, view.Members[r].Incarnation)
				dead = append(dead, view.Members[r].Addr)
			}
			next := view.Shrink(dead...)
			if len(next.Members) < 1 {
				return nil, nil, view, fmt.Errorf("dist: all ranks failed (last error: %w)", firstErr)
			}
			mem.Adopt(next)
			continue
		}
		if vc := allViewChange(errs); vc != nil {
			mem.Seal(vc.View, vc.NextIter)
			continue
		}
		// Nothing was injected and nobody drained, so this is a genuine
		// failure (bad config, I/O error, ...), not something recovery can
		// fix.
		return nil, nil, view, firstErr
	}
}

// allViewChange returns the round's drain verdict when every rank
// returned a *ViewChange (the only way a drain completes), else nil.
func allViewChange(errs []error) *ViewChange {
	var first *ViewChange
	for _, e := range errs {
		var vc *ViewChange
		if e == nil || !errors.As(e, &vc) {
			return nil
		}
		if first == nil {
			first = vc
		}
	}
	return first
}

// ResumeInProc is the clean-restart reference for the elastic driver: a
// fresh in-process cluster of opt.Ranks nodes started from a reassembled
// global checkpoint, with no faults. The differential tests pin the
// recovered (or grown) chain bit-identical to this.
func ResumeInProc(cfg core.Config, prob *core.Problem, base *core.Checkpoint, opt Options) (*core.Result, []Stats, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	plan, test := BuildPlan(prob, opt)
	fab := comm.NewFabric(opt.Ranks)
	defer fab.Close()
	results, stats, errs := runRanks(opt.Ranks, func(r int) (*core.Result, *Stats, error) {
		node, err := NewNode(fab.Comms()[r], cfg, plan, test, opt)
		if err != nil {
			return nil, nil, err
		}
		if err := node.Resume(base); err != nil {
			return nil, nil, err
		}
		return node.Run()
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	return results[0], stats, nil
}

// ResumeInProcShards is the clean-restart reference of the shard-native
// elastic driver.
func ResumeInProcShards(cfg core.Config, path string, testFrac float64, man *Manifest, ckptDir string, opt Options) (*core.Result, []Stats, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	fab := comm.NewFabric(opt.Ranks)
	defer fab.Close()
	results, stats, errs := runRanks(opt.Ranks, func(r int) (*core.Result, *Stats, error) {
		sp, err := LoadShardsLocal(fab.Comms()[r], path, testFrac, cfg.Seed, opt)
		if err != nil {
			return nil, nil, err
		}
		node, err := NewNodeLocal(fab.Comms()[r], cfg, sp.Plan, sp.RT, sp.Test, opt)
		if err != nil {
			return nil, nil, err
		}
		base, err := LoadDistCheckpoint(ckptDir, man, sp.Test)
		if err != nil {
			return nil, nil, err
		}
		if err := node.Resume(base); err != nil {
			return nil, nil, err
		}
		return node.Run()
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	return results[0], stats, nil
}

// runRanks runs one round's rank bodies on their own goroutines and
// collects (result, stats, error) per rank.
func runRanks(ranks int, body func(r int) (*core.Result, *Stats, error)) ([]*core.Result, []Stats, []error) {
	results := make([]*core.Result, ranks)
	stats := make([]Stats, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res, st, err := body(r)
			results[r], errs[r] = res, err
			if st != nil {
				stats[r] = *st
			}
		}(r)
	}
	wg.Wait()
	return results, stats, errs
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
