package dist

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// elastic.go is the recovery driver of the fault-tolerant engine: run
// the cluster; when ranks die mid-run (detected by the heartbeat
// failure detector, unwinding every survivor with a RankFailedError),
// shrink the rank set by the dead ranks, rebuild the partition plan
// over the survivors, and resume from the latest sealed checkpoint
// manifest. The resumed chain is — bit for bit — the chain a fresh
// cluster of the surviving size would sample when started from that
// same checkpoint: partitioning, routing, and the moment-reduction
// order are pure functions of (problem, rank count), and the
// checkpoint's fragments are re-sliced by the *new* bounds on load.

// DefaultSuspicionTimeout is the failure-detector timeout the elastic
// drivers fall back to when Options.SuspicionTimeout is unset.
const DefaultSuspicionTimeout = 2 * time.Second

// FaultHook lets a caller (typically a test) inject faults into one
// recovery round: it runs before the round's nodes start, with the
// round's fabric — install Options.OnIteration kills through opt, sever
// links, etc. Round 0 is the initial run.
type FaultHook func(round int, fb *comm.FaultFabric, opt *Options)

// RunInProcElastic executes a distributed run as a virtual in-process
// cluster that survives injected rank failures: every round runs on a
// fresh FaultFabric; when ranks are killed, the next round resumes from
// the latest checkpoint manifest with the surviving rank count.
// Requires checkpointing to be configured. Returns the final result,
// the last round's per-rank stats, and the rank count that finished.
func RunInProcElastic(cfg core.Config, prob *core.Problem, opt Options, hook FaultHook) (*core.Result, []Stats, int, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, 0, err
	}
	if opt.CheckpointDir == "" || opt.CheckpointEvery <= 0 {
		return nil, nil, 0, fmt.Errorf("dist: elastic runs need CheckpointDir and CheckpointEvery (recovery resumes from the latest manifest)")
	}
	if opt.OneSided {
		return nil, nil, 0, fmt.Errorf("dist: elastic runs are incompatible with OneSided")
	}
	if opt.SuspicionTimeout <= 0 {
		opt.SuspicionTimeout = DefaultSuspicionTimeout
	}

	ranks := opt.Ranks
	for round := 0; ; round++ {
		ropt := opt
		ropt.Ranks = ranks
		ropt.Schedule = nil // rebuilt per rank from the round's plan
		plan, test := BuildPlan(prob, ropt)
		var base *core.Checkpoint
		man, err := LatestManifest(opt.CheckpointDir)
		if err != nil {
			return nil, nil, 0, err
		}
		if man != nil {
			if base, err = LoadDistCheckpoint(opt.CheckpointDir, man, test); err != nil {
				return nil, nil, 0, err
			}
		}

		fb := comm.NewFaultFabric(ranks, cfg.Seed)
		if hook != nil {
			hook(round, fb, &ropt)
		}
		results, stats, errs := runRanks(ranks, func(r int) (*core.Result, *Stats, error) {
			node, err := NewNode(fb.Comms()[r], cfg, plan, test, ropt)
			if err != nil {
				return nil, nil, err
			}
			if base != nil {
				if err := node.Resume(base); err != nil {
					return nil, nil, err
				}
			}
			return node.Run()
		})
		fb.Close()

		killed := fb.Killed()
		firstErr := firstError(errs)
		if firstErr == nil {
			return results[0], stats, ranks, nil
		}
		if len(killed) == 0 {
			// Nothing was injected, so this is a genuine failure (bad
			// config, I/O error, ...), not something recovery can fix.
			return nil, nil, 0, firstErr
		}
		ranks -= len(killed)
		if ranks < 1 {
			return nil, nil, 0, fmt.Errorf("dist: all ranks failed (last error: %w)", firstErr)
		}
	}
}

// ResumeInProc is the clean-restart reference for the elastic driver: a
// fresh in-process cluster of opt.Ranks nodes started from a reassembled
// global checkpoint, with no faults. The differential tests pin
// RunInProcElastic's post-recovery chain bit-identical to this.
func ResumeInProc(cfg core.Config, prob *core.Problem, base *core.Checkpoint, opt Options) (*core.Result, []Stats, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	plan, test := BuildPlan(prob, opt)
	fab := comm.NewFabric(opt.Ranks)
	defer fab.Close()
	results, stats, errs := runRanks(opt.Ranks, func(r int) (*core.Result, *Stats, error) {
		node, err := NewNode(fab.Comms()[r], cfg, plan, test, opt)
		if err != nil {
			return nil, nil, err
		}
		if err := node.Resume(base); err != nil {
			return nil, nil, err
		}
		return node.Run()
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	return results[0], stats, nil
}

// RunInProcElasticShards is RunInProcElastic over the shard-native data
// plane: every round each rank re-runs the collective shard load —
// partition.AssignPanels over the *surviving* rank count — so a dead
// rank's .bcsr shards are remapped to survivors before the round
// resumes. Each rank reassembles the checkpoint from the fragment files
// itself (shared storage in a real cluster).
func RunInProcElasticShards(cfg core.Config, path string, testFrac float64, opt Options, hook FaultHook) (*core.Result, []Stats, int, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, 0, err
	}
	if opt.CheckpointDir == "" || opt.CheckpointEvery <= 0 {
		return nil, nil, 0, fmt.Errorf("dist: elastic runs need CheckpointDir and CheckpointEvery (recovery resumes from the latest manifest)")
	}
	if opt.OneSided {
		return nil, nil, 0, fmt.Errorf("dist: elastic runs are incompatible with OneSided")
	}
	if opt.SuspicionTimeout <= 0 {
		opt.SuspicionTimeout = DefaultSuspicionTimeout
	}

	ranks := opt.Ranks
	for round := 0; ; round++ {
		ropt := opt
		ropt.Ranks = ranks
		ropt.Schedule = nil
		man, err := LatestManifest(opt.CheckpointDir)
		if err != nil {
			return nil, nil, 0, err
		}

		fb := comm.NewFaultFabric(ranks, cfg.Seed)
		if hook != nil {
			hook(round, fb, &ropt)
		}
		results, stats, errs := runRanks(ranks, func(r int) (*core.Result, *Stats, error) {
			sp, err := LoadShardsLocal(fb.Comms()[r], path, testFrac, cfg.Seed, ropt)
			if err != nil {
				return nil, nil, err
			}
			node, err := NewNodeLocal(fb.Comms()[r], cfg, sp.Plan, sp.RT, sp.Test, ropt)
			if err != nil {
				return nil, nil, err
			}
			if man != nil {
				base, err := LoadDistCheckpoint(opt.CheckpointDir, man, sp.Test)
				if err != nil {
					return nil, nil, err
				}
				if err := node.Resume(base); err != nil {
					return nil, nil, err
				}
			}
			return node.Run()
		})
		fb.Close()

		killed := fb.Killed()
		firstErr := firstError(errs)
		if firstErr == nil {
			return results[0], stats, ranks, nil
		}
		if len(killed) == 0 {
			return nil, nil, 0, firstErr
		}
		ranks -= len(killed)
		if ranks < 1 {
			return nil, nil, 0, fmt.Errorf("dist: all ranks failed (last error: %w)", firstErr)
		}
	}
}

// ResumeInProcShards is the clean-restart reference of the shard-native
// elastic driver.
func ResumeInProcShards(cfg core.Config, path string, testFrac float64, man *Manifest, ckptDir string, opt Options) (*core.Result, []Stats, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	fab := comm.NewFabric(opt.Ranks)
	defer fab.Close()
	results, stats, errs := runRanks(opt.Ranks, func(r int) (*core.Result, *Stats, error) {
		sp, err := LoadShardsLocal(fab.Comms()[r], path, testFrac, cfg.Seed, opt)
		if err != nil {
			return nil, nil, err
		}
		node, err := NewNodeLocal(fab.Comms()[r], cfg, sp.Plan, sp.RT, sp.Test, opt)
		if err != nil {
			return nil, nil, err
		}
		base, err := LoadDistCheckpoint(ckptDir, man, sp.Test)
		if err != nil {
			return nil, nil, err
		}
		if err := node.Resume(base); err != nil {
			return nil, nil, err
		}
		return node.Run()
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	return results[0], stats, nil
}

// runRanks runs one round's rank bodies on their own goroutines and
// collects (result, stats, error) per rank.
func runRanks(ranks int, body func(r int) (*core.Result, *Stats, error)) ([]*core.Result, []Stats, []error) {
	results := make([]*core.Result, ranks)
	stats := make([]Stats, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res, st, err := body(r)
			results[r], errs[r] = res, err
			if st != nil {
				stats[r] = *st
			}
		}(r)
	}
	wg.Wait()
	return results, stats, errs
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
