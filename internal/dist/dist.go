// Package dist implements the paper's Section IV: distributed BPMF over
// the message-passing layer in package comm. The rating matrix is split
// into contiguous row (user) and column (movie) ranges by the
// workload-model partitioner; every rank keeps a full replica of both
// factor matrices but samples only its owned rows, streaming each updated
// row to the ranks that need it ("ghosts") through coalescing send buffers
// that overlap communication with the remaining item updates (IV-C).
//
// The sampled chain is a pure function of (data, Config): hyperparameter
// moments are reduced with a deterministic rank-ordered allreduce whose
// summation order equals the sequential sampler's grouped moment reduction
// with groups = the partition boundaries, and every item draw comes from
// the same keyed stream regardless of rank placement. A sequential
// core.Sampler configured with MomentGroupsOf(plan) therefore reproduces
// the distributed chain bit-for-bit at any rank count.
package dist

import (
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/sparse"
	"time"
)

// DefaultBufferSize is the default coalescing buffer capacity per
// destination rank (the paper's Section IV-C batching of item sends).
const DefaultBufferSize = 64 << 10

// Options configures a distributed run.
type Options struct {
	// Ranks is the number of nodes in the virtual (or real) cluster.
	Ranks int
	// ThreadsPerRank is the size of each rank's work-stealing pool for its
	// local item loop. 0 or 1 keeps the per-rank update loop sequential
	// (communication still overlaps computation through the coalescers).
	ThreadsPerRank int
	// BufferSize is the coalescing buffer capacity in bytes per
	// destination. 0 selects DefaultBufferSize; negative disables
	// coalescing entirely (one message per item, the IV-C ablation).
	BufferSize int
	// Reorder applies the communication-minimizing RCM reordering before
	// partitioning. Results are mapped back to the original index space.
	Reorder bool
	// TreeAllreduce swaps the deterministic rank-ordered allreduce for the
	// lower-latency recursive-doubling tree. The chain is still
	// deterministic for a fixed rank count but no longer bit-matches the
	// sequential reference (the summation tree depends on P).
	TreeAllreduce bool
	// OneSided exchanges items with GASPI-style notified one-sided Puts
	// straight into the replicated factor memory instead of two-sided
	// coalesced messages. Same chain, different transport ablation.
	OneSided bool
	// Schedule is the locality processing order of the plan's matrix,
	// restricted per rank to its owned items. nil makes every node build
	// the default order.Build schedule locally (deterministic in the plan,
	// so all ranks still agree); RunInProc builds it once and shares it.
	// The schedule cannot change the sampled chain — only cache behavior.
	Schedule *order.Schedule

	// CheckpointEvery, when positive together with a CheckpointDir, makes
	// every rank write a coordinated checkpoint fragment after each
	// CheckpointEvery-th iteration; rank 0 then seals the round with a
	// manifest. A failed run resumes from the latest sealed manifest.
	CheckpointEvery int
	// CheckpointDir is the directory receiving checkpoint fragments and
	// manifests (shared storage in a real cluster).
	CheckpointDir string
	// SuspicionTimeout, when positive, attaches a heartbeat failure
	// detector to every rank: a peer silent for longer than this is
	// declared failed, unwinding blocked receives with a
	// comm.RankFailedError instead of hanging forever. Incompatible with
	// OneSided (whose notify waits bypass the error-returning receives).
	SuspicionTimeout time.Duration
	// HeartbeatInterval is the detector's heartbeat period; 0 derives it
	// from SuspicionTimeout (see comm.StartDetector).
	HeartbeatInterval time.Duration
	// OnIteration, when set, is invoked on every rank after each completed
	// iteration (all phases, evaluation, and any due checkpoint). It is a
	// test seam: fault-injection tests use it to kill ranks at exact,
	// reproducible iteration boundaries.
	OnIteration func(rank, iter int)

	// Epoch is the membership epoch this round runs under (0 for
	// non-elastic runs; informational).
	Epoch int
	// Members names each rank's (address, incarnation) identity. Set
	// together with Suspicions, it keys the failure detector by identity
	// so a rejoined incarnation at a convicted address gets a fresh
	// suspicion window instead of an instant re-conviction.
	Members []comm.Member
	// Suspicions carries convicted incarnations across the rounds of an
	// elastic run (shared by every round's detector).
	Suspicions *comm.SuspicionTable
	// Membership, when set, gates the drain barrier: whenever it holds
	// pending join requests (and the iteration has reached GrowAtIter),
	// rank 0 raises a drain flag inside the evaluation allreduce — the
	// one point every rank passes in lockstep — and the whole cluster
	// checkpoints at that iteration boundary and returns a *ViewChange
	// naming the proposed next view. Only rank 0 reads it; handing the
	// same value to every rank is fine.
	Membership *comm.Membership
	// GrowAtIter defers raising the drain flag until this iteration
	// (test hook; 0 admits pending joins at the first boundary).
	GrowAtIter int
	// IterDelay pauses every rank after each completed iteration — a
	// pacing hook for CI smokes that need membership events to land
	// mid-run. It cannot change the sampled chain.
	IterDelay time.Duration
}

// normalized fills in defaulted fields.
func (o Options) normalized() Options {
	if o.Ranks < 1 {
		o.Ranks = 1
	}
	if o.ThreadsPerRank < 1 {
		o.ThreadsPerRank = 1
	}
	if o.BufferSize == 0 {
		o.BufferSize = DefaultBufferSize
	}
	return o
}

// Stats reports one rank's traffic and time breakdown.
type Stats struct {
	Rank int
	// ItemsSent counts (item, destination) pairs sent; GhostsRecv counts
	// partner-rank item rows received and applied to the local replica.
	ItemsSent  int64
	GhostsRecv int64
	// Flushes is the number of coalesced messages produced (0 in one-sided
	// mode, which sends per-item Puts).
	Flushes int
	// Comm snapshots the rank's endpoint counters.
	Comm comm.Stats
	// ComputeTime is time spent in item updates, WaitTime in ghost waits
	// and collectives, OverlapTime the part of ComputeTime during which
	// sends were already in flight (communication hidden behind compute).
	ComputeTime time.Duration
	WaitTime    time.Duration
	OverlapTime time.Duration
}

// BuildPlan partitions the problem for opt.Ranks nodes and returns the
// plan together with the test set mapped into the plan's index space
// (identical to prob.Test unless reordering is enabled). Every rank must
// build the identical plan — it is a pure function of (prob, opt), which
// is what lets real multi-process runs (cmd/bpmf-dist) derive it locally
// instead of shipping it.
func BuildPlan(prob *core.Problem, opt Options) (*partition.Plan, []sparse.Entry) {
	opt = opt.normalized()
	plan := partition.Build(prob.R, partition.Options{Ranks: opt.Ranks, Reorder: opt.Reorder})
	test := prob.Test
	if plan.Reordered {
		rowInv := invertPerm32(plan.RowPerm)
		colInv := invertPerm32(plan.ColPerm)
		mapped := make([]sparse.Entry, len(test))
		for i, e := range test {
			mapped[i] = sparse.Entry{Row: rowInv[e.Row], Col: colInv[e.Col], Val: e.Val}
		}
		test = mapped
	}
	return plan, test
}

// BuildPlanPanels is BuildPlan for .bcsr input: row bounds snap to the
// file's shard panels (so a shard-native rank can read whole shards)
// while the column side keeps the workload-model split. The full-load
// and shard-native paths of cmd/bpmf-dist both derive this plan, which
// is what makes their chains bit-comparable. Reordering is rejected —
// an RCM permutation scatters the shard rows (use BuildPlan).
func BuildPlanPanels(prob *core.Problem, panels partition.Panels, opt Options) (*partition.Plan, []sparse.Entry, error) {
	opt = opt.normalized()
	plan, err := partition.BuildWithPanels(prob.R, panels, partition.Options{Ranks: opt.Ranks, Reorder: opt.Reorder})
	if err != nil {
		return nil, nil, err
	}
	return plan, prob.Test, nil
}

// MomentGroupsOf returns the moment-group boundary lists (users, movies)
// induced by a plan's ownership ranges. A sequential sampler configured
// with these groups performs its hyperparameter moment reduction in
// exactly the distributed engine's summation order and hence reproduces
// the distributed chain bit-for-bit.
func MomentGroupsOf(plan *partition.Plan) (groupsU, groupsV []int) {
	return append([]int(nil), plan.RowBounds...), append([]int(nil), plan.ColBounds...)
}

// invertPerm32 inverts perm (perm[newPos] = old) into inv[old] = newPos.
func invertPerm32(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for newPos, old := range perm {
		inv[old] = int32(newPos)
	}
	return inv
}
