package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// shardload.go is the shard-native data plane of the distributed
// engine: each rank of cmd/bpmf-dist maps a .bcsr file and decodes
// only the shards covering its own row range, instead of every rank
// materializing the entire matrix. What a rank cannot read from its
// own shards it obtains over the fabric at startup, in four
// deterministic steps:
//
//  1. Shard-to-rank assignment. The row bounds come from the shard
//     table alone (partition.AssignPanels over the per-shard header
//     nnz), so every rank computes the identical panel-aligned bounds
//     before touching a payload byte.
//  2. Split pipeline. The train/test split is a sequential scan whose
//     state (raw RNG stream position + first-rating-per-column flags)
//     threads row panels in order, so rank r receives the split cursor
//     from rank r-1, splits its own rows bit-identically to a global
//     sparse.SplitTrainTest, and forwards the cursor — an O(1) resume,
//     not a replay of earlier draws.
//  3. Column bounds. Per-column training degrees are allreduced (the
//     counts are integers, so the rank-ordered float sum is exact) and
//     fed through the same workload model the full-data planner uses —
//     the resulting plan is equal to partition.BuildWithPanels on the
//     fully loaded matrix.
//  4. Column-ghost exchange. Each rank sends every owned training
//     entry whose column another rank owns to that rank; reassembled
//     in rank order the received entries form exactly the owned
//     columns of the global train transpose (ranks own ascending row
//     ranges, so rank-ordered concatenation preserves the ascending
//     rater order the kernels' accumulation contract requires).
//
// The resulting node state is indistinguishable from a full-load rank
// under the same plan, so the sampled chain is bit-identical — the
// differential test in shard_test.go pins that, along with the "only
// my shards" property via the mapped reader's touch counters.

// Startup exchange tags, kept far below the collective tag space and
// far above the per-iteration item tags.
const (
	splitStateTag = 1 << 28
	colGhostTag   = 1<<28 + 1
)

// ShardProblem is one rank's shard-native dataset: everything
// NewNodeLocal needs, plus the loader's touch counters for tests and
// logging.
type ShardProblem struct {
	// Plan carries the panel-aligned bounds and this rank's owned
	// training rows (full-size CSR, foreign rows empty).
	Plan *partition.Plan
	// RT holds the owned columns of the training transpose with their
	// complete rater lists (full-size, foreign columns empty).
	RT *sparse.CSR
	// Test is the global held-out set in split order.
	Test []sparse.Entry
	// Shards counts the shards this rank decoded, TotalShards the
	// file's shard count; Load reports the mapped reader's touch
	// counters (how much of the file this rank actually read).
	Shards, TotalShards int
	Load                sparse.MappedStats
}

// LoadShardsLocal opens path and loads rank c.Rank()'s slice of the
// sharded .bcsr rating file (see LoadShards).
func LoadShardsLocal(c *comm.Comm, path string, testFrac float64, seed uint64, opt Options) (*ShardProblem, error) {
	mp, err := sparse.OpenBinary(path)
	if err != nil {
		return nil, err
	}
	defer mp.Close()
	return LoadShards(c, mp, testFrac, seed, opt)
}

// LoadShards loads rank c.Rank()'s slice of an already-opened sharded
// .bcsr rating file, exchanging split state, column degrees, the test
// set and column ghosts with the other ranks. Every rank must call it
// with identical (file contents, testFrac, seed, opt); it is
// collective. The caller keeps ownership of mp (callers that opened
// the file to validate it before dialing pass the same mapping here
// instead of re-walking the shard table).
func LoadShards(c *comm.Comm, mp *sparse.Mapped, testFrac float64, seed uint64, opt Options) (*ShardProblem, error) {
	opt = opt.normalized()
	if c.Size() != opt.Ranks {
		return nil, fmt.Errorf("dist: communicator has %d ranks, options say %d", c.Size(), opt.Ranks)
	}
	if opt.Reorder {
		return nil, fmt.Errorf("dist: reordering needs the full matrix; load without -reorder or use the full-load path")
	}
	rank, ranks := c.Rank(), opt.Ranks
	m, n := mp.Dims()

	// (1) Shard-to-rank assignment from the shard table.
	panels := partition.PanelsOf(mp)
	rowBounds := partition.AssignPanels(panels, ranks, partition.CostModel{})
	rowLo, rowHi := rowBounds[rank], rowBounds[rank+1]

	// Decode the owned shards into a full-size pre-split CSR (foreign
	// rows stay empty; their row pointers are flattened below).
	pre := &sparse.CSR{M: m, N: n, RowPtr: make([]int64, m+1)}
	owned := 0
	for s := range panels.Lo {
		if panels.Lo[s] < rowLo || panels.Hi[s] > rowHi {
			continue
		}
		if err := mp.DecodePanelInto(pre, s); err != nil {
			return nil, err
		}
		owned++
	}
	total := int64(len(pre.Col))
	for r := rowHi; r <= m; r++ {
		pre.RowPtr[r] = total
	}

	// (2) Split pipeline: receive the cursor at our first row, split
	// our panel, forward the cursor.
	st := sparse.NewSplitState(n)
	if rank > 0 {
		msg, err := c.RecvE(rank-1, splitStateTag)
		if err != nil {
			return nil, fmt.Errorf("dist: rank %d awaiting split state: %w", rank, err)
		}
		if st, err = sparse.DecodeSplitState(msg.Data, n); err != nil {
			return nil, fmt.Errorf("dist: rank %d split state: %w", rank, err)
		}
	}
	trainPtr := make([]int64, m+1)
	var trainCol []int32
	var trainVal []float64
	var localTest []sparse.Entry
	sparse.SplitRowsResume(pre, rowLo, rowHi, testFrac, seed, st,
		func(e sparse.Entry) {
			trainPtr[e.Row+1]++
			trainCol = append(trainCol, e.Col)
			trainVal = append(trainVal, e.Val)
		},
		func(e sparse.Entry) { localTest = append(localTest, e) })
	if rank+1 < ranks {
		if err := c.SendE(rank+1, splitStateTag, st.Encode()); err != nil {
			return nil, fmt.Errorf("dist: rank %d forwarding split state: %w", rank, err)
		}
	}
	for i := 0; i < m; i++ {
		trainPtr[i+1] += trainPtr[i]
	}
	train := &sparse.CSR{M: m, N: n, RowPtr: trainPtr, Col: trainCol, Val: trainVal}

	// (3) Global test set and column bounds.
	blobs, err := c.AllgatherE(encodeEntries(localTest))
	if err != nil {
		return nil, fmt.Errorf("dist: gathering test set: %w", err)
	}
	var test []sparse.Entry
	for q := 0; q < ranks; q++ {
		test = append(test, decodeEntries(blobs[q])...)
	}
	colDeg := make([]float64, n)
	for _, j := range trainCol {
		colDeg[j]++
	}
	colDegTot, err := c.AllreduceSumOrderedE(colDeg)
	if err != nil {
		return nil, fmt.Errorf("dist: reducing column degrees: %w", err)
	}
	deg := make([]int, n)
	for j, d := range colDegTot {
		deg[j] = int(d)
	}
	model := partition.DefaultCostModel()
	colBounds := partition.ChainsOnChains(model.Weights(deg), ranks)
	colOwner := ownersArray(colBounds, n)

	// (4) Column-ghost exchange: ship every owned training entry to its
	// column's owner; keep our own. Empty messages still flow so the
	// receive count is deterministic.
	bufs := make([][]byte, ranks)
	for i := rowLo; i < rowHi; i++ {
		cols, vals := train.Row(i)
		for k, j := range cols {
			if o := colOwner[j]; o != int32(rank) {
				bufs[o] = appendEntry(bufs[o], int32(i), j, vals[k])
			}
		}
	}
	for dst := 0; dst < ranks; dst++ {
		if dst != rank {
			if err := c.SendE(dst, colGhostTag, bufs[dst]); err != nil {
				return nil, fmt.Errorf("dist: sending column ghosts: %w", err)
			}
		}
	}
	ghosts := make([][]sparse.Entry, ranks)
	for q := 0; q < ranks-1; q++ {
		msg, err := c.RecvE(comm.AnySource, colGhostTag)
		if err != nil {
			return nil, fmt.Errorf("dist: receiving column ghosts: %w", err)
		}
		ghosts[msg.Src] = decodeEntries(msg.Data)
	}

	// Reassemble the owned columns of the train transpose. Sources are
	// walked in rank order — ascending row ranges — and each source's
	// entries arrive row-major, so every column's raters come out
	// ascending, matching sparse.CSR.Transpose's contract.
	rtPtr := make([]int64, n+1)
	visit := func(q int, f func(row, col int32, val float64)) {
		if q == rank {
			for i := rowLo; i < rowHi; i++ {
				cols, vals := train.Row(i)
				for k, j := range cols {
					if colOwner[j] == int32(rank) {
						f(int32(i), j, vals[k])
					}
				}
			}
			return
		}
		for _, e := range ghosts[q] {
			f(e.Row, e.Col, e.Val)
		}
	}
	for q := 0; q < ranks; q++ {
		visit(q, func(_, col int32, _ float64) { rtPtr[col+1]++ })
	}
	for j := 0; j < n; j++ {
		rtPtr[j+1] += rtPtr[j]
	}
	rtNNZ := rtPtr[n]
	rtCol := make([]int32, rtNNZ)
	rtVal := make([]float64, rtNNZ)
	next := make([]int64, n)
	copy(next, rtPtr[:n])
	for q := 0; q < ranks; q++ {
		visit(q, func(row, col int32, val float64) {
			p := next[col]
			rtCol[p] = row
			rtVal[p] = val
			next[col] = p + 1
		})
	}
	rt := &sparse.CSR{M: n, N: m, RowPtr: rtPtr, Col: rtCol, Val: rtVal}

	return &ShardProblem{
		Plan:        &partition.Plan{R: train, RowBounds: rowBounds, ColBounds: colBounds},
		RT:          rt,
		Test:        test,
		Shards:      owned,
		TotalShards: mp.Shards(),
		Load:        mp.Stats(),
	}, nil
}

// encodeEntries serializes entries as fixed 16-byte records (u32 row,
// u32 col, f64 bits, little-endian).
func encodeEntries(es []sparse.Entry) []byte {
	b := make([]byte, 0, 16*len(es))
	for _, e := range es {
		b = appendEntry(b, e.Row, e.Col, e.Val)
	}
	return b
}

func appendEntry(b []byte, row, col int32, val float64) []byte {
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(row))
	binary.LittleEndian.PutUint32(rec[4:], uint32(col))
	binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(val))
	return append(b, rec[:]...)
}

func decodeEntries(b []byte) []sparse.Entry {
	es := make([]sparse.Entry, 0, len(b)/16)
	for off := 0; off+16 <= len(b); off += 16 {
		es = append(es, sparse.Entry{
			Row: int32(binary.LittleEndian.Uint32(b[off:])),
			Col: int32(binary.LittleEndian.Uint32(b[off+4:])),
			Val: math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:])),
		})
	}
	return es
}
