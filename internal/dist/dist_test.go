package dist

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/order"
	"repro/internal/sparse"
)

func problem(t *testing.T, seed uint64) *core.Problem {
	t.Helper()
	ds := datagen.Generate(datagen.Small(seed))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, seed)
	return core.NewProblem(train, test)
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 6
	cfg.Iters = 5
	cfg.Burnin = 2
	// Force all three kernels to participate on small data.
	cfg.RankOneMax = 4
	cfg.KernelThreshold = 20
	cfg.ParallelGrain = 7
	return cfg
}

// sequentialRef runs the sequential sampler with the partition's moment
// grouping, which must reproduce the distributed chain bit-for-bit.
func sequentialRef(t *testing.T, cfg core.Config, prob *core.Problem, ranks int) *core.Result {
	t.Helper()
	plan, _ := BuildPlan(prob, Options{Ranks: ranks})
	cfg.MomentGroupsU, cfg.MomentGroupsV = MomentGroupsOf(plan)
	s, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestDistributedMatchesSequentialBitwise(t *testing.T) {
	prob := problem(t, 9)
	cfg := testConfig()
	for _, ranks := range []int{1, 2, 4} {
		want := sequentialRef(t, cfg, prob, ranks)
		got, stats, err := RunInProc(cfg, prob, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
			t.Fatalf("ranks=%d: distributed chain differs from sequential reference", ranks)
		}
		if got.KernelCounts != want.KernelCounts {
			t.Fatalf("ranks=%d: kernel counts %v != %v", ranks, got.KernelCounts, want.KernelCounts)
		}
		if len(stats) != ranks {
			t.Fatalf("ranks=%d: got %d stats", ranks, len(stats))
		}
		if ranks > 1 {
			var sent, recv int64
			for _, s := range stats {
				sent += s.ItemsSent
				recv += s.GhostsRecv
			}
			if sent == 0 || sent != recv {
				t.Fatalf("ranks=%d: ghost accounting broken: sent %d recv %d", ranks, sent, recv)
			}
		}
		for i := range want.AvgRMSE {
			if math.Abs(got.AvgRMSE[i]-want.AvgRMSE[i]) > 1e-12 {
				t.Fatalf("ranks=%d: RMSE trace differs at iter %d: %v vs %v",
					ranks, i, got.AvgRMSE[i], want.AvgRMSE[i])
			}
		}
	}
}

func TestDistributedThreadsPerRankBitIdentical(t *testing.T) {
	prob := problem(t, 10)
	cfg := testConfig()
	base, _, err := RunInProc(cfg, prob, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	threaded, _, err := RunInProc(cfg, prob, Options{Ranks: 2, ThreadsPerRank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(base.U, threaded.U) != 0 || la.MaxAbsDiff(base.V, threaded.V) != 0 {
		t.Fatal("per-rank threading changed the chain")
	}
	// The threaded rank evaluates chunk-parallel on its pool, the serial
	// rank inline — same fixed chunk tree, so the traces must match bit
	// for bit, not just within tolerance.
	for i := range base.AvgRMSE {
		if base.AvgRMSE[i] != threaded.AvgRMSE[i] || base.SampleRMSE[i] != threaded.SampleRMSE[i] {
			t.Fatalf("RMSE trace not bit-identical at iter %d", i)
		}
	}
}

// TestDistributedScheduleIsChainInvariant drives the ranks over arbitrary
// processing orders (the identity schedule and the default locality one):
// the per-rank walk order must not change a sampled bit or the trace.
func TestDistributedScheduleIsChainInvariant(t *testing.T) {
	prob := problem(t, 12)
	cfg := testConfig()
	def, _, err := RunInProc(cfg, prob, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, n := prob.Dims()
	identity := &order.Schedule{U: make([]int32, m), V: make([]int32, n)}
	for i := range identity.U {
		identity.U[i] = int32(i)
	}
	for j := range identity.V {
		identity.V[j] = int32(j)
	}
	for name, sch := range map[string]*order.Schedule{
		"identity": identity,
		"reversed": {U: reversed(m), V: reversed(n)},
	} {
		got, _, err := RunInProc(cfg, prob, Options{Ranks: 3, Schedule: sch})
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.U, def.U) != 0 || la.MaxAbsDiff(got.V, def.V) != 0 {
			t.Fatalf("schedule %q changed the chain", name)
		}
		for i := range def.AvgRMSE {
			if got.AvgRMSE[i] != def.AvgRMSE[i] {
				t.Fatalf("schedule %q changed the RMSE trace at iter %d", name, i)
			}
		}
	}
}

func TestDistributedRejectsBadSchedule(t *testing.T) {
	prob := problem(t, 14)
	cfg := testConfig()
	m, _ := prob.Dims()
	bad := &order.Schedule{U: reversed(m - 1)} // wrong length
	if _, _, err := RunInProc(cfg, prob, Options{Ranks: 2, Schedule: bad}); err == nil {
		t.Fatal("truncated schedule must be rejected, not deadlock the ranks")
	}
}

func reversed(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(n - 1 - i)
	}
	return p
}

func TestDistributedOneSidedBitIdentical(t *testing.T) {
	prob := problem(t, 11)
	cfg := testConfig()
	two, twoStats, err := RunInProc(cfg, prob, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	one, oneStats, err := RunInProc(cfg, prob, Options{Ranks: 3, OneSided: true})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(two.U, one.U) != 0 || la.MaxAbsDiff(two.V, one.V) != 0 {
		t.Fatal("one-sided exchange changed the chain")
	}
	// One-sided sends per-item puts, so it produces at least as many
	// messages as the coalesced two-sided exchange.
	var twoMsgs, oneMsgs int64
	for r := range twoStats {
		twoMsgs += twoStats[r].Comm.MsgsSent
		oneMsgs += oneStats[r].Comm.MsgsSent
	}
	if oneMsgs < twoMsgs {
		t.Fatalf("one-sided produced fewer messages (%d) than coalesced (%d)", oneMsgs, twoMsgs)
	}
}

func TestDistributedBufferSizeBitIdentical(t *testing.T) {
	prob := problem(t, 12)
	cfg := testConfig()
	var ref *core.Result
	for _, buf := range []int{-1, 256, DefaultBufferSize} {
		res, _, err := RunInProc(cfg, prob, Options{Ranks: 2, BufferSize: buf})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if la.MaxAbsDiff(res.U, ref.U) != 0 {
			t.Fatalf("buffer size %d changed the chain", buf)
		}
	}
}

func TestDistributedTreeAllreduceDeterministic(t *testing.T) {
	prob := problem(t, 13)
	cfg := testConfig()
	a, _, err := RunInProc(cfg, prob, Options{Ranks: 3, TreeAllreduce: true})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunInProc(cfg, prob, Options{Ranks: 3, TreeAllreduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(a.U, b.U) != 0 {
		t.Fatal("tree-allreduce chain not deterministic across runs")
	}
	if math.IsNaN(a.FinalRMSE()) || a.FinalRMSE() <= 0 {
		t.Fatalf("bad RMSE %v", a.FinalRMSE())
	}
}

func TestDistributedReorderMapsBack(t *testing.T) {
	prob := problem(t, 14)
	cfg := testConfig()
	cfg.Iters, cfg.Burnin = 8, 4
	res, _, err := RunInProc(cfg, prob, Options{Ranks: 4, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	// Factors must be back in original index space: training-set RMSE with
	// the returned factors should be near the planted noise floor, and the
	// intervals must reference original test coordinates.
	var se, n float64
	for i := 0; i < prob.R.M; i++ {
		cols, vals := prob.R.Row(i)
		for p, c := range cols {
			d := la.Dot(res.U.Row(i), res.V.Row(int(c))) - vals[p]
			se += d * d
			n++
		}
	}
	if rmse := math.Sqrt(se / n); rmse > 0.8 {
		t.Fatalf("training RMSE %v too high — factors likely left in permuted space", rmse)
	}
	if len(res.Intervals) != len(prob.Test) {
		t.Fatalf("got %d intervals, want %d", len(res.Intervals), len(prob.Test))
	}
	for t2, iv := range res.Intervals {
		e := prob.Test[t2]
		if iv.Row != e.Row || iv.Col != e.Col || iv.Actual != e.Val {
			t.Fatalf("interval %d not in original test order: (%d,%d) vs (%d,%d)",
				t2, iv.Row, iv.Col, e.Row, e.Col)
		}
	}
}

func TestDistributedIntervalsMatchSequential(t *testing.T) {
	prob := problem(t, 15)
	cfg := testConfig()
	want := sequentialRef(t, cfg, prob, 2)
	got, _, err := RunInProc(cfg, prob, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Intervals) != len(want.Intervals) {
		t.Fatalf("interval count %d != %d", len(got.Intervals), len(want.Intervals))
	}
	for i := range want.Intervals {
		w, g := want.Intervals[i], got.Intervals[i]
		if w.Row != g.Row || w.Col != g.Col || w.Mean != g.Mean || w.Std != g.Std {
			t.Fatalf("interval %d differs: %+v vs %+v", i, w, g)
		}
	}
}

func TestBuildPlanRemapsTestUnderReorder(t *testing.T) {
	prob := problem(t, 16)
	plan, test := BuildPlan(prob, Options{Ranks: 2, Reorder: true})
	if !plan.Reordered {
		t.Fatal("plan not reordered")
	}
	if len(test) != len(prob.Test) {
		t.Fatal("test set length changed")
	}
	for i, e := range prob.Test {
		m := test[i]
		if plan.RowPerm[m.Row] != e.Row || plan.ColPerm[m.Col] != e.Col || m.Val != e.Val {
			t.Fatalf("test entry %d not remapped consistently", i)
		}
	}
	gu, gv := MomentGroupsOf(plan)
	if gu[0] != 0 || gu[len(gu)-1] != prob.R.M || gv[0] != 0 || gv[len(gv)-1] != prob.R.N {
		t.Fatal("moment groups do not span the factor matrices")
	}
}

func TestNewNodeValidation(t *testing.T) {
	prob := problem(t, 17)
	bad := testConfig()
	bad.K = 0
	if _, _, err := RunInProc(bad, prob, Options{Ranks: 2}); err == nil {
		t.Fatal("expected config validation error")
	}
}
