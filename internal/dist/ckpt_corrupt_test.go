package dist

import (
	"bytes"
	"encoding/json"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ckpt_corrupt_test.go pins the manifest plane's behavior over a corpus
// of damaged files: LatestManifest (the recovery scan) must skip
// unreadable, torn, and structurally inconsistent manifests with a
// logged warning and still find the newest intact one, while
// ReadManifest (the pinned path, where the caller named an exact round)
// must fail loudly with byte-accurate errors.

// writeCorruptCorpus populates dir with one valid manifest (iter 4)
// surrounded by damaged ones at higher iterations.
func writeCorruptCorpus(t *testing.T, dir string) {
	t.Helper()
	valid := Manifest{
		Iter: 4, K: 6, Ranks: 2, Seed: 1, M: 40, N: 30,
		RowBounds: []int{0, 20, 40},
		ColBounds: []int{0, 15, 30},
		Fragments: []string{"ckpt-iter000004-rank0-of2.frag", "ckpt-iter000004-rank1-of2.frag"},
	}
	blob, err := json.Marshal(&valid)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(manifestName(4), blob)
	// Torn mid-write by a foreign (non-atomic) writer: truncated JSON.
	write(manifestName(6), blob[:len(blob)/2])
	// Zero bytes — an empty debris file.
	write(manifestName(8), nil)
	// Parses, but the structure lies: 2 ranks with one fragment and
	// 1-rank bounds.
	inconsistent := Manifest{
		Iter: 10, K: 6, Ranks: 2, Seed: 1, M: 40, N: 30,
		RowBounds: []int{0, 40},
		ColBounds: []int{0, 30},
		Fragments: []string{"ckpt-iter000010-rank0-of2.frag"},
	}
	blob10, err := json.Marshal(&inconsistent)
	if err != nil {
		t.Fatal(err)
	}
	write(manifestName(10), blob10)
}

func TestLatestManifestSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	writeCorruptCorpus(t, dir)

	var logs bytes.Buffer
	prevOut, prevFlags := log.Writer(), log.Flags()
	log.SetOutput(&logs)
	log.SetFlags(0)
	defer func() {
		log.SetOutput(prevOut)
		log.SetFlags(prevFlags)
	}()

	man, err := LatestManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Iter != 4 {
		t.Fatalf("latest manifest %+v, want the intact iter-4 one", man)
	}
	warned := logs.String()
	for _, name := range []string{manifestName(6), manifestName(8), manifestName(10)} {
		if !strings.Contains(warned, name) {
			t.Fatalf("no skip warning for %s in:\n%s", name, warned)
		}
	}
	if !strings.Contains(warned, "skipping torn checkpoint manifest") {
		t.Fatalf("torn manifest not reported as torn:\n%s", warned)
	}
	if !strings.Contains(warned, "is inconsistent (2 ranks, 2/2 bounds, 1 fragments)") {
		t.Fatalf("inconsistent manifest not reported structurally:\n%s", warned)
	}
}

// TestReadManifestFailsLoudlyOnCorpus pins the pinned-manifest contract
// byte for byte: a named round that is damaged is an error, never
// something to skip past.
func TestReadManifestFailsLoudlyOnCorpus(t *testing.T) {
	dir := t.TempDir()
	writeCorruptCorpus(t, dir)

	if man, err := ReadManifest(dir, 4); err != nil || man.Iter != 4 {
		t.Fatalf("intact manifest: got (%+v, %v)", man, err)
	}
	if _, err := ReadManifest(dir, 6); err == nil ||
		err.Error() != "dist: manifest for iter 6: unexpected end of JSON input" {
		t.Fatalf("torn manifest error = %v", err)
	}
	if _, err := ReadManifest(dir, 8); err == nil ||
		err.Error() != "dist: manifest for iter 8: unexpected end of JSON input" {
		t.Fatalf("empty manifest error = %v", err)
	}
	if _, err := ReadManifest(dir, 10); err == nil ||
		err.Error() != "dist: manifest for iter 10 is inconsistent (2 ranks, 2/2 bounds, 1 fragments)" {
		t.Fatalf("inconsistent manifest error = %v", err)
	}
	if _, err := ReadManifest(dir, 12); !os.IsNotExist(err) {
		t.Fatalf("missing manifest error = %v, want os.IsNotExist", err)
	}
}
