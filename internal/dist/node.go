package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// One-sided segment ids for the two replicated factor matrices.
const (
	segU = 0
	segV = 1
)

// itemGrain is the work-stealing grain of the per-rank item loop when
// ThreadsPerRank > 1 (same value as the multi-core engine).
const itemGrain = 8

// Node is one rank of the distributed engine.
type Node struct {
	c    *comm.Comm
	cfg  core.Config
	opt  Options
	plan *partition.Plan
	test []sparse.Entry // full test set, plan index space

	rank, ranks, k int
	r, rt          *sparse.CSR

	u, v   *la.Matrix
	hu, hv *core.Hyper
	prior  core.NWPrior

	rowOwner, colOwner []int32

	// sendU[i-rowLo] / sendV[j-colLo] list the ranks an owned item's
	// updated row must reach; expU/expV are the ghost rows this rank
	// receives per iteration.
	sendU, sendV [][]int32
	expU, expV   int

	// ordU/ordV are the locality processing orders of the owned ranges
	// (the shared schedule restricted to this rank's items). Within a
	// phase every owned item's draw is keyed by its plan-space id and
	// ghost waits count rows, not positions, so the walk order changes no
	// sampled bit — only the cache behavior of the partner-row gathers.
	ordU, ordV []int32

	pred *core.Predictor // over the locally owned test entries

	// momPart/momVec are the reused scratch of the per-iteration
	// hyperparameter moment reduction.
	momPart *core.Moments
	momVec  []float64

	pool    *sched.Pool
	ws      *core.Workspace // single-thread update path
	wsArena *sched.Arena[*core.Workspace]
	hws     *core.HyperWorkspace

	win    *comm.OneSided
	recBuf []byte

	// firstIter/ckBase position a resumed chain: Run starts at firstIter
	// and the final kernel tally adds ckBase (the counts of all chain
	// segments executed before this run — see Resume).
	firstIter int
	ckBase    [3]int64

	// drainPending latches the drain flag of the last evaluation
	// allreduce: the cluster agreed to seal a view change at this
	// iteration boundary.
	drainPending bool

	kernelCounts [3]atomic.Int64
	stats        Stats
	res          core.Result
}

// NewNode builds rank c.Rank() of a distributed run. plan and test must be
// the (identical) outputs of BuildPlan on every rank.
func NewNode(c *comm.Comm, cfg core.Config, plan *partition.Plan, test []sparse.Entry, opt Options) (*Node, error) {
	return newNode(c, cfg, plan, plan.R.Transpose(), test, opt, false)
}

// NewNodeLocal builds a rank from shard-native per-rank data: plan.R
// holds only this rank's owned rows (all other rows empty, full-size
// row pointers) and rt only its owned columns with their complete
// rater lists — exactly what LoadShardsLocal assembles from a rank's
// own .bcsr shards plus the column-ghost exchange. test must still be
// the global test set (routing and interval gathering need every
// rank's test identities). The sampled chain is bit-identical to a
// full-data NewNode under the same plan: every quantity a rank
// computes — its item updates, moment partials, routing table and
// local predictor — reads only the owned slices.
func NewNodeLocal(c *comm.Comm, cfg core.Config, plan *partition.Plan, rt *sparse.CSR, test []sparse.Entry, opt Options) (*Node, error) {
	return newNode(c, cfg, plan, rt, test, opt, true)
}

// newNode is the shared constructor; partial marks plan.R/rt as
// owned-slices-only, which only changes the default schedule (a
// partial rank walks its owned items in natural order — chain-
// invariant, see package order — instead of building a locality order
// from a matrix it doesn't fully hold).
func newNode(c *comm.Comm, cfg core.Config, plan *partition.Plan, rt *sparse.CSR, test []sparse.Entry, opt Options, partial bool) (*Node, error) {
	opt = opt.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if c.Size() != opt.Ranks {
		return nil, fmt.Errorf("dist: communicator has %d ranks, options say %d", c.Size(), opt.Ranks)
	}
	if len(plan.RowBounds) != opt.Ranks+1 || len(plan.ColBounds) != opt.Ranks+1 {
		return nil, fmt.Errorf("dist: plan built for %d ranks, options say %d",
			len(plan.RowBounds)-1, opt.Ranks)
	}
	// Record the summation order the engine's allreduce implements, so the
	// node's config is self-describing (see MomentGroupsOf).
	cfg.MomentGroupsU, cfg.MomentGroupsV = MomentGroupsOf(plan)

	m, n := plan.R.M, plan.R.N
	nd := &Node{
		c: c, cfg: cfg, opt: opt, plan: plan, test: test,
		rank: c.Rank(), ranks: opt.Ranks, k: cfg.K,
		r: plan.R, rt: rt,
		u:     core.InitFactors(cfg.Seed, core.SideU, m, cfg.K),
		v:     core.InitFactors(cfg.Seed, core.SideV, n, cfg.K),
		hu:    core.NewHyper(cfg.K),
		hv:    core.NewHyper(cfg.K),
		prior: core.DefaultNWPrior(cfg.K),
	}
	nd.stats.Rank = nd.rank
	nd.rowOwner = ownersArray(plan.RowBounds, m)
	nd.colOwner = ownersArray(plan.ColBounds, n)
	nd.recBuf = make([]byte, 4+8*nd.k)
	nd.buildRouting()

	// Locality schedule over the owned ranges: opt.Schedule if the launcher
	// built one (RunInProc shares a single build across ranks), else built
	// locally — Build is deterministic in plan.R, so either way every rank
	// walks the same global order restricted to its own items. A supplied
	// schedule must be a permutation of the plan's index space: a stale or
	// truncated order would make this rank skip owned items, and its
	// peers, whose expected ghost counts come from the routing table, not
	// the schedule, would then block forever waiting for the missing rows.
	sch := opt.Schedule
	if sch == nil {
		if partial {
			// A shard-native rank holds only its owned slices, so it takes
			// the natural order (nil orders restrict to the identity).
			sch = &order.Schedule{}
		} else {
			sch = order.Build(plan.R, order.Options{HeavyThreshold: cfg.KernelThreshold})
		}
	} else {
		if sch.U != nil && !order.IsPermutation(sch.U, m) {
			return nil, fmt.Errorf("dist: schedule U order is not a permutation of [0,%d)", m)
		}
		if sch.V != nil && !order.IsPermutation(sch.V, n) {
			return nil, fmt.Errorf("dist: schedule V order is not a permutation of [0,%d)", n)
		}
	}
	nd.ordU = order.Restrict(sch.U, plan.RowBounds[nd.rank], plan.RowBounds[nd.rank+1])
	nd.ordV = order.Restrict(sch.V, plan.ColBounds[nd.rank], plan.ColBounds[nd.rank+1])
	nd.momPart = core.NewMoments(cfg.K)
	nd.momVec = make([]float64, 1+cfg.K+cfg.K*cfg.K)
	nd.res.SampleRMSE = make([]float64, 0, cfg.Iters)
	nd.res.AvgRMSE = make([]float64, 0, cfg.Iters)

	var localTest []sparse.Entry
	for _, e := range test {
		if nd.rowOwner[e.Row] == int32(nd.rank) {
			localTest = append(localTest, e)
		}
	}
	nd.pred = core.NewPredictor(localTest, cfg.ClampMin, cfg.ClampMax)
	nd.pred.Alpha = cfg.Alpha

	acc := core.NewAccArena(cfg.K)
	if opt.ThreadsPerRank > 1 {
		nd.wsArena = sched.NewArena(func() *core.Workspace {
			return core.NewWorkspaceShared(cfg.K, acc)
		})
	} else {
		nd.ws = core.NewWorkspaceShared(cfg.K, acc)
	}
	nd.hws = core.NewHyperWorkspace(cfg.K)
	return nd, nil
}

func ownersArray(bounds []int, n int) []int32 {
	owner := make([]int32, n)
	for p := 0; p+1 < len(bounds); p++ {
		for i := bounds[p]; i < bounds[p+1]; i++ {
			owner[i] = int32(p)
		}
	}
	return owner
}

// buildRouting derives, for every owned item, the destination ranks of its
// updated factor row, and the total ghost rows this rank expects per
// iteration. All ranks compute the (deterministic) table from the shared
// plan, so no routing metadata ever travels over the network — and the
// computation reads only this rank's owned slices (its own rows of R,
// its own columns of Rᵀ with their complete rater lists, and the global
// test set), so a shard-native rank that never loaded the other panels
// builds the identical table a full-data rank would.
//
// A movie row j goes to every rank owning a user that rated j, plus every
// rank owning a user with a held-out test entry on j (so evaluation always
// sees fresh factors). A user row i goes to every rank owning a movie i
// rated (those ranks read it in the next movie phase). Conversely, the
// expected ghost counts are the distinct foreign users rating an owned
// movie (expU) and the distinct foreign movies an owned user rated or
// holds a test entry on (expV).
func (nd *Node) buildRouting() {
	rowLo, rowHi := nd.plan.RowBounds[nd.rank], nd.plan.RowBounds[nd.rank+1]
	colLo, colHi := nd.plan.ColBounds[nd.rank], nd.plan.ColBounds[nd.rank+1]
	nd.sendU = make([][]int32, rowHi-rowLo)
	nd.sendV = make([][]int32, colHi-colLo)
	self := int32(nd.rank)

	// Ranks that need each movie for test evaluation, beyond its raters.
	testNeedV := make(map[int32][]int32)
	for _, e := range nd.test {
		testNeedV[e.Col] = append(testNeedV[e.Col], nd.rowOwner[e.Row])
	}

	seen := make([]int, nd.ranks)
	epoch := 0
	destsOf := func(owner int32, partners []int32, partnerOwner []int32, extra []int32) []int32 {
		epoch++
		seen[owner] = epoch
		var dests []int32
		for _, p := range partners {
			if o := partnerOwner[p]; seen[o] != epoch {
				seen[o] = epoch
				dests = append(dests, o)
			}
		}
		for _, o := range extra {
			if seen[o] != epoch {
				seen[o] = epoch
				dests = append(dests, o)
			}
		}
		sort.Slice(dests, func(a, b int) bool { return dests[a] < dests[b] })
		return dests
	}

	for j := colLo; j < colHi; j++ {
		raters, _ := nd.rt.Row(j)
		nd.sendV[j-colLo] = destsOf(self, raters, nd.rowOwner, testNeedV[int32(j)])
	}
	for i := rowLo; i < rowHi; i++ {
		rated, _ := nd.r.Row(i)
		nd.sendU[i-rowLo] = destsOf(self, rated, nd.colOwner, nil)
	}

	visRow := make([]bool, nd.r.M)
	for j := colLo; j < colHi; j++ {
		raters, _ := nd.rt.Row(j)
		for _, i := range raters {
			if nd.rowOwner[i] != self && !visRow[i] {
				visRow[i] = true
				nd.expU++
			}
		}
	}
	visCol := make([]bool, nd.rt.M)
	for i := rowLo; i < rowHi; i++ {
		rated, _ := nd.r.Row(i)
		for _, j := range rated {
			if nd.colOwner[j] != self && !visCol[j] {
				visCol[j] = true
				nd.expV++
			}
		}
	}
	for _, e := range nd.test {
		if nd.rowOwner[e.Row] == self && nd.colOwner[e.Col] != self && !visCol[e.Col] {
			visCol[e.Col] = true
			nd.expV++
		}
	}
}

// itemTag returns the message tag of one iteration's item exchange phase.
func itemTag(iter int, side core.Side) int {
	return 1 + 2*iter + int(side)
}

// allreduce sums per-rank float64 vectors with the configured reduction.
// It returns an error instead of panicking when a peer fails mid-
// reduction, so the run can unwind to the recovery driver.
func (nd *Node) allreduce(v []float64) ([]float64, error) {
	if nd.opt.TreeAllreduce {
		return nd.c.AllreduceSumTreeE(v)
	}
	return nd.c.AllreduceSumOrderedE(v)
}

// sampleHyper draws one side's hyperparameters from the globally reduced
// moments. The rank-ordered allreduce adds partials in ascending rank
// order, which is exactly MomentsGrouped's combine order with groups =
// the ownership boundaries — the key to bit-equality with the sequential
// reference.
func (nd *Node) sampleHyper(iter int, side core.Side, x *la.Matrix, bounds []int, h *core.Hyper) error {
	lo, hi := bounds[nd.rank], bounds[nd.rank+1]
	part := nd.momPart
	part.Zero()
	part.AccumulateRows(x, lo, hi)

	vec := nd.momVec
	vec[0] = part.N
	copy(vec[1:1+nd.k], part.Sum)
	copy(vec[1+nd.k:], part.SumSq.Data)
	t0 := time.Now()
	tot, err := nd.allreduce(vec)
	nd.stats.WaitTime += time.Since(t0)
	if err != nil {
		return err
	}
	part.N = tot[0]
	copy(part.Sum, tot[1:1+nd.k])
	copy(part.SumSq.Data, tot[1+nd.k:])

	core.SampleHyperWS(nd.prior, part, core.HyperStream(nd.cfg.Seed, iter, side), h, nd.hws)
	return nil
}

// updateSide samples every owned item of one side, streams each updated
// row to the ranks that need it, then blocks until all expected ghost
// rows of the phase have been applied to the local replica.
func (nd *Node) updateSide(iter int, side core.Side) error {
	cfg := &nd.cfg
	var lo, hi int
	var self, other *la.Matrix
	var ratings *sparse.CSR
	var send [][]int32
	var exp, seg int
	var hyper *core.Hyper
	var ord []int32
	if side == core.SideV {
		lo, hi = nd.plan.ColBounds[nd.rank], nd.plan.ColBounds[nd.rank+1]
		self, other, hyper = nd.v, nd.u, nd.hv
		ratings, send, exp, seg = nd.rt, nd.sendV, nd.expV, segV
		ord = nd.ordV
	} else {
		lo, hi = nd.plan.RowBounds[nd.rank], nd.plan.RowBounds[nd.rank+1]
		self, other, hyper = nd.u, nd.v, nd.hu
		ratings, send, exp, seg = nd.r, nd.sendU, nd.expU, segU
		ord = nd.ordU
	}
	tag := itemTag(iter, side)

	var coals []*comm.Coalescer
	if !nd.opt.OneSided {
		coals = make([]*comm.Coalescer, nd.ranks)
		for dst := 0; dst < nd.ranks; dst++ {
			if dst != nd.rank {
				coals[dst] = comm.NewCoalescer(nd.c, dst, tag, nd.opt.BufferSize)
			}
		}
	}

	var firstSend time.Time
	sendItem := func(item int) error {
		dests := send[item-lo]
		if len(dests) == 0 {
			return nil
		}
		if firstSend.IsZero() {
			firstSend = time.Now()
		}
		row := self.Row(item)
		if nd.opt.OneSided {
			for _, dst := range dests {
				nd.win.Put(int(dst), seg, int64(item*nd.k), row, tag)
			}
		} else {
			binary.LittleEndian.PutUint32(nd.recBuf, uint32(item))
			for i, x := range row {
				binary.LittleEndian.PutUint64(nd.recBuf[4+8*i:], math.Float64bits(x))
			}
			for _, dst := range dests {
				if err := coals[dst].Append(nd.recBuf); err != nil {
					return err
				}
			}
		}
		nd.stats.ItemsSent += int64(len(dests))
		return nil
	}

	update := func(ws *core.Workspace, w *sched.Worker, item int) {
		cols, vals := ratings.Row(item)
		kern := cfg.SelectKernel(len(cols))
		nd.kernelCounts[kern].Add(1)
		core.UpdateItem(ws, kern, cfg, cols, vals, other, hyper,
			ws.ItemStream(cfg.Seed, iter, side, item), nd.pool, w, self.Row(item))
	}

	computeStart := time.Now()
	if nd.pool != nil {
		// Threaded path: all updates finish before the send sweep, so the
		// sweep is exposed communication, not compute — it counts toward
		// neither ComputeTime nor OverlapTime. Workers walk schedule
		// positions; a contiguous position block holds locality-adjacent
		// items.
		nd.pool.ParallelFor(0, len(ord), itemGrain, func(w *sched.Worker, a, b int) {
			for pos := a; pos < b; pos++ {
				ws := nd.wsArena.Get(w)
				update(ws, w, int(ord[pos]))
				nd.wsArena.Put(w, ws)
			}
		})
		nd.stats.ComputeTime += time.Since(computeStart)
		for item := lo; item < hi; item++ {
			if err := sendItem(item); err != nil {
				return err
			}
		}
		if err := nd.flushAll(coals); err != nil {
			return err
		}
	} else {
		// Interleaved path: sends overlap the remaining item updates;
		// OverlapTime is the compute tail spent with sends in flight. Each
		// item is sent right after its update, so the walk order also
		// spreads the sends of locality-adjacent items across the phase.
		for _, it32 := range ord {
			item := int(it32)
			update(nd.ws, nil, item)
			if err := sendItem(item); err != nil {
				return err
			}
		}
		if err := nd.flushAll(coals); err != nil {
			return err
		}
		computeEnd := time.Now()
		nd.stats.ComputeTime += computeEnd.Sub(computeStart)
		if !firstSend.IsZero() {
			nd.stats.OverlapTime += computeEnd.Sub(firstSend)
		}
	}

	t0 := time.Now()
	var err error
	if nd.opt.OneSided {
		if exp > 0 {
			nd.win.WaitNotify(tag, int64(exp))
		}
		nd.stats.GhostsRecv += int64(exp)
	} else {
		err = nd.recvGhosts(tag, exp, self)
	}
	nd.stats.WaitTime += time.Since(t0)
	return err
}

// flushAll drains the phase's coalescers (no-op in one-sided mode).
func (nd *Node) flushAll(coals []*comm.Coalescer) error {
	for _, co := range coals {
		if co != nil {
			if err := co.Flush(); err != nil {
				return err
			}
			nd.stats.Flushes += co.Flushes()
		}
	}
	return nil
}

// recvGhosts applies coalesced item records to the local replica until the
// expected count of the phase has arrived. A dead peer unwinds the wait
// with its RankFailedError instead of blocking forever.
func (nd *Node) recvGhosts(tag, expected int, dst *la.Matrix) error {
	recSize := 4 + 8*nd.k
	got := 0
	for got < expected {
		m, err := nd.c.RecvE(comm.AnySource, tag)
		if err != nil {
			return err
		}
		for off := 0; off+recSize <= len(m.Data); off += recSize {
			idx := int(binary.LittleEndian.Uint32(m.Data[off:]))
			row := dst.Row(idx)
			for i := range row {
				row[i] = math.Float64frombits(binary.LittleEndian.Uint64(m.Data[off+4+8*i:]))
			}
			got++
		}
	}
	nd.stats.GhostsRecv += int64(got)
	return nil
}

// evaluate scores the test set: per-rank partial squared errors — chunked
// over the rank's thread pool through the fixed EvalChunk tree when one
// exists — combined with the deterministic allreduce, so every rank
// records the identical RMSE trace at any thread count.
func (nd *Node) evaluate(iter int) error {
	collect := iter >= nd.cfg.Burnin
	var runAll func(n int, run func(c int))
	if nd.pool != nil {
		runAll = func(n int, run func(c int)) {
			nd.pool.ParallelFor(0, n, 1, func(_ *sched.Worker, lo, hi int) {
				for c := lo; c < hi; c++ {
					run(c)
				}
			})
		}
	}
	seS, seA, n := nd.pred.PartialUpdatePar(nd.u, nd.v, collect, runAll)
	// The vector's fourth element is the membership drain flag: rank 0
	// raises it when pending joins await admission, and the reduction
	// delivers it to every rank at the same iteration — the evaluation
	// allreduce is the one point all ranks pass in lockstep, so no
	// out-of-band message ordering can make ranks disagree about the
	// drain boundary. The element is always present (and 0 outside
	// membership runs), so it is chain-inert: the RMSE math below never
	// reads it.
	drain := 0.0
	if nd.rank == 0 && nd.opt.Membership != nil && iter >= nd.opt.GrowAtIter && nd.opt.Membership.HasPending() {
		drain = 1
	}
	t0 := time.Now()
	tot, err := nd.allreduce([]float64{seS, seA, n, drain})
	nd.stats.WaitTime += time.Since(t0)
	if err != nil {
		return err
	}
	nd.drainPending = tot[3] != 0
	sr, ar := math.NaN(), math.NaN()
	if tot[2] > 0 {
		sr, ar = math.Sqrt(tot[0]/tot[2]), math.Sqrt(tot[1]/tot[2])
	}
	nd.res.SampleRMSE = append(nd.res.SampleRMSE, sr)
	nd.res.AvgRMSE = append(nd.res.AvgRMSE, ar)
	return nil
}

// gatherSide completes the local replica of one side: every rank
// broadcasts its owned row range (rows nobody rated were never ghosted).
func (nd *Node) gatherSide(x *la.Matrix, bounds []int) error {
	lo, hi := bounds[nd.rank], bounds[nd.rank+1]
	mine := encodeFloats(x.Data[lo*nd.k : hi*nd.k])
	blobs, err := nd.c.AllgatherE(mine)
	if err != nil {
		return err
	}
	for r, b := range blobs {
		decodeFloatsInto(x.Data[bounds[r]*nd.k:bounds[r+1]*nd.k], b)
	}
	return nil
}

// gatherIntervals reassembles the posterior predictive intervals in global
// test order from the per-rank predictors.
func (nd *Node) gatherIntervals() ([]core.Interval, error) {
	local := nd.pred.Intervals()
	blobs, err := nd.c.AllgatherE(encodeIntervals(local))
	if err != nil {
		return nil, err
	}
	queues := make([][]core.Interval, nd.ranks)
	total := 0
	for r, b := range blobs {
		queues[r] = decodeIntervals(b)
		total += len(queues[r])
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]core.Interval, 0, total)
	next := make([]int, nd.ranks)
	for _, e := range nd.test {
		r := nd.rowOwner[e.Row]
		if next[r] < len(queues[r]) {
			out = append(out, queues[r][next[r]])
			next[r]++
		}
	}
	return out, nil
}

// Run executes the configured Gibbs iterations and returns the (rank-
// identical) result plus this rank's statistics. When a peer dies
// mid-run (and a failure detector is attached), Run returns a
// comm.RankFailedError instead of hanging — the caller resumes from the
// last checkpoint with the surviving ranks.
func (nd *Node) Run() (*core.Result, *Stats, error) {
	if nd.opt.OneSided {
		if nd.opt.SuspicionTimeout > 0 {
			return nil, nil, fmt.Errorf("dist: failure detection is incompatible with -onesided (notify waits bypass the error-returning receives)")
		}
		nd.win = comm.NewOneSided(nd.c)
		nd.win.Register(segU, nd.u.Data)
		nd.win.Register(segV, nd.v.Data)
		defer nd.win.Close()
	}
	if nd.opt.SuspicionTimeout > 0 {
		det := comm.StartDetectorView(nd.c, nd.opt.HeartbeatInterval, nd.opt.SuspicionTimeout, nd.opt.Members, nd.opt.Suspicions)
		defer det.Stop()
	}
	if nd.opt.ThreadsPerRank > 1 {
		nd.pool = sched.NewPool(nd.opt.ThreadsPerRank)
		defer nd.pool.Close()
	}

	start := time.Now()
	for it := nd.firstIter; it < nd.cfg.Iters; it++ {
		// Movies first, then users (Algorithm 1). The user phase reads the
		// movie ghosts of this iteration, so each phase ends with a wait
		// for its expected ghost count.
		if err := nd.sampleHyper(it, core.SideV, nd.v, nd.plan.ColBounds, nd.hv); err != nil {
			return nil, nil, err
		}
		if err := nd.updateSide(it, core.SideV); err != nil {
			return nil, nil, err
		}
		if err := nd.sampleHyper(it, core.SideU, nd.u, nd.plan.RowBounds, nd.hu); err != nil {
			return nil, nil, err
		}
		if err := nd.updateSide(it, core.SideU); err != nil {
			return nil, nil, err
		}
		if err := nd.evaluate(it); err != nil {
			return nil, nil, err
		}
		drained := nd.drainPending
		nd.drainPending = false
		wrote := false
		if nd.opt.CheckpointDir != "" && nd.opt.CheckpointEvery > 0 && (it+1)%nd.opt.CheckpointEvery == 0 {
			if err := nd.writeCheckpoint(it + 1); err != nil {
				return nil, nil, err
			}
			wrote = true
		}
		if drained && !wrote {
			// A drain boundary always seals a manifest, cadence-aligned or
			// not: the grown cluster resumes from exactly this iteration.
			if err := nd.writeCheckpoint(it + 1); err != nil {
				return nil, nil, err
			}
		}
		// The hook runs after the iteration's checkpoint (if any) is
		// sealed, so a hook-injected kill at iteration t tests recovery
		// from exactly the latest manifest ≤ t+1 — and, at a drain
		// iteration, a kill lands between the sealed manifest and the
		// view exchange (the proposed-but-unsealed window).
		if nd.opt.OnIteration != nil {
			nd.opt.OnIteration(nd.rank, it)
		}
		if nd.opt.IterDelay > 0 {
			time.Sleep(nd.opt.IterDelay)
		}
		if drained {
			view, err := nd.exchangeView()
			if err != nil {
				return nil, nil, err
			}
			return nil, nil, &ViewChange{NextIter: it + 1, View: view}
		}
	}

	if err := nd.gatherSide(nd.u, nd.plan.RowBounds); err != nil {
		return nil, nil, err
	}
	if err := nd.gatherSide(nd.v, nd.plan.ColBounds); err != nil {
		return nil, nil, err
	}
	ivs, err := nd.gatherIntervals()
	if err != nil {
		return nil, nil, err
	}

	kc, err := nd.allreduce([]float64{
		float64(nd.kernelCounts[0].Load()),
		float64(nd.kernelCounts[1].Load()),
		float64(nd.kernelCounts[2].Load()),
	})
	if err != nil {
		return nil, nil, err
	}
	for i := range nd.res.KernelCounts {
		nd.res.KernelCounts[i] = nd.ckBase[i] + int64(kc[i])
	}

	u, v := nd.u, nd.v
	if nd.plan.Reordered {
		u, v = permuteBack(nd.u, nd.plan.RowPerm), permuteBack(nd.v, nd.plan.ColPerm)
		for t := range ivs {
			ivs[t].Row = nd.plan.RowPerm[ivs[t].Row]
			ivs[t].Col = nd.plan.ColPerm[ivs[t].Col]
		}
	}

	nd.res.Elapsed = time.Since(start)
	nd.res.U, nd.res.V = u, v
	nd.res.Iters = nd.cfg.Iters
	nd.res.ItemUpdates = int64(nd.cfg.Iters) * int64(nd.r.M+nd.r.N)
	nd.res.Intervals = ivs
	nd.stats.Comm = nd.c.Stats()
	st := nd.stats
	return &nd.res, &st, nil
}

// ViewChange is the control "error" Run returns when the cluster drains
// for a sealed membership change: every rank checkpointed at NextIter,
// agreed on the boundary through the drain flag carried in the
// evaluation allreduce, and received the proposed next view from rank
// 0. The caller tears down the fabric, re-meshes as View, and resumes
// from the NextIter manifest.
type ViewChange struct {
	// NextIter is the sealed manifest's iteration — the first iteration
	// the re-meshed cluster executes.
	NextIter int
	// View is the proposed next membership view.
	View comm.View
}

func (e *ViewChange) Error() string {
	return fmt.Sprintf("dist: view change to epoch %d (%d ranks) at iteration %d",
		e.View.Epoch, len(e.View.Members), e.NextIter)
}

// exchangeView distributes rank 0's proposed next view to every rank of
// the draining cluster (rank 0 owns the Membership state machine; the
// others learn the view through the broadcast).
func (nd *Node) exchangeView() (comm.View, error) {
	var blob []byte
	if nd.rank == 0 {
		if nd.opt.Membership == nil {
			return comm.View{}, fmt.Errorf("dist: drain flag raised without a membership state machine on rank 0")
		}
		b, err := json.Marshal(nd.opt.Membership.Propose())
		if err != nil {
			return comm.View{}, err
		}
		blob = b
	}
	out, err := nd.c.BcastE(0, blob)
	if err != nil {
		return comm.View{}, err
	}
	var v comm.View
	if err := json.Unmarshal(out, &v); err != nil {
		return comm.View{}, fmt.Errorf("dist: malformed view broadcast: %w", err)
	}
	return v, nil
}

// permuteBack maps a factor matrix from plan index space to the original
// ordering: perm[planPos] = originalIndex.
func permuteBack(x *la.Matrix, perm []int32) *la.Matrix {
	out := la.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(int(perm[i])), x.Row(i))
	}
	return out
}

// Plan re-exports the plan a node runs with (useful for tooling).
func (nd *Node) Plan() *partition.Plan { return nd.plan }
