package dist

import (
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/la"
)

// membership_test.go pins the elastic-growth contract: a cluster that
// admits joiners mid-run (grow), re-admits a previously convicted rank
// under a fresh incarnation (rejoin), or shrinks and then regrows, must
// finish with U/V, kernel counts, and the full RMSE traces bitwise
// identical to a fresh cluster of the final size started from the
// sealing manifest. All runs ride the seeded FaultFabric, so every
// failure, drain, and admission is deterministic by seed.

// growHook files one join request from rank 0's iteration seam of round
// 0 (the production path: a joiner's TCP request lands in the
// coordinator's Membership while its sampler runs).
func growHook(addr string, atIter int) MembershipHook {
	return func(round int, _ comm.View, _ *comm.FaultFabric, opt *Options, mem *comm.Membership) {
		if round != 0 {
			opt.OnIteration = nil
			return
		}
		opt.OnIteration = func(rank, iter int) {
			if rank == 0 && iter == atIter {
				if _, err := mem.RequestJoin(addr); err != nil {
					panic(err)
				}
			}
		}
	}
}

// assertBitEqual pins the full bit-exactness contract between an elastic
// run and its fresh-restart reference.
func assertBitEqual(t *testing.T, got, want *core.Result, iters int) {
	t.Helper()
	if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
		t.Fatal("grown chain differs from a fresh restart from the sealing manifest")
	}
	if got.KernelCounts != want.KernelCounts {
		t.Fatalf("kernel counts %v != %v", got.KernelCounts, want.KernelCounts)
	}
	if len(got.SampleRMSE) != iters || len(want.SampleRMSE) != iters {
		t.Fatalf("trace lengths %d/%d, want %d", len(got.SampleRMSE), len(want.SampleRMSE), iters)
	}
	for i := range want.SampleRMSE {
		if got.SampleRMSE[i] != want.SampleRMSE[i] || got.AvgRMSE[i] != want.AvgRMSE[i] {
			t.Fatalf("iter %d: RMSE (%v, %v) != fresh restart (%v, %v)",
				i, got.SampleRMSE[i], got.AvgRMSE[i], want.SampleRMSE[i], want.AvgRMSE[i])
		}
	}
}

func TestMembershipGrowMatchesFreshResume(t *testing.T) {
	cases := []struct {
		name    string
		threads int
	}{
		{"plain", 1},
		{"threaded", 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prob := problem(t, 17)
			cfg := testConfig()
			cfg.Iters = 8
			dir := t.TempDir()
			opt := Options{
				Ranks: 2, ThreadsPerRank: tc.threads,
				CheckpointDir: dir, CheckpointEvery: 3,
				SuspicionTimeout: 400 * time.Millisecond,
			}
			// Join filed at iteration 2 → the drain flag rides iteration
			// 3's evaluation allreduce → the cluster seals the grown view
			// at the iteration-4 manifest (written by the 2-rank cluster).
			got, _, view, err := RunInProcMembership(cfg, prob, opt, growHook("joiner-a", 2))
			if err != nil {
				t.Fatal(err)
			}
			if view.Epoch != 1 || len(view.Members) != 3 {
				t.Fatalf("final view %+v, want epoch 1 with 3 members", view)
			}
			if !view.Contains(comm.Member{Addr: "joiner-a", Incarnation: 1}) {
				t.Fatalf("final view %+v misses the joiner", view)
			}

			man := readManifest(t, dir, 4)
			if man.Ranks != 2 {
				t.Fatalf("sealing manifest written by %d ranks, want 2", man.Ranks)
			}
			base, err := LoadDistCheckpoint(dir, man, prob.Test)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := ResumeInProc(cfg, prob, base, Options{Ranks: 3, ThreadsPerRank: tc.threads})
			if err != nil {
				t.Fatal(err)
			}
			assertBitEqual(t, got, want, cfg.Iters)
		})
	}
}

// TestMembershipRejoinWithFreshIncarnation kills a rank, lets the
// survivors shrink and resume, then re-admits the dead rank's address:
// it must come back at incarnation 2 (so survivors' conviction of
// incarnation 1 cannot touch it), and the grown chain must match a
// fresh 3-rank restart from the rejoin's sealing manifest.
func TestMembershipRejoinWithFreshIncarnation(t *testing.T) {
	prob := problem(t, 19)
	cfg := testConfig()
	cfg.Iters = 10
	dir := t.TempDir()
	opt := Options{
		Ranks: 3, CheckpointDir: dir, CheckpointEvery: 2,
		SuspicionTimeout: 400 * time.Millisecond,
	}
	hook := func(round int, _ comm.View, fb *comm.FaultFabric, opt *Options, mem *comm.Membership) {
		switch round {
		case 0: // kill rank 2 after iteration 3 (manifest 4 already sealed)
			opt.OnIteration = func(rank, iter int) {
				if rank == 2 && iter == 3 {
					fb.Kill(rank)
				}
			}
		case 1: // the 2-rank survivor round re-admits the dead address
			opt.OnIteration = func(rank, iter int) {
				if rank == 0 && iter == 6 {
					if _, err := mem.RequestJoin("inproc-2"); err != nil {
						panic(err)
					}
				}
			}
		default:
			opt.OnIteration = nil
		}
	}
	got, _, view, err := RunInProcMembership(cfg, prob, opt, hook)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs: 0 (fresh) → 1 (failure shrink) → 2 (rejoin sealed).
	if view.Epoch != 2 || len(view.Members) != 3 {
		t.Fatalf("final view %+v, want epoch 2 with 3 members", view)
	}
	if !view.Contains(comm.Member{Addr: "inproc-2", Incarnation: 2}) {
		t.Fatalf("final view %+v must hold inproc-2 at incarnation 2", view)
	}

	man := readManifest(t, dir, 8)
	if man.Ranks != 2 {
		t.Fatalf("sealing manifest written by %d ranks, want 2", man.Ranks)
	}
	base, err := LoadDistCheckpoint(dir, man, prob.Test)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ResumeInProc(cfg, prob, base, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, got, want, cfg.Iters)
}

// TestMembershipShrinkThenRegrow walks the full elastic arc
// 2 → 3 → 2 → 4: grow by one joiner, lose a rank, then admit two joins
// racing the same epoch (the dead rank's address rejoining plus a brand
// new one) — and the final 4-rank chain must match a fresh 4-rank
// restart from the last sealing manifest.
func TestMembershipShrinkThenRegrow(t *testing.T) {
	prob := problem(t, 23)
	cfg := testConfig()
	cfg.Iters = 12
	dir := t.TempDir()
	opt := Options{
		Ranks: 2, CheckpointDir: dir, CheckpointEvery: 2,
		SuspicionTimeout: 400 * time.Millisecond,
	}
	hook := func(round int, _ comm.View, fb *comm.FaultFabric, opt *Options, mem *comm.Membership) {
		switch round {
		case 0: // grow: joiner-a admitted at the iteration-4 boundary
			opt.OnIteration = func(rank, iter int) {
				if rank == 0 && iter == 2 {
					if _, err := mem.RequestJoin("joiner-a"); err != nil {
						panic(err)
					}
				}
			}
		case 1: // shrink: inproc-1 dies after iteration 5 (manifest 6 sealed)
			opt.OnIteration = func(rank, iter int) {
				if rank == 1 && iter == 5 {
					fb.Kill(rank)
				}
			}
		case 2: // regrow: two joins race the same epoch
			opt.OnIteration = func(rank, iter int) {
				if rank == 0 && iter == 7 {
					if _, err := mem.RequestJoin("inproc-1"); err != nil {
						panic(err)
					}
					if _, err := mem.RequestJoin("joiner-b"); err != nil {
						panic(err)
					}
				}
			}
		default:
			opt.OnIteration = nil
		}
	}
	got, _, view, err := RunInProcMembership(cfg, prob, opt, hook)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs: 0 → 1 (grow) → 2 (shrink) → 3 (double admission).
	if view.Epoch != 3 || len(view.Members) != 4 {
		t.Fatalf("final view %+v, want epoch 3 with 4 members", view)
	}
	// Pending joins are admitted in sorted order, independent of which
	// request reached the coordinator first.
	wantMembers := []comm.Member{
		{Addr: "inproc-0", Incarnation: 1},
		{Addr: "joiner-a", Incarnation: 1},
		{Addr: "inproc-1", Incarnation: 2},
		{Addr: "joiner-b", Incarnation: 1},
	}
	for i, mb := range wantMembers {
		if view.Members[i] != mb {
			t.Fatalf("final view %+v, want members %+v", view.Members, wantMembers)
		}
	}

	man := readManifest(t, dir, 9)
	if man.Ranks != 2 {
		t.Fatalf("sealing manifest written by %d ranks, want 2", man.Ranks)
	}
	base, err := LoadDistCheckpoint(dir, man, prob.Test)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ResumeInProc(cfg, prob, base, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, got, want, cfg.Iters)
}

// TestMembershipShardNativeGrow runs the grow path over the
// shard-native data plane: after the seal, the admitted rank takes its
// share of the .bcsr shards (AssignPanels over the grown rank count),
// and the chain must match a fresh 3-rank shard-native restart from the
// sealing manifest.
func TestMembershipShardNativeGrow(t *testing.T) {
	path, _ := writeShardedFile(t, 37, 400)
	cfg := testConfig()
	cfg.Iters = 8
	dir := t.TempDir()
	opt := Options{
		Ranks: 2, CheckpointDir: dir, CheckpointEvery: 3,
		SuspicionTimeout: 400 * time.Millisecond,
	}
	got, _, view, err := RunInProcMembershipShards(cfg, path, 0.2, opt, growHook("joiner-a", 2))
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 1 || len(view.Members) != 3 {
		t.Fatalf("final view %+v, want epoch 1 with 3 members", view)
	}

	man := readManifest(t, dir, 4)
	if man.Ranks != 2 {
		t.Fatalf("sealing manifest written by %d ranks, want 2", man.Ranks)
	}
	want, _, err := ResumeInProcShards(cfg, path, 0.2, man, dir, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, got, want, cfg.Iters)
}

// TestMembershipCoordinatorDiesMidProposal kills rank 0 in the window
// between the drain checkpoint and the view exchange — the proposed
// view is never sealed. The survivors shrink, the pending join survives
// in the membership state, and the takeover coordinator re-proposes and
// seals it on the next boundary.
func TestMembershipCoordinatorDiesMidProposal(t *testing.T) {
	prob := problem(t, 29)
	cfg := testConfig()
	cfg.Iters = 10
	dir := t.TempDir()
	opt := Options{
		Ranks: 3, CheckpointDir: dir, CheckpointEvery: 2,
		SuspicionTimeout: 400 * time.Millisecond,
	}
	hook := func(round int, _ comm.View, fb *comm.FaultFabric, opt *Options, mem *comm.Membership) {
		if round != 0 {
			opt.OnIteration = nil
			return
		}
		opt.OnIteration = func(rank, iter int) {
			if rank != 0 {
				return
			}
			if iter == 3 {
				if _, err := mem.RequestJoin("late-0"); err != nil {
					panic(err)
				}
			}
			if iter == 4 {
				// Iteration 4 is the drain boundary: its manifest (iter 5)
				// is sealed before OnIteration runs, and the view exchange
				// happens after — so this kill lands exactly in the
				// proposed-but-unsealed window.
				fb.Kill(rank)
			}
		}
	}
	got, _, view, err := RunInProcMembership(cfg, prob, opt, hook)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs: 0 → 1 (coordinator's failure shrink) → 2 (re-proposed seal).
	if view.Epoch != 2 || len(view.Members) != 3 {
		t.Fatalf("final view %+v, want epoch 2 with 3 members", view)
	}
	wantAddrs := []string{"inproc-1", "inproc-2", "late-0"}
	for i, a := range wantAddrs {
		if view.Members[i].Addr != a {
			t.Fatalf("final members %+v, want addresses %v", view.Members, wantAddrs)
		}
	}

	// The drain checkpoint the dead coordinator forced is sealed (iter 5,
	// 3 ranks); the survivors' re-proposal sealed at iter 6 (2 ranks) and
	// the grown cluster resumed from it.
	if man := readManifest(t, dir, 5); man.Ranks != 3 {
		t.Fatalf("drain manifest written by %d ranks, want 3", man.Ranks)
	}
	man := readManifest(t, dir, 6)
	if man.Ranks != 2 {
		t.Fatalf("sealing manifest written by %d ranks, want 2", man.Ranks)
	}
	base, err := LoadDistCheckpoint(dir, man, prob.Test)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ResumeInProc(cfg, prob, base, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, got, want, cfg.Iters)
}

// TestMembershipDuplicateJoinAdmittedOnce pins the lost-reply retransmit
// case end to end: the same address asking twice is admitted exactly
// once, at incarnation 1.
func TestMembershipDuplicateJoinAdmittedOnce(t *testing.T) {
	prob := problem(t, 31)
	cfg := testConfig()
	cfg.Iters = 6
	opt := Options{
		Ranks: 2, CheckpointDir: t.TempDir(), CheckpointEvery: 2,
		SuspicionTimeout: 400 * time.Millisecond,
	}
	hook := func(round int, _ comm.View, _ *comm.FaultFabric, opt *Options, mem *comm.Membership) {
		if round != 0 {
			opt.OnIteration = nil
			return
		}
		opt.OnIteration = func(rank, iter int) {
			if rank == 0 && iter == 2 {
				for i := 0; i < 2; i++ {
					if _, err := mem.RequestJoin("dup-joiner"); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	_, _, view, err := RunInProcMembership(cfg, prob, opt, hook)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Members) != 3 {
		t.Fatalf("final view has %d members, want 3 (duplicate join must not double-admit)", len(view.Members))
	}
	if !view.Contains(comm.Member{Addr: "dup-joiner", Incarnation: 1}) {
		t.Fatalf("final view %+v misses dup-joiner at incarnation 1", view)
	}
}

// TestMembershipGrowAtIterDefersAdmission pins the -grow-at-iter hook:
// a join filed at iteration 1 must not drain before the configured
// boundary.
func TestMembershipGrowAtIterDefersAdmission(t *testing.T) {
	prob := problem(t, 41)
	cfg := testConfig()
	cfg.Iters = 8
	dir := t.TempDir()
	opt := Options{
		Ranks: 2, CheckpointDir: dir, CheckpointEvery: 2,
		SuspicionTimeout: 400 * time.Millisecond,
		GrowAtIter:       5,
	}
	_, _, view, err := RunInProcMembership(cfg, prob, opt, growHook("joiner-a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 1 || len(view.Members) != 3 {
		t.Fatalf("final view %+v, want epoch 1 with 3 members", view)
	}
	// The first drain-eligible evaluation is iteration 5, so the seal
	// lands on the iteration-6 manifest — still written by 2 ranks.
	if man := readManifest(t, dir, 6); man.Ranks != 2 {
		t.Fatalf("sealing manifest written by %d ranks, want 2", man.Ranks)
	}
}
