package dist

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// shard_test.go pins the shard-native data plane: a virtual cluster
// whose ranks load only their own .bcsr shards (plus the startup
// exchanges) must sample the exact chain of a cluster where every rank
// decodes the whole file — and must actually touch only its own shards
// while doing it.

// writeShardedFile renders the Small benchmark as a many-shard .bcsr.
func writeShardedFile(t *testing.T, seed uint64, shardNNZ int) (path string, full *sparse.CSR) {
	t.Helper()
	ds := datagen.Generate(datagen.Small(seed))
	path = filepath.Join(t.TempDir(), "r.bcsr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteBinarySharded(f, ds.R, shardNNZ); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ds.R
}

// runFullLoad runs a virtual cluster where every rank holds the whole
// matrix, under the panel-aligned plan (the .bcsr full-load path).
func runFullLoad(t *testing.T, cfg core.Config, path string, testFrac float64, seed uint64, opt Options) (*core.Result, *partition.Plan, []sparse.Entry) {
	t.Helper()
	opt = opt.normalized()
	mp, err := sparse.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	fullR, err := mp.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	train, test := sparse.SplitTrainTest(fullR, testFrac, seed)
	prob := core.NewProblem(train, test)
	plan, planTest, err := BuildPlanPanels(prob, partition.PanelsOf(mp), opt)
	if err != nil {
		t.Fatal(err)
	}
	fab := comm.NewFabric(opt.Ranks)
	defer fab.Close()
	results := make([]*core.Result, opt.Ranks)
	errs := make([]error, opt.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < opt.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			node, err := NewNode(fab.Comms()[r], cfg, plan, planTest, opt)
			if err != nil {
				errs[r] = err
				return
			}
			results[r], _, errs[r] = node.Run()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("full-load rank %d: %v", r, err)
		}
	}
	return results[0], plan, planTest
}

// runShardNative runs the virtual cluster through LoadShardsLocal +
// NewNodeLocal and returns rank 0's result plus each rank's problem.
func runShardNative(t *testing.T, cfg core.Config, path string, testFrac float64, seed uint64, opt Options) (*core.Result, []*ShardProblem) {
	t.Helper()
	opt = opt.normalized()
	fab := comm.NewFabric(opt.Ranks)
	defer fab.Close()
	results := make([]*core.Result, opt.Ranks)
	probs := make([]*ShardProblem, opt.Ranks)
	errs := make([]error, opt.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < opt.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := fab.Comms()[r]
			sp, err := LoadShardsLocal(c, path, testFrac, seed, opt)
			if err != nil {
				errs[r] = err
				return
			}
			probs[r] = sp
			node, err := NewNodeLocal(c, cfg, sp.Plan, sp.RT, sp.Test, opt)
			if err != nil {
				errs[r] = err
				return
			}
			results[r], _, errs[r] = node.Run()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("shard-native rank %d: %v", r, err)
		}
	}
	return results[0], probs
}

func TestShardNativeChainBitIdenticalToFullLoad(t *testing.T) {
	path, _ := writeShardedFile(t, 17, 400) // ~30 shards for Small's 12k ratings
	cfg := testConfig()
	for _, ranks := range []int{1, 2, 4} {
		opt := Options{Ranks: ranks}
		want, _, _ := runFullLoad(t, cfg, path, 0.2, 17, opt)
		got, _ := runShardNative(t, cfg, path, 0.2, 17, opt)

		if len(got.SampleRMSE) != len(want.SampleRMSE) {
			t.Fatalf("ranks=%d: trace lengths differ", ranks)
		}
		for i := range want.SampleRMSE {
			if got.SampleRMSE[i] != want.SampleRMSE[i] || got.AvgRMSE[i] != want.AvgRMSE[i] {
				t.Fatalf("ranks=%d iter %d: RMSE (%v, %v) != full-load (%v, %v)",
					ranks, i, got.SampleRMSE[i], got.AvgRMSE[i], want.SampleRMSE[i], want.AvgRMSE[i])
			}
		}
		for i := range want.U.Data {
			if got.U.Data[i] != want.U.Data[i] {
				t.Fatalf("ranks=%d: U[%d] differs", ranks, i)
			}
		}
		for i := range want.V.Data {
			if got.V.Data[i] != want.V.Data[i] {
				t.Fatalf("ranks=%d: V[%d] differs", ranks, i)
			}
		}
	}
}

// TestShardNativeReadsOnlyOwnShards is the acceptance counter: each
// rank's mapped reader must have touched exactly the shards covering
// its own row range — not the whole file.
func TestShardNativeReadsOnlyOwnShards(t *testing.T) {
	path, full := writeShardedFile(t, 23, 400)
	cfg := testConfig()
	cfg.Iters, cfg.Burnin = 2, 1
	const ranks = 4
	_, probs := runShardNative(t, cfg, path, 0.2, 23, Options{Ranks: ranks})

	mp, err := sparse.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	totalShards := mp.Shards()
	if totalShards < 2*ranks {
		t.Fatalf("test needs several shards per rank, got %d for %d ranks", totalShards, ranks)
	}
	panels := partition.PanelsOf(mp)

	var touchedSum int64
	for r, sp := range probs {
		rowLo, rowHi := sp.Plan.RowBounds[r], sp.Plan.RowBounds[r+1]
		ownShards := 0
		var ownBytes int64
		for s := range panels.Lo {
			if panels.Lo[s] >= rowLo && panels.Hi[s] <= rowHi {
				ownShards++
				ownBytes += int64(panels.Hi[s]-panels.Lo[s]+1)*8 + panels.NNZ[s]*12
			}
		}
		if sp.Shards != ownShards {
			t.Errorf("rank %d decoded %d shards, owns %d", r, sp.Shards, ownShards)
		}
		if sp.Load.ShardsTouched != int64(ownShards) {
			t.Errorf("rank %d touched %d shards, owns %d (of %d total)", r, sp.Load.ShardsTouched, ownShards, totalShards)
		}
		if sp.Load.PayloadBytesTouched != ownBytes {
			t.Errorf("rank %d touched %d payload bytes, own shards hold %d", r, sp.Load.PayloadBytesTouched, ownBytes)
		}
		touchedSum += sp.Load.ShardsTouched
	}
	if touchedSum != int64(totalShards) {
		t.Errorf("ranks together touched %d shards, file has %d", touchedSum, totalShards)
	}

	// And the reassembled per-rank slices must equal the global split's.
	train, test := sparse.SplitTrainTest(full, 0.2, 23)
	rt := train.Transpose()
	for r, sp := range probs {
		if len(sp.Test) != len(test) {
			t.Fatalf("rank %d has %d test entries, want %d", r, len(sp.Test), len(test))
		}
		for i := range test {
			if sp.Test[i] != test[i] {
				t.Fatalf("rank %d test entry %d differs", r, i)
			}
		}
		rowLo, rowHi := sp.Plan.RowBounds[r], sp.Plan.RowBounds[r+1]
		for i := rowLo; i < rowHi; i++ {
			gc, gv := sp.Plan.R.Row(i)
			wc, wv := train.Row(i)
			if len(gc) != len(wc) {
				t.Fatalf("rank %d train row %d: %d entries, want %d", r, i, len(gc), len(wc))
			}
			for k := range gc {
				if gc[k] != wc[k] || gv[k] != wv[k] {
					t.Fatalf("rank %d train row %d entry %d differs", r, i, k)
				}
			}
		}
		colLo, colHi := sp.Plan.ColBounds[r], sp.Plan.ColBounds[r+1]
		for j := colLo; j < colHi; j++ {
			gc, gv := sp.RT.Row(j)
			wc, wv := rt.Row(j)
			if len(gc) != len(wc) {
				t.Fatalf("rank %d rt col %d: %d raters, want %d", r, j, len(gc), len(wc))
			}
			for k := range gc {
				if gc[k] != wc[k] || gv[k] != wv[k] {
					t.Fatalf("rank %d rt col %d rater %d differs", r, j, k)
				}
			}
		}
	}
}

// TestShardNativeThreadedRanksBitIdentical: the shard-native path must
// compose with per-rank thread pools like the full path does.
func TestShardNativeThreadedRanksBitIdentical(t *testing.T) {
	path, _ := writeShardedFile(t, 29, 700)
	cfg := testConfig()
	base, _ := runShardNative(t, cfg, path, 0.2, 29, Options{Ranks: 2})
	threaded, _ := runShardNative(t, cfg, path, 0.2, 29, Options{Ranks: 2, ThreadsPerRank: 3})
	for i := range base.AvgRMSE {
		if base.AvgRMSE[i] != threaded.AvgRMSE[i] {
			t.Fatalf("iter %d: threaded shard-native diverges", i)
		}
	}
}

// TestLoadShardsLocalRejectsReorder: reordering needs the full matrix.
func TestLoadShardsLocalRejectsReorder(t *testing.T) {
	path, _ := writeShardedFile(t, 31, 500)
	fab := comm.NewFabric(1)
	defer fab.Close()
	if _, err := LoadShardsLocal(fab.Comms()[0], path, 0.2, 31, Options{Ranks: 1, Reorder: true}); err == nil {
		t.Fatal("reorder accepted by the shard-native loader")
	}
}
