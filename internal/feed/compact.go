package feed

import (
	"fmt"

	"repro/internal/sparse"
)

// Compact writes the log's pending records into a delta .bcsr shard at
// outPath through the sparse.Converter spill/sort pipeline with
// last-write-wins dedup: a pair rated twice in the log keeps the later
// rating, and the shard's canonical ascending-column panels mean a
// later sparse.MergeLastWins against the base matrix resolves re-rated
// base pairs the same way. The delta's row count is
// max(minRows, highest user + 1), so new users past the base matrix
// grow the result while a small delta still aligns with the base.
//
// Compact does not consume the log — call Truncate after the delta
// shard (and whatever depends on it) is safely durable. The log must
// have at least one record.
func (l *Log) Compact(outPath string, minRows, shardNNZ int) (sparse.ConvertStats, error) {
	if l.records == 0 {
		return sparse.ConvertStats{}, fmt.Errorf("feed: %s: nothing to compact", l.path)
	}
	if minRows < 1 {
		minRows = 1
	}
	rows := minRows
	if err := l.Scan(func(e sparse.Entry) error {
		if int(e.Row) >= rows {
			rows = int(e.Row) + 1
		}
		return nil
	}); err != nil {
		return sparse.ConvertStats{}, err
	}
	cv := sparse.Converter{ShardNNZ: shardNNZ, Dedup: sparse.DedupLast}
	return cv.ConvertEntries(rows, l.n, l.Scan, outPath)
}
