package feed

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func entries(triples ...[3]float64) []sparse.Entry {
	es := make([]sparse.Entry, len(triples))
	for i, t := range triples {
		es[i] = sparse.Entry{Row: int32(t[0]), Col: int32(t[1]), Val: t[2]}
	}
	return es
}

func scanAll(t *testing.T, l *Log) []sparse.Entry {
	t.Helper()
	var got []sparse.Entry
	if err := l.Scan(func(e sparse.Entry) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ratings.log")
	l, err := OpenLog(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	b1 := entries([3]float64{0, 1, 4.5}, [3]float64{2, 0, 3})
	b2 := entries([3]float64{7, 4, 1.5}) // user past any base M: allowed
	if err := l.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(b2); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 3 {
		t.Fatalf("records = %d, want 3", l.Records())
	}
	got := scanAll(t, l)
	want := append(append([]sparse.Entry(nil), b1...), b2...)
	if len(got) != len(want) {
		t.Fatalf("scan returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything still there, appends continue.
	l, err = OpenLog(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Records() != 3 || l.RecoveredBytes() != 0 {
		t.Fatalf("reopen: records %d recovered %d", l.Records(), l.RecoveredBytes())
	}
	if err := l.Append(entries([3]float64{1, 1, 2})); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, l); len(got) != 4 || got[3].Val != 2 {
		t.Fatalf("post-reopen scan: %+v", got)
	}
}

func TestLogAppendRejects(t *testing.T) {
	l, err := OpenLog(filepath.Join(t.TempDir(), "r.log"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cases := map[string][]sparse.Entry{
		"negative user": entries([3]float64{-1, 0, 1}),
		"item range":    entries([3]float64{0, 3, 1}),
		"non-finite":    {{Row: 0, Col: 0, Val: math.Inf(1)}},
	}
	for name, es := range cases {
		if err := l.Append(es); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if l.Records() != 0 {
		t.Fatalf("rejected batches must write nothing, records = %d", l.Records())
	}
	if err := l.Append(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// buildLogFile writes a clean two-frame log (2 + 1 records) and returns
// its bytes. Frame 1 spans [18, 58), frame 2 spans [58, 82).
func buildLogFile(t *testing.T, dir string) []byte {
	t.Helper()
	path := filepath.Join(dir, "clean.log")
	l, err := OpenLog(path, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entries([3]float64{0, 1, 4}, [3]float64{3, 2, 2})); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entries([3]float64{5, 8, 1})); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// 18-byte header + (8 + 2*16) + (8 + 1*16)
	if len(data) != 82 {
		t.Fatalf("clean log is %d bytes, expected 82", len(data))
	}
	return data
}

// TestLogTornTailRecovery: every possible crash point inside the final
// frame — a lone partial frame header, a full header with missing
// payload, payload one byte short — recovers to the acknowledged
// prefix, byte-accurately reporting what was dropped.
func TestLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	data := buildLogFile(t, dir)
	for _, cut := range []int{58 + 3, 58 + 8, 82 - 1} {
		name := fmt.Sprintf("cut@%d", cut)
		path := filepath.Join(dir, name+".log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(path, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if l.Records() != 2 {
			t.Errorf("%s: records = %d, want the 2 acknowledged ones", name, l.Records())
		}
		if want := int64(cut - 58); l.RecoveredBytes() != want {
			t.Errorf("%s: recovered %d bytes, want %d", name, l.RecoveredBytes(), want)
		}
		if fi, _ := os.Stat(path); fi.Size() != 58 {
			t.Errorf("%s: file is %d bytes after recovery, want 58", name, fi.Size())
		}
		// The log must be fully usable after recovery.
		if err := l.Append(entries([3]float64{1, 1, 7})); err != nil {
			t.Fatalf("%s: append after recovery: %v", name, err)
		}
		if got := scanAll(t, l); len(got) != 3 || got[2].Val != 7 {
			t.Errorf("%s: post-recovery scan %+v", name, got)
		}
		l.Close()
	}
}

// TestLogCorpusRejects: complete-but-wrong logs are refused with
// byte-accurate errors, mirroring the .bcsr corpus style.
func TestLogCorpusRejects(t *testing.T) {
	dir := t.TempDir()
	data := buildLogFile(t, dir)
	flip := func(off int) []byte {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x01
		return mut
	}
	zeroCount := append([]byte(nil), data[:58]...)
	zeroCount = append(zeroCount, make([]byte, 8)...) // complete frame header declaring 0 records

	cases := map[string]struct {
		bytes []byte
		want  string
	}{
		"truncated header":  {data[:5], "log header truncated (5 of 18 bytes)"},
		"bad magic":         {flip(0), "not a rating log"},
		"crc-bad frame 1":   {flip(18 + 8), "frame at offset 18: payload CRC mismatch"},
		"crc-bad frame 2":   {flip(58 + 8 + 15), "frame at offset 58: payload CRC mismatch"},
		"zero-record frame": {zeroCount, "frame at offset 58 declares 0 records"},
	}
	for name, tc := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "-")+".log")
		if err := os.WriteFile(path, tc.bytes, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenLog(path, 9)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", name, err, tc.want)
		}
	}

	// Catalog-width mismatch on reopen.
	path := filepath.Join(dir, "dims.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenLog(path, 4)
	if err == nil || !strings.Contains(err.Error(), "log has 9 items, expected 4") {
		t.Errorf("catalog mismatch: %v", err)
	}
}

func TestLogEmptyFileInitializes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.log")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Records() != 0 || l.RecoveredBytes() != 0 {
		t.Fatalf("empty file: records %d recovered %d", l.Records(), l.RecoveredBytes())
	}
	if fi, _ := os.Stat(path); fi.Size() != 18 {
		t.Fatalf("header not written: %d bytes", fi.Size())
	}
}

func TestLogTruncateResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.log")
	l, err := OpenLog(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(entries([3]float64{0, 0, 1})); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Fatalf("records = %d after truncate", l.Records())
	}
	if err := l.Append(entries([3]float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, l); len(got) != 1 || got[0].Val != 3 {
		t.Fatalf("post-truncate scan %+v", got)
	}
}

func TestCompactLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(filepath.Join(dir, "c.log"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(entries(
		[3]float64{0, 1, 3},
		[3]float64{2, 0, 2},
		[3]float64{0, 1, 5}, // re-rated within the log: 5 must win
	)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entries([3]float64{6, 3, 1})); err != nil { // new user 6
		t.Fatal(err)
	}
	out := filepath.Join(dir, "delta.bcsr")
	stats, err := l.Compact(out, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.M != 7 || stats.N != 4 || stats.NNZ != 3 {
		t.Fatalf("stats %+v, want 7x4 with 3 entries", stats)
	}
	got, err := sparse.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	want := csrOf(7, 4,
		[3]float64{0, 1, 5},
		[3]float64{2, 0, 2},
		[3]float64{6, 3, 1})
	if !sparse.Equal(want, got) {
		t.Fatal("compacted delta shard differs from last-write-wins expectation")
	}
	// Compaction leaves the log intact; Truncate is the caller's move.
	if l.Records() != 4 {
		t.Fatalf("compact consumed the log: records = %d", l.Records())
	}
}

func TestCompactEmptyLogRejected(t *testing.T) {
	l, err := OpenLog(filepath.Join(t.TempDir(), "e.log"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Compact(filepath.Join(t.TempDir(), "x.bcsr"), 1, 0); err == nil {
		t.Fatal("compacting an empty log must fail")
	}
}

// csrOf builds a CSR from (row, col, val) triples.
func csrOf(m, n int, triples ...[3]float64) *sparse.CSR {
	c := sparse.NewCOO(m, n, len(triples))
	for _, tr := range triples {
		c.Add(int(tr[0]), int(tr[1]), tr[2])
	}
	return c.ToCSR()
}
