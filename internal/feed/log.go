// Package feed is the ingest side of the continuous-training loop: an
// append-only, CRC-framed rating log that buffers incoming (user, item,
// value) triples durably until the trainer compacts them into a delta
// .bcsr shard (see Compact) and warm-starts the Gibbs chain over
// base+delta.
//
// On-disk layout (all integers little-endian):
//
//	magic   "BPMFFEED1\n"                    10 bytes
//	items   u64                               item-catalog width N; item
//	                                          ids must stay below it (the
//	                                          model's item factors pin the
//	                                          catalog — items cannot grow
//	                                          through the log, users can)
//	frames  repeated:
//	  count u32                               records in this frame, >= 1
//	  crc   u32                               IEEE CRC-32 of the payload
//	  payload count × (u32 user, u32 item, u64 float64-bits value)
//
// Append writes one frame with a single write(2) call and fsyncs before
// returning, so an acknowledged batch survives a crash. Recovery
// distinguishes the two ways a log can be damaged:
//
//   - A torn tail — the final frame's declared length extends past EOF,
//     the footprint of a crash mid-append. OpenLog truncates it away and
//     reports the dropped bytes via RecoveredBytes; every acknowledged
//     frame before it is intact.
//   - A corrupt frame — fully present but failing its CRC (bit rot, an
//     overwrite). That breaks the append-only model, so OpenLog refuses
//     the whole log rather than guess.
//
// The log has a single writer: one process owns Append/Compact/Truncate
// (the trainer, or its -ingest one-shot). Multi-process appends are out
// of scope.
package feed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/sparse"
)

const (
	logMagic  = "BPMFFEED1\n"
	headerLen = len(logMagic) + 8
	recordLen = 16
	frameHdr  = 8
	// maxFrameRecords bounds a frame's declared count so a corrupt
	// header can cost at most one bounded allocation, mirroring the
	// .bcsr reader's hostile-header stance. Append splits larger
	// batches.
	maxFrameRecords = 1 << 20
)

// Log is an append-only rating log. Not safe for concurrent use.
type Log struct {
	f         *os.File
	path      string
	n         int   // item-catalog width
	records   int64 // records in acknowledged (valid) frames
	size      int64 // offset past the last valid frame
	recovered int64 // bytes truncated from a torn tail at open
}

// OpenLog opens (or creates) the rating log at path for an item catalog
// of width n. Reopening an existing log validates its header and every
// complete frame, recovers a torn tail by truncating it, and positions
// the log for further appends.
func OpenLog(path string, n int) (*Log, error) {
	if n < 1 {
		return nil, fmt.Errorf("feed: item catalog width must be >= 1, got %d", n)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("feed: opening log: %w", err)
	}
	l := &Log{f: f, path: path, n: n}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recover validates the header and frames, initializing a fresh file
// and truncating a torn tail.
func (l *Log) recover() error {
	fi, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("feed: stat log: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		var hdr [headerLen]byte
		copy(hdr[:], logMagic)
		binary.LittleEndian.PutUint64(hdr[len(logMagic):], uint64(l.n))
		if _, err := l.f.Write(hdr[:]); err != nil {
			return fmt.Errorf("feed: writing log header: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("feed: syncing log header: %w", err)
		}
		l.size = int64(headerLen)
		return nil
	}
	if size < int64(headerLen) {
		return fmt.Errorf("feed: %s: log header truncated (%d of %d bytes)", l.path, size, headerLen)
	}
	br := bufio.NewReaderSize(io.NewSectionReader(l.f, 0, size), 1<<20)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("feed: reading log header: %w", err)
	}
	if string(hdr[:len(logMagic)]) != logMagic {
		return fmt.Errorf("feed: %s: not a rating log (magic %q)", l.path, hdr[:len(logMagic)])
	}
	if got := binary.LittleEndian.Uint64(hdr[len(logMagic):]); got != uint64(l.n) {
		return fmt.Errorf("feed: %s: log has %d items, expected %d", l.path, got, l.n)
	}
	records, end, err := scanFrames(br, l.path, int64(headerLen), size, nil)
	if err != nil {
		return err
	}
	l.records, l.size = records, end
	if end < size {
		// Torn tail: a crash mid-append left a partial frame. Everything
		// before it was acknowledged and intact — drop only the tail.
		if err := l.f.Truncate(end); err != nil {
			return fmt.Errorf("feed: truncating torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("feed: syncing truncated log: %w", err)
		}
		l.recovered = size - end
	}
	if _, err := l.f.Seek(end, io.SeekStart); err != nil {
		return fmt.Errorf("feed: seeking to log end: %w", err)
	}
	return nil
}

// scanFrames walks the frames in [off, size), validating each complete
// frame's CRC and handing its records to visit (may be nil). It returns
// the record count and the offset past the last complete frame; a
// partial trailing frame is reported through that offset, while a
// corrupt complete frame is an error.
func scanFrames(br *bufio.Reader, path string, off, size int64, visit func(sparse.Entry) error) (records, end int64, err error) {
	var hdr [frameHdr]byte
	buf := make([]byte, 0, 64*recordLen)
	for off < size {
		if size-off < int64(frameHdr) {
			return records, off, nil // torn: not even a frame header
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return 0, 0, fmt.Errorf("feed: %s: reading frame header at offset %d: %w", path, off, err)
		}
		count := binary.LittleEndian.Uint32(hdr[0:])
		want := int64(count) * recordLen
		if size-off-int64(frameHdr) < want {
			return records, off, nil // torn: payload extends past EOF
		}
		if count == 0 || count > maxFrameRecords {
			return 0, 0, fmt.Errorf("feed: %s: frame at offset %d declares %d records (max %d)",
				path, off, count, maxFrameRecords)
		}
		if int64(cap(buf)) < want {
			buf = make([]byte, want)
		}
		buf = buf[:want]
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, 0, fmt.Errorf("feed: %s: reading frame payload at offset %d: %w", path, off, err)
		}
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if got := crc32.ChecksumIEEE(buf); got != crc {
			return 0, 0, fmt.Errorf("feed: %s: frame at offset %d: payload CRC mismatch (file %08x, computed %08x)",
				path, off, crc, got)
		}
		if visit != nil {
			for k := 0; k < int(count); k++ {
				rec := buf[k*recordLen:]
				e := sparse.Entry{
					Row: int32(binary.LittleEndian.Uint32(rec[0:])),
					Col: int32(binary.LittleEndian.Uint32(rec[4:])),
					Val: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
				}
				if err := visit(e); err != nil {
					return 0, 0, err
				}
			}
		}
		records += int64(count)
		off += int64(frameHdr) + want
	}
	return records, off, nil
}

// Append writes the entries as CRC-framed records and fsyncs: when it
// returns nil, the batch survives a crash. Entries are validated first
// (item in [0, N), user >= 0, finite value) — an invalid batch writes
// nothing. An empty batch is a no-op.
func (l *Log) Append(entries []sparse.Entry) error {
	for _, e := range entries {
		if e.Row < 0 {
			return fmt.Errorf("feed: negative user %d", e.Row)
		}
		if e.Col < 0 || int(e.Col) >= l.n {
			return fmt.Errorf("feed: item %d outside catalog of %d", e.Col, l.n)
		}
		if math.IsNaN(e.Val) || math.IsInf(e.Val, 0) {
			return fmt.Errorf("feed: rating (%d, %d) has non-finite value", e.Row, e.Col)
		}
	}
	for len(entries) > 0 {
		frame := entries
		if len(frame) > maxFrameRecords {
			frame = frame[:maxFrameRecords]
		}
		entries = entries[len(frame):]
		if err := l.appendFrame(frame); err != nil {
			return err
		}
	}
	return l.sync()
}

// appendFrame encodes one frame and writes it with a single Write call,
// so a crash can only ever leave a *prefix* of the frame behind — the
// torn-tail shape recover() knows how to drop.
func (l *Log) appendFrame(frame []sparse.Entry) error {
	buf := make([]byte, frameHdr+len(frame)*recordLen)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(frame)))
	for k, e := range frame {
		rec := buf[frameHdr+k*recordLen:]
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Row))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Col))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.Val))
	}
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[frameHdr:]))
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("feed: appending frame: %w", err)
	}
	l.records += int64(len(frame))
	l.size += int64(len(buf))
	return nil
}

// sync flushes appended frames to stable storage.
func (l *Log) sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("feed: syncing log: %w", err)
	}
	return nil
}

// Scan re-reads the log from disk and streams every acknowledged record
// through visit in append order. It revalidates each frame, so it is
// usable as the (twice-called) entry stream of a Converter.
func (l *Log) Scan(visit func(sparse.Entry) error) error {
	br := bufio.NewReaderSize(io.NewSectionReader(l.f, int64(headerLen), l.size-int64(headerLen)), 1<<20)
	records, end, err := scanFrames(br, l.path, int64(headerLen), l.size, visit)
	if err != nil {
		return err
	}
	if records != l.records || end != l.size {
		return fmt.Errorf("feed: %s: log changed under scan (%d records to offset %d, expected %d to %d)",
			l.path, records, end, l.records, l.size)
	}
	return nil
}

// Truncate drops every record, resetting the log to its header — called
// after a successful compaction has made the records durable in a delta
// shard.
func (l *Log) Truncate() error {
	if err := l.f.Truncate(int64(headerLen)); err != nil {
		return fmt.Errorf("feed: truncating log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("feed: syncing truncated log: %w", err)
	}
	if _, err := l.f.Seek(int64(headerLen), io.SeekStart); err != nil {
		return fmt.Errorf("feed: seeking truncated log: %w", err)
	}
	l.records, l.size = 0, int64(headerLen)
	return nil
}

// Records returns the number of acknowledged (pending) records.
func (l *Log) Records() int64 { return l.records }

// Items returns the item-catalog width the log was opened with.
func (l *Log) Items() int { return l.n }

// RecoveredBytes reports how many torn-tail bytes OpenLog truncated
// (0 = the log was clean).
func (l *Log) RecoveredBytes() int64 { return l.recovered }

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }
