package la_test

import (
	"testing"

	. "repro/internal/la"
	"repro/internal/rng"
)

// The contract of the blocked/unrolled kernels is not "close": it is
// bit-identical to the naive reference loops, because cross-engine
// reproducibility of the sampler rests on a fixed floating-point
// summation order. These property tests pin that contract on random
// inputs, including the 1–3-element tails of the four-wide blocking.

func dotNaive(x, y Vector) float64 {
	var s float64
	for i, xi := range x {
		s += xi * y[i]
	}
	return s
}

func TestDotBitMatchesNaive(t *testing.T) {
	r := rng.New(41)
	for n := 0; n <= 33; n++ {
		x, y := NewVector(n), NewVector(n)
		r.FillNorm(x)
		r.FillNorm(y)
		if got, want := Dot(x, y), dotNaive(x, y); got != want {
			t.Fatalf("n=%d: Dot %v != naive %v", n, got, want)
		}
	}
}

func TestAxpyBitMatchesNaive(t *testing.T) {
	r := rng.New(42)
	for n := 0; n <= 33; n++ {
		x, y := NewVector(n), NewVector(n)
		r.FillNorm(x)
		r.FillNorm(y)
		want := y.Clone()
		for i, xi := range x {
			want[i] += 0.7 * xi
		}
		Axpy(0.7, x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d: Axpy[%d] %v != naive %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestGemvBitMatchesNaive(t *testing.T) {
	r := rng.New(43)
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {7, 4}, {8, 8}, {5, 33}} {
		m, n := dims[0], dims[1]
		a := NewMatrix(m, n)
		r.FillNorm(a.Data)
		x, y := NewVector(n), NewVector(m)
		r.FillNorm(x)
		r.FillNorm(y)
		want := y.Clone()
		for i := 0; i < m; i++ {
			want[i] = 1.3*dotNaive(a.Row(i), x) + 0.2*want[i]
		}
		Gemv(1.3, a, x, 0.2, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("%dx%d: Gemv[%d] %v != naive %v", m, n, i, y[i], want[i])
			}
		}
	}
}

// gatherProblem builds a random gather: src rows plus index/value lists.
func gatherProblem(r *rng.Stream, nnz, nRows, k int) (*Matrix, []int32, []float64) {
	src := NewMatrix(nRows, k)
	r.FillNorm(src.Data)
	cols := make([]int32, nnz)
	vals := make([]float64, nnz)
	for p := range cols {
		cols[p] = int32(r.Intn(nRows))
		vals[p] = r.Norm()
	}
	return src, cols, vals
}

func TestSyrkBatchLowerBitMatchesNaive(t *testing.T) {
	r := rng.New(44)
	for _, k := range []int{1, 3, 8, 17} {
		// Cover every tail length 0–3 at several block counts.
		for _, nnz := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 64, 65, 66, 67} {
			src, cols, _ := gatherProblem(r, nnz, nnz+5, k)
			a := NewMatrix(k, k)
			r.FillNorm(a.Data)
			want := a.Clone()
			for _, c := range cols {
				SyrLower(0.9, src.Row(int(c)), want)
			}
			SyrkBatchLower(0.9, src, cols, a)
			if MaxAbsDiff(a, want) != 0 {
				t.Fatalf("k=%d nnz=%d: SyrkBatchLower does not bit-match nnz SyrLower calls", k, nnz)
			}
		}
	}
}

func TestSyrkAxpyBatchLowerBitMatchesInterleavedNaive(t *testing.T) {
	r := rng.New(45)
	for _, k := range []int{1, 5, 8, 32} {
		for _, nnz := range []int{0, 1, 2, 3, 5, 9, 31, 129, 130, 131} {
			src, cols, vals := gatherProblem(r, nnz, nnz+3, k)
			a := NewMatrix(k, k)
			r.FillNorm(a.Data)
			y := NewVector(k)
			r.FillNorm(y)
			wantA, wantY := a.Clone(), y.Clone()
			// The reference is the original per-rating item-update loop:
			// SyrLower then Axpy, rating index ascending.
			for p, c := range cols {
				x := src.Row(int(c))
				SyrLower(2.0, x, wantA)
				Axpy(2.0*vals[p], x, wantY)
			}
			SyrkAxpyBatchLower(2.0, src, cols, vals, a, y)
			if MaxAbsDiff(a, wantA) != 0 {
				t.Fatalf("k=%d nnz=%d: fused precision does not bit-match", k, nnz)
			}
			for i := range y {
				if y[i] != wantY[i] {
					t.Fatalf("k=%d nnz=%d: fused rhs[%d] %v != %v", k, nnz, i, y[i], wantY[i])
				}
			}
		}
	}
}

func TestSyrkBatchLowerLeavesUpperTriangleUntouched(t *testing.T) {
	r := rng.New(46)
	k := 6
	src, cols, _ := gatherProblem(r, 9, 12, k)
	a := NewMatrix(k, k)
	r.FillNorm(a.Data)
	before := a.Clone()
	SyrkBatchLower(1.5, src, cols, a)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if a.At(i, j) != before.At(i, j) {
				t.Fatalf("upper element (%d,%d) modified", i, j)
			}
		}
	}
}

// Panel sizes worth covering: empty, sub-panel, exactly one panel, one
// panel plus tails of 1–3 (the four-wide blocking inside a panel), and
// several panels.
var panelNNZ = []int{0, 1, 3, 63, 64, 65, 66, 67, 128, 200}

func TestSyrkAxpyPanelLowerBitMatchesUnpanelled(t *testing.T) {
	r := rng.New(51)
	for _, k := range []int{1, 5, 16, 32} {
		for _, nnz := range panelNNZ {
			src, cols, vals := gatherProblem(r, nnz, nnz+3, k)
			a := NewMatrix(k, k)
			r.FillNorm(a.Data)
			y := NewVector(k)
			r.FillNorm(y)
			wantA, wantY := a.Clone(), y.Clone()
			SyrkAxpyBatchLower(1.7, src, cols, vals, wantA, wantY)
			panel := NewMatrix(GatherPanelRows, k)
			r.FillNorm(panel.Data) // stale panel contents must not matter
			SyrkAxpyPanelLower(1.7, src, cols, vals, a, y, panel)
			if MaxAbsDiff(a, wantA) != 0 {
				t.Fatalf("k=%d nnz=%d: panel precision does not bit-match", k, nnz)
			}
			for i := range y {
				if y[i] != wantY[i] {
					t.Fatalf("k=%d nnz=%d: panel rhs[%d] %v != %v", k, nnz, i, y[i], wantY[i])
				}
			}
		}
	}
}

func TestSyrkPanelLowerBitMatchesNaive(t *testing.T) {
	r := rng.New(52)
	k := 8
	for _, nnz := range panelNNZ {
		src, cols, _ := gatherProblem(r, nnz, nnz+2, k)
		a := NewMatrix(k, k)
		r.FillNorm(a.Data)
		want := a.Clone()
		for _, c := range cols {
			SyrLower(0.6, src.Row(int(c)), want)
		}
		panel := NewMatrix(GatherPanelRows, k)
		SyrkPanelLower(0.6, src, cols, a, panel)
		if MaxAbsDiff(a, want) != 0 {
			t.Fatalf("nnz=%d: SyrkPanelLower does not bit-match nnz SyrLower calls", nnz)
		}
	}
}

func TestGatherRows(t *testing.T) {
	r := rng.New(53)
	src, cols, _ := gatherProblem(r, 7, 11, 5)
	dst := NewMatrix(GatherPanelRows, 5)
	r.FillNorm(dst.Data)
	GatherRows(src, cols, dst)
	for p, c := range cols {
		for j := 0; j < 5; j++ {
			if dst.At(p, j) != src.At(int(c), j) {
				t.Fatalf("panel row %d differs from src row %d at col %d", p, c, j)
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("undersized panel must panic")
			}
		}()
		GatherRows(src, cols, NewMatrix(len(cols)-1, 5))
	}()
}

func TestGemvGatheredBitMatchesPerRowDot(t *testing.T) {
	r := rng.New(54)
	for _, k := range []int{1, 8, 32} {
		for _, nnz := range panelNNZ {
			src, cols, _ := gatherProblem(r, nnz, nnz+4, k)
			x := NewVector(k)
			r.FillNorm(x)
			y := NewVector(nnz)
			r.FillNorm(y)
			want := y.Clone()
			for p, c := range cols {
				want[p] = 1.1*Dot(src.Row(int(c)), x) + 0.4*want[p]
			}
			panel := NewMatrix(GatherPanelRows, k)
			GemvGathered(1.1, src, cols, x, 0.4, y, panel)
			for p := range y {
				if y[p] != want[p] {
					t.Fatalf("k=%d nnz=%d: GemvGathered[%d] %v != %v", k, nnz, p, y[p], want[p])
				}
			}
		}
	}
}

func TestTransposeIntoMatchesTranspose(t *testing.T) {
	r := rng.New(47)
	m := NewMatrix(5, 8)
	r.FillNorm(m.Data)
	want := m.Transpose()
	dst := NewMatrix(8, 5)
	r.FillNorm(dst.Data) // stale contents must be fully overwritten
	m.TransposeInto(dst)
	if MaxAbsDiff(dst, want) != 0 {
		t.Fatal("TransposeInto differs from Transpose")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("dimension mismatch must panic")
			}
		}()
		m.TransposeInto(NewMatrix(5, 8))
	}()
}

func TestInvFromCholWSMatchesAlloc(t *testing.T) {
	r := rng.New(48)
	n := 7
	g := NewMatrix(n, n)
	r.FillNorm(g.Data)
	a := NewMatrix(n, n)
	Gemm(1, g, g.Transpose(), 0, a)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	l := NewMatrix(n, n)
	if err := Cholesky(a, l); err != nil {
		t.Fatal(err)
	}
	want := NewMatrix(n, n)
	InvFromChol(l, want)
	got := NewMatrix(n, n)
	e, col := NewVector(n), NewVector(n)
	r.FillNorm(e) // scratch contents must not matter
	r.FillNorm(col)
	InvFromCholWS(l, got, e, col)
	if MaxAbsDiff(got, want) != 0 {
		t.Fatal("InvFromCholWS differs from InvFromChol")
	}
}
