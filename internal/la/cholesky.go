package la

import (
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot, i.e. the matrix is not (numerically) symmetric
// positive definite.
type ErrNotSPD struct {
	Pivot int
	Value float64
}

func (e *ErrNotSPD) Error() string {
	return fmt.Sprintf("la: matrix not positive definite at pivot %d (value %g)", e.Pivot, e.Value)
}

// Cholesky computes the lower-triangular Cholesky factor L of the symmetric
// positive definite matrix A (only the lower triangle of A is read) such
// that A = L*Lᵀ. The factor is written into dst (which may alias A). The
// strictly upper triangle of dst is zeroed.
func Cholesky(a *Matrix, dst *Matrix) error {
	n := a.Rows
	if a.Cols != n || dst.Rows != n || dst.Cols != n {
		panic("la: Cholesky dimension mismatch")
	}
	if dst != a {
		dst.CopyFrom(a)
	}
	l := dst
	for j := 0; j < n; j++ {
		// Diagonal element.
		d := l.At(j, j)
		rowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= rowj[k] * rowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return &ErrNotSPD{Pivot: j, Value: d}
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			rowi := l.Row(i)
			s := rowi[j]
			for k := 0; k < j; k++ {
				s -= rowi[k] * rowj[k]
			}
			rowi[j] = s * inv
		}
	}
	// Zero the strictly upper triangle so dst is a clean lower factor.
	for i := 0; i < n; i++ {
		row := l.Row(i)
		for j := i + 1; j < n; j++ {
			row[j] = 0
		}
	}
	return nil
}

// CholUpdate performs a rank-one update of a Cholesky factorization:
// given lower-triangular L with A = L*Lᵀ, it overwrites L with the factor
// of A + x*xᵀ. x is destroyed. This is the O(K²) kernel behind the
// "rank-one update" item-update method of the paper's Figure 2.
//
// Standard hyperbolic-rotation algorithm (Golub & Van Loan §6.5.4).
func CholUpdate(l *Matrix, x Vector) {
	n := l.Rows
	if l.Cols != n || len(x) != n {
		panic("la: CholUpdate dimension mismatch")
	}
	for k := 0; k < n; k++ {
		lkk := l.At(k, k)
		xk := x[k]
		r := math.Hypot(lkk, xk)
		c := r / lkk
		s := xk / lkk
		l.Set(k, k, r)
		if k+1 < n {
			invC := 1 / c
			for i := k + 1; i < n; i++ {
				lik := l.At(i, k)
				v := (lik + s*x[i]) * invC
				x[i] = c*x[i] - s*v
				l.Set(i, k, v)
			}
		}
	}
}

// SolveLower solves L*y = b for y where L is lower triangular
// (forward substitution). b and y may alias.
func SolveLower(l *Matrix, b, y Vector) {
	n := l.Rows
	if l.Cols != n || len(b) != n || len(y) != n {
		panic("la: SolveLower dimension mismatch")
	}
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
}

// SolveLowerT solves Lᵀ*y = b for y where L is lower triangular
// (back substitution on the transpose). b and y may alias.
func SolveLowerT(l *Matrix, b, y Vector) {
	n := l.Rows
	if l.Cols != n || len(b) != n || len(y) != n {
		panic("la: SolveLowerT dimension mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
}

// SolveSPD solves A*x = b given the lower Cholesky factor L of A
// (A = L*Lᵀ), using one forward and one backward substitution.
// b and x may alias. scratch must have length n (it may alias x but not b).
func SolveSPD(l *Matrix, b, x, scratch Vector) {
	SolveLower(l, b, scratch)
	SolveLowerT(l, scratch, x)
}

// InvFromChol computes A⁻¹ into dst given the lower Cholesky factor L of A.
// dst must be n x n and must not alias l.
func InvFromChol(l *Matrix, dst *Matrix) {
	n := l.Rows
	InvFromCholWS(l, dst, NewVector(n), NewVector(n))
}

// InvFromCholWS is InvFromChol with caller-provided scratch (two length-n
// vectors, contents ignored and overwritten), performing no allocation —
// the variant the hyperparameter sampler uses once per Gibbs iteration.
// dst must not alias l; e and col must not alias each other.
func InvFromCholWS(l *Matrix, dst *Matrix, e, col Vector) {
	n := l.Rows
	if dst.Rows != n || dst.Cols != n || len(e) != n || len(col) != n {
		panic("la: InvFromChol dimension mismatch")
	}
	for j := 0; j < n; j++ {
		e.Zero()
		e[j] = 1
		SolveLower(l, e, col)
		SolveLowerT(l, col, col)
		for i := 0; i < n; i++ {
			dst.Set(i, j, col[i])
		}
	}
}

// LogDetFromChol returns log det(A) given the lower Cholesky factor L of A.
func LogDetFromChol(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
