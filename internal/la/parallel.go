package la

import (
	"math"

	"repro/internal/sched"
)

// CholeskyBlockSize is the panel width used by the blocked (parallel)
// Cholesky factorization.
const CholeskyBlockSize = 32

// CholeskyParallel computes the lower Cholesky factor of A into dst using a
// right-looking blocked algorithm whose panel solves and trailing-matrix
// updates run as tasks on the work-stealing pool. The arithmetic performed
// for each block is a pure function of the block indices, so the result is
// bit-identical across runs and worker counts — including pool == nil,
// which executes the identical task DAG inline on the calling goroutine.
// (A matrix no larger than one block is factorized serially in either
// case.) The blocked result may differ in the last bits from the unblocked
// serial factorization because trailing updates group inner products
// differently; what is guaranteed is schedule independence.
//
// This is the "parallel Cholesky decomposition" of the paper's Figure 2.
func CholeskyParallel(pool *sched.Pool, w *sched.Worker, a *Matrix, dst *Matrix) error {
	n := a.Rows
	if a.Cols != n || dst.Rows != n || dst.Cols != n {
		panic("la: CholeskyParallel dimension mismatch")
	}
	if dst != a {
		dst.CopyFrom(a)
	}
	bs := CholeskyBlockSize
	if n <= bs {
		return Cholesky(dst, dst)
	}
	l := dst

	// runAll executes a deterministic set of independent block tasks,
	// in parallel when a pool is available, inline otherwise.
	runAll := func(tasks []func()) {
		if pool == nil || len(tasks) == 1 {
			for _, t := range tasks {
				t()
			}
			return
		}
		g := pool.NewGroup()
		for _, t := range tasks {
			t := t
			g.Spawn(w, func(_ *sched.Worker) { t() })
		}
		g.Sync(w)
	}

	for k := 0; k < n; k += bs {
		kb := min(bs, n-k)
		// 1. Factor the diagonal block serially.
		if err := cholInPlaceSub(l, k, kb); err != nil {
			return err
		}
		// 2. Triangular solve of the panel below: rows [k+kb, n) of block
		//    column k, parallel over row blocks.
		var solves []func()
		for i := k + kb; i < n; i += bs {
			i, ib := i, min(bs, n-i)
			solves = append(solves, func() { trsmBlock(l, i, ib, k, kb) })
		}
		runAll(solves)
		// 3. Trailing update: for each block (i, j) with k+kb <= j <= i,
		//    A[i,j] -= L[i,k-block] * L[j,k-block]ᵀ, parallel over blocks.
		var updates []func()
		for i := k + kb; i < n; i += bs {
			ib := min(bs, n-i)
			for j := k + kb; j <= i; j += bs {
				i, j, ib, jb := i, j, ib, min(bs, n-j)
				updates = append(updates, func() { syrkBlock(l, i, ib, j, jb, k, kb) })
			}
		}
		runAll(updates)
	}
	// Zero the strictly upper triangle.
	for i := 0; i < n; i++ {
		row := l.Row(i)
		for j := i + 1; j < n; j++ {
			row[j] = 0
		}
	}
	return nil
}

// cholInPlaceSub factors the kb x kb diagonal block at (k, k) in place.
func cholInPlaceSub(l *Matrix, k, kb int) error {
	for j := k; j < k+kb; j++ {
		d := l.At(j, j)
		for t := k; t < j; t++ {
			d -= l.At(j, t) * l.At(j, t)
		}
		if d <= 0 || math.IsNaN(d) {
			return &ErrNotSPD{Pivot: j, Value: d}
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < k+kb; i++ {
			s := l.At(i, j)
			for t := k; t < j; t++ {
				s -= l.At(i, t) * l.At(j, t)
			}
			l.Set(i, j, s*inv)
		}
	}
	return nil
}

// trsmBlock solves X * L22ᵀ = A(i:i+ib, k:k+kb) where L22 is the factored
// kb x kb diagonal block at (k, k); the solution overwrites the panel block.
func trsmBlock(l *Matrix, i, ib, k, kb int) {
	for r := i; r < i+ib; r++ {
		for j := k; j < k+kb; j++ {
			s := l.At(r, j)
			for t := k; t < j; t++ {
				s -= l.At(r, t) * l.At(j, t)
			}
			l.Set(r, j, s/l.At(j, j))
		}
	}
}

// syrkBlock computes A(i:i+ib, j:j+jb) -= L(i:i+ib, k:k+kb) * L(j:j+jb, k:k+kb)ᵀ,
// touching only elements on or below the global diagonal.
func syrkBlock(l *Matrix, i, ib, j, jb, k, kb int) {
	for r := i; r < i+ib; r++ {
		cmax := j + jb
		if cmax > r+1 {
			cmax = r + 1 // stay on/below the diagonal
		}
		for c := j; c < cmax; c++ {
			s := l.At(r, c)
			for t := k; t < k+kb; t++ {
				s -= l.At(r, t) * l.At(c, t)
			}
			l.Set(r, c, s)
		}
	}
}
