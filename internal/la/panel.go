package la

import "fmt"

// GatherPanelRows is the row count of one gather panel: the panel-gathered
// kernels copy this many rating rows into contiguous scratch per pass.
// 64 rows x K=32 columns is 16 KiB — comfortably L1/L2-resident next to
// the K x K accumulator, yet large enough to amortize the gather sweep.
const GatherPanelRows = 64

// iotaCols is the identity index list the panel kernels feed the batched
// accumulators after a gather: panel row p holds the p-th gathered row.
var iotaCols = func() []int32 {
	ix := make([]int32, GatherPanelRows)
	for i := range ix {
		ix[i] = int32(i)
	}
	return ix
}()

// GatherRows copies src rows cols[0..len(cols)) into the leading rows of
// dst (dst row p = src row cols[p]). dst must have at least len(cols) rows
// and exactly src.Cols columns.
func GatherRows(src *Matrix, cols []int32, dst *Matrix) {
	if dst.Cols != src.Cols || dst.Rows < len(cols) {
		panic(fmt.Sprintf("la: GatherRows panel %dx%d cannot hold %d rows of width %d",
			dst.Rows, dst.Cols, len(cols), src.Cols))
	}
	k := src.Cols
	for p, c := range cols {
		copy(dst.Data[p*k:(p+1)*k], src.Data[int(c)*k:(int(c)+1)*k])
	}
}

// SyrkPanelLower is SyrkBatchLower with a gather stage: see
// SyrkAxpyPanelLower (vals and y nil).
func SyrkPanelLower(alpha float64, src *Matrix, cols []int32, a, panel *Matrix) {
	SyrkAxpyPanelLower(alpha, src, cols, nil, a, nil, panel)
}

// SyrkAxpyPanelLower computes exactly what SyrkAxpyBatchLower computes —
//
//	A += alpha * Σ_p x_p · x_pᵀ        (lower triangle)
//	y += Σ_p (alpha · vals[p]) · x_p   (skipped when vals and y are nil)
//
// with x_p = src[cols[p]] — but in panels: GatherPanelRows rating rows are
// first copied into the contiguous panel scratch, and the register-blocked
// accumulation then streams the panel instead of chasing row pointers
// into a large factor matrix. Within each panel the summation runs through
// SyrkAxpyBatchLower itself over ascending gathered positions, and panels
// are processed in ascending rating order, so the per-element summation
// order — and hence the result, bit for bit — is identical to the
// unpanelled kernel and to the naive per-rating loop.
//
// panel must have at least GatherPanelRows rows (or len(cols) rows if
// smaller) and src.Cols columns; its previous contents are irrelevant.
func SyrkAxpyPanelLower(alpha float64, src *Matrix, cols []int32, vals []float64, a *Matrix, y Vector, panel *Matrix) {
	withRhs := y != nil
	if withRhs && len(vals) != len(cols) {
		panic("la: SyrkAxpyPanelLower rhs dimension mismatch")
	}
	for p0 := 0; p0 < len(cols); p0 += GatherPanelRows {
		hi := p0 + GatherPanelRows
		if hi > len(cols) {
			hi = len(cols)
		}
		cnt := hi - p0
		GatherRows(src, cols[p0:hi], panel)
		if withRhs {
			SyrkAxpyBatchLower(alpha, panel, iotaCols[:cnt], vals[p0:hi], a, y)
		} else {
			SyrkBatchLower(alpha, panel, iotaCols[:cnt], a)
		}
	}
}

// GemvGathered computes y[p] = alpha*(src[cols[p]] · x) + beta*y[p] for
// every gathered row, streaming the rows through the panel scratch in
// GatherPanelRows blocks. Each inner product runs through the same
// unrolled Dot as Gemv, so per-row results are bit-identical to scoring
// src.Row(cols[p]) directly. panel follows the SyrkAxpyPanelLower
// contract. It is the gathered analogue of rank.ScoreInto's contiguous
// blocked Gemv — the scoring primitive for row subsets (e.g. sampled
// evaluation chunks); no engine hot path consumes it yet.
func GemvGathered(alpha float64, src *Matrix, cols []int32, x Vector, beta float64, y Vector, panel *Matrix) {
	if len(y) != len(cols) || src.Cols != len(x) {
		panic("la: GemvGathered dimension mismatch")
	}
	for p0 := 0; p0 < len(cols); p0 += GatherPanelRows {
		hi := p0 + GatherPanelRows
		if hi > len(cols) {
			hi = len(cols)
		}
		GatherRows(src, cols[p0:hi], panel)
		for p := p0; p < hi; p++ {
			s := Dot(panel.Row(p-p0), x)
			y[p] = alpha*s + beta*y[p]
		}
	}
}
