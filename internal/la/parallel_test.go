package la

import (
	"testing"

	"repro/internal/sched"
)

func TestCholeskyParallelMatchesSerial(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	for _, n := range []int{8, 31, 32, 33, 64, 100, 150} {
		r := testRand(int64(n))
		a := randSPD(r, n)
		lp := NewMatrix(n, n)
		if err := CholeskyParallel(pool, nil, a, lp); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(reconstruct(lp), a); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: parallel Cholesky reconstruction error %g", n, d)
		}
		// Strictly upper triangle must be zeroed.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if lp.At(i, j) != 0 {
					t.Fatalf("n=%d: upper triangle not zeroed at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyParallelDeterministic(t *testing.T) {
	// The blocked factorization must give bit-identical results across
	// repeated runs and different pool sizes (fixed task DAG).
	n := 130
	r := testRand(99)
	a := randSPD(r, n)
	var ref *Matrix
	for _, workers := range []int{1, 2, 4, 7} {
		pool := sched.NewPool(workers)
		l := NewMatrix(n, n)
		if err := CholeskyParallel(pool, nil, a, l); err != nil {
			t.Fatal(err)
		}
		pool.Close()
		if ref == nil {
			ref = l
			continue
		}
		if MaxAbsDiff(ref, l) != 0 {
			t.Fatalf("parallel Cholesky not deterministic across %d workers", workers)
		}
	}
}

func TestCholeskyParallelNotSPD(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	n := 64
	a := Eye(n)
	a.Set(40, 40, -1)
	l := NewMatrix(n, n)
	if err := CholeskyParallel(pool, nil, a, l); err == nil {
		t.Fatal("expected ErrNotSPD from parallel Cholesky")
	}
}

func TestCholeskyParallelSmallFallsBack(t *testing.T) {
	// n <= block size must take the serial path and still be correct.
	pool := sched.NewPool(2)
	defer pool.Close()
	r := testRand(5)
	a := randSPD(r, CholeskyBlockSize)
	l := NewMatrix(a.Rows, a.Rows)
	if err := CholeskyParallel(pool, nil, a, l); err != nil {
		t.Fatal(err)
	}
	want := NewMatrix(a.Rows, a.Rows)
	if err := Cholesky(a, want); err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(l, want) != 0 {
		t.Fatal("small-matrix parallel Cholesky must equal serial exactly")
	}
}

func TestCholeskyParallelNilPool(t *testing.T) {
	// pool == nil executes the identical blocked task DAG inline, so the
	// result must be bit-identical to the pooled factorization.
	r := testRand(6)
	a := randSPD(r, 80)
	l := NewMatrix(80, 80)
	if err := CholeskyParallel(nil, nil, a, l); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(reconstruct(l), a); d > 1e-7 {
		t.Fatalf("nil-pool reconstruction error %g", d)
	}
	pool := sched.NewPool(3)
	defer pool.Close()
	lp := NewMatrix(80, 80)
	if err := CholeskyParallel(pool, nil, a, lp); err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(l, lp) != 0 {
		t.Fatal("nil-pool and pooled blocked Cholesky must match bit-for-bit")
	}
}
