package la

import (
	"math"
	"math/rand"
	"testing"
)

// testRand returns a deterministic PRNG for test data (math/rand is fine
// here; keyed streams are only required inside the sampler).
func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func randVector(r *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func randMatrix(r *rand.Rand, m, n int) *Matrix {
	a := NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	return a
}

// randSPD builds a well-conditioned random SPD matrix B·Bᵀ + n·I.
func randSPD(r *rand.Rand, n int) *Matrix {
	b := randMatrix(r, n, n)
	a := NewMatrix(n, n)
	Gemm(1, b, b.Transpose(), 0, a)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

// reconstruct computes L·Lᵀ.
func reconstruct(l *Matrix) *Matrix {
	n := l.Rows
	a := NewMatrix(n, n)
	Gemm(1, l, l.Transpose(), 0, a)
	return a
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := NewMatrixFrom([][]float64{{4, 2}, {2, 3}})
	l := NewMatrix(2, 2)
	if err := Cholesky(a, l); err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.At(0, 0), 2, 1e-15) || !almostEq(l.At(1, 0), 1, 1e-15) ||
		!almostEq(l.At(1, 1), math.Sqrt2, 1e-15) || l.At(0, 1) != 0 {
		t.Fatalf("Cholesky factor wrong: %+v", l.Data)
	}
}

func TestCholeskyReconstruct(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17, 33, 64} {
		r := testRand(int64(n))
		a := randSPD(r, n)
		l := NewMatrix(n, n)
		if err := Cholesky(a, l); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(reconstruct(l), a); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: reconstruction error %g", n, d)
		}
	}
}

func TestCholeskyInPlace(t *testing.T) {
	r := testRand(3)
	a := randSPD(r, 6)
	want := NewMatrix(6, 6)
	if err := Cholesky(a, want); err != nil {
		t.Fatal(err)
	}
	if err := Cholesky(a, a); err != nil { // aliasing dst == a
		t.Fatal(err)
	}
	if MaxAbsDiff(a, want) != 0 {
		t.Fatal("in-place Cholesky differs from out-of-place")
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 0}, {0, -1}})
	l := NewMatrix(2, 2)
	err := Cholesky(a, l)
	if err == nil {
		t.Fatal("expected ErrNotSPD")
	}
	if _, ok := err.(*ErrNotSPD); !ok {
		t.Fatalf("expected *ErrNotSPD, got %T", err)
	}
}

func TestCholUpdateMatchesRefactor(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		r := testRand(int64(100 + n))
		a := randSPD(r, n)
		l := NewMatrix(n, n)
		if err := Cholesky(a, l); err != nil {
			t.Fatal(err)
		}
		x := randVector(r, n)
		// Reference: factor A + x·xᵀ directly.
		ap := a.Clone()
		SyrLower(1, x, ap)
		SymmetrizeLower(ap)
		want := NewMatrix(n, n)
		if err := Cholesky(ap, want); err != nil {
			t.Fatal(err)
		}
		CholUpdate(l, x.Clone())
		if d := MaxAbsDiff(l, want); d > 1e-9 {
			t.Fatalf("n=%d: CholUpdate deviates from refactorization by %g", n, d)
		}
	}
}

func TestCholUpdateSequence(t *testing.T) {
	// Many successive updates must stay consistent (this is exactly the
	// rank-one item-update kernel's usage pattern).
	n := 8
	r := testRand(9)
	a := Eye(n)
	l := NewMatrix(n, n)
	if err := Cholesky(a, l); err != nil {
		t.Fatal(err)
	}
	acc := a.Clone()
	for step := 0; step < 50; step++ {
		x := randVector(r, n)
		SyrLower(1, x, acc)
		CholUpdate(l, x.Clone())
	}
	SymmetrizeLower(acc)
	if d := MaxAbsDiff(reconstruct(l), acc); d > 1e-8 {
		t.Fatalf("50 rank-one updates drifted by %g", d)
	}
}

func TestSolveLowerAndT(t *testing.T) {
	r := testRand(5)
	n := 12
	a := randSPD(r, n)
	l := NewMatrix(n, n)
	if err := Cholesky(a, l); err != nil {
		t.Fatal(err)
	}
	b := randVector(r, n)
	y := NewVector(n)
	SolveLower(l, b, y)
	// L·y must equal b.
	ly := NewVector(n)
	Gemv(1, l, y, 0, ly)
	for i := range b {
		if !almostEq(ly[i], b[i], 1e-10) {
			t.Fatalf("SolveLower residual at %d: %v vs %v", i, ly[i], b[i])
		}
	}
	z := NewVector(n)
	SolveLowerT(l, b, z)
	ltz := NewVector(n)
	Gemv(1, l.Transpose(), z, 0, ltz)
	for i := range b {
		if !almostEq(ltz[i], b[i], 1e-10) {
			t.Fatalf("SolveLowerT residual at %d: %v vs %v", i, ltz[i], b[i])
		}
	}
}

func TestSolveSPD(t *testing.T) {
	r := testRand(11)
	n := 10
	a := randSPD(r, n)
	l := NewMatrix(n, n)
	if err := Cholesky(a, l); err != nil {
		t.Fatal(err)
	}
	b := randVector(r, n)
	x := NewVector(n)
	scratch := NewVector(n)
	SolveSPD(l, b, x, scratch)
	ax := NewVector(n)
	Gemv(1, a, x, 0, ax)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-9) {
			t.Fatalf("SolveSPD residual at %d: %v vs %v", i, ax[i], b[i])
		}
	}
}

func TestInvFromChol(t *testing.T) {
	r := testRand(13)
	n := 7
	a := randSPD(r, n)
	l := NewMatrix(n, n)
	if err := Cholesky(a, l); err != nil {
		t.Fatal(err)
	}
	inv := NewMatrix(n, n)
	InvFromChol(l, inv)
	prod := NewMatrix(n, n)
	Gemm(1, a, inv, 0, prod)
	if d := MaxAbsDiff(prod, Eye(n)); d > 1e-9 {
		t.Fatalf("A·A⁻¹ deviates from I by %g", d)
	}
}

func TestLogDetFromChol(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 0}, {0, 9}})
	l := NewMatrix(2, 2)
	if err := Cholesky(a, l); err != nil {
		t.Fatal(err)
	}
	if !almostEq(LogDetFromChol(l), math.Log(36), 1e-12) {
		t.Fatalf("LogDet = %v, want %v", LogDetFromChol(l), math.Log(36))
	}
}
