// Package la provides the dense linear algebra kernels BPMF needs: vectors,
// row-major matrices, BLAS-like building blocks (dot, axpy, gemv, syrk, ger),
// Cholesky factorizations (serial, rank-one updated, and blocked parallel),
// triangular solves and SPD inversion.
//
// It replaces the Eigen C++ library the paper's implementation uses. All
// kernels are written so that, for a fixed input, the floating-point
// operation order is fixed: results are bit-reproducible regardless of
// thread schedule (the blocked parallel Cholesky decomposes into a fixed
// task DAG whose per-task arithmetic order does not depend on which worker
// runs it).
package la

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Dot returns the inner product of x and y. Panics if lengths differ.
//
// The loop is unrolled four-wide with a single accumulator, so the
// floating-point summation order (and hence the result, bit for bit) is
// identical to the plain `for i { s += x[i]*y[i] }` reference; the unroll
// only removes loop-control and bounds-check overhead.
func Dot(x, y Vector) float64 {
	n := len(x)
	if n != len(y) {
		panic(fmt.Sprintf("la: Dot length mismatch %d vs %d", n, len(y)))
	}
	y = y[:n]
	var s float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s += x[i] * y[i]
		s += x[i+1] * y[i+1]
		s += x[i+2] * y[i+2]
		s += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += alpha*x in place (four-wide unrolled; element updates
// are independent, so the result is bit-identical to the scalar loop).
func Axpy(alpha float64, x, y Vector) {
	n := len(x)
	if n != len(y) {
		panic(fmt.Sprintf("la: Axpy length mismatch %d vs %d", n, len(y)))
	}
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scal computes x *= alpha in place.
func Scal(alpha float64, x Vector) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x Vector) float64 {
	var s float64
	for _, xi := range x {
		s += xi * xi
	}
	return math.Sqrt(s)
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("la: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a row-major slice of slices.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("la: ragged rows in NewMatrixFrom")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with src. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("la: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Add computes m += a element-wise.
func (m *Matrix) Add(a *Matrix) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("la: Add dimension mismatch")
	}
	for i, v := range a.Data {
		m.Data[i] += v
	}
}

// ScaleInPlace computes m *= alpha element-wise.
func (m *Matrix) ScaleInPlace(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	m.TransposeInto(t)
	return t
}

// TransposeInto writes mᵀ into dst without allocating. dst must be
// m.Cols x m.Rows and must not alias m.
func (m *Matrix) TransposeInto(dst *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic("la: TransposeInto dimension mismatch")
	}
	if dst == m || (len(dst.Data) > 0 && len(m.Data) > 0 && &dst.Data[0] == &m.Data[0]) {
		panic("la: TransposeInto cannot alias its receiver")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

// Gemv computes y = alpha*A*x + beta*y. Each row's inner product runs
// through the unrolled Dot, keeping the per-row summation order of the
// scalar reference.
func Gemv(alpha float64, a *Matrix, x Vector, beta float64, y Vector) {
	if a.Cols != len(x) || a.Rows != len(y) {
		panic("la: Gemv dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		s := Dot(a.Row(i), x)
		y[i] = alpha*s + beta*y[i]
	}
}

// Gemm computes C = alpha*A*B + beta*C (no transposition).
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("la: Gemm dimension mismatch")
	}
	for i := 0; i < c.Rows; i++ {
		crow := c.Row(i)
		if beta == 0 {
			crow.Zero()
		} else if beta != 1 {
			Scal(beta, crow)
		}
		arow := a.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			f := alpha * aik
			for j, bkj := range brow {
				crow[j] += f * bkj
			}
		}
	}
}

// SyrLower computes the symmetric rank-one update A += alpha * x * xᵀ,
// writing only the lower triangle (including the diagonal). A must be
// square with dimension len(x).
func SyrLower(alpha float64, x Vector, a *Matrix) {
	n := len(x)
	if a.Rows != n || a.Cols != n {
		panic("la: SyrLower dimension mismatch")
	}
	for i := 0; i < n; i++ {
		f := alpha * x[i]
		row := a.Row(i)
		for j := 0; j <= i; j++ {
			row[j] += f * x[j]
		}
	}
}

// SyrkBatchLower accumulates the gathered symmetric rank-nnz update
//
//	A += alpha * Σ_p src[cols[p]] · src[cols[p]]ᵀ
//
// into the lower triangle of A (including the diagonal), processing four
// rating rows per pass with register-blocked outer products instead of
// len(cols) independent SyrLower calls. Blocking quarters the
// accumulator's load/store traffic and amortizes row-gather overhead —
// this is the dominant kernel of the serial- and parallel-Cholesky item
// updates (Figure 2), see PERF.md.
//
// The floating-point summation order is fixed to ascending rating index p
// with one chained accumulation per matrix element, which is exactly the
// order of the naive per-rating loop: the result is bit-identical to
// calling SyrLower once per gathered row, for any nnz including the
// 1–3-row tail.
func SyrkBatchLower(alpha float64, src *Matrix, cols []int32, a *Matrix) {
	SyrkAxpyBatchLower(alpha, src, cols, nil, a, nil)
}

// SyrkAxpyBatchLower fuses the two accumulations of the BPMF item update
// into one gathered pass over the rating rows:
//
//	A += alpha * Σ_p x_p · x_pᵀ       (lower triangle, as SyrkBatchLower)
//	y += Σ_p (alpha · vals[p]) · x_p   (the posterior rhs)
//
// where x_p = src[cols[p]]. vals and y may both be nil to skip the rhs
// (SyrkBatchLower). Per memory element the summation order is ascending
// p, so the result is bit-identical to the naive interleaved
// SyrLower/Axpy per-rating loop.
func SyrkAxpyBatchLower(alpha float64, src *Matrix, cols []int32, vals []float64, a *Matrix, y Vector) {
	n := a.Rows
	if a.Cols != n || src.Cols != n {
		panic("la: SyrkAxpyBatchLower dimension mismatch")
	}
	withRhs := y != nil
	if withRhs && (len(y) != n || len(vals) != len(cols)) {
		panic("la: SyrkAxpyBatchLower rhs dimension mismatch")
	}
	p := 0
	for ; p+4 <= len(cols); p += 4 {
		x0 := src.Row(int(cols[p]))
		x1 := src.Row(int(cols[p+1]))
		x2 := src.Row(int(cols[p+2]))
		x3 := src.Row(int(cols[p+3]))
		if withRhs {
			a0 := alpha * vals[p]
			a1 := alpha * vals[p+1]
			a2 := alpha * vals[p+2]
			a3 := alpha * vals[p+3]
			for i := range y {
				s := y[i]
				s += a0 * x0[i]
				s += a1 * x1[i]
				s += a2 * x2[i]
				s += a3 * x3[i]
				y[i] = s
			}
		}
		for i := 0; i < n; i++ {
			f0 := alpha * x0[i]
			f1 := alpha * x1[i]
			f2 := alpha * x2[i]
			f3 := alpha * x3[i]
			row := a.Row(i)[: i+1 : i+1]
			b0 := x0[:len(row)]
			b1 := x1[:len(row)]
			b2 := x2[:len(row)]
			b3 := x3[:len(row)]
			for j := range row {
				s := row[j]
				s += f0 * b0[j]
				s += f1 * b1[j]
				s += f2 * b2[j]
				s += f3 * b3[j]
				row[j] = s
			}
		}
	}
	// Tail of 1–3 rows: plain per-rating updates, still ascending p.
	for ; p < len(cols); p++ {
		x := src.Row(int(cols[p]))
		if withRhs {
			Axpy(alpha*vals[p], x, y)
		}
		SyrLower(alpha, x, a)
	}
}

// SymmetrizeLower copies the lower triangle of a onto its upper triangle.
func SymmetrizeLower(a *Matrix) {
	if a.Rows != a.Cols {
		panic("la: SymmetrizeLower needs square matrix")
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			a.Data[j*n+i] = a.Data[i*n+j]
		}
	}
}

// SymvLower computes y = A*x for symmetric A stored in its lower triangle.
func SymvLower(a *Matrix, x, y Vector) {
	n := len(x)
	if a.Rows != n || a.Cols != n || len(y) != n {
		panic("la: SymvLower dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < n; i++ {
		row := a.Row(i)
		s := 0.0
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
			y[j] += row[j] * x[i]
		}
		y[i] += s + row[i]*x[i]
	}
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// a and b, useful in tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("la: MaxAbsDiff dimension mismatch")
	}
	var m float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}
