package la

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestDotSymmetric(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := Vector(a[:]), Vector(b[:])
		d1, d2 := Dot(x, y), Dot(y, x)
		return d1 == d2 || (math.IsNaN(d1) && math.IsNaN(d2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAxpy(t *testing.T) {
	x := Vector{1, 2}
	y := Vector{10, 20}
	Axpy(3, x, y)
	if y[0] != 13 || y[1] != 26 {
		t.Fatalf("Axpy result %v", y)
	}
}

func TestAxpyLinearity(t *testing.T) {
	f := func(a, b [6]float64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		y1 := Vector(b[:]).Clone()
		Axpy(alpha, Vector(a[:]), y1)
		for i := range y1 {
			want := b[i] + alpha*a[i]
			if y1[i] != want && !(math.IsNaN(y1[i]) && math.IsNaN(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalNorm(t *testing.T) {
	v := Vector{3, 4}
	if Norm2(v) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(v))
	}
	Scal(2, v)
	if v[0] != 6 || v[1] != 8 {
		t.Fatalf("Scal result %v", v)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	r := m.Row(1)
	r[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a mutable view")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must be deep")
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.Transpose()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemv(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	x := Vector{1, 1}
	y := Vector{10, 10}
	Gemv(2, a, x, 0.5, y) // y = 2*A*x + 0.5*y
	if y[0] != 2*3+5 || y[1] != 2*7+5 {
		t.Fatalf("Gemv result %v", y)
	}
}

func TestGemm(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := NewMatrix(2, 2)
	Gemm(1, a, b, 0, c)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Gemm[%d,%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	r := testRand(1)
	a := randMatrix(r, 7, 5)
	b := randMatrix(r, 5, 9)
	c := NewMatrix(7, 9)
	Gemm(1.5, a, b, 0, c)
	for i := 0; i < 7; i++ {
		for j := 0; j < 9; j++ {
			var s float64
			for k := 0; k < 5; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			if !almostEq(c.At(i, j), 1.5*s, 1e-12) {
				t.Fatalf("Gemm mismatch at (%d,%d): %v vs %v", i, j, c.At(i, j), 1.5*s)
			}
		}
	}
}

func TestSyrLower(t *testing.T) {
	a := NewMatrix(3, 3)
	x := Vector{1, 2, 3}
	SyrLower(2, x, a)
	// lower triangle of 2*x*xᵀ
	if a.At(0, 0) != 2 || a.At(1, 0) != 4 || a.At(2, 1) != 12 || a.At(2, 2) != 18 {
		t.Fatalf("SyrLower lower triangle wrong: %+v", a.Data)
	}
	if a.At(0, 1) != 0 || a.At(0, 2) != 0 {
		t.Fatal("SyrLower must not touch the upper triangle")
	}
}

func TestSymmetrizeLower(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 0}, {7, 2}})
	SymmetrizeLower(a)
	if a.At(0, 1) != 7 {
		t.Fatalf("SymmetrizeLower failed: %v", a.At(0, 1))
	}
}

func TestSymvLower(t *testing.T) {
	// A = [[2,1],[1,3]] stored lower-only.
	a := NewMatrixFrom([][]float64{{2, 0}, {1, 3}})
	x := Vector{1, 2}
	y := NewVector(2)
	SymvLower(a, x, y)
	if y[0] != 2*1+1*2 || y[1] != 1*1+3*2 {
		t.Fatalf("SymvLower = %v", y)
	}
}

func TestSymvLowerMatchesFull(t *testing.T) {
	r := testRand(7)
	n := 9
	full := randSPD(r, n)
	lowerOnly := full.Clone()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			lowerOnly.Set(i, j, 0)
		}
	}
	x := randVector(r, n)
	y1 := NewVector(n)
	SymvLower(lowerOnly, x, y1)
	y2 := NewVector(n)
	Gemv(1, full, x, 0, y2)
	for i := range y1 {
		if !almostEq(y1[i], y2[i], 1e-12) {
			t.Fatalf("SymvLower mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestAddAndScale(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{10, 20}, {30, 40}})
	a.Add(b)
	a.ScaleInPlace(0.5)
	if a.At(0, 0) != 5.5 || a.At(1, 1) != 22 {
		t.Fatalf("Add/Scale result %+v", a.Data)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}})
	b := NewMatrixFrom([][]float64{{1.5, 2}})
	if MaxAbsDiff(a, b) != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", MaxAbsDiff(a, b))
	}
}
