package sched

import (
	"runtime"
	"sync"
)

// Arena is a worker-local free list of reusable scratch values (workspaces,
// accumulator blocks). It exists so hot loops can lease scratch per work
// item without heap allocation: Get prefers the calling worker's shard, so
// in steady state a worker keeps re-leasing the same cache-warm buffers,
// and the shard mutexes are virtually uncontended.
//
// Values are leased per work item, not pinned per worker: a worker that
// helps execute other tasks while blocked inside a nested Group.Sync may
// hold several leases at once (help-first scheduling), which a single
// per-worker slot could not support. Leases may also outlive the task that
// acquired them — the parallel item-update kernel leases chunk accumulators
// on stealing workers and releases them from the combining parent — so Put
// accepts any worker (or nil), returning the value to the releaser's shard.
type Arena[T any] struct {
	newFn  func() T
	shards []arenaShard[T]
}

type arenaShard[T any] struct {
	mu   sync.Mutex
	free []T
	// Pad shards apart so two workers' free lists do not share a cache
	// line.
	_ [64]byte
}

// NewArena creates an arena whose values are built by newFn on a free-list
// miss. The shard count is fixed at GOMAXPROCS+1 (workers hash onto the
// first GOMAXPROCS shards; non-worker goroutines share the last), so one
// arena serves pools of any size as well as pool-less sequential callers.
func NewArena[T any](newFn func() T) *Arena[T] {
	return &Arena[T]{
		newFn:  newFn,
		shards: make([]arenaShard[T], runtime.GOMAXPROCS(0)+1),
	}
}

func (a *Arena[T]) shard(w *Worker) *arenaShard[T] {
	if w == nil {
		return &a.shards[len(a.shards)-1]
	}
	return &a.shards[w.id%(len(a.shards)-1)]
}

// GetShard and PutShard lease using an explicit shard index, for callers
// that have a stable thread id but no *Worker (e.g. StaticFor bodies).
// Any non-negative index is valid; it is folded onto the shard set.
func (a *Arena[T]) GetShard(shard int) T {
	return a.get(&a.shards[shard%(len(a.shards)-1)])
}

// PutShard returns a leased value to the given shard's free list.
func (a *Arena[T]) PutShard(shard int, v T) {
	a.put(&a.shards[shard%(len(a.shards)-1)], v)
}

// Get leases a value, preferring the calling worker's shard (w may be nil
// for non-pool callers). The value's contents are whatever the previous
// lease left behind; callers that need zeroed scratch must clear it.
func (a *Arena[T]) Get(w *Worker) T {
	return a.get(a.shard(w))
}

// Put returns a leased value to the releasing worker's shard. The releaser
// need not be the worker that leased it.
func (a *Arena[T]) Put(w *Worker, v T) {
	a.put(a.shard(w), v)
}

func (a *Arena[T]) get(s *arenaShard[T]) T {
	s.mu.Lock()
	if n := len(s.free); n > 0 {
		v := s.free[n-1]
		var zero T
		s.free[n-1] = zero // drop the reference so the arena never pins extra values
		s.free = s.free[:n-1]
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return a.newFn()
}

func (a *Arena[T]) put(s *arenaShard[T], v T) {
	s.mu.Lock()
	s.free = append(s.free, v)
	s.mu.Unlock()
}
