package sched

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a work-stealing thread pool in the style of TBB's task scheduler.
// Each worker owns a Chase–Lev deque; idle workers steal from random
// victims; tasks may spawn nested subtasks and wait for them with
// Group.Sync, during which the waiting worker keeps executing other tasks
// (help-first scheduling), which is what makes nested parallelism cheap.
type Pool struct {
	workers []*Worker
	inject  chan Task // external submissions
	done    chan struct{}
	wg      sync.WaitGroup

	sleepMu   sync.Mutex
	sleepCond *sync.Cond
	sleeping  int
	closed    bool

	// Stats (approximate, for tests and instrumentation).
	Steals atomic.Int64
	Execs  atomic.Int64
}

// Worker is the per-thread execution context. Tasks receive the worker
// that runs them so nested spawns go to the local deque.
type Worker struct {
	pool *Pool
	id   int
	dq   *deque
	rng  *rand.Rand
}

// ID returns the worker index in [0, NumWorkers).
func (w *Worker) ID() int { return w.id }

// NewPool creates a pool with n workers. If n <= 0 it defaults to
// runtime.GOMAXPROCS(0).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		inject: make(chan Task, 1024),
		done:   make(chan struct{}),
	}
	p.sleepCond = sync.NewCond(&p.sleepMu)
	p.workers = make([]*Worker, n)
	for i := 0; i < n; i++ {
		p.workers[i] = &Worker{pool: p, id: i, dq: newDeque(), rng: rand.New(rand.NewSource(int64(i)*0x9e3779b9 + 1))}
	}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.workers[i].run()
	}
	return p
}

// NumWorkers returns the number of workers in the pool.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// Close shuts the pool down and waits for all workers to exit. Draining
// currently queued work is NOT guaranteed; callers should Sync their
// groups first.
func (p *Pool) Close() {
	p.sleepMu.Lock()
	if p.closed {
		p.sleepMu.Unlock()
		return
	}
	p.closed = true
	close(p.done)
	p.sleepCond.Broadcast()
	p.sleepMu.Unlock()
	p.wg.Wait()
}

// wake wakes one sleeping worker, if any.
func (p *Pool) wake() {
	p.sleepMu.Lock()
	if p.sleeping > 0 {
		p.sleepCond.Signal()
	}
	p.sleepMu.Unlock()
}

func (w *Worker) run() {
	defer w.pool.wg.Done()
	idleSpins := 0
	for {
		t := w.findTask()
		if t != nil {
			idleSpins = 0
			w.pool.Execs.Add(1)
			t(w)
			continue
		}
		select {
		case <-w.pool.done:
			return
		default:
		}
		idleSpins++
		if idleSpins < 64 {
			runtime.Gosched()
			continue
		}
		// Park until new work is injected or a spawn wakes us.
		p := w.pool
		p.sleepMu.Lock()
		if p.closed {
			p.sleepMu.Unlock()
			return
		}
		// Re-check for work before sleeping to avoid lost wakeups.
		if w.anyWork() {
			p.sleepMu.Unlock()
			idleSpins = 0
			continue
		}
		p.sleeping++
		p.sleepCond.Wait()
		p.sleeping--
		closed := p.closed
		p.sleepMu.Unlock()
		if closed {
			return
		}
		idleSpins = 0
	}
}

// anyWork reports whether any deque or the inject queue appears non-empty.
func (w *Worker) anyWork() bool {
	if len(w.pool.inject) > 0 {
		return true
	}
	for _, v := range w.pool.workers {
		if v.dq.size() > 0 {
			return true
		}
	}
	return false
}

// findTask looks for work: own deque first, then the inject queue, then
// random-victim stealing.
func (w *Worker) findTask() Task {
	if t := w.dq.pop(); t != nil {
		return t
	}
	select {
	case t := <-w.pool.inject:
		return t
	default:
	}
	n := len(w.pool.workers)
	if n > 1 {
		// Random victim selection, up to 2n attempts.
		for a := 0; a < 2*n; a++ {
			v := w.pool.workers[w.rng.Intn(n)]
			if v == w {
				continue
			}
			if t := v.dq.steal(); t != nil {
				w.pool.Steals.Add(1)
				return t
			}
		}
	}
	return nil
}

// Group tracks a set of spawned tasks so a parent can wait for all of
// them. It is the analogue of tbb::task_group.
type Group struct {
	pool    *Pool
	pending atomic.Int64
	panicV  atomic.Pointer[panicBox]
}

type panicBox struct{ v any }

// NewGroup creates a task group on the pool.
func (p *Pool) NewGroup() *Group { return &Group{pool: p} }

// Spawn schedules fn to run on the pool as part of the group. If called
// from a pool worker (w != nil) the task goes to that worker's own deque
// (LIFO, cache-friendly, stealable by others); otherwise it goes to the
// global inject queue.
func (g *Group) Spawn(w *Worker, fn func(w *Worker)) {
	g.pending.Add(1)
	t := Task(func(tw *Worker) {
		defer func() {
			if r := recover(); r != nil {
				g.panicV.CompareAndSwap(nil, &panicBox{v: r})
			}
			g.pending.Add(-1)
		}()
		fn(tw)
	})
	if w != nil {
		w.dq.push(t)
		g.pool.wake()
	} else {
		g.pool.inject <- t
		g.pool.wake()
	}
}

// Sync waits until every spawned task in the group has finished. If called
// from a pool worker, the worker helps execute tasks while waiting (this is
// what allows nested parallelism without deadlock on a bounded pool). If a
// task panicked, Sync re-panics with the first recovered value.
func (g *Group) Sync(w *Worker) {
	spins := 0
	for g.pending.Load() > 0 {
		var t Task
		if w != nil {
			t = w.findTask()
		} else {
			select {
			case t = <-g.pool.inject:
			default:
			}
		}
		if t != nil {
			g.pool.Execs.Add(1)
			t(w)
			spins = 0
			continue
		}
		spins++
		runtime.Gosched()
		_ = spins
	}
	if pb := g.panicV.Load(); pb != nil {
		panic(pb.v)
	}
}

// Run executes fn on the pool and blocks until it (and everything it
// spawned and synced) completes. It is the entry point from non-pool code.
func (p *Pool) Run(fn func(w *Worker)) {
	g := p.NewGroup()
	g.Spawn(nil, fn)
	g.Sync(nil)
}

// ParallelFor executes body(i) for every i in [lo, hi) on the pool using
// recursive binary splitting with the given grain size (minimum chunk
// length executed sequentially). It blocks until all iterations complete.
// The iteration-to-chunk decomposition is a pure function of (lo, hi,
// grain), never of the number of workers, so any arithmetic performed in
// chunk order is schedule-independent.
func (p *Pool) ParallelFor(lo, hi, grain int, body func(w *Worker, lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if hi <= lo {
		return
	}
	g := p.NewGroup()
	var split func(w *Worker, lo, hi int)
	split = func(w *Worker, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			right := hi
			g.Spawn(w, func(w *Worker) { split(w, mid, right) })
			hi = mid
		}
		body(w, lo, hi)
	}
	g.Spawn(nil, func(w *Worker) { split(w, lo, hi) })
	g.Sync(nil)
}
