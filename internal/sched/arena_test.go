package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestArenaReusesValues(t *testing.T) {
	var made atomic.Int64
	a := NewArena(func() *int {
		made.Add(1)
		v := new(int)
		return v
	})
	x := a.Get(nil)
	a.Put(nil, x)
	y := a.Get(nil)
	if x != y {
		t.Fatal("arena did not reuse the released value")
	}
	if made.Load() != 1 {
		t.Fatalf("newFn ran %d times, want 1", made.Load())
	}
	// A second concurrent lease must be a distinct value.
	z := a.Get(nil)
	if z == y {
		t.Fatal("outstanding lease handed out twice")
	}
	a.Put(nil, y)
	a.Put(nil, z)
}

func TestArenaConcurrentLeases(t *testing.T) {
	var made atomic.Int64
	a := NewArena(func() *[64]byte {
		made.Add(1)
		return new([64]byte)
	})
	pool := NewPool(4)
	defer pool.Close()
	const iters = 2000
	var wg sync.WaitGroup
	pool.ParallelFor(0, iters, 1, func(w *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := a.Get(w)
			v[0]++ // exclusive ownership while leased
			a.Put(w, v)
		}
	})
	wg.Wait()
	// Steady state: far fewer values created than leases taken.
	if made.Load() > int64(pool.NumWorkers()*4) {
		t.Fatalf("arena churned %d allocations over %d leases", made.Load(), iters)
	}
}

func TestArenaGetSteadyStateZeroAllocs(t *testing.T) {
	a := NewArena(func() *int { return new(int) })
	a.Put(nil, a.Get(nil))
	allocs := testing.AllocsPerRun(100, func() {
		v := a.Get(nil)
		a.Put(nil, v)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocated %v/op", allocs)
	}
}
