package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeSingleThreadLIFO(t *testing.T) {
	d := newDeque()
	order := []int{}
	for i := 0; i < 5; i++ {
		i := i
		d.push(func(*Worker) { order = append(order, i) })
	}
	for {
		task := d.pop()
		if task == nil {
			break
		}
		task(nil)
	}
	// Owner pops from the bottom: LIFO.
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newDeque()
	order := []int{}
	for i := 0; i < 5; i++ {
		i := i
		d.push(func(*Worker) { order = append(order, i) })
	}
	for {
		task := d.steal()
		if task == nil {
			break
		}
		task(nil)
	}
	// Thieves take from the top: FIFO.
	for i := range order {
		if order[i] != i {
			t.Fatalf("steal order %v", order)
		}
	}
}

func TestDequeGrowth(t *testing.T) {
	d := newDeque()
	n := 5000 // larger than the initial buffer
	var count int
	for i := 0; i < n; i++ {
		d.push(func(*Worker) { count++ })
	}
	if d.size() != int64(n) {
		t.Fatalf("size = %d, want %d", d.size(), n)
	}
	for {
		task := d.pop()
		if task == nil {
			break
		}
		task(nil)
	}
	if count != n {
		t.Fatalf("executed %d of %d after growth", count, n)
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var count atomic.Int64
	g := pool.NewGroup()
	for i := 0; i < 1000; i++ {
		g.Spawn(nil, func(*Worker) { count.Add(1) })
	}
	g.Sync(nil)
	if count.Load() != 1000 {
		t.Fatalf("ran %d of 1000 tasks", count.Load())
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	pool := NewPool(8)
	defer pool.Close()
	for _, n := range []int{0, 1, 7, 100, 10000} {
		hits := make([]atomic.Int32, n)
		pool.ParallelFor(0, n, 3, func(_ *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, hits[i].Load())
			}
		}
	}
}

func TestParallelForGrainRespected(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var maxChunk atomic.Int64
	pool.ParallelFor(0, 1000, 10, func(_ *Worker, lo, hi int) {
		sz := int64(hi - lo)
		for {
			cur := maxChunk.Load()
			if sz <= cur || maxChunk.CompareAndSwap(cur, sz) {
				break
			}
		}
	})
	if maxChunk.Load() > 10 {
		t.Fatalf("chunk of size %d exceeds grain 10", maxChunk.Load())
	}
}

func TestNestedSpawn(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var count atomic.Int64
	pool.Run(func(w *Worker) {
		g := pool.NewGroup()
		for i := 0; i < 10; i++ {
			g.Spawn(w, func(w2 *Worker) {
				inner := pool.NewGroup()
				for j := 0; j < 10; j++ {
					inner.Spawn(w2, func(*Worker) { count.Add(1) })
				}
				inner.Sync(w2)
			})
		}
		g.Sync(w)
	})
	if count.Load() != 100 {
		t.Fatalf("nested spawn ran %d of 100", count.Load())
	}
}

func TestDeeplyNestedDoesNotDeadlock(t *testing.T) {
	// More nesting levels than workers: Sync must help execute tasks.
	pool := NewPool(2)
	defer pool.Close()
	var depthReached atomic.Int64
	var recurse func(w *Worker, depth int)
	recurse = func(w *Worker, depth int) {
		if depth == 0 {
			depthReached.Add(1)
			return
		}
		g := pool.NewGroup()
		g.Spawn(w, func(w2 *Worker) { recurse(w2, depth-1) })
		g.Sync(w)
	}
	pool.Run(func(w *Worker) { recurse(w, 20) })
	if depthReached.Load() != 1 {
		t.Fatal("nested recursion did not complete")
	}
}

func TestGroupPanicPropagates(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Sync must re-panic a task panic")
		}
	}()
	g := pool.NewGroup()
	g.Spawn(nil, func(*Worker) { panic("boom") })
	g.Sync(nil)
}

func TestPoolCloseIdempotent(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	pool.Close() // must not panic or hang
}

func TestStealsHappenUnderImbalance(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	// One external task spawns all work onto a single worker's deque; the
	// other workers must steal to help.
	var count atomic.Int64
	pool.Run(func(w *Worker) {
		g := pool.NewGroup()
		for i := 0; i < 2000; i++ {
			g.Spawn(w, func(*Worker) {
				// Small spin so thieves have time to engage.
				s := 0
				for j := 0; j < 2000; j++ {
					s += j
				}
				_ = s
				count.Add(1)
			})
		}
		g.Sync(w)
	})
	if count.Load() != 2000 {
		t.Fatalf("ran %d of 2000", count.Load())
	}
	// On a single-core host stealing may be rare, but the counter must be
	// consistent; just require no negative/overflow values.
	if pool.Steals.Load() < 0 {
		t.Fatal("negative steal count")
	}
}

func TestStaticForCoversRange(t *testing.T) {
	for _, nt := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]atomic.Int32, n)
			StaticFor(nt, 0, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("nt=%d n=%d: index %d visited %d times", nt, n, i, hits[i].Load())
				}
			}
		}
	}
}

func TestStaticForContiguousChunks(t *testing.T) {
	// Each thread must receive one contiguous chunk; chunk sizes differ by
	// at most 1 (OpenMP static semantics).
	bounds := StaticChunks(4, 0, 10)
	if len(bounds) != 5 || bounds[0] != 0 || bounds[4] != 10 {
		t.Fatalf("bounds %v", bounds)
	}
	sizes := []int{}
	for i := 0; i < 4; i++ {
		sizes = append(sizes, bounds[i+1]-bounds[i])
	}
	for _, s := range sizes {
		if s < 2 || s > 3 {
			t.Fatalf("chunk sizes %v not balanced", sizes)
		}
	}
}

func TestStaticChunksProperties(t *testing.T) {
	f := func(nt, n uint8) bool {
		threads := int(nt%16) + 1
		size := int(n)
		b := StaticChunks(threads, 0, size)
		if b[0] != 0 || b[len(b)-1] != size {
			return false
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaticForZeroAndNegativeThreads(t *testing.T) {
	var ran atomic.Int32
	StaticFor(0, 0, 5, func(_, lo, hi int) { ran.Add(int32(hi - lo)) })
	if ran.Load() != 5 {
		t.Fatalf("nthreads<1 fallback ran %d of 5", ran.Load())
	}
}
