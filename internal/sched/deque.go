// Package sched implements the two task schedulers the paper compares on a
// single node: a TBB-style work-stealing runtime (Chase–Lev deques, random
// victim selection, nested spawn/sync) and an OpenMP-style static-chunk
// scheduler. The work-stealing pool is what gives the paper's "TBB" curve
// in Figure 3 its load-balance advantage on skewed rating distributions.
package sched

import (
	"sync/atomic"
)

// Task is a unit of work executed by a pool worker. The *Worker argument
// identifies the executing worker so the task can spawn nested subtasks
// onto that worker's own deque.
type Task func(w *Worker)

// taskBuf is a growable circular buffer used by the Chase–Lev deque.
type taskBuf struct {
	mask  int64
	tasks []Task
}

func newTaskBuf(logSize uint) *taskBuf {
	n := int64(1) << logSize
	return &taskBuf{mask: n - 1, tasks: make([]Task, n)}
}

func (b *taskBuf) get(i int64) Task    { return b.tasks[i&b.mask] }
func (b *taskBuf) put(i int64, t Task) { b.tasks[i&b.mask] = t }
func (b *taskBuf) grow(bot, top int64) *taskBuf {
	nb := newTaskBuf(log2(int64(len(b.tasks))) + 1)
	for i := top; i < bot; i++ {
		nb.put(i, b.get(i))
	}
	return nb
}

func log2(n int64) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// deque is a Chase–Lev work-stealing deque. The owner pushes and pops at
// the bottom; thieves steal from the top. Lock-free, based on
// "Dynamic Circular Work-Stealing Deque" (Chase & Lev, SPAA 2005) with the
// memory-ordering fixes from Lê et al. (PPoPP 2013), adapted to Go's
// sequentially-consistent atomics.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[taskBuf]
}

func newDeque() *deque {
	d := &deque{}
	d.buf.Store(newTaskBuf(8))
	return d
}

// push adds a task at the bottom. Only the owner may call it.
func (d *deque) push(t Task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if b-tp >= int64(len(buf.tasks)) {
		buf = buf.grow(b, tp)
		d.buf.Store(buf)
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes a task from the bottom. Only the owner may call it.
// Returns nil if the deque is empty.
func (d *deque) pop() Task {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if b < t {
		// Empty: restore bottom.
		d.bottom.Store(t)
		return nil
	}
	task := buf.get(b)
	if b > t {
		return task
	}
	// Last element: race against stealers via CAS on top.
	if !d.top.CompareAndSwap(t, t+1) {
		task = nil // a thief got it
	}
	d.bottom.Store(t + 1)
	return task
}

// steal removes a task from the top. Any worker may call it.
// Returns nil if the deque is empty or the steal lost a race.
func (d *deque) steal() Task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	buf := d.buf.Load()
	task := buf.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return task
}

// size returns an estimate of the number of queued tasks.
func (d *deque) size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return b - t
}
