package sched

import "sync"

// StaticFor mimics an OpenMP "schedule(static)" parallel for: the index
// range [lo, hi) is split into nthreads contiguous chunks of (almost) equal
// length, each executed by its own goroutine, with an implicit barrier at
// the end. There is no load balancing: a thread whose chunk holds the heavy
// items finishes last while the others idle — exactly the behaviour that
// makes the paper's OpenMP curve trail the TBB curve in Figure 3 on skewed
// rating data.
func StaticFor(nthreads, lo, hi int, body func(thread, lo, hi int)) {
	if nthreads < 1 {
		nthreads = 1
	}
	n := hi - lo
	if n <= 0 {
		return
	}
	if nthreads > n {
		nthreads = n
	}
	var wg sync.WaitGroup
	chunk := n / nthreads
	rem := n % nthreads
	start := lo
	for t := 0; t < nthreads; t++ {
		sz := chunk
		if t < rem {
			sz++
		}
		tlo, thi := start, start+sz
		start = thi
		wg.Add(1)
		go func(t, tlo, thi int) {
			defer wg.Done()
			body(t, tlo, thi)
		}(t, tlo, thi)
	}
	wg.Wait()
}

// StaticChunks returns the chunk boundaries StaticFor would use:
// boundaries[t] .. boundaries[t+1] is thread t's range. Exposed so the
// discrete-event simulator can replay the exact same decomposition.
func StaticChunks(nthreads, lo, hi int) []int {
	if nthreads < 1 {
		nthreads = 1
	}
	n := hi - lo
	if n < 0 {
		n = 0
	}
	if nthreads > n && n > 0 {
		nthreads = n
	}
	b := make([]int, nthreads+1)
	chunk, rem := 0, 0
	if nthreads > 0 {
		chunk = n / nthreads
		rem = n % nthreads
	}
	b[0] = lo
	for t := 0; t < nthreads; t++ {
		sz := chunk
		if t < rem {
			sz++
		}
		b[t+1] = b[t] + sz
	}
	return b
}
