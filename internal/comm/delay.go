package comm

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// DelayFabric wraps an in-process fabric with deterministic pseudo-random
// per-message delivery delays while preserving per-pair FIFO order. It
// exists for timing-robustness testing: the distributed engine must
// produce bit-identical results under arbitrary message timing, because
// its phase transitions count expected ghost items rather than assuming
// arrival order or latency bounds.
type DelayFabric struct {
	inner *Fabric
	comms []*Comm
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	queues []chan delayed
}

type delayed struct {
	dst   int
	tag   int
	data  []byte
	delay time.Duration
}

// delayTransport perturbs one rank's sends.
type delayTransport struct {
	f    *DelayFabric
	rank int
	mu   sync.Mutex
	rng  *rng.Stream
	max  time.Duration
}

// NewDelayFabric builds a virtual cluster whose messages are delayed by a
// deterministic pseudo-random duration in [0, maxDelay) (keyed by seed and
// sender), preserving per-sender FIFO order.
func NewDelayFabric(size int, maxDelay time.Duration, seed uint64) *DelayFabric {
	inner := NewFabric(size)
	df := &DelayFabric{
		inner:  inner,
		comms:  make([]*Comm, size),
		queues: make([]chan delayed, size),
	}
	for r := 0; r < size; r++ {
		// Re-point each endpoint's transport at the delaying wrapper.
		c := inner.Comms()[r]
		dt := &delayTransport{
			f:    df,
			rank: r,
			rng:  rng.NewKeyed(seed, 0xde1a4, uint64(r)),
			max:  maxDelay,
		}
		df.queues[r] = make(chan delayed, 4096)
		c.mu.Lock()
		orig := c.tr
		c.tr = dt
		c.mu.Unlock()
		df.comms[r] = c
		df.wg.Add(1)
		go df.pump(r, orig)
	}
	return df
}

// pump applies each sender's delays in FIFO order, then forwards through
// the original transport (which preserves order per pair).
func (df *DelayFabric) pump(rank int, orig Transport) {
	defer df.wg.Done()
	for d := range df.queues[rank] {
		if d.delay > 0 {
			time.Sleep(d.delay)
		}
		orig.Send(d.dst, d.tag, d.data) //nolint:errcheck // fabric send cannot fail before close
	}
}

// Send implements Transport with a deterministic pseudo-random delay.
func (dt *delayTransport) Send(dst, tag int, data []byte) error {
	dt.mu.Lock()
	var delay time.Duration
	if dt.max > 0 {
		delay = time.Duration(dt.rng.Float64() * float64(dt.max))
	}
	dt.mu.Unlock()
	dt.f.mu.Lock()
	closed := dt.f.closed
	dt.f.mu.Unlock()
	if closed {
		return nil
	}
	dt.f.queues[dt.rank] <- delayed{dst: dst, tag: tag, data: data, delay: delay}
	return nil
}

// Close implements Transport per endpoint (no-op; close the fabric).
func (dt *delayTransport) Close() error { return nil }

// Comms returns the per-rank communicators.
func (df *DelayFabric) Comms() []*Comm { return df.comms }

// Close tears down the delay pumps and the inner fabric. Call only after
// all ranks have finished communicating.
func (df *DelayFabric) Close() {
	df.mu.Lock()
	if df.closed {
		df.mu.Unlock()
		return
	}
	df.closed = true
	df.mu.Unlock()
	for _, q := range df.queues {
		close(q)
	}
	df.wg.Wait()
	df.inner.Close()
}
