package comm

import (
	"sync"
	"testing"
	"time"
)

func TestOneSidedPutAndNotify(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	comms := f.Comms()
	o0 := NewOneSided(comms[0])
	o1 := NewOneSided(comms[1])
	defer o0.Close()
	defer o1.Close()

	buf := make([]float64, 10)
	o1.Register(3, buf)
	o0.Put(1, 3, 4, []float64{1.5, -2.5, 3.5}, 7)
	o1.WaitNotify(7, 1)
	if buf[4] != 1.5 || buf[5] != -2.5 || buf[6] != 3.5 {
		t.Fatalf("payload not applied: %v", buf)
	}
	if buf[3] != 0 || buf[7] != 0 {
		t.Fatal("Put touched bytes outside the target range")
	}
}

func TestOneSidedNotificationCounts(t *testing.T) {
	f := NewFabric(3)
	defer f.Close()
	comms := f.Comms()
	os := make([]*OneSided, 3)
	for r := range comms {
		os[r] = NewOneSided(comms[r])
	}
	defer func() {
		for _, o := range os {
			o.Close()
		}
	}()
	dst := make([]float64, 100)
	os[0].Register(1, dst)

	// Ranks 1 and 2 each put 5 items with notification id 9.
	var wg sync.WaitGroup
	for src := 1; src <= 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				off := int64(src*10 + i)
				os[src].Put(0, 1, off, []float64{float64(src)}, 9)
			}
		}(src)
	}
	wg.Wait()
	if got := os[0].WaitNotify(9, 10); got != 10 {
		t.Fatalf("notification count %d, want 10", got)
	}
	for i := 0; i < 5; i++ {
		if dst[10+i] != 1 || dst[20+i] != 2 {
			t.Fatalf("puts not all applied: %v", dst[10:25])
		}
	}
}

func TestOneSidedSelfPut(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	o := NewOneSided(f.Comms()[0])
	defer o.Close()
	buf := make([]float64, 4)
	o.Register(0, buf)
	o.Put(0, 0, 0, []float64{42}, 1)
	o.WaitNotify(1, 1)
	if buf[0] != 42 {
		t.Fatal("self-put not applied")
	}
}

func TestOneSidedCountWithoutBlocking(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	o0 := NewOneSided(f.Comms()[0])
	o1 := NewOneSided(f.Comms()[1])
	defer o0.Close()
	defer o1.Close()
	if o1.NotifyCount(5) != 0 {
		t.Fatal("fresh counter must be zero")
	}
	buf := make([]float64, 1)
	o1.Register(0, buf)
	o0.Put(1, 0, 0, []float64{1}, 5)
	deadline := time.Now().Add(time.Second)
	for o1.NotifyCount(5) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("notification never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOneSidedRegisterNegativePanics(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	o := NewOneSided(f.Comms()[0])
	defer o.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("negative segment id must panic")
		}
	}()
	o.Register(-2, make([]float64, 1))
}

func TestOneSidedCoexistsWithTwoSided(t *testing.T) {
	// One-sided traffic must not interfere with regular tagged messages
	// or collectives on the same communicator.
	f := NewFabric(2)
	defer f.Close()
	comms := f.Comms()
	o0 := NewOneSided(comms[0])
	o1 := NewOneSided(comms[1])
	defer o0.Close()
	defer o1.Close()
	buf := make([]float64, 2)
	o1.Register(0, buf)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		comms[0].Send(1, 42, []byte("two-sided"))
		o0.Put(1, 0, 0, []float64{9}, 1)
		sum := comms[0].AllreduceSumOrdered([]float64{1})
		if sum[0] != 2 {
			t.Errorf("allreduce = %v", sum[0])
		}
	}()
	go func() {
		defer wg.Done()
		m := comms[1].Recv(0, 42)
		if string(m.Data) != "two-sided" {
			t.Errorf("got %q", m.Data)
		}
		o1.WaitNotify(1, 1)
		sum := comms[1].AllreduceSumOrdered([]float64{1})
		if sum[0] != 2 {
			t.Errorf("allreduce = %v", sum[0])
		}
	}()
	wg.Wait()
	if buf[0] != 9 {
		t.Fatal("put lost amid two-sided traffic")
	}
}
