package comm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/rng"
)

// FaultFabric wraps an in-process fabric with deterministic fault
// injection: it can kill ranks, sever links, and drop or duplicate
// messages at seeded, reproducible points. It exists so every recovery
// path of the fault-tolerant engine is exercised in `go test -race`
// rather than only in production:
//
//   - Kill(r) makes rank r behave like a crashed process: its endpoint
//     fails (every blocked operation returns a RankFailedError) and all
//     its traffic — inbound and outbound — is silently dropped, exactly
//     the silence a dead TCP peer produces. Survivors notice only
//     through the failure detector's suspicion timeout.
//   - Sever(a, b) cuts one link in both directions (a partitioned
//     switch), leaving both endpoints alive.
//   - SetLoss(drop, dup) injects per-message loss and duplication from a
//     per-sender seeded stream. Reproducible as long as each rank's send
//     sequence is deterministic (single-threaded senders, no heartbeat
//     detector racing the sends).
type FaultFabric struct {
	inner *Fabric
	comms []*Comm
	orig  []Transport
	rngs  []*rng.Stream

	mu        sync.Mutex
	killed    []bool
	severed   map[[2]int]bool
	drop, dup float64
}

// faultTransport filters one rank's sends through the fault rules.
type faultTransport struct {
	f    *FaultFabric
	rank int
}

// NewFaultFabric builds a virtual cluster whose faults are injected
// deterministically from seed.
func NewFaultFabric(size int, seed uint64) *FaultFabric {
	inner := NewFabric(size)
	ff := &FaultFabric{
		inner:   inner,
		comms:   make([]*Comm, size),
		orig:    make([]Transport, size),
		rngs:    make([]*rng.Stream, size),
		killed:  make([]bool, size),
		severed: map[[2]int]bool{},
	}
	for r := 0; r < size; r++ {
		c := inner.Comms()[r]
		ff.rngs[r] = rng.NewKeyed(seed, 0xfa17, uint64(r))
		c.mu.Lock()
		ff.orig[r] = c.tr
		c.tr = &faultTransport{f: ff, rank: r}
		c.mu.Unlock()
		ff.comms[r] = c
	}
	return ff
}

// Comms returns the per-rank communicators.
func (ff *FaultFabric) Comms() []*Comm { return ff.comms }

// SetLoss configures per-message drop and duplication probabilities
// (evaluated in that order from each sender's seeded stream).
func (ff *FaultFabric) SetLoss(drop, dup float64) {
	ff.mu.Lock()
	ff.drop, ff.dup = drop, dup
	ff.mu.Unlock()
}

// Sever cuts the (a, b) link in both directions; both ranks stay alive.
func (ff *FaultFabric) Sever(a, b int) {
	if a > b {
		a, b = b, a
	}
	ff.mu.Lock()
	ff.severed[[2]int{a, b}] = true
	ff.mu.Unlock()
}

// Kill makes rank r a crashed process: its endpoint fails immediately
// and all its traffic is dropped from now on. Idempotent.
func (ff *FaultFabric) Kill(r int) {
	ff.mu.Lock()
	if ff.killed[r] {
		ff.mu.Unlock()
		return
	}
	ff.killed[r] = true
	ff.mu.Unlock()
	ff.comms[r].Fail(&RankFailedError{Rank: r, Err: errors.New("killed by fault fabric")})
}

// Killed returns the ranks killed so far, in rank order.
func (ff *FaultFabric) Killed() []int {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	var out []int
	for r, k := range ff.killed {
		if k {
			out = append(out, r)
		}
	}
	return out
}

// Close tears down the underlying fabric. Call only after all surviving
// ranks have finished communicating.
func (ff *FaultFabric) Close() { ff.inner.Close() }

// Send implements Transport with the fault rules applied.
func (t *faultTransport) Send(dst, tag int, data []byte) error {
	ff := t.f
	lo, hi := t.rank, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	ff.mu.Lock()
	if ff.killed[t.rank] {
		ff.mu.Unlock()
		return fmt.Errorf("rank %d is killed", t.rank)
	}
	if ff.killed[dst] || ff.severed[[2]int{lo, hi}] {
		// A dead peer or a cut link swallows the bytes silently — the
		// sender's local send "succeeds", as with a one-way TCP partition.
		ff.mu.Unlock()
		return nil
	}
	copies := 1
	if ff.drop > 0 || ff.dup > 0 {
		x := ff.rngs[t.rank].Float64()
		switch {
		case x < ff.drop:
			copies = 0
		case x < ff.drop+ff.dup:
			copies = 2
		}
	}
	orig := ff.orig[t.rank]
	ff.mu.Unlock()
	for i := 0; i < copies; i++ {
		payload := data
		if i > 0 {
			payload = append([]byte(nil), data...)
		}
		if err := orig.Send(dst, tag, payload); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Transport per endpoint (no-op; close the fabric).
func (t *faultTransport) Close() error { return nil }
