package comm

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// membership_test.go pins the epoch/view plane: view algebra, the
// coordinator state machine (idempotent joins, incarnation assignment,
// deterministic proposals, seal/adopt), the incarnation-keyed failure
// detector (a rejoined address must not be insta-convicted by stale
// verdicts against its previous life), and the TCP join handshake
// including its retry behavior when the request is lost mid-flight.

func TestViewShrinkKeepsOrderAndBumpsEpoch(t *testing.T) {
	v := InitialView([]string{"a", "b", "c", "d"})
	next := v.Shrink("b", "d")
	if next.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", next.Epoch)
	}
	if got := next.Addrs(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("survivors %v, want [a c]", got)
	}
	if v.Epoch != 0 || len(v.Members) != 4 {
		t.Fatal("Shrink mutated the original view")
	}
	if next.RankOf("b") != -1 || next.RankOf("c") != 1 {
		t.Fatalf("RankOf after shrink: b=%d c=%d", next.RankOf("b"), next.RankOf("c"))
	}
	if !next.Contains(Member{Addr: "a", Incarnation: 1}) || next.Contains(Member{Addr: "a", Incarnation: 2}) {
		t.Fatal("Contains must match the exact (address, incarnation) pair")
	}
}

func TestSuspicionTableCoversOlderIncarnations(t *testing.T) {
	tab := NewSuspicionTable()
	if tab.Convicted("x", 1) || tab.Highest("x") != 0 {
		t.Fatal("empty table must convict nothing")
	}
	tab.Convict("x", 3)
	tab.Convict("x", 2) // lower conviction must not regress the high-water mark
	if tab.Highest("x") != 3 {
		t.Fatalf("highest %d, want 3", tab.Highest("x"))
	}
	if !tab.Convicted("x", 2) || !tab.Convicted("x", 3) {
		t.Fatal("incarnations at or below the high-water mark are convicted")
	}
	if tab.Convicted("x", 4) || tab.Convicted("y", 1) {
		t.Fatal("newer incarnations and other addresses are not convicted")
	}
}

func TestMembershipJoinIdempotentAndSeal(t *testing.T) {
	m := NewMembership(InProcView(2), 0, NewSuspicionTable())
	mb, err := m.RequestJoin("joiner")
	if err != nil {
		t.Fatal(err)
	}
	if mb.Incarnation != 1 {
		t.Fatalf("first join at incarnation %d, want 1", mb.Incarnation)
	}
	// The retransmit case: the same address asking again (reply lost
	// mid-handshake) must get the identical pending member back, not a
	// second admission.
	dup, err := m.RequestJoin("joiner")
	if err != nil {
		t.Fatal(err)
	}
	if dup != mb {
		t.Fatalf("duplicate join got %+v, want %+v", dup, mb)
	}
	if !m.HasPending() {
		t.Fatal("join must be pending before the seal")
	}
	prop := m.Propose()
	if prop.Epoch != 1 || len(prop.Members) != 3 || prop.Members[2] != mb {
		t.Fatalf("proposal %+v, want epoch 1 with the joiner appended", prop)
	}
	m.Seal(prop, 6)
	if m.HasPending() {
		t.Fatal("seal must clear the admitted join")
	}
	if got := m.View(); got.Epoch != 1 || len(got.Members) != 3 {
		t.Fatalf("sealed view %+v", got)
	}
	// Now a member: the same request is rejected with the retryable
	// sentinel until a failure shrink deposes it.
	if _, err := m.RequestJoin("joiner"); !errors.Is(err, ErrAlreadyMember) {
		t.Fatalf("join of a current member got %v, want ErrAlreadyMember", err)
	}
}

func TestMembershipRejoinGetsFreshIncarnation(t *testing.T) {
	m := NewMembership(InProcView(3), 0, NewSuspicionTable())
	m.Adopt(m.View().Shrink("inproc-1"))
	mb, err := m.RequestJoin("inproc-1")
	if err != nil {
		t.Fatal(err)
	}
	if mb.Incarnation != 2 {
		t.Fatalf("rejoin at incarnation %d, want 2 (address was a member at 1)", mb.Incarnation)
	}
}

// TestMembershipHonorsForeignConvictions pins the coordinator-takeover
// case: the new coordinator never issued the dead rank's incarnation
// itself, but the suspicion table it inherited has the conviction, and a
// rejoiner must be issued an incarnation above it.
func TestMembershipHonorsForeignConvictions(t *testing.T) {
	tab := NewSuspicionTable()
	tab.Convict("ghost", 7)
	m := NewMembership(InProcView(2), 0, tab)
	mb, err := m.RequestJoin("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if mb.Incarnation != 8 {
		t.Fatalf("rejoin at incarnation %d, want 8 (table convicted 7)", mb.Incarnation)
	}
}

func TestMembershipMaxRanks(t *testing.T) {
	m := NewMembership(InProcView(2), 3, NewSuspicionTable())
	if _, err := m.RequestJoin("third"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RequestJoin("fourth"); err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("join beyond max-ranks got %v, want a membership-is-full error", err)
	}
}

// TestMembershipProposalOrderIsArrivalIndependent pins that two joins
// racing the same epoch always land in the same ranks: the proposal
// sorts pending members, so whichever request reached the coordinator
// first is irrelevant.
func TestMembershipProposalOrderIsArrivalIndependent(t *testing.T) {
	propose := func(order []string) View {
		m := NewMembership(InProcView(2), 0, NewSuspicionTable())
		for _, a := range order {
			if _, err := m.RequestJoin(a); err != nil {
				t.Fatal(err)
			}
		}
		return m.Propose()
	}
	a := propose([]string{"alpha", "beta"})
	b := propose([]string{"beta", "alpha"})
	if len(a.Members) != 4 || a.Members[2].Addr != "alpha" || a.Members[3].Addr != "beta" {
		t.Fatalf("proposal %+v, want pending sorted by address", a)
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			t.Fatalf("proposals differ by arrival order: %+v vs %+v", a, b)
		}
	}
}

func TestWaitSealedWakesOnSeal(t *testing.T) {
	m := NewMembership(InProcView(1), 0, NewSuspicionTable())
	mb, err := m.RequestJoin("late")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		m.Seal(m.Propose(), 9)
	}()
	view, rank, resume, err := m.WaitSealed(mb, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 1 || rank != 1 || resume != 9 {
		t.Fatalf("sealed (epoch %d, rank %d, resume %d), want (1, 1, 9)", view.Epoch, rank, resume)
	}
}

func TestWaitSealedTimesOut(t *testing.T) {
	m := NewMembership(InProcView(1), 0, NewSuspicionTable())
	mb, err := m.RequestJoin("late")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.WaitSealed(mb, 30*time.Millisecond); err == nil {
		t.Fatal("WaitSealed must time out when nothing seals")
	}
}

// TestDetectorKeyedByIncarnation is the regression test for the detector
// state leak: a conviction against (addr, inc) must insta-fail only that
// incarnation — the same address rejoining at inc+1 gets a full
// suspicion window and stays unconvicted while it heartbeats.
func TestDetectorKeyedByIncarnation(t *testing.T) {
	const suspicion = 200 * time.Millisecond
	tab := NewSuspicionTable()
	tab.Convict("addr-1", 1)

	// Old incarnation: insta-convicted at startup.
	{
		f := NewFabric(2)
		members := []Member{{Addr: "addr-0", Incarnation: 1}, {Addr: "addr-1", Incarnation: 1}}
		d := StartDetectorView(f.Comms()[0], 10*time.Millisecond, suspicion, members, tab)
		_, err := f.Comms()[0].RecvTimeout(1, 7, time.Second)
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 1 {
			t.Fatalf("convicted incarnation not insta-failed: %v", err)
		}
		d.Stop()
		f.Close()
	}

	// Fresh incarnation at the same address: must survive well past a
	// suspicion window as long as it heartbeats.
	{
		f := NewFabric(2)
		members := []Member{{Addr: "addr-0", Incarnation: 1}, {Addr: "addr-1", Incarnation: 2}}
		var wg sync.WaitGroup
		var failed error
		wg.Add(2)
		go func() {
			defer wg.Done()
			d := StartDetectorView(f.Comms()[0], 10*time.Millisecond, suspicion, members, tab)
			defer d.Stop()
			_, err := f.Comms()[0].RecvTimeout(1, 7, 3*suspicion)
			if err != ErrRecvTimeout {
				failed = err
			}
		}()
		go func() {
			defer wg.Done()
			d := StartDetectorView(f.Comms()[1], 10*time.Millisecond, suspicion, members, tab)
			defer d.Stop()
			time.Sleep(3 * suspicion)
		}()
		wg.Wait()
		f.Close()
		if failed != nil {
			t.Fatalf("fresh incarnation at a convicted address was failed: %v", failed)
		}
		if tab.Convicted("addr-1", 2) {
			t.Fatal("fresh incarnation must not be convicted while heartbeating")
		}
	}
}

// TestDetectorIgnoresStaleIncarnationBeats pins that a draining process
// from a previous view cannot keep its successor's liveness entry fresh:
// beats stamped with an older incarnation are discarded, so the peer is
// convicted by silence even while stale beats keep arriving.
func TestDetectorIgnoresStaleIncarnationBeats(t *testing.T) {
	const suspicion = 150 * time.Millisecond
	f := NewFabric(2)
	defer f.Close()
	members := []Member{{Addr: "addr-0", Incarnation: 1}, {Addr: "addr-1", Incarnation: 3}}
	tab := NewSuspicionTable()

	// Rank 1 runs no detector; it only floods rank 0 with beats stamped
	// incarnation 2 — a previous life at addr-1.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			KeepaliveView(f.Comms()[1], 10*time.Millisecond, 20*time.Millisecond, 2)
		}
	}()

	d := StartDetectorView(f.Comms()[0], 10*time.Millisecond, suspicion, members, tab)
	defer d.Stop()
	_, err := f.Comms()[0].RecvTimeout(1, 7, 3*suspicion)
	close(stop)
	wg.Wait()
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 1 {
		t.Fatalf("stale beats kept the peer alive: %v", err)
	}
	if !tab.Convicted("addr-1", 3) {
		t.Fatal("conviction must be recorded in the suspicion table")
	}
}

// TestDetectorAcceptsUnstampedBeats pins compatibility with the plain
// Keepalive path: a beat with no incarnation payload counts as current.
func TestDetectorAcceptsUnstampedBeats(t *testing.T) {
	const suspicion = 150 * time.Millisecond
	f := NewFabric(2)
	defer f.Close()
	members := []Member{{Addr: "addr-0", Incarnation: 1}, {Addr: "addr-1", Incarnation: 3}}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			Keepalive(f.Comms()[1], 10*time.Millisecond, 20*time.Millisecond)
		}
	}()

	d := StartDetectorView(f.Comms()[0], 10*time.Millisecond, suspicion, members, NewSuspicionTable())
	defer d.Stop()
	_, err := f.Comms()[0].RecvTimeout(1, 7, 3*suspicion)
	close(stop)
	wg.Wait()
	if err != ErrRecvTimeout {
		t.Fatalf("unstamped beats must keep the peer alive, got %v", err)
	}
}

func TestJoinTCPHandshake(t *testing.T) {
	m := NewMembership(InProcView(2), 0, NewSuspicionTable())
	srv, err := ServeMembership("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The coordinator side: seal as soon as the request lands (standing
	// in for the cluster draining to the next iteration boundary).
	go func() {
		for !m.HasPending() {
			time.Sleep(5 * time.Millisecond)
		}
		m.Seal(m.Propose(), 12)
	}()

	view, rank, resume, err := RequestJoinTCP(srv.Addr(), "10.0.0.9:7000", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 1 || rank != 2 || resume != 12 {
		t.Fatalf("joined (epoch %d, rank %d, resume %d), want (1, 2, 12)", view.Epoch, rank, resume)
	}
	if !view.Contains(Member{Addr: "10.0.0.9:7000", Incarnation: 1}) {
		t.Fatalf("sealed view %+v misses the joiner", view)
	}
}

// TestJoinTCPRetriesUntilCoordinatorUp pins the lost-request case: the
// joiner starts before the coordinator listens, and the retry loop must
// carry it through the dial failures to a successful admission.
func TestJoinTCPRetriesUntilCoordinatorUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; the server comes up on it later

	m := NewMembership(InProcView(2), 0, NewSuspicionTable())
	var srv *MembershipServer
	var srvErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(150 * time.Millisecond)
		srv, srvErr = ServeMembership(addr, m)
		if srvErr != nil {
			return
		}
		for !m.HasPending() {
			time.Sleep(5 * time.Millisecond)
		}
		m.Seal(m.Propose(), 4)
	}()

	view, _, resume, err := RequestJoinTCP(addr, "10.0.0.9:7000", 10*time.Second)
	<-done
	if srvErr != nil {
		t.Skipf("rebinding %s: %v", addr, srvErr)
	}
	defer srv.Close()
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 1 || resume != 4 {
		t.Fatalf("joined (epoch %d, resume %d), want (1, 4)", view.Epoch, resume)
	}
}

// TestJoinTCPRetriesThroughAlreadyMember pins the rejoin race: a crashed
// rank redials while the old view still lists its address, gets the
// retryable ErrAlreadyMember rejection, and succeeds once the failure
// shrink has deposed its previous incarnation.
func TestJoinTCPRetriesThroughAlreadyMember(t *testing.T) {
	m := NewMembership(InProcView(3), 0, NewSuspicionTable())
	srv, err := ServeMembership("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	go func() {
		// Let at least one attempt hit the ErrAlreadyMember rejection,
		// then depose the old incarnation and admit the new one.
		time.Sleep(250 * time.Millisecond)
		m.Adopt(m.View().Shrink("inproc-2"))
		for !m.HasPending() {
			time.Sleep(5 * time.Millisecond)
		}
		m.Seal(m.Propose(), 8)
	}()

	view, rank, resume, err := RequestJoinTCP(srv.Addr(), "inproc-2", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resume != 8 || rank != 2 {
		t.Fatalf("rejoined (rank %d, resume %d), want (2, 8)", rank, resume)
	}
	if !view.Contains(Member{Addr: "inproc-2", Incarnation: 2}) {
		t.Fatalf("sealed view %+v must hold the fresh incarnation", view)
	}
}
