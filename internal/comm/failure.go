package comm

import (
	"encoding/binary"
	"fmt"
	"time"
)

// failure.go is the failure-detection layer: every rank runs a Detector
// that exchanges heartbeats with all peers over a reserved tag. A peer
// silent for longer than the suspicion timeout fails the local endpoint
// with a RankFailedError, which wakes every blocked error-returning
// operation — so a rank stuck in a ghost wait or a collective on a dead
// peer unwinds within the suspicion timeout instead of hanging forever.
// MPI-style accuracy caveats apply: the detector can only suspect, not
// prove, death; an extremely delayed peer is indistinguishable from a
// dead one, so the suspicion timeout trades detection latency against
// false positives.

// heartbeatTag is the reserved tag of detector traffic — far above the
// engine's per-iteration item tags and the dist startup tags (1<<28),
// far below the collective space (1<<30).
const heartbeatTag = 1 << 29

// RankFailedError reports a dead (or suspected-dead) peer.
type RankFailedError struct {
	// Rank is the failed rank in the communicator that detected the
	// failure, or -1 when the failing rank is unknown (e.g. a local
	// transport error).
	Rank int
	// Err describes how the failure was detected.
	Err error
}

func (e *RankFailedError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("comm: rank failed: %v", e.Err)
	}
	return fmt.Sprintf("comm: rank %d failed: %v", e.Rank, e.Err)
}

func (e *RankFailedError) Unwrap() error { return e.Err }

// Detector is one rank's heartbeat failure detector: a sender goroutine
// emits heartbeats to every peer each interval, a receiver goroutine
// tracks per-peer last-heard times and fails the endpoint when a peer's
// silence exceeds the suspicion timeout.
type Detector struct {
	c                    *Comm
	interval, suspicion  time.Duration
	members              []Member        // per-rank identities; nil = unkeyed
	table                *SuspicionTable // cross-round convictions; may be nil
	beat                 []byte          // heartbeat payload (own incarnation), nil unkeyed
	done                 chan struct{}
	senderDone, recvDone chan struct{}
}

// StartDetector attaches a heartbeat failure detector to the endpoint.
// interval is the heartbeat period (pick ≲ suspicion/10); suspicion is
// how long a peer may stay silent before it is declared failed. On a
// single-rank communicator the detector is inert. Stop it before
// closing the endpoint.
func StartDetector(c *Comm, interval, suspicion time.Duration) *Detector {
	return StartDetectorView(c, interval, suspicion, nil, nil)
}

// StartDetectorView is StartDetector with detector state keyed by
// (address, incarnation): members names each rank's identity and table
// carries convictions across re-meshes. Heartbeats then carry the
// sender's incarnation; beats from an older incarnation at a peer's
// address are ignored (a stale process cannot keep its successor's
// entry fresh), convictions are recorded in the table, and a member
// whose exact incarnation the table already convicted is failed
// immediately — while a *new* incarnation at a convicted address gets a
// full suspicion window, which is what lets a crashed rank rejoin at
// its old address without being insta-convicted by survivors' stale
// state. nil members (and table) degrade to the unkeyed StartDetector
// behavior.
func StartDetectorView(c *Comm, interval, suspicion time.Duration, members []Member, table *SuspicionTable) *Detector {
	if interval <= 0 {
		interval = suspicion / 20
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	d := &Detector{
		c: c, interval: interval, suspicion: suspicion,
		members:    members,
		table:      table,
		done:       make(chan struct{}),
		senderDone: make(chan struct{}),
		recvDone:   make(chan struct{}),
	}
	if members != nil {
		if len(members) != c.Size() {
			c.Fail(&RankFailedError{Rank: -1, Err: fmt.Errorf("detector got %d member identities for a size-%d communicator", len(members), c.Size())})
			close(d.senderDone)
			close(d.recvDone)
			return d
		}
		d.beat = binary.LittleEndian.AppendUint64(nil, members[c.Rank()].Incarnation)
		if table != nil {
			for r, mb := range members {
				if r != c.Rank() && table.Convicted(mb.Addr, mb.Incarnation) {
					c.Fail(&RankFailedError{
						Rank: r,
						Err:  fmt.Errorf("incarnation %d at %s was already convicted", mb.Incarnation, mb.Addr),
					})
					close(d.senderDone)
					close(d.recvDone)
					return d
				}
			}
		}
	}
	if c.Size() > 1 && suspicion > 0 {
		go d.sendLoop()
		go d.recvLoop()
	} else {
		close(d.senderDone)
		close(d.recvDone)
	}
	return d
}

// Stop shuts the detector down and waits for its goroutines. It does not
// un-fail an endpoint the detector already failed.
func (d *Detector) Stop() {
	select {
	case <-d.done:
	default:
		close(d.done)
	}
	<-d.senderDone
	<-d.recvDone
}

// sendHeartbeat sends one best-effort heartbeat, bypassing the failed
// state: an endpoint that has convicted a dead peer must keep proving its
// own liveness while its owner unwinds, or peers whose detectors have not
// yet convicted the dead rank would suspect this one instead. Only a
// closed endpoint stops heartbeats.
func (c *Comm) sendHeartbeat(dst int, payload []byte) error {
	if dst < 0 || dst >= c.size {
		return fmt.Errorf("invalid destination rank %d (size %d)", dst, c.size)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("endpoint closed")
	}
	tr := c.tr
	c.mu.Unlock()
	if tr == nil {
		return fmt.Errorf("endpoint has no transport")
	}
	return tr.Send(dst, heartbeatTag, payload)
}

// Keepalive emits best-effort heartbeats to every peer for the given
// duration, even on a failed endpoint. Survivors of a rank failure call
// it while unwinding: their own detector already has its verdict, but a
// peer whose detector has not yet convicted the dead rank would otherwise
// see this rank go quiet first and suspect it instead — and survivors
// that disagree about who died cannot rebuild a mesh. The duration should
// cover a full suspicion window, so the slowest peer convicts the right
// rank before this one goes silent.
func Keepalive(c *Comm, interval, duration time.Duration) {
	keepalive(c, interval, duration, nil)
}

// KeepaliveView is Keepalive with the sender's incarnation stamped on
// every beat, for clusters running incarnation-keyed detectors (an
// unstamped beat is accepted as current by both detector modes, but a
// stamped one lets peers discard beats from a stale incarnation at this
// address).
func KeepaliveView(c *Comm, interval, duration time.Duration, incarnation uint64) {
	keepalive(c, interval, duration, binary.LittleEndian.AppendUint64(nil, incarnation))
}

func keepalive(c *Comm, interval, duration time.Duration, payload []byte) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		for peer := 0; peer < c.Size(); peer++ {
			if peer == c.Rank() {
				continue
			}
			if c.sendHeartbeat(peer, payload) != nil {
				return // endpoint closed: nothing left to prove
			}
		}
		time.Sleep(interval)
	}
}

// sendLoop emits best-effort heartbeats: a send error means the endpoint
// is closed (the peer-death case is handled by sendHeartbeat bypassing
// the failed state), so errors just end the loop.
func (d *Detector) sendLoop() {
	defer close(d.senderDone)
	tick := time.NewTicker(d.interval)
	defer tick.Stop()
	beat := func() bool {
		for peer := 0; peer < d.c.Size(); peer++ {
			if peer == d.c.Rank() {
				continue
			}
			if err := d.c.sendHeartbeat(peer, d.beat); err != nil {
				return false
			}
		}
		return true
	}
	if !beat() {
		return
	}
	for {
		select {
		case <-d.done:
			return
		case <-tick.C:
			if !beat() {
				return
			}
		}
	}
}

// staleBeat reports whether a received heartbeat came from an older
// incarnation than the member the detector expects at that rank — a
// process from a previous view still draining must not keep its
// successor's liveness entry fresh. Unstamped beats (legacy detectors,
// plain Keepalive) are always accepted as current.
func (d *Detector) staleBeat(m Message) bool {
	if d.members == nil || m.Src < 0 || m.Src >= len(d.members) || len(m.Data) < 8 {
		return false
	}
	return binary.LittleEndian.Uint64(m.Data) < d.members[m.Src].Incarnation
}

// recvLoop consumes heartbeats and fails the endpoint on the first peer
// whose silence exceeds the suspicion timeout. Peers get a full
// suspicion window from startup before they can be suspected, so ranks
// that start the detector at slightly different times never see a false
// positive at t=0.
func (d *Detector) recvLoop() {
	defer close(d.recvDone)
	last := make([]time.Time, d.c.Size())
	now := time.Now()
	for r := range last {
		last[r] = now
	}
	for {
		select {
		case <-d.done:
			return
		default:
		}
		m, err := d.c.RecvTimeout(AnySource, heartbeatTag, d.interval)
		switch {
		case err == nil:
			if !d.staleBeat(m) {
				last[m.Src] = time.Now()
			}
		case err == ErrRecvTimeout:
			// fall through to the suspicion check
		default:
			return // endpoint failed or closed elsewhere
		}
		now := time.Now()
		for r := range last {
			if r == d.c.Rank() {
				continue
			}
			if silence := now.Sub(last[r]); silence > d.suspicion {
				if d.table != nil && d.members != nil {
					d.table.Convict(d.members[r].Addr, d.members[r].Incarnation)
				}
				d.c.Fail(&RankFailedError{
					Rank: r,
					Err:  fmt.Errorf("no heartbeat for %v (suspicion timeout %v)", silence.Round(time.Millisecond), d.suspicion),
				})
				return
			}
		}
	}
}
