package comm

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// membership.go is the epoch/view plane of an elastic cluster: a View is
// a generation-numbered list of (address, incarnation) members, and a
// Membership is the coordinator-side state machine — rank 0, or the
// lowest survivor after a failure — that accepts join requests, proposes
// the next view, and seals it once every current member has drained to
// an iteration boundary. Views only ever move forward: every change
// (admission or failure shrink) bumps the epoch, and a returning address
// gets a fresh incarnation so survivors' stale suspicion state (see
// SuspicionTable) can never convict the new process for the old one's
// death.

// Member identifies one cluster process: its fabric listen address plus
// an incarnation number distinguishing successive processes at the same
// address. Incarnations start at 1 and only grow.
type Member struct {
	Addr        string `json:"addr"`
	Incarnation uint64 `json:"incarnation"`
}

// View is one sealed membership generation: the member list in rank
// order. Rank i of epoch E is Members[i].
type View struct {
	Epoch   int      `json:"epoch"`
	Members []Member `json:"members"`
}

// InitialView builds epoch 0 over a fixed address list, every member at
// incarnation 1 — the view a statically-launched cluster starts from.
func InitialView(addrs []string) View {
	v := View{Members: make([]Member, len(addrs))}
	for i, a := range addrs {
		v.Members[i] = Member{Addr: a, Incarnation: 1}
	}
	return v
}

// InProcView is InitialView over synthetic in-process addresses — the
// identity space of the virtual-cluster drivers and their tests.
func InProcView(n int) View {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("inproc-%d", i)
	}
	return InitialView(addrs)
}

// Addrs returns the members' addresses in rank order.
func (v View) Addrs() []string {
	out := make([]string, len(v.Members))
	for i, m := range v.Members {
		out[i] = m.Addr
	}
	return out
}

// RankOf returns the rank of the member at addr, or -1.
func (v View) RankOf(addr string) int {
	for i, m := range v.Members {
		if m.Addr == addr {
			return i
		}
	}
	return -1
}

// Contains reports whether the exact (address, incarnation) member is in
// the view.
func (v View) Contains(mb Member) bool {
	r := v.RankOf(mb.Addr)
	return r >= 0 && v.Members[r].Incarnation == mb.Incarnation
}

// Shrink returns the next-epoch view with the dead addresses removed.
// Survivors keep their relative order, so every survivor computing
// Shrink over the same verdict derives the identical view without any
// extra agreement round.
func (v View) Shrink(dead ...string) View {
	gone := make(map[string]bool, len(dead))
	for _, a := range dead {
		gone[a] = true
	}
	next := View{Epoch: v.Epoch + 1, Members: make([]Member, 0, len(v.Members))}
	for _, m := range v.Members {
		if !gone[m.Addr] {
			next.Members = append(next.Members, m)
		}
	}
	return next
}

// SuspicionTable records convicted (address, incarnation) pairs across
// the rounds of an elastic run. Detector state itself is per-round; the
// table is what survives a re-mesh, so a returning address is insta-
// convicted only when it presents an incarnation the cluster already
// declared dead — a fresh incarnation always gets a full suspicion
// window.
type SuspicionTable struct {
	mu        sync.Mutex
	convicted map[string]uint64 // addr → highest convicted incarnation
}

// NewSuspicionTable returns an empty conviction table.
func NewSuspicionTable() *SuspicionTable {
	return &SuspicionTable{convicted: make(map[string]uint64)}
}

// Convict records that the given incarnation at addr was declared dead.
func (t *SuspicionTable) Convict(addr string, inc uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if inc > t.convicted[addr] {
		t.convicted[addr] = inc
	}
}

// Convicted reports whether the (addr, incarnation) pair is covered by a
// recorded conviction — the exact incarnation or an older one.
func (t *SuspicionTable) Convicted(addr string, inc uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return inc <= t.convicted[addr]
}

// Highest returns the highest convicted incarnation at addr (0 = none).
func (t *SuspicionTable) Highest(addr string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.convicted[addr]
}

// Membership is the coordinator's view state machine. Join requests
// accumulate as pending members; Propose folds them into the next-epoch
// view; Seal commits a view once the cluster has drained to it, waking
// any joiner blocked in WaitSealed. All methods are safe for concurrent
// use — joiners arrive over TCP while the coordinator's sampler runs.
type Membership struct {
	mu         sync.Mutex
	view       View
	pending    []Member
	high       map[string]uint64 // addr → highest incarnation ever issued or seen
	max        int               // admission cap (0 = unbounded)
	table      *SuspicionTable   // optional: convicted incarnations also raise the high-water mark
	resumeIter int
	sealCh     chan struct{} // closed (and replaced) on every Seal
}

// NewMembership starts the state machine at the given sealed view.
// maxRanks caps admissions (0 = unbounded). table, when non-nil, makes
// incarnation assignment account for convictions recorded before this
// coordinator took over — a rejoiner at a dead address must outnumber
// the incarnation the cluster convicted, even when this process never
// issued it.
func NewMembership(view View, maxRanks int, table *SuspicionTable) *Membership {
	m := &Membership{
		view:   view,
		high:   make(map[string]uint64),
		max:    maxRanks,
		table:  table,
		sealCh: make(chan struct{}),
	}
	m.bumpHighLocked(view)
	return m
}

func (m *Membership) bumpHighLocked(v View) {
	for _, mb := range v.Members {
		if mb.Incarnation > m.high[mb.Addr] {
			m.high[mb.Addr] = mb.Incarnation
		}
	}
}

// View returns the current sealed view.
func (m *Membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view
}

// HasPending reports whether any join requests await admission.
func (m *Membership) HasPending() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending) > 0
}

// RequestJoin files a join request for addr and returns the member
// identity it will be admitted as. Duplicate requests for an address
// already pending are idempotent (the retransmit case: a joiner whose
// reply was lost asks again and must not be admitted twice). An address
// that is currently a member is rejected with ErrAlreadyMember — the
// caller retries after the failure shrink has deposed it.
func (m *Membership) RequestJoin(addr string) (Member, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.view.RankOf(addr) >= 0 {
		return Member{}, fmt.Errorf("%w: %s is in epoch %d", ErrAlreadyMember, addr, m.view.Epoch)
	}
	for _, p := range m.pending {
		if p.Addr == addr {
			return p, nil
		}
	}
	if m.max > 0 && len(m.view.Members)+len(m.pending) >= m.max {
		return Member{}, fmt.Errorf("comm: membership is full (%d members, %d pending, max %d)",
			len(m.view.Members), len(m.pending), m.max)
	}
	base := m.high[addr]
	if m.table != nil {
		if c := m.table.Highest(addr); c > base {
			base = c
		}
	}
	mb := Member{Addr: addr, Incarnation: base + 1}
	m.high[addr] = mb.Incarnation
	m.pending = append(m.pending, mb)
	return mb, nil
}

// ErrAlreadyMember rejects a join for an address the current view still
// holds. Retryable: once the failure shrink deposes the old incarnation,
// the same request succeeds with a fresh one.
var ErrAlreadyMember = fmt.Errorf("comm: address is already a member")

// Propose returns the next-epoch view: current members in rank order,
// then the pending joiners sorted by (address, incarnation). The sort
// makes the proposal independent of request arrival order, so two joins
// racing the same epoch always produce the same view. Propose does not
// commit — the cluster drains first, then the coordinator Seals.
func (m *Membership) Propose() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := View{Epoch: m.view.Epoch + 1, Members: append([]Member(nil), m.view.Members...)}
	pend := append([]Member(nil), m.pending...)
	sort.Slice(pend, func(a, b int) bool {
		if pend[a].Addr != pend[b].Addr {
			return pend[a].Addr < pend[b].Addr
		}
		return pend[a].Incarnation < pend[b].Incarnation
	})
	next.Members = append(next.Members, pend...)
	return next
}

// Seal commits a drained view change: v becomes the current view,
// pending members now admitted are cleared, resumeIter records the
// iteration the new cluster resumes from, and every joiner blocked in
// WaitSealed wakes.
func (m *Membership) Seal(v View, resumeIter int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.view = v
	m.resumeIter = resumeIter
	m.bumpHighLocked(v)
	kept := m.pending[:0]
	for _, p := range m.pending {
		if !v.Contains(p) {
			kept = append(kept, p)
		}
	}
	m.pending = kept
	close(m.sealCh)
	m.sealCh = make(chan struct{})
}

// Adopt records a view change this process did not seal itself — the
// failure-shrink path, where every survivor derives the same Shrink
// view locally. Pending joins are kept: the next Propose re-offers them
// (the "coordinator died during a proposed-but-unsealed view" case
// resolves by the takeover coordinator re-proposing).
func (m *Membership) Adopt(v View) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.view = v
	m.bumpHighLocked(v)
}

// WaitSealed blocks until a sealed view contains mb, returning that
// view, mb's rank in it, and the iteration the new cluster resumes
// from.
func (m *Membership) WaitSealed(mb Member, timeout time.Duration) (View, int, int, error) {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		if m.view.Contains(mb) {
			v, ri := m.view, m.resumeIter
			m.mu.Unlock()
			return v, v.RankOf(mb.Addr), ri, nil
		}
		ch := m.sealCh
		m.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return View{}, 0, 0, fmt.Errorf("comm: no sealed view admitted %s (incarnation %d) within %v", mb.Addr, mb.Incarnation, timeout)
		}
		tm := time.NewTimer(wait)
		select {
		case <-ch:
			tm.Stop()
		case <-tm.C:
			return View{}, 0, 0, fmt.Errorf("comm: no sealed view admitted %s (incarnation %d) within %v", mb.Addr, mb.Incarnation, timeout)
		}
	}
}
