package comm

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// membership_tcp.go carries the join handshake over real sockets: a
// joiner dials the coordinator's membership listener, sends one JSON
// join request, and the coordinator holds the connection open until the
// requested member is in a sealed view — the reply then carries the
// view, the joiner's rank, and the iteration to resume from. The
// request is idempotent (Membership.RequestJoin dedups by address), so
// a joiner whose connection died mid-handshake simply redials and asks
// again.

// joinRequest is the joiner→coordinator half of the handshake.
type joinRequest struct {
	Addr string `json:"addr"` // the joiner's fabric listen address
}

// joinReply is the coordinator→joiner half. Retry marks transient
// rejections (address still in the view awaiting its failure shrink, or
// the seal wait timed out) the joiner should redial for.
type joinReply struct {
	Err        string `json:"err,omitempty"`
	Retry      bool   `json:"retry,omitempty"`
	View       View   `json:"view,omitempty"`
	Rank       int    `json:"rank,omitempty"`
	ResumeIter int    `json:"resume_iter,omitempty"`
}

// serveSealTimeout caps how long one join connection may wait for its
// seal before the joiner is told to redial (keeping the handshake
// re-entrant instead of pinning connections forever).
const serveSealTimeout = 5 * time.Minute

// MembershipServer accepts join requests on a listen address and parks
// each until its member is sealed into a view.
type MembershipServer struct {
	ln  net.Listener
	m   *Membership
	wg  sync.WaitGroup
	mu  sync.Mutex
	cls bool
}

// ServeMembership starts a join listener for the coordinator's
// membership state machine.
func ServeMembership(addr string, m *Membership) (*MembershipServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &MembershipServer{ln: ln, m: m}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address (useful with ":0").
func (s *MembershipServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting joins and waits for in-flight handshakes.
func (s *MembershipServer) Close() {
	s.mu.Lock()
	s.cls = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *MembershipServer) closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cls
}

func (s *MembershipServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *MembershipServer) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var req joinRequest
	if err := json.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	reply := func(r joinReply) {
		conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		_ = json.NewEncoder(conn).Encode(&r)
	}
	mb, err := s.m.RequestJoin(req.Addr)
	if err != nil {
		reply(joinReply{Err: err.Error(), Retry: errors.Is(err, ErrAlreadyMember)})
		return
	}
	view, rank, resume, err := s.m.WaitSealed(mb, serveSealTimeout)
	if err != nil {
		reply(joinReply{Err: err.Error(), Retry: true})
		return
	}
	reply(joinReply{View: view, Rank: rank, ResumeIter: resume})
}

// RequestJoinTCP asks the coordinator at coordAddr to admit selfAddr as
// a new member and blocks until a view including it is sealed (or the
// timeout expires). Transient failures — coordinator not up yet,
// connection lost mid-handshake, the address still awaiting its failure
// shrink — are retried with backoff; the request is idempotent on the
// coordinator, so retries can never be admitted twice. Returns the
// sealed view, this process's rank in it, and the iteration to resume
// from.
func RequestJoinTCP(coordAddr, selfAddr string, timeout time.Duration) (View, int, int, error) {
	deadline := time.Now().Add(timeout)
	backoff := 100 * time.Millisecond
	var lastErr error
	for attempt := 0; ; attempt++ {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("no attempt completed")
			}
			return View{}, 0, 0, fmt.Errorf("comm: join via %s timed out after %v: %w", coordAddr, timeout, lastErr)
		}
		view, rank, resume, retry, err := requestJoinOnce(coordAddr, selfAddr, remain)
		if err == nil {
			return view, rank, resume, nil
		}
		if !retry {
			return View{}, 0, 0, err
		}
		lastErr = err
		sleep := backoff
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// requestJoinOnce runs one handshake attempt; retry marks errors worth
// redialing for.
func requestJoinOnce(coordAddr, selfAddr string, budget time.Duration) (View, int, int, bool, error) {
	dialTO := budget
	if dialTO > 5*time.Second {
		dialTO = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", coordAddr, dialTO)
	if err != nil {
		return View{}, 0, 0, true, err
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := json.NewEncoder(conn).Encode(&joinRequest{Addr: selfAddr}); err != nil {
		return View{}, 0, 0, true, err
	}
	conn.SetWriteDeadline(time.Time{})
	// The reply arrives only when the cluster drains to a sealed view —
	// potentially minutes later (-grow-at-iter). The overall budget is
	// the read deadline.
	conn.SetReadDeadline(time.Now().Add(budget))
	var rep joinReply
	if err := json.NewDecoder(conn).Decode(&rep); err != nil {
		return View{}, 0, 0, true, err
	}
	if rep.Err != "" {
		return View{}, 0, 0, rep.Retry, fmt.Errorf("comm: join rejected by %s: %s", coordAddr, rep.Err)
	}
	return rep.View, rep.Rank, rep.ResumeIter, false, nil
}
