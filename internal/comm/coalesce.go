package comm

// Coalescer implements the paper's Section IV-C send buffering: calling
// Isend once per updated item has too much per-message overhead and floods
// the runtime with in-flight messages, so updated items are appended to a
// per-destination buffer that is flushed as one message when full (and
// explicitly at phase end).
type Coalescer struct {
	c       *Comm
	dst     int
	tag     int
	maxSize int
	buf     []byte
	flushes int
	records int
}

// NewCoalescer creates a buffer of maxSize bytes toward dst. maxSize <= 0
// means flush on every record (the "no buffering" ablation).
func NewCoalescer(c *Comm, dst, tag, maxSize int) *Coalescer {
	return &Coalescer{c: c, dst: dst, tag: tag, maxSize: maxSize}
}

// Append adds one record; if the buffer would exceed its capacity the
// current contents are flushed first, so a record is never split across
// messages. A send failure (dead destination) surfaces as an error; the
// record is still buffered, so accounting stays consistent while the
// caller unwinds.
func (b *Coalescer) Append(record []byte) error {
	if b.maxSize > 0 && len(b.buf)+len(record) > b.maxSize && len(b.buf) > 0 {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	b.buf = append(b.buf, record...)
	b.records++
	if b.maxSize <= 0 {
		return b.Flush()
	}
	return nil
}

// Flush sends the buffered records (if any) as a single message.
func (b *Coalescer) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	data := b.buf
	b.buf = nil
	if err := b.c.SendE(b.dst, b.tag, data); err != nil {
		return err
	}
	b.flushes++
	return nil
}

// Flushes returns how many messages this buffer has produced.
func (b *Coalescer) Flushes() int { return b.flushes }

// Records returns how many records have been appended.
func (b *Coalescer) Records() int { return b.records }
