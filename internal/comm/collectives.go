package comm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The collectives come in two flavors: the error-returning E variants,
// which unwind cleanly when a peer dies mid-operation (the failure
// detector fails the endpoint, waking every blocked receive), and the
// original panicking wrappers, kept for SPMD code that treats any
// communication failure as fatal. Both run the identical algorithms —
// the wrappers delegate — so their results are bit-identical.

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ⌈log₂ P⌉ rounds of pairwise signals).
func (c *Comm) Barrier() {
	if err := c.BarrierE(); err != nil {
		panic(fmt.Sprintf("comm: Barrier rank %d: %v", c.rank, err))
	}
}

// BarrierE is Barrier returning an error when a peer fails mid-barrier.
func (c *Comm) BarrierE() error {
	tag := c.nextCollTag()
	p := c.size
	if p == 1 {
		return nil
	}
	for k := 1; k < p; k <<= 1 {
		dst := (c.rank + k) % p
		src := (c.rank - k + p) % p
		if err := c.SendE(dst, tag, nil); err != nil {
			return err
		}
		if _, err := c.RecvE(src, tag); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to all ranks and returns each rank's copy
// (binomial tree).
func (c *Comm) Bcast(root int, data []byte) []byte {
	out, err := c.BcastE(root, data)
	if err != nil {
		panic(fmt.Sprintf("comm: Bcast rank %d: %v", c.rank, err))
	}
	return out
}

// BcastE is Bcast returning an error when a peer fails mid-broadcast.
func (c *Comm) BcastE(root int, data []byte) ([]byte, error) {
	tag := c.nextCollTag()
	p := c.size
	if p == 1 {
		return data, nil
	}
	// Re-root the rank space so root behaves as virtual rank 0, then run
	// the standard binomial tree: receive once from (vr − lowest set bit),
	// forward to (vr + mask) for each smaller mask.
	vr := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			m, err := c.RecvE((vr-mask+root)%p, tag)
			if err != nil {
				return nil, err
			}
			data = m.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			if err := c.SendE((vr+mask+root)%p, tag, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Allgather collects every rank's blob; the result slice is indexed by
// rank. Implemented as a ring so each rank sends P-1 messages of its own
// size.
func (c *Comm) Allgather(mine []byte) [][]byte {
	out, err := c.AllgatherE(mine)
	if err != nil {
		panic(fmt.Sprintf("comm: Allgather rank %d: %v", c.rank, err))
	}
	return out
}

// AllgatherE is Allgather returning an error when a peer fails mid-ring.
func (c *Comm) AllgatherE(mine []byte) ([][]byte, error) {
	tag := c.nextCollTag()
	p := c.size
	out := make([][]byte, p)
	out[c.rank] = mine
	if p == 1 {
		return out, nil
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := mine
	curOwner := c.rank
	for step := 0; step < p-1; step++ {
		// Send the block we most recently received, pull a new one from
		// the left (classic allgather ring).
		if err := c.SendE(right, tag, appendOwner(cur, curOwner)); err != nil {
			return nil, err
		}
		m, err := c.RecvE(left, tag)
		if err != nil {
			return nil, err
		}
		cur, curOwner = splitOwner(m.Data)
		out[curOwner] = cur
	}
	return out, nil
}

func appendOwner(b []byte, owner int) []byte {
	out := make([]byte, len(b)+4)
	copy(out, b)
	binary.LittleEndian.PutUint32(out[len(b):], uint32(owner))
	return out
}

func splitOwner(b []byte) ([]byte, int) {
	n := len(b) - 4
	return b[:n], int(binary.LittleEndian.Uint32(b[n:]))
}

// AllreduceSumOrdered sums per-rank float64 vectors with a fixed
// reduction order: every rank gathers all partials and adds them in rank
// order, so the result is bit-identical on every rank and independent of
// message timing. This is the deterministic reduction the distributed
// hyperparameter sampling uses (DESIGN.md decision 6).
func (c *Comm) AllreduceSumOrdered(mine []float64) []float64 {
	out, err := c.AllreduceSumOrderedE(mine)
	if err != nil {
		panic(fmt.Sprintf("comm: AllreduceSumOrdered rank %d: %v", c.rank, err))
	}
	return out
}

// AllreduceSumOrderedE is AllreduceSumOrdered returning an error when a
// peer fails mid-reduction (or the partial lengths disagree).
func (c *Comm) AllreduceSumOrderedE(mine []float64) ([]float64, error) {
	blobs, err := c.AllgatherE(encodeFloat64s(mine))
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(mine))
	for r := 0; r < c.size; r++ {
		vals := decodeFloat64s(blobs[r])
		if len(vals) != len(out) {
			return nil, fmt.Errorf("allreduce length mismatch across ranks (%d vs %d)", len(vals), len(out))
		}
		for i, v := range vals {
			out[i] += v
		}
	}
	return out, nil
}

// AllreduceSumTree sums per-rank float64 vectors with recursive doubling:
// ⌈log₂ P⌉ rounds, lower latency than the ordered version but the
// summation tree (and hence the last bits) depends on P. Used where exact
// cross-P reproducibility is not required; the ablation benchmark
// compares both.
func (c *Comm) AllreduceSumTree(mine []float64) []float64 {
	out, err := c.AllreduceSumTreeE(mine)
	if err != nil {
		panic(fmt.Sprintf("comm: AllreduceSumTree rank %d: %v", c.rank, err))
	}
	return out
}

// AllreduceSumTreeE is AllreduceSumTree returning an error when a peer
// fails mid-reduction.
func (c *Comm) AllreduceSumTreeE(mine []float64) ([]float64, error) {
	tag := c.nextCollTag()
	p := c.size
	acc := append([]float64(nil), mine...)
	if p == 1 {
		return acc, nil
	}
	// Recursive doubling for power-of-two counts; fold the remainder into
	// the nearest lower power of two first.
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow
	// Extra ranks fold their data into partner (rank − pow) and receive
	// the final result from it afterwards.
	if c.rank >= pow {
		if err := c.SendE(c.rank-pow, tag, encodeFloat64s(acc)); err != nil {
			return nil, err
		}
		m, err := c.RecvE(c.rank-pow, tag)
		if err != nil {
			return nil, err
		}
		return decodeFloat64s(m.Data), nil
	}
	if c.rank < rem {
		m, err := c.RecvE(c.rank+pow, tag)
		if err != nil {
			return nil, err
		}
		if err := addInto(acc, decodeFloat64s(m.Data)); err != nil {
			return nil, err
		}
	}
	for k := 1; k < pow; k <<= 1 {
		partner := c.rank ^ k
		if err := c.SendE(partner, tag, encodeFloat64s(acc)); err != nil {
			return nil, err
		}
		m, err := c.RecvE(partner, tag)
		if err != nil {
			return nil, err
		}
		if err := addInto(acc, decodeFloat64s(m.Data)); err != nil {
			return nil, err
		}
	}
	if c.rank < rem {
		if err := c.SendE(c.rank+pow, tag, encodeFloat64s(acc)); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func addInto(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("allreduce length mismatch across ranks (%d vs %d)", len(src), len(dst))
	}
	for i, v := range src {
		dst[i] += v
	}
	return nil
}

// encodeFloat64s serializes a float64 slice little-endian.
func encodeFloat64s(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

// decodeFloat64s is the inverse of encodeFloat64s.
func decodeFloat64s(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v
}
