package comm

import (
	"encoding/binary"
	"math"
)

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ⌈log₂ P⌉ rounds of pairwise signals).
func (c *Comm) Barrier() {
	tag := c.nextCollTag()
	p := c.size
	if p == 1 {
		return
	}
	for k := 1; k < p; k <<= 1 {
		dst := (c.rank + k) % p
		src := (c.rank - k + p) % p
		c.Send(dst, tag, nil)
		c.Recv(src, tag)
	}
}

// Bcast distributes root's data to all ranks and returns each rank's copy
// (binomial tree).
func (c *Comm) Bcast(root int, data []byte) []byte {
	tag := c.nextCollTag()
	p := c.size
	if p == 1 {
		return data
	}
	// Re-root the rank space so root behaves as virtual rank 0, then run
	// the standard binomial tree: receive once from (vr − lowest set bit),
	// forward to (vr + mask) for each smaller mask.
	vr := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			m := c.Recv((vr-mask+root)%p, tag)
			data = m.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			c.Send((vr+mask+root)%p, tag, data)
		}
		mask >>= 1
	}
	return data
}

// Allgather collects every rank's blob; the result slice is indexed by
// rank. Implemented as a ring so each rank sends P-1 messages of its own
// size.
func (c *Comm) Allgather(mine []byte) [][]byte {
	tag := c.nextCollTag()
	p := c.size
	out := make([][]byte, p)
	out[c.rank] = mine
	if p == 1 {
		return out
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := mine
	curOwner := c.rank
	for step := 0; step < p-1; step++ {
		// Send the block we most recently received, pull a new one from
		// the left (classic allgather ring).
		c.Send(right, tag, appendOwner(cur, curOwner))
		m := c.Recv(left, tag)
		cur, curOwner = splitOwner(m.Data)
		out[curOwner] = cur
	}
	return out
}

func appendOwner(b []byte, owner int) []byte {
	out := make([]byte, len(b)+4)
	copy(out, b)
	binary.LittleEndian.PutUint32(out[len(b):], uint32(owner))
	return out
}

func splitOwner(b []byte) ([]byte, int) {
	n := len(b) - 4
	return b[:n], int(binary.LittleEndian.Uint32(b[n:]))
}

// AllreduceSumOrdered sums per-rank float64 vectors with a fixed
// reduction order: every rank gathers all partials and adds them in rank
// order, so the result is bit-identical on every rank and independent of
// message timing. This is the deterministic reduction the distributed
// hyperparameter sampling uses (DESIGN.md decision 6).
func (c *Comm) AllreduceSumOrdered(mine []float64) []float64 {
	blobs := c.Allgather(encodeFloat64s(mine))
	out := make([]float64, len(mine))
	for r := 0; r < c.size; r++ {
		vals := decodeFloat64s(blobs[r])
		if len(vals) != len(out) {
			panic("comm: allreduce length mismatch across ranks")
		}
		for i, v := range vals {
			out[i] += v
		}
	}
	return out
}

// AllreduceSumTree sums per-rank float64 vectors with recursive doubling:
// ⌈log₂ P⌉ rounds, lower latency than the ordered version but the
// summation tree (and hence the last bits) depends on P. Used where exact
// cross-P reproducibility is not required; the ablation benchmark
// compares both.
func (c *Comm) AllreduceSumTree(mine []float64) []float64 {
	tag := c.nextCollTag()
	p := c.size
	acc := append([]float64(nil), mine...)
	if p == 1 {
		return acc
	}
	// Recursive doubling for power-of-two counts; fold the remainder into
	// the nearest lower power of two first.
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow
	// Extra ranks fold their data into partner (rank − pow) and receive
	// the final result from it afterwards.
	if c.rank >= pow {
		c.Send(c.rank-pow, tag, encodeFloat64s(acc))
		m := c.Recv(c.rank-pow, tag)
		return decodeFloat64s(m.Data)
	}
	if c.rank < rem {
		m := c.Recv(c.rank+pow, tag)
		addInto(acc, decodeFloat64s(m.Data))
	}
	for k := 1; k < pow; k <<= 1 {
		partner := c.rank ^ k
		c.Send(partner, tag, encodeFloat64s(acc))
		m := c.Recv(partner, tag)
		addInto(acc, decodeFloat64s(m.Data))
	}
	if c.rank < rem {
		c.Send(c.rank+pow, tag, encodeFloat64s(acc))
	}
	return acc
}

func addInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("comm: allreduce length mismatch across ranks")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// encodeFloat64s serializes a float64 slice little-endian.
func encodeFloat64s(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

// decodeFloat64s is the inverse of encodeFloat64s.
func decodeFloat64s(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v
}
