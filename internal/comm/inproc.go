package comm

import (
	"fmt"
	"sync"
)

// Fabric is an in-process transport backing a virtual cluster: every rank
// is an endpoint in the same process and messages travel through per-pair
// FIFO queues serviced by one delivery goroutine per rank (preserving the
// non-overtaking rule while keeping senders non-blocking, like an MPI
// progress thread).
type Fabric struct {
	comms []*Comm
	chans []chan Message
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// inprocTransport is one rank's view of the fabric.
type inprocTransport struct {
	f    *Fabric
	rank int
}

// NewFabric creates an in-process virtual cluster with size ranks and
// returns one communicator per rank.
func NewFabric(size int) *Fabric {
	if size < 1 {
		panic("comm: fabric size must be >= 1")
	}
	f := &Fabric{
		comms: make([]*Comm, size),
		chans: make([]chan Message, size),
	}
	for r := 0; r < size; r++ {
		f.comms[r] = newComm(r, size)
		f.comms[r].tr = &inprocTransport{f: f, rank: r}
		// Generous buffering so senders virtually never block; the
		// distributed engine's coalescing keeps message counts low.
		f.chans[r] = make(chan Message, 4096)
	}
	f.wg.Add(size)
	for r := 0; r < size; r++ {
		go f.pump(r)
	}
	return f
}

// pump delivers rank r's inbound queue in arrival order.
func (f *Fabric) pump(r int) {
	defer f.wg.Done()
	for m := range f.chans[r] {
		f.comms[r].deliver(m)
	}
}

// Comms returns the per-rank communicators.
func (f *Fabric) Comms() []*Comm { return f.comms }

// Send implements Transport for one rank.
func (t *inprocTransport) Send(dst, tag int, data []byte) error {
	t.f.mu.Lock()
	if t.f.closed {
		t.f.mu.Unlock()
		return fmt.Errorf("fabric closed")
	}
	t.f.mu.Unlock()
	t.f.chans[dst] <- Message{Src: t.rank, Tag: tag, Data: data}
	return nil
}

// Close is a no-op per endpoint; use Fabric.Close to tear down the
// cluster.
func (t *inprocTransport) Close() error { return nil }

// Close shuts down all delivery goroutines. Call only after all ranks
// have finished communicating.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	for _, ch := range f.chans {
		close(ch)
	}
	f.wg.Wait()
}
