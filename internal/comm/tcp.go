package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// TCP wire format: one frame per message,
//
//	[4B little-endian payload length][4B src rank][4B tag][payload]
//
// Every pair of ranks is connected once; the lower rank dials, the higher
// rank accepts, and a 4-byte hello identifies the dialer. One writer
// goroutine per peer drains a FIFO queue (preserving the non-overtaking
// rule), one reader goroutine per peer delivers inbound frames.

// tcpTransport is the mesh transport for one rank.
type tcpTransport struct {
	c     *Comm
	rank  int
	size  int
	conns []net.Conn
	sendQ []chan []byte

	wgWriters sync.WaitGroup
	wgReaders sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// DialTCP builds a fully connected TCP mesh across the given rank
// addresses and returns this rank's communicator. addrs[i] is rank i's
// listen address ("host:port"); the function listens on addrs[rank],
// dials every higher... lower rank dials higher rank. It blocks until the
// mesh is complete or timeout elapses.
func DialTCP(rank int, addrs []string, timeout time.Duration) (*Comm, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: rank %d out of range for %d addresses", rank, size)
	}
	c := newComm(rank, size)
	t := &tcpTransport{
		c:     c,
		rank:  rank,
		size:  size,
		conns: make([]net.Conn, size),
		sendQ: make([]chan []byte, size),
	}
	c.tr = t

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	defer ln.Close()
	deadline := time.Now().Add(timeout)

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup

	// Accept connections from lower ranks.
	expectAccepts := rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < expectAccepts; i++ {
			if d, ok := ln.(*net.TCPListener); ok {
				d.SetDeadline(deadline)
			}
			conn, err := ln.Accept()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("accept: %w", err)
				}
				mu.Unlock()
				return
			}
			// A dialer that connects but never sends its hello must not
			// stall the accept loop past the overall deadline.
			conn.SetReadDeadline(deadline)
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("hello: %w", err)
				}
				mu.Unlock()
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			mu.Lock()
			if peer < 0 || peer >= size || t.conns[peer] != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("bad hello from peer %d", peer)
				}
				mu.Unlock()
				conn.Close()
				return
			}
			t.conns[peer] = conn
			mu.Unlock()
		}
	}()

	// Dial higher ranks.
	for peer := rank + 1; peer < size; peer++ {
		peer := peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			var conn net.Conn
			err := fmt.Errorf("deadline elapsed before first dial attempt")
			jitter := rand.New(rand.NewSource(int64(rank)<<16 | int64(peer)))
			for attempt := 0; time.Now().Before(deadline); attempt++ {
				conn, err = net.DialTimeout("tcp", addrs[peer], time.Second)
				if err == nil {
					break
				}
				time.Sleep(dialBackoff(attempt, jitter))
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("dial rank %d (%s): %w", peer, addrs[peer], err)
				}
				mu.Unlock()
				return
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(rank))
			// A hung accept queue must not stall the hello write past the
			// overall deadline.
			conn.SetWriteDeadline(deadline)
			if _, err := conn.Write(hello[:]); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				conn.Close()
				return
			}
			conn.SetWriteDeadline(time.Time{})
			mu.Lock()
			t.conns[peer] = conn
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Close()
		return nil, firstErr
	}

	// Start writer and reader goroutines per peer.
	for peer := 0; peer < size; peer++ {
		if peer == rank {
			continue
		}
		t.sendQ[peer] = make(chan []byte, 1024)
		t.wgWriters.Add(1)
		t.wgReaders.Add(1)
		go t.writer(peer)
		go t.reader(peer)
	}
	return c, nil
}

// Send implements Transport.
func (t *tcpTransport) Send(dst, tag int, data []byte) error {
	if dst == t.rank {
		// Self-sends bypass the wire.
		t.c.deliver(Message{Src: t.rank, Tag: tag, Data: data})
		return nil
	}
	frame := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(data)))
	binary.LittleEndian.PutUint32(frame[4:], uint32(t.rank))
	binary.LittleEndian.PutUint32(frame[8:], uint32(tag))
	copy(frame[12:], data)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport closed")
	}
	q := t.sendQ[dst]
	t.mu.Unlock()
	q <- frame
	return nil
}

func (t *tcpTransport) writer(peer int) {
	defer t.wgWriters.Done()
	conn := t.conns[peer]
	for frame := range t.sendQ[peer] {
		if _, err := conn.Write(frame); err != nil {
			// The connection is gone. Keep draining the queue so senders
			// (and Close) never block behind a dead peer — the reader on
			// this conn fails the endpoint, which is what stops the run.
			for range t.sendQ[peer] {
			}
			return
		}
	}
}

func (t *tcpTransport) reader(peer int) {
	defer t.wgReaders.Done()
	conn := t.conns[peer]
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			// EOF at a frame boundary is a clean shutdown (the peer
			// finished and closed). Anything else — a mid-header
			// truncation, a reset — means the peer died or the stream is
			// corrupt: fail the endpoint so blocked receives unwind.
			if err != io.EOF && !t.isClosed() {
				t.c.Fail(&RankFailedError{Rank: peer, Err: fmt.Errorf("reading frame header: %w", err)})
			}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		src := int(binary.LittleEndian.Uint32(hdr[4:]))
		tag := int(binary.LittleEndian.Uint32(hdr[8:]))
		data := make([]byte, n)
		if got, err := io.ReadFull(conn, data); err != nil {
			// A frame header without its payload is always a truncation.
			if !t.isClosed() {
				t.c.Fail(&RankFailedError{Rank: peer, Err: fmt.Errorf("frame truncated mid-message (%d of %d payload bytes): %w",
					got, n, err)})
			}
			return
		}
		t.c.deliver(Message{Src: src, Tag: tag, Data: data})
	}
}

func (t *tcpTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// dialBackoff returns the sleep before retry attempt+1: exponential from
// 10 ms doubling to a 640 ms cap, with up to 50% additive jitter so a
// gang-started cluster doesn't hammer a slow listener in lockstep.
func dialBackoff(attempt int, jitter *rand.Rand) time.Duration {
	base := 10 * time.Millisecond << uint(min(attempt, 6))
	return base + time.Duration(jitter.Int63n(int64(base)/2+1))
}

// Close tears the mesh down: queued frames are flushed to the wire before
// the connections close (a rank finishing early must not kill messages its
// peers still need), then readers are torn down.
func (t *tcpTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	for _, q := range t.sendQ {
		if q != nil {
			close(q)
		}
	}
	t.wgWriters.Wait() // drain outbound queues onto the wire
	for _, conn := range t.conns {
		if conn != nil {
			conn.Close()
		}
	}
	t.wgReaders.Wait()
	return nil
}
