// Package comm is the hand-rolled message-passing layer that stands in for
// MPI 3.0 in this Go reproduction (Go has no MPI ecosystem). It provides
// the features the paper's distributed BPMF needs:
//
//   - ranks and tagged point-to-point messages with MPI-style matching
//     (by source and tag, with wildcard source);
//   - non-blocking Isend/Irecv returning Request handles (the paper's
//     MPI_Isend/MPI_Irecv, used to overlap communication with
//     computation);
//   - coalescing send buffers (the paper's Section IV-C: per-item sends
//     are too expensive, so items are batched until a buffer fills);
//   - collectives: barrier, broadcast, allgather, and a deterministic
//     ordered allreduce (partials combined in rank order so every rank
//     computes bit-identical results);
//   - pluggable transports: an in-process fabric (goroutine channels) for
//     single-binary virtual clusters and tests, and a TCP mesh for real
//     multi-process runs (cmd/bpmf-dist).
package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// AnySource matches messages from any rank in Recv/Irecv.
const AnySource = -1

// collectiveTagBase reserves the upper tag space for internal collective
// operations; user tags must stay below it.
const collectiveTagBase = 1 << 30

// Message is a received tagged message.
type Message struct {
	Src  int
	Tag  int
	Data []byte
}

// Transport moves bytes between ranks. Implementations must deliver
// messages between any ordered pair of ranks in send order
// (MPI's non-overtaking rule for equal tags).
type Transport interface {
	// Send delivers data to dst's endpoint asynchronously. The data slice
	// is owned by the transport after the call.
	Send(dst, tag int, data []byte) error
	// Close releases transport resources.
	Close() error
}

// Comm is one rank's communicator endpoint.
type Comm struct {
	rank, size int
	tr         Transport

	mu      sync.Mutex
	pending []Message // unmatched arrivals
	waiters []*waiter // outstanding receives
	closed  bool
	collSeq uint64 // collective sequence number (advances identically on all ranks)

	// failErr is the endpoint's terminal error (a detected peer failure or
	// transport corruption); failCh is closed when it is set, waking every
	// blocked error-returning receive.
	failErr error
	failCh  chan struct{}

	// Stats for instrumentation (bytes and message counts sent/received).
	stats Stats
}

// ErrRecvTimeout is returned by RecvTimeout when no matching message
// arrives within the deadline (and the endpoint has not failed).
var ErrRecvTimeout = errors.New("comm: receive timed out")

// Stats counts traffic through an endpoint.
type Stats struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
}

type waiter struct {
	src, tag int
	ch       chan Message
}

// newComm builds an endpoint; transports call deliver for arrivals.
func newComm(rank, size int) *Comm {
	return &Comm{rank: rank, size: size, failCh: make(chan struct{})}
}

// Fail marks the endpoint as failed: every blocked and future
// error-returning operation observes err. The first error wins;
// subsequent calls are no-ops. Transports and the failure detector call
// this when a peer dies; it never fires on a healthy endpoint.
func (c *Comm) Fail(err error) {
	c.mu.Lock()
	if c.failErr == nil && err != nil {
		c.failErr = err
		close(c.failCh)
	}
	c.mu.Unlock()
}

// Err returns the endpoint's terminal error, or nil while it is healthy.
func (c *Comm) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr
}

// Rank returns this endpoint's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Stats returns a snapshot of the endpoint's traffic counters.
func (c *Comm) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// deliver is called by transports when a message arrives.
func (c *Comm) deliver(m Message) {
	c.mu.Lock()
	c.stats.MsgsRecv++
	c.stats.BytesRecv += int64(len(m.Data))
	for i, w := range c.waiters {
		if (w.src == AnySource || w.src == m.Src) && w.tag == m.Tag {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			c.mu.Unlock()
			w.ch <- m
			return
		}
	}
	c.pending = append(c.pending, m)
	c.mu.Unlock()
}

// Request is a handle for a non-blocking operation.
type Request struct {
	ch  chan Message
	msg *Message
	mu  sync.Mutex
}

// Wait blocks until the operation completes. For receives it returns the
// message; for sends it returns a zero Message.
func (r *Request) Wait() Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.msg == nil {
		m := <-r.ch
		r.msg = &m
	}
	return *r.msg
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() (Message, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.msg != nil {
		return *r.msg, true
	}
	select {
	case m := <-r.ch:
		r.msg = &m
		return m, true
	default:
		return Message{}, false
	}
}

// completedRequest returns an already-completed request.
func completedRequest() *Request {
	r := &Request{ch: make(chan Message, 1)}
	r.msg = &Message{}
	return r
}

// Isend sends data to dst with the given tag without blocking. The data
// slice must not be modified after the call (hand ownership to the
// layer, as with MPI_Isend's buffer until completion — here the transport
// copies or queues it immediately, so the returned request is already
// complete; it exists for MPI-shaped code).
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	if err := c.send(dst, tag, data); err != nil {
		panic(fmt.Sprintf("comm: Isend rank %d -> %d: %v", c.rank, dst, err))
	}
	return completedRequest()
}

// Send sends data to dst with the given tag (blocking semantics are
// identical here because transports queue internally).
func (c *Comm) Send(dst, tag int, data []byte) {
	if err := c.send(dst, tag, data); err != nil {
		panic(fmt.Sprintf("comm: Send rank %d -> %d: %v", c.rank, dst, err))
	}
}

// SendE is Send returning an error instead of panicking: a closed or
// failed endpoint, an invalid destination, and transport errors all
// surface to the caller. The fault-tolerant engine paths use this so a
// dead peer unwinds the rank instead of crashing the process.
func (c *Comm) SendE(dst, tag int, data []byte) error {
	return c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.size {
		return fmt.Errorf("invalid destination rank %d (size %d)", dst, c.size)
	}
	c.mu.Lock()
	if c.failErr != nil {
		err := c.failErr
		c.mu.Unlock()
		return err
	}
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("endpoint closed")
	}
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(len(data))
	tr := c.tr
	c.mu.Unlock()
	if tr == nil {
		return fmt.Errorf("endpoint has no transport")
	}
	return tr.Send(dst, tag, data)
}

// Recv blocks until a message with the given tag arrives from src
// (AnySource matches any rank).
func (c *Comm) Recv(src, tag int) Message {
	return c.Irecv(src, tag).Wait()
}

// Irecv posts a non-blocking receive for (src, tag) and returns its
// request handle.
func (c *Comm) Irecv(src, tag int) *Request {
	m, w := c.postRecv(src, tag)
	if w == nil {
		r := &Request{ch: make(chan Message, 1)}
		r.msg = &m
		return r
	}
	return &Request{ch: w.ch}
}

// postRecv matches an already-pending message (FIFO per pair) or
// registers a waiter for (src, tag). Exactly one of the returns is
// meaningful: a matched message when w == nil, else the posted waiter.
func (c *Comm) postRecv(src, tag int) (Message, *waiter) {
	c.mu.Lock()
	for i, m := range c.pending {
		if (src == AnySource || src == m.Src) && tag == m.Tag {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.mu.Unlock()
			return m, nil
		}
	}
	w := &waiter{src: src, tag: tag, ch: make(chan Message, 1)}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	return Message{}, w
}

// cancelWaiter removes a posted waiter. If delivery already claimed it,
// the in-flight message is collected and returned instead (the waiter's
// channel has capacity 1 and deliver commits to it right after removing
// the waiter under the lock, so this wait is bounded).
func (c *Comm) cancelWaiter(w *waiter) (Message, bool) {
	c.mu.Lock()
	for i, cand := range c.waiters {
		if cand == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			c.mu.Unlock()
			return Message{}, false
		}
	}
	c.mu.Unlock()
	return <-w.ch, true
}

// RecvE blocks until a message with the given tag arrives from src, or
// the endpoint fails (a peer death detected by the heartbeat detector, a
// transport-level corruption). A message already matched when the
// failure fires is still delivered.
func (c *Comm) RecvE(src, tag int) (Message, error) {
	if err := c.Err(); err != nil {
		return Message{}, err
	}
	m, w := c.postRecv(src, tag)
	if w == nil {
		return m, nil
	}
	select {
	case m := <-w.ch:
		return m, nil
	case <-c.failCh:
		if m, ok := c.cancelWaiter(w); ok {
			return m, nil
		}
		return Message{}, c.Err()
	}
}

// RecvTimeout is RecvE with a per-operation deadline: it returns
// ErrRecvTimeout when no matching message arrives within d.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Message, error) {
	if err := c.Err(); err != nil {
		return Message{}, err
	}
	m, w := c.postRecv(src, tag)
	if w == nil {
		return m, nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m := <-w.ch:
		return m, nil
	case <-c.failCh:
		if m, ok := c.cancelWaiter(w); ok {
			return m, nil
		}
		return Message{}, c.Err()
	case <-timer.C:
		if m, ok := c.cancelWaiter(w); ok {
			return m, nil
		}
		return Message{}, ErrRecvTimeout
	}
}

// Probe reports whether a message matching (src, tag) is waiting.
func (c *Comm) Probe(src, tag int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.pending {
		if (src == AnySource || src == m.Src) && tag == m.Tag {
			return true
		}
	}
	return false
}

// Close shuts down the endpoint's transport.
func (c *Comm) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	tr := c.tr
	c.mu.Unlock()
	if tr != nil {
		return tr.Close()
	}
	return nil
}

// nextCollTag returns the tag for the next collective operation. Every
// rank must invoke collectives in the same order (SPMD), which keeps the
// sequence numbers aligned.
func (c *Comm) nextCollTag() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.collSeq++
	return collectiveTagBase + int(c.collSeq%(1<<20))
}
