package comm

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// fault_test.go exercises the failure layer: error-returning sends and
// receives, the heartbeat detector, the deterministic fault fabric, and
// the TCP transport's reaction to a peer dying mid-frame.

func TestSendEAfterCloseErrors(t *testing.T) {
	f := NewFabric(2)
	c := f.Comms()[0]
	f.Close()
	if err := c.SendE(1, 0, []byte("x")); err == nil {
		t.Fatal("SendE on a closed endpoint must error")
	}
}

func TestSendEInvalidDestination(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	if err := f.Comms()[0].SendE(5, 0, nil); err == nil {
		t.Fatal("SendE to an out-of-range rank must error")
	}
	if err := f.Comms()[0].SendE(-1, 0, nil); err == nil {
		t.Fatal("SendE to a negative rank must error")
	}
}

func TestRecvTimeoutFires(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	start := time.Now()
	_, err := f.Comms()[0].RecvTimeout(1, 7, 30*time.Millisecond)
	if err != ErrRecvTimeout {
		t.Fatalf("got %v, want ErrRecvTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout receive took far longer than its deadline")
	}
}

func TestRecvTimeoutDeliversPendingMessage(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	if err := f.Comms()[1].SendE(0, 7, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	m, err := f.Comms()[0].RecvTimeout(AnySource, 7, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "hi" || m.Src != 1 {
		t.Fatalf("got %q from %d", m.Data, m.Src)
	}
}

func TestFailWakesBlockedReceive(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	c := f.Comms()[0]
	done := make(chan error, 1)
	go func() {
		_, err := c.RecvE(1, 3)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the receive block
	want := &RankFailedError{Rank: 1, Err: errors.New("test failure")}
	c.Fail(want)
	select {
	case err := <-done:
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 1 {
			t.Fatalf("blocked receive returned %v, want RankFailedError{Rank: 1}", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Fail did not wake the blocked receive")
	}
	// Subsequent operations fail immediately.
	if err := c.SendE(1, 0, nil); err == nil {
		t.Fatal("SendE on a failed endpoint must error")
	}
}

func TestHeartbeatDetectsKilledRank(t *testing.T) {
	const size, victim = 3, 2
	ff := NewFaultFabric(size, 42)
	defer ff.Close()
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := ff.Comms()[r]
			d := StartDetector(c, 10*time.Millisecond, 150*time.Millisecond)
			defer d.Stop()
			if r == victim {
				time.Sleep(50 * time.Millisecond)
				ff.Kill(victim)
				return
			}
			// Survivors block in a receive that only the detector's
			// failure verdict can unwind.
			start := time.Now()
			_, err := c.RecvE(victim, 9)
			errs[r] = err
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Errorf("rank %d took %v to detect the dead peer", r, elapsed)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < size; r++ {
		if r == victim {
			continue
		}
		var rf *RankFailedError
		if !errors.As(errs[r], &rf) {
			t.Fatalf("rank %d got %v, want RankFailedError", r, errs[r])
		}
		if rf.Rank != victim {
			t.Fatalf("rank %d suspected rank %d, want %d", r, rf.Rank, victim)
		}
	}
}

// TestKeepaliveSurvivesFailedEndpoint pins that a survivor unwinding
// from a peer failure can still prove its own liveness: heartbeats must
// flow from an endpoint that has already been failed, or peers whose
// detectors have not yet convicted the dead rank would suspect this one.
func TestKeepaliveSurvivesFailedEndpoint(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	c0 := f.Comms()[0]
	c0.Fail(&RankFailedError{Rank: 1, Err: errors.New("test verdict")})
	done := make(chan struct{})
	go func() {
		defer close(done)
		Keepalive(c0, 5*time.Millisecond, 100*time.Millisecond)
	}()
	if _, err := f.Comms()[1].RecvTimeout(0, heartbeatTag, time.Second); err != nil {
		t.Fatalf("no heartbeat from the failed endpoint: %v", err)
	}
	<-done
}

// TestFaultFabricDeterministicLoss pins that two fabrics with the same
// seed drop exactly the same messages.
func TestFaultFabricDeterministicLoss(t *testing.T) {
	deliveries := func(seed uint64) []int {
		ff := NewFaultFabric(2, seed)
		defer ff.Close()
		ff.SetLoss(0.3, 0)
		const n = 200
		var got []int
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				buf := []byte{byte(i), byte(i >> 8)}
				if err := ff.Comms()[0].SendE(1, 5, buf); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
			// An empty sentinel record marks the end of the stream (sends
			// are FIFO per pair; loss is disabled first so the sentinel
			// itself cannot drop).
			ff.SetLoss(0, 0)
			ff.Comms()[0].SendE(1, 5, nil)
		}()
		for {
			m, err := ff.Comms()[1].RecvE(0, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Data) == 0 {
				break
			}
			got = append(got, int(binary.LittleEndian.Uint16(m.Data)))
		}
		wg.Wait()
		return got
	}
	a, b := deliveries(7), deliveries(7)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("drop rate 0.3 delivered %d/200 — loss injection inert", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := deliveries(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical loss patterns")
	}
}

func TestFaultFabricDuplicate(t *testing.T) {
	ff := NewFaultFabric(2, 1)
	defer ff.Close()
	ff.SetLoss(0, 1.0) // every message delivered twice
	if err := ff.Comms()[0].SendE(1, 3, []byte("dup")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, err := ff.Comms()[1].RecvE(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if string(m.Data) != "dup" {
			t.Fatalf("copy %d: got %q", i, m.Data)
		}
	}
}

func TestFaultFabricSever(t *testing.T) {
	ff := NewFaultFabric(2, 1)
	defer ff.Close()
	ff.Sever(0, 1)
	// The send "succeeds" (one-way partition semantics) but nothing
	// arrives.
	if err := ff.Comms()[0].SendE(1, 4, []byte("lost")); err != nil {
		t.Fatalf("send over a severed link must succeed locally: %v", err)
	}
	if _, err := ff.Comms()[1].RecvTimeout(0, 4, 50*time.Millisecond); err != ErrRecvTimeout {
		t.Fatalf("severed link delivered anyway (err=%v)", err)
	}
}

func TestKilledRankSendsError(t *testing.T) {
	ff := NewFaultFabric(2, 1)
	defer ff.Close()
	ff.Kill(0)
	if err := ff.Comms()[0].SendE(1, 0, nil); err == nil {
		t.Fatal("send from a killed rank must error")
	}
	if got := ff.Killed(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Killed() = %v, want [0]", got)
	}
}

func TestDialBackoff(t *testing.T) {
	jitter := rand.New(rand.NewSource(1))
	prev := time.Duration(0)
	for attempt := 0; attempt < 6; attempt++ {
		d := dialBackoff(attempt, jitter)
		base := 10 * time.Millisecond << uint(attempt)
		if d < base || d > base+base/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base, base+base/2)
		}
		if d <= prev/4 {
			t.Fatalf("attempt %d: backoff %v did not grow from %v", attempt, d, prev)
		}
		prev = d
	}
	// Growth is capped: attempt 50 must not overflow or exceed ~2x the cap.
	if d := dialBackoff(50, jitter); d <= 0 || d > 960*time.Millisecond {
		t.Fatalf("attempt 50: backoff %v outside the cap", d)
	}
}

// TestTruncatedTCPFrame kills a fake peer mid-frame and checks the
// reader fails the endpoint instead of leaving the receive hung.
func TestTruncatedTCPFrame(t *testing.T) {
	addrs := []string{"127.0.0.1:19721", "127.0.0.1:19722"}
	type dialed struct {
		c   *Comm
		err error
	}
	ch := make(chan dialed, 1)
	go func() {
		c, err := DialTCP(1, addrs, 5*time.Second)
		ch <- dialed{c, err}
	}()
	// Fake rank 0: complete the hello handshake, then send a frame
	// header promising 100 payload bytes but deliver only 10.
	conn, err := dialRetry(addrs[1], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], 0)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	d := <-ch
	if d.err != nil {
		t.Fatal(d.err)
	}
	defer d.c.Close()
	var frame [22]byte
	binary.LittleEndian.PutUint32(frame[0:], 100) // payload length
	binary.LittleEndian.PutUint32(frame[4:], 0)   // src
	binary.LittleEndian.PutUint32(frame[8:], 5)   // tag
	if _, err := conn.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	conn.Close() // die mid-frame

	_, rerr := d.c.RecvE(0, 5)
	var rf *RankFailedError
	if !errors.As(rerr, &rf) {
		t.Fatalf("receive after truncated frame returned %v, want RankFailedError", rerr)
	}
	if rf.Rank != 0 {
		t.Fatalf("suspected rank %d, want 0", rf.Rank)
	}
}

// dialRetry dials until the listener is up (DialTCP runs concurrently).
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var err error
	for time.Now().Before(deadline) {
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, err
}
