package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// OneSided implements the PGAS-style one-sided communication model of the
// paper's future work (GASPI / GPI-2, reference [14]): ranks register
// float64 memory segments (the factor matrices); a remote rank Puts
// values directly at an offset in a destination segment together with a
// notification id, and the target waits on notification *counts* instead
// of matching messages. Compared with two-sided messaging this removes
// the receive-side matching queue and per-message buffer management:
// arriving payloads are written straight into the registered factor-row
// memory by the window's dispatcher.
//
// Built on the same Transport as the two-sided layer (tag space is
// shared; one-sided traffic uses the dedicated oneSidedTag).
type OneSided struct {
	c *Comm

	mu       sync.Mutex
	cond     *sync.Cond
	segments map[int][]float64
	notified map[int]int64 // notification id -> cumulative count
	done     chan struct{}
}

// oneSidedTag is the reserved tag for one-sided traffic (top of the user
// range, below the collective space).
const oneSidedTag = collectiveTagBase - 1

// putHeaderSize is [4B segment][8B element offset][4B notification id].
const putHeaderSize = 16

// closeSegment is the sentinel segment id used to stop the dispatcher.
const closeSegment = -1

// NewOneSided attaches a one-sided window to the communicator and starts
// its dispatcher. Attach at most one OneSided per Comm, before any Put
// traffic flows.
func NewOneSided(c *Comm) *OneSided {
	o := &OneSided{
		c:        c,
		segments: map[int][]float64{},
		notified: map[int]int64{},
		done:     make(chan struct{}),
	}
	o.cond = sync.NewCond(&o.mu)
	go o.dispatch()
	return o
}

// Register exposes buf as segment id for remote Puts. Registering an
// existing id replaces the segment.
func (o *OneSided) Register(id int, buf []float64) {
	if id < 0 {
		panic("comm: negative one-sided segment ids are reserved")
	}
	o.mu.Lock()
	o.segments[id] = buf
	o.mu.Unlock()
}

// Put writes data into segment segID at element offset off on rank dst
// and increments dst's counter for notifyID (GASPI write+notify).
// Completion is asynchronous; per-pair ordering is preserved by the
// transport.
func (o *OneSided) Put(dst, segID int, off int64, data []float64, notifyID int) {
	msg := make([]byte, putHeaderSize+8*len(data))
	binary.LittleEndian.PutUint32(msg[0:], uint32(segID))
	binary.LittleEndian.PutUint64(msg[4:], uint64(off))
	binary.LittleEndian.PutUint32(msg[12:], uint32(notifyID))
	for i, v := range data {
		binary.LittleEndian.PutUint64(msg[putHeaderSize+8*i:], math.Float64bits(v))
	}
	o.c.Send(dst, oneSidedTag, msg)
}

// dispatch applies incoming Puts directly to registered memory.
func (o *OneSided) dispatch() {
	for {
		m := o.c.Recv(AnySource, oneSidedTag)
		segID := int(int32(binary.LittleEndian.Uint32(m.Data[0:])))
		if segID == closeSegment {
			close(o.done)
			return
		}
		off := int64(binary.LittleEndian.Uint64(m.Data[4:]))
		notifyID := int(binary.LittleEndian.Uint32(m.Data[12:]))
		payload := m.Data[putHeaderSize:]
		n := int64(len(payload) / 8)
		o.mu.Lock()
		seg, ok := o.segments[segID]
		if !ok {
			o.mu.Unlock()
			panic(fmt.Sprintf("comm: one-sided Put into unregistered segment %d", segID))
		}
		if off < 0 || off+n > int64(len(seg)) {
			o.mu.Unlock()
			panic(fmt.Sprintf("comm: one-sided Put out of bounds: off %d n %d seg %d",
				off, n, len(seg)))
		}
		for i := int64(0); i < n; i++ {
			seg[off+i] = math.Float64frombits(
				binary.LittleEndian.Uint64(payload[8*i:]))
		}
		o.notified[notifyID]++
		o.cond.Broadcast()
		o.mu.Unlock()
	}
}

// WaitNotify blocks until notifyID's cumulative counter reaches at least
// count and returns its value. Use distinct ids per phase (the engine
// keys them by iteration and side).
func (o *OneSided) WaitNotify(notifyID int, count int64) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	for o.notified[notifyID] < count {
		o.cond.Wait()
	}
	return o.notified[notifyID]
}

// NotifyCount returns notifyID's current counter without blocking.
func (o *OneSided) NotifyCount(notifyID int) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.notified[notifyID]
}

// Close stops the dispatcher (via a self-addressed sentinel Put) and
// waits for it to exit. The underlying Comm stays usable.
func (o *OneSided) Close() {
	msg := make([]byte, putHeaderSize)
	binary.LittleEndian.PutUint32(msg[0:], uint32(uint32(0xffffffff))) // segID -1
	o.c.Send(o.c.Rank(), oneSidedTag, msg)
	<-o.done
}
