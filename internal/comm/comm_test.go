package comm

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// runSPMD runs fn on every rank of a fresh in-process fabric and waits.
func runSPMD(t *testing.T, size int, fn func(c *Comm)) {
	t.Helper()
	f := NewFabric(size)
	defer f.Close()
	var wg sync.WaitGroup
	for _, c := range f.Comms() {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	wg.Wait()
}

func TestSendRecvBasic(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			m := c.Recv(0, 7)
			if string(m.Data) != "hello" || m.Src != 0 || m.Tag != 7 {
				t.Errorf("got %+v", m)
			}
		}
	})
}

func TestRecvBeforeSend(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	comms := f.Comms()
	done := make(chan Message, 1)
	go func() { done <- comms[1].Recv(0, 3) }()
	time.Sleep(10 * time.Millisecond) // let the receive get posted first
	comms[0].Send(1, 3, []byte{42})
	m := <-done
	if m.Data[0] != 42 {
		t.Fatalf("got %v", m.Data)
	}
}

func TestTagMatching(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("a"))
			c.Send(1, 2, []byte("b"))
		} else {
			// Receive out of send order by tag.
			m2 := c.Recv(0, 2)
			m1 := c.Recv(0, 1)
			if string(m2.Data) != "b" || string(m1.Data) != "a" {
				t.Error("tag matching failed")
			}
		}
	})
}

func TestAnySource(t *testing.T) {
	runSPMD(t, 3, func(c *Comm) {
		if c.Rank() != 0 {
			c.Send(0, 5, []byte{byte(c.Rank())})
		} else {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				m := c.Recv(AnySource, 5)
				seen[m.Src] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("missing sources: %v", seen)
			}
		}
	})
}

func TestNonOvertakingSameTag(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) {
		const n = 200
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 9, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				m := c.Recv(0, 9)
				if int(m.Data[0]) != i {
					t.Errorf("message %d arrived out of order (got %d)", i, m.Data[0])
					return
				}
			}
		}
	})
}

func TestIrecvTestAndWait(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	comms := f.Comms()
	req := comms[1].Irecv(0, 4)
	if _, ok := req.Test(); ok {
		t.Fatal("Test must report incomplete before send")
	}
	comms[0].Send(1, 4, []byte("x"))
	m := req.Wait()
	if string(m.Data) != "x" {
		t.Fatalf("got %q", m.Data)
	}
	// Wait is idempotent.
	if string(req.Wait().Data) != "x" {
		t.Fatal("second Wait differs")
	}
}

func TestProbe(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	comms := f.Comms()
	if comms[1].Probe(0, 8) {
		t.Fatal("Probe true before send")
	}
	comms[0].Send(1, 8, []byte("p"))
	deadline := time.Now().Add(time.Second)
	for !comms[1].Probe(0, 8) {
		if time.Now().After(deadline) {
			t.Fatal("Probe never saw the message")
		}
		time.Sleep(time.Millisecond)
	}
	comms[1].Recv(0, 8)
	if comms[1].Probe(0, 8) {
		t.Fatal("Probe true after consume")
	}
}

func TestStatsCount(t *testing.T) {
	runSPMD(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 100))
		} else {
			c.Recv(0, 1)
			st := c.Stats()
			if st.MsgsRecv != 1 || st.BytesRecv != 100 {
				t.Errorf("stats %+v", st)
			}
		}
	})
}

func TestInvalidDestinationPanics(t *testing.T) {
	f := NewFabric(1)
	defer f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Send to invalid rank must panic")
		}
	}()
	f.Comms()[0].Send(5, 0, nil)
}

func TestBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		var phase sync.Map
		runSPMD(t, p, func(c *Comm) {
			phase.Store(c.Rank(), 1)
			c.Barrier()
			// After the barrier, every rank must have reached phase 1.
			for r := 0; r < c.Size(); r++ {
				if v, ok := phase.Load(r); !ok || v != 1 {
					t.Errorf("p=%d rank %d: peer %d had not reached the barrier", p, c.Rank(), r)
				}
			}
			c.Barrier() // second barrier must also work (tag sequencing)
		})
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < p; root++ {
			want := []byte(fmt.Sprintf("payload-from-%d", root))
			runSPMD(t, p, func(c *Comm) {
				var mine []byte
				if c.Rank() == root {
					mine = want
				}
				got := c.Bcast(root, mine)
				if string(got) != string(want) {
					t.Errorf("p=%d root=%d rank=%d: got %q", p, root, c.Rank(), got)
				}
			})
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		runSPMD(t, p, func(c *Comm) {
			mine := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
			all := c.Allgather(mine)
			for r := 0; r < p; r++ {
				if len(all[r]) != 2 || all[r][0] != byte(r) || all[r][1] != byte(2*r) {
					t.Errorf("p=%d rank=%d: slot %d = %v", p, c.Rank(), r, all[r])
				}
			}
		})
	}
}

func TestAllreduceSumOrdered(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		// Expected: sum over ranks of [r, 2r, 100].
		want := []float64{0, 0, 0}
		for r := 0; r < p; r++ {
			want[0] += float64(r)
			want[1] += float64(2 * r)
			want[2] += 100
		}
		var mu sync.Mutex
		results := map[int][]float64{}
		runSPMD(t, p, func(c *Comm) {
			got := c.AllreduceSumOrdered([]float64{float64(c.Rank()), float64(2 * c.Rank()), 100})
			mu.Lock()
			results[c.Rank()] = got
			mu.Unlock()
		})
		for r := 0; r < p; r++ {
			if !reflect.DeepEqual(results[r], want) {
				t.Fatalf("p=%d rank=%d: got %v want %v", p, r, results[r], want)
			}
		}
		// Bit-identical across ranks.
		for r := 1; r < p; r++ {
			for i := range results[0] {
				if results[r][i] != results[0][i] {
					t.Fatalf("p=%d: ordered allreduce differs across ranks", p)
				}
			}
		}
	}
}

func TestAllreduceSumTree(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		var mu sync.Mutex
		results := map[int][]float64{}
		runSPMD(t, p, func(c *Comm) {
			got := c.AllreduceSumTree([]float64{1, float64(c.Rank())})
			mu.Lock()
			results[c.Rank()] = got
			mu.Unlock()
		})
		wantSum := float64(p*(p-1)) / 2
		for r := 0; r < p; r++ {
			if results[r][0] != float64(p) {
				t.Fatalf("p=%d rank=%d: count = %v, want %v", p, r, results[r][0], float64(p))
			}
			if results[r][1] != wantSum {
				t.Fatalf("p=%d rank=%d: sum = %v, want %v", p, r, results[r][1], wantSum)
			}
		}
	}
}

func TestOrderedAllreduceDeterministicAcrossTimings(t *testing.T) {
	// Run the same reduction many times with random goroutine delays; the
	// result must be bit-identical every time (ordered combining).
	p := 4
	vals := [][]float64{
		{0.1, 1e-17}, {0.2, 1e17}, {-0.3, -1e17}, {0.4, 2.5e-17},
	}
	var ref []float64
	for trial := 0; trial < 10; trial++ {
		var mu sync.Mutex
		var got []float64
		runSPMD(t, p, func(c *Comm) {
			time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
			r := c.AllreduceSumOrdered(vals[c.Rank()])
			if c.Rank() == 0 {
				mu.Lock()
				got = r
				mu.Unlock()
			}
		})
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatal("ordered allreduce not timing-independent")
			}
		}
	}
}

func TestCoalescer(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	comms := f.Comms()
	co := NewCoalescer(comms[0], 1, 11, 10)
	// Three 4-byte records with a 10-byte buffer: flush after 2 appends...
	// precisely, the third Append flushes the first two records.
	co.Append([]byte("aaaa"))
	co.Append([]byte("bbbb"))
	if co.Flushes() != 0 {
		t.Fatal("flushed too early")
	}
	co.Append([]byte("cccc"))
	if co.Flushes() != 1 {
		t.Fatalf("expected 1 flush, got %d", co.Flushes())
	}
	co.Flush()
	m1 := comms[1].Recv(0, 11)
	m2 := comms[1].Recv(0, 11)
	if string(m1.Data) != "aaaabbbb" || string(m2.Data) != "cccc" {
		t.Fatalf("coalesced payloads %q, %q", m1.Data, m2.Data)
	}
	if co.Records() != 3 {
		t.Fatalf("records = %d", co.Records())
	}
}

func TestCoalescerUnbuffered(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	comms := f.Comms()
	co := NewCoalescer(comms[0], 1, 12, 0) // ablation: flush every record
	co.Append([]byte("x"))
	co.Append([]byte("y"))
	if co.Flushes() != 2 {
		t.Fatalf("unbuffered mode flushed %d times, want 2", co.Flushes())
	}
	comms[1].Recv(0, 12)
	comms[1].Recv(0, 12)
}

func TestCoalescerEmptyFlushNoop(t *testing.T) {
	f := NewFabric(2)
	defer f.Close()
	co := NewCoalescer(f.Comms()[0], 1, 13, 64)
	co.Flush()
	if co.Flushes() != 0 {
		t.Fatal("empty flush must not send")
	}
}

func TestTCPTransport(t *testing.T) {
	addrs := []string{"127.0.0.1:19701", "127.0.0.1:19702", "127.0.0.1:19703"}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	comms := make([]*Comm, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := DialTCP(r, addrs, 5*time.Second)
			comms[r], errs[r] = c, err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()

	// Point-to-point in both directions plus a collective.
	var wg2 sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg2.Add(1)
		go func(c *Comm) {
			defer wg2.Done()
			next := (c.Rank() + 1) % 3
			prev := (c.Rank() + 2) % 3
			c.Send(next, 1, []byte{byte(c.Rank())})
			m := c.Recv(prev, 1)
			if int(m.Data[0]) != prev {
				t.Errorf("rank %d: ring got %d", c.Rank(), m.Data[0])
			}
			sum := c.AllreduceSumOrdered([]float64{float64(c.Rank() + 1)})
			if sum[0] != 6 {
				t.Errorf("rank %d: allreduce = %v", c.Rank(), sum[0])
			}
		}(comms[r])
	}
	wg2.Wait()
}

func TestTCPLargeMessage(t *testing.T) {
	addrs := []string{"127.0.0.1:19711", "127.0.0.1:19712"}
	var wg sync.WaitGroup
	comms := make([]*Comm, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comms[r], errs[r] = DialTCP(r, addrs, 5*time.Second)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	defer comms[0].Close()
	defer comms[1].Close()

	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	done := make(chan struct{})
	go func() {
		m := comms[1].Recv(0, 2)
		for i := range m.Data {
			if m.Data[i] != byte(i*31) {
				t.Errorf("corruption at %d", i)
				break
			}
		}
		close(done)
	}()
	comms[0].Send(1, 2, big)
	<-done
}
