package config

import (
	"flag"
	"fmt"
	"strings"
)

// Bench configures cmd/bench2json: record a labelled benchmark snapshot
// into the trajectory file, or diff two recorded labels.
type Bench struct {
	// Label names the snapshot being recorded.
	Label string `json:"label,omitempty"`
	// Out is the trajectory file to update (or read, with Diff).
	Out string `json:"out,omitempty"`
	// In is the bench output to parse ("-" = stdin).
	In string `json:"in,omitempty"`
	// Diff compares two recorded snapshots: "<labelA>,<labelB>".
	Diff string `json:"diff,omitempty"`
	// Metric selects which recorded metric -diff compares
	// ("" = ns/op). Load trajectories record e.g. p50-ns, p99-ns and
	// req/s.
	Metric string `json:"metric,omitempty"`
}

// DefaultBench returns cmd/bench2json's defaults.
func DefaultBench() Bench {
	return Bench{Out: "BENCH_kernels.json", In: "-"}
}

// RegisterFlags declares cmd/bench2json's flag surface over the
// struct's current values.
func (c *Bench) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Label, "label", c.Label, "snapshot label (required unless -diff), e.g. pr1-blocked-kernels")
	fs.StringVar(&c.Out, "out", c.Out, "trajectory file to update (or read, with -diff)")
	fs.StringVar(&c.In, "in", c.In, "bench output to parse (- = stdin)")
	fs.StringVar(&c.Diff, "diff", c.Diff, "compare two recorded snapshots: <labelA>,<labelB>")
	fs.StringVar(&c.Metric, "metric", c.Metric, "metric to compare with -diff (empty = ns/op)")
}

// Validate checks the merged configuration.
func (c Bench) Validate() error {
	if c.Out == "" {
		return fmt.Errorf("config: out file must not be empty")
	}
	if c.In == "" {
		return fmt.Errorf("config: in must name a file or \"-\" for stdin")
	}
	if c.Diff != "" {
		a, b, ok := strings.Cut(c.Diff, ",")
		if !ok || a == "" || b == "" {
			return fmt.Errorf("config: diff wants two comma-separated labels: <labelA>,<labelB>")
		}
		return nil
	}
	if c.Metric != "" {
		return fmt.Errorf("config: metric only applies with -diff")
	}
	if c.Label == "" {
		return fmt.Errorf("config: label is required (or use -diff)")
	}
	return nil
}

// DiffLabels returns the two labels of a validated Diff request.
func (c Bench) DiffLabels() (string, string) {
	a, b, _ := strings.Cut(c.Diff, ",")
	return a, b
}
