package config

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// checkValidate runs one table entry: mutate a valid base config, then
// demand either a clean Validate or an error mentioning errContains.
func checkValidate(t *testing.T, name string, err error, errContains string) {
	t.Helper()
	if errContains == "" {
		if err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
		return
	}
	if err == nil {
		t.Errorf("%s: Validate accepted, want error mentioning %q", name, errContains)
	} else if !strings.Contains(err.Error(), errContains) {
		t.Errorf("%s: error %q does not mention %q", name, err, errContains)
	}
}

// Defaults must validate once the per-command required field (data
// source, checkpoint, label, peer list) is supplied — everything else a
// Default* constructor returns has to be self-consistent.
func TestDefaultsAreValid(t *testing.T) {
	tr := DefaultTrain()
	tr.Data.Synthetic = "small"
	if err := tr.Validate(); err != nil {
		t.Errorf("DefaultTrain: %v", err)
	}

	dl := DefaultDist()
	dl.Launch = 2
	if err := dl.Validate(); err != nil {
		t.Errorf("DefaultDist (launch mode): %v", err)
	}
	dw := DefaultDist()
	dw.Rank, dw.Peers = 0, "127.0.0.1:9800,127.0.0.1:9801"
	if err := dw.Validate(); err != nil {
		t.Errorf("DefaultDist (worker mode): %v", err)
	}

	sv := DefaultServe()
	sv.Model.Ckpt = "model.ckpt"
	if err := sv.Validate(); err != nil {
		t.Errorf("DefaultServe: %v", err)
	}
	if err := DefaultServeModel().Validate("m"); !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("DefaultServeModel without ckpt: %v", err)
	}

	if err := DefaultDatagen().Validate(); err != nil {
		t.Errorf("DefaultDatagen: %v", err)
	}
	if err := DefaultExperiments().Validate(); err != nil {
		t.Errorf("DefaultExperiments: %v", err)
	}
	bc := DefaultBench()
	bc.Label = "run1"
	if err := bc.Validate(); err != nil {
		t.Errorf("DefaultBench: %v", err)
	}

	ld := DefaultLoad()
	ld.URL = "http://127.0.0.1:8080"
	if err := ld.Validate(); err != nil {
		t.Errorf("DefaultLoad: %v", err)
	}
}

func TestLoadValidate(t *testing.T) {
	base := DefaultLoad()
	base.URL = "http://127.0.0.1:8080"
	cases := []struct {
		name        string
		mut         func(*Load)
		errContains string
	}{
		{"valid closed", func(c *Load) {}, ""},
		{"valid open", func(c *Load) { c.Mode = "open"; c.Rate = 50 }, ""},
		{"no url", func(c *Load) { c.URL = "" }, "need -url"},
		{"bad mode", func(c *Load) { c.Mode = "burst" }, "mode must be"},
		{"zero vus", func(c *Load) { c.VUs = 0 }, "vus must be >= 1"},
		{"open without rate", func(c *Load) { c.Mode = "open"; c.Rate = 0 }, "arrival -rate"},
		{"zero duration", func(c *Load) { c.Duration = 0 }, "duration must be positive"},
		{"negative warmup", func(c *Load) { c.Warmup = Duration(-time.Second) }, "warmup"},
		{"zero n", func(c *Load) { c.N = 0 }, "n must be >= 1"},
		{"bad predict frac", func(c *Load) { c.PredictFrac = 1.5 }, "predict-frac"},
		{"negative users", func(c *Load) { c.Users = -1 }, "users and items"},
		{"zero timeout", func(c *Load) { c.Timeout = 0 }, "timeout must be positive"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		checkValidate(t, tc.name, c.Validate(), tc.errContains)
	}
}

func TestDataValidate(t *testing.T) {
	base := Data{Synthetic: "small", Scale: 1, TestFrac: 0.2}
	cases := []struct {
		name        string
		mut         func(*Data)
		errContains string
	}{
		{"valid", func(d *Data) {}, ""},
		{"valid file path", func(d *Data) { d.Synthetic, d.Path = "", "r.mtx" }, ""},
		{"empty", func(d *Data) { *d = Data{} }, "scale must be positive"},
		{"zero scale", func(d *Data) { d.Scale = 0 }, "scale must be positive"},
		{"negative scale", func(d *Data) { d.Scale = -0.5 }, "scale must be positive"},
		{"negative test frac", func(d *Data) { d.TestFrac = -0.1 }, "test fraction"},
		{"test frac one", func(d *Data) { d.TestFrac = 1 }, "test fraction"},
		{"unknown synthetic", func(d *Data) { d.Synthetic = "nope" }, "unknown synthetic"},
	}
	for _, tc := range cases {
		d := base
		tc.mut(&d)
		checkValidate(t, tc.name, d.Validate(), tc.errContains)
	}
}

func TestSamplerValidate(t *testing.T) {
	base := Sampler{K: 8, Alpha: 2, Iters: 10, Burnin: 5, Seed: 42}
	cases := []struct {
		name        string
		mut         func(*Sampler)
		errContains string
	}{
		{"valid", func(s *Sampler) {}, ""},
		{"zero burnin", func(s *Sampler) { s.Burnin = 0 }, ""},
		{"empty", func(s *Sampler) { *s = Sampler{} }, "k must be >= 1"},
		{"zero k", func(s *Sampler) { s.K = 0 }, "k must be >= 1"},
		{"zero alpha", func(s *Sampler) { s.Alpha = 0 }, "alpha must be positive"},
		{"negative alpha", func(s *Sampler) { s.Alpha = -1 }, "alpha must be positive"},
		{"zero iters", func(s *Sampler) { s.Iters = 0 }, "iters must be >= 1"},
		{"negative burnin", func(s *Sampler) { s.Burnin = -1 }, "burnin must be >= 0"},
		{"burnin equals iters", func(s *Sampler) { s.Burnin = s.Iters }, "less than iters"},
		{"burnin exceeds iters", func(s *Sampler) { s.Burnin = s.Iters + 5 }, "less than iters"},
	}
	for _, tc := range cases {
		s := base
		tc.mut(&s)
		checkValidate(t, tc.name, s.Validate(), tc.errContains)
	}
}

func TestClampValidate(t *testing.T) {
	cases := []struct {
		name        string
		c           Clamp
		errContains string
	}{
		{"off", Clamp{}, ""},
		{"enabled range", Clamp{Enable: true, Min: 1, Max: 5}, ""},
		{"zero-based range", Clamp{Enable: true, Min: 0, Max: 10}, ""},
		{"compat range without enable", Clamp{Min: 1, Max: 5}, ""},
		{"inverted", Clamp{Min: 5, Max: 1}, "must not exceed"},
		{"inverted enabled", Clamp{Enable: true, Min: 5, Max: 1}, "must not exceed"},
		{"enabled empty range", Clamp{Enable: true, Min: 3, Max: 3}, "empty"},
	}
	for _, tc := range cases {
		checkValidate(t, tc.name, tc.c.Validate(), tc.errContains)
	}
}

// TestClampActive pins the sentinel replacement: Enable turns clipping
// on for any valid range (a [0, N] range included, which the old (0,0)
// sentinel could not express), while a bare Max > Min still activates
// for compatibility with old flag invocations.
func TestClampActive(t *testing.T) {
	cases := []struct {
		c    Clamp
		want bool
	}{
		{Clamp{}, false},
		{Clamp{Min: 1, Max: 5}, true},
		{Clamp{Enable: true, Min: 0, Max: 5}, true},
		{Clamp{Enable: true, Min: -2, Max: 0}, true}, // max==0: the old sentinel read this as off
		{Clamp{Min: 0, Max: 0}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Active(); got != tc.want {
			t.Errorf("Clamp%+v.Active() = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestCheckpointValidate(t *testing.T) {
	cases := []struct {
		name        string
		c           Checkpoint
		errContains string
	}{
		{"off", Checkpoint{}, ""},
		{"full", Checkpoint{Dir: "/ckpt", Every: 5, ResumeIter: 10}, ""},
		{"negative every", Checkpoint{Every: -1}, "every must be >= 0"},
		{"negative resume", Checkpoint{ResumeIter: -2}, "resume-iter must be >= 0"},
		{"every without dir", Checkpoint{Every: 5}, "needs a checkpoint dir"},
		{"resume without dir", Checkpoint{ResumeIter: 3}, "needs a checkpoint dir"},
	}
	for _, tc := range cases {
		checkValidate(t, tc.name, tc.c.Validate(), tc.errContains)
	}
}

func TestFaultValidate(t *testing.T) {
	cases := []struct {
		name        string
		f           Fault
		wantEnabled bool
		errContains string
	}{
		{"disabled", Fault{DieRank: -1, DieIter: -1}, false, ""},
		{"enabled", Fault{DieRank: 1, DieIter: 3}, true, ""},
		{"rank without iter", Fault{DieRank: 1, DieIter: -1}, false, "both die-rank and die-iter"},
		{"iter without rank", Fault{DieRank: -1, DieIter: 3}, false, "both die-rank and die-iter"},
	}
	for _, tc := range cases {
		checkValidate(t, tc.name, tc.f.Validate(), tc.errContains)
		if tc.errContains == "" && tc.f.Enabled() != tc.wantEnabled {
			t.Errorf("%s: Enabled() = %v, want %v", tc.name, tc.f.Enabled(), tc.wantEnabled)
		}
	}
}

func TestTrainValidate(t *testing.T) {
	base := DefaultTrain()
	base.Data.Synthetic = "small"
	cases := []struct {
		name        string
		mut         func(*Train)
		errContains string
	}{
		{"valid", func(c *Train) {}, ""},
		{"engine alias", func(c *Train) { c.Engine = "tbb" }, ""},
		{"empty", func(c *Train) { *c = Train{} }, "need a data path"},
		{"no source", func(c *Train) { c.Data.Synthetic = "" }, "need a data path"},
		{"bad scale", func(c *Train) { c.Data.Scale = 0 }, "scale must be positive"},
		{"bad sampler", func(c *Train) { c.Sampler.Burnin = c.Sampler.Iters }, "less than iters"},
		{"unknown engine", func(c *Train) { c.Engine = "cuda" }, "unknown engine"},
		{"zero threads", func(c *Train) { c.Threads = 0 }, "threads must be >= 1"},
		{"zero ranks", func(c *Train) { c.Ranks = 0 }, "ranks must be >= 1"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		checkValidate(t, tc.name, c.Validate(), tc.errContains)
	}
}

func TestDistValidate(t *testing.T) {
	base := DefaultDist()
	base.Rank, base.Peers = 0, "127.0.0.1:9800,127.0.0.1:9801"
	cases := []struct {
		name        string
		mut         func(*Dist)
		errContains string
	}{
		{"valid worker", func(c *Dist) {}, ""},
		{"valid launch", func(c *Dist) { c.Launch, c.Rank, c.Peers = 4, -1, "" }, ""},
		{"valid elastic", func(c *Dist) {
			c.Elastic = true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, ""},
		{"empty", func(c *Dist) { *c = Dist{} }, "scale must be positive"},
		{"no source", func(c *Dist) { c.Data.Synthetic = "" }, "need a data path"},
		{"bad sampler", func(c *Dist) { c.Sampler.K = 0 }, "k must be >= 1"},
		{"zero threads", func(c *Dist) { c.Threads = 0 }, "threads must be >= 1"},
		{"zero buffer", func(c *Dist) { c.Buffer = 0 }, "buffer must be non-zero"},
		{"negative buffer ok", func(c *Dist) { c.Buffer = -1 }, ""},
		{"bad checkpoint", func(c *Dist) { c.Checkpoint.Every = 3 }, "needs a checkpoint dir"},
		{"half fault", func(c *Dist) { c.Fault.DieRank = 1 }, "both die-rank and die-iter"},
		{"zero suspicion", func(c *Dist) { c.Suspicion = 0 }, "suspicion timeout"},
		{"elastic without ckpt", func(c *Dist) { c.Elastic = true }, "elastic needs a checkpoint dir"},
		{"elastic with reorder", func(c *Dist) {
			c.Elastic, c.Reorder = true, true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, "incompatible with reorder"},
		{"launch bad baseport", func(c *Dist) { c.Launch, c.BasePort = 4, 65534 }, "consecutive rank ports"},
		{"worker no peers", func(c *Dist) { c.Peers = "" }, "worker mode needs"},
		{"worker bad peers", func(c *Dist) { c.Peers = "localhost" }, "host:port"},
		{"rank out of range", func(c *Dist) { c.Rank = 2 }, "outside the 2 addresses"},
		{"negative rank", func(c *Dist) { c.Rank = -1 }, "outside the 2 addresses"},
		{"valid joiner", func(c *Dist) {
			c.Rank, c.Peers = 0, ""
			c.Join, c.Advertise = "127.0.0.1:9890", "127.0.0.1:9802"
			c.Elastic = true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, ""},
		{"join with launch", func(c *Dist) {
			c.Launch, c.Join, c.Advertise = 4, "127.0.0.1:9890", "127.0.0.1:9802"
			c.Elastic = true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, "cannot be combined with -launch"},
		{"join bad addr", func(c *Dist) {
			c.Join, c.Advertise = "coordinator", "127.0.0.1:9802"
			c.Elastic = true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, "not host:port"},
		{"join without advertise", func(c *Dist) {
			c.Join = "127.0.0.1:9890"
			c.Elastic = true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, "needs -advertise"},
		{"join bad advertise", func(c *Dist) {
			c.Join, c.Advertise = "127.0.0.1:9890", "somewhere"
			c.Elastic = true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, "not host:port"},
		{"join without elastic", func(c *Dist) {
			c.Join, c.Advertise = "127.0.0.1:9890", "127.0.0.1:9802"
		}, "-join needs -elastic"},
		{"valid join-addr", func(c *Dist) {
			c.JoinAddr = "127.0.0.1:9890"
			c.Elastic = true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, ""},
		{"join-addr bad addr", func(c *Dist) {
			c.JoinAddr = "everywhere"
			c.Elastic = true
			c.Checkpoint = Checkpoint{Dir: "/ckpt", Every: 2}
		}, "not host:port"},
		{"join-addr without elastic", func(c *Dist) { c.JoinAddr = "127.0.0.1:9890" }, "join-addr needs -elastic"},
		{"zero min-ranks", func(c *Dist) { c.MinRanks = 0 }, "min-ranks must be >= 1"},
		{"max below min", func(c *Dist) { c.MinRanks, c.MaxRanks = 3, 2 }, "0 or >= min-ranks"},
		{"max below worker size", func(c *Dist) { c.MaxRanks = 1 }, "below the initial cluster size"},
		{"min above worker size", func(c *Dist) { c.MinRanks = 3 }, "exceeds the initial cluster size"},
		{"max below launch size", func(c *Dist) {
			c.Launch, c.Rank, c.Peers = 4, -1, ""
			c.MaxRanks = 3
		}, "below the launched cluster size"},
		{"min above launch size", func(c *Dist) {
			c.Launch, c.Rank, c.Peers = 4, -1, ""
			c.MinRanks = 5
		}, "exceeds the launched cluster size"},
		{"negative grow-at-iter", func(c *Dist) { c.Fault.GrowAtIter = -1 }, "grow-at-iter must be >= 0"},
		{"negative join-delay", func(c *Dist) { c.Fault.JoinDelay = -1 }, "join-delay must be >= 0"},
		{"negative iter-delay", func(c *Dist) { c.Fault.IterDelay = -1 }, "iter-delay must be >= 0"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		checkValidate(t, tc.name, c.Validate(), tc.errContains)
	}
}

func TestServeValidate(t *testing.T) {
	base := DefaultServe()
	base.Model.Ckpt = "model.ckpt"
	cases := []struct {
		name        string
		mut         func(*Serve)
		errContains string
	}{
		{"valid single", func(c *Serve) {}, ""},
		{"valid multi", func(c *Serve) {
			c.Model = ServeModel{}
			c.Models = map[string]ServeModel{
				"a": {Ckpt: "a.ckpt", Alpha: 2},
				"b": {Ckpt: "b.ckpt"}, // alpha defaulted by EffectiveModels
			}
		}, ""},
		{"empty", func(c *Serve) { *c = Serve{} }, "addr must not be empty"},
		{"no models", func(c *Serve) { c.Model.Ckpt = "" }, "need -ckpt"},
		{"negative threads", func(c *Serve) { c.Threads = -1 }, "threads must be >= 0"},
		{"negative watch", func(c *Serve) { c.Watch = Duration(-time.Second) }, "watch interval"},
		{"both forms", func(c *Serve) {
			c.Models = map[string]ServeModel{"a": {Ckpt: "a.ckpt", Alpha: 2}}
		}, "mutually exclusive"},
		{"bad model name", func(c *Serve) {
			c.Model = ServeModel{}
			c.Models = map[string]ServeModel{"a/b": {Ckpt: "a.ckpt", Alpha: 2}}
		}, "model name"},
		{"model without ckpt", func(c *Serve) {
			c.Model = ServeModel{}
			c.Models = map[string]ServeModel{"a": {Alpha: 2}}
		}, "needs a checkpoint path"},
		{"bad test frac", func(c *Serve) { c.Model.TestFrac = 1.5 }, "test fraction"},
		{"test frac without data", func(c *Serve) { c.Model.TestFrac = 0.2 }, "needs a data path"},
		{"bad alpha", func(c *Serve) { c.Model.Alpha = 0 }, "alpha must be positive"},
		{"inverted clamp", func(c *Serve) { c.Model.Clamp = Clamp{Min: 5, Max: 1} }, "must not exceed"},
		{"negative topn", func(c *Serve) { c.Model.TopN = -1 }, "topn must be >= 0"},
		{"bad lineage k", func(c *Serve) { c.Model.Lineage = &Lineage{Seed: 1, K: -1} }, "lineage k"},
		{"zero max batch", func(c *Serve) { c.Serving.MaxBatch = 0 }, "max batch"},
		{"negative max delay", func(c *Serve) { c.Serving.MaxDelay = Duration(-time.Millisecond) }, "max delay"},
		{"negative queue bound", func(c *Serve) { c.Serving.QueueBound = -1 }, "queue bound"},
		{"negative rate", func(c *Serve) { c.Serving.Rate = -1 }, "rate must be >= 0"},
		{"negative burst", func(c *Serve) { c.Serving.Burst = -1 }, "burst must be >= 0"},
		{"negative retry-after", func(c *Serve) { c.Serving.RetryAfter = Duration(-time.Second) }, "retry-after"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		checkValidate(t, tc.name, c.Validate(), tc.errContains)
	}
}

// TestServeEffectiveModels pins the single-model synthesis (a one-entry
// registry named "default") and the per-entry alpha defaulting.
func TestServeEffectiveModels(t *testing.T) {
	c := DefaultServe()
	c.Model.Ckpt = "m.ckpt"
	models, err := c.EffectiveModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models["default"].Ckpt != "m.ckpt" {
		t.Fatalf("single-model synthesis = %+v, want one entry named default", models)
	}

	c = DefaultServe()
	c.Models = map[string]ServeModel{"a": {Ckpt: "a.ckpt"}, "b": {Ckpt: "b.ckpt", Alpha: 4}}
	models, err = c.EffectiveModels()
	if err != nil {
		t.Fatal(err)
	}
	if models["a"].Alpha != DefaultServeModel().Alpha {
		t.Errorf("entry a alpha = %g, want the per-model default %g", models["a"].Alpha, DefaultServeModel().Alpha)
	}
	if models["b"].Alpha != 4 {
		t.Errorf("entry b alpha = %g, want its explicit 4", models["b"].Alpha)
	}
}

func TestDatagenValidate(t *testing.T) {
	cases := []struct {
		name        string
		mut         func(*Datagen)
		errContains string
	}{
		{"valid", func(c *Datagen) {}, ""},
		{"empty", func(c *Datagen) { *c = Datagen{} }, "unknown synthetic"},
		{"unknown spec", func(c *Datagen) { c.Spec = "nope" }, "unknown synthetic"},
		{"zero scale", func(c *Datagen) { c.Scale = 0 }, "scale must be positive"},
		{"negative shard-nnz", func(c *Datagen) { c.ShardNNZ = -1 }, "shard-nnz"},
	}
	for _, tc := range cases {
		c := DefaultDatagen()
		tc.mut(&c)
		checkValidate(t, tc.name, c.Validate(), tc.errContains)
	}
}

func TestExperimentsValidate(t *testing.T) {
	cases := []struct {
		name        string
		mut         func(*Experiments)
		errContains string
	}{
		{"valid", func(c *Experiments) {}, ""},
		{"valid fig", func(c *Experiments) { c.Fig = 3 }, ""},
		{"empty", func(c *Experiments) { *c = Experiments{} }, "scale must be positive"},
		{"fig too small", func(c *Experiments) { c.Fig = 1 }, "fig must be 2..5"},
		{"fig too large", func(c *Experiments) { c.Fig = 6 }, "fig must be 2..5"},
		{"zero scale", func(c *Experiments) { c.Scale = 0 }, "scale must be positive"},
	}
	for _, tc := range cases {
		c := DefaultExperiments()
		tc.mut(&c)
		checkValidate(t, tc.name, c.Validate(), tc.errContains)
	}
}

func TestBenchValidate(t *testing.T) {
	cases := []struct {
		name        string
		mut         func(*Bench)
		errContains string
	}{
		{"valid label", func(c *Bench) { c.Label = "run1" }, ""},
		{"valid diff", func(c *Bench) { c.Diff = "a,b" }, ""},
		{"empty", func(c *Bench) { *c = Bench{} }, "out file"},
		{"no label or diff", func(c *Bench) {}, "label is required"},
		{"empty in", func(c *Bench) { c.In = "" }, "stdin"},
		{"diff one label", func(c *Bench) { c.Diff = "a" }, "two comma-separated labels"},
		{"diff empty half", func(c *Bench) { c.Diff = "a," }, "two comma-separated labels"},
		{"metric with diff", func(c *Bench) { c.Diff = "a,b"; c.Metric = "p99-ns" }, ""},
		{"metric without diff", func(c *Bench) { c.Label = "run1"; c.Metric = "p99-ns" }, "metric only applies"},
	}
	for _, tc := range cases {
		c := DefaultBench()
		tc.mut(&c)
		checkValidate(t, tc.name, c.Validate(), tc.errContains)
	}
}

func TestCanonicalEngine(t *testing.T) {
	cases := map[string]string{
		"sequential": "sequential", "seq": "sequential",
		"worksteal": "worksteal", "TBB": "worksteal",
		"static": "static", "openmp": "static",
		"graphlab":    "graphlab",
		"Distributed": "distributed", "dist": "distributed", "mpi": "distributed",
		"cuda": "", "": "",
	}
	for in, want := range cases {
		if got := CanonicalEngine(in); got != want {
			t.Errorf("CanonicalEngine(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDurationJSON pins the two accepted JSON forms ("3s" strings and
// raw nanosecond numbers) and the rejection of anything else.
func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"1.5s"`), &d); err != nil || d.Std() != 1500*time.Millisecond {
		t.Errorf(`"1.5s" -> %v, %v`, d, err)
	}
	if err := json.Unmarshal([]byte(`2000000000`), &d); err != nil || d.Std() != 2*time.Second {
		t.Errorf("2e9 ns -> %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Error(`"fast" accepted as a duration`)
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Error("true accepted as a duration")
	}
	out, err := json.Marshal(Duration(3 * time.Second))
	if err != nil || string(out) != `"3s"` {
		t.Errorf("marshal = %s, %v", out, err)
	}
}
