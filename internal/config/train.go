package config

import (
	"flag"
	"fmt"
	"strings"
)

// Engine names accepted by Train.Engine (aliases included), mapped to
// their canonical form, matching the public bpmf.Engine set.
var engineNames = map[string]string{
	"sequential": "sequential", "seq": "sequential",
	"worksteal": "worksteal", "tbb": "worksteal",
	"static": "static", "openmp": "static",
	"graphlab":    "graphlab",
	"distributed": "distributed", "dist": "distributed", "mpi": "distributed",
}

// CanonicalEngine resolves an engine name or alias (case-insensitive)
// to its canonical name, or "" when the name is unknown.
func CanonicalEngine(s string) string { return engineNames[strings.ToLower(s)] }

// Train configures cmd/bpmf: one training run from a file or synthetic
// benchmark, optionally published as a servable checkpoint.
type Train struct {
	Data    Data    `json:"data"`
	Sampler Sampler `json:"sampler"`
	// Engine selects the execution strategy:
	// sequential | worksteal | static | graphlab | distributed.
	Engine string `json:"engine,omitempty"`
	// Threads is the worker count (per rank for distributed).
	Threads int `json:"threads,omitempty"`
	// Ranks is the virtual rank count for the distributed engine.
	Ranks int `json:"ranks,omitempty"`
	// Reorder applies communication-minimizing reordering (distributed).
	Reorder bool `json:"reorder,omitempty"`
	// CkptOut, when set, writes a resumable chain checkpoint there after
	// training (servable with bpmf-serve).
	CkptOut string `json:"ckpt_out,omitempty"`
	// ResumeCkpt, when set, warm-starts the chain from this checkpoint
	// instead of drawing a fresh initialization: the run continues at
	// the checkpoint's next iteration and stops at -iters total. Users
	// added to the rating matrix since the checkpoint are folded in
	// deterministically; -k and -seed must match the checkpointed run.
	ResumeCkpt string `json:"resume_ckpt,omitempty"`
}

// DefaultTrain returns cmd/bpmf's defaults: the paper's 20/10 chain at
// K=32 on the work-stealing engine.
func DefaultTrain() Train {
	return Train{
		Data:    Data{Scale: 1, TestFrac: 0.2},
		Sampler: Sampler{K: 32, Alpha: 2, Iters: 20, Burnin: 10, Seed: 42},
		Engine:  "worksteal",
		Threads: 1,
		Ranks:   1,
	}
}

// RegisterFlags declares cmd/bpmf's flag surface over the struct's
// current values.
func (c *Train) RegisterFlags(fs *flag.FlagSet) {
	registerData(fs, &c.Data)
	registerSampler(fs, &c.Sampler)
	fs.StringVar(&c.Engine, "engine", c.Engine, "sequential | worksteal | static | graphlab | distributed")
	fs.IntVar(&c.Threads, "threads", c.Threads, "worker threads (per rank for distributed)")
	fs.IntVar(&c.Ranks, "ranks", c.Ranks, "virtual ranks for the distributed engine")
	fs.BoolVar(&c.Reorder, "reorder", c.Reorder, "communication-minimizing reordering (distributed)")
	fs.StringVar(&c.CkptOut, "ckpt-out", c.CkptOut, "write a resumable chain checkpoint here after training (servable with bpmf-serve)")
	fs.StringVar(&c.ResumeCkpt, "resume-ckpt", c.ResumeCkpt, "warm-start the chain from this checkpoint and continue to -iters total iterations")
}

// Validate checks the merged configuration.
func (c Train) Validate() error {
	if c.Data.Path == "" && c.Data.Synthetic == "" {
		return fmt.Errorf("config: need a data path (-data) or a synthetic benchmark (-synthetic)")
	}
	if err := c.Data.Validate(); err != nil {
		return err
	}
	if err := c.Sampler.Validate(); err != nil {
		return err
	}
	if CanonicalEngine(c.Engine) == "" {
		return fmt.Errorf("config: unknown engine %q (want sequential | worksteal | static | graphlab | distributed)", c.Engine)
	}
	if c.Threads < 1 {
		return fmt.Errorf("config: threads must be >= 1, got %d", c.Threads)
	}
	if c.Ranks < 1 {
		return fmt.Errorf("config: ranks must be >= 1, got %d", c.Ranks)
	}
	return nil
}

// registerData declares the shared data-source flags (-data, -synthetic,
// -scale, -test): one declaration for every command, so defaults and
// help strings cannot drift per command anymore.
func registerData(fs *flag.FlagSet, d *Data) {
	fs.StringVar(&d.Path, "data", d.Path, "rating matrix to train on (MatrixMarket .mtx or binary .bcsr, sniffed)")
	fs.StringVar(&d.Synthetic, "synthetic", d.Synthetic, "built-in benchmark: chembl | ml-20m | small | tiny")
	fs.Float64Var(&d.Scale, "scale", d.Scale, "scale factor for the synthetic benchmark (> 1 scales up)")
	fs.Float64Var(&d.TestFrac, "test", d.TestFrac, "held-out fraction for RMSE evaluation")
}

// registerSampler declares the shared Gibbs-chain flags.
func registerSampler(fs *flag.FlagSet, s *Sampler) {
	fs.IntVar(&s.K, "k", s.K, "latent features")
	fs.Float64Var(&s.Alpha, "alpha", s.Alpha, "observation precision")
	fs.IntVar(&s.Iters, "iters", s.Iters, "Gibbs iterations")
	fs.IntVar(&s.Burnin, "burnin", s.Burnin, "burn-in iterations")
	fs.Uint64Var(&s.Seed, "seed", s.Seed, "random seed")
}
