package config

import (
	"flag"
	"fmt"
	"net"
	"strings"
	"time"
)

// Dist configures cmd/bpmf-dist: a multi-process TCP cluster (worker
// mode with -rank/-peers, or -launch forking all ranks locally), with
// optional elastic fault tolerance.
type Dist struct {
	// Launch forks N local worker processes and waits (0 = worker mode).
	Launch int `json:"launch,omitempty"`
	// Rank is this process's rank in worker mode.
	Rank int `json:"rank"`
	// Peers lists every rank's listen address in rank order,
	// comma-separated host:port pairs.
	Peers string `json:"peers,omitempty"`
	// BasePort is the first port for -launch mode.
	BasePort int `json:"baseport,omitempty"`

	Data    Data    `json:"data"`
	Sampler Sampler `json:"sampler"`
	// FullLoad decodes the whole .bcsr on every rank instead of
	// shard-native per-rank loading.
	FullLoad bool `json:"full_load,omitempty"`
	// Threads is the worker-thread count per rank.
	Threads int `json:"threads,omitempty"`
	// Buffer is the coalescing buffer capacity in bytes.
	Buffer int `json:"buffer,omitempty"`
	// Reorder applies communication-minimizing reordering.
	Reorder bool `json:"reorder,omitempty"`

	// Elastic survives rank failures: detect dead peers, shrink the
	// cluster, resume from the latest checkpoint.
	Elastic    bool       `json:"elastic,omitempty"`
	Checkpoint Checkpoint `json:"checkpoint"`
	// Suspicion is the failure-detector timeout: a silent peer is
	// declared dead after this long.
	Suspicion Duration `json:"suspicion,omitempty"`
	Fault     Fault    `json:"fault"`

	// Join runs this process as a late worker: it asks the coordinator's
	// membership listener at this address to admit it, waits for the
	// sealed view, and enters the cluster at the resume iteration.
	Join string `json:"join,omitempty"`
	// Advertise is a -join worker's own fabric listen address (host:port
	// reachable by every member).
	Advertise string `json:"advertise,omitempty"`
	// JoinAddr is the membership listen address the coordinator (rank 0,
	// or the lowest survivor after a failure) accepts join requests on.
	JoinAddr string `json:"join_addr,omitempty"`
	// MinRanks aborts the run when a shrunken view falls below this many
	// members (default 1: shrink all the way to a single rank).
	MinRanks int `json:"min_ranks,omitempty"`
	// MaxRanks caps admissions (0 = unbounded).
	MaxRanks int `json:"max_ranks,omitempty"`
}

// DefaultDist returns cmd/bpmf-dist's defaults: a short chain at K=16
// on the small synthetic benchmark.
func DefaultDist() Dist {
	return Dist{
		Rank:      -1,
		BasePort:  9800,
		Data:      Data{Synthetic: "small", Scale: 1, TestFrac: 0.2},
		Sampler:   Sampler{K: 16, Alpha: 2, Iters: 10, Burnin: 5, Seed: 42},
		Threads:   1,
		Buffer:    64 << 10,
		Suspicion: Duration(3 * time.Second),
		Fault:     Fault{DieRank: -1, DieIter: -1},
		MinRanks:  1,
	}
}

// RegisterFlags declares cmd/bpmf-dist's flag surface over the struct's
// current values.
func (c *Dist) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.Launch, "launch", c.Launch, "fork N local worker processes and wait")
	fs.IntVar(&c.Rank, "rank", c.Rank, "this process's rank")
	fs.StringVar(&c.Peers, "peers", c.Peers, "comma-separated rank addresses (host:port per rank)")
	fs.IntVar(&c.BasePort, "baseport", c.BasePort, "first port for -launch mode")
	registerData(fs, &c.Data)
	registerSampler(fs, &c.Sampler)
	fs.BoolVar(&c.FullLoad, "full-load", c.FullLoad, "decode the whole .bcsr on every rank instead of shard-native per-rank loading")
	fs.IntVar(&c.Threads, "threads", c.Threads, "worker threads (per rank for distributed)")
	fs.IntVar(&c.Buffer, "buffer", c.Buffer, "coalescing buffer bytes")
	fs.BoolVar(&c.Reorder, "reorder", c.Reorder, "communication-minimizing reordering (distributed)")
	fs.BoolVar(&c.Elastic, "elastic", c.Elastic, "survive rank failures: detect dead peers, shrink the cluster, resume from the latest checkpoint")
	fs.StringVar(&c.Checkpoint.Dir, "ckpt-dir", c.Checkpoint.Dir, "directory for coordinated checkpoints (must be shared storage across ranks)")
	fs.IntVar(&c.Checkpoint.Every, "ckpt-every", c.Checkpoint.Every, "checkpoint every N iterations (0 disables)")
	fs.IntVar(&c.Checkpoint.ResumeIter, "resume-iter", c.Checkpoint.ResumeIter, "resume from the sealed manifest of this iteration instead of the latest (0 = latest)")
	fs.Var(&c.Suspicion, "suspicion", "failure-detector timeout: a silent peer is declared dead after this long")
	fs.IntVar(&c.Fault.DieRank, "die-rank", c.Fault.DieRank, "fault injection: the rank that kills itself (requires -die-iter)")
	fs.IntVar(&c.Fault.DieIter, "die-iter", c.Fault.DieIter, "fault injection: the iteration after which -die-rank exits")
	fs.StringVar(&c.Join, "join", c.Join, "join a running cluster as a late worker via this coordinator membership address")
	fs.StringVar(&c.Advertise, "advertise", c.Advertise, "this -join worker's own fabric listen address (host:port)")
	fs.StringVar(&c.JoinAddr, "join-addr", c.JoinAddr, "membership listen address the coordinator accepts -join requests on")
	fs.IntVar(&c.MinRanks, "min-ranks", c.MinRanks, "abort when a shrunken cluster falls below this many ranks")
	fs.IntVar(&c.MaxRanks, "max-ranks", c.MaxRanks, "cap on admitted cluster size (0 = unbounded)")
	fs.IntVar(&c.Fault.GrowAtIter, "grow-at-iter", c.Fault.GrowAtIter, "membership test hook: defer admitting pending joiners until this iteration")
	fs.Var(&c.Fault.JoinDelay, "join-delay", "membership test hook: sleep this long before filing the -join request")
	fs.Var(&c.Fault.IterDelay, "iter-delay", "test pacing: pause every rank this long after each iteration")
}

// Validate checks the merged configuration, including the cross-flag
// rules that used to live as ad-hoc log.Fatal checks in main: worker
// mode needs a coherent -rank/-peers pair, -elastic needs the
// checkpoint plane and is incompatible with -reorder, and fault
// injection needs both halves.
func (c Dist) Validate() error {
	if err := c.Data.Validate(); err != nil {
		return err
	}
	if c.Data.Path == "" && c.Data.Synthetic == "" {
		return fmt.Errorf("config: need a data path (-data) or a synthetic benchmark (-synthetic)")
	}
	if err := c.Sampler.Validate(); err != nil {
		return err
	}
	if c.Threads < 1 {
		return fmt.Errorf("config: threads must be >= 1, got %d", c.Threads)
	}
	if c.Buffer == 0 {
		// Negative disables coalescing (a supported debug mode); zero
		// would mean "default" ambiguously — the default is explicit.
		return fmt.Errorf("config: buffer must be non-zero (negative disables coalescing)")
	}
	if err := c.Checkpoint.Validate(); err != nil {
		return err
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if c.Suspicion <= 0 {
		return fmt.Errorf("config: suspicion timeout must be positive, got %s", c.Suspicion)
	}
	if c.Elastic {
		if c.Checkpoint.Dir == "" || c.Checkpoint.Every <= 0 {
			return fmt.Errorf("config: elastic needs a checkpoint dir and a positive checkpoint every (recovery resumes from the latest sealed manifest)")
		}
		if c.Reorder {
			return fmt.Errorf("config: elastic is incompatible with reorder (checkpoints live in the unpermuted index space)")
		}
	}
	if c.MinRanks < 1 {
		return fmt.Errorf("config: min-ranks must be >= 1, got %d", c.MinRanks)
	}
	if c.MaxRanks != 0 && c.MaxRanks < c.MinRanks {
		return fmt.Errorf("config: max-ranks (%d) must be 0 or >= min-ranks (%d)", c.MaxRanks, c.MinRanks)
	}
	if c.JoinAddr != "" {
		if _, _, err := net.SplitHostPort(c.JoinAddr); err != nil {
			return fmt.Errorf("config: join-addr %q is not host:port: %v", c.JoinAddr, err)
		}
		if !c.Elastic {
			return fmt.Errorf("config: join-addr needs -elastic (admitting a member re-meshes through the elastic drain/resume machinery)")
		}
	}
	if c.Join != "" {
		// Late-joiner mode: the view replaces -rank/-peers entirely.
		if c.Launch > 0 {
			return fmt.Errorf("config: -join cannot be combined with -launch (a joiner is a single late worker)")
		}
		if _, _, err := net.SplitHostPort(c.Join); err != nil {
			return fmt.Errorf("config: join %q is not host:port: %v", c.Join, err)
		}
		if c.Advertise == "" {
			return fmt.Errorf("config: -join needs -advertise (the joiner's own fabric listen address)")
		}
		if _, _, err := net.SplitHostPort(c.Advertise); err != nil {
			return fmt.Errorf("config: advertise %q is not host:port: %v", c.Advertise, err)
		}
		if !c.Elastic {
			return fmt.Errorf("config: -join needs -elastic (the joiner resumes through the elastic checkpoint plane)")
		}
		return nil
	}
	if c.Launch > 0 {
		if c.BasePort < 1 || c.BasePort > 65535-c.Launch {
			return fmt.Errorf("config: baseport %d cannot host %d consecutive rank ports", c.BasePort, c.Launch)
		}
		if c.MaxRanks != 0 && c.MaxRanks < c.Launch {
			return fmt.Errorf("config: max-ranks (%d) is below the launched cluster size (%d)", c.MaxRanks, c.Launch)
		}
		if c.MinRanks > c.Launch {
			return fmt.Errorf("config: min-ranks (%d) exceeds the launched cluster size (%d)", c.MinRanks, c.Launch)
		}
		return nil
	}
	// Worker mode: -rank and -peers must agree.
	addrs, err := ParsePeers(c.Peers)
	if err != nil {
		return fmt.Errorf("%w (worker mode needs -rank and -peers; or use -launch N)", err)
	}
	if c.Rank < 0 || c.Rank >= len(addrs) {
		return fmt.Errorf("config: rank %d outside the %d addresses in peers", c.Rank, len(addrs))
	}
	if c.MaxRanks != 0 && c.MaxRanks < len(addrs) {
		return fmt.Errorf("config: max-ranks (%d) is below the initial cluster size (%d)", c.MaxRanks, len(addrs))
	}
	if c.MinRanks > len(addrs) {
		return fmt.Errorf("config: min-ranks (%d) exceeds the initial cluster size (%d)", c.MinRanks, len(addrs))
	}
	return nil
}

// Addrs returns the validated peer address list in rank order.
func (c Dist) Addrs() ([]string, error) { return ParsePeers(c.Peers) }

// ParsePeers validates a -peers list up front: empty entries (stray
// commas), whitespace, malformed host:port pairs and duplicate
// addresses all produce a clear error here instead of a cluster that
// dials itself into a deadlock.
func ParsePeers(peers string) ([]string, error) {
	if strings.TrimSpace(peers) == "" {
		return nil, fmt.Errorf("config: missing peers")
	}
	addrs := strings.Split(peers, ",")
	seen := make(map[string]int, len(addrs))
	for i, a := range addrs {
		if strings.TrimSpace(a) == "" {
			return nil, fmt.Errorf("config: peers entry %d is empty (stray comma in %q)", i, peers)
		}
		if a != strings.TrimSpace(a) {
			return nil, fmt.Errorf("config: peers entry %d %q has surrounding whitespace", i, a)
		}
		if _, _, err := net.SplitHostPort(a); err != nil {
			return nil, fmt.Errorf("config: peers entry %d %q is not host:port: %v", i, a, err)
		}
		if prev, dup := seen[a]; dup {
			return nil, fmt.Errorf("config: peers lists %q for both rank %d and rank %d; every rank needs its own listen address", a, prev, i)
		}
		seen[a] = i
	}
	return addrs, nil
}
