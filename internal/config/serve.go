package config

import (
	"flag"
	"fmt"
	"sort"
	"time"
)

// ServeModel configures one named model in the bpmf-serve registry.
type ServeModel struct {
	// Ckpt is the checkpoint file the model serves (required).
	Ckpt string `json:"ckpt"`
	// Data is the model's training rating matrix (.mtx or .bcsr,
	// sniffed): enables already-rated exclusion in /recommend.
	Data string `json:"data,omitempty"`
	// TestFrac reconstructs the training run's held-out split (seeded by
	// the checkpoint) so /predict serves exact posterior intervals.
	// Needs Data.
	TestFrac float64 `json:"test,omitempty"`
	// Alpha is the observation precision the chain was trained with.
	Alpha float64 `json:"alpha,omitempty"`
	// Clamp clips served ratings to a range.
	Clamp Clamp `json:"clamp"`
	// TopN > 0 precomputes every user's top-N list at (re)load time.
	TopN int `json:"topn,omitempty"`
	// Lineage, when non-nil, pins the checkpoint's provenance: every
	// load and hot reload must match it.
	Lineage *Lineage `json:"lineage,omitempty"`
}

// Validate checks one model entry. name contextualizes errors.
func (m ServeModel) Validate(name string) error {
	if m.Ckpt == "" {
		return fmt.Errorf("config: model %q needs a checkpoint path", name)
	}
	if m.TestFrac < 0 || m.TestFrac >= 1 {
		return fmt.Errorf("config: model %q test fraction must be in [0, 1), got %g", name, m.TestFrac)
	}
	if m.TestFrac > 0 && m.Data == "" {
		return fmt.Errorf("config: model %q test fraction needs a data path to reconstruct the split", name)
	}
	if m.Alpha <= 0 {
		return fmt.Errorf("config: model %q alpha must be positive, got %g", name, m.Alpha)
	}
	if err := m.Clamp.Validate(); err != nil {
		return fmt.Errorf("%w (model %q)", err, name)
	}
	if m.TopN < 0 {
		return fmt.Errorf("config: model %q topn must be >= 0, got %d", name, m.TopN)
	}
	if m.Lineage != nil && m.Lineage.K < 0 {
		return fmt.Errorf("config: model %q lineage k must be >= 0, got %d", name, m.Lineage.K)
	}
	return nil
}

// Serving configures the request path shared by every model route of
// the registry: the batching window that coalesces concurrent requests
// into shared GEMM flushes, the queue bound that sheds overload (503 +
// Retry-After), and the per-client rate limit (429 + Retry-After).
// Batching and the queue are per model route; the rate limit is per
// (client, model).
type Serving struct {
	// MaxBatch caps how many queued requests one flush scores together
	// (1 = disable coalescing, serve the per-request path).
	MaxBatch int `json:"max_batch,omitempty"`
	// MaxDelay bounds how long a busy batcher waits to fill a partial
	// batch; an idle batcher always flushes immediately.
	MaxDelay Duration `json:"max_delay,omitempty"`
	// QueueBound is the SLO bound on queued requests per model; beyond
	// it new requests are shed with 503 (0 = unbounded).
	QueueBound int `json:"queue_bound,omitempty"`
	// Rate is the per-client admission rate in requests/second
	// (0 = no rate limit).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket depth per client (0 derives
	// max(1, ceil(rate))).
	Burst int `json:"burst,omitempty"`
	// RetryAfter is the back-off hint attached to queue-overload sheds.
	RetryAfter Duration `json:"retry_after,omitempty"`
}

// DefaultServing returns the serving-path defaults: coalesce up to 64
// requests, wait at most 200µs to fill a partial batch while busy, shed
// beyond 1024 queued requests, no per-client rate limit.
func DefaultServing() Serving {
	return Serving{
		MaxBatch:   64,
		MaxDelay:   Duration(200 * time.Microsecond),
		QueueBound: 1024,
		RetryAfter: Duration(time.Second),
	}
}

// RegisterFlags declares the serving-path flag surface over the
// struct's current values.
func (c *Serving) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.MaxBatch, "max-batch", c.MaxBatch, "max requests coalesced into one scoring flush (1 = unbatched)")
	fs.Var(&c.MaxDelay, "max-delay", "max wait to fill a partial batch while busy (idle requests never wait)")
	fs.IntVar(&c.QueueBound, "queue-bound", c.QueueBound, "shed requests with 503 beyond this many queued per model (0 = unbounded)")
	fs.Float64Var(&c.Rate, "rate", c.Rate, "per-client request rate limit in req/s (0 = unlimited)")
	fs.IntVar(&c.Burst, "burst", c.Burst, "per-client token-bucket burst (0 = derive from -rate)")
	fs.Var(&c.RetryAfter, "retry-after", "Retry-After hint attached to overload sheds")
}

// Validate checks the serving-path configuration.
func (c Serving) Validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("config: max batch must be >= 1 (1 = unbatched), got %d", c.MaxBatch)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("config: max delay must be >= 0, got %s", c.MaxDelay)
	}
	if c.QueueBound < 0 {
		return fmt.Errorf("config: queue bound must be >= 0 (0 = unbounded), got %d", c.QueueBound)
	}
	if c.Rate < 0 {
		return fmt.Errorf("config: rate must be >= 0 (0 = unlimited), got %g", c.Rate)
	}
	if c.Burst < 0 {
		return fmt.Errorf("config: burst must be >= 0 (0 = derived), got %d", c.Burst)
	}
	if c.RetryAfter < 0 {
		return fmt.Errorf("config: retry-after must be >= 0, got %s", c.RetryAfter)
	}
	return nil
}

// Serve configures cmd/bpmf-serve: an HTTP registry of N named models.
// The single-model flag surface (-ckpt, -data, ...) populates Model;
// a config file can instead declare Models, a map of name → model.
// Exactly one of the two forms must be used.
type Serve struct {
	// Addr is the HTTP listen address.
	Addr string `json:"addr,omitempty"`
	// Threads is the worker-thread count for top-N precomputes
	// (0 = GOMAXPROCS), shared by all models.
	Threads int `json:"threads,omitempty"`
	// Watch polls each model's checkpoint file at this interval and
	// hot-reloads it on change (0 = SIGHUP only). Models reload
	// independently: one model's new checkpoint never touches the
	// others' snapshots.
	Watch Duration `json:"watch,omitempty"`
	// Serving configures the shared request path: batching window,
	// queue bound, per-client rate limits.
	Serving Serving `json:"serving"`

	// Model is the single-model configuration the classic flag surface
	// fills in; it serves under the name "default".
	Model ServeModel `json:"model"`
	// Models declares N named models (file-only; names become the
	// /v1/<name>/... route segment).
	Models map[string]ServeModel `json:"models,omitempty"`
}

// DefaultServe returns cmd/bpmf-serve's defaults.
func DefaultServe() Serve {
	return Serve{
		Addr:    ":8080",
		Serving: DefaultServing(),
		Model:   ServeModel{Alpha: 2.0},
	}
}

// DefaultServeModel returns the per-model defaults applied to every
// entry of Models that leaves a field unset (JSON merge cannot overlay
// per-entry defaults, so EffectiveModels applies them explicitly).
func DefaultServeModel() ServeModel { return ServeModel{Alpha: 2.0} }

// RegisterFlags declares cmd/bpmf-serve's flag surface over the
// struct's current values. The per-model flags configure Model (the
// "default" entry); multi-model registries come from the config file.
func (c *Serve) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Addr, "addr", c.Addr, "HTTP listen address")
	fs.IntVar(&c.Threads, "threads", c.Threads, "worker threads for the top-N precompute (0 = GOMAXPROCS)")
	fs.Var(&c.Watch, "watch", "poll each model's checkpoint at this interval and hot-reload on change (0 = SIGHUP only)")
	c.Serving.RegisterFlags(fs)
	fs.StringVar(&c.Model.Ckpt, "ckpt", c.Model.Ckpt, "checkpoint file to serve (single-model mode)")
	fs.StringVar(&c.Model.Data, "data", c.Model.Data, "rating matrix (MatrixMarket .mtx or binary .bcsr): enables already-rated exclusion in /recommend")
	fs.Float64Var(&c.Model.TestFrac, "test", c.Model.TestFrac, "held-out fraction of the training run; with -data, reconstructs the test split (seeded by the checkpoint) so /predict serves exact posterior intervals")
	fs.Float64Var(&c.Model.Alpha, "alpha", c.Model.Alpha, "observation precision the chain was trained with")
	fs.BoolVar(&c.Model.Clamp.Enable, "clamp", c.Model.Clamp.Enable, "clip served ratings to [clamp-min, clamp-max]")
	fs.Float64Var(&c.Model.Clamp.Min, "clamp-min", c.Model.Clamp.Min, "minimum served rating (with -clamp)")
	fs.Float64Var(&c.Model.Clamp.Max, "clamp-max", c.Model.Clamp.Max, "maximum served rating (with -clamp; -clamp-max > -clamp-min also enables clipping for compatibility)")
	fs.IntVar(&c.Model.TopN, "topn", c.Model.TopN, "precompute every user's top-N list at (re)load time (0 = off)")
}

// Validate checks the merged configuration.
func (c Serve) Validate() error {
	if c.Addr == "" {
		return fmt.Errorf("config: serve addr must not be empty")
	}
	if c.Threads < 0 {
		return fmt.Errorf("config: threads must be >= 0 (0 = GOMAXPROCS), got %d", c.Threads)
	}
	if c.Watch < 0 {
		return fmt.Errorf("config: watch interval must be >= 0, got %s", c.Watch)
	}
	if err := c.Serving.Validate(); err != nil {
		return err
	}
	if len(c.Models) == 0 {
		if c.Model.Ckpt == "" {
			return fmt.Errorf("config: need -ckpt (single-model mode) or a models map in the config file")
		}
		return c.Model.Validate("default")
	}
	if c.Model.Ckpt != "" {
		return fmt.Errorf("config: -ckpt (single-model mode) and a models map are mutually exclusive — add the model to the map instead")
	}
	models, err := c.EffectiveModels()
	if err != nil {
		return err
	}
	for _, name := range sortedNames(models) {
		if err := validModelName(name); err != nil {
			return err
		}
		if err := models[name].Validate(name); err != nil {
			return err
		}
	}
	return nil
}

// EffectiveModels resolves the registry contents: the named Models map
// with per-model defaults applied, or a one-entry map named "default"
// synthesized from the single-model flag surface.
func (c Serve) EffectiveModels() (map[string]ServeModel, error) {
	if len(c.Models) == 0 {
		if c.Model.Ckpt == "" {
			return nil, fmt.Errorf("config: no models configured")
		}
		return map[string]ServeModel{"default": c.Model}, nil
	}
	out := make(map[string]ServeModel, len(c.Models))
	for name, m := range c.Models {
		if m.Alpha == 0 {
			m.Alpha = DefaultServeModel().Alpha
		}
		out[name] = m
	}
	return out, nil
}

// validModelName restricts registry names to URL-path-safe tokens so
// /v1/<name>/... routes stay unambiguous.
func validModelName(name string) error {
	if name == "" {
		return fmt.Errorf("config: model name must not be empty")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("config: model name %q may only contain letters, digits, '-', '_' and '.'", name)
		}
	}
	return nil
}

// sortedNames returns map keys in deterministic order.
func sortedNames(m map[string]ServeModel) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
