package config

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newFS(t *testing.T) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParsePrecedence pins the three-layer resolution contract:
// Default*() < -config file < explicitly set flags, independent of
// where -config sits among the other flags.
func TestParsePrecedence(t *testing.T) {
	path := writeFile(t, "train.json", `{
		"data":    {"synthetic": "tiny", "scale": 2},
		"sampler": {"k": 8, "iters": 30, "burnin": 3},
		"engine":  "static"
	}`)

	for _, args := range [][]string{
		{"-config", path, "-k", "4", "-iters", "50"},
		{"-k", "4", "-iters", "50", "-config", path}, // -config after other flags
		{"-k", "9", "-config", path, "-k", "4", "-iters", "50"},
	} {
		cfg := DefaultTrain()
		if err := Parse(newFS(t), args, &cfg); err != nil {
			t.Fatalf("Parse(%v): %v", args, err)
		}
		// Flags win over the file.
		if cfg.Sampler.K != 4 {
			t.Errorf("args %v: K = %d, want the flag's 4 over the file's 8", args, cfg.Sampler.K)
		}
		if cfg.Sampler.Iters != 50 {
			t.Errorf("args %v: Iters = %d, want the flag's 50 over the file's 30", args, cfg.Sampler.Iters)
		}
		// File wins over defaults.
		if cfg.Data.Synthetic != "tiny" || cfg.Data.Scale != 2 {
			t.Errorf("args %v: data = %+v, want the file's tiny at scale 2", args, cfg.Data)
		}
		if cfg.Sampler.Burnin != 3 {
			t.Errorf("args %v: Burnin = %d, want the file's 3", args, cfg.Sampler.Burnin)
		}
		if cfg.Engine != "static" {
			t.Errorf("args %v: Engine = %q, want the file's static", args, cfg.Engine)
		}
		// Untouched fields keep their defaults.
		if cfg.Sampler.Seed != DefaultTrain().Sampler.Seed {
			t.Errorf("args %v: Seed = %d, want the default %d", args, cfg.Sampler.Seed, DefaultTrain().Sampler.Seed)
		}
		if cfg.Threads != DefaultTrain().Threads {
			t.Errorf("args %v: Threads = %d, want the default %d", args, cfg.Threads, DefaultTrain().Threads)
		}
	}
}

// TestParseFlagsOnly works without any file: defaults plus flags.
func TestParseFlagsOnly(t *testing.T) {
	cfg := DefaultTrain()
	if err := Parse(newFS(t), []string{"-synthetic", "small", "-k", "12"}, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Sampler.K != 12 || cfg.Data.Synthetic != "small" {
		t.Errorf("got K=%d synthetic=%q", cfg.Sampler.K, cfg.Data.Synthetic)
	}
	if cfg.Engine != DefaultTrain().Engine {
		t.Errorf("Engine = %q, want the untouched default", cfg.Engine)
	}
}

// TestParseValidatesMergedResult: a config that is only invalid after
// the merge still fails, and the error names the file that fed it.
func TestParseValidatesMergedResult(t *testing.T) {
	path := writeFile(t, "train.json", `{"data": {"synthetic": "small"}, "sampler": {"iters": 5}}`)
	cfg := DefaultTrain()
	err := Parse(newFS(t), []string{"-config", path}, &cfg) // default burnin 10 >= file iters 5
	if err == nil {
		t.Fatal("merged burnin >= iters accepted")
	}
	if !strings.Contains(err.Error(), "less than iters") {
		t.Errorf("error %q does not explain the burnin/iters rule", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not name the config file", err)
	}
}

func TestParseRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"data": {"synthetic": "small"}, "typo_field": 3}`,
		"trailing data": `{"data": {"synthetic": "small"}} {"more": true}`,
		"not json":      `iters = 30`,
	}
	for name, content := range cases {
		path := writeFile(t, "bad.json", content)
		cfg := DefaultTrain()
		if err := Parse(newFS(t), []string{"-config", path}, &cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	cfg := DefaultTrain()
	if err := Parse(newFS(t), []string{"-config", "/does/not/exist.json"}, &cfg); err == nil {
		t.Error("missing config file accepted")
	}
}

// TestParseMultiModelServeFile loads a two-model registry config the
// way cmd/bpmf-serve does, with a flag override reaching a
// registry-level field.
func TestParseMultiModelServeFile(t *testing.T) {
	path := writeFile(t, "serve.json", `{
		"addr":  ":9090",
		"watch": "2s",
		"models": {
			"movies": {"ckpt": "movies.ckpt", "topn": 10, "clamp": {"enable": true, "min": 0, "max": 5}},
			"drugs":  {"ckpt": "drugs.ckpt", "lineage": {"seed": 7, "k": 16}}
		}
	}`)
	cfg := DefaultServe()
	if err := Parse(newFS(t), []string{"-config", path, "-addr", ":7070"}, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":7070" {
		t.Errorf("Addr = %q, want the flag's :7070 over the file's :9090", cfg.Addr)
	}
	if cfg.Watch.Std().Seconds() != 2 {
		t.Errorf("Watch = %s, want the file's 2s", cfg.Watch)
	}
	models, err := cfg.EffectiveModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("EffectiveModels = %d entries, want 2", len(models))
	}
	mv := models["movies"]
	if mv.TopN != 10 || !mv.Clamp.Enable || mv.Clamp.Max != 5 {
		t.Errorf("movies = %+v", mv)
	}
	if mv.Alpha != DefaultServeModel().Alpha {
		t.Errorf("movies alpha = %g, want the per-model default", mv.Alpha)
	}
	dr := models["drugs"]
	if dr.Lineage == nil || dr.Lineage.Seed != 7 || dr.Lineage.K != 16 {
		t.Errorf("drugs lineage = %+v", dr.Lineage)
	}
}

// TestParseReportsUnknownFlags: a typo'd flag surfaces through the real
// FlagSet's error handling instead of being eaten by the -config scan.
func TestParseReportsUnknownFlags(t *testing.T) {
	cfg := DefaultTrain()
	if err := Parse(newFS(t), []string{"-synthetic", "small", "-no-such-flag"}, &cfg); err == nil {
		t.Error("unknown flag accepted")
	}
}
