package config

import (
	"flag"
	"fmt"
)

// Experiments configures cmd/experiments: which figures/experiments of
// the paper's evaluation to regenerate and at what workload scale.
type Experiments struct {
	// Fig regenerates one figure (2..5; 0 = none).
	Fig int `json:"fig,omitempty"`
	// RMSE runs the §V-B accuracy-equivalence experiment.
	RMSE bool `json:"rmse,omitempty"`
	// Speedup runs the §VI end-to-end speedup estimate.
	Speedup bool `json:"speedup,omitempty"`
	// Ablations runs the DESIGN.md §5 ablation tables.
	Ablations bool `json:"ablations,omitempty"`
	// All runs every experiment.
	All bool `json:"all,omitempty"`
	// Scale is the dataset scale factor for the simulator workloads.
	Scale float64 `json:"scale,omitempty"`
	// Calibrate measures kernel costs on this machine instead of using
	// the fixed Westmere-like model.
	Calibrate bool `json:"calibrate,omitempty"`
}

// DefaultExperiments returns cmd/experiments' defaults.
func DefaultExperiments() Experiments {
	return Experiments{Scale: 0.05}
}

// RegisterFlags declares cmd/experiments' flag surface over the
// struct's current values.
func (c *Experiments) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.Fig, "fig", c.Fig, "figure to regenerate (2..5)")
	fs.BoolVar(&c.RMSE, "rmse", c.RMSE, "run the §V-B accuracy-equivalence experiment")
	fs.BoolVar(&c.Speedup, "speedup", c.Speedup, "run the §VI end-to-end speedup estimate")
	fs.BoolVar(&c.Ablations, "ablations", c.Ablations, "run the DESIGN.md §5 ablation tables")
	fs.BoolVar(&c.All, "all", c.All, "run every experiment")
	fs.Float64Var(&c.Scale, "scale", c.Scale, "dataset scale factor for simulator workloads")
	fs.BoolVar(&c.Calibrate, "calibrate", c.Calibrate, "calibrate the cost model on this machine")
}

// Validate checks the merged configuration.
func (c Experiments) Validate() error {
	if c.Fig != 0 && (c.Fig < 2 || c.Fig > 5) {
		return fmt.Errorf("config: fig must be 2..5, got %d", c.Fig)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("config: data scale must be positive, got %g", c.Scale)
	}
	return nil
}
