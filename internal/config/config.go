// Package config is the one validated configuration contract behind
// every command in this repo. Each CLI has a typed config struct
// (Train, Dist, Serve, Datagen, Experiments, Bench) built from shared
// sub-structs (Data, Sampler, Clamp, Checkpoint, Fault, Lineage); each
// struct has a Default* constructor and a Validate() error method that
// returns precise, field-naming errors.
//
// Resolution order is always the same three layers, later wins:
//
//	Default*()  <  -config JSON file  <  explicitly set flags
//
// so every cmd/* main shrinks to parse → merge → Validate() → run (see
// Parse). The ad-hoc checks that used to be scattered through the CLIs
// (-scale <= 0, -peers syntax, clamp ranges, Burnin >= Iters, elastic
// prerequisites) all live behind Validate() here, table-tested in
// config_test.go.
package config

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/datagen"
)

// Duration is a time.Duration that reads naturally in both layers: JSON
// accepts "3s"-style strings (or raw nanosecond numbers) and flags use
// the standard flag.Duration syntax.
type Duration time.Duration

// Std returns the value as a standard time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats like time.Duration (flag.Value contract).
func (d Duration) String() string { return time.Duration(d).String() }

// Set parses a flag value like "1.5s" (flag.Value contract).
func (d *Duration) Set(s string) error {
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the duration as its "3s"-style string.
func (d Duration) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// UnmarshalJSON accepts a duration string or a nanosecond number.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		return d.Set(s)
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("duration must be a string like \"3s\" or a nanosecond count: %s", b)
	}
	*d = Duration(n)
	return nil
}

// Data says where a command's rating matrix comes from: a file (.mtx or
// .bcsr, sniffed) or a named synthetic benchmark at a scale.
type Data struct {
	// Path is a rating-matrix file (MatrixMarket .mtx or binary .bcsr).
	Path string `json:"path,omitempty"`
	// Synthetic names a built-in benchmark: chembl | ml-20m | small | tiny.
	Synthetic string `json:"synthetic,omitempty"`
	// Scale multiplies the synthetic benchmark's rows, cols and nnz.
	Scale float64 `json:"scale,omitempty"`
	// TestFrac is the held-out fraction for RMSE evaluation.
	TestFrac float64 `json:"test,omitempty"`
}

// Validate checks the data source without touching the filesystem.
func (d Data) Validate() error {
	if d.Scale <= 0 {
		return fmt.Errorf("config: data scale must be positive, got %g", d.Scale)
	}
	if d.TestFrac < 0 || d.TestFrac >= 1 {
		return fmt.Errorf("config: data test fraction must be in [0, 1), got %g", d.TestFrac)
	}
	if d.Synthetic != "" {
		if _, err := SpecByName(d.Synthetic, 0); err != nil {
			return err
		}
	}
	return nil
}

// Spec resolves the configured synthetic benchmark (scaled) for seed.
// It is the one copy of the name→spec switch the commands used to each
// carry themselves.
func (d Data) Spec(seed uint64) (datagen.Spec, error) {
	if d.Scale <= 0 {
		return datagen.Spec{}, fmt.Errorf("config: data scale must be positive, got %g", d.Scale)
	}
	s, err := SpecByName(d.Synthetic, seed)
	if err != nil {
		return datagen.Spec{}, err
	}
	// Any scale other than 1 is applied — upscales included.
	if d.Scale != 1 {
		s = datagen.Scaled(s, d.Scale)
	}
	return s, nil
}

// SpecByName resolves a synthetic benchmark name to its generator spec.
func SpecByName(name string, seed uint64) (datagen.Spec, error) {
	switch strings.ToLower(name) {
	case "chembl":
		return datagen.ChEMBL(seed), nil
	case "ml-20m", "ml20m", "movielens":
		return datagen.ML20M(seed), nil
	case "small":
		return datagen.Small(seed), nil
	case "tiny":
		return datagen.Tiny(seed), nil
	default:
		return datagen.Spec{}, fmt.Errorf("config: unknown synthetic benchmark %q (want chembl | ml-20m | small | tiny)", name)
	}
}

// Sampler is the Gibbs-chain configuration shared by the training
// commands: one declaration of the -k/-alpha/-iters/-burnin/-seed knobs
// whose defaults and help strings used to drift between commands.
type Sampler struct {
	// K is the number of latent features.
	K int `json:"k,omitempty"`
	// Alpha is the observation precision of R_ij ~ N(u·v, 1/Alpha).
	Alpha float64 `json:"alpha,omitempty"`
	// Iters is the total number of Gibbs iterations.
	Iters int `json:"iters,omitempty"`
	// Burnin iterations are excluded from the posterior-mean predictor.
	Burnin int `json:"burnin,omitempty"`
	// Seed drives all keyed random streams.
	Seed uint64 `json:"seed"`
}

// Validate checks the chain shape, including the Burnin < Iters rule
// (without it no post-burn-in samples would remain and every posterior
// mean would be NaN).
func (s Sampler) Validate() error {
	switch {
	case s.K < 1:
		return fmt.Errorf("config: sampler k must be >= 1, got %d", s.K)
	case s.Alpha <= 0:
		return fmt.Errorf("config: sampler alpha must be positive, got %g", s.Alpha)
	case s.Iters < 1:
		return fmt.Errorf("config: sampler iters must be >= 1, got %d", s.Iters)
	case s.Burnin < 0:
		return fmt.Errorf("config: sampler burnin must be >= 0, got %d", s.Burnin)
	case s.Burnin >= s.Iters:
		return fmt.Errorf("config: sampler burnin (%d) must be less than iters (%d): no post-burn-in samples would remain", s.Burnin, s.Iters)
	}
	return nil
}

// Clamp clips served or evaluated predictions to a rating range. The
// old "(0,0) = off" sentinel is gone: clipping is on iff Enable is set
// (so a legitimate [0, N] range is configurable), and an inverted range
// is a validation error instead of a silent no-op.
type Clamp struct {
	// Enable turns clipping on.
	Enable bool `json:"enable,omitempty"`
	// Min and Max bound the reported predictions when Enable is set.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
}

// Validate rejects inverted and empty ranges — whether or not Enable is
// set, since an inverted range is always a mistake, never a request to
// disable clipping.
func (c Clamp) Validate() error {
	if c.Min > c.Max {
		return fmt.Errorf("config: clamp min (%g) must not exceed clamp max (%g)", c.Min, c.Max)
	}
	if c.Enable && c.Min == c.Max {
		return fmt.Errorf("config: enabled clamp range [%g, %g] is empty — every prediction would collapse to one value", c.Min, c.Max)
	}
	return nil
}

// Active reports whether clipping applies: explicitly enabled, or (for
// compatibility with pre-registry flag invocations) a non-degenerate
// Max > Min range.
func (c Clamp) Active() bool { return c.Enable || c.Max > c.Min }

// Lineage pins a served checkpoint's provenance: a (re)load must
// present a checkpoint whose training Seed (and latent dimension K,
// when set) match, so a chain retrained under different parameters
// cannot silently replace the model a route's exclusions, test split or
// clients depend on.
type Lineage struct {
	// Seed is the required training seed.
	Seed uint64 `json:"seed"`
	// K, when > 0, is the required latent dimension.
	K int `json:"k,omitempty"`
}

// Checkpoint configures the coordinated-checkpoint plane of bpmf-dist.
type Checkpoint struct {
	// Dir is the checkpoint directory (shared storage across ranks).
	Dir string `json:"dir,omitempty"`
	// Every checkpoints each N iterations (0 disables).
	Every int `json:"every,omitempty"`
	// ResumeIter pins a restart to the sealed manifest of this iteration
	// (0 = latest).
	ResumeIter int `json:"resume_iter,omitempty"`
}

// Validate checks the checkpoint plane's internal consistency.
func (c Checkpoint) Validate() error {
	switch {
	case c.Every < 0:
		return fmt.Errorf("config: checkpoint every must be >= 0, got %d", c.Every)
	case c.ResumeIter < 0:
		return fmt.Errorf("config: checkpoint resume-iter must be >= 0, got %d", c.ResumeIter)
	case c.Every > 0 && c.Dir == "":
		return fmt.Errorf("config: checkpoint every (%d) needs a checkpoint dir", c.Every)
	case c.ResumeIter > 0 && c.Dir == "":
		return fmt.Errorf("config: checkpoint resume-iter (%d) needs a checkpoint dir", c.ResumeIter)
	}
	return nil
}

// Fault configures the deterministic fault/membership test hooks used
// by the crash-recovery and elastic smoke tests. The disabled self-kill
// value is {-1, -1}.
type Fault struct {
	// DieRank is the rank that kills itself (-1 = never).
	DieRank int `json:"die_rank,omitempty"`
	// DieIter is the iteration after which DieRank exits (-1 = never).
	DieIter int `json:"die_iter,omitempty"`
	// GrowAtIter defers admitting pending joiners until this iteration
	// (0 = the first boundary after a join request arrives).
	GrowAtIter int `json:"grow_at_iter,omitempty"`
	// JoinDelay sleeps this long before a -join worker files its
	// request, so a smoke test can aim the join at a mid-run iteration.
	JoinDelay Duration `json:"join_delay,omitempty"`
	// IterDelay pauses every rank after each iteration — pacing for
	// smoke tests whose membership events must land mid-run. It cannot
	// change the sampled chain.
	IterDelay Duration `json:"iter_delay,omitempty"`
}

// Validate requires the two halves of the injection together and
// non-negative test-hook knobs.
func (f Fault) Validate() error {
	if (f.DieRank >= 0) != (f.DieIter >= 0) {
		return fmt.Errorf("config: fault injection needs both die-rank and die-iter (got die-rank %d, die-iter %d)", f.DieRank, f.DieIter)
	}
	if f.GrowAtIter < 0 {
		return fmt.Errorf("config: grow-at-iter must be >= 0, got %d", f.GrowAtIter)
	}
	if f.JoinDelay < 0 {
		return fmt.Errorf("config: join-delay must be >= 0, got %s", f.JoinDelay)
	}
	if f.IterDelay < 0 {
		return fmt.Errorf("config: iter-delay must be >= 0, got %s", f.IterDelay)
	}
	return nil
}

// Enabled reports whether a self-kill is configured.
func (f Fault) Enabled() bool { return f.DieRank >= 0 && f.DieIter >= 0 }
