package config

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// Command is a command-level config struct that Parse can resolve: it
// registers its flag surface onto a FlagSet (using its current field
// values as the flag defaults, which is what makes the three-layer
// precedence work) and validates the merged result.
type Command interface {
	RegisterFlags(fs *flag.FlagSet)
	Validate() error
}

// FileFlag is the flag every command accepts for a JSON config file.
const FileFlag = "config"

// Parse resolves cfg through the three layers — the defaults cfg
// already holds, the JSON file named by -config (if any), then
// explicitly set flags — and validates the result.
//
// Precedence is defaults < file < flags. Mechanically: a throwaway
// FlagSet parse discovers -config (full flag syntax, so "-seed 5
// -config f.json" works), the file is decoded over cfg, and the real
// parse on fs then re-applies every explicitly set flag on top of the
// file-merged values. Flags left unset keep the file's values; fields
// absent from the file keep the defaults.
func Parse(fs *flag.FlagSet, args []string, cfg Command) error {
	scratch := flag.NewFlagSet(fs.Name(), flag.ContinueOnError)
	scratch.SetOutput(io.Discard)
	scratch.Usage = func() {}
	cfg.RegisterFlags(scratch)
	path := scratch.String(FileFlag, "", "")
	if err := scratch.Parse(args); err != nil && !errors.Is(err, flag.ErrHelp) {
		// Malformed flags: fall through so the real parse reports them
		// with fs's own error handling and visible usage text.
		*path = ""
	}
	if *path != "" {
		if err := LoadFile(*path, cfg); err != nil {
			return err
		}
	}
	cfg.RegisterFlags(fs)
	fs.String(FileFlag, *path, "JSON config file; explicitly set flags override its values")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		if *path != "" {
			return fmt.Errorf("(with -%s %s) %w", FileFlag, *path, err)
		}
		return err
	}
	return nil
}

// LoadFile decodes the JSON object at path over cfg. Fields absent from
// the file keep the values cfg already holds (its defaults); unknown
// fields are errors, so a typo fails loudly instead of silently running
// on defaults.
func LoadFile(path string, cfg any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("config: parsing %s: %w", path, err)
	}
	// A second JSON value in the file is a structural mistake (e.g. two
	// concatenated objects) that a plain Decode would silently ignore.
	if dec.More() {
		return fmt.Errorf("config: parsing %s: trailing data after the config object", path)
	}
	return nil
}
