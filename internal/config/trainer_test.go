package config

import "testing"

func TestTrainerValidate(t *testing.T) {
	base := DefaultTrainer()
	base.Data.Synthetic = "small"
	base.Ckpt = "base.ckpt"
	base.Feed.Log = "ratings.feedlog"
	base.Publish.Ckpt = "model.ckpt"
	cases := []struct {
		name        string
		mut         func(*Trainer)
		errContains string
	}{
		{"valid loop", func(c *Trainer) {}, ""},
		{"valid ingest needs only the feed", func(c *Trainer) {
			*c = Trainer{Ingest: true, Feed: Feed{Log: "ratings.feedlog", Items: 100}}
		}, ""},
		{"no log", func(c *Trainer) { c.Feed.Log = "" }, "rating-log path"},
		{"negative items", func(c *Trainer) { c.Feed.Items = -1 }, "items must be >= 0"},
		{"negative shard nnz", func(c *Trainer) { c.Feed.ShardNNZ = -1 }, "shard-nnz"},
		{"negative min records", func(c *Trainer) { c.Feed.MinRecords = -1 }, "min-records"},
		{"no data", func(c *Trainer) { c.Data.Synthetic = "" }, "data path"},
		{"no base ckpt", func(c *Trainer) { c.Ckpt = "" }, "base checkpoint"},
		{"no publish path", func(c *Trainer) { c.Publish.Ckpt = "" }, "publish needs a checkpoint path"},
		{"zero add iters", func(c *Trainer) { c.Publish.AddIters = 0 }, "add-iters"},
		{"negative interval", func(c *Trainer) { c.Publish.Interval = -1 }, "interval"},
		{"negative cycles", func(c *Trainer) { c.Publish.Cycles = -1 }, "cycles"},
		{"bad sampler still checked", func(c *Trainer) { c.Sampler.Burnin = c.Sampler.Iters }, "burnin"},
		{"ingest skips loop checks but not feed", func(c *Trainer) {
			*c = Trainer{Ingest: true}
		}, "rating-log path"},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		checkValidate(t, tc.name, c.Validate(), tc.errContains)
	}
}
