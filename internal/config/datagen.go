package config

import (
	"flag"
	"fmt"

	"repro/internal/datagen"
)

// Datagen configures cmd/datagen: one synthetic benchmark written as
// MatrixMarket text or .bcsr binary shards.
type Datagen struct {
	// Spec names the benchmark: chembl | ml-20m | small | tiny.
	Spec string `json:"spec,omitempty"`
	// Scale multiplies rows, cols and nnz (> 1 scales up).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives the generator.
	Seed uint64 `json:"seed"`
	// Out is the output file: *.bcsr writes binary shards, anything else
	// MatrixMarket ("" = stdout).
	Out string `json:"out,omitempty"`
	// ShardNNZ targets entries per .bcsr shard (0 = library default).
	ShardNNZ int `json:"shard_nnz,omitempty"`
	// Stats prints degree statistics instead of the matrix.
	Stats bool `json:"stats,omitempty"`
}

// DefaultDatagen returns cmd/datagen's defaults.
func DefaultDatagen() Datagen {
	return Datagen{Spec: "small", Scale: 1, Seed: 42}
}

// RegisterFlags declares cmd/datagen's flag surface over the struct's
// current values.
func (c *Datagen) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Spec, "spec", c.Spec, "chembl | ml-20m | small | tiny")
	fs.Float64Var(&c.Scale, "scale", c.Scale, "scale factor for the synthetic benchmark (> 1 scales up)")
	fs.Uint64Var(&c.Seed, "seed", c.Seed, "random seed")
	fs.StringVar(&c.Out, "out", c.Out, "output file: *.bcsr writes binary shards, anything else MatrixMarket (default stdout)")
	fs.IntVar(&c.ShardNNZ, "shard-nnz", c.ShardNNZ, "target entries per .bcsr shard (0 = library default; small values make many shards for multi-rank loading)")
	fs.BoolVar(&c.Stats, "stats", c.Stats, "print degree statistics instead of the matrix")
}

// Validate checks the merged configuration.
func (c Datagen) Validate() error {
	if _, err := SpecByName(c.Spec, 0); err != nil {
		return err
	}
	if c.Scale <= 0 {
		return fmt.Errorf("config: data scale must be positive, got %g", c.Scale)
	}
	if c.ShardNNZ < 0 {
		return fmt.Errorf("config: shard-nnz must be >= 0, got %d", c.ShardNNZ)
	}
	return nil
}

// ResolveSpec resolves the scaled generator spec (the shared switch the
// commands used to duplicate).
func (c Datagen) ResolveSpec() (datagen.Spec, error) {
	if err := c.Validate(); err != nil {
		return datagen.Spec{}, err
	}
	return Data{Synthetic: c.Spec, Scale: c.Scale}.Spec(c.Seed)
}
