package config

import (
	"flag"
	"fmt"
)

// Feed configures the continuous-ingest side of cmd/bpmf-trainer: the
// append-only rating log new observations land in, and how the log is
// compacted into delta .bcsr shards.
type Feed struct {
	// Log is the append-only rating log (required).
	Log string `json:"log"`
	// DeltaDir is the directory compaction writes delta .bcsr shards to
	// (required for the training loop; defaults to the log's directory).
	DeltaDir string `json:"delta_dir,omitempty"`
	// Items is the fixed item-catalog width. Required to create a new
	// log; an existing log's recorded width must match. The catalog
	// cannot grow online (V's shape is pinned by the warm-started
	// chain) — new items need a full retrain.
	Items int `json:"items,omitempty"`
	// ShardNNZ caps ratings per delta-shard row panel (0 = the
	// converter's default).
	ShardNNZ int `json:"shard_nnz,omitempty"`
	// MinRecords skips a training cycle when the log holds fewer than
	// this many appended ratings (0 = train on any non-empty log).
	MinRecords int `json:"min_records,omitempty"`
}

// Validate checks the feed plane.
func (f Feed) Validate() error {
	switch {
	case f.Log == "":
		return fmt.Errorf("config: feed needs a rating-log path (-feed-log)")
	case f.Items < 0:
		return fmt.Errorf("config: feed items must be >= 0, got %d", f.Items)
	case f.ShardNNZ < 0:
		return fmt.Errorf("config: feed shard-nnz must be >= 0, got %d", f.ShardNNZ)
	case f.MinRecords < 0:
		return fmt.Errorf("config: feed min-records must be >= 0, got %d", f.MinRecords)
	}
	return nil
}

// Publish configures the warm-start/publish side of cmd/bpmf-trainer:
// where finished cycles rotate their checkpoint, how much each cycle
// extends the chain, and the pacing of the loop.
type Publish struct {
	// Ckpt is the checkpoint path each cycle atomically rotates
	// (required) — the file a bpmf-serve watcher hot-reloads.
	Ckpt string `json:"ckpt"`
	// AddIters is how many Gibbs iterations each cycle appends to the
	// warm-started chain.
	AddIters int `json:"add_iters,omitempty"`
	// Interval paces the loop: each cycle starts this long after the
	// previous one began (0 = back-to-back).
	Interval Duration `json:"interval,omitempty"`
	// Cycles bounds the loop (0 = run forever).
	Cycles int `json:"cycles,omitempty"`
	// PinSeed, when nonzero, overrides the lineage seed stamped on every
	// publish (default: the sampler seed). The publish-side lineage
	// guard refuses to rotate a checkpoint whose chain does not match —
	// a deliberate mismatch here proves the guard without a second
	// trainer build.
	PinSeed uint64 `json:"pin_seed,omitempty"`
}

// Validate checks the publish plane.
func (p Publish) Validate() error {
	switch {
	case p.Ckpt == "":
		return fmt.Errorf("config: publish needs a checkpoint path (-publish)")
	case p.AddIters < 1:
		return fmt.Errorf("config: publish add-iters must be >= 1, got %d", p.AddIters)
	case p.Interval < 0:
		return fmt.Errorf("config: publish interval must be >= 0, got %s", p.Interval)
	case p.Cycles < 0:
		return fmt.Errorf("config: publish cycles must be >= 0 (0 = forever), got %d", p.Cycles)
	}
	return nil
}

// Trainer configures cmd/bpmf-trainer: the continuous-training loop
// (rating log → delta shards → warm-start → atomic publish) and its
// -ingest side entry that appends ratings to the log.
type Trainer struct {
	Data    Data    `json:"data"`
	Sampler Sampler `json:"sampler"`
	// Ckpt is the base checkpoint the first cycle warm-starts from
	// (required for the loop) — typically `bpmf -ckpt-out`'s output.
	Ckpt    string  `json:"ckpt,omitempty"`
	Feed    Feed    `json:"feed"`
	Publish Publish `json:"publish"`
	// Ingest switches the command to the producer side: read
	// "user item value" lines from stdin, append them durably to the
	// feed log, and exit. Flag-only.
	Ingest bool `json:"-"`
}

// DefaultTrainer returns cmd/bpmf-trainer's defaults: one cycle of 5
// extra iterations over the paper's default chain shape.
func DefaultTrainer() Trainer {
	return Trainer{
		Data:    Data{Scale: 1, TestFrac: 0.2},
		Sampler: Sampler{K: 32, Alpha: 2, Iters: 20, Burnin: 10, Seed: 42},
		Publish: Publish{AddIters: 5, Cycles: 1},
	}
}

// RegisterFlags declares cmd/bpmf-trainer's flag surface over the
// struct's current values.
func (c *Trainer) RegisterFlags(fs *flag.FlagSet) {
	registerData(fs, &c.Data)
	registerSampler(fs, &c.Sampler)
	fs.StringVar(&c.Ckpt, "ckpt", c.Ckpt, "base checkpoint the first cycle warm-starts from")
	fs.StringVar(&c.Feed.Log, "feed-log", c.Feed.Log, "append-only rating log (created if absent)")
	fs.StringVar(&c.Feed.DeltaDir, "delta-dir", c.Feed.DeltaDir, "directory for compacted delta .bcsr shards (default: the log's directory)")
	fs.IntVar(&c.Feed.Items, "items", c.Feed.Items, "item-catalog width for a newly created log (0 = derive from the base data)")
	fs.IntVar(&c.Feed.ShardNNZ, "shard-nnz", c.Feed.ShardNNZ, "ratings per delta-shard row panel (0 = converter default)")
	fs.IntVar(&c.Feed.MinRecords, "min-records", c.Feed.MinRecords, "skip a cycle when the log holds fewer ratings than this")
	fs.StringVar(&c.Publish.Ckpt, "publish", c.Publish.Ckpt, "checkpoint path each cycle atomically rotates (watched by bpmf-serve)")
	fs.IntVar(&c.Publish.AddIters, "add-iters", c.Publish.AddIters, "Gibbs iterations each cycle appends to the chain")
	fs.Var(&c.Publish.Interval, "interval", "cycle pacing (0 = back-to-back)")
	fs.IntVar(&c.Publish.Cycles, "cycles", c.Publish.Cycles, "number of training cycles (0 = forever)")
	fs.Uint64Var(&c.Publish.PinSeed, "pin-seed", c.Publish.PinSeed, "lineage seed stamped on publishes (0 = the sampler seed)")
	fs.BoolVar(&c.Ingest, "ingest", c.Ingest, "append 'user item value' lines from stdin to the feed log and exit")
}

// Validate checks the merged configuration. Ingest mode needs only the
// feed plane; the training loop needs everything.
func (c Trainer) Validate() error {
	if err := c.Feed.Validate(); err != nil {
		return err
	}
	if c.Ingest {
		return nil
	}
	if c.Data.Path == "" && c.Data.Synthetic == "" {
		return fmt.Errorf("config: need a data path (-data) or a synthetic benchmark (-synthetic)")
	}
	if err := c.Data.Validate(); err != nil {
		return err
	}
	if err := c.Sampler.Validate(); err != nil {
		return err
	}
	if c.Ckpt == "" {
		return fmt.Errorf("config: trainer needs a base checkpoint (-ckpt) to warm-start from")
	}
	return c.Publish.Validate()
}
