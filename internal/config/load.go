package config

import (
	"flag"
	"fmt"
	"time"
)

// Load configures cmd/bpmf-load: a k6-style open/closed-loop generator
// driving a bpmf-serve registry and reporting latency percentiles and
// throughput.
type Load struct {
	// URL is the base address of the server under test (required),
	// e.g. http://127.0.0.1:8080.
	URL string `json:"url,omitempty"`
	// Model is the registry route to drive ("" = discover the first
	// model from /healthz).
	Model string `json:"model,omitempty"`
	// Mode selects the scheduler: "closed" (VUs issue requests
	// back-to-back — measures capacity) or "open" (requests arrive at
	// Rate regardless of completions — measures latency under a fixed
	// offered load; arrivals finding every VU busy are dropped and
	// counted).
	Mode string `json:"mode,omitempty"`
	// VUs is the number of virtual users (max concurrency).
	VUs int `json:"vus,omitempty"`
	// Rate is the open-loop arrival rate in requests/second (open mode
	// only).
	Rate float64 `json:"rate,omitempty"`
	// Duration is the measured run length (after warmup).
	Duration Duration `json:"duration,omitempty"`
	// Warmup is cut from the front of the run before any statistics.
	Warmup Duration `json:"warmup,omitempty"`
	// N is the /recommend list length.
	N int `json:"n,omitempty"`
	// PredictFrac is the fraction of requests that hit /predict instead
	// of /recommend (0 = all recommends, 1 = all predicts).
	PredictFrac float64 `json:"predict_frac,omitempty"`
	// Users and Items bound the sampled ids (0 = discover from
	// /healthz).
	Users int `json:"users,omitempty"`
	Items int `json:"items,omitempty"`
	// Seed drives the request mix.
	Seed uint64 `json:"seed,omitempty"`
	// Timeout bounds each request.
	Timeout Duration `json:"timeout,omitempty"`
	// Bench also emits Go-bench-style lines (p50/p99/throughput) for
	// bench2json.
	Bench bool `json:"bench,omitempty"`
}

// DefaultLoad returns cmd/bpmf-load's defaults: a short closed-loop
// run with 8 VUs and a 2s measurement window.
func DefaultLoad() Load {
	return Load{
		Mode:        "closed",
		VUs:         8,
		Rate:        100,
		Duration:    Duration(2 * time.Second),
		Warmup:      Duration(200 * time.Millisecond),
		N:           10,
		PredictFrac: 0.5,
		Seed:        42,
		Timeout:     Duration(10 * time.Second),
	}
}

// RegisterFlags declares cmd/bpmf-load's flag surface over the struct's
// current values.
func (c *Load) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.URL, "url", c.URL, "base URL of the bpmf-serve instance under test (required)")
	fs.StringVar(&c.Model, "model", c.Model, "registry model to drive (empty = discover the first model from /healthz)")
	fs.StringVar(&c.Mode, "mode", c.Mode, "scheduler: closed (VUs back-to-back) or open (fixed arrival -rate)")
	fs.IntVar(&c.VUs, "vus", c.VUs, "virtual users (max concurrency)")
	fs.Float64Var(&c.Rate, "rate", c.Rate, "open-loop arrival rate in req/s (open mode)")
	fs.Var(&c.Duration, "duration", "measured run length (after warmup)")
	fs.Var(&c.Warmup, "warmup", "cut from the front of the run before statistics")
	fs.IntVar(&c.N, "n", c.N, "/recommend list length")
	fs.Float64Var(&c.PredictFrac, "predict-frac", c.PredictFrac, "fraction of requests hitting /predict instead of /recommend")
	fs.IntVar(&c.Users, "users", c.Users, "user id bound for sampled requests (0 = discover from /healthz)")
	fs.IntVar(&c.Items, "items", c.Items, "item id bound for sampled requests (0 = discover from /healthz)")
	fs.Uint64Var(&c.Seed, "seed", c.Seed, "random seed for the request mix")
	fs.Var(&c.Timeout, "timeout", "per-request timeout")
	fs.BoolVar(&c.Bench, "bench", c.Bench, "also emit Go-bench-style lines for bench2json")
}

// Validate checks the merged configuration.
func (c Load) Validate() error {
	if c.URL == "" {
		return fmt.Errorf("config: need -url of the server under test")
	}
	if c.Mode != "closed" && c.Mode != "open" {
		return fmt.Errorf("config: mode must be \"closed\" or \"open\", got %q", c.Mode)
	}
	if c.VUs < 1 {
		return fmt.Errorf("config: vus must be >= 1, got %d", c.VUs)
	}
	if c.Mode == "open" && c.Rate <= 0 {
		return fmt.Errorf("config: open mode needs a positive arrival -rate, got %g", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("config: duration must be positive, got %s", c.Duration)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("config: warmup must be >= 0, got %s", c.Warmup)
	}
	if c.N < 1 {
		return fmt.Errorf("config: n must be >= 1, got %d", c.N)
	}
	if c.PredictFrac < 0 || c.PredictFrac > 1 {
		return fmt.Errorf("config: predict-frac must be in [0, 1], got %g", c.PredictFrac)
	}
	if c.Users < 0 || c.Items < 0 {
		return fmt.Errorf("config: users and items must be >= 0 (0 = discover), got %d/%d", c.Users, c.Items)
	}
	if c.Timeout <= 0 {
		return fmt.Errorf("config: timeout must be positive, got %s", c.Timeout)
	}
	return nil
}
