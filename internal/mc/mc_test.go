package mc

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/sparse"
)

func problem(t *testing.T, spec datagen.Spec) *core.Problem {
	t.Helper()
	ds := datagen.Generate(spec)
	train, test := sparse.SplitTrainTest(ds.R, 0.2, spec.Seed)
	return core.NewProblem(train, test)
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 6
	cfg.Iters = 5
	cfg.Burnin = 2
	// Force all three kernels to participate on small data.
	cfg.RankOneMax = 4
	cfg.KernelThreshold = 20
	cfg.ParallelGrain = 7
	return cfg
}

func TestWorkStealMatchesSequentialBitwise(t *testing.T) {
	prob := problem(t, datagen.Small(9))
	cfg := testConfig()
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	for _, threads := range []int{1, 2, 4} {
		got, err := Run(WorkSteal, cfg, prob, threads)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
			t.Fatalf("threads=%d: work-steal chain differs from sequential", threads)
		}
		for i := range want.AvgRMSE {
			if math.Abs(got.AvgRMSE[i]-want.AvgRMSE[i]) > 1e-12 {
				t.Fatalf("threads=%d: RMSE trace differs at iter %d", threads, i)
			}
		}
	}
}

func TestStaticMatchesSequentialBitwise(t *testing.T) {
	prob := problem(t, datagen.Small(10))
	cfg := testConfig()
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	for _, threads := range []int{1, 3, 8} {
		got, err := Run(Static, cfg, prob, threads)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
			t.Fatalf("threads=%d: static chain differs from sequential", threads)
		}
	}
}

func TestEnginesMatchEachOther(t *testing.T) {
	prob := problem(t, datagen.Tiny(4))
	cfg := testConfig()
	cfg.Iters = 3
	a, err := Run(WorkSteal, cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Static, cfg, prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(a.U, b.U) != 0 || la.MaxAbsDiff(a.V, b.V) != 0 {
		t.Fatal("work-steal and static chains differ")
	}
}

func TestKernelCountsAccumulate(t *testing.T) {
	prob := problem(t, datagen.Small(9))
	cfg := testConfig()
	cfg.Iters = 2
	cfg.Burnin = 1
	res, err := Run(WorkSteal, cfg, prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range res.KernelCounts {
		total += c
	}
	m, n := prob.Dims()
	if total != int64(cfg.Iters)*int64(m+n) {
		t.Fatalf("kernel counts %v don't sum to item updates", res.KernelCounts)
	}
	// The Zipf skew must exercise all three kernels with these thresholds.
	for k, c := range res.KernelCounts {
		if c == 0 {
			t.Fatalf("kernel %v never used; thresholds not exercising hybrid path", core.Kernel(k))
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	prob := problem(t, datagen.Tiny(1))
	cfg := testConfig()
	cfg.K = 0
	if _, err := Run(WorkSteal, cfg, prob, 2); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestRMSEImproves(t *testing.T) {
	prob := problem(t, datagen.Small(33))
	cfg := core.DefaultConfig()
	cfg.K = 8
	cfg.Iters = 10
	cfg.Burnin = 5
	res, err := Run(WorkSteal, cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.FinalRMSE() < res.SampleRMSE[0]) {
		t.Fatalf("RMSE did not improve: %v -> %v", res.SampleRMSE[0], res.FinalRMSE())
	}
	if res.UpdatesPerSec() <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestEngineNames(t *testing.T) {
	if WorkSteal.String() != "TBB" || Static.String() != "OpenMP" {
		t.Fatal("engine names must match Figure 3's legend")
	}
}

func TestMomentGroupsRespected(t *testing.T) {
	// Engines configured with explicit moment groups must still match the
	// sequential sampler configured identically.
	prob := problem(t, datagen.Tiny(8))
	cfg := testConfig()
	m, n := prob.Dims()
	cfg.MomentGroupsU = []int{0, m / 3, m}
	cfg.MomentGroupsV = []int{0, n / 2, n}
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	got, err := Run(WorkSteal, cfg, prob, 3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got.U, want.U) != 0 {
		t.Fatal("grouped-moment chains differ")
	}
}
