package mc

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func problem(t *testing.T, spec datagen.Spec) *core.Problem {
	t.Helper()
	ds := datagen.Generate(spec)
	train, test := sparse.SplitTrainTest(ds.R, 0.2, spec.Seed)
	return core.NewProblem(train, test)
}

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 6
	cfg.Iters = 5
	cfg.Burnin = 2
	// Force all three kernels to participate on small data.
	cfg.RankOneMax = 4
	cfg.KernelThreshold = 20
	cfg.ParallelGrain = 7
	return cfg
}

func TestWorkStealMatchesSequentialBitwise(t *testing.T) {
	prob := problem(t, datagen.Small(9))
	cfg := testConfig()
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	for _, threads := range []int{1, 2, 4} {
		got, err := Run(WorkSteal, cfg, prob, threads)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
			t.Fatalf("threads=%d: work-steal chain differs from sequential", threads)
		}
		for i := range want.AvgRMSE {
			if math.Abs(got.AvgRMSE[i]-want.AvgRMSE[i]) > 1e-12 {
				t.Fatalf("threads=%d: RMSE trace differs at iter %d", threads, i)
			}
		}
	}
}

func TestStaticMatchesSequentialBitwise(t *testing.T) {
	prob := problem(t, datagen.Small(10))
	cfg := testConfig()
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	for _, threads := range []int{1, 3, 8} {
		got, err := Run(Static, cfg, prob, threads)
		if err != nil {
			t.Fatal(err)
		}
		if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
			t.Fatalf("threads=%d: static chain differs from sequential", threads)
		}
	}
}

func TestEnginesMatchEachOther(t *testing.T) {
	prob := problem(t, datagen.Tiny(4))
	cfg := testConfig()
	cfg.Iters = 3
	a, err := Run(WorkSteal, cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Static, cfg, prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(a.U, b.U) != 0 || la.MaxAbsDiff(a.V, b.V) != 0 {
		t.Fatal("work-steal and static chains differ")
	}
}

func TestKernelCountsAccumulate(t *testing.T) {
	prob := problem(t, datagen.Small(9))
	cfg := testConfig()
	cfg.Iters = 2
	cfg.Burnin = 1
	res, err := Run(WorkSteal, cfg, prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range res.KernelCounts {
		total += c
	}
	m, n := prob.Dims()
	if total != int64(cfg.Iters)*int64(m+n) {
		t.Fatalf("kernel counts %v don't sum to item updates", res.KernelCounts)
	}
	// The Zipf skew must exercise all three kernels with these thresholds.
	for k, c := range res.KernelCounts {
		if c == 0 {
			t.Fatalf("kernel %v never used; thresholds not exercising hybrid path", core.Kernel(k))
		}
	}
}

// randomSchedule draws an arbitrary permutation per side — no locality,
// no heavy bin, just some order an adversarial scheduler might pick.
func randomSchedule(seed uint64, m, n int) *order.Schedule {
	r := rng.New(seed)
	perm := func(size int) []int32 {
		p := make([]int32, size)
		for i := range p {
			p[i] = int32(i)
		}
		for i := size - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			p[i], p[j] = p[j], p[i]
		}
		return p
	}
	return &order.Schedule{U: perm(m), V: perm(n)}
}

// TestScheduledOrderIsChainInvariant is the processing-order property
// test: for random permutations (and the degenerate nil schedule), both
// engines at several thread counts reproduce the sequential sampler's
// chain bit for bit — factors AND the full RMSE trace, which now runs
// through the same fixed evaluation chunk tree everywhere.
func TestScheduledOrderIsChainInvariant(t *testing.T) {
	prob := problem(t, datagen.Small(17))
	cfg := testConfig()
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	m, n := prob.Dims()
	schedules := []*order.Schedule{
		nil, // storage order
		order.Build(prob.R, order.Options{HeavyThreshold: cfg.KernelThreshold}),
	}
	for seed := uint64(0); seed < 3; seed++ {
		schedules = append(schedules, randomSchedule(100+seed, m, n))
	}
	for si, sch := range schedules {
		for _, engine := range []Engine{WorkSteal, Static} {
			for _, threads := range []int{1, 3} {
				got, err := RunScheduled(engine, cfg, prob, threads, sch)
				if err != nil {
					t.Fatal(err)
				}
				if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
					t.Fatalf("schedule %d %v threads=%d: chain differs from sequential", si, engine, threads)
				}
				for i := range want.AvgRMSE {
					if got.AvgRMSE[i] != want.AvgRMSE[i] || got.SampleRMSE[i] != want.SampleRMSE[i] {
						t.Fatalf("schedule %d %v threads=%d: RMSE trace not bit-identical at iter %d",
							si, engine, threads, i)
					}
				}
			}
		}
	}
}

// TestRMSETraceBitIdenticalToSequential tightens the old 1e-12 tolerance:
// with the shared evaluation chunk tree the parallel engines' RMSE traces
// equal the sequential sampler's exactly.
func TestRMSETraceBitIdenticalToSequential(t *testing.T) {
	prob := problem(t, datagen.Small(21))
	cfg := testConfig()
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	got, err := Run(WorkSteal, cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.AvgRMSE {
		if got.AvgRMSE[i] != want.AvgRMSE[i] || got.SampleRMSE[i] != want.SampleRMSE[i] {
			t.Fatalf("RMSE trace differs at iter %d: %v vs %v", i, got.AvgRMSE[i], want.AvgRMSE[i])
		}
	}
}

// TestRunScheduledRejectsBadOrder pins the schedule contract: an order
// that skips or repeats items must be an error, never a silently
// corrupted chain.
func TestRunScheduledRejectsBadOrder(t *testing.T) {
	prob := problem(t, datagen.Tiny(2))
	cfg := testConfig()
	m, n := prob.Dims()
	good := randomSchedule(7, m, n)
	bad := &order.Schedule{U: append([]int32(nil), good.U...), V: good.V}
	bad.U[0] = bad.U[1] // duplicate -> not a permutation
	if _, err := RunScheduled(WorkSteal, cfg, prob, 2, bad); err == nil {
		t.Fatal("duplicate-item schedule must be rejected")
	}
	short := &order.Schedule{U: good.U[:m-1]}
	if _, err := RunScheduled(Static, cfg, prob, 2, short); err == nil {
		t.Fatal("short schedule must be rejected")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	prob := problem(t, datagen.Tiny(1))
	cfg := testConfig()
	cfg.K = 0
	if _, err := Run(WorkSteal, cfg, prob, 2); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestRMSEImproves(t *testing.T) {
	prob := problem(t, datagen.Small(33))
	cfg := core.DefaultConfig()
	cfg.K = 8
	cfg.Iters = 10
	cfg.Burnin = 5
	res, err := Run(WorkSteal, cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.FinalRMSE() < res.SampleRMSE[0]) {
		t.Fatalf("RMSE did not improve: %v -> %v", res.SampleRMSE[0], res.FinalRMSE())
	}
	if res.UpdatesPerSec() <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestEngineNames(t *testing.T) {
	if WorkSteal.String() != "TBB" || Static.String() != "OpenMP" {
		t.Fatal("engine names must match Figure 3's legend")
	}
}

func TestMomentGroupsRespected(t *testing.T) {
	// Engines configured with explicit moment groups must still match the
	// sequential sampler configured identically.
	prob := problem(t, datagen.Tiny(8))
	cfg := testConfig()
	m, n := prob.Dims()
	cfg.MomentGroupsU = []int{0, m / 3, m}
	cfg.MomentGroupsV = []int{0, n / 2, n}
	seq, err := core.NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Run()
	got, err := Run(WorkSteal, cfg, prob, 3)
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(got.U, want.U) != 0 {
		t.Fatal("grouped-moment chains differ")
	}
}
