// Package mc implements the paper's Section III: multi-core BPMF. Two
// engines run the same Gibbs iteration over all items:
//
//   - WorkSteal — the "TBB" version: items are scheduled on a work-stealing
//     pool with a small grain, heavy items (>= Config.KernelThreshold
//     ratings) additionally split into nested subtasks via the parallel
//     Cholesky kernel. Work stealing rebalances the skewed per-item costs.
//   - Static — the "OpenMP" version: items are split into one contiguous
//     equal-count chunk per thread (OpenMP schedule(static)); no nested
//     parallelism, no rebalancing.
//
// Both engines walk the items of each phase in a locality schedule
// (package order): consecutive positions hold items whose rating sets
// overlap, so the gathered partner rows of one update are still
// cache-resident for the next. The work-stealing engine additionally
// leads with the heavy items so the pool never ends a phase on a
// straggler; the static engine keeps the pure RCM order, since its
// contiguous per-thread chunks would pin a heavy-first bin to thread 0.
// Because within-phase updates are independent and every draw comes from
// a stream keyed by the item's original id, the processing order changes
// no sampled bit.
//
// Both engines draw every sample from the same keyed streams, perform
// per-item and moment arithmetic in the same canonical order as the
// sequential core.Sampler, and score the test set through the same fixed
// chunk tree (core.EvalChunk, combined ascending), so their chains and
// RMSE traces are bit-identical to it (and to each other) for any thread
// count and any processing order.
package mc

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/order"
	"repro/internal/sched"
)

// Engine identifies a multi-core scheduling strategy.
type Engine int

// The two multi-core engines of Figure 3 (GraphLab lives in package
// graphlab).
const (
	WorkSteal Engine = iota // TBB-style work stealing with nested parallelism
	Static                  // OpenMP-style static contiguous chunks
)

// String names the engine as in Figure 3's legend.
func (e Engine) String() string {
	switch e {
	case WorkSteal:
		return "TBB"
	case Static:
		return "OpenMP"
	default:
		return "unknown"
	}
}

// Run executes BPMF on prob with the given engine and thread count and
// returns the result, walking each phase in the engine's default locality
// schedule (heavy-first binning only for the work-stealing engine). The
// sampled chain is bit-identical to core.Sampler's for the same Config.
func Run(engine Engine, cfg core.Config, prob *core.Problem, threads int) (*core.Result, error) {
	var opt order.Options
	if engine == WorkSteal {
		opt.HeavyThreshold = cfg.KernelThreshold
	}
	return RunScheduled(engine, cfg, prob, threads, order.Build(prob.R, opt))
}

// RunScheduled is Run with an explicit processing schedule (nil sch or nil
// sides mean storage order). Any permutation yields the bit-identical
// chain; the schedule only decides cache behavior, which is what lets the
// differential tests drive the engines over random permutations. A
// non-permutation order is rejected: it would silently skip some items
// and update others twice.
func RunScheduled(engine Engine, cfg core.Config, prob *core.Problem, threads int, sch *order.Schedule) (*core.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threads < 1 {
		threads = 1
	}
	if sch == nil {
		sch = &order.Schedule{}
	}
	m, n := prob.Dims()
	if sch.U != nil && !order.IsPermutation(sch.U, m) {
		return nil, fmt.Errorf("mc: schedule U order is not a permutation of [0,%d)", m)
	}
	if sch.V != nil && !order.IsPermutation(sch.V, n) {
		return nil, fmt.Errorf("mc: schedule V order is not a permutation of [0,%d)", n)
	}
	// All workspaces share one chunk-accumulator arena, and workspaces are
	// leased per item from a worker-local arena: a worker that helps
	// execute other items while blocked inside a nested Sync must not
	// reuse a workspace that is mid-update, so checkout stays per item —
	// the sharding only keeps the lease on the leasing worker's
	// cache-warm shard.
	acc := core.NewAccArena(cfg.K)
	r := &runner{
		cfg:   cfg,
		prob:  prob,
		sch:   sch,
		prior: core.DefaultNWPrior(cfg.K),
		u:     core.InitFactors(cfg.Seed, core.SideU, m, cfg.K),
		v:     core.InitFactors(cfg.Seed, core.SideV, n, cfg.K),
		hu:    core.NewHyper(cfg.K),
		hv:    core.NewHyper(cfg.K),
		hws:   core.NewHyperWorkspace(cfg.K),
		mws:   core.NewMomentsWorkspace(cfg.K),
		pred:  core.NewPredictor(prob.Test, cfg.ClampMin, cfg.ClampMax),
		wsPool: sched.NewArena(func() *core.Workspace {
			return core.NewWorkspaceShared(cfg.K, acc)
		}),
	}
	r.pred.Alpha = cfg.Alpha
	res := &core.Result{
		SampleRMSE: make([]float64, 0, cfg.Iters),
		AvgRMSE:    make([]float64, 0, cfg.Iters),
	}
	start := time.Now()
	switch engine {
	case WorkSteal:
		pool := sched.NewPool(threads)
		defer pool.Close()
		for it := 0; it < cfg.Iters; it++ {
			r.stepWorkSteal(pool, it, res)
		}
	case Static:
		for it := 0; it < cfg.Iters; it++ {
			r.stepStatic(threads, it, res)
		}
	default:
		panic("mc: unknown engine")
	}
	res.Elapsed = time.Since(start)
	res.Iters = cfg.Iters
	res.ItemUpdates = int64(cfg.Iters) * int64(m+n)
	res.U, res.V = r.u, r.v
	res.Intervals = r.pred.Intervals()
	for k := range res.KernelCounts {
		res.KernelCounts[k] = r.kernelCounts[k].Load()
	}
	return res, nil
}

type runner struct {
	cfg    core.Config
	prob   *core.Problem
	sch    *order.Schedule
	prior  core.NWPrior
	u, v   *la.Matrix
	hu, hv *core.Hyper
	hws    *core.HyperWorkspace
	mws    *core.MomentsWorkspace
	pred   *core.Predictor
	wsPool *sched.Arena[*core.Workspace]

	kernelCounts [3]atomic.Int64
}

// itemGrain is the work-stealing grain for the item loop: small enough to
// rebalance skew, large enough to amortize task overhead on cheap items.
const itemGrain = 8

// updateRange samples the items at schedule positions [lo, hi) of one
// side. other is the partner factor matrix; rt indexes the side's ratings
// (rows = items of this side). pool/pw enable the nested parallel kernel
// (nil for the static engine, which has no nested parallelism — the sample
// stays bit-identical because the kernel's task DAG is
// schedule-independent).
func (r *runner) updateRange(side core.Side, iter, lo, hi int, pool *sched.Pool, pw *sched.Worker) {
	cfg := &r.cfg
	var rt = r.prob.R
	var self, other *la.Matrix
	var hyper *core.Hyper
	var ord []int32
	if side == core.SideV {
		rt = r.prob.Rt
		self, other, hyper = r.v, r.u, r.hv
		ord = r.sch.V
	} else {
		self, other, hyper = r.u, r.v, r.hu
		ord = r.sch.U
	}
	for pos := lo; pos < hi; pos++ {
		item := pos
		if ord != nil {
			item = int(ord[pos])
		}
		cols, vals := rt.Row(item)
		kern := cfg.SelectKernel(len(cols))
		r.kernelCounts[kern].Add(1)
		ws := r.wsPool.Get(pw)
		core.UpdateItem(ws, kern, cfg, cols, vals, other, hyper,
			ws.ItemStream(cfg.Seed, iter, side, item), pool, pw, self.Row(item))
		r.wsPool.Put(pw, ws)
	}
}

// sampleHypers draws both sides' hyperparameters for this iteration using
// the provided parallel-for over moment groups.
func (r *runner) sampleHypers(iter int, parallelFor func(n int, run func(g int))) {
	cfg := &r.cfg
	groupsV := core.GroupBoundaries(cfg.MomentGroupsV, r.v.Rows)
	mv := core.MomentsGroupedWS(r.v, groupsV, cfg.K, parallelFor, r.mws)
	core.SampleHyperWS(r.prior, mv, core.HyperStream(cfg.Seed, iter, core.SideV), r.hv, r.hws)
}

func (r *runner) sampleHyperU(iter int, parallelFor func(n int, run func(g int))) {
	cfg := &r.cfg
	groupsU := core.GroupBoundaries(cfg.MomentGroupsU, r.u.Rows)
	mu := core.MomentsGroupedWS(r.u, groupsU, cfg.K, parallelFor, r.mws)
	core.SampleHyperWS(r.prior, mu, core.HyperStream(cfg.Seed, iter, core.SideU), r.hu, r.hws)
}

// score runs the chunk-parallel evaluation through the given runAll (the
// same fixed chunk tree the sequential sampler executes inline).
func (r *runner) score(iter int, res *core.Result, runAll func(n int, run func(c int))) {
	sr, ar := r.pred.UpdatePar(r.u, r.v, iter >= r.cfg.Burnin, runAll)
	res.SampleRMSE = append(res.SampleRMSE, sr)
	res.AvgRMSE = append(res.AvgRMSE, ar)
}

// stepWorkSteal runs one Gibbs iteration on the work-stealing pool.
func (r *runner) stepWorkSteal(pool *sched.Pool, iter int, res *core.Result) {
	pfor := func(n int, run func(g int)) {
		pool.ParallelFor(0, n, 1, func(_ *sched.Worker, lo, hi int) {
			for g := lo; g < hi; g++ {
				run(g)
			}
		})
	}
	// Movies first (Algorithm 1).
	r.sampleHypers(iter, pfor)
	pool.ParallelFor(0, r.prob.Rt.M, itemGrain, func(w *sched.Worker, lo, hi int) {
		r.updateRange(core.SideV, iter, lo, hi, pool, w)
	})
	r.sampleHyperU(iter, pfor)
	pool.ParallelFor(0, r.prob.R.M, itemGrain, func(w *sched.Worker, lo, hi int) {
		r.updateRange(core.SideU, iter, lo, hi, pool, w)
	})
	r.score(iter, res, pfor)
}

// stepStatic runs one Gibbs iteration with OpenMP-style static chunks and
// no nested parallelism.
func (r *runner) stepStatic(threads, iter int, res *core.Result) {
	sfor := func(n int, run func(g int)) {
		sched.StaticFor(threads, 0, n, func(_, lo, hi int) {
			for g := lo; g < hi; g++ {
				run(g)
			}
		})
	}
	r.sampleHypers(iter, sfor)
	sched.StaticFor(threads, 0, r.prob.Rt.M, func(_, lo, hi int) {
		r.updateRange(core.SideV, iter, lo, hi, nil, nil)
	})
	r.sampleHyperU(iter, sfor)
	sched.StaticFor(threads, 0, r.prob.R.M, func(_, lo, hi int) {
		r.updateRange(core.SideU, iter, lo, hi, nil, nil)
	})
	r.score(iter, res, sfor)
}
