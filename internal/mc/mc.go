// Package mc implements the paper's Section III: multi-core BPMF. Two
// engines run the same Gibbs iteration over all items:
//
//   - WorkSteal — the "TBB" version: items are scheduled on a work-stealing
//     pool with a small grain, heavy items (>= Config.KernelThreshold
//     ratings) additionally split into nested subtasks via the parallel
//     Cholesky kernel. Work stealing rebalances the skewed per-item costs.
//   - Static — the "OpenMP" version: items are split into one contiguous
//     equal-count chunk per thread (OpenMP schedule(static)); no nested
//     parallelism, no rebalancing.
//
// Both engines draw every sample from the same keyed streams and perform
// per-item and moment arithmetic in the same canonical order as the
// sequential core.Sampler, so their chains are bit-identical to it (and to
// each other) for any thread count.
package mc

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/sched"
)

// Engine identifies a multi-core scheduling strategy.
type Engine int

// The two multi-core engines of Figure 3 (GraphLab lives in package
// graphlab).
const (
	WorkSteal Engine = iota // TBB-style work stealing with nested parallelism
	Static                  // OpenMP-style static contiguous chunks
)

// String names the engine as in Figure 3's legend.
func (e Engine) String() string {
	switch e {
	case WorkSteal:
		return "TBB"
	case Static:
		return "OpenMP"
	default:
		return "unknown"
	}
}

// Run executes BPMF on prob with the given engine and thread count and
// returns the result. The sampled chain is bit-identical to
// core.Sampler's for the same Config.
func Run(engine Engine, cfg core.Config, prob *core.Problem, threads int) (*core.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threads < 1 {
		threads = 1
	}
	m, n := prob.Dims()
	// All workspaces share one chunk-accumulator arena, and workspaces are
	// leased per item from a worker-local arena: a worker that helps
	// execute other items while blocked inside a nested Sync must not
	// reuse a workspace that is mid-update, so checkout stays per item —
	// the sharding only keeps the lease on the leasing worker's
	// cache-warm shard.
	acc := core.NewAccArena(cfg.K)
	r := &runner{
		cfg:   cfg,
		prob:  prob,
		prior: core.DefaultNWPrior(cfg.K),
		u:     core.InitFactors(cfg.Seed, core.SideU, m, cfg.K),
		v:     core.InitFactors(cfg.Seed, core.SideV, n, cfg.K),
		hu:    core.NewHyper(cfg.K),
		hv:    core.NewHyper(cfg.K),
		hws:   core.NewHyperWorkspace(cfg.K),
		pred:  core.NewPredictor(prob.Test, cfg.ClampMin, cfg.ClampMax),
		wsPool: sched.NewArena(func() *core.Workspace {
			return core.NewWorkspaceShared(cfg.K, acc)
		}),
	}
	r.pred.Alpha = cfg.Alpha
	res := &core.Result{}
	start := time.Now()
	switch engine {
	case WorkSteal:
		pool := sched.NewPool(threads)
		defer pool.Close()
		for it := 0; it < cfg.Iters; it++ {
			r.stepWorkSteal(pool, it, res)
		}
	case Static:
		for it := 0; it < cfg.Iters; it++ {
			r.stepStatic(threads, it, res)
		}
	default:
		panic("mc: unknown engine")
	}
	res.Elapsed = time.Since(start)
	res.Iters = cfg.Iters
	res.ItemUpdates = int64(cfg.Iters) * int64(m+n)
	res.U, res.V = r.u, r.v
	res.Intervals = r.pred.Intervals()
	for k := range res.KernelCounts {
		res.KernelCounts[k] = r.kernelCounts[k].Load()
	}
	return res, nil
}

type runner struct {
	cfg    core.Config
	prob   *core.Problem
	prior  core.NWPrior
	u, v   *la.Matrix
	hu, hv *core.Hyper
	hws    *core.HyperWorkspace
	pred   *core.Predictor
	wsPool *sched.Arena[*core.Workspace]

	kernelCounts [3]atomic.Int64
}

// itemGrain is the work-stealing grain for the item loop: small enough to
// rebalance skew, large enough to amortize task overhead on cheap items.
const itemGrain = 8

// updateRange samples items [lo, hi) of one side. other is the partner
// factor matrix; rt indexes the side's ratings (rows = items of this
// side). pool/pw enable the nested parallel kernel (nil for the static
// engine, which has no nested parallelism — the sample stays bit-identical
// because the kernel's task DAG is schedule-independent).
func (r *runner) updateRange(side core.Side, iter, lo, hi int, pool *sched.Pool, pw *sched.Worker) {
	cfg := &r.cfg
	var rt = r.prob.R
	var self, other *la.Matrix
	var hyper *core.Hyper
	if side == core.SideV {
		rt = r.prob.Rt
		self, other, hyper = r.v, r.u, r.hv
	} else {
		self, other, hyper = r.u, r.v, r.hu
	}
	for item := lo; item < hi; item++ {
		cols, vals := rt.Row(item)
		kern := cfg.SelectKernel(len(cols))
		r.kernelCounts[kern].Add(1)
		ws := r.wsPool.Get(pw)
		core.UpdateItem(ws, kern, cfg, cols, vals, other, hyper,
			core.ItemStream(cfg.Seed, iter, side, item), pool, pw, self.Row(item))
		r.wsPool.Put(pw, ws)
	}
}

// sampleHypers draws both sides' hyperparameters for this iteration using
// the provided parallel-for over moment groups.
func (r *runner) sampleHypers(iter int, parallelFor func(n int, run func(g int))) {
	cfg := &r.cfg
	groupsV := core.GroupBoundaries(cfg.MomentGroupsV, r.v.Rows)
	mv := core.MomentsGrouped(r.v, groupsV, cfg.K, parallelFor)
	core.SampleHyperWS(r.prior, mv, core.HyperStream(cfg.Seed, iter, core.SideV), r.hv, r.hws)
}

func (r *runner) sampleHyperU(iter int, parallelFor func(n int, run func(g int))) {
	cfg := &r.cfg
	groupsU := core.GroupBoundaries(cfg.MomentGroupsU, r.u.Rows)
	mu := core.MomentsGrouped(r.u, groupsU, cfg.K, parallelFor)
	core.SampleHyperWS(r.prior, mu, core.HyperStream(cfg.Seed, iter, core.SideU), r.hu, r.hws)
}

func (r *runner) score(iter int, res *core.Result) {
	sr, ar := r.pred.Update(r.u, r.v, iter >= r.cfg.Burnin)
	res.SampleRMSE = append(res.SampleRMSE, sr)
	res.AvgRMSE = append(res.AvgRMSE, ar)
}

// stepWorkSteal runs one Gibbs iteration on the work-stealing pool.
func (r *runner) stepWorkSteal(pool *sched.Pool, iter int, res *core.Result) {
	pfor := func(n int, run func(g int)) {
		pool.ParallelFor(0, n, 1, func(_ *sched.Worker, lo, hi int) {
			for g := lo; g < hi; g++ {
				run(g)
			}
		})
	}
	// Movies first (Algorithm 1).
	r.sampleHypers(iter, pfor)
	pool.ParallelFor(0, r.prob.Rt.M, itemGrain, func(w *sched.Worker, lo, hi int) {
		r.updateRange(core.SideV, iter, lo, hi, pool, w)
	})
	r.sampleHyperU(iter, pfor)
	pool.ParallelFor(0, r.prob.R.M, itemGrain, func(w *sched.Worker, lo, hi int) {
		r.updateRange(core.SideU, iter, lo, hi, pool, w)
	})
	r.score(iter, res)
}

// stepStatic runs one Gibbs iteration with OpenMP-style static chunks and
// no nested parallelism.
func (r *runner) stepStatic(threads, iter int, res *core.Result) {
	sfor := func(n int, run func(g int)) {
		sched.StaticFor(threads, 0, n, func(_, lo, hi int) {
			for g := lo; g < hi; g++ {
				run(g)
			}
		})
	}
	r.sampleHypers(iter, sfor)
	sched.StaticFor(threads, 0, r.prob.Rt.M, func(_, lo, hi int) {
		r.updateRange(core.SideV, iter, lo, hi, nil, nil)
	})
	r.sampleHyperU(iter, sfor)
	sched.StaticFor(threads, 0, r.prob.R.M, func(_, lo, hi int) {
		r.updateRange(core.SideU, iter, lo, hi, nil, nil)
	})
	r.score(iter, res)
}
