package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/sparse"
)

func TestIntervalsNilBeforeBurnin(t *testing.T) {
	p := NewPredictor([]sparse.Entry{{Row: 0, Col: 0, Val: 1}}, 0, 0)
	if p.Intervals() != nil {
		t.Fatal("intervals must be nil before any collected sample")
	}
}

func TestIntervalsCalibrated(t *testing.T) {
	// Run the sampler on planted data and check the predictive intervals
	// are meaningful: standardized residuals (actual - mean)/std should
	// be roughly standard-normal — most within 2, median |z| below ~1.2.
	ds := datagen.Generate(datagen.Small(51))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, 51)
	prob := NewProblem(train, test)
	cfg := DefaultConfig()
	cfg.K = 8
	cfg.Iters = 20
	cfg.Burnin = 8
	s, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if len(res.Intervals) != len(test) {
		t.Fatalf("got %d intervals for %d test points", len(res.Intervals), len(test))
	}
	var zs []float64
	within2 := 0
	for _, iv := range res.Intervals {
		if iv.Std <= 0 {
			t.Fatal("non-positive predictive std")
		}
		z := math.Abs(iv.Actual-iv.Mean) / iv.Std
		zs = append(zs, z)
		if z < 2 {
			within2++
		}
	}
	sort.Float64s(zs)
	median := zs[len(zs)/2]
	frac2 := float64(within2) / float64(len(zs))
	// N(0,1): median |z| ≈ 0.67, P(|z|<2) ≈ 0.954. Allow generous slack
	// for the short chain and planted-model mismatch.
	if median > 1.3 {
		t.Fatalf("median |z| = %v — intervals far too narrow", median)
	}
	if median < 0.2 {
		t.Fatalf("median |z| = %v — intervals far too wide", median)
	}
	if frac2 < 0.80 {
		t.Fatalf("only %.0f%% of residuals within 2 std", frac2*100)
	}
}

func TestIntervalMeanMatchesAvgRMSE(t *testing.T) {
	// The RMSE computed from interval means must equal the reported
	// posterior-mean RMSE (same accumulator).
	ds := datagen.Generate(datagen.Tiny(52))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, 52)
	prob := NewProblem(train, test)
	cfg := DefaultConfig()
	cfg.K = 4
	cfg.Iters = 6
	cfg.Burnin = 2
	s, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	var se float64
	for _, iv := range res.Intervals {
		d := iv.Mean - iv.Actual
		se += d * d
	}
	rmse := math.Sqrt(se / float64(len(res.Intervals)))
	if math.Abs(rmse-res.FinalRMSE()) > 1e-12 {
		t.Fatalf("interval RMSE %v != reported %v", rmse, res.FinalRMSE())
	}
}

func TestObservationNoiseInStd(t *testing.T) {
	// With Alpha set, predictive variance must include 1/Alpha even when
	// the chain is completely confident about u·v.
	p := NewPredictor([]sparse.Entry{{Row: 0, Col: 0, Val: 1}}, 0, 0)
	p.Alpha = 4
	u := la.NewMatrixFrom([][]float64{{1}})
	v := la.NewMatrixFrom([][]float64{{1}})
	for i := 0; i < 10; i++ {
		p.PartialUpdate(u, v, true) // identical prediction every sample
	}
	iv := p.Intervals()[0]
	if math.Abs(iv.Std-0.5) > 1e-9 { // sqrt(1/4)
		t.Fatalf("std = %v, want 0.5 observation noise floor", iv.Std)
	}
}
