package core
