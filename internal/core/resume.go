package core

import (
	"fmt"

	"repro/internal/la"
)

// GrowUsers extends a checkpoint to a problem that gained user rows
// since the chain was checkpointed — the resume-with-new-rows contract
// of the continuous-training loop, where delta shards introduce users
// the base run never saw. The returned checkpoint has U grown to the
// problem's row count; every other field (V, predictor accumulators,
// traces) carries over, because the held-out test set is frozen at the
// base split.
//
// Each new row is drawn by the serving layer's fold-in rule, which is
// the sampler's own conditional: user-side hyperparameters are sampled
// from the keyed stream of iteration NextIter conditioned on the
// checkpointed U (bit-identical to serve.NewModel's reconstruction),
// and row i is then drawn via UpdateItem conditioned on the merged
// matrix's row i with ItemStream(seed, NextIter, SideU, i). The draw is
// therefore a pure function of (checkpoint, problem row) — two trainers
// growing the same checkpoint over the same merged matrix produce
// bit-identical rows, whatever path the delta shards took to get there.
//
// The problem may not shrink users, and its item count must equal the
// checkpointed V: the item catalog is pinned by the trained item
// factors. A problem with the checkpoint's exact shape is returned
// unchanged (same pointer).
func (c *Checkpoint) GrowUsers(cfg Config, prob *Problem) (*Checkpoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K != c.K {
		return nil, fmt.Errorf("core: checkpoint K=%d, config K=%d", c.K, cfg.K)
	}
	if cfg.Seed != c.Seed {
		return nil, fmt.Errorf("core: checkpoint seed=%d, config seed=%d", c.Seed, cfg.Seed)
	}
	m, n := prob.Dims()
	if c.V.Rows != n {
		return nil, fmt.Errorf("core: checkpoint has %d items, problem has %d (the item catalog cannot grow)",
			c.V.Rows, n)
	}
	if m < c.U.Rows {
		return nil, fmt.Errorf("core: problem has %d users, checkpoint has %d (users cannot shrink)",
			m, c.U.Rows)
	}
	if m == c.U.Rows {
		return c, nil
	}

	// The user-side hyperparameters the resumed chain would draw at
	// iteration NextIter, conditioned on the checkpointed U.
	hyper := NewHyper(c.K)
	mom := MomentsGrouped(c.U, GroupBoundaries(nil, c.U.Rows), c.K, nil)
	SampleHyper(DefaultNWPrior(c.K), mom, HyperStream(c.Seed, c.NextIter, SideU), hyper)

	grown := *c
	grown.U = la.NewMatrix(m, c.K)
	copy(grown.U.Data[:c.U.Rows*c.K], c.U.Data)
	ws := NewWorkspace(c.K)
	for i := c.U.Rows; i < m; i++ {
		cols, vals := prob.R.Row(i)
		UpdateItem(ws, cfg.SelectKernel(len(cols)), &cfg, cols, vals, c.V, hyper,
			ItemStream(c.Seed, c.NextIter, SideU, i), nil, nil, grown.U.Row(i))
	}
	return &grown, nil
}

// ResumeSamplerGrown is ResumeSampler for a problem that may have
// gained users since the checkpoint: new rows are folded in via
// GrowUsers, then the chain resumes exactly as ResumeSampler would.
// Call RunFrom(c.NextIter) on the result.
func ResumeSamplerGrown(cfg Config, prob *Problem, c *Checkpoint) (*Sampler, error) {
	grown, err := c.GrowUsers(cfg, prob)
	if err != nil {
		return nil, err
	}
	return ResumeSampler(cfg, prob, grown)
}
