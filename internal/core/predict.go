package core

import (
	"math"

	"repro/internal/la"
	"repro/internal/sparse"
)

// Predictor maintains the posterior-mean predictions over a held-out test
// set: before burn-in it reports the RMSE of the current sample; from the
// first post-burn-in sample on, it averages predictions across samples
// (the standard BPMF evaluation protocol, and the RMSE the paper's §V-B
// refers to).
type Predictor struct {
	Test     []sparse.Entry
	sum      []float64 // running sum of per-sample predictions
	sumSq    []float64 // running sum of squared per-sample predictions
	nSamples int
	clampMin float64
	clampMax float64
	// Alpha, when positive, is the observation precision; the predictive
	// standard deviation then includes the 1/Alpha observation noise in
	// addition to the posterior spread of u·v (the confidence intervals
	// the paper's introduction credits BPMF with).
	Alpha float64
}

// NewPredictor creates a predictor over the given held-out entries.
func NewPredictor(test []sparse.Entry, clampMin, clampMax float64) *Predictor {
	return &Predictor{
		Test:     test,
		sum:      make([]float64, len(test)),
		sumSq:    make([]float64, len(test)),
		clampMin: clampMin,
		clampMax: clampMax,
	}
}

// Interval is one held-out prediction with its posterior uncertainty.
type Interval struct {
	Row, Col int32
	Actual   float64
	// Mean is the posterior-mean prediction; Std its predictive standard
	// deviation (sample spread of the chain plus observation noise).
	Mean, Std float64
}

// Intervals returns the posterior predictive summary of every test entry
// (nil until at least one post-burn-in sample was collected).
func (p *Predictor) Intervals() []Interval {
	if p.nSamples == 0 {
		return nil
	}
	out := make([]Interval, len(p.Test))
	n := float64(p.nSamples)
	for t, e := range p.Test {
		mean := p.sum[t] / n
		variance := p.sumSq[t]/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		if p.Alpha > 0 {
			variance += 1 / p.Alpha
		}
		out[t] = Interval{
			Row: e.Row, Col: e.Col, Actual: e.Val,
			Mean: mean, Std: math.Sqrt(variance),
		}
	}
	return out
}

// clamp applies the configured rating-range clip.
func (p *Predictor) clamp(v float64) float64 {
	if p.clampMax > p.clampMin {
		v = math.Min(p.clampMax, math.Max(p.clampMin, v))
	}
	return v
}

// PartialUpdate scores the current sample (U, V) over this predictor's
// test entries and returns raw squared-error sums instead of RMSE:
// (Σ sample error², Σ posterior-mean error², #entries). The distributed
// engine calls this per rank and combines partials with a deterministic
// allreduce. If collect is true the sample is folded into the running
// posterior mean first. When no sample has been collected yet, seAvg
// repeats seSample.
func (p *Predictor) PartialUpdate(u, v *la.Matrix, collect bool) (seSample, seAvg, n float64) {
	if collect {
		p.nSamples++
	}
	inv := 0.0
	if p.nSamples > 0 {
		inv = 1 / float64(p.nSamples)
	}
	for t, e := range p.Test {
		pred := p.clamp(la.Dot(u.Row(int(e.Row)), v.Row(int(e.Col))))
		d := pred - e.Val
		seSample += d * d
		if collect {
			p.sum[t] += pred
			p.sumSq[t] += pred * pred
		}
		if p.nSamples > 0 {
			da := p.sum[t]*inv - e.Val
			seAvg += da * da
		}
	}
	if p.nSamples == 0 {
		seAvg = seSample
	}
	return seSample, seAvg, float64(len(p.Test))
}

// Update scores the current sample (U, V): it returns the RMSE of this
// sample alone and, if collect is true, folds the sample into the running
// posterior mean and returns its RMSE too; otherwise avgRMSE repeats
// sampleRMSE.
func (p *Predictor) Update(u, v *la.Matrix, collect bool) (sampleRMSE, avgRMSE float64) {
	if len(p.Test) == 0 {
		return math.NaN(), math.NaN()
	}
	seSample, seAvg, n := p.PartialUpdate(u, v, collect)
	return math.Sqrt(seSample / n), math.Sqrt(seAvg / n)
}

// RMSE computes the root-mean-square error of predicting the entries of
// test with factors (u, v), without any averaging state.
func RMSE(u, v *la.Matrix, test []sparse.Entry, clampMin, clampMax float64) float64 {
	if len(test) == 0 {
		return math.NaN()
	}
	var se float64
	for _, e := range test {
		pred := la.Dot(u.Row(int(e.Row)), v.Row(int(e.Col)))
		if clampMax > clampMin {
			pred = math.Min(clampMax, math.Max(clampMin, pred))
		}
		d := pred - e.Val
		se += d * d
	}
	return math.Sqrt(se / float64(len(test)))
}
