package core

import (
	"fmt"
	"math"

	"repro/internal/la"
	"repro/internal/sparse"
)

// EvalChunk is the fixed chunk length of the predictor's squared-error
// reduction. The chunk decomposition is a pure function of len(Test) —
// never of thread count, scheduling grain or engine — and chunk partials
// are combined in ascending chunk order, so the evaluation is one fixed
// summation tree: parallel and sequential execution produce the same
// RMSE bit for bit (the same ordered-reduction discipline the
// hyperparameter moments and the distributed allreduce already follow).
const EvalChunk = 2048

// Predictor maintains the posterior-mean predictions over a held-out test
// set: before burn-in it reports the RMSE of the current sample; from the
// first post-burn-in sample on, it averages predictions across samples
// (the standard BPMF evaluation protocol, and the RMSE the paper's §V-B
// refers to).
type Predictor struct {
	Test     []sparse.Entry
	sum      []float64 // running sum of per-sample predictions
	sumSq    []float64 // running sum of squared per-sample predictions
	nSamples int
	clampMin float64
	clampMax float64
	// partSample/partAvg are the per-chunk partial squared errors of one
	// update pass, preallocated so steady-state scoring never allocates.
	partSample, partAvg []float64
	// Alpha, when positive, is the observation precision; the predictive
	// standard deviation then includes the 1/Alpha observation noise in
	// addition to the posterior spread of u·v (the confidence intervals
	// the paper's introduction credits BPMF with).
	Alpha float64
}

// NewPredictor creates a predictor over the given held-out entries.
func NewPredictor(test []sparse.Entry, clampMin, clampMax float64) *Predictor {
	nc := (len(test) + EvalChunk - 1) / EvalChunk
	return &Predictor{
		Test:       test,
		sum:        make([]float64, len(test)),
		sumSq:      make([]float64, len(test)),
		partSample: make([]float64, nc),
		partAvg:    make([]float64, nc),
		clampMin:   clampMin,
		clampMax:   clampMax,
	}
}

// Interval is one held-out prediction with its posterior uncertainty.
type Interval struct {
	Row, Col int32
	Actual   float64
	// Mean is the posterior-mean prediction; Std its predictive standard
	// deviation (sample spread of the chain plus observation noise).
	Mean, Std float64
}

// Intervals returns the posterior predictive summary of every test entry
// (nil until at least one post-burn-in sample was collected).
func (p *Predictor) Intervals() []Interval {
	if p.nSamples == 0 {
		return nil
	}
	out := make([]Interval, len(p.Test))
	n := float64(p.nSamples)
	for t, e := range p.Test {
		mean := p.sum[t] / n
		variance := p.sumSq[t]/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		if p.Alpha > 0 {
			variance += 1 / p.Alpha
		}
		out[t] = Interval{
			Row: e.Row, Col: e.Col, Actual: e.Val,
			Mean: mean, Std: math.Sqrt(variance),
		}
	}
	return out
}

// Snapshot exposes the running posterior accumulators for checkpointing:
// the per-entry prediction sums, squared sums, and the sample count. The
// returned slices alias internal state — copy before mutating.
func (p *Predictor) Snapshot() (sum, sumSq []float64, nSamples int) {
	return p.sum, p.sumSq, p.nSamples
}

// Restore overwrites the running accumulators from a checkpoint. The
// slices must match this predictor's test-set length.
func (p *Predictor) Restore(sum, sumSq []float64, nSamples int) error {
	if len(sum) != len(p.Test) || len(sumSq) != len(p.Test) {
		return fmt.Errorf("predictor restore: accumulator length %d/%d, test set %d",
			len(sum), len(sumSq), len(p.Test))
	}
	copy(p.sum, sum)
	copy(p.sumSq, sumSq)
	p.nSamples = nSamples
	return nil
}

// clamp applies the configured rating-range clip.
func (p *Predictor) clamp(v float64) float64 {
	if p.clampMax > p.clampMin {
		v = math.Min(p.clampMax, math.Max(p.clampMin, v))
	}
	return v
}

// NumChunks returns the fixed chunk count of this predictor's reduction.
func (p *Predictor) NumChunks() int { return len(p.partSample) }

// PartialUpdate scores the current sample (U, V) over this predictor's
// test entries and returns raw squared-error sums instead of RMSE:
// (Σ sample error², Σ posterior-mean error², #entries). The distributed
// engine calls this per rank and combines partials with a deterministic
// allreduce. If collect is true the sample is folded into the running
// posterior mean first. When no sample has been collected yet, seAvg
// repeats seSample. The summation runs through the fixed EvalChunk tree
// executed inline; PartialUpdatePar executes the same tree in parallel.
func (p *Predictor) PartialUpdate(u, v *la.Matrix, collect bool) (seSample, seAvg, n float64) {
	return p.PartialUpdatePar(u, v, collect, nil)
}

// PartialUpdatePar is PartialUpdate with the chunk loop handed to runAll,
// which must invoke run(c) exactly once for every chunk c in [0, nChunks)
// — in any order, on any goroutines — and return only after all
// invocations complete; engines pass a parallel-for over their pool here
// (nil runs the chunks sequentially). Chunks touch disjoint predictor
// state and partials are combined in ascending chunk order after runAll
// returns, so the result is bit-identical for any schedule.
func (p *Predictor) PartialUpdatePar(u, v *la.Matrix, collect bool,
	runAll func(nChunks int, run func(c int))) (seSample, seAvg, n float64) {
	if collect {
		p.nSamples++
	}
	inv := 0.0
	if p.nSamples > 0 {
		inv = 1 / float64(p.nSamples)
	}
	nc := p.NumChunks()
	if runAll == nil {
		// Method call, not a closure: the inline path stays allocation-free.
		for c := 0; c < nc; c++ {
			p.runChunk(c, u, v, collect, inv)
		}
	} else {
		runAll(nc, func(c int) { p.runChunk(c, u, v, collect, inv) })
	}
	for c := 0; c < nc; c++ {
		seSample += p.partSample[c]
		seAvg += p.partAvg[c]
	}
	if p.nSamples == 0 {
		seAvg = seSample
	}
	return seSample, seAvg, float64(len(p.Test))
}

// runChunk scores chunk c — test entries [c*EvalChunk, (c+1)*EvalChunk) —
// into the chunk partials. Chunks touch disjoint entries and partial
// slots, so any set of chunks may run concurrently.
func (p *Predictor) runChunk(c int, u, v *la.Matrix, collect bool, inv float64) {
	lo := c * EvalChunk
	hi := lo + EvalChunk
	if hi > len(p.Test) {
		hi = len(p.Test)
	}
	var ss, sa float64
	for t := lo; t < hi; t++ {
		e := p.Test[t]
		pred := p.clamp(la.Dot(u.Row(int(e.Row)), v.Row(int(e.Col))))
		d := pred - e.Val
		ss += d * d
		if collect {
			p.sum[t] += pred
			p.sumSq[t] += pred * pred
		}
		if p.nSamples > 0 {
			da := p.sum[t]*inv - e.Val
			sa += da * da
		}
	}
	p.partSample[c] = ss
	p.partAvg[c] = sa
}

// Update scores the current sample (U, V): it returns the RMSE of this
// sample alone and, if collect is true, folds the sample into the running
// posterior mean and returns its RMSE too; otherwise avgRMSE repeats
// sampleRMSE.
func (p *Predictor) Update(u, v *la.Matrix, collect bool) (sampleRMSE, avgRMSE float64) {
	return p.UpdatePar(u, v, collect, nil)
}

// UpdatePar is Update with the chunk loop handed to runAll (see
// PartialUpdatePar); the returned RMSEs are bit-identical to Update's for
// any conforming runAll.
func (p *Predictor) UpdatePar(u, v *la.Matrix, collect bool,
	runAll func(nChunks int, run func(c int))) (sampleRMSE, avgRMSE float64) {
	if len(p.Test) == 0 {
		return math.NaN(), math.NaN()
	}
	seSample, seAvg, n := p.PartialUpdatePar(u, v, collect, runAll)
	return math.Sqrt(seSample / n), math.Sqrt(seAvg / n)
}

// RMSE computes the root-mean-square error of predicting the entries of
// test with factors (u, v), without any averaging state.
func RMSE(u, v *la.Matrix, test []sparse.Entry, clampMin, clampMax float64) float64 {
	if len(test) == 0 {
		return math.NaN()
	}
	var se float64
	for _, e := range test {
		pred := la.Dot(u.Row(int(e.Row)), v.Row(int(e.Col)))
		if clampMax > clampMin {
			pred = math.Min(clampMax, math.Max(clampMin, pred))
		}
		d := pred - e.Val
		se += d * d
	}
	return math.Sqrt(se / float64(len(test)))
}
