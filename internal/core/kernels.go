package core

import (
	"math"

	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Kernel identifies one of the three item-update methods of Figure 2.
type Kernel int

// The three item-update kernels.
const (
	// KernelRankOne maintains the posterior precision's Cholesky factor
	// directly by |R(item)| rank-one updates starting from the factor of
	// the hyperparameter precision. No K³ factorization; cheapest for
	// items with very few ratings.
	KernelRankOne Kernel = iota
	// KernelCholesky accumulates the full K x K posterior precision with
	// symmetric rank-one updates, then factorizes it with one sequential
	// Cholesky decomposition.
	KernelCholesky
	// KernelParallelCholesky chunks the precision accumulation over the
	// item's ratings into fixed-size grains executed as parallel tasks,
	// combines the partial sums in chunk order, and factorizes with the
	// blocked parallel Cholesky. Used for items with >= Config.
	// KernelThreshold ratings (paper: 1000): it splits one heavy item
	// into many small tasks that can use every core.
	KernelParallelCholesky
	numKernels
)

// String returns the kernel's name as used in Figure 2's legend.
func (k Kernel) String() string {
	switch k {
	case KernelRankOne:
		return "rankupdate"
	case KernelCholesky:
		return "serial_chol"
	case KernelParallelCholesky:
		return "parallel_chol"
	default:
		return "unknown"
	}
}

// SelectKernel returns the kernel the hybrid scheme uses for an item with
// the given number of ratings. It is a pure function of (nnz, cfg), so all
// engines make identical choices.
func (c Config) SelectKernel(nnz int) Kernel {
	switch {
	case nnz <= c.RankOneMax:
		return KernelRankOne
	case nnz < c.KernelThreshold:
		return KernelCholesky
	default:
		return KernelParallelCholesky
	}
}

// accChunk is one chunk accumulator of the parallel kernel's reduction:
// a partial precision, rhs and gather panel leased from a worker-local
// arena.
type accChunk struct {
	prec  *la.Matrix
	rhs   la.Vector
	panel *la.Matrix
}

// AccArena is a worker-local arena of chunk accumulators for the parallel
// item-update kernel. Engines create one and share it across all their
// workspaces (NewWorkspaceShared) so the whole run leases from the same
// steady-state pool of buffers.
type AccArena struct {
	a *sched.Arena[*accChunk]
}

// NewAccArena creates an arena of K x K chunk accumulators.
func NewAccArena(k int) *AccArena {
	return &AccArena{a: sched.NewArena(func() *accChunk {
		return &accChunk{
			prec:  la.NewMatrix(k, k),
			rhs:   la.NewVector(k),
			panel: la.NewMatrix(la.GatherPanelRows, k),
		}
	})}
}

// Workspace holds the per-worker scratch space of the item update so the
// hot loop performs no allocation. One Workspace must not be used by two
// goroutines at once.
type Workspace struct {
	K       int
	prec    *la.Matrix
	precL   *la.Matrix
	rhs     la.Vector
	mu      la.Vector
	scratch la.Vector
	xtmp    la.Vector
	// panel is the gather scratch of the panel-streamed serial-Cholesky
	// accumulation (la.SyrkAxpyPanelLower).
	panel *la.Matrix

	// acc supplies chunk accumulators to the parallel kernel; parts is the
	// reused per-item list of leased chunks (ascending chunk order).
	acc   *AccArena
	parts []*accChunk

	// stream is the re-keyed scratch stream handed out by ItemStream.
	stream rng.Stream
}

// ItemStream re-keys the workspace's embedded scratch stream in place to
// the given item's keyed stream and returns it — byte-identical to the
// allocating core.ItemStream, without the per-item allocation. The
// returned stream is only valid until the workspace's next ItemStream
// call, which is exactly the per-item lease discipline the engines
// already follow.
func (ws *Workspace) ItemStream(seed uint64, iter int, side Side, item int) *rng.Stream {
	ws.stream.Reinit(rng.Mix(seed, keyItem, uint64(iter), uint64(side), uint64(item)))
	return &ws.stream
}

// NewWorkspace allocates a workspace for K latent features with its own
// private accumulator arena (created lazily on first parallel-kernel use).
func NewWorkspace(k int) *Workspace {
	return NewWorkspaceShared(k, nil)
}

// NewWorkspaceShared allocates a workspace whose parallel-kernel chunk
// accumulators come from the shared arena acc (nil for a private one).
func NewWorkspaceShared(k int, acc *AccArena) *Workspace {
	return &Workspace{
		K:       k,
		prec:    la.NewMatrix(k, k),
		precL:   la.NewMatrix(k, k),
		rhs:     la.NewVector(k),
		mu:      la.NewVector(k),
		scratch: la.NewVector(k),
		xtmp:    la.NewVector(k),
		panel:   la.NewMatrix(la.GatherPanelRows, k),
		acc:     acc,
	}
}

// UpdateItem performs one Gibbs draw for a single item (one row of U or V):
//
//	Λ* = Λ_hyper + α Σ_{j ∈ R(item)} x_j x_jᵀ
//	μ* = Λ*⁻¹ (Λ_hyper μ_hyper + α Σ_j r_j x_j)
//	out ~ N(μ*, Λ*⁻¹)
//
// where x_j are the partner-side factor rows referenced by cols and r_j
// the corresponding rating values (vals). kernel selects the Figure 2
// method. pool/pw are required only by KernelParallelCholesky (pass nil
// otherwise, or to force its chunk arithmetic onto the calling goroutine).
// The draw consumes exactly K normal deviates from stream regardless of
// kernel, keeping stream consumption schedule-independent.
func UpdateItem(
	ws *Workspace,
	kernel Kernel,
	cfg *Config,
	cols []int32, vals []float64,
	other *la.Matrix,
	hyper *Hyper,
	stream *rng.Stream,
	pool *sched.Pool, pw *sched.Worker,
	out la.Vector,
) {
	k := ws.K
	alpha := cfg.Alpha

	switch kernel {
	case KernelRankOne:
		// Start from the hyperparameter precision's factor and rank-one
		// update it once per rating with sqrt(α)·x.
		ws.precL.CopyFrom(hyper.LambdaChol)
		copy(ws.rhs, hyper.LambdaMu)
		sa := math.Sqrt(alpha)
		for p, c := range cols {
			x := other.Row(int(c))
			for i := 0; i < k; i++ {
				ws.xtmp[i] = sa * x[i]
			}
			la.CholUpdate(ws.precL, ws.xtmp)
			la.Axpy(alpha*vals[p], x, ws.rhs)
		}

	case KernelCholesky:
		// Precision and rhs accumulate in one fused, register-blocked pass
		// over the ratings, gathered panel-wise into contiguous scratch so
		// the accumulation streams instead of chasing row pointers into the
		// partner matrix (ascending index, so the sums are bit-identical
		// to the per-rating SyrLower/Axpy loop), then one factorization.
		ws.prec.CopyFrom(hyper.Lambda)
		copy(ws.rhs, hyper.LambdaMu)
		la.SyrkAxpyPanelLower(alpha, other, cols, vals, ws.prec, ws.rhs, ws.panel)
		if err := la.Cholesky(ws.prec, ws.precL); err != nil {
			panic("core: item posterior precision not SPD: " + err.Error())
		}

	case KernelParallelCholesky:
		accumulateParallel(ws, cfg, cols, vals, other, hyper, pool, pw)
		// CholeskyParallel executes the same blocked task DAG inline when
		// pool is nil, so the sample is bit-identical whether or not the
		// caller supports nested parallelism.
		if err := la.CholeskyParallel(pool, pw, ws.prec, ws.precL); err != nil {
			panic("core: item posterior precision not SPD: " + err.Error())
		}

	default:
		panic("core: unknown kernel")
	}

	// μ* = Λ*⁻¹ rhs via the factor, then draw.
	la.SolveSPD(ws.precL, ws.rhs, ws.mu, ws.scratch)
	stream.MVNFromPrecChol(ws.mu, ws.precL, out, ws.scratch)
}

// accumulateParallel computes Λ* and the rhs with a chunked reduction.
// The chunk decomposition depends only on (nnz, cfg.ParallelGrain); the
// partials are combined in ascending chunk order, so the result is
// bit-identical for any worker count, including sequential execution.
// Chunk accumulators are leased from the workspace's worker-local arena
// instead of allocated per chunk, so the steady-state hot path performs
// no allocation.
func accumulateParallel(
	ws *Workspace, cfg *Config,
	cols []int32, vals []float64,
	other *la.Matrix, hyper *Hyper,
	pool *sched.Pool, pw *sched.Worker,
) {
	nnz := len(cols)
	grain := cfg.ParallelGrain
	nchunks := (nnz + grain - 1) / grain
	if nchunks == 0 {
		nchunks = 1
	}
	if ws.acc == nil {
		ws.acc = NewAccArena(ws.K)
	}
	if cap(ws.parts) < nchunks {
		ws.parts = make([]*accChunk, nchunks)
	}
	ws.parts = ws.parts[:nchunks]

	if pool != nil && nchunks > 1 {
		g := pool.NewGroup()
		for ci := 0; ci < nchunks; ci++ {
			ci := ci
			g.Spawn(pw, func(tw *sched.Worker) {
				ws.runAccChunk(tw, ci, grain, cfg.Alpha, cols, vals, other)
			})
		}
		g.Sync(pw)
	} else {
		// Method call, not a closure: the inline path stays allocation-free.
		for ci := 0; ci < nchunks; ci++ {
			ws.runAccChunk(pw, ci, grain, cfg.Alpha, cols, vals, other)
		}
	}

	ws.prec.CopyFrom(hyper.Lambda)
	copy(ws.rhs, hyper.LambdaMu)
	for ci := 0; ci < nchunks; ci++ {
		ch := ws.parts[ci]
		ws.prec.Add(ch.prec)
		la.Axpy(1, ch.rhs, ws.rhs)
		ws.acc.a.Put(pw, ch)
		ws.parts[ci] = nil
	}
}

// runAccChunk leases a chunk accumulator and accumulates ratings
// [ci*grain, min((ci+1)*grain, nnz)) into it, recording the lease in
// ws.parts[ci]. The per-element summation order inside a chunk is
// ascending rating index, matching the per-rating reference loop.
func (ws *Workspace) runAccChunk(w *sched.Worker, ci, grain int, alpha float64,
	cols []int32, vals []float64, other *la.Matrix) {
	lo := ci * grain
	hi := lo + grain
	if hi > len(cols) {
		hi = len(cols)
	}
	ch := ws.acc.a.Get(w)
	ch.prec.Zero()
	ch.rhs.Zero()
	la.SyrkAxpyPanelLower(alpha, other, cols[lo:hi], vals[lo:hi], ch.prec, ch.rhs, ch.panel)
	ws.parts[ci] = ch
}
