package core

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteCheckpointFileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteCheckpointFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload-v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload-v1" {
		t.Fatalf("got %q", got)
	}
}

// TestWriteCheckpointFileCrashMidWrite simulates a writer dying halfway
// through: the target must keep its previous contents — a torn
// checkpoint must never become visible under the target name — and the
// temp file must not linger.
func TestWriteCheckpointFileCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := WriteCheckpointFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good-checkpoint"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash mid-write")
	err := WriteCheckpointFile(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("torn-")); err != nil {
			return err
		}
		return boom // die after a partial write
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the simulated crash", err)
	}

	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "good-checkpoint" {
		t.Fatalf("target holds %q after failed write, want the previous contents", got)
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 1 || entries[0].Name() != "ckpt.bin" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only the target (no temp residue)", names)
	}
}

func TestWriteCheckpointFileMissingDir(t *testing.T) {
	err := WriteCheckpointFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("writing into a missing directory must error")
	}
}
