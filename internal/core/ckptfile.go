package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteCheckpointFile writes a checkpoint (or any durability-critical
// file) atomically: the payload goes to a temp file in the target's
// directory and is renamed into place only after a successful write and
// close. A reader — a bpmf-serve watcher, a recovering rank scanning for
// manifests — therefore never observes a torn or half-written file: the
// target either holds its previous contents or the complete new ones.
// On any error the target is left untouched and the temp file removed.
func WriteCheckpointFile(path string, write func(w io.Writer) error) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return nil
}
