package core

import (
	"testing"

	"repro/internal/la"
	"repro/internal/rng"
)

// The hot path's allocation budget is part of the performance contract
// (PERF.md): a steady-state item update must not touch the heap for the
// serial kernels, and the parallel kernel's inline (nil-pool) execution
// must lease all chunk accumulators from its arena.

// allocProblem builds one item's update inputs.
func allocProblem(nnz, k int) (cols []int32, vals []float64, other *la.Matrix) {
	r := rng.New(77)
	other = la.NewMatrix(nnz+4, k)
	r.FillNorm(other.Data)
	cols = make([]int32, nnz)
	vals = make([]float64, nnz)
	for i := range cols {
		cols[i] = int32(i)
		vals[i] = r.Norm()
	}
	return
}

func assertZeroAllocs(t *testing.T, name string, kern Kernel, nnz int) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.K = 16
	hyper := NewHyper(cfg.K)
	cols, vals, other := allocProblem(nnz, cfg.K)
	ws := NewWorkspace(cfg.K)
	out := la.NewVector(cfg.K)
	stream := ItemStream(cfg.Seed, 0, SideU, 1)
	run := func() {
		UpdateItem(ws, kern, &cfg, cols, vals, other, hyper, stream, nil, nil, out)
	}
	run() // warm the workspace arena and chunk-list capacity
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("%s nnz=%d: %v allocs/op in steady state, want 0", name, nnz, allocs)
	}
}

func TestUpdateItemRankOneZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "rankupdate", KernelRankOne, 10)
}

func TestUpdateItemCholeskyZeroAllocs(t *testing.T) {
	assertZeroAllocs(t, "serial_chol", KernelCholesky, 100)
}

func TestUpdateItemParallelInlineZeroAllocs(t *testing.T) {
	// The parallel kernel executed inline (nil pool) must also be
	// allocation-free once its chunk arena is warm; nnz spans several
	// chunks plus a tail.
	cfg := DefaultConfig()
	assertZeroAllocs(t, "parallel_chol", KernelParallelCholesky, 2*cfg.ParallelGrain+3)
}

func TestSampleHyperWSZeroAllocs(t *testing.T) {
	k := 16
	r := rng.New(5)
	x := la.NewMatrix(200, k)
	r.FillNorm(x.Data)
	m := NewMoments(k)
	m.AccumulateRows(x, 0, 200)
	prior := DefaultNWPrior(k)
	h := NewHyper(k)
	hws := NewHyperWorkspace(k)
	stream := HyperStream(9, 0, SideU)
	run := func() { SampleHyperWS(prior, m, stream, h, hws) }
	run()
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("SampleHyperWS: %v allocs/op in steady state, want 0", allocs)
	}
}

// TestItemLoopZeroAllocs pins the engines' full per-item path — re-keyed
// workspace stream plus the update itself — at zero allocations, which is
// what makes the item loops allocation-free per iteration, not just per
// kernel call.
func TestItemLoopZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 16
	hyper := NewHyper(cfg.K)
	cols, vals, other := allocProblem(100, cfg.K)
	ws := NewWorkspace(cfg.K)
	out := la.NewVector(cfg.K)
	run := func() {
		for item := 0; item < 4; item++ {
			UpdateItem(ws, KernelCholesky, &cfg, cols, vals, other, hyper,
				ws.ItemStream(cfg.Seed, 0, SideU, item), nil, nil, out)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("item loop allocates %v per 4 items in steady state, want 0", allocs)
	}
}

// TestWorkspaceItemStreamMatchesKeyed pins ws.ItemStream byte-identical
// to the allocating core.ItemStream for the same key.
func TestWorkspaceItemStreamMatchesKeyed(t *testing.T) {
	ws := NewWorkspace(4)
	for item := 0; item < 5; item++ {
		a := ws.ItemStream(42, 3, SideV, item)
		b := ItemStream(42, 3, SideV, item)
		for i := 0; i < 20; i++ {
			if a.Norm() != b.Norm() {
				t.Fatalf("item %d: workspace stream diverges from keyed stream", item)
			}
		}
	}
}

// TestMomentsGroupedWSZeroAllocs pins the per-iteration hyper-moment path:
// once the workspace's partial pool is warm, a grouped reduction touches
// the heap zero times — MomentsGrouped used to allocate fresh partials for
// every group, every iteration, in every engine.
func TestMomentsGroupedWSZeroAllocs(t *testing.T) {
	k := 16
	r := rng.New(6)
	x := la.NewMatrix(300, k)
	r.FillNorm(x.Data)
	groups := []int{0, 77, 150, 300}
	ws := NewMomentsWorkspace(k)
	run := func() { MomentsGroupedWS(x, groups, k, nil, ws) }
	run() // warm the partial pool
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("MomentsGroupedWS: %v allocs/op in steady state, want 0", allocs)
	}
}

// TestMomentsGroupedWSMatchesAllocating pins the workspace variant against
// the allocating reference, including workspace reuse across differing
// group lists.
func TestMomentsGroupedWSMatchesAllocating(t *testing.T) {
	k := 8
	r := rng.New(11)
	x := la.NewMatrix(120, k)
	r.FillNorm(x.Data)
	ws := NewMomentsWorkspace(k)
	for _, groups := range [][]int{{0, 120}, {0, 13, 50, 120}, {0, 40, 40, 120}} {
		want := MomentsGrouped(x, groups, k, nil)
		got := MomentsGroupedWS(x, groups, k, nil, ws)
		if got.N != want.N {
			t.Fatalf("groups %v: N %v != %v", groups, got.N, want.N)
		}
		for i := range want.Sum {
			if got.Sum[i] != want.Sum[i] {
				t.Fatalf("groups %v: Sum[%d] differs", groups, i)
			}
		}
		if la.MaxAbsDiff(got.SumSq, want.SumSq) != 0 {
			t.Fatalf("groups %v: SumSq differs", groups)
		}
	}
	// Mismatched K must be rejected, not silently mis-sized.
	defer func() {
		if recover() == nil {
			t.Fatal("workspace K mismatch must panic")
		}
	}()
	MomentsGroupedWS(x, []int{0, 120}, k+1, nil, ws)
}

// TestWorkspaceSharedArenaReuse checks that workspaces sharing one arena
// lease from a common steady-state pool (the engines' configuration).
func TestWorkspaceSharedArenaReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 8
	acc := NewAccArena(cfg.K)
	wsA := NewWorkspaceShared(cfg.K, acc)
	wsB := NewWorkspaceShared(cfg.K, acc)
	hyper := NewHyper(cfg.K)
	cols, vals, other := allocProblem(cfg.ParallelGrain+1, cfg.K)
	out := la.NewVector(cfg.K)
	stream := ItemStream(1, 0, SideU, 0)
	// Warm via wsA, then wsB must run allocation-free off the same arena.
	UpdateItem(wsA, KernelParallelCholesky, &cfg, cols, vals, other, hyper, stream, nil, nil, out)
	UpdateItem(wsB, KernelParallelCholesky, &cfg, cols, vals, other, hyper, stream, nil, nil, out)
	allocs := testing.AllocsPerRun(20, func() {
		UpdateItem(wsB, KernelParallelCholesky, &cfg, cols, vals, other, hyper, stream, nil, nil, out)
	})
	if allocs != 0 {
		t.Fatalf("shared-arena workspace allocated %v/op in steady state", allocs)
	}
}
