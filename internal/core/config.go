// Package core implements the Bayesian Probabilistic Matrix Factorization
// Gibbs sampler of Salakhutdinov & Mnih (ICML 2008) exactly as the paper's
// Algorithm 1 describes it, together with the three item-update kernels of
// Figure 2 (sequential rank-one update, sequential Cholesky, parallel
// Cholesky) and the hybrid kernel selection that underlies the multi-core
// and distributed engines.
//
// Every random draw comes from a stream keyed by (seed, iteration, side,
// item) — see package rng — and every reduction that feeds back into the
// Markov chain (the hyperparameter moments) is grouped by an explicit,
// configurable boundary list combined in a fixed order. Together these two
// properties make the sampler's output a pure function of (data, Config),
// independent of engine, thread count and rank count: the multi-core and
// distributed engines are tested to reproduce the sequential sampler
// bit-for-bit.
package core

import "fmt"

// Side selects the user or movie half of the model in stream keys.
type Side uint64

// Stream-key constants.
const (
	SideU Side = 0 // users / compounds
	SideV Side = 1 // movies / targets
)

// Config holds every knob of the sampler. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// K is the number of latent features (paper: K << M, N).
	K int
	// Alpha is the observation precision of R_ij ~ N(u_iᵀv_j, 1/Alpha).
	Alpha float64
	// Iters is the total number of Gibbs iterations.
	Iters int
	// Burnin is the number of initial iterations excluded from the
	// posterior-mean predictor.
	Burnin int
	// Seed drives all keyed random streams.
	Seed uint64

	// RankOneMax: items with nnz <= RankOneMax use the sequential
	// rank-one-update kernel (cheapest for very sparse items, Fig 2).
	RankOneMax int
	// KernelThreshold: items with nnz >= KernelThreshold use the parallel
	// Cholesky kernel (paper: 1000 ratings); items in between use the
	// sequential Cholesky kernel.
	KernelThreshold int
	// ParallelGrain is the number of ratings per accumulation chunk in the
	// parallel kernel. The chunk decomposition is a function of nnz only,
	// so results do not depend on worker count.
	ParallelGrain int

	// MomentGroupsU/V are sorted row-boundary lists (starting 0, ending
	// M resp. N) defining the deterministic grouped reduction of the
	// hyperparameter moments. nil means a single group (fully sequential
	// summation). The distributed engine uses its partition boundaries;
	// to compare engines bit-for-bit, configure both with the same list.
	MomentGroupsU []int
	MomentGroupsV []int

	// ClampMin/ClampMax clip predictions to the rating range (e.g. 0.5–5
	// for MovieLens). ClampMax <= ClampMin disables clipping.
	ClampMin, ClampMax float64
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: K = 32 latent features, observation precision 2, hybrid
// kernel threshold at 1000 ratings.
func DefaultConfig() Config {
	return Config{
		K:               32,
		Alpha:           2.0,
		Iters:           20,
		Burnin:          10,
		Seed:            42,
		RankOneMax:      24,
		KernelThreshold: 1000,
		ParallelGrain:   512,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("core: K must be >= 1, got %d", c.K)
	case c.Alpha <= 0:
		return fmt.Errorf("core: Alpha must be > 0, got %g", c.Alpha)
	case c.Iters < 1:
		return fmt.Errorf("core: Iters must be >= 1, got %d", c.Iters)
	case c.Burnin < 0 || c.Burnin >= c.Iters:
		return fmt.Errorf("core: Burnin must be in [0, Iters), got %d", c.Burnin)
	case c.ParallelGrain < 1:
		return fmt.Errorf("core: ParallelGrain must be >= 1, got %d", c.ParallelGrain)
	case c.RankOneMax < 0:
		return fmt.Errorf("core: RankOneMax must be >= 0, got %d", c.RankOneMax)
	case c.KernelThreshold <= c.RankOneMax:
		return fmt.Errorf("core: KernelThreshold (%d) must exceed RankOneMax (%d)",
			c.KernelThreshold, c.RankOneMax)
	}
	return nil
}

// stream key tags (arbitrary distinct constants mixed into stream keys).
const (
	keyInit  uint64 = 0x1171a9
	keyHyper uint64 = 0x22be72
	keyItem  uint64 = 0x33c7e3
)
