package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sparse"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Iters = 0 },
		func(c *Config) { c.Burnin = c.Iters },
		func(c *Config) { c.ParallelGrain = 0 },
		func(c *Config) { c.RankOneMax = -1 },
		func(c *Config) { c.KernelThreshold = c.RankOneMax },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestSelectKernel(t *testing.T) {
	c := DefaultConfig() // RankOneMax 24, threshold 1000
	if c.SelectKernel(0) != KernelRankOne || c.SelectKernel(24) != KernelRankOne {
		t.Fatal("small items must use the rank-one kernel")
	}
	if c.SelectKernel(25) != KernelCholesky || c.SelectKernel(999) != KernelCholesky {
		t.Fatal("medium items must use the serial Cholesky kernel")
	}
	if c.SelectKernel(1000) != KernelParallelCholesky || c.SelectKernel(1e6) != KernelParallelCholesky {
		t.Fatal("heavy items must use the parallel Cholesky kernel")
	}
}

func TestKernelNames(t *testing.T) {
	if KernelRankOne.String() != "rankupdate" ||
		KernelCholesky.String() != "serial_chol" ||
		KernelParallelCholesky.String() != "parallel_chol" {
		t.Fatal("kernel names must match Figure 2's legend")
	}
}

// momentsNaive computes moments by definition for comparison.
func momentsNaive(x *la.Matrix) (n float64, sum la.Vector, sumsq *la.Matrix) {
	k := x.Cols
	sum = la.NewVector(k)
	sumsq = la.NewMatrix(k, k)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		n++
		la.Axpy(1, row, sum)
		la.SyrLower(1, row, sumsq)
	}
	return
}

func TestMomentsGroupedMatchesNaive(t *testing.T) {
	r := rng.New(3)
	k := 5
	x := la.NewMatrix(37, k)
	r.FillNorm(x.Data)
	want := NewMoments(k)
	want.AccumulateRows(x, 0, 37)
	for _, groups := range [][]int{nil, {0, 37}, {0, 10, 20, 37}, {0, 1, 36, 37}} {
		g := GroupBoundaries(groups, 37)
		got := MomentsGrouped(x, g, k, nil)
		if got.N != want.N {
			t.Fatalf("groups %v: N = %v", groups, got.N)
		}
		for i := range got.Sum {
			if math.Abs(got.Sum[i]-want.Sum[i]) > 1e-12 {
				t.Fatalf("groups %v: Sum[%d] differs", groups, i)
			}
		}
		if la.MaxAbsDiff(got.SumSq, want.SumSq) > 1e-12 {
			t.Fatalf("groups %v: SumSq differs", groups)
		}
	}
}

func TestMomentsGroupedDeterministicAcrossParallelism(t *testing.T) {
	// Group partials computed in parallel must combine to bit-identical
	// totals because combination order is fixed.
	r := rng.New(8)
	k := 4
	x := la.NewMatrix(1000, k)
	r.FillNorm(x.Data)
	groups := []int{0, 100, 350, 720, 1000}
	seq := MomentsGrouped(x, groups, k, nil)
	pool := sched.NewPool(4)
	defer pool.Close()
	par := MomentsGrouped(x, groups, k, func(n int, run func(g int)) {
		pool.ParallelFor(0, n, 1, func(_ *sched.Worker, lo, hi int) {
			for g := lo; g < hi; g++ {
				run(g)
			}
		})
	})
	if seq.N != par.N || la.MaxAbsDiff(seq.SumSq, par.SumSq) != 0 {
		t.Fatal("grouped moments not deterministic under parallel execution")
	}
	for i := range seq.Sum {
		if seq.Sum[i] != par.Sum[i] {
			t.Fatal("grouped moment sums not bit-identical")
		}
	}
}

func TestGroupBoundariesValidation(t *testing.T) {
	if got := GroupBoundaries(nil, 10); len(got) != 2 || got[0] != 0 || got[1] != 10 {
		t.Fatalf("nil boundaries: %v", got)
	}
	for _, bad := range [][]int{{1, 10}, {0, 5}, {0, 7, 3, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("boundaries %v must panic", bad)
				}
			}()
			GroupBoundaries(bad, 10)
		}()
	}
}

func TestSampleHyperPosteriorConcentrates(t *testing.T) {
	// With many rows drawn from N(mu*, I), the sampled hyper mean must be
	// near mu* and the precision near identity.
	k := 4
	n := 20000
	r := rng.New(17)
	truth := la.Vector{1, -2, 0.5, 3}
	x := la.NewMatrix(n, k)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		r.FillNorm(row)
		la.Axpy(1, truth, row)
	}
	m := NewMoments(k)
	m.AccumulateRows(x, 0, n)
	prior := DefaultNWPrior(k)
	h := NewHyper(k)
	SampleHyper(prior, m, rng.New(55), h)
	for i := range truth {
		if math.Abs(h.Mu[i]-truth[i]) > 0.05 {
			t.Fatalf("hyper mean[%d] = %v, want ~%v", i, h.Mu[i], truth[i])
		}
	}
	// Precision should be close to identity (covariance was I).
	for i := 0; i < k; i++ {
		if math.Abs(h.Lambda.At(i, i)-1) > 0.1 {
			t.Fatalf("hyper precision diag[%d] = %v, want ~1", i, h.Lambda.At(i, i))
		}
	}
	// LambdaMu cache must equal Λ·μ.
	want := la.NewVector(k)
	la.SymvLower(h.Lambda, h.Mu, want)
	for i := range want {
		if h.LambdaMu[i] != want[i] {
			t.Fatal("LambdaMu cache inconsistent")
		}
	}
}

func TestSampleHyperEmptyMomentsFallsBackToPrior(t *testing.T) {
	k := 3
	prior := DefaultNWPrior(k)
	h := NewHyper(k)
	m := NewMoments(k)
	SampleHyper(prior, m, rng.New(2), h) // must not panic
	// Sampled precision must be SPD.
	l := la.NewMatrix(k, k)
	if err := la.Cholesky(h.Lambda, l); err != nil {
		t.Fatalf("prior-only hyper draw not SPD: %v", err)
	}
}

func TestSampleHyperDeterministic(t *testing.T) {
	k := 4
	r := rng.New(9)
	x := la.NewMatrix(100, k)
	r.FillNorm(x.Data)
	m := NewMoments(k)
	m.AccumulateRows(x, 0, 100)
	prior := DefaultNWPrior(k)
	h1, h2 := NewHyper(k), NewHyper(k)
	SampleHyper(prior, m, HyperStream(7, 3, SideU), h1)
	SampleHyper(prior, m, HyperStream(7, 3, SideU), h2)
	if la.MaxAbsDiff(h1.Lambda, h2.Lambda) != 0 {
		t.Fatal("hyper draw not deterministic for equal streams")
	}
	for i := range h1.Mu {
		if h1.Mu[i] != h2.Mu[i] {
			t.Fatal("hyper mean draw not deterministic")
		}
	}
	SampleHyper(prior, m, HyperStream(7, 4, SideU), h2)
	if la.MaxAbsDiff(h1.Lambda, h2.Lambda) == 0 {
		t.Fatal("different iterations must draw different hypers")
	}
}

// buildItemProblem creates a small update problem: nnz partner rows and
// ratings consistent with a known factor.
func buildItemProblem(nnz, k int, seed uint64) (cols []int32, vals []float64, other *la.Matrix) {
	r := rng.New(seed)
	nOther := nnz + 10
	other = la.NewMatrix(nOther, k)
	r.FillNorm(other.Data)
	truth := la.NewVector(k)
	r.FillNorm(truth)
	cols = make([]int32, nnz)
	vals = make([]float64, nnz)
	perm := make([]int, nOther)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < nnz; i++ {
		j := i + r.Intn(nOther-i)
		perm[i], perm[j] = perm[j], perm[i]
		cols[i] = int32(perm[i])
		vals[i] = la.Dot(other.Row(perm[i]), truth) + 0.1*r.Norm()
	}
	return
}

// updateWith runs UpdateItem with the given kernel and returns the result.
func updateWith(kern Kernel, cfg *Config, cols []int32, vals []float64,
	other *la.Matrix, hyper *Hyper, pool *sched.Pool) la.Vector {
	ws := NewWorkspace(cfg.K)
	out := la.NewVector(cfg.K)
	stream := ItemStream(cfg.Seed, 0, SideU, 0)
	UpdateItem(ws, kern, cfg, cols, vals, other, hyper, stream, pool, nil, out)
	return out
}

func TestKernelsAgree(t *testing.T) {
	// All three kernels sample from the same posterior with the same
	// stream; results must agree to numerical tolerance (they differ only
	// in summation grouping and factorization path).
	cfg := DefaultConfig()
	cfg.K = 8
	pool := sched.NewPool(2)
	defer pool.Close()
	hyper := NewHyper(cfg.K)
	for _, nnz := range []int{1, 5, 30, 200, 1500} {
		cols, vals, other := buildItemProblem(nnz, cfg.K, uint64(nnz))
		r1 := updateWith(KernelRankOne, &cfg, cols, vals, other, hyper, nil)
		r2 := updateWith(KernelCholesky, &cfg, cols, vals, other, hyper, nil)
		r3 := updateWith(KernelParallelCholesky, &cfg, cols, vals, other, hyper, pool)
		for i := range r1 {
			if math.Abs(r1[i]-r2[i]) > 1e-6*(1+math.Abs(r2[i])) {
				t.Fatalf("nnz=%d: rank-one vs serial chol differ at %d: %v vs %v",
					nnz, i, r1[i], r2[i])
			}
			if math.Abs(r3[i]-r2[i]) > 1e-6*(1+math.Abs(r2[i])) {
				t.Fatalf("nnz=%d: parallel vs serial chol differ at %d: %v vs %v",
					nnz, i, r3[i], r2[i])
			}
		}
	}
}

func TestParallelKernelDeterministicAcrossPoolSizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 8
	hyper := NewHyper(cfg.K)
	cols, vals, other := buildItemProblem(3000, cfg.K, 5)
	var ref la.Vector
	for _, workers := range []int{1, 3, 6} {
		pool := sched.NewPool(workers)
		got := updateWith(KernelParallelCholesky, &cfg, cols, vals, other, hyper, pool)
		pool.Close()
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("parallel kernel differs across pool sizes at %d", i)
			}
		}
	}
	// The nil-pool (inline) execution of the same kernel must match
	// bit-for-bit: both the chunked accumulation and the blocked
	// factorization are schedule-independent task DAGs.
	got := updateWith(KernelParallelCholesky, &cfg, cols, vals, other, hyper, nil)
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("nil-pool parallel kernel deviates at %d: %v vs %v", i, got[i], ref[i])
		}
	}
}

func TestUpdateItemPosteriorMean(t *testing.T) {
	// With huge alpha and many ratings, the posterior mean must recover
	// the least-squares solution; sampled noise is tiny.
	cfg := DefaultConfig()
	cfg.K = 4
	cfg.Alpha = 1e6
	hyper := NewHyper(cfg.K)
	r := rng.New(31)
	truth := la.Vector{0.5, -1, 2, 0.25}
	nnz := 500
	other := la.NewMatrix(nnz, cfg.K)
	r.FillNorm(other.Data)
	cols := make([]int32, nnz)
	vals := make([]float64, nnz)
	for i := 0; i < nnz; i++ {
		cols[i] = int32(i)
		vals[i] = la.Dot(other.Row(i), truth)
	}
	got := updateWith(KernelCholesky, &cfg, cols, vals, other, hyper, nil)
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-2 {
			t.Fatalf("posterior mean[%d] = %v, want %v", i, got[i], truth[i])
		}
	}
}

func TestUpdateItemNoRatings(t *testing.T) {
	// An item with zero ratings must sample from the hyper prior without
	// panicking.
	cfg := DefaultConfig()
	cfg.K = 6
	hyper := NewHyper(cfg.K)
	other := la.NewMatrix(1, cfg.K)
	out := updateWith(KernelRankOne, &cfg, nil, nil, other, hyper, nil)
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("NaN sample for ratingless item")
		}
	}
}

func TestInitFactorsDeterministic(t *testing.T) {
	a := InitFactors(42, SideU, 50, 8)
	b := InitFactors(42, SideU, 50, 8)
	if la.MaxAbsDiff(a, b) != 0 {
		t.Fatal("InitFactors not deterministic")
	}
	c := InitFactors(42, SideV, 50, 8)
	if la.MaxAbsDiff(a, c) == 0 {
		t.Fatal("sides must have distinct init")
	}
	// Row i's init must not depend on the matrix height (partitionable).
	d := InitFactors(42, SideU, 100, 8)
	for i := 0; i < 50; i++ {
		for j := 0; j < 8; j++ {
			if a.At(i, j) != d.At(i, j) {
				t.Fatal("row init depends on matrix height")
			}
		}
	}
}

func tinyProblem(t *testing.T, seed uint64) *Problem {
	t.Helper()
	ds := datagen.Generate(datagen.Tiny(seed))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, seed)
	return NewProblem(train, test)
}

func TestSamplerRunsAndImprovesRMSE(t *testing.T) {
	ds := datagen.Generate(datagen.Small(3))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, 3)
	prob := NewProblem(train, test)
	cfg := DefaultConfig()
	cfg.K = 8
	cfg.Iters = 12
	cfg.Burnin = 6
	s, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if len(res.AvgRMSE) != cfg.Iters {
		t.Fatalf("got %d RMSE entries", len(res.AvgRMSE))
	}
	first, last := res.SampleRMSE[0], res.FinalRMSE()
	if !(last < first) {
		t.Fatalf("RMSE did not improve: %v -> %v", first, last)
	}
	// The planted noise floor is 0.4; posterior-mean RMSE should approach
	// it (generously bounded here).
	if last > 0.8 {
		t.Fatalf("final RMSE %v far above noise floor 0.4", last)
	}
	if res.ItemUpdates != int64(cfg.Iters)*int64(train.M+train.N) {
		t.Fatalf("ItemUpdates = %d", res.ItemUpdates)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	prob := tinyProblem(t, 5)
	cfg := DefaultConfig()
	cfg.K = 4
	cfg.Iters = 4
	cfg.Burnin = 2
	run := func() *Result {
		s, err := NewSampler(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	r1, r2 := run(), run()
	if la.MaxAbsDiff(r1.U, r2.U) != 0 || la.MaxAbsDiff(r1.V, r2.V) != 0 {
		t.Fatal("sequential sampler not bit-deterministic")
	}
	for i := range r1.AvgRMSE {
		if r1.AvgRMSE[i] != r2.AvgRMSE[i] {
			t.Fatal("RMSE trace not deterministic")
		}
	}
}

func TestSamplerSeedChangesResult(t *testing.T) {
	prob := tinyProblem(t, 5)
	cfg := DefaultConfig()
	cfg.K = 4
	cfg.Iters = 2
	cfg.Burnin = 1
	s1, _ := NewSampler(cfg, prob)
	cfg.Seed = 43
	s2, _ := NewSampler(cfg, prob)
	r1, r2 := s1.Run(), s2.Run()
	if la.MaxAbsDiff(r1.U, r2.U) == 0 {
		t.Fatal("different seeds gave identical chains")
	}
}

func TestSamplerMomentGroupingChangesBitsOnly(t *testing.T) {
	// Different moment groupings give different FP rounding, hence
	// different chains, but statistically equivalent results. Check RMSE
	// stays in the same ballpark.
	prob := tinyProblem(t, 11)
	cfg := DefaultConfig()
	cfg.K = 4
	cfg.Iters = 6
	cfg.Burnin = 3
	s1, _ := NewSampler(cfg, prob)
	r1 := s1.Run()
	m, n := prob.Dims()
	cfg.MomentGroupsU = []int{0, m / 2, m}
	cfg.MomentGroupsV = []int{0, n / 3, n}
	s2, _ := NewSampler(cfg, prob)
	r2 := s2.Run()
	if math.Abs(r1.FinalRMSE()-r2.FinalRMSE()) > 0.3 {
		t.Fatalf("grouping changed RMSE too much: %v vs %v",
			r1.FinalRMSE(), r2.FinalRMSE())
	}
}

func TestPredictorClamp(t *testing.T) {
	test := []sparse.Entry{{Row: 0, Col: 0, Val: 5}}
	u := la.NewMatrixFrom([][]float64{{10}})
	v := la.NewMatrixFrom([][]float64{{10}})
	p := NewPredictor(test, 0.5, 5)
	sr, _ := p.Update(u, v, false)
	// Prediction 100 clamps to 5 → zero error.
	if sr != 0 {
		t.Fatalf("clamped RMSE = %v, want 0", sr)
	}
	if RMSE(u, v, test, 0, 0) != 95 {
		t.Fatalf("unclamped RMSE = %v, want 95", RMSE(u, v, test, 0, 0))
	}
}

func TestPredictorAveragingBeatsLastSample(t *testing.T) {
	// Averaging a noisy unbiased predictor must reduce RMSE vs one sample.
	r := rng.New(5)
	test := make([]sparse.Entry, 200)
	for i := range test {
		test[i] = sparse.Entry{Row: int32(i), Col: 0, Val: 1}
	}
	v := la.NewMatrixFrom([][]float64{{1}})
	p := NewPredictor(test, 0, 0)
	var lastSample float64
	for s := 0; s < 30; s++ {
		u := la.NewMatrix(200, 1)
		for i := 0; i < 200; i++ {
			u.Set(i, 0, 1+0.5*r.Norm())
		}
		sr, _ := p.Update(u, v, true)
		lastSample = sr
	}
	_, avg := p.Update(la.NewMatrixFrom(rowsOf(200, 1.0)), v, false)
	if !(avg < lastSample) {
		t.Fatalf("averaged RMSE %v not below sample RMSE %v", avg, lastSample)
	}
}

func rowsOf(n int, v float64) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{v}
	}
	return rows
}

func TestPredictorEmptyTestSet(t *testing.T) {
	p := NewPredictor(nil, 0, 0)
	sr, ar := p.Update(la.NewMatrix(1, 1), la.NewMatrix(1, 1), true)
	if !math.IsNaN(sr) || !math.IsNaN(ar) {
		t.Fatal("empty test set must report NaN RMSE")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Iters: 3, ItemUpdates: 10, AvgRMSE: []float64{1, 0.9}}
	if r.String() == "" {
		t.Fatal("empty summary")
	}
	if (&Result{}).FinalRMSE() != 0 {
		t.Fatal("FinalRMSE on empty result must be 0")
	}
}
