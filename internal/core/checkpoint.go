package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/la"
)

// Checkpoint is a serializable snapshot of a Gibbs chain after some
// iteration. Because every random draw is keyed by (seed, iteration,
// side, item), resuming from a checkpoint continues the *exact* chain:
// a run checkpointed at iteration t and resumed reproduces an
// uninterrupted run bit-for-bit — with any engine, since all engines
// sample the same chain. (A production property the paper's 15-day
// industrial runs would need.)
type Checkpoint struct {
	K        int
	NextIter int // first iteration to execute on resume
	Seed     uint64
	U, V     *la.Matrix

	// Predictor state (posterior-mean accumulators).
	PredSum   []float64
	PredSumSq []float64
	NSamples  int

	// Result trace so far.
	SampleRMSE, AvgRMSE []float64
	KernelCounts        [3]int64
	ItemUpdates         int64
}

const ckptMagic = "BPMFCKPT2\n"

// Checkpoint snapshots the sampler after the iterations it has executed.
func (s *Sampler) Checkpoint() *Checkpoint {
	return &Checkpoint{
		K:            s.Cfg.K,
		NextIter:     len(s.res.AvgRMSE),
		Seed:         s.Cfg.Seed,
		U:            s.U.Clone(),
		V:            s.V.Clone(),
		PredSum:      append([]float64(nil), s.pred.sum...),
		PredSumSq:    append([]float64(nil), s.pred.sumSq...),
		NSamples:     s.pred.nSamples,
		SampleRMSE:   append([]float64(nil), s.res.SampleRMSE...),
		AvgRMSE:      append([]float64(nil), s.res.AvgRMSE...),
		KernelCounts: s.res.KernelCounts,
		ItemUpdates:  s.res.ItemUpdates,
	}
}

// ResumeSampler reconstructs a sampler mid-chain from a checkpoint. cfg
// must match the checkpointed run (K and Seed are verified; the rest is
// the caller's contract, as with any restart script).
func ResumeSampler(cfg Config, prob *Problem, c *Checkpoint) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K != c.K {
		return nil, fmt.Errorf("core: checkpoint K=%d, config K=%d", c.K, cfg.K)
	}
	if cfg.Seed != c.Seed {
		return nil, fmt.Errorf("core: checkpoint seed=%d, config seed=%d", c.Seed, cfg.Seed)
	}
	m, n := prob.Dims()
	if c.U.Rows != m || c.V.Rows != n {
		return nil, fmt.Errorf("core: checkpoint shape %dx%d does not match problem %dx%d",
			c.U.Rows, c.V.Rows, m, n)
	}
	if len(c.PredSum) != len(prob.Test) {
		return nil, fmt.Errorf("core: checkpoint has %d test accumulators, problem has %d",
			len(c.PredSum), len(prob.Test))
	}
	s := &Sampler{
		Cfg:   cfg,
		Prob:  prob,
		Prior: DefaultNWPrior(cfg.K),
		U:     c.U.Clone(),
		V:     c.V.Clone(),
		HU:    NewHyper(cfg.K),
		HV:    NewHyper(cfg.K),
		pred:  NewPredictor(prob.Test, cfg.ClampMin, cfg.ClampMax),
		ws:    NewWorkspace(cfg.K),
		hws:   NewHyperWorkspace(cfg.K),
		mws:   NewMomentsWorkspace(cfg.K),
	}
	s.pred.Alpha = cfg.Alpha
	copy(s.pred.sum, c.PredSum)
	copy(s.pred.sumSq, c.PredSumSq)
	s.pred.nSamples = c.NSamples
	s.res.SampleRMSE = append(make([]float64, 0, cfg.Iters), c.SampleRMSE...)
	s.res.AvgRMSE = append(make([]float64, 0, cfg.Iters), c.AvgRMSE...)
	s.res.KernelCounts = c.KernelCounts
	s.res.ItemUpdates = c.ItemUpdates
	return s, nil
}

// RunFrom executes the remaining iterations of a resumed chain (from
// NextIter through Cfg.Iters-1).
func (s *Sampler) RunFrom(firstIter int) *Result {
	start := time.Now()
	for it := firstIter; it < s.Cfg.Iters; it++ {
		s.Step(it)
	}
	s.res.Elapsed = time.Since(start)
	s.res.U, s.res.V = s.U, s.V
	s.res.Iters = s.Cfg.Iters
	s.res.Intervals = s.pred.Intervals()
	return &s.res
}

// Write serializes the checkpoint (own little-endian binary format; no
// external dependencies). Every write is error-checked: a full disk or a
// broken pipe surfaces as an error instead of a silently truncated file
// that would only be discovered at resume/serve time.
func (c *Checkpoint) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return fmt.Errorf("core: writing checkpoint magic: %w", err)
	}
	var err error
	writeU64 := func(v uint64) {
		if err == nil {
			err = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	writeU64(uint64(c.K))
	writeU64(uint64(c.NextIter))
	writeU64(c.Seed)
	writeU64(uint64(c.U.Rows))
	writeU64(uint64(c.V.Rows))
	writeU64(uint64(len(c.PredSum)))
	writeU64(uint64(c.NSamples))
	writeU64(uint64(len(c.SampleRMSE)))
	writeU64(uint64(c.ItemUpdates))
	for _, kc := range c.KernelCounts {
		writeU64(uint64(kc))
	}
	writeFloats := func(v []float64) {
		for _, x := range v {
			writeU64(math.Float64bits(x))
		}
	}
	writeFloats(c.U.Data)
	writeFloats(c.V.Data)
	writeFloats(c.PredSum)
	writeFloats(c.PredSumSq)
	writeFloats(c.SampleRMSE)
	writeFloats(c.AvgRMSE)
	if err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flushing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by Write.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("core: not a BPMF checkpoint (magic %q)", magic)
	}
	var err error
	readU64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	c := &Checkpoint{}
	c.K = int(readU64())
	c.NextIter = int(readU64())
	c.Seed = readU64()
	uRows := int(readU64())
	vRows := int(readU64())
	nTest := int(readU64())
	c.NSamples = int(readU64())
	nTrace := int(readU64())
	c.ItemUpdates = int64(readU64())
	for i := range c.KernelCounts {
		c.KernelCounts[i] = int64(readU64())
	}
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint header: %w", err)
	}
	const maxDim = 1 << 31
	if c.K <= 0 || c.K > 1<<16 || uRows < 0 || uRows > maxDim || vRows < 0 || vRows > maxDim ||
		nTest < 0 || nTest > maxDim || nTrace < 0 || nTrace > 1<<24 ||
		c.NextIter < 0 || c.NSamples < 0 || c.ItemUpdates < 0 {
		return nil, fmt.Errorf("core: implausible checkpoint header (K=%d U=%d V=%d test=%d)",
			c.K, uRows, vRows, nTest)
	}
	// Validate the total element count the header implies before any
	// allocation: a corrupt header must produce an error, not a
	// multi-gigabyte make() — and the products are computed in int64, so a
	// crafted rows*K can never overflow int on 32-bit platforms either.
	// 1<<31 float64 elements = 16 GiB, already beyond any plausible
	// checkpoint; real industrial runs (millions of rows x K <= 1024) stay
	// orders of magnitude below it.
	const maxElems = 1 << 31
	total := int64(uRows)*int64(c.K) + int64(vRows)*int64(c.K) +
		2*int64(nTest) + 2*int64(nTrace)
	if int64(uRows)*int64(c.K) > maxElems || int64(vRows)*int64(c.K) > maxElems || total > maxElems {
		return nil, fmt.Errorf("core: checkpoint header implies %d float64s (K=%d U=%d V=%d test=%d); refusing to allocate",
			total, c.K, uRows, vRows, nTest)
	}
	// readFloats grows its slice in bounded chunks instead of one up-front
	// make(n): a header that promises more data than the stream holds
	// costs at most one chunk of over-allocation before the read error
	// stops it.
	const floatChunk = 1 << 16
	readFloats := func(n int) []float64 {
		var v []float64
		for len(v) < n && err == nil {
			c := n - len(v)
			if c > floatChunk {
				c = floatChunk
			}
			start := len(v)
			v = append(v, make([]float64, c)...)
			for i := start; i < len(v); i++ {
				v[i] = math.Float64frombits(readU64())
			}
		}
		return v
	}
	c.U = &la.Matrix{Rows: uRows, Cols: c.K, Data: readFloats(uRows * c.K)}
	c.V = &la.Matrix{Rows: vRows, Cols: c.K, Data: readFloats(vRows * c.K)}
	c.PredSum = readFloats(nTest)
	c.PredSumSq = readFloats(nTest)
	c.SampleRMSE = readFloats(nTrace)
	c.AvgRMSE = readFloats(nTrace)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint body: %w", err)
	}
	return c, nil
}
