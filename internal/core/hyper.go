package core

import (
	"math"

	"repro/internal/la"
	"repro/internal/rng"
)

// NWPrior is the fixed, uninformative Normal–Wishart hyperprior the paper
// places on each side's Gaussian prior: Λ ~ W(W0, ν0), μ | Λ ~
// N(μ0, (β0 Λ)⁻¹). Defaults follow Salakhutdinov & Mnih: μ0 = 0, β0 = 2,
// ν0 = K, W0 = I.
type NWPrior struct {
	Mu0   la.Vector
	Beta0 float64
	Nu0   float64
	W0Inv *la.Matrix // inverse of the scale matrix (identity by default)
}

// DefaultNWPrior returns the standard BPMF hyperprior for K latent
// features.
func DefaultNWPrior(k int) NWPrior {
	return NWPrior{
		Mu0:   la.NewVector(k),
		Beta0: 2,
		Nu0:   float64(k),
		W0Inv: la.Eye(k),
	}
}

// Hyper is one side's sampled prior: mean μ, precision Λ and the lower
// Cholesky factor of Λ (precomputed once per iteration; the rank-one
// item-update kernel starts from it).
type Hyper struct {
	Mu         la.Vector
	Lambda     *la.Matrix
	LambdaChol *la.Matrix
	// LambdaMu caches Λ·μ, the constant part of every item's posterior
	// mean equation on this side for this iteration.
	LambdaMu la.Vector
}

// NewHyper allocates a Hyper for K latent features, initialized to the
// standard-normal prior (Λ = I, μ = 0).
func NewHyper(k int) *Hyper {
	h := &Hyper{
		Mu:         la.NewVector(k),
		Lambda:     la.Eye(k),
		LambdaChol: la.Eye(k),
		LambdaMu:   la.NewVector(k),
	}
	return h
}

// Moments are the sufficient statistics of one side's factor rows used by
// the Normal–Wishart posterior: count, Σx and Σx·xᵀ (full square stored,
// lower triangle authoritative).
type Moments struct {
	N     float64
	Sum   la.Vector
	SumSq *la.Matrix
}

// NewMoments allocates zeroed moments for K latent features.
func NewMoments(k int) *Moments {
	return &Moments{Sum: la.NewVector(k), SumSq: la.NewMatrix(k, k)}
}

// Zero resets m to the empty statistics.
func (m *Moments) Zero() {
	m.N = 0
	m.Sum.Zero()
	m.SumSq.Zero()
}

// AccumulateRows adds rows [lo, hi) of x to the moments, iterating rows in
// ascending order (the canonical order for reproducible reductions).
func (m *Moments) AccumulateRows(x *la.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := x.Row(i)
		m.N++
		la.Axpy(1, row, m.Sum)
		la.SyrLower(1, row, m.SumSq)
	}
}

// Add combines other into m (m += other). Combining group partials in
// ascending group order reproduces a fixed summation tree.
func (m *Moments) Add(other *Moments) {
	m.N += other.N
	la.Axpy(1, other.Sum, m.Sum)
	m.SumSq.Add(other.SumSq)
}

// GroupBoundaries returns the moment-group boundary list for n rows: the
// configured list if non-nil (validated), else the single group [0, n].
func GroupBoundaries(groups []int, n int) []int {
	if groups == nil {
		return []int{0, n}
	}
	if len(groups) < 2 || groups[0] != 0 || groups[len(groups)-1] != n {
		panic("core: moment group boundaries must start at 0 and end at n")
	}
	for i := 1; i < len(groups); i++ {
		if groups[i] < groups[i-1] {
			panic("core: moment group boundaries must be non-decreasing")
		}
	}
	return groups
}

// MomentsGrouped computes the moments of rows [0, n) of x using the given
// boundary list: per-group partials accumulated row-ascending, combined in
// ascending group order. runAll, if non-nil, must invoke run(g) exactly
// once for every g in [0, nGroups) — in any order, on any goroutines — and
// return only after all invocations complete; engines pass a parallel-for
// here. nil runs the groups sequentially. Because the combine order is
// fixed, the result is bit-identical either way. It is a convenience
// wrapper over MomentsGroupedWS that allocates a fresh workspace per call;
// engines hold one workspace per runner and call MomentsGroupedWS
// directly, so their per-iteration steady state allocates nothing here.
func MomentsGrouped(x *la.Matrix, groups []int, k int,
	runAll func(nGroups int, run func(g int))) *Moments {
	return MomentsGroupedWS(x, groups, k, runAll, NewMomentsWorkspace(k))
}

// MomentsWorkspace holds the reusable per-group partials and combined
// total of a grouped moment reduction. One workspace must not be used by
// two concurrent reductions (the groups *within* one reduction may run
// concurrently — they touch disjoint partials).
type MomentsWorkspace struct {
	k        int
	partials []*Moments
	total    *Moments
}

// NewMomentsWorkspace allocates a moments workspace for K latent features;
// the per-group partial pool grows on first use and is reused after.
func NewMomentsWorkspace(k int) *MomentsWorkspace {
	return &MomentsWorkspace{k: k, total: NewMoments(k)}
}

// MomentsGroupedWS is the allocation-free grouped moment reduction: the
// partials and the returned total are leased from ws, so the result is
// only valid until the workspace's next reduction (SampleHyperWS consumes
// it immediately).
func MomentsGroupedWS(x *la.Matrix, groups []int, k int,
	runAll func(nGroups int, run func(g int)), ws *MomentsWorkspace) *Moments {
	if ws.k != k {
		panic("core: MomentsGroupedWS workspace built for a different K")
	}
	nb := len(groups) - 1
	for len(ws.partials) < nb {
		ws.partials = append(ws.partials, NewMoments(k))
	}
	if runAll == nil {
		// Method call, not a closure: the inline path stays allocation-free.
		for g := 0; g < nb; g++ {
			ws.runGroup(g, x, groups)
		}
	} else {
		runAll(nb, func(g int) { ws.runGroup(g, x, groups) })
	}
	total := ws.total
	total.Zero()
	for g := 0; g < nb; g++ {
		total.Add(ws.partials[g])
	}
	return total
}

// runGroup accumulates group g's rows into its leased partial. Groups
// touch disjoint partials, so any set of groups may run concurrently.
func (ws *MomentsWorkspace) runGroup(g int, x *la.Matrix, groups []int) {
	p := ws.partials[g]
	p.Zero()
	p.AccumulateRows(x, groups[g], groups[g+1])
}

// HyperStream returns the keyed stream for side's hyperparameter draw at
// the given iteration. All engines (and all ranks of the distributed
// engine) derive the identical stream, so after a deterministic moment
// reduction every rank draws the same hyperparameters with no broadcast.
func HyperStream(seed uint64, iter int, side Side) *rng.Stream {
	return rng.NewKeyed(seed, keyHyper, uint64(iter), uint64(side))
}

// ItemStream returns the keyed stream for one item's posterior draw.
func ItemStream(seed uint64, iter int, side Side, item int) *rng.Stream {
	return rng.NewKeyed(seed, keyItem, uint64(iter), uint64(side), uint64(item))
}

// InitStream returns the keyed stream for one item's factor initialization.
func InitStream(seed uint64, side Side, item int) *rng.Stream {
	return rng.NewKeyed(seed, keyInit, uint64(side), uint64(item))
}

// HyperWorkspace holds the scratch of one Normal–Wishart posterior draw so
// the per-iteration hyperparameter sampling allocates nothing in steady
// state. One workspace must not be shared by concurrent draws.
type HyperWorkspace struct {
	xbar, diff, muStar, scratch la.Vector
	wInv, wStar, wStarChol      *la.Matrix
	wInvChol, scaled            *la.Matrix
	bartA, bartB                *la.Matrix // Wishart Bartlett scratch
	invE, invCol                la.Vector  // InvFromCholWS scratch
}

// NewHyperWorkspace allocates the scratch for K latent features.
func NewHyperWorkspace(k int) *HyperWorkspace {
	return &HyperWorkspace{
		xbar: la.NewVector(k), diff: la.NewVector(k),
		muStar: la.NewVector(k), scratch: la.NewVector(k),
		wInv: la.NewMatrix(k, k), wStar: la.NewMatrix(k, k),
		wStarChol: la.NewMatrix(k, k), wInvChol: la.NewMatrix(k, k),
		scaled: la.NewMatrix(k, k),
		bartA:  la.NewMatrix(k, k), bartB: la.NewMatrix(k, k),
		invE: la.NewVector(k), invCol: la.NewVector(k),
	}
}

// SampleHyper draws (μ, Λ) from the Normal–Wishart posterior given the
// side's moments, writing the result (and derived Cholesky factor and Λ·μ
// cache) into h. It is a convenience wrapper over SampleHyperWS that
// allocates a fresh workspace; engines hold one workspace per runner and
// call SampleHyperWS directly.
func SampleHyper(prior NWPrior, m *Moments, stream *rng.Stream, h *Hyper) {
	SampleHyperWS(prior, m, stream, h, NewHyperWorkspace(len(prior.Mu0)))
}

// SampleHyperWS is the allocation-free Normal–Wishart posterior draw. The
// stream consumption order is fixed: Wishart first, then the mean.
// Standard conjugate update (Salakhutdinov & Mnih, eq. 14):
//
//	β* = β0 + N, ν* = ν0 + N
//	μ* = (β0 μ0 + N x̄) / β*
//	W*⁻¹ = W0⁻¹ + N S̄ + (β0 N / β*) (x̄ − μ0)(x̄ − μ0)ᵀ
//	Λ ~ W(W*, ν*), μ ~ N(μ*, (β* Λ)⁻¹)
func SampleHyperWS(prior NWPrior, m *Moments, stream *rng.Stream, h *Hyper, ws *HyperWorkspace) {
	n := m.N

	xbar := ws.xbar
	if n > 0 {
		copy(xbar, m.Sum)
		la.Scal(1/n, xbar)
	} else {
		xbar.Zero()
	}

	// W*⁻¹ = W0⁻¹ + (SumSq − N x̄ x̄ᵀ) + (β0 N / β*) (x̄−μ0)(x̄−μ0)ᵀ.
	// Note N·S̄ = SumSq − N x̄ x̄ᵀ.
	wInv := ws.wInv
	wInv.CopyFrom(prior.W0Inv)
	if n > 0 {
		wInv.Add(m.SumSq) // SumSq only has the lower triangle filled
		la.SyrLower(-n, xbar, wInv)
		diff := ws.diff
		for i := range diff {
			diff[i] = xbar[i] - prior.Mu0[i]
		}
		beta := prior.Beta0 + n
		la.SyrLower(prior.Beta0*n/beta, diff, wInv)
	}
	la.SymmetrizeLower(wInv)

	// W* = (W*⁻¹)⁻¹ via Cholesky.
	if err := la.Cholesky(wInv, ws.wInvChol); err != nil {
		panic("core: Normal-Wishart posterior scale not SPD: " + err.Error())
	}
	la.InvFromCholWS(ws.wInvChol, ws.wStar, ws.invE, ws.invCol)
	if err := la.Cholesky(ws.wStar, ws.wStarChol); err != nil {
		panic("core: inverted scale not SPD: " + err.Error())
	}

	// Λ ~ W(W*, ν*).
	nuStar := prior.Nu0 + n
	stream.WishartWS(ws.wStarChol, nuStar, h.Lambda, ws.bartA, ws.bartB)
	if err := la.Cholesky(h.Lambda, h.LambdaChol); err != nil {
		panic("core: sampled precision not SPD: " + err.Error())
	}

	// μ ~ N(μ*, (β* Λ)⁻¹): chol(β*Λ) = sqrt(β*)·chol(Λ).
	betaStar := prior.Beta0 + n
	muStar := ws.muStar
	for i := range muStar {
		muStar[i] = (prior.Beta0*prior.Mu0[i] + n*xbar[i]) / betaStar
	}
	ws.scaled.CopyFrom(h.LambdaChol)
	ws.scaled.ScaleInPlace(math.Sqrt(betaStar))
	stream.MVNFromPrecChol(muStar, ws.scaled, h.Mu, ws.scratch)

	la.SymvLower(h.Lambda, h.Mu, h.LambdaMu)
}
