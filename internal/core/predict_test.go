package core

import (
	"math"
	"testing"

	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// evalProblem builds factor matrices and a test set spanning several
// EvalChunk chunks (plus a ragged tail), so the chunked reduction has a
// real tree to get wrong.
func evalProblem(t *testing.T, nTest int) (u, v *la.Matrix, test []sparse.Entry) {
	t.Helper()
	r := rng.New(1234)
	m, n, k := 300, 200, 8
	u, v = la.NewMatrix(m, k), la.NewMatrix(n, k)
	r.FillNorm(u.Data)
	r.FillNorm(v.Data)
	test = make([]sparse.Entry, nTest)
	for i := range test {
		test[i] = sparse.Entry{
			Row: int32(r.Intn(m)), Col: int32(r.Intn(n)), Val: r.Norm(),
		}
	}
	return u, v, test
}

// TestPartialUpdateParBitIdenticalAcrossSchedules pins the evaluation
// determinism contract: for any pool size and any parallel-for grain over
// the chunks, the chunk-parallel evaluation produces bit-identical sums,
// RMSEs and accumulator state to the inline sequential pass, across
// multiple collecting iterations.
func TestPartialUpdateParBitIdenticalAcrossSchedules(t *testing.T) {
	for _, nTest := range []int{1, EvalChunk - 1, EvalChunk, 2*EvalChunk + 37, 3 * EvalChunk} {
		u, v, test := evalProblem(t, nTest)
		ref := NewPredictor(test, -3, 3)
		for _, threads := range []int{1, 2, 4} {
			for _, grain := range []int{1, 2, 7} {
				pool := sched.NewPool(threads)
				runAll := func(n int, run func(c int)) {
					pool.ParallelFor(0, n, grain, func(_ *sched.Worker, lo, hi int) {
						for c := lo; c < hi; c++ {
							run(c)
						}
					})
				}
				got := NewPredictor(test, -3, 3)
				for iter := 0; iter < 3; iter++ {
					collect := iter >= 1
					// Reference advances only on the first schedule tried
					// for this nTest; replay it for the others.
					var wantS, wantA, wantN float64
					if threads == 1 && grain == 1 {
						wantS, wantA, wantN = ref.PartialUpdate(u, v, collect)
					} else {
						refClone := NewPredictor(test, -3, 3)
						for it2 := 0; it2 <= iter; it2++ {
							wantS, wantA, wantN = refClone.PartialUpdate(u, v, it2 >= 1)
						}
					}
					gotS, gotA, gotN := got.PartialUpdatePar(u, v, collect, runAll)
					if gotS != wantS || gotA != wantA || gotN != wantN {
						t.Fatalf("nTest=%d threads=%d grain=%d iter=%d: parallel sums (%v,%v,%v) != sequential (%v,%v,%v)",
							nTest, threads, grain, iter, gotS, gotA, gotN, wantS, wantA, wantN)
					}
				}
				// Accumulator state must match element for element.
				refState := NewPredictor(test, -3, 3)
				for iter := 0; iter < 3; iter++ {
					refState.PartialUpdate(u, v, iter >= 1)
				}
				for i := range got.sum {
					if got.sum[i] != refState.sum[i] || got.sumSq[i] != refState.sumSq[i] {
						t.Fatalf("nTest=%d threads=%d grain=%d: accumulator %d diverged", nTest, threads, grain, i)
					}
				}
				pool.Close()
			}
		}
	}
}

// TestUpdateParMatchesUpdate pins the RMSE-level wrapper.
func TestUpdateParMatchesUpdate(t *testing.T) {
	u, v, test := evalProblem(t, 2*EvalChunk+11)
	a := NewPredictor(test, 0, 0)
	b := NewPredictor(test, 0, 0)
	pool := sched.NewPool(3)
	defer pool.Close()
	runAll := func(n int, run func(c int)) {
		pool.ParallelFor(0, n, 1, func(_ *sched.Worker, lo, hi int) {
			for c := lo; c < hi; c++ {
				run(c)
			}
		})
	}
	for iter := 0; iter < 4; iter++ {
		s1, a1 := a.Update(u, v, iter >= 2)
		s2, a2 := b.UpdatePar(u, v, iter >= 2, runAll)
		if s1 != s2 || a1 != a2 {
			t.Fatalf("iter %d: (%v,%v) != (%v,%v)", iter, s1, a1, s2, a2)
		}
	}
}

// TestUpdateParEmptyTest pins the empty-test NaN contract of both paths.
func TestUpdateParEmptyTest(t *testing.T) {
	u, v, _ := evalProblem(t, 1)
	p := NewPredictor(nil, 0, 0)
	s, a := p.UpdatePar(u, v, true, nil)
	if !math.IsNaN(s) || !math.IsNaN(a) {
		t.Fatalf("empty test must yield NaN RMSEs, got %v %v", s, a)
	}
	if p.NumChunks() != 0 {
		t.Fatalf("empty test has %d chunks", p.NumChunks())
	}
}

// TestPartialUpdateSteadyStateAllocs pins the evaluation hot path: after
// the first pass, inline scoring performs no allocation (the chunk
// partials are preallocated).
func TestPartialUpdateSteadyStateAllocs(t *testing.T) {
	u, v, test := evalProblem(t, 2*EvalChunk+5)
	p := NewPredictor(test, -4, 4)
	p.PartialUpdate(u, v, true)
	if allocs := testing.AllocsPerRun(20, func() {
		p.PartialUpdate(u, v, true)
	}); allocs != 0 {
		t.Fatalf("steady-state PartialUpdate allocates %v/op, want 0", allocs)
	}
}
