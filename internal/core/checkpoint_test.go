package core

import (
	"bytes"
	"testing"

	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/sparse"
)

func ckptProblem(t *testing.T) *Problem {
	t.Helper()
	ds := datagen.Generate(datagen.Small(71))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, 71)
	return NewProblem(train, test)
}

func ckptConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 6
	cfg.Iters = 8
	cfg.Burnin = 3
	cfg.RankOneMax = 4
	cfg.KernelThreshold = 20
	return cfg
}

func TestCheckpointResumeBitwise(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()

	// Straight run.
	s1, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := s1.Run()

	// Run 4 iterations, checkpoint, resume for the rest.
	s2, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 4; it++ {
		s2.Step(it)
	}
	ckpt := s2.Checkpoint()
	if ckpt.NextIter != 4 {
		t.Fatalf("NextIter = %d", ckpt.NextIter)
	}
	s3, err := ResumeSampler(cfg, prob, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	got := s3.RunFrom(ckpt.NextIter)

	if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
		t.Fatal("resumed chain differs from uninterrupted run")
	}
	for i := range want.AvgRMSE {
		if got.AvgRMSE[i] != want.AvgRMSE[i] {
			t.Fatalf("RMSE trace differs at iter %d", i)
		}
	}
	if got.KernelCounts != want.KernelCounts || got.ItemUpdates != want.ItemUpdates {
		t.Fatal("counters differ after resume")
	}
}

func TestCheckpointSerializationRoundTrip(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	s, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 5; it++ {
		s.Step(it)
	}
	ckpt := s.Checkpoint()
	var buf bytes.Buffer
	if err := ckpt.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NextIter != ckpt.NextIter || back.Seed != ckpt.Seed || back.NSamples != ckpt.NSamples {
		t.Fatal("header mismatch after round trip")
	}
	if la.MaxAbsDiff(back.U, ckpt.U) != 0 || la.MaxAbsDiff(back.V, ckpt.V) != 0 {
		t.Fatal("factors corrupted by serialization")
	}
	for i := range ckpt.PredSum {
		if back.PredSum[i] != ckpt.PredSum[i] || back.PredSumSq[i] != ckpt.PredSumSq[i] {
			t.Fatal("predictor state corrupted")
		}
	}
	// Resume from the deserialized checkpoint must still be exact.
	s2, err := ResumeSampler(cfg, prob, back)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.RunFrom(back.NextIter)
	ref, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()
	if la.MaxAbsDiff(got.U, want.U) != 0 {
		t.Fatal("resume from serialized checkpoint diverged")
	}
}

func TestCheckpointValidation(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	s, _ := NewSampler(cfg, prob)
	s.Step(0)
	ckpt := s.Checkpoint()

	bad := cfg
	bad.K = 8
	if _, err := ResumeSampler(bad, prob, ckpt); err == nil {
		t.Fatal("expected K mismatch error")
	}
	bad = cfg
	bad.Seed = 1
	if _, err := ResumeSampler(bad, prob, ckpt); err == nil {
		t.Fatal("expected seed mismatch error")
	}
	other := NewProblem(datagen.Generate(datagen.Tiny(1)).R, nil)
	if _, err := ResumeSampler(cfg, other, ckpt); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewBufferString("not a checkpoint at all")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadCheckpoint(bytes.NewBufferString(ckptMagic)); err == nil {
		t.Fatal("expected truncation error")
	}
}
