package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/sparse"
)

func ckptProblem(t *testing.T) *Problem {
	t.Helper()
	ds := datagen.Generate(datagen.Small(71))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, 71)
	return NewProblem(train, test)
}

func ckptConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 6
	cfg.Iters = 8
	cfg.Burnin = 3
	cfg.RankOneMax = 4
	cfg.KernelThreshold = 20
	return cfg
}

func TestCheckpointResumeBitwise(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()

	// Straight run.
	s1, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := s1.Run()

	// Run 4 iterations, checkpoint, resume for the rest.
	s2, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 4; it++ {
		s2.Step(it)
	}
	ckpt := s2.Checkpoint()
	if ckpt.NextIter != 4 {
		t.Fatalf("NextIter = %d", ckpt.NextIter)
	}
	s3, err := ResumeSampler(cfg, prob, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	got := s3.RunFrom(ckpt.NextIter)

	if la.MaxAbsDiff(got.U, want.U) != 0 || la.MaxAbsDiff(got.V, want.V) != 0 {
		t.Fatal("resumed chain differs from uninterrupted run")
	}
	for i := range want.AvgRMSE {
		if got.AvgRMSE[i] != want.AvgRMSE[i] {
			t.Fatalf("RMSE trace differs at iter %d", i)
		}
	}
	if got.KernelCounts != want.KernelCounts || got.ItemUpdates != want.ItemUpdates {
		t.Fatal("counters differ after resume")
	}
}

func TestCheckpointSerializationRoundTrip(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	s, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 5; it++ {
		s.Step(it)
	}
	ckpt := s.Checkpoint()
	var buf bytes.Buffer
	if err := ckpt.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NextIter != ckpt.NextIter || back.Seed != ckpt.Seed || back.NSamples != ckpt.NSamples {
		t.Fatal("header mismatch after round trip")
	}
	if la.MaxAbsDiff(back.U, ckpt.U) != 0 || la.MaxAbsDiff(back.V, ckpt.V) != 0 {
		t.Fatal("factors corrupted by serialization")
	}
	for i := range ckpt.PredSum {
		if back.PredSum[i] != ckpt.PredSum[i] || back.PredSumSq[i] != ckpt.PredSumSq[i] {
			t.Fatal("predictor state corrupted")
		}
	}
	// Resume from the deserialized checkpoint must still be exact.
	s2, err := ResumeSampler(cfg, prob, back)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.RunFrom(back.NextIter)
	ref, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()
	if la.MaxAbsDiff(got.U, want.U) != 0 {
		t.Fatal("resume from serialized checkpoint diverged")
	}
}

func TestCheckpointValidation(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	s, _ := NewSampler(cfg, prob)
	s.Step(0)
	ckpt := s.Checkpoint()

	bad := cfg
	bad.K = 8
	if _, err := ResumeSampler(bad, prob, ckpt); err == nil {
		t.Fatal("expected K mismatch error")
	}
	bad = cfg
	bad.Seed = 1
	if _, err := ResumeSampler(bad, prob, ckpt); err == nil {
		t.Fatal("expected seed mismatch error")
	}
	other := NewProblem(datagen.Generate(datagen.Tiny(1)).R, nil)
	if _, err := ResumeSampler(cfg, other, ckpt); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewBufferString("not a checkpoint at all")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadCheckpoint(bytes.NewBufferString(ckptMagic)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestReadCheckpointTruncatedStreams(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	s, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 3; it++ {
		s.Step(it)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint().Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must produce an error, never a panic or a
	// silently short checkpoint — including cuts inside the magic, the
	// header, and the float body.
	cuts := []int{0, 1, len(ckptMagic) - 1, len(ckptMagic), len(ckptMagic) + 3,
		len(ckptMagic) + 8*5, len(full) / 4, len(full) / 2, len(full) - 8, len(full) - 1}
	for _, cut := range cuts {
		if _, err := ReadCheckpoint(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes: expected error", cut, len(full))
		}
	}
	// The untruncated stream still reads.
	if _, err := ReadCheckpoint(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream: %v", err)
	}
}

// craftHeader builds a syntactically valid checkpoint header with the
// given dimension fields and no body.
func craftHeader(k, nextIter, uRows, vRows, nTest, nSamples, nTrace uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	w := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		buf.Write(b[:])
	}
	w(k)
	w(nextIter)
	w(42) // seed
	w(uRows)
	w(vRows)
	w(nTest)
	w(nSamples)
	w(nTrace)
	w(0) // item updates
	w(0)
	w(0)
	w(0) // kernel counts
	return buf.Bytes()
}

func TestReadCheckpointRejectsImplausibleHeaders(t *testing.T) {
	cases := []struct {
		name string
		hdr  []byte
	}{
		{"zero K", craftHeader(0, 0, 10, 10, 0, 0, 0)},
		{"huge K", craftHeader(1<<20, 0, 10, 10, 0, 0, 0)},
		{"negative uRows", craftHeader(8, 0, 1<<63, 10, 0, 0, 0)},
		{"negative NextIter", craftHeader(8, 1<<63, 10, 10, 0, 0, 0)},
		{"negative NSamples", craftHeader(8, 0, 10, 10, 0, 1<<63, 0)},
		{"huge trace", craftHeader(8, 0, 10, 10, 0, 0, 1<<30)},
		// Each dimension is individually in range, but rows*K overflows
		// the element cap: must error before allocating.
		{"product overflow", craftHeader(1<<16, 0, 1<<31, 1<<31, 1<<31, 0, 0)},
		{"product overflow V", craftHeader(1<<16, 0, 10, 1<<31, 0, 0, 0)},
	}
	for _, tc := range cases {
		if _, err := ReadCheckpoint(bytes.NewReader(tc.hdr)); err == nil {
			t.Fatalf("%s: expected header rejection", tc.name)
		}
	}
}

// chokedWriter fails after accepting limit bytes, like a disk filling up.
type chokedWriter struct {
	limit   int
	written int
}

func (w *chokedWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		if n < 0 {
			n = 0
		}
		w.written = w.limit
		return n, errShortDisk
	}
	w.written += len(p)
	return len(p), nil
}

var errShortDisk = fmt.Errorf("no space left on device")

func TestCheckpointWritePropagatesIOErrors(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	s, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(0)
	ckpt := s.Checkpoint()
	var buf bytes.Buffer
	if err := ckpt.Write(&buf); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	// A writer that chokes at any point must surface an error: a full
	// disk can never masquerade as a successful checkpoint.
	for _, limit := range []int{0, 1, 16, size / 2, size - 1} {
		w := &chokedWriter{limit: limit}
		if err := ckpt.Write(w); err == nil {
			t.Fatalf("limit %d/%d bytes: Write reported success", limit, size)
		}
	}
	if err := ckpt.Write(&chokedWriter{limit: size}); err != nil {
		t.Fatalf("exact-size writer must succeed: %v", err)
	}
}
