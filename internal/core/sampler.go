package core

import (
	"fmt"
	"time"

	"repro/internal/la"
	"repro/internal/sparse"
)

// Result collects the output of a BPMF run, shared by every engine.
type Result struct {
	// SampleRMSE[i] is the held-out RMSE of iteration i's sample alone.
	SampleRMSE []float64
	// AvgRMSE[i] is the held-out RMSE of the posterior-mean predictor
	// after iteration i (equals SampleRMSE before burn-in completes).
	AvgRMSE []float64
	// U, V are the final factor samples.
	U, V *la.Matrix
	// KernelCounts[k] is the number of item updates performed with
	// Kernel(k) across the whole run.
	KernelCounts [3]int64
	// Iters is the number of iterations performed.
	Iters int
	// ItemUpdates is the total number of item updates (rows of U and V
	// sampled), the unit of the paper's performance metric.
	ItemUpdates int64
	// Elapsed is the wall-clock duration of the run, filled by engines.
	Elapsed time.Duration
	// Intervals are the posterior predictive summaries of the held-out
	// entries (mean, std, actual), available once post-burn-in samples
	// were collected.
	Intervals []Interval
}

// UpdatesPerSec returns the paper's throughput metric: item updates per
// second of wall-clock time.
func (r *Result) UpdatesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.ItemUpdates) / r.Elapsed.Seconds()
}

// FinalRMSE returns the posterior-mean RMSE after the last iteration.
func (r *Result) FinalRMSE() float64 {
	if len(r.AvgRMSE) == 0 {
		return 0
	}
	return r.AvgRMSE[len(r.AvgRMSE)-1]
}

// Problem bundles the data a BPMF engine factorizes: the rating matrix in
// row (user) and column (movie) orientation plus the held-out test set.
type Problem struct {
	R    *sparse.CSR // users x movies
	Rt   *sparse.CSR // movies x users (transpose of R)
	Test []sparse.Entry
}

// NewProblem builds a Problem from a rating matrix and test set,
// computing the transpose.
func NewProblem(r *sparse.CSR, test []sparse.Entry) *Problem {
	return &Problem{R: r, Rt: r.Transpose(), Test: test}
}

// Dims returns (#users, #movies).
func (p *Problem) Dims() (int, int) { return p.R.M, p.R.N }

// InitFactors returns the deterministic keyed-stream initialization of one
// side's factor matrix: row i ~ 0.3 · N(0, I) from InitStream(seed, side,
// i). Every engine starts from this same state.
func InitFactors(seed uint64, side Side, n, k int) *la.Matrix {
	m := la.NewMatrix(n, k)
	for i := 0; i < n; i++ {
		s := InitStream(seed, side, i)
		row := m.Row(i)
		s.FillNorm(row)
		la.Scal(0.3, row)
	}
	return m
}

// Sampler is the sequential reference implementation of Algorithm 1. The
// multi-core, GraphLab-style and distributed engines are all tested
// against its output.
type Sampler struct {
	Cfg   Config
	Prob  *Problem
	Prior NWPrior

	U, V   *la.Matrix
	HU, HV *Hyper

	pred *Predictor
	ws   *Workspace
	hws  *HyperWorkspace
	mws  *MomentsWorkspace
	res  Result
}

// NewSampler constructs a sequential sampler with deterministic initial
// factors.
func NewSampler(cfg Config, prob *Problem) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, n := prob.Dims()
	s := &Sampler{
		Cfg:   cfg,
		Prob:  prob,
		Prior: DefaultNWPrior(cfg.K),
		U:     InitFactors(cfg.Seed, SideU, m, cfg.K),
		V:     InitFactors(cfg.Seed, SideV, n, cfg.K),
		HU:    NewHyper(cfg.K),
		HV:    NewHyper(cfg.K),
		pred:  NewPredictor(prob.Test, cfg.ClampMin, cfg.ClampMax),
		ws:    NewWorkspace(cfg.K),
		hws:   NewHyperWorkspace(cfg.K),
		mws:   NewMomentsWorkspace(cfg.K),
	}
	s.pred.Alpha = cfg.Alpha
	s.res.SampleRMSE = make([]float64, 0, cfg.Iters)
	s.res.AvgRMSE = make([]float64, 0, cfg.Iters)
	return s, nil
}

// Step performs one full Gibbs iteration (movies first, then users, as in
// Algorithm 1), then scores the test set.
func (s *Sampler) Step(iter int) {
	cfg := &s.Cfg

	// Movies: hyperparameters from V, then every movie row.
	groupsV := GroupBoundaries(cfg.MomentGroupsV, s.V.Rows)
	mv := MomentsGroupedWS(s.V, groupsV, cfg.K, nil, s.mws)
	SampleHyperWS(s.Prior, mv, HyperStream(cfg.Seed, iter, SideV), s.HV, s.hws)
	for j := 0; j < s.Prob.Rt.M; j++ {
		cols, vals := s.Prob.Rt.Row(j)
		kern := cfg.SelectKernel(len(cols))
		s.res.KernelCounts[kern]++
		UpdateItem(s.ws, kern, cfg, cols, vals, s.U, s.HV,
			s.ws.ItemStream(cfg.Seed, iter, SideV, j), nil, nil, s.V.Row(j))
	}

	// Users: hyperparameters from U, then every user row.
	groupsU := GroupBoundaries(cfg.MomentGroupsU, s.U.Rows)
	mu := MomentsGroupedWS(s.U, groupsU, cfg.K, nil, s.mws)
	SampleHyperWS(s.Prior, mu, HyperStream(cfg.Seed, iter, SideU), s.HU, s.hws)
	for i := 0; i < s.Prob.R.M; i++ {
		cols, vals := s.Prob.R.Row(i)
		kern := cfg.SelectKernel(len(cols))
		s.res.KernelCounts[kern]++
		UpdateItem(s.ws, kern, cfg, cols, vals, s.V, s.HU,
			s.ws.ItemStream(cfg.Seed, iter, SideU, i), nil, nil, s.U.Row(i))
	}

	s.res.ItemUpdates += int64(s.Prob.R.M + s.Prob.R.N)
	sr, ar := s.pred.Update(s.U, s.V, iter >= cfg.Burnin)
	s.res.SampleRMSE = append(s.res.SampleRMSE, sr)
	s.res.AvgRMSE = append(s.res.AvgRMSE, ar)
}

// Run executes all configured iterations and returns the result.
func (s *Sampler) Run() *Result {
	start := time.Now()
	for it := 0; it < s.Cfg.Iters; it++ {
		s.Step(it)
	}
	s.res.Elapsed = time.Since(start)
	s.res.U, s.res.V = s.U, s.V
	s.res.Iters = s.Cfg.Iters
	s.res.Intervals = s.pred.Intervals()
	return &s.res
}

// String summarizes a result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("iters=%d updates=%d finalRMSE=%.4f kernels[r1=%d chol=%d pchol=%d]",
		r.Iters, r.ItemUpdates, r.FinalRMSE(),
		r.KernelCounts[0], r.KernelCounts[1], r.KernelCounts[2])
}
