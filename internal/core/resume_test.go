package core

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/sparse"
)

// grownProblem extends the base training matrix with extra user rows
// (deterministic synthetic ratings) while keeping the base test split.
func grownProblem(t *testing.T, base *Problem, extraUsers int) *Problem {
	t.Helper()
	m, n := base.Dims()
	c := sparse.NewCOO(m+extraUsers, n, extraUsers*3)
	for u := 0; u < extraUsers; u++ {
		for j := 0; j < 3; j++ {
			c.Add(m+u, (u*5+j*7)%n, float64(1+(u+j)%5))
		}
	}
	merged, err := sparse.MergeLastWins(base.R, c.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return NewProblem(merged, base.Test)
}

func ckptAfter(t *testing.T, cfg Config, prob *Problem, iters int) *Checkpoint {
	t.Helper()
	s, err := NewSampler(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		s.Step(it)
	}
	return s.Checkpoint()
}

func TestGrowUsersDeterministic(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	ckpt := ckptAfter(t, cfg, prob, 4)
	grownProb := grownProblem(t, prob, 5)

	g1, err := ckpt.GrowUsers(cfg, grownProb)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ckpt.GrowUsers(cfg, grownProb)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := grownProb.Dims()
	if g1.U.Rows != m {
		t.Fatalf("grown U has %d rows, want %d", g1.U.Rows, m)
	}
	if la.MaxAbsDiff(g1.U, g2.U) != 0 {
		t.Fatal("GrowUsers is not deterministic")
	}
	// Trained rows carry over bit-for-bit; V is untouched.
	for i := 0; i < ckpt.U.Rows; i++ {
		old, grown := ckpt.U.Row(i), g1.U.Row(i)
		for k := range old {
			if old[k] != grown[k] {
				t.Fatalf("trained row %d changed during growth", i)
			}
		}
	}
	if g1.V != ckpt.V || g1.NextIter != ckpt.NextIter {
		t.Fatal("growth must only touch U")
	}
	// New rows must not be all-zero (they are posterior draws).
	allZero := true
	for _, v := range g1.U.Row(m - 1) {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("new user row was never drawn")
	}
}

func TestGrowUsersNoGrowthReturnsSame(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	ckpt := ckptAfter(t, cfg, prob, 4)
	g, err := ckpt.GrowUsers(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if g != ckpt {
		t.Fatal("exact-shape growth must return the checkpoint unchanged")
	}
}

func TestGrowUsersRejects(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	ckpt := ckptAfter(t, cfg, prob, 4)

	badK := cfg
	badK.K = cfg.K + 1
	if _, err := ckpt.GrowUsers(badK, prob); err == nil {
		t.Error("K mismatch accepted")
	}
	badSeed := cfg
	badSeed.Seed = cfg.Seed + 1
	if _, err := ckpt.GrowUsers(badSeed, prob); err == nil {
		t.Error("seed mismatch accepted")
	}

	// Users cannot shrink.
	m, n := prob.Dims()
	sub := sparse.NewCOO(m-1, n, 1)
	sub.Add(0, 0, 1)
	_, err := ckpt.GrowUsers(cfg, NewProblem(sub.ToCSR(), prob.Test))
	if err == nil || !strings.Contains(err.Error(), "shrink") {
		t.Errorf("user shrink accepted: %v", err)
	}

	// Items cannot grow.
	wide := sparse.NewCOO(m, n+1, 1)
	wide.Add(0, 0, 1)
	_, err = ckpt.GrowUsers(cfg, NewProblem(wide.ToCSR(), prob.Test))
	if err == nil || !strings.Contains(err.Error(), "item catalog") {
		t.Errorf("item growth accepted: %v", err)
	}
}

// TestResumeSamplerGrownContinuesChain: a warm-started chain over a
// grown problem must resume cleanly and keep evaluating the frozen test
// split; its pre-growth trace is the base chain's, bit-for-bit.
func TestResumeSamplerGrownContinuesChain(t *testing.T) {
	prob := ckptProblem(t)
	cfg := ckptConfig()
	ckpt := ckptAfter(t, cfg, prob, 4)
	grownProb := grownProblem(t, prob, 4)

	s, err := ResumeSamplerGrown(cfg, grownProb, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunFrom(ckpt.NextIter)
	if len(res.AvgRMSE) != cfg.Iters {
		t.Fatalf("trace has %d iterations, want %d", len(res.AvgRMSE), cfg.Iters)
	}
	for i := 0; i < ckpt.NextIter; i++ {
		if res.AvgRMSE[i] != ckpt.AvgRMSE[i] {
			t.Fatalf("pre-resume trace rewritten at iteration %d", i)
		}
	}
	m, _ := grownProb.Dims()
	if res.U.Rows != m {
		t.Fatalf("resumed U has %d rows, want %d", res.U.Rows, m)
	}
}

// TestGrowUsersPathIndependence pins the property the continuous
// trainer's differential acceptance test builds on: growing a
// checkpoint over a merged matrix depends only on the merged matrix,
// not on which delta shards produced it.
func TestGrowUsersPathIndependence(t *testing.T) {
	ds := datagen.Generate(datagen.Tiny(13))
	train, test := sparse.SplitTrainTest(ds.R, 0.2, 13)
	prob := NewProblem(train, test)
	cfg := ckptConfig()
	cfg.Seed = 13
	ckpt := ckptAfter(t, cfg, prob, 3)

	m, n := prob.Dims()
	d1 := sparse.NewCOO(m+2, n, 4)
	d1.Add(m, 0, 4)
	d1.Add(m+1, 1, 3)
	d1.Add(0, 0, 2)
	d2 := sparse.NewCOO(m+3, n, 2)
	d2.Add(m+2, 2, 5)
	d2.Add(m, 0, 1) // re-rates d1's entry

	viaDeltas, err := sparse.MergeLastWins(train, d1.ToCSR(), d2.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	atOnce, err := sparse.MergeLastWins(train, func() *sparse.CSR {
		all := sparse.NewCOO(m+3, n, 5)
		all.Add(0, 0, 2)
		all.Add(m, 0, 1)
		all.Add(m+1, 1, 3)
		all.Add(m+2, 2, 5)
		return all.ToCSR()
	}())
	if err != nil {
		t.Fatal(err)
	}

	g1, err := ckpt.GrowUsers(cfg, NewProblem(viaDeltas, test))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ckpt.GrowUsers(cfg, NewProblem(atOnce, test))
	if err != nil {
		t.Fatal(err)
	}
	if la.MaxAbsDiff(g1.U, g2.U) != 0 {
		t.Fatal("grown rows depend on the delta path, not just the merged matrix")
	}
}
