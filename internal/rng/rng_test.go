package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKeyedStreamsReproducible(t *testing.T) {
	a := NewKeyed(42, 1, 2, 3)
	b := NewKeyed(42, 1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical keys must give identical streams")
		}
	}
}

func TestKeyedStreamsDistinct(t *testing.T) {
	// Streams with different keys must diverge immediately (probabilistic,
	// but a collision would indicate broken mixing).
	base := NewKeyed(42, 7, 8, 9)
	variants := []*Stream{
		NewKeyed(42, 7, 8, 10),
		NewKeyed(42, 7, 9, 9),
		NewKeyed(42, 8, 8, 9),
		NewKeyed(43, 7, 8, 9),
		NewKeyed(42, 7, 8), // different key length
	}
	b0 := base.Uint64()
	for i, v := range variants {
		if v.Uint64() == b0 {
			t.Fatalf("variant %d collides with base stream", i)
		}
	}
}

func TestMixOrderSensitive(t *testing.T) {
	if Mix(1, 2, 3) == Mix(1, 3, 2) {
		t.Fatal("Mix must be order sensitive")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := s.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("Intn(5) distribution skewed: count[%d] = %d", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

// moments estimates mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return
}

func TestNormMoments(t *testing.T) {
	s := New(123)
	mean, variance := moments(200000, s.Norm)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestNormTails(t *testing.T) {
	// ~0.27% of draws should exceed |3|; none should be NaN/Inf.
	s := New(55)
	n, far := 100000, 0
	for i := 0; i < n; i++ {
		v := s.Norm()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite normal draw")
		}
		if math.Abs(v) > 3 {
			far++
		}
	}
	frac := float64(far) / float64(n)
	if frac < 0.001 || frac > 0.006 {
		t.Fatalf("P(|Z|>3) = %v, want ~0.0027", frac)
	}
}

func TestGammaMoments(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2.5, 10, 64} {
		s := New(uint64(shape * 1000))
		mean, variance := moments(200000, func() float64 { return s.Gamma(shape) })
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Fatalf("shape %v: gamma mean = %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.12*shape+0.05 {
			t.Fatalf("shape %v: gamma variance = %v, want %v", shape, variance, shape)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) must panic")
		}
	}()
	New(1).Gamma(0)
}

func TestChiSqMoments(t *testing.T) {
	for _, k := range []float64{1, 4, 32} {
		s := New(uint64(k) + 999)
		mean, variance := moments(200000, func() float64 { return s.ChiSq(k) })
		if math.Abs(mean-k) > 0.05*k+0.05 {
			t.Fatalf("k=%v: chi-square mean = %v", k, mean)
		}
		if math.Abs(variance-2*k) > 0.15*2*k+0.2 {
			t.Fatalf("k=%v: chi-square variance = %v, want %v", k, variance, 2*k)
		}
	}
}

func TestFillNorm(t *testing.T) {
	s := New(9)
	buf := make([]float64, 1000)
	s.FillNorm(buf)
	var sum float64
	for _, v := range buf {
		sum += v
	}
	if math.Abs(sum/1000) > 0.15 {
		t.Fatalf("FillNorm mean = %v", sum/1000)
	}
}

func TestStreamStateIndependence(t *testing.T) {
	// Drawing from one stream must not affect another.
	a := NewKeyed(1, 10)
	b := NewKeyed(1, 11)
	want := make([]uint64, 20)
	bRef := NewKeyed(1, 11)
	for i := range want {
		want[i] = bRef.Uint64()
	}
	for i := 0; i < 50; i++ {
		a.Uint64()
	}
	for i := range want {
		if b.Uint64() != want[i] {
			t.Fatal("streams are not independent")
		}
	}
}

func TestReinitMatchesNew(t *testing.T) {
	// Reinit must leave the stream byte-identical to a fresh New — after
	// arbitrary prior use, including a cached spare deviate.
	s := New(77)
	s.Norm() // leaves a spare cached
	for _, seed := range []uint64{0, 1, 77, 0xdeadbeef} {
		s.Reinit(seed)
		ref := New(seed)
		for i := 0; i < 100; i++ {
			if got, want := s.Norm(), ref.Norm(); got != want {
				t.Fatalf("seed %d draw %d: Reinit stream %v != New stream %v", seed, i, got, want)
			}
		}
	}
}

func TestReinitZeroAllocs(t *testing.T) {
	s := New(1)
	if allocs := testing.AllocsPerRun(100, func() {
		s.Reinit(42)
		s.Norm()
	}); allocs != 0 {
		t.Fatalf("Reinit allocates %v/op, want 0", allocs)
	}
}
