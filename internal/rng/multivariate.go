package rng

import (
	"math"

	"repro/internal/la"
)

// MVNFromPrecChol samples x ~ N(mu, Λ⁻¹) given the lower Cholesky factor
// L of the precision matrix Λ = L·Lᵀ: draw z ~ N(0, I) and solve
// Lᵀ·y = z, then x = mu + y. This is exactly the draw the BPMF item update
// performs after factorizing the posterior precision; it consumes K normal
// deviates from the stream regardless of how L was produced, which keeps
// stream consumption identical across the three item-update kernels.
// scratch must have length K and may alias dst only if mu does not.
func (r *Stream) MVNFromPrecChol(mu la.Vector, precL *la.Matrix, dst, scratch la.Vector) {
	k := len(mu)
	if precL.Rows != k || precL.Cols != k || len(dst) != k || len(scratch) != k {
		panic("rng: MVNFromPrecChol dimension mismatch")
	}
	r.FillNorm(scratch)
	la.SolveLowerT(precL, scratch, scratch)
	for i := range dst {
		dst[i] = mu[i] + scratch[i]
	}
}

// MVNFromCovChol samples x ~ N(mu, Σ) given the lower Cholesky factor L of
// the covariance Σ = L·Lᵀ: x = mu + L·z with z ~ N(0, I).
func (r *Stream) MVNFromCovChol(mu la.Vector, covL *la.Matrix, dst, scratch la.Vector) {
	k := len(mu)
	if covL.Rows != k || covL.Cols != k || len(dst) != k || len(scratch) != k {
		panic("rng: MVNFromCovChol dimension mismatch")
	}
	r.FillNorm(scratch)
	for i := 0; i < k; i++ {
		row := covL.Row(i)
		s := mu[i]
		for j := 0; j <= i; j++ {
			s += row[j] * scratch[j]
		}
		dst[i] = s
	}
}

// Wishart samples Λ ~ W(V, nu) — a K x K Wishart variate with scale matrix
// V (given by its lower Cholesky factor scaleL, V = scaleL·scaleLᵀ) and nu
// degrees of freedom — using the Bartlett decomposition:
//
//	A lower-triangular with A[i][i] = sqrt(chi²(nu-i)), A[i][j] ~ N(0,1)
//	for j < i; then Λ = (scaleL·A)(scaleL·A)ᵀ.
//
// The result (only its lower triangle is meaningful; it is symmetrized
// before return) is written into dst. la.Cholesky of dst then recovers a
// factor for downstream sampling. Requires nu > K-1.
func (r *Stream) Wishart(scaleL *la.Matrix, nu float64, dst *la.Matrix) {
	k := scaleL.Rows
	r.WishartWS(scaleL, nu, dst, la.NewMatrix(k, k), la.NewMatrix(k, k))
}

// WishartWS is Wishart with caller-provided K x K scratch matrices for the
// Bartlett factor and its scaled product, performing no allocation. Only
// the lower triangles of the scratch matrices are written and read, so
// stale upper-triangle contents from a previous lease are harmless.
func (r *Stream) WishartWS(scaleL *la.Matrix, nu float64, dst, a, b *la.Matrix) {
	k := scaleL.Rows
	if scaleL.Cols != k || dst.Rows != k || dst.Cols != k ||
		a.Rows != k || a.Cols != k || b.Rows != k || b.Cols != k {
		panic("rng: Wishart dimension mismatch")
	}
	if nu <= float64(k-1) {
		panic("rng: Wishart needs nu > K-1")
	}
	// Bartlett factor A.
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			a.Set(i, j, r.Norm())
		}
		a.Set(i, i, math.Sqrt(r.ChiSq(nu-float64(i))))
	}
	// B = scaleL * A (both lower triangular; B is lower triangular).
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			// (scaleL)_{i,t} nonzero for t<=i; A_{t,j} nonzero for t>=j.
			for t := j; t <= i; t++ {
				s += scaleL.At(i, t) * a.At(t, j)
			}
			b.Set(i, j, s)
		}
	}
	// dst = B * Bᵀ.
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for t := 0; t <= j; t++ {
				s += b.At(i, t) * b.At(j, t)
			}
			dst.Set(i, j, s)
		}
	}
	la.SymmetrizeLower(dst)
}
