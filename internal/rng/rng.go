// Package rng provides the random number generation BPMF needs: a fast
// counter-seeded xoshiro256** generator and samplers for the normal, gamma,
// chi-square, Wishart and multivariate normal distributions (the C++ STL
// <random> + hand-rolled samplers of the paper's implementation).
//
// The central design decision is *keyed streams*: every Gibbs draw comes
// from a stream deterministically derived from (seed, iteration, side,
// item). A stream's output depends only on its key, never on which thread
// or rank happens to perform the draw, so sequential, multi-core and
// distributed runs of the sampler consume identical randomness. This turns
// the paper's "all versions reach the same RMSE" claim into an exactly
// testable property.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// Used for seeding and key mixing (Steele et al., "Fast Splittable
// Pseudorandom Number Generators").
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix combines a seed and a sequence of key words into a single 64-bit
// value with good avalanche, for deriving stream seeds.
func Mix(seed uint64, keys ...uint64) uint64 {
	s := seed ^ 0x6a09e667f3bcc908
	out := splitMix64(&s)
	for _, k := range keys {
		s ^= k
		out ^= splitMix64(&s)
	}
	return out
}

// Stream is a xoshiro256** PRNG with a cached spare normal deviate.
// It is NOT safe for concurrent use; create one stream per (iteration,
// side, item) via NewKeyed.
type Stream struct {
	s         [4]uint64
	haveSpare bool
	spare     float64
}

// New creates a stream from a raw seed, expanding it with SplitMix64 as
// recommended by the xoshiro authors.
func New(seed uint64) *Stream {
	st := &Stream{}
	st.Reinit(seed)
	return st
}

// NewKeyed creates the stream identified by (seed, keys...). Equal keys
// give byte-identical streams; distinct keys give independent streams.
func NewKeyed(seed uint64, keys ...uint64) *Stream {
	return New(Mix(seed, keys...))
}

// Reinit resets r in place to exactly the state New(seed) creates,
// discarding any cached spare deviate. Hot loops that draw from one
// stream per work item re-key a scratch stream instead of allocating a
// fresh one (the engines draw ~M+N item streams per Gibbs iteration).
func (r *Stream) Reinit(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.haveSpare = false
	r.spare = 0
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// State returns the raw xoshiro state words, for resumable sequential
// scans that hand a stream across process boundaries (the distributed
// train/test split pipeline). The cached spare normal deviate is NOT
// part of the state: capture/restore is exact only for consumers that
// never draw normals (Float64/Uint64/Intn), which is what the split
// uses.
func (r *Stream) State() [4]uint64 { return r.s }

// SetState restores a state captured with State, discarding any cached
// spare deviate (see State for the exactness contract).
func (r *Stream) SetState(s [4]uint64) {
	r.s = s
	r.haveSpare = false
	r.spare = 0
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1.0p-53
}

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // tiny modulo bias, irrelevant here
}

// Norm returns a standard normal variate using the Marsaglia polar method
// (one spare deviate is cached).
func (r *Stream) Norm() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// FillNorm fills dst with independent standard normal variates.
func (r *Stream) FillNorm(dst []float64) {
	for i := range dst {
		dst[i] = r.Norm()
	}
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang
// squeeze method; for shape < 1 it applies the boost
// X_a = X_{a+1} * U^{1/a}. Panics for shape <= 0.
func (r *Stream) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	boost := 1.0
	if shape < 1 {
		boost = math.Pow(r.Float64(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Norm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v
		}
	}
}

// ChiSq returns a chi-square variate with k degrees of freedom (k may be
// fractional; the Wishart Bartlett decomposition uses integer-spaced dfs).
func (r *Stream) ChiSq(k float64) float64 {
	return 2 * r.Gamma(k/2)
}
