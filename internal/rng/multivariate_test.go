package rng

import (
	"math"
	"testing"

	"repro/internal/la"
)

func TestMVNFromPrecCholMoments(t *testing.T) {
	// Precision Λ = [[2, 0.5], [0.5, 1]]; covariance Σ = Λ⁻¹.
	k := 2
	prec := la.NewMatrixFrom([][]float64{{2, 0.5}, {0.5, 1}})
	precL := la.NewMatrix(k, k)
	if err := la.Cholesky(prec, precL); err != nil {
		t.Fatal(err)
	}
	cov := la.NewMatrix(k, k)
	la.InvFromChol(precL, cov)

	mu := la.Vector{1, -2}
	s := New(77)
	n := 200000
	sum := la.NewVector(k)
	sumSq := la.NewMatrix(k, k)
	dst := la.NewVector(k)
	scratch := la.NewVector(k)
	for i := 0; i < n; i++ {
		s.MVNFromPrecChol(mu, precL, dst, scratch)
		la.Axpy(1, dst, sum)
		la.SyrLower(1, dst, sumSq)
	}
	for i := 0; i < k; i++ {
		m := sum[i] / float64(n)
		if math.Abs(m-mu[i]) > 0.02 {
			t.Fatalf("mean[%d] = %v, want %v", i, m, mu[i])
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			c := sumSq.At(i, j)/float64(n) - (sum[i]/float64(n))*(sum[j]/float64(n))
			if math.Abs(c-cov.At(i, j)) > 0.03 {
				t.Fatalf("cov[%d,%d] = %v, want %v", i, j, c, cov.At(i, j))
			}
		}
	}
}

func TestMVNFromCovCholMoments(t *testing.T) {
	k := 2
	cov := la.NewMatrixFrom([][]float64{{1.5, -0.4}, {-0.4, 0.8}})
	covL := la.NewMatrix(k, k)
	if err := la.Cholesky(cov, covL); err != nil {
		t.Fatal(err)
	}
	mu := la.Vector{3, 4}
	s := New(88)
	n := 200000
	sum := la.NewVector(k)
	sumSq := la.NewMatrix(k, k)
	dst := la.NewVector(k)
	scratch := la.NewVector(k)
	for i := 0; i < n; i++ {
		s.MVNFromCovChol(mu, covL, dst, scratch)
		la.Axpy(1, dst, sum)
		la.SyrLower(1, dst, sumSq)
	}
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			c := sumSq.At(i, j)/float64(n) - (sum[i]/float64(n))*(sum[j]/float64(n))
			if math.Abs(c-cov.At(i, j)) > 0.03 {
				t.Fatalf("cov[%d,%d] = %v, want %v", i, j, c, cov.At(i, j))
			}
		}
	}
}

func TestWishartMean(t *testing.T) {
	// E[W(V, nu)] = nu * V.
	k := 3
	v := la.NewMatrixFrom([][]float64{
		{1.0, 0.3, 0.1},
		{0.3, 2.0, -0.2},
		{0.1, -0.2, 0.5},
	})
	vL := la.NewMatrix(k, k)
	if err := la.Cholesky(v, vL); err != nil {
		t.Fatal(err)
	}
	nu := 7.0
	s := New(99)
	n := 20000
	acc := la.NewMatrix(k, k)
	w := la.NewMatrix(k, k)
	for i := 0; i < n; i++ {
		s.Wishart(vL, nu, w)
		acc.Add(w)
	}
	acc.ScaleInPlace(1 / float64(n))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			want := nu * v.At(i, j)
			if math.Abs(acc.At(i, j)-want) > 0.15 {
				t.Fatalf("E[W][%d,%d] = %v, want %v", i, j, acc.At(i, j), want)
			}
		}
	}
}

func TestWishartSamplesAreSPD(t *testing.T) {
	k := 8
	vL := la.Eye(k)
	s := New(321)
	w := la.NewMatrix(k, k)
	l := la.NewMatrix(k, k)
	for i := 0; i < 200; i++ {
		s.Wishart(vL, float64(k), w)
		if err := la.Cholesky(w, l); err != nil {
			t.Fatalf("draw %d not SPD: %v", i, err)
		}
		// Symmetry check.
		for a := 0; a < k; a++ {
			for b := 0; b < a; b++ {
				if w.At(a, b) != w.At(b, a) {
					t.Fatal("Wishart draw not symmetric")
				}
			}
		}
	}
}

func TestWishartDFPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wishart with nu <= K-1 must panic")
		}
	}()
	k := 4
	New(1).Wishart(la.Eye(k), 2.0, la.NewMatrix(k, k))
}
