package sparse

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// mmap.go is the shard-native read path of the .bcsr format: OpenBinary
// maps a file (mmap on unix, an io.ReaderAt fallback elsewhere — same
// interface, chosen by build tag) and exposes per-panel views without
// decoding the whole matrix. The header and shard table are validated
// eagerly — including that every shard's payload actually fits inside
// the file, so a truncated map fails at open, not mid-query — while
// each shard's CRC and structural invariants are verified lazily on
// first touch. A distributed rank can therefore open a 100-shard file
// and pay only for the shards covering its own row range, and
// co-located processes mapping the same file share page cache instead
// of each holding a private decoded copy.

// mapSource is random access to the bytes of an open .bcsr file.
// Memory-backed implementations (mmap, in-memory test buffers) hand out
// zero-copy windows; file-backed ones fall back to ReadAt.
type mapSource interface {
	io.ReaderAt
	// View returns a zero-copy window [off, off+n) when the source is
	// memory-backed; ok=false means the caller must ReadAt into its own
	// buffer.
	View(off, n int64) (b []byte, ok bool)
	Close() error
}

// bytesSource serves a .bcsr image held in memory (tests, fuzzing).
type bytesSource struct{ data []byte }

func (s bytesSource) ReadAt(p []byte, off int64) (int, error) {
	return bytes.NewReader(s.data).ReadAt(p, off)
}
func (s bytesSource) View(off, n int64) ([]byte, bool) { return s.data[off : off+n], true }
func (s bytesSource) Close() error                     { return nil }

// fileSource serves a .bcsr file through pread — the portable fallback
// when the platform (or a build tag) rules out mmap.
type fileSource struct{ f *os.File }

func (s fileSource) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }
func (s fileSource) View(int64, int64) ([]byte, bool)        { return nil, false }
func (s fileSource) Close() error                            { return s.f.Close() }

// MappedStats counts how much of a mapped file has actually been
// touched — the per-rank "bytes read" evidence the shard-to-rank
// assignment tests assert on.
type MappedStats struct {
	// HeaderBytes is the eagerly-validated region: magic, header,
	// shard table and the 16-byte per-shard headers.
	HeaderBytes int64
	// ShardsTouched counts shards whose payload was verified (CRC +
	// structure) because something read from them.
	ShardsTouched int64
	// PayloadBytesTouched sums the payload lengths of touched shards.
	PayloadBytesTouched int64
}

// Mapped is an open .bcsr file accessed in place. All methods are safe
// for concurrent use; shard verification runs exactly once per shard.
type Mapped struct {
	src  mapSource
	size int64
	lay  *bcsrLayout

	pNNZ  []int64 // per-shard entry count (from the shard headers)
	pBase []int64 // entries preceding shard s (prefix sum of pNNZ)
	pOff  []int64 // payload byte offset of shard s
	pCRC  []uint64

	once    []sync.Once
	verr    []error
	payload [][]byte // CRC-verified payload bytes (zero-copy when mapped)
	chkOnce []sync.Once
	chkErr  []error

	shardsTouched atomic.Int64
	bytesTouched  atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// OpenBinary opens a .bcsr file for shard-native access: mmap-backed
// where the platform supports it, pread-backed otherwise. The header,
// shard table and shard framing are validated before it returns; shard
// payloads are verified lazily on first touch.
func OpenBinary(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	src, err := openMapSource(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sparse: mapping %s: %w", path, err)
	}
	mp, err := newMapped(src, st.Size())
	if err != nil {
		src.Close()
		return nil, err
	}
	return mp, nil
}

// openBinaryBytes opens an in-memory .bcsr image (tests and fuzzing
// exercise the mapped reader without a filesystem round trip).
func openBinaryBytes(data []byte) (*Mapped, error) {
	return newMapped(bytesSource{data: data}, int64(len(data)))
}

// newMapped validates the eager region of src and indexes the shards.
func newMapped(src mapSource, size int64) (*Mapped, error) {
	lay, err := readBCSRLayout(bufio.NewReaderSize(io.NewSectionReader(src, 0, size), 64<<10))
	if err != nil {
		return nil, err
	}
	n := int(lay.shards)
	mp := &Mapped{
		src: src, size: size, lay: lay,
		pNNZ: make([]int64, n), pBase: make([]int64, n), pOff: make([]int64, n), pCRC: make([]uint64, n),
		once: make([]sync.Once, n), verr: make([]error, n), payload: make([][]byte, n),
		chkOnce: make([]sync.Once, n), chkErr: make([]error, n),
	}
	// Walk the shard framing: 16 bytes of header per shard, payload
	// length derived from (rows, nnz). Every offset is checked against
	// the file size so truncation surfaces now with the same
	// byte-accurate error the streaming reader reports.
	off := lay.headerSize()
	var total uint64
	var hdr [16]byte
	for s := 0; s < n; s++ {
		if herr := readAtFull(src, hdr[:], off, size); herr != nil {
			return nil, fmt.Errorf("sparse: reading bcsr shard %d header: %w", s, herr)
		}
		snnz := binary.LittleEndian.Uint64(hdr[:])
		scrc := binary.LittleEndian.Uint64(hdr[8:])
		want, merr := lay.shardMeta(s, snnz, total)
		if merr != nil {
			return nil, merr
		}
		if remain := size - off - 16; remain < want {
			if remain < 0 {
				remain = 0
			}
			cause := io.ErrUnexpectedEOF
			if remain == 0 {
				cause = io.EOF
			}
			return nil, fmt.Errorf("sparse: reading bcsr shard %d payload: %w", s, shortReadError(want, remain, cause))
		}
		mp.pNNZ[s], mp.pBase[s], mp.pOff[s], mp.pCRC[s] = int64(snnz), int64(total), off+16, scrc
		off += 16 + want
		total += snnz
	}
	if total != lay.nnz {
		return nil, fmt.Errorf("sparse: bcsr header promised %d entries, shards hold %d", lay.nnz, total)
	}
	return mp, nil
}

// readAtFull reads len(p) bytes at off, mirroring the streaming
// reader's EOF classification when the file is too short.
func readAtFull(src io.ReaderAt, p []byte, off, size int64) error {
	if remain := size - off; remain < int64(len(p)) {
		if remain <= 0 {
			return io.EOF
		}
		return io.ErrUnexpectedEOF
	}
	_, err := src.ReadAt(p, off)
	return err
}

// Dims returns the matrix dimensions (rows, cols).
func (mp *Mapped) Dims() (m, n int) { return int(mp.lay.m), int(mp.lay.n) }

// NNZ returns the header-declared total entry count.
func (mp *Mapped) NNZ() int64 { return int64(mp.lay.nnz) }

// Shards returns the number of row-panel shards.
func (mp *Mapped) Shards() int { return int(mp.lay.shards) }

// Shard returns shard s's row panel and entry count — the shard table
// the distributed planner assigns to ranks, available without touching
// a single payload byte.
func (mp *Mapped) Shard(s int) (rowLo, rowHi int, nnz int64) {
	return int(mp.lay.lo[s]), int(mp.lay.hi[s]), mp.pNNZ[s]
}

// Stats snapshots how much of the file has been touched so far.
func (mp *Mapped) Stats() MappedStats {
	return MappedStats{
		HeaderBytes:         mp.lay.headerSize() + 16*int64(mp.lay.shards),
		ShardsTouched:       mp.shardsTouched.Load(),
		PayloadBytesTouched: mp.bytesTouched.Load(),
	}
}

// touch returns shard s's CRC-verified payload bytes, reading and
// checksumming it once on first access. The returned slice is a
// zero-copy window into the mapping when the platform mmaps; the
// pread fallback caches the shard's bytes instead. Structural
// validation is not included: the decode paths validate while decoding
// (decodePanel), and the lazy row accessors go through touchChecked.
func (mp *Mapped) touch(s int) ([]byte, error) {
	mp.once[s].Do(func() {
		want := mp.payloadLen(s)
		b, ok := mp.src.View(mp.pOff[s], want)
		if !ok {
			b = make([]byte, want)
			if _, err := mp.src.ReadAt(b, mp.pOff[s]); err != nil {
				mp.verr[s] = fmt.Errorf("sparse: reading bcsr shard %d payload: %w", s, err)
				return
			}
		}
		if err := verifyShardCRC(s, b, mp.pCRC[s]); err != nil {
			mp.verr[s] = err
			return
		}
		mp.payload[s] = b
		mp.shardsTouched.Add(1)
		mp.bytesTouched.Add(want)
	})
	if mp.verr[s] != nil {
		return nil, mp.verr[s]
	}
	return mp.payload[s], nil
}

// touchChecked is touch plus the one-time structural validation the
// lazy row accessors need: they index straight into the raw bytes, so
// a CRC-consistent but malformed shard must be rejected before any
// row pointer is trusted. Decode paths skip this — decodePanel
// enforces the same rules while materializing.
func (mp *Mapped) touchChecked(s int) ([]byte, error) {
	b, err := mp.touch(s)
	if err != nil {
		return nil, err
	}
	mp.chkOnce[s].Do(func() {
		rows := int(mp.lay.hi[s] - mp.lay.lo[s])
		if err := checkPanel(b, rows, mp.pNNZ[s], int(mp.lay.n), int(mp.lay.lo[s]), mp.pBase[s]); err != nil {
			mp.chkErr[s] = fmt.Errorf("sparse: bcsr shard %d: %w", s, err)
		}
	})
	if mp.chkErr[s] != nil {
		return nil, mp.chkErr[s]
	}
	return b, nil
}

func (mp *Mapped) payloadLen(s int) int64 {
	rows := int64(mp.lay.hi[s] - mp.lay.lo[s])
	return (rows+1)*8 + mp.pNNZ[s]*12
}

// DecodePanelInto appends shard s's rows to a CSR under assembly. a
// must have the mapped matrix's dimensions with RowPtr fully allocated
// (len M+1), and panels must be appended in ascending shard order; the
// entry base is taken from len(a.Col), so a shard-native rank starts
// from its first owned shard and leaves the other rows' RowPtr flat.
func (mp *Mapped) DecodePanelInto(a *CSR, s int) error {
	payload, err := mp.touch(s)
	if err != nil {
		return err
	}
	if derr := decodePanel(a, payload, int(mp.lay.lo[s]), int(mp.lay.hi[s]), int64(len(a.Col)), mp.pNNZ[s]); derr != nil {
		return fmt.Errorf("sparse: bcsr shard %d: %w", s, derr)
	}
	return nil
}

// Matrix decodes every shard into a CSR — the mapped reader's
// equivalent of ReadBinary, identical in both result and error for any
// input the two can both open.
func (mp *Mapped) Matrix() (*CSR, error) {
	a := &CSR{M: int(mp.lay.m), N: int(mp.lay.n), RowPtr: make([]int64, mp.lay.m+1)}
	for s := 0; s < mp.Shards(); s++ {
		if err := mp.DecodePanelInto(a, s); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// shardOfRow returns the shard whose panel contains row i.
func (mp *Mapped) shardOfRow(i int) (int, error) {
	if i < 0 || uint64(i) >= mp.lay.m {
		return 0, fmt.Errorf("sparse: row %d out of range [0, %d)", i, mp.lay.m)
	}
	return sort.Search(mp.Shards(), func(s int) bool { return mp.lay.hi[s] > uint64(i) }), nil
}

// rowSpan locates row i's entry range inside its (verified) shard.
func (mp *Mapped) rowSpan(i int) (payload []byte, s int, lo, hi int64, err error) {
	s, err = mp.shardOfRow(i)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	payload, err = mp.touchChecked(s)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	r := i - int(mp.lay.lo[s])
	lo = int64(binary.LittleEndian.Uint64(payload[r*8:]))
	hi = int64(binary.LittleEndian.Uint64(payload[(r+1)*8:]))
	return payload, s, lo, hi, nil
}

// RowNNZ returns the number of stored entries in row i, verifying the
// row's shard on first touch.
func (mp *Mapped) RowNNZ(i int) (int, error) {
	_, _, lo, hi, err := mp.rowSpan(i)
	if err != nil {
		return 0, err
	}
	return int(hi - lo), nil
}

// AppendRowCols appends row i's column indices (ascending, as stored)
// to dst and returns the extended slice. Only row i's shard is
// touched, and nothing beyond the appended indices is copied out of
// the mapping — this is the exclusion path bpmf-serve uses to serve
// /recommend straight off a mapped training matrix.
func (mp *Mapped) AppendRowCols(dst []int32, i int) ([]int32, error) {
	payload, s, lo, hi, err := mp.rowSpan(i)
	if err != nil {
		return dst, err
	}
	rows := int64(mp.lay.hi[s] - mp.lay.lo[s])
	cols := payload[(rows+1)*8:]
	for k := lo; k < hi; k++ {
		dst = append(dst, int32(binary.LittleEndian.Uint32(cols[k*4:])))
	}
	return dst, nil
}

// AppendRowVals appends row i's values (aligned with AppendRowCols) to
// dst and returns the extended slice.
func (mp *Mapped) AppendRowVals(dst []float64, i int) ([]float64, error) {
	payload, s, lo, hi, err := mp.rowSpan(i)
	if err != nil {
		return dst, err
	}
	rows := int64(mp.lay.hi[s] - mp.lay.lo[s])
	vals := payload[(rows+1)*8+mp.pNNZ[s]*4:]
	for k := lo; k < hi; k++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(vals[k*8:])))
	}
	return dst, nil
}

// Close releases the mapping or file handle. Zero-copy views obtained
// earlier must not be used after Close.
func (mp *Mapped) Close() error {
	mp.closeOnce.Do(func() { mp.closeErr = mp.src.Close() })
	return mp.closeErr
}

// checkPanel validates a shard payload's structural invariants — the
// same rules, in the same order, with the same messages as decodePanel
// — against the raw bytes, so lazy row accessors can trust a verified
// shard without materializing it. rowBase/entryBase globalize the row
// and entry indices in messages exactly as decodePanel's do.
func checkPanel(payload []byte, rows int, snnz int64, n int, rowBase int, entryBase int64) error {
	ptrEnd := int64(rows+1) * 8
	ptr := payload[:ptrEnd]
	cols := payload[ptrEnd : ptrEnd+snnz*4]
	vals := payload[ptrEnd+snnz*4:]
	if first := int64(binary.LittleEndian.Uint64(ptr)); first != 0 {
		return fmt.Errorf("panel rowPtr starts at %d, want 0", first)
	}
	prev := int64(0)
	rowPtr := make([]int64, rows+1)
	for r := 0; r <= rows; r++ {
		p := int64(binary.LittleEndian.Uint64(ptr[r*8:]))
		if p < prev || p > snnz {
			return fmt.Errorf("panel rowPtr not monotone in [0, %d]: row %d has %d after %d", snnz, r, p, prev)
		}
		prev = p
		rowPtr[r] = p
	}
	if prev != snnz {
		return fmt.Errorf("panel rowPtr ends at %d, want %d", prev, snnz)
	}
	for k := int64(0); k < snnz; k++ {
		c := binary.LittleEndian.Uint32(cols[k*4:])
		if uint64(c) >= uint64(n) {
			return fmt.Errorf("column %d out of range [0, %d)", c, n)
		}
	}
	for r := 0; r < rows; r++ {
		for k := rowPtr[r] + 1; k < rowPtr[r+1]; k++ {
			a := binary.LittleEndian.Uint32(cols[(k-1)*4:])
			b := binary.LittleEndian.Uint32(cols[k*4:])
			if b <= a {
				return fmt.Errorf("row %d columns not strictly ascending (%d after %d)", rowBase+r, b, a)
			}
		}
	}
	for k := int64(0); k < snnz; k++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(vals[k*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("entry %d has non-finite value %v", entryBase+k, v)
		}
	}
	return nil
}
