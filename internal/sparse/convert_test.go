package sparse

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dupMM rates the (1,1) pair three times, in this file order: 1.0,
// then 5.0, then 0.5.
const dupMM = `%%MatrixMarket matrix coordinate real general
2 3 5
1 1 1.0
1 2 2.0
1 1 5.0
2 3 4.0
1 1 0.5
`

// TestConverterDedupSumIsDefault pins the historical duplicate
// semantics: a Converter's zero value sums duplicate (row, col)
// entries, exactly as COO.ToCSR and the MatrixMarket reader always
// have.
func TestConverterDedupSumIsDefault(t *testing.T) {
	dir := t.TempDir()
	mm := filepath.Join(dir, "dup.mtx")
	if err := os.WriteFile(mm, []byte(dupMM), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "dup.bcsr")
	stats, err := Converter{TmpDir: dir}.Convert(mm, out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NNZ != 3 {
		t.Fatalf("want 3 post-dedup entries, got %d", stats.NNZ)
	}
	a, err := Load(out)
	if err != nil {
		t.Fatal(err)
	}
	want := csrOf(2, 3,
		[3]float64{0, 0, 1.0 + 5.0 + 0.5},
		[3]float64{0, 1, 2.0},
		[3]float64{1, 2, 4.0})
	if !Equal(want, a) {
		t.Fatalf("DedupSum: (0,0) = %g, want the sum 6.5", a.Val[0])
	}
}

// TestConverterDedupLast checks the compaction policy: the value that
// appeared last in stream order wins outright.
func TestConverterDedupLast(t *testing.T) {
	dir := t.TempDir()
	mm := filepath.Join(dir, "dup.mtx")
	if err := os.WriteFile(mm, []byte(dupMM), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "dup-last.bcsr")
	stats, err := Converter{TmpDir: dir, Dedup: DedupLast}.Convert(mm, out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NNZ != 3 {
		t.Fatalf("want 3 post-dedup entries, got %d", stats.NNZ)
	}
	a, err := Load(out)
	if err != nil {
		t.Fatal(err)
	}
	want := csrOf(2, 3,
		[3]float64{0, 0, 0.5},
		[3]float64{0, 1, 2.0},
		[3]float64{1, 2, 4.0})
	if !Equal(want, a) {
		t.Fatalf("DedupLast: (0,0) = %g, want the last-written 0.5", a.Val[0])
	}
}

// sliceStream adapts an entry slice to the EntryStream contract.
func sliceStream(es []Entry) EntryStream {
	return func(visit func(Entry) error) error {
		for _, e := range es {
			if err := visit(e); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestConvertEntriesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	es := []Entry{
		{Row: 0, Col: 1, Val: 2},
		{Row: 3, Col: 0, Val: 1},
		{Row: 0, Col: 1, Val: 7}, // re-rated: must win under DedupLast
		{Row: 2, Col: 2, Val: 4},
	}
	out := filepath.Join(dir, "entries.bcsr")
	stats, err := Converter{TmpDir: dir, Dedup: DedupLast, ShardNNZ: 2}.ConvertEntries(4, 3, sliceStream(es), out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.M != 4 || stats.N != 3 || stats.NNZ != 3 {
		t.Fatalf("stats %+v", stats)
	}
	a, err := Load(out)
	if err != nil {
		t.Fatal(err)
	}
	want := csrOf(4, 3,
		[3]float64{0, 1, 7},
		[3]float64{2, 2, 4},
		[3]float64{3, 0, 1})
	if !Equal(want, a) {
		t.Fatal("ConvertEntries round trip differs")
	}
}

func TestConvertEntriesRejects(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bad.bcsr")
	cases := map[string]struct {
		m, n   int
		stream EntryStream
		want   string
	}{
		"zero dims":  {0, 3, sliceStream(nil), "positive dimensions"},
		"row range":  {2, 2, sliceStream([]Entry{{Row: 2, Col: 0, Val: 1}}), "outside"},
		"col range":  {2, 2, sliceStream([]Entry{{Row: 0, Col: -1, Val: 1}}), "outside"},
		"non-finite": {2, 2, sliceStream([]Entry{{Row: 0, Col: 0, Val: math.NaN()}}), "non-finite"},
	}
	for name, tc := range cases {
		_, err := Converter{TmpDir: dir}.ConvertEntries(tc.m, tc.n, tc.stream, out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", name, err, tc.want)
		}
	}
}

// TestConvertEntriesUnstableStream: a source that yields different rows
// on its second pass (the re-stream contract broken) must surface as an
// error, not a bad shard index.
func TestConvertEntriesUnstableStream(t *testing.T) {
	dir := t.TempDir()
	pass := 0
	stream := func(visit func(Entry) error) error {
		pass++
		if pass == 1 {
			return visit(Entry{Row: 0, Col: 0, Val: 1})
		}
		return visit(Entry{Row: 5, Col: 0, Val: 1})
	}
	_, err := Converter{TmpDir: dir}.ConvertEntries(2, 2, stream, filepath.Join(dir, "x.bcsr"))
	if err == nil || !strings.Contains(err.Error(), "counting pass") {
		t.Fatalf("unstable stream not rejected: %v", err)
	}
}
