package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// binary.go defines the .bcsr on-disk format: the repo's first
// persistent binary interchange outside checkpoints. A matrix is stored
// as a little-endian header plus a sequence of row-panel shards, each
// carrying its own CRC32, so a reader can verify and decode shards
// independently and map them 1:1 onto sched.Pool workers (or dist
// ranks: the panels are exactly the contiguous row ranges the
// partitioner hands out).
//
// Layout (all integers little-endian):
//
//	magic   "BPMFBCSR1\n"                      10 bytes (version 1)
//	header  u64 M, u64 N, u64 NNZ, u64 shards
//	table   shards × (u64 rowLo, u64 rowHi)    contiguous panels covering [0, M)
//	shards  shards × shard, in table order
//
//	shard   u64 nnz, u64 crc32(payload), payload
//	payload (rows+1) × u64 rowPtr              panel-relative, rowPtr[rows] == nnz
//	        nnz × u32 col
//	        nnz × u64 float64-bits val
//
// Per-shard nnz lives with the shard (not the table) so a streaming
// writer never needs to seek; the header NNZ is the post-dedup total.
const bcsrMagic = "BPMFBCSR1\n"

// DefaultShardNNZ is the target number of entries per shard: big enough
// that CRC+decode dominates scheduling overhead, small enough that a
// pool has parallelism to steal (20 shards for the ml-20m nnz).
const DefaultShardNNZ = 1 << 20

// maxBCSRShards caps the declared shard count: legitimate files hold a
// couple of dozen panels (nnz / DefaultShardNNZ), so 16M is far past
// any real file while keeping a hostile header's table claim (and the
// 32-bit byte-offset arithmetic over it) comfortably bounded.
const maxBCSRShards = 1 << 24

// WriteBinary writes a in .bcsr format with DefaultShardNNZ-sized row
// panels. Every write is error-checked so a full disk surfaces here,
// not at load time.
func WriteBinary(w io.Writer, a *CSR) error {
	return WriteBinarySharded(w, a, DefaultShardNNZ)
}

// WriteBinarySharded writes a with row panels targeting shardNNZ
// entries each (a shard always holds at least one full row).
func WriteBinarySharded(w io.Writer, a *CSR, shardNNZ int) error {
	if shardNNZ < 1 {
		shardNNZ = DefaultShardNNZ
	}
	rowNNZ := make([]int64, a.M)
	for r := range rowNNZ {
		rowNNZ[r] = int64(a.RowNNZ(r))
	}
	lo, hi := panelBounds(rowNNZ, shardNNZ)
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	writeU64 := func(v uint64) {
		if err == nil {
			err = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	if _, werr := bw.WriteString(bcsrMagic); werr != nil {
		return fmt.Errorf("sparse: writing bcsr magic: %w", werr)
	}
	writeU64(uint64(a.M))
	writeU64(uint64(a.N))
	writeU64(uint64(a.NNZ()))
	writeU64(uint64(len(lo)))
	for s := range lo {
		writeU64(uint64(lo[s]))
		writeU64(uint64(hi[s]))
	}
	if err != nil {
		return fmt.Errorf("sparse: writing bcsr header: %w", err)
	}
	var payload []byte
	for s := range lo {
		payload = encodePanel(payload[:0], a, lo[s], hi[s])
		writeU64(uint64(a.RowPtr[hi[s]] - a.RowPtr[lo[s]]))
		writeU64(uint64(crc32.ChecksumIEEE(payload)))
		if err == nil {
			_, err = bw.Write(payload)
		}
		if err != nil {
			return fmt.Errorf("sparse: writing bcsr shard %d: %w", s, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sparse: flushing bcsr: %w", err)
	}
	return nil
}

// encodePanel appends the payload bytes of rows [lo, hi) of a to dst.
func encodePanel(dst []byte, a *CSR, lo, hi int) []byte {
	base := a.RowPtr[lo]
	for r := lo; r <= hi; r++ {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(a.RowPtr[r]-base))
	}
	for _, c := range a.Col[base:a.RowPtr[hi]] {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c))
	}
	for _, v := range a.Val[base:a.RowPtr[hi]] {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// ReadBinary reads a .bcsr matrix. Corrupt input — truncated streams,
// shard CRC mismatches, implausible dimensions, non-monotonic row
// pointers, out-of-range columns, non-finite values — is reported as an
// error before it can poison a sampler; no input panics, and no header
// field is trusted for an allocation larger than the bytes actually
// present (reads grow in bounded chunks).
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(bcsrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sparse: reading bcsr magic: %w", err)
	}
	if string(magic) != bcsrMagic {
		return nil, fmt.Errorf("sparse: not a bcsr file (magic %q)", magic)
	}
	var err error
	readU64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	m := readU64()
	n := readU64()
	nnz := readU64()
	shards := readU64()
	if err != nil {
		return nil, fmt.Errorf("sparse: reading bcsr header: %w", err)
	}
	if m > maxMMDim || n > maxMMDim {
		return nil, fmt.Errorf("sparse: bcsr dimensions %dx%d out of range [0, %d]", m, n, int64(maxMMDim))
	}
	if shards > maxBCSRShards || (m > 0 && shards == 0) || (m == 0 && shards > 0) {
		return nil, fmt.Errorf("sparse: bcsr claims %d shards for %d rows", shards, m)
	}
	if nnz > math.MaxInt64/16 {
		return nil, fmt.Errorf("sparse: bcsr claims %d entries", nnz)
	}
	// The table is read through the chunked reader so a hostile shard
	// count allocates in proportion to the bytes actually present, not
	// to the claim.
	table, err := readChunked(br, nil, int64(shards)*16)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading bcsr shard table: %w", err)
	}
	lo := make([]uint64, shards)
	hi := make([]uint64, shards)
	for s := range lo {
		lo[s] = binary.LittleEndian.Uint64(table[s*16:])
		hi[s] = binary.LittleEndian.Uint64(table[s*16+8:])
	}
	for s := range lo {
		prev := uint64(0)
		if s > 0 {
			prev = hi[s-1]
		}
		if lo[s] != prev || hi[s] < lo[s] || hi[s] > m {
			return nil, fmt.Errorf("sparse: bcsr shard %d covers rows [%d, %d), want contiguous panels over [0, %d)", s, lo[s], hi[s], m)
		}
	}
	if shards > 0 && hi[shards-1] != m {
		return nil, fmt.Errorf("sparse: bcsr shards cover rows [0, %d) of %d", hi[shards-1], m)
	}

	a := &CSR{M: int(m), N: int(n), RowPtr: make([]int64, m+1)}
	var payload []byte
	var total uint64
	for s := range lo {
		snnz := readU64()
		scrc := readU64()
		if err != nil {
			return nil, fmt.Errorf("sparse: reading bcsr shard %d header: %w", s, err)
		}
		rows := hi[s] - lo[s]
		if snnz > nnz-total {
			return nil, fmt.Errorf("sparse: bcsr shard %d claims %d entries, only %d remain of the %d declared", s, snnz, nnz-total, nnz)
		}
		want := int64(rows+1)*8 + int64(snnz)*12
		payload, err = readChunked(br, payload[:0], want)
		if err != nil {
			return nil, fmt.Errorf("sparse: reading bcsr shard %d payload: %w", s, err)
		}
		if got := uint64(crc32.ChecksumIEEE(payload)); got != scrc {
			return nil, fmt.Errorf("sparse: bcsr shard %d CRC mismatch (file %08x, computed %08x)", s, scrc, got)
		}
		if derr := decodePanel(a, payload, int(lo[s]), int(hi[s]), int64(total), int64(snnz)); derr != nil {
			return nil, fmt.Errorf("sparse: bcsr shard %d: %w", s, derr)
		}
		total += snnz
	}
	if total != nnz {
		return nil, fmt.Errorf("sparse: bcsr header promised %d entries, shards hold %d", nnz, total)
	}
	return a, nil
}

// readChunked fills dst with want bytes from br, growing in bounded
// chunks so a shard header that promises more data than the stream
// holds over-allocates by at most one chunk before the read error.
func readChunked(br io.Reader, dst []byte, want int64) ([]byte, error) {
	const chunk = 1 << 20
	for int64(len(dst)) < want {
		c := want - int64(len(dst))
		if c > chunk {
			c = chunk
		}
		start := len(dst)
		dst = append(dst, make([]byte, c)...)
		if _, err := io.ReadFull(br, dst[start:]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// decodePanel validates and appends one shard's rows to the CSR under
// construction. base is the global entry offset of the panel.
func decodePanel(a *CSR, payload []byte, lo, hi int, base, snnz int64) error {
	rows := hi - lo
	ptrEnd := int64(rows+1) * 8
	ptr := payload[:ptrEnd]
	cols := payload[ptrEnd : ptrEnd+snnz*4]
	vals := payload[ptrEnd+snnz*4:]
	prev := int64(0)
	if first := int64(binary.LittleEndian.Uint64(ptr)); first != 0 {
		return fmt.Errorf("panel rowPtr starts at %d, want 0", first)
	}
	for r := 0; r <= rows; r++ {
		p := int64(binary.LittleEndian.Uint64(ptr[r*8:]))
		if p < prev || p > snnz {
			return fmt.Errorf("panel rowPtr not monotone in [0, %d]: row %d has %d after %d", snnz, r, p, prev)
		}
		prev = p
		a.RowPtr[lo+r] = base + p
	}
	if prev != snnz {
		return fmt.Errorf("panel rowPtr ends at %d, want %d", prev, snnz)
	}
	nOld := len(a.Col)
	a.Col = append(a.Col, make([]int32, snnz)...)
	a.Val = append(a.Val, make([]float64, snnz)...)
	outCol := a.Col[nOld:]
	outVal := a.Val[nOld:]
	for k := int64(0); k < snnz; k++ {
		c := binary.LittleEndian.Uint32(cols[k*4:])
		if uint64(c) >= uint64(a.N) {
			return fmt.Errorf("column %d out of range [0, %d)", c, a.N)
		}
		outCol[k] = int32(c)
	}
	// Columns must be strictly ascending within each row — the canonical
	// accumulation order every engine's bit-reproducibility rests on.
	for r := 0; r < rows; r++ {
		s, e := a.RowPtr[lo+r]-base, a.RowPtr[lo+r+1]-base
		for k := s + 1; k < e; k++ {
			if outCol[k] <= outCol[k-1] {
				return fmt.Errorf("row %d columns not strictly ascending (%d after %d)", lo+r, outCol[k], outCol[k-1])
			}
		}
	}
	for k := int64(0); k < snnz; k++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(vals[k*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("entry %d has non-finite value %v", base+k, v)
		}
		outVal[k] = v
	}
	return nil
}
