package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// binary.go defines the .bcsr on-disk format: the repo's first
// persistent binary interchange outside checkpoints. A matrix is stored
// as a little-endian header plus a sequence of row-panel shards, each
// carrying its own CRC32, so a reader can verify and decode shards
// independently and map them 1:1 onto sched.Pool workers (or dist
// ranks: the panels are exactly the contiguous row ranges the
// partitioner hands out).
//
// Layout (all integers little-endian):
//
//	magic   "BPMFBCSR1\n"                      10 bytes (version 1)
//	header  u64 M, u64 N, u64 NNZ, u64 shards
//	table   shards × (u64 rowLo, u64 rowHi)    contiguous panels covering [0, M)
//	shards  shards × shard, in table order
//
//	shard   u64 nnz, u64 crc32(payload), payload
//	payload (rows+1) × u64 rowPtr              panel-relative, rowPtr[rows] == nnz
//	        nnz × u32 col
//	        nnz × u64 float64-bits val
//
// Per-shard nnz lives with the shard (not the table) so a streaming
// writer never needs to seek; the header NNZ is the post-dedup total.
const bcsrMagic = "BPMFBCSR1\n"

// DefaultShardNNZ is the target number of entries per shard: big enough
// that CRC+decode dominates scheduling overhead, small enough that a
// pool has parallelism to steal (20 shards for the ml-20m nnz).
const DefaultShardNNZ = 1 << 20

// maxBCSRShards caps the declared shard count: legitimate files hold a
// couple of dozen panels (nnz / DefaultShardNNZ), so 16M is far past
// any real file while keeping a hostile header's table claim (and the
// 32-bit byte-offset arithmetic over it) comfortably bounded.
const maxBCSRShards = 1 << 24

// WriteBinary writes a in .bcsr format with DefaultShardNNZ-sized row
// panels. Every write is error-checked so a full disk surfaces here,
// not at load time.
func WriteBinary(w io.Writer, a *CSR) error {
	return WriteBinarySharded(w, a, DefaultShardNNZ)
}

// WriteBinarySharded writes a with row panels targeting shardNNZ
// entries each (a shard always holds at least one full row).
func WriteBinarySharded(w io.Writer, a *CSR, shardNNZ int) error {
	if shardNNZ < 1 {
		shardNNZ = DefaultShardNNZ
	}
	rowNNZ := make([]int64, a.M)
	for r := range rowNNZ {
		rowNNZ[r] = int64(a.RowNNZ(r))
	}
	lo, hi := panelBounds(rowNNZ, shardNNZ)
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	writeU64 := func(v uint64) {
		if err == nil {
			err = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	if _, werr := bw.WriteString(bcsrMagic); werr != nil {
		return fmt.Errorf("sparse: writing bcsr magic: %w", werr)
	}
	writeU64(uint64(a.M))
	writeU64(uint64(a.N))
	writeU64(uint64(a.NNZ()))
	writeU64(uint64(len(lo)))
	for s := range lo {
		writeU64(uint64(lo[s]))
		writeU64(uint64(hi[s]))
	}
	if err != nil {
		return fmt.Errorf("sparse: writing bcsr header: %w", err)
	}
	var payload []byte
	for s := range lo {
		payload = encodePanel(payload[:0], a, lo[s], hi[s])
		writeU64(uint64(a.RowPtr[hi[s]] - a.RowPtr[lo[s]]))
		writeU64(uint64(crc32.ChecksumIEEE(payload)))
		if err == nil {
			_, err = bw.Write(payload)
		}
		if err != nil {
			return fmt.Errorf("sparse: writing bcsr shard %d: %w", s, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sparse: flushing bcsr: %w", err)
	}
	return nil
}

// encodePanel appends the payload bytes of rows [lo, hi) of a to dst.
func encodePanel(dst []byte, a *CSR, lo, hi int) []byte {
	base := a.RowPtr[lo]
	for r := lo; r <= hi; r++ {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(a.RowPtr[r]-base))
	}
	for _, c := range a.Col[base:a.RowPtr[hi]] {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c))
	}
	for _, v := range a.Val[base:a.RowPtr[hi]] {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// bcsrLayout is a .bcsr stream's validated header and shard table: the
// dimensions plus the contiguous row panels covering [0, M). It is the
// part of the format every reader — streaming, mapped, one-shot — must
// agree on, so all three parse it through readBCSRLayout and report
// byte-identical errors for the same corruption.
type bcsrLayout struct {
	m, n, nnz, shards uint64
	lo, hi            []uint64 // per-shard row panel bounds
}

// headerSize returns the byte length of the magic + header + shard
// table region preceding the first shard.
func (l *bcsrLayout) headerSize() int64 {
	return int64(len(bcsrMagic)) + 32 + int64(l.shards)*16
}

// readBCSRLayout reads and validates the magic, header and shard table
// from the front of a .bcsr stream. No header field is trusted for an
// allocation larger than the bytes actually present.
func readBCSRLayout(br io.Reader) (*bcsrLayout, error) {
	magic := make([]byte, len(bcsrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sparse: reading bcsr magic: %w", err)
	}
	if string(magic) != bcsrMagic {
		return nil, fmt.Errorf("sparse: not a bcsr file (magic %q)", magic)
	}
	var err error
	readU64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	m := readU64()
	n := readU64()
	nnz := readU64()
	shards := readU64()
	if err != nil {
		return nil, fmt.Errorf("sparse: reading bcsr header: %w", err)
	}
	if m > maxMMDim || n > maxMMDim {
		return nil, fmt.Errorf("sparse: bcsr dimensions %dx%d out of range [0, %d]", m, n, int64(maxMMDim))
	}
	if shards > maxBCSRShards || (m > 0 && shards == 0) || (m == 0 && shards > 0) {
		return nil, fmt.Errorf("sparse: bcsr claims %d shards for %d rows", shards, m)
	}
	if nnz > math.MaxInt64/16 {
		return nil, fmt.Errorf("sparse: bcsr claims %d entries", nnz)
	}
	// The table is read through the chunked reader so a hostile shard
	// count allocates in proportion to the bytes actually present, not
	// to the claim.
	table, err := readChunked(br, nil, int64(shards)*16)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading bcsr shard table: %w", err)
	}
	lo := make([]uint64, shards)
	hi := make([]uint64, shards)
	for s := range lo {
		lo[s] = binary.LittleEndian.Uint64(table[s*16:])
		hi[s] = binary.LittleEndian.Uint64(table[s*16+8:])
	}
	for s := range lo {
		prev := uint64(0)
		if s > 0 {
			prev = hi[s-1]
		}
		if lo[s] != prev || hi[s] < lo[s] || hi[s] > m {
			return nil, fmt.Errorf("sparse: bcsr shard %d covers rows [%d, %d), want contiguous panels over [0, %d)", s, lo[s], hi[s], m)
		}
	}
	if shards > 0 && hi[shards-1] != m {
		return nil, fmt.Errorf("sparse: bcsr shards cover rows [0, %d) of %d", hi[shards-1], m)
	}
	return &bcsrLayout{m: m, n: n, nnz: nnz, shards: shards, lo: lo, hi: hi}, nil
}

// shardMeta validates one shard's 16-byte header against the layout and
// running entry total, returning the panel's payload byte length.
func (l *bcsrLayout) shardMeta(s int, snnz uint64, total uint64) (payloadLen int64, err error) {
	if snnz > l.nnz-total {
		return 0, fmt.Errorf("sparse: bcsr shard %d claims %d entries, only %d remain of the %d declared", s, snnz, l.nnz-total, l.nnz)
	}
	rows := l.hi[s] - l.lo[s]
	return int64(rows+1)*8 + int64(snnz)*12, nil
}

// ReadBinary reads a .bcsr matrix. Corrupt input — truncated streams,
// shard CRC mismatches, implausible dimensions, non-monotonic row
// pointers, out-of-range columns, non-finite values — is reported as an
// error before it can poison a sampler; no input panics, and no header
// field is trusted for an allocation larger than the bytes actually
// present (reads grow in bounded chunks).
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	lay, err := readBCSRLayout(br)
	if err != nil {
		return nil, err
	}

	a := &CSR{M: int(lay.m), N: int(lay.n), RowPtr: make([]int64, lay.m+1)}
	var payload []byte
	var total uint64
	for s := range lay.lo {
		snnz, scrc, herr := readShardHeader(br)
		if herr != nil {
			return nil, fmt.Errorf("sparse: reading bcsr shard %d header: %w", s, herr)
		}
		want, merr := lay.shardMeta(s, snnz, total)
		if merr != nil {
			return nil, merr
		}
		payload, err = readChunked(br, payload[:0], want)
		if err != nil {
			return nil, fmt.Errorf("sparse: reading bcsr shard %d payload: %w", s, err)
		}
		if verr := verifyShardCRC(s, payload, scrc); verr != nil {
			return nil, verr
		}
		if derr := decodePanel(a, payload, int(lay.lo[s]), int(lay.hi[s]), int64(total), int64(snnz)); derr != nil {
			return nil, fmt.Errorf("sparse: bcsr shard %d: %w", s, derr)
		}
		total += snnz
	}
	if total != lay.nnz {
		return nil, fmt.Errorf("sparse: bcsr header promised %d entries, shards hold %d", lay.nnz, total)
	}
	return a, nil
}

// readShardHeader reads one shard's (nnz, crc) pair.
func readShardHeader(br io.Reader) (snnz, scrc uint64, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(hdr[:]), binary.LittleEndian.Uint64(hdr[8:]), nil
}

// verifyShardCRC checks a shard payload against its declared CRC32.
func verifyShardCRC(s int, payload []byte, scrc uint64) error {
	if got := uint64(crc32.ChecksumIEEE(payload)); got != scrc {
		return fmt.Errorf("sparse: bcsr shard %d CRC mismatch (file %08x, computed %08x)", s, scrc, got)
	}
	return nil
}

// readChunked fills dst with want bytes from br, growing in bounded
// chunks so a shard header that promises more data than the stream
// holds over-allocates by at most one chunk before the read error. On a
// short read it returns dst truncated to the bytes actually received —
// callers keep their scratch allocation for retries — together with an
// error that wraps io.ErrUnexpectedEOF and states both byte counts.
func readChunked(br io.Reader, dst []byte, want int64) ([]byte, error) {
	const chunk = 1 << 20
	for int64(len(dst)) < want {
		c := want - int64(len(dst))
		if c > chunk {
			c = chunk
		}
		start := len(dst)
		dst = append(dst, make([]byte, c)...)
		n, err := io.ReadFull(br, dst[start:])
		if err != nil {
			dst = dst[:start+n]
			return dst, shortReadError(want, int64(len(dst)), err)
		}
	}
	return dst, nil
}

// shortReadError normalizes a truncated read into a byte-accurate
// io.ErrUnexpectedEOF wrap: want bytes were promised, got arrived. A
// clean io.EOF after partial progress is still an unexpected EOF for
// the structure being decoded.
func shortReadError(want, got int64, cause error) error {
	if cause == io.EOF && got > 0 {
		cause = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("sparse: short read: want %d bytes, got %d: %w", want, got, cause)
}

// decodePanel validates and appends one shard's rows to the CSR under
// construction. base is the global entry offset of the panel.
func decodePanel(a *CSR, payload []byte, lo, hi int, base, snnz int64) error {
	rows := hi - lo
	ptrEnd := int64(rows+1) * 8
	ptr := payload[:ptrEnd]
	cols := payload[ptrEnd : ptrEnd+snnz*4]
	vals := payload[ptrEnd+snnz*4:]
	prev := int64(0)
	if first := int64(binary.LittleEndian.Uint64(ptr)); first != 0 {
		return fmt.Errorf("panel rowPtr starts at %d, want 0", first)
	}
	for r := 0; r <= rows; r++ {
		p := int64(binary.LittleEndian.Uint64(ptr[r*8:]))
		if p < prev || p > snnz {
			return fmt.Errorf("panel rowPtr not monotone in [0, %d]: row %d has %d after %d", snnz, r, p, prev)
		}
		prev = p
		a.RowPtr[lo+r] = base + p
	}
	if prev != snnz {
		return fmt.Errorf("panel rowPtr ends at %d, want %d", prev, snnz)
	}
	nOld := len(a.Col)
	a.Col = append(a.Col, make([]int32, snnz)...)
	a.Val = append(a.Val, make([]float64, snnz)...)
	outCol := a.Col[nOld:]
	outVal := a.Val[nOld:]
	for k := int64(0); k < snnz; k++ {
		c := binary.LittleEndian.Uint32(cols[k*4:])
		if uint64(c) >= uint64(a.N) {
			return fmt.Errorf("column %d out of range [0, %d)", c, a.N)
		}
		outCol[k] = int32(c)
	}
	// Columns must be strictly ascending within each row — the canonical
	// accumulation order every engine's bit-reproducibility rests on.
	for r := 0; r < rows; r++ {
		s, e := a.RowPtr[lo+r]-base, a.RowPtr[lo+r+1]-base
		for k := s + 1; k < e; k++ {
			if outCol[k] <= outCol[k-1] {
				return fmt.Errorf("row %d columns not strictly ascending (%d after %d)", lo+r, outCol[k], outCol[k-1])
			}
		}
	}
	for k := int64(0); k < snnz; k++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(vals[k*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("entry %d has non-finite value %v", base+k, v)
		}
		outVal[k] = v
	}
	return nil
}
