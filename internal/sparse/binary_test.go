package sparse

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		a := randomCSR(r, 60, 500)
		for _, shardNNZ := range []int{1, 7, 64, DefaultShardNNZ} {
			var buf bytes.Buffer
			if err := WriteBinarySharded(&buf, a, shardNNZ); err != nil {
				t.Fatal(err)
			}
			b, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("trial %d shardNNZ=%d: %v", trial, shardNNZ, err)
			}
			if !Equal(a, b) {
				t.Fatalf("trial %d shardNNZ=%d: WriteBinary ∘ ReadBinary != id", trial, shardNNZ)
			}
		}
	}
}

func TestBinaryRoundTripEdgeShapes(t *testing.T) {
	shapes := []*CSR{
		NewCOO(1, 1, 0).ToCSR(),  // 1x1 empty
		NewCOO(5, 3, 0).ToCSR(),  // rows but no entries
		NewCOO(0, 0, 0).ToCSR(),  // fully degenerate
		NewCOO(0, 10, 0).ToCSR(), // zero rows, some cols
	}
	one := NewCOO(1, 1, 1)
	one.Add(0, 0, -2.5)
	shapes = append(shapes, one.ToCSR())
	for i, a := range shapes {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, a); err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		b, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		if !Equal(a, b) {
			t.Fatalf("shape %d: round trip changed the matrix", i)
		}
	}
}

// validBCSR renders a small valid shard file for corruption tests.
func validBCSR(t *testing.T) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	a := randomCSR(r, 20, 120)
	var buf bytes.Buffer
	if err := WriteBinarySharded(&buf, a, 30); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	valid := validBCSR(t)
	if _, err := ReadBinary(bytes.NewReader(valid)); err != nil {
		t.Fatalf("baseline file must parse: %v", err)
	}

	// Truncation at every interesting boundary (and a sweep of prefixes):
	// always an error, never a panic or a short success.
	for _, cut := range []int{0, 1, 5, len(bcsrMagic), len(bcsrMagic) + 8, len(bcsrMagic) + 31, len(valid) / 2, len(valid) - 1} {
		if cut >= len(valid) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(valid[:cut])); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}

	// Any single-bit flip in the payload region must be caught (CRC), and
	// flips in the header/table must fail validation. Flip a byte in every
	// 16-byte window to cover both regions without 8*len cases.
	for off := 0; off < len(valid); off += 16 {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		if bytes.Equal(mut, valid) {
			continue
		}
		a, err := ReadBinary(bytes.NewReader(mut))
		if err == nil {
			// A flip inside a float64's mantissa bits in the header-free
			// region cannot legitimately succeed: CRC covers all payloads.
			// The only bytes a flip may leave valid are the magic's? No —
			// magic mismatch errors too. Accepting is a corruption escape.
			t.Errorf("bit flip at offset %d accepted (matrix %dx%d)", off, a.M, a.N)
		}
	}
}

func TestBinaryRejectsHostileHeaders(t *testing.T) {
	le := binary.LittleEndian
	base := validBCSR(t)
	patch := func(off int, v uint64) []byte {
		mut := append([]byte(nil), base...)
		le.PutUint64(mut[off:], v)
		return mut
	}
	h := len(bcsrMagic)
	cases := map[string][]byte{
		"giant rows":        patch(h, 1<<40),
		"giant cols":        patch(h+8, 1<<40),
		"giant nnz":         patch(h+16, 1<<62),
		"zero shards":       patch(h+24, 0),
		"giant shard count": patch(h+24, 1<<50),
		"bad magic":         append([]byte("BPMFBCSR9\n"), base[h:]...),
	}
	for name, mut := range cases {
		if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestConverterMatchesSequentialParse(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	dir := t.TempDir()
	for trial := 0; trial < 8; trial++ {
		// Fixed-size dims so even after duplicate summing hundreds of
		// entries remain and ShardNNZ=50 yields several shards.
		c := NewCOO(30+trial, 25, 600)
		for k := 0; k < 600; k++ {
			c.Add(r.Intn(c.M), r.Intn(c.N), r.NormFloat64()*10)
		}
		a := c.ToCSR()
		mmPath := filepath.Join(dir, "m.mtx")
		bcsrPath := filepath.Join(dir, "m.bcsr")
		f, err := os.Create(mmPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteMatrixMarket(f, a); err != nil {
			t.Fatal(err)
		}
		f.Close()

		stats, err := Converter{ShardNNZ: 50, TmpDir: dir}.Convert(mmPath, bcsrPath)
		if err != nil {
			t.Fatal(err)
		}
		if stats.M != a.M || stats.N != a.N || stats.NNZ != int64(a.NNZ()) {
			t.Fatalf("stats %+v vs matrix %dx%d nnz %d", stats, a.M, a.N, a.NNZ())
		}
		if stats.Shards < 2 {
			t.Fatalf("expected multiple shards at ShardNNZ=50 with %d entries, got %d", a.NNZ(), stats.Shards)
		}
		got, err := Load(bcsrPath)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(a, got) {
			t.Fatalf("trial %d: convert → load differs from the source matrix", trial)
		}
		// No spill files may survive.
		leftovers, _ := filepath.Glob(filepath.Join(dir, "bcsr-spill-*"))
		if len(leftovers) != 0 {
			t.Fatalf("spill files left behind: %v", leftovers)
		}
	}
}

func TestLoadSniffsFormats(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	a := randomCSR(r, 30, 200)
	dir := t.TempDir()

	mm := filepath.Join(dir, "a.mtx")
	f, err := os.Create(mm)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixMarket(f, a); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bc := filepath.Join(dir, "a.bcsr")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bc, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{mm, bc} {
		got, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if !Equal(a, got) {
			t.Fatalf("Load(%s) differs from source", path)
		}
	}

	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte{0xde, 0xad, 0xbe, 0xef}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(junk); err == nil {
		t.Fatal("Load accepted an unrecognized format")
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("Load of a missing file must error")
	}
}
