// Package sparse provides the sparse rating-matrix machinery BPMF runs on:
// a COO builder, compressed sparse row (CSR) storage, transposition
// (giving CSC access for the movie loop), row/column permutation for the
// communication-minimizing reordering of Section IV-B, degree statistics
// for the workload model, MatrixMarket I/O and train/test splitting.
package sparse

import (
	"fmt"
	"sort"
)

// Entry is one observed rating: row (user), column (movie), value.
type Entry struct {
	Row, Col int32
	Val      float64
}

// COO is a coordinate-format sparse matrix under construction.
type COO struct {
	M, N    int // rows (users), cols (movies)
	Entries []Entry
}

// NewCOO creates an empty M x N COO matrix with capacity hint nnz.
func NewCOO(m, n, nnz int) *COO {
	return &COO{M: m, N: n, Entries: make([]Entry, 0, nnz)}
}

// Add appends an entry. Duplicate (row, col) pairs are kept; ToCSR sums
// them (standard COO semantics).
func (c *COO) Add(row, col int, val float64) {
	if row < 0 || row >= c.M || col < 0 || col >= c.N {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of bounds %dx%d", row, col, c.M, c.N))
	}
	c.Entries = append(c.Entries, Entry{Row: int32(row), Col: int32(col), Val: val})
}

// CSR is a compressed-sparse-row matrix. Column indices within each row
// are sorted ascending; this ordering is part of the package contract
// because the BPMF kernels accumulate per-item sums in storage order and
// cross-engine bit-reproducibility depends on a canonical order.
type CSR struct {
	M, N   int
	RowPtr []int64   // len M+1
	Col    []int32   // len nnz
	Val    []float64 // len nnz
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Col) }

// RowNNZ returns the number of entries in row i.
func (a *CSR) RowNNZ(i int) int { return int(a.RowPtr[i+1] - a.RowPtr[i]) }

// Row returns the column indices and values of row i as views.
func (a *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.Col[lo:hi], a.Val[lo:hi]
}

// ToCSR converts the COO matrix to CSR, sorting columns within each row
// and summing duplicates.
func (c *COO) ToCSR() *CSR {
	counts := make([]int64, c.M+1)
	for _, e := range c.Entries {
		counts[e.Row+1]++
	}
	for i := 0; i < c.M; i++ {
		counts[i+1] += counts[i]
	}
	nnz := len(c.Entries)
	col := make([]int32, nnz)
	val := make([]float64, nnz)
	next := make([]int64, c.M)
	copy(next, counts[:c.M])
	for _, e := range c.Entries {
		p := next[e.Row]
		col[p] = e.Col
		val[p] = e.Val
		next[e.Row] = p + 1
	}
	a := &CSR{M: c.M, N: c.N, RowPtr: counts, Col: col, Val: val}
	a.sortRowsAndDedup()
	return a
}

// sortRowsAndDedup sorts each row by column and merges duplicates in place.
func (a *CSR) sortRowsAndDedup() {
	outPtr := make([]int64, a.M+1)
	w := int64(0)
	for i := 0; i < a.M; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.Col[lo:hi]
		vals := a.Val[lo:hi]
		sort.Sort(&rowSorter{cols, vals})
		outPtr[i] = w
		for k := 0; k < len(cols); k++ {
			if k > 0 && cols[k] == cols[k-1] {
				a.Val[w-1] += vals[k]
				continue
			}
			a.Col[w] = cols[k]
			a.Val[w] = vals[k]
			w++
		}
	}
	outPtr[a.M] = w
	a.RowPtr = outPtr
	a.Col = a.Col[:w]
	a.Val = a.Val[:w]
}

type rowSorter struct {
	cols []int32
	vals []float64
}

func (s *rowSorter) Len() int           { return len(s.cols) }
func (s *rowSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *rowSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Transpose returns the CSR representation of aᵀ, i.e. CSC access to a.
// The BPMF movie loop iterates the transpose so that each movie's raters
// are contiguous. Column order within each transposed row is ascending,
// preserving the canonical accumulation order.
func (a *CSR) Transpose() *CSR {
	counts := make([]int64, a.N+1)
	for _, c := range a.Col {
		counts[c+1]++
	}
	for j := 0; j < a.N; j++ {
		counts[j+1] += counts[j]
	}
	col := make([]int32, a.NNZ())
	val := make([]float64, a.NNZ())
	next := make([]int64, a.N)
	copy(next, counts[:a.N])
	for i := 0; i < a.M; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			j := a.Col[p]
			q := next[j]
			col[q] = int32(i)
			val[q] = a.Val[p]
			next[j] = q + 1
		}
	}
	// Rows of a are visited in ascending order, so each transposed row's
	// columns come out ascending already.
	return &CSR{M: a.N, N: a.M, RowPtr: counts, Col: col, Val: val}
}

// Permute returns the matrix with rows and columns relabelled:
// new(i, j) = old(rowPerm[i], colPerm[j])... more precisely, entry
// (r, c, v) of a becomes (rowInv[r], colInv[c], v) where rowInv is the
// inverse of rowPerm. Pass nil to leave a dimension unpermuted.
// rowPerm[i] = "which old row sits at new position i".
func (a *CSR) Permute(rowPerm, colPerm []int32) *CSR {
	rowInv := invertPerm(rowPerm, a.M)
	colInv := invertPerm(colPerm, a.N)
	coo := NewCOO(a.M, a.N, a.NNZ())
	for i := 0; i < a.M; i++ {
		cols, vals := a.Row(i)
		ni := i
		if rowInv != nil {
			ni = int(rowInv[i])
		}
		for k, c := range cols {
			nc := int(c)
			if colInv != nil {
				nc = int(colInv[c])
			}
			coo.Add(ni, nc, vals[k])
		}
	}
	return coo.ToCSR()
}

func invertPerm(p []int32, n int) []int32 {
	if p == nil {
		return nil
	}
	if len(p) != n {
		panic("sparse: permutation length mismatch")
	}
	inv := make([]int32, n)
	seen := make([]bool, n)
	for i, v := range p {
		if v < 0 || int(v) >= n || seen[v] {
			panic("sparse: invalid permutation")
		}
		seen[v] = true
		inv[v] = int32(i)
	}
	return inv
}

// RowDegrees returns the number of stored entries per row.
func (a *CSR) RowDegrees() []int {
	d := make([]int, a.M)
	for i := range d {
		d[i] = a.RowNNZ(i)
	}
	return d
}

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max      int
	Mean          float64
	P50, P90, P99 int
}

// Stats computes summary statistics of a degree slice.
func Stats(deg []int) DegreeStats {
	if len(deg) == 0 {
		return DegreeStats{}
	}
	s := append([]int(nil), deg...)
	sort.Ints(s)
	var sum int64
	for _, d := range s {
		sum += int64(d)
	}
	pct := func(p float64) int { return s[int(p*float64(len(s)-1))] }
	return DegreeStats{
		Min: s[0], Max: s[len(s)-1],
		Mean: float64(sum) / float64(len(s)),
		P50:  pct(0.50), P90: pct(0.90), P99: pct(0.99),
	}
}

// Equal reports whether two CSR matrices have identical structure and
// values (exact float comparison). Intended for tests.
func Equal(a, b *CSR) bool {
	if a.M != b.M || a.N != b.N || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}
