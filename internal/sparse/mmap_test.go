package sparse

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// mmap_test.go is the mapped reader's corpus: OpenBinary must accept
// exactly what ReadBinary accepts, report the same errors for the same
// corruption (eagerly for framing damage, lazily for payload damage),
// and touch only the shards actually read.

// multiShardBCSR renders a deterministic file with several shards (20
// rows x 10 entries each, 40 entries per shard => 5 shards).
func multiShardBCSR(t *testing.T) []byte {
	t.Helper()
	c := NewCOO(20, 30, 200)
	r := rand.New(rand.NewSource(97))
	for i := 0; i < 20; i++ {
		for k := 0; k < 10; k++ {
			c.Add(i, (i+3*k)%30, r.NormFloat64()*5)
		}
	}
	var buf bytes.Buffer
	if err := WriteBinarySharded(&buf, c.ToCSR(), 40); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeTempBCSR(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.bcsr")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMappedMatrixMatchesReadBinary(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		a := randomCSR(r, 50, 400)
		var buf bytes.Buffer
		if err := WriteBinarySharded(&buf, a, 40); err != nil {
			t.Fatal(err)
		}
		// Through a real file (the mmap path on unix)...
		mp, err := OpenBinary(writeTempBCSR(t, buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: OpenBinary: %v", trial, err)
		}
		got, err := mp.Matrix()
		if err != nil {
			t.Fatalf("trial %d: Matrix: %v", trial, err)
		}
		if !Equal(a, got) {
			t.Fatalf("trial %d: mapped decode differs from source", trial)
		}
		st := mp.Stats()
		if st.ShardsTouched != int64(mp.Shards()) {
			t.Fatalf("full decode touched %d of %d shards", st.ShardsTouched, mp.Shards())
		}
		mp.Close()
		// ...and through the in-memory source (the portable fallback
		// interface fuzzing uses).
		mb, err := openBinaryBytes(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		got2, err := mb.Matrix()
		if err != nil || !Equal(a, got2) {
			t.Fatalf("trial %d: bytes-backed decode differs (err=%v)", trial, err)
		}
	}
}

func TestMappedReaderAtFallbackMatches(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randomCSR(r, 40, 300)
	var buf bytes.Buffer
	if err := WriteBinarySharded(&buf, a, 64); err != nil {
		t.Fatal(err)
	}
	path := writeTempBCSR(t, buf.Bytes())
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, _ := f.Stat()
	mp, err := newMapped(fileSource{f: f}, st.Size())
	if err != nil {
		t.Fatal(err)
	}
	got, err := mp.Matrix()
	if err != nil || !Equal(a, got) {
		t.Fatalf("pread fallback decode differs (err=%v)", err)
	}
}

func TestMappedRowAccessors(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	a := randomCSR(r, 60, 500)
	var buf bytes.Buffer
	if err := WriteBinarySharded(&buf, a, 50); err != nil {
		t.Fatal(err)
	}
	mp, err := openBinaryBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m, n := mp.Dims()
	if m != a.M || n != a.N {
		t.Fatalf("Dims = %dx%d, want %dx%d", m, n, a.M, a.N)
	}
	var cols []int32
	var vals []float64
	for i := 0; i < a.M; i++ {
		cols, err = mp.AppendRowCols(cols[:0], i)
		if err != nil {
			t.Fatalf("row %d cols: %v", i, err)
		}
		vals, err = mp.AppendRowVals(vals[:0], i)
		if err != nil {
			t.Fatalf("row %d vals: %v", i, err)
		}
		nnz, err := mp.RowNNZ(i)
		if err != nil || nnz != a.RowNNZ(i) {
			t.Fatalf("row %d nnz = %d (err=%v), want %d", i, nnz, err, a.RowNNZ(i))
		}
		wantC, wantV := a.Row(i)
		if len(cols) != len(wantC) {
			t.Fatalf("row %d: %d cols, want %d", i, len(cols), len(wantC))
		}
		for k := range cols {
			if cols[k] != wantC[k] || vals[k] != wantV[k] {
				t.Fatalf("row %d entry %d: (%d,%v) want (%d,%v)", i, k, cols[k], vals[k], wantC[k], wantV[k])
			}
		}
	}
	if _, err := mp.AppendRowCols(nil, -1); err == nil {
		t.Fatal("negative row accepted")
	}
	if _, err := mp.AppendRowCols(nil, a.M); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

// TestMappedLazyTouch pins the shard-native contract: reading one row
// verifies exactly that row's shard.
func TestMappedLazyTouch(t *testing.T) {
	mp, err := openBinaryBytes(multiShardBCSR(t))
	if err != nil {
		t.Fatal(err)
	}
	if mp.Shards() < 4 {
		t.Fatalf("need several shards, got %d", mp.Shards())
	}
	if st := mp.Stats(); st.ShardsTouched != 0 || st.PayloadBytesTouched != 0 {
		t.Fatalf("open already touched payloads: %+v", st)
	}
	if _, err := mp.AppendRowCols(nil, 0); err != nil {
		t.Fatal(err)
	}
	if st := mp.Stats(); st.ShardsTouched != 1 {
		t.Fatalf("one row read touched %d shards", st.ShardsTouched)
	}
	// Re-reading the same shard must not re-verify.
	if _, err := mp.AppendRowCols(nil, 1); err != nil {
		t.Fatal(err)
	}
	if st := mp.Stats(); st.ShardsTouched != 1 {
		t.Fatalf("second row of the same shard re-touched: %d", st.ShardsTouched)
	}
}

// corruptCase builds a mutated image and returns the ReadBinary error
// for parity comparison.
func readBinaryErr(data []byte) error {
	_, err := ReadBinary(bytes.NewReader(data))
	return err
}

// mappedErr runs the mapped pipeline to completion: open, then full
// decode (which touches every shard lazily).
func mappedErr(data []byte) error {
	mp, err := openBinaryBytes(data)
	if err != nil {
		return err
	}
	_, err = mp.Matrix()
	return err
}

func TestMappedReportsReadBinaryErrors(t *testing.T) {
	valid := multiShardBCSR(t)
	le := binary.LittleEndian

	// Locate shard 1's payload to corrupt it (and only it).
	mp, err := openBinaryBytes(valid)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Shards() < 3 {
		t.Fatalf("corpus needs >= 3 shards, got %d", mp.Shards())
	}
	shard1Payload := int(mp.pOff[1])
	shard1Rows := int(mp.lay.hi[1] - mp.lay.lo[1])

	cases := map[string][]byte{
		"truncated mid-payload":      valid[:shard1Payload+5],
		"truncated mid-shard-header": valid[:shard1Payload-9],
		"truncated header":           valid[:len(bcsrMagic)+17],
		"truncated table":            valid[:len(bcsrMagic)+40],
	}
	// CRC-bad shard: flip one value byte inside shard 1's payload.
	crcBad := append([]byte(nil), valid...)
	crcBad[shard1Payload+shard1Rows*8+1] ^= 0x5a
	cases["crc-bad shard"] = crcBad
	// Shard table not covering [0, M): bump shard 1's rowLo.
	gap := append([]byte(nil), valid...)
	tableOff := len(bcsrMagic) + 32
	le.PutUint64(gap[tableOff+16:], le.Uint64(gap[tableOff+16:])+1)
	cases["table gap"] = gap

	for name, mut := range cases {
		rbErr := readBinaryErr(mut)
		mpErr := mappedErr(mut)
		if rbErr == nil || mpErr == nil {
			t.Errorf("%s: accepted (ReadBinary err=%v, mapped err=%v)", name, rbErr, mpErr)
			continue
		}
		if rbErr.Error() != mpErr.Error() {
			t.Errorf("%s: error mismatch\n  ReadBinary: %v\n  mapped:     %v", name, rbErr, mpErr)
		}
	}

	// CRC-bad shard, touched lazily: open succeeds, the damaged shard
	// errors on first touch, other shards stay readable.
	mp2, err := openBinaryBytes(crcBad)
	if err != nil {
		t.Fatalf("open must defer payload verification: %v", err)
	}
	if _, err := mp2.AppendRowCols(nil, 0); err != nil {
		t.Fatalf("undamaged shard 0 unreadable: %v", err)
	}
	badRow := int(mp2.lay.lo[1])
	if _, err := mp2.AppendRowCols(nil, badRow); err == nil {
		t.Fatal("CRC-damaged shard served rows")
	} else if rb := readBinaryErr(crcBad); rb == nil || err.Error() != rb.Error() {
		t.Fatalf("lazy CRC error %q != ReadBinary error %q", err, rb)
	}
	if st := mp2.Stats(); st.ShardsTouched != 1 {
		t.Fatalf("failed verification counted as touched: %+v", st)
	}
}

func TestMappedEmptyMatrix(t *testing.T) {
	empty := NewCOO(0, 10, 0).ToCSR() // M=0, shards=0
	var buf bytes.Buffer
	if err := WriteBinary(&buf, empty); err != nil {
		t.Fatal(err)
	}
	mp, err := openBinaryBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("empty matrix rejected: %v", err)
	}
	if mp.Shards() != 0 {
		t.Fatalf("empty matrix has %d shards", mp.Shards())
	}
	got, err := mp.Matrix()
	if err != nil || !Equal(empty, got) {
		t.Fatalf("empty decode differs (err=%v)", err)
	}
	// The mmap-backed open must tolerate it too (zero-length payload
	// region; some platforms refuse tiny maps — fallback covers them).
	mf, err := OpenBinary(writeTempBCSR(t, buf.Bytes()))
	if err != nil {
		t.Fatalf("file-backed empty open: %v", err)
	}
	mf.Close()
}

// TestMappedTrailingNNZMismatch pins the eager framing check: a header
// that promises more entries than the shards hold fails at open with
// ReadBinary's message.
func TestMappedTrailingNNZMismatch(t *testing.T) {
	valid := multiShardBCSR(t)
	mut := append([]byte(nil), valid...)
	le := binary.LittleEndian
	le.PutUint64(mut[len(bcsrMagic)+16:], le.Uint64(mut[len(bcsrMagic)+16:])+1)
	rbErr := readBinaryErr(mut)
	_, mpErr := openBinaryBytes(mut)
	if rbErr == nil || mpErr == nil {
		t.Fatalf("inflated nnz accepted (ReadBinary=%v, mapped=%v)", rbErr, mpErr)
	}
}

// TestReadChunkedKeepsScratch pins the repaired contract: a short read
// returns the bytes that did arrive plus a byte-accurate error.
func TestReadChunkedKeepsScratch(t *testing.T) {
	src := bytes.NewReader([]byte{1, 2, 3, 4, 5})
	dst, err := readChunked(src, make([]byte, 0, 64), 9)
	if err == nil {
		t.Fatal("short stream accepted")
	}
	if len(dst) != 5 || cap(dst) < 64 {
		t.Fatalf("scratch lost: len=%d cap=%d", len(dst), cap(dst))
	}
	for i, b := range dst {
		if b != byte(i+1) {
			t.Fatalf("partial bytes corrupted: %v", dst)
		}
	}
	want := "sparse: short read: want 9 bytes, got 5: unexpected EOF"
	if err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
}

// TestCheckPanelMatchesDecodePanel: a CRC-correct but structurally
// corrupt shard must be rejected by the lazy verifier with the same
// message the decoding readers produce.
func TestCheckPanelMatchesDecodePanel(t *testing.T) {
	valid := multiShardBCSR(t)
	mp, err := openBinaryBytes(valid)
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	shard := 1
	rows := int(mp.lay.hi[shard] - mp.lay.lo[shard])
	payloadOff := int(mp.pOff[shard])
	payloadLen := int(mp.payloadLen(shard))

	corrupt := func(mutate func(payload []byte)) []byte {
		mut := append([]byte(nil), valid...)
		p := mut[payloadOff : payloadOff+payloadLen]
		mutate(p)
		// Re-sign so only the structural check can catch it.
		le.PutUint64(mut[payloadOff-8:], uint64(crc32.ChecksumIEEE(p)))
		return mut
	}
	cases := map[string][]byte{
		"rowptr not monotone": corrupt(func(p []byte) { le.PutUint64(p[8:], 1<<40) }),
		"col out of range":    corrupt(func(p []byte) { le.PutUint32(p[(rows+1)*8:], 1<<30) }),
		"non-finite value": corrupt(func(p []byte) {
			snnz := int(mp.pNNZ[shard])
			le.PutUint64(p[(rows+1)*8+snnz*4:], math.Float64bits(math.NaN()))
		}),
	}
	for name, mut := range cases {
		rbErr := readBinaryErr(mut)
		mpErr := mappedErr(mut)
		if rbErr == nil || mpErr == nil {
			t.Errorf("%s: accepted (ReadBinary=%v, mapped=%v)", name, rbErr, mpErr)
			continue
		}
		if rbErr.Error() != mpErr.Error() {
			t.Errorf("%s: error mismatch\n  ReadBinary: %v\n  mapped:     %v", name, rbErr, mpErr)
		}
	}
}
