package sparse

import (
	"bytes"
	"math/rand"
	"testing"
)

// collectStream drains an iterator into a full CSR for comparison.
func collectStream(t *testing.T, it *ShardIter) (*CSR, error) {
	t.Helper()
	m, n, _, _ := it.Dims()
	a := &CSR{M: m, N: n, RowPtr: make([]int64, m+1)}
	for it.Next() {
		p := it.Panel()
		base := int64(len(a.Col))
		pc, pv := p.A.Col, p.A.Val
		a.Col = append(a.Col, pc...)
		a.Val = append(a.Val, pv...)
		for r := 0; r <= p.A.M; r++ {
			a.RowPtr[p.RowLo+r] = base + p.A.RowPtr[r]
		}
	}
	return a, it.Err()
}

func TestShardIterMatchesReadBinary(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		a := randomCSR(r, 45, 350)
		for _, shardNNZ := range []int{1, 20, DefaultShardNNZ} {
			var buf bytes.Buffer
			if err := WriteBinarySharded(&buf, a, shardNNZ); err != nil {
				t.Fatal(err)
			}
			it, err := NewShardIter(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := collectStream(t, it)
			if err != nil {
				t.Fatalf("trial %d shardNNZ=%d: %v", trial, shardNNZ, err)
			}
			if !Equal(a, got) {
				t.Fatalf("trial %d shardNNZ=%d: streamed panels differ from source", trial, shardNNZ)
			}
		}
	}
}

func TestShardIterPanelsAreValidatedAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	a := randomCSR(r, 50, 600)
	var buf bytes.Buffer
	if err := WriteBinarySharded(&buf, a, 64); err != nil {
		t.Fatal(err)
	}
	it, err := NewShardIter(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	prevHi, panels := 0, 0
	for it.Next() {
		p := it.Panel()
		if p.RowLo != prevHi {
			t.Fatalf("panel %d starts at %d, want %d", panels, p.RowLo, prevHi)
		}
		if p.A.M != p.RowHi-p.RowLo {
			t.Fatalf("panel CSR has %d rows for range [%d,%d)", p.A.M, p.RowLo, p.RowHi)
		}
		for i := 0; i < p.A.M; i++ {
			wc, wv := a.Row(p.RowLo + i)
			gc, gv := p.A.Row(i)
			if len(gc) != len(wc) {
				t.Fatalf("panel row %d has %d entries, want %d", p.RowLo+i, len(gc), len(wc))
			}
			for k := range gc {
				if gc[k] != wc[k] || gv[k] != wv[k] {
					t.Fatalf("panel row %d entry %d differs", p.RowLo+i, k)
				}
			}
		}
		prevHi = p.RowHi
		panels++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if prevHi != a.M || panels < 2 {
		t.Fatalf("panels cover [0,%d) in %d shards, want [0,%d) in >= 2", prevHi, panels, a.M)
	}
}

func TestShardIterRejectsCorrupt(t *testing.T) {
	valid := validBCSR(t)
	drain := func(data []byte) error {
		it, err := NewShardIter(bytes.NewReader(data))
		if err != nil {
			return err
		}
		for it.Next() {
		}
		return it.Err()
	}
	if err := drain(valid); err != nil {
		t.Fatalf("baseline stream must drain cleanly: %v", err)
	}
	for _, cut := range []int{1, len(bcsrMagic) + 8, len(valid) / 2, len(valid) - 3} {
		if err := drain(valid[:cut]); err == nil {
			t.Errorf("truncation at %d accepted by the stream reader", cut)
		}
	}
	// Bit flips anywhere must surface exactly like ReadBinary.
	for off := 0; off < len(valid); off += 23 {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x10
		if bytes.Equal(mut, valid) {
			continue
		}
		sErr := drain(mut)
		rErr := readBinaryErr(mut)
		if (sErr == nil) != (rErr == nil) {
			t.Errorf("flip at %d: stream err=%v, ReadBinary err=%v", off, sErr, rErr)
		}
	}
}

func TestLoadStreamSniffsAndCloses(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	a := randomCSR(r, 30, 250)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	path := writeTempBCSR(t, buf.Bytes())
	it, err := LoadStream(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := collectStream(t, it)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, got) {
		t.Fatal("LoadStream differs from source")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	// MatrixMarket input is not streamable; the error must say so
	// rather than pretending the file is corrupt.
	var mm bytes.Buffer
	if err := WriteMatrixMarket(&mm, a); err != nil {
		t.Fatal(err)
	}
	mmPath := writeTempBCSR(t, mm.Bytes())
	if _, err := LoadStream(mmPath); err == nil {
		t.Fatal("LoadStream accepted MatrixMarket input")
	}
}
