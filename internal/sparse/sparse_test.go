package sparse

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCSR() *CSR {
	c := NewCOO(3, 4, 5)
	c.Add(0, 1, 1.5)
	c.Add(0, 3, 2.5)
	c.Add(2, 0, -1)
	c.Add(1, 2, 4)
	c.Add(2, 3, 7)
	return c.ToCSR()
}

func TestCOOToCSR(t *testing.T) {
	a := smallCSR()
	if a.M != 3 || a.N != 4 || a.NNZ() != 5 {
		t.Fatalf("dims %dx%d nnz %d", a.M, a.N, a.NNZ())
	}
	cols, vals := a.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[0] != 1.5 || vals[1] != 2.5 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
	if a.RowNNZ(1) != 1 || a.RowNNZ(2) != 2 {
		t.Fatal("row nnz wrong")
	}
}

func TestCSRColumnsSorted(t *testing.T) {
	c := NewCOO(1, 10, 4)
	c.Add(0, 7, 1)
	c.Add(0, 2, 2)
	c.Add(0, 9, 3)
	c.Add(0, 0, 4)
	a := c.ToCSR()
	cols, _ := a.Row(0)
	for k := 1; k < len(cols); k++ {
		if cols[k] <= cols[k-1] {
			t.Fatalf("columns not strictly ascending: %v", cols)
		}
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	c := NewCOO(2, 2, 3)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2.5)
	c.Add(1, 1, 3)
	a := c.ToCSR()
	if a.NNZ() != 2 {
		t.Fatalf("expected dedup to 2 entries, got %d", a.NNZ())
	}
	_, vals := a.Row(0)
	if vals[0] != 3.5 {
		t.Fatalf("duplicate not summed: %v", vals[0])
	}
}

func TestCOOBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds Add must panic")
		}
	}()
	NewCOO(2, 2, 1).Add(2, 0, 1)
}

func TestTranspose(t *testing.T) {
	a := smallCSR()
	at := a.Transpose()
	if at.M != a.N || at.N != a.M || at.NNZ() != a.NNZ() {
		t.Fatal("transpose dims wrong")
	}
	// Every entry must appear transposed.
	for i := 0; i < a.M; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			tcols, tvals := at.Row(int(c))
			found := false
			for k2, tc := range tcols {
				if int(tc) == i && tvals[k2] == vals[k] {
					found = true
				}
			}
			if !found {
				t.Fatalf("entry (%d,%d) missing from transpose", i, c)
			}
		}
	}
}

func TestTransposeTwiceIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(20), 1+r.Intn(20)
		c := NewCOO(m, n, 30)
		for k := 0; k < 30; k++ {
			c.Add(r.Intn(m), r.Intn(n), r.NormFloat64())
		}
		a := c.ToCSR()
		return Equal(a, a.Transpose().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeRowsSorted(t *testing.T) {
	a := smallCSR().Transpose()
	for i := 0; i < a.M; i++ {
		cols, _ := a.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("transpose row %d columns not ascending: %v", i, cols)
			}
		}
	}
}

func TestPermuteIdentity(t *testing.T) {
	a := smallCSR()
	id3 := []int32{0, 1, 2}
	id4 := []int32{0, 1, 2, 3}
	if !Equal(a, a.Permute(id3, id4)) {
		t.Fatal("identity permutation changed the matrix")
	}
	if !Equal(a, a.Permute(nil, nil)) {
		t.Fatal("nil permutation changed the matrix")
	}
}

func TestPermuteRows(t *testing.T) {
	a := smallCSR()
	// rowPerm[i] = old row at new position i: reverse rows.
	p := a.Permute([]int32{2, 1, 0}, nil)
	cols, vals := p.Row(0)
	wcols, wvals := a.Row(2)
	if len(cols) != len(wcols) {
		t.Fatal("reversed row 0 wrong length")
	}
	for k := range cols {
		if cols[k] != wcols[k] || vals[k] != wvals[k] {
			t.Fatal("row permutation mismatch")
		}
	}
}

func TestPermuteInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid permutation must panic")
		}
	}()
	smallCSR().Permute([]int32{0, 0, 1}, nil)
}

func TestPermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 2+r.Intn(15), 2+r.Intn(15)
		c := NewCOO(m, n, 40)
		for k := 0; k < 40; k++ {
			c.Add(r.Intn(m), r.Intn(n), float64(1+r.Intn(5)))
		}
		a := c.ToCSR()
		rp := randPerm32(r, m)
		cp := randPerm32(r, n)
		// Applying a permutation then its inverse restores the matrix.
		b := a.Permute(rp, cp)
		back := b.Permute(inverse32(rp), inverse32(cp))
		return Equal(a, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randPerm32(r *rand.Rand, n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func inverse32(p []int32) []int32 {
	inv := make([]int32, len(p))
	for i, v := range p {
		inv[v] = int32(i)
	}
	return inv
}

func TestRowDegreesAndStats(t *testing.T) {
	a := smallCSR()
	d := a.RowDegrees()
	if d[0] != 2 || d[1] != 1 || d[2] != 2 {
		t.Fatalf("degrees %v", d)
	}
	s := Stats(d)
	if s.Min != 1 || s.Max != 2 || s.Mean < 1.6 || s.Mean > 1.7 {
		t.Fatalf("stats %+v", s)
	}
	if Stats(nil) != (DegreeStats{}) {
		t.Fatal("empty stats must be zero")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := smallCSR()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("MatrixMarket round trip changed the matrix")
	}
}

func TestMatrixMarketRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrixMarket(bytes.NewBufferString("not a matrix")); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := ReadMatrixMarket(bytes.NewBufferString("%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1\n")); err == nil {
		t.Fatal("expected entry-count error")
	}
}

func TestSplitTrainTest(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m, n := 60, 40
	c := NewCOO(m, n, 2000)
	for k := 0; k < 2000; k++ {
		c.Add(r.Intn(m), r.Intn(n), r.Float64())
	}
	a := c.ToCSR()
	train, test := SplitTrainTest(a, 0.2, 77)
	if train.NNZ()+len(test) != a.NNZ() {
		t.Fatalf("split loses entries: %d + %d != %d", train.NNZ(), len(test), a.NNZ())
	}
	frac := float64(len(test)) / float64(a.NNZ())
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("test fraction %v far from 0.2", frac)
	}
	// No row or column of the original matrix may be empty in training.
	rows := train.RowDegrees()
	colSeen := make([]bool, n)
	for _, ci := range train.Col {
		colSeen[ci] = true
	}
	for i, d := range rows {
		if a.RowNNZ(i) > 0 && d == 0 {
			t.Fatalf("row %d lost all training entries", i)
		}
	}
	at := a.Transpose()
	for j := 0; j < n; j++ {
		if at.RowNNZ(j) > 0 && !colSeen[j] {
			t.Fatalf("col %d lost all training entries", j)
		}
	}
	// Deterministic in the seed.
	train2, test2 := SplitTrainTest(a, 0.2, 77)
	if !Equal(train, train2) || len(test) != len(test2) {
		t.Fatal("split not deterministic")
	}
}
