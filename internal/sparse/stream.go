package sparse

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// stream.go is the bounded-memory read path of the .bcsr format: a
// ShardIter yields one validated row panel at a time, so a matrix
// larger than RAM can be split, counted, or fed shard-by-shard to the
// distributed planner without ever materializing the full CSR. Peak
// memory is one shard's payload plus its decoded panel.

// Panel is one validated row panel of a sharded matrix: rows
// [RowLo, RowHi) of the full matrix, held as a standalone
// (RowHi-RowLo) × N CSR whose row 0 is global row RowLo.
type Panel struct {
	RowLo, RowHi int
	A            *CSR
}

// ShardIter iterates a .bcsr stream panel by panel. Use:
//
//	it, err := sparse.LoadStream(path)
//	for it.Next() {
//	    p := it.Panel() // valid until the next Next call
//	}
//	if err := it.Err(); err != nil { ... }
//	it.Close()
type ShardIter struct {
	br      *bufio.Reader
	closer  io.Closer
	lay     *bcsrLayout
	s       int
	total   uint64
	payload []byte // reused scratch across panels
	cur     Panel
	err     error
	done    bool
}

// LoadStream opens path as a .bcsr shard stream. Unlike Load it does
// not decode anything up front: the header and shard table are
// validated, then panels arrive one Next at a time in bounded memory.
// MatrixMarket input is rejected — text parsing needs the whole byte
// stream; convert first (sparse.Converter) to stream it.
func LoadStream(path string) (*ShardIter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	it, err := NewShardIter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	it.closer = f
	return it, nil
}

// NewShardIter wraps an io.Reader positioned at the start of a .bcsr
// stream. The caller owns the reader's lifetime unless it arrives via
// LoadStream.
func NewShardIter(r io.Reader) (*ShardIter, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	lay, err := readBCSRLayout(br)
	if err != nil {
		return nil, err
	}
	return &ShardIter{br: br, lay: lay}, nil
}

// Dims returns the stream's declared shape: rows, cols, total entries
// and shard count.
func (it *ShardIter) Dims() (m, n int, nnz int64, shards int) {
	return int(it.lay.m), int(it.lay.n), int64(it.lay.nnz), int(it.lay.shards)
}

// Next advances to the next panel, returning false at the end of the
// stream or on the first error (see Err). The previous Panel's CSR is
// not reused, but the undecoded scratch behind it is, so callers that
// retain panels keep only decoded data.
func (it *ShardIter) Next() bool {
	if it.err != nil || it.done {
		return false
	}
	if it.s == int(it.lay.shards) {
		it.done = true
		if it.total != it.lay.nnz {
			it.err = fmt.Errorf("sparse: bcsr header promised %d entries, shards hold %d", it.lay.nnz, it.total)
		}
		return false
	}
	s := it.s
	snnz, scrc, herr := readShardHeader(it.br)
	if herr != nil {
		it.err = fmt.Errorf("sparse: reading bcsr shard %d header: %w", s, herr)
		return false
	}
	want, merr := it.lay.shardMeta(s, snnz, it.total)
	if merr != nil {
		it.err = merr
		return false
	}
	var rerr error
	it.payload, rerr = readChunked(it.br, it.payload[:0], want)
	if rerr != nil {
		it.err = fmt.Errorf("sparse: reading bcsr shard %d payload: %w", s, rerr)
		return false
	}
	if verr := verifyShardCRC(s, it.payload, scrc); verr != nil {
		it.err = verr
		return false
	}
	rows := int(it.lay.hi[s] - it.lay.lo[s])
	a := &CSR{M: rows, N: int(it.lay.n), RowPtr: make([]int64, rows+1)}
	if derr := decodePanel(a, it.payload, 0, rows, 0, int64(snnz)); derr != nil {
		it.err = fmt.Errorf("sparse: bcsr shard %d: %w", s, derr)
		return false
	}
	it.cur = Panel{RowLo: int(it.lay.lo[s]), RowHi: int(it.lay.hi[s]), A: a}
	it.total += snnz
	it.s++
	return true
}

// Panel returns the current panel after a true Next.
func (it *ShardIter) Panel() Panel { return it.cur }

// Err returns the first error the iteration hit, if any. A stream that
// ends cleanly but holds fewer entries than its header promised is an
// error too.
func (it *ShardIter) Err() error { return it.err }

// Close releases the underlying file when the iterator owns one.
func (it *ShardIter) Close() error {
	if it.closer != nil {
		return it.closer.Close()
	}
	return nil
}
