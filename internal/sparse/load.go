package sparse

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/sched"
)

// autoPoolMin is the file size below which Load does not bother
// spinning up a worker pool: parse time under a few milliseconds is
// dominated by pool startup.
const autoPoolMin = 4 << 20

// mmMagic is the MatrixMarket banner prefix Load sniffs on.
const mmMagic = "%%MatrixMarket"

// IsBCSR reports whether path starts with the .bcsr magic — the same
// sniff Load uses, for callers that pick a shard-aware code path (the
// distributed launcher, the serving exclusion loader) before opening.
func IsBCSR(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	head := make([]byte, len(bcsrMagic))
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return false, fmt.Errorf("sparse: reading %s: %w", path, err)
	}
	return string(head[:n]) == bcsrMagic, nil
}

// Load reads a rating matrix from path, sniffing the format from the
// file's leading bytes: .bcsr binary shards (streamed through
// ReadBinary, so peak memory is the matrix, not matrix + file) or
// MatrixMarket text (the parallel parser, on a transient pool sized to
// GOMAXPROCS when the file is large enough to benefit). It is the one
// entry point every command and example loads matrices through.
func Load(path string) (*CSR, error) {
	return load(path, nil, true)
}

// LoadPool is Load with an explicit worker pool for the MatrixMarket
// parse (nil = parse on the calling goroutine only).
func LoadPool(path string, pool *sched.Pool) (*CSR, error) {
	return load(path, pool, false)
}

func load(path string, pool *sched.Pool, auto bool) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	head, err := br.Peek(len(mmMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("sparse: reading %s: %w", path, err)
	}
	switch {
	case bytes.HasPrefix(head, []byte(bcsrMagic)):
		return ReadBinary(br)
	case bytes.HasPrefix(head, []byte(mmMagic)):
		// The parallel parser needs the whole byte stream for random
		// line-boundary access.
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("sparse: reading %s: %w", path, err)
		}
		if auto && pool == nil && len(data) >= autoPoolMin && runtime.GOMAXPROCS(0) > 1 {
			p := sched.NewPool(0)
			defer p.Close()
			pool = p
		}
		return ParseMatrixMarket(data, pool)
	default:
		return nil, fmt.Errorf("sparse: %s is neither a bcsr nor a MatrixMarket file (starts %q)", path, strings.ToValidUTF8(string(head), "?"))
	}
}
