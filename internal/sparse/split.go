package sparse

import (
	"fmt"

	"repro/internal/rng"
)

// splitKey keys the train/test split's RNG stream. It is part of the
// on-disk-reproducibility contract: every consumer that must agree on
// a split (training runs, bpmf-serve's interval reconstruction, the
// shard-native distributed loader) derives it from (seed, splitKey).
const splitKey = 0x5eed511732

// SplitState is the sequential split's cursor between row panels: the
// RNG position (raw xoshiro state words, so resume is O(1) rather
// than a replay of every earlier draw) and which columns have already
// contributed a training entry. A distributed rank that owns rows
// [lo, hi) receives the state at row lo from the rank before it,
// splits its own panel with SplitRowsResume, and forwards the updated
// state — reproducing SplitTrainTest's global decisions bit-for-bit
// while only ever holding its own rows.
type SplitState struct {
	// Started reports whether any rows were split yet; false means RNG
	// is unset and the stream starts fresh from (seed, splitKey).
	Started bool
	RNG     [4]uint64
	ColSeen []bool
}

// NewSplitState returns the split cursor at row 0 of an M × n matrix.
func NewSplitState(n int) *SplitState {
	return &SplitState{ColSeen: make([]bool, n)}
}

// Clone deep-copies the state (the pipeline sends it over the wire).
func (st *SplitState) Clone() *SplitState {
	cp := *st
	cp.ColSeen = append([]bool(nil), st.ColSeen...)
	return &cp
}

// Encode serializes the state for the rank-to-rank pipeline.
func (st *SplitState) Encode() []byte {
	b := make([]byte, 1+32+len(st.ColSeen))
	if st.Started {
		b[0] = 1
	}
	for w, v := range st.RNG {
		for i := 0; i < 8; i++ {
			b[1+w*8+i] = byte(v >> (8 * i))
		}
	}
	for i, seen := range st.ColSeen {
		if seen {
			b[33+i] = 1
		}
	}
	return b
}

// DecodeSplitState is the inverse of Encode; n is the column count.
func DecodeSplitState(b []byte, n int) (*SplitState, error) {
	if len(b) != 33+n {
		return nil, fmt.Errorf("sparse: split state is %d bytes, want %d for %d columns", len(b), 33+n, n)
	}
	st := &SplitState{Started: b[0] != 0, ColSeen: make([]bool, n)}
	for w := range st.RNG {
		for i := 0; i < 8; i++ {
			st.RNG[w] |= uint64(b[1+w*8+i]) << (8 * i)
		}
	}
	for i := range st.ColSeen {
		st.ColSeen[i] = b[33+i] != 0
	}
	return st, nil
}

// SplitRowsResume applies the split rule to rows [lo, hi) of a,
// resuming from st (which must be the exact state after row lo-1) and
// advancing it in place. Entries are reported in storage order through
// the train/test callbacks.
//
// The rule matches SplitTrainTest exactly: each entry goes to test
// independently with probability testFrac, except that the first
// stored rating of every row and of every column always stays in
// training, so no user or movie becomes completely unobserved.
func SplitRowsResume(a *CSR, lo, hi int, testFrac float64, seed uint64, st *SplitState, train, test func(Entry)) {
	r := rng.NewKeyed(seed, splitKey)
	if st.Started {
		r.SetState(st.RNG)
	}
	splitRows(a, lo, hi, testFrac, r, st, train, test)
}

// splitRows is the shared body: the stream's position is captured back
// into st so a later resume continues exactly where this panel ended.
// (The split draws only Float64s, for which State/SetState round-trips
// are exact — see rng.Stream.State.)
func splitRows(a *CSR, lo, hi int, testFrac float64, r *rng.Stream, st *SplitState, train, test func(Entry)) {
	for i := lo; i < hi; i++ {
		cols, vals := a.Row(i)
		rowSeen := false
		for k, c := range cols {
			e := Entry{Row: int32(i), Col: c, Val: vals[k]}
			mustTrain := !rowSeen || !st.ColSeen[c]
			if !mustTrain && r.Float64() < testFrac {
				test(e)
				continue
			}
			rowSeen = true
			st.ColSeen[c] = true
			train(e)
		}
	}
	st.Started = true
	st.RNG = r.State()
}

// SplitTrainTest partitions the entries of a into a training CSR and a
// held-out test set. Each entry lands in the test set independently with
// probability testFrac, except that the first stored rating of every row
// and of every column is always kept in training, so no user or movie
// becomes completely unobserved (cold items would make the Gibbs posterior
// revert to the prior and obscure RMSE comparisons).
func SplitTrainTest(a *CSR, testFrac float64, seed uint64) (*CSR, []Entry) {
	st := NewSplitState(a.N)
	train := NewCOO(a.M, a.N, a.NNZ())
	var test []Entry
	splitRows(a, 0, a.M, testFrac, rng.NewKeyed(seed, splitKey), st,
		func(e Entry) { train.Add(int(e.Row), int(e.Col), e.Val) },
		func(e Entry) { test = append(test, e) })
	return train.ToCSR(), test
}
