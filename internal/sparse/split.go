package sparse

import "repro/internal/rng"

// SplitTrainTest partitions the entries of a into a training CSR and a
// held-out test set. Each entry lands in the test set independently with
// probability testFrac, except that the first stored rating of every row
// and of every column is always kept in training, so no user or movie
// becomes completely unobserved (cold items would make the Gibbs posterior
// revert to the prior and obscure RMSE comparisons).
func SplitTrainTest(a *CSR, testFrac float64, seed uint64) (*CSR, []Entry) {
	r := rng.NewKeyed(seed, 0x5eed511732)
	rowSeen := make([]bool, a.M)
	colSeen := make([]bool, a.N)
	train := NewCOO(a.M, a.N, a.NNZ())
	var test []Entry
	for i := 0; i < a.M; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			e := Entry{Row: int32(i), Col: c, Val: vals[k]}
			mustTrain := !rowSeen[i] || !colSeen[c]
			if !mustTrain && r.Float64() < testFrac {
				test = append(test, e)
				continue
			}
			rowSeen[i] = true
			colSeen[c] = true
			train.Add(int(e.Row), int(e.Col), e.Val)
		}
	}
	return train.ToCSR(), test
}
