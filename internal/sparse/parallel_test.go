package sparse

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sched"
)

// randomCSR builds a random matrix with duplicate coordinates (so the
// canonical duplicate-summation order is exercised) and a mix of value
// magnitudes, signs and precisions.
func randomCSR(r *rand.Rand, maxDim, nnz int) *CSR {
	m, n := 1+r.Intn(maxDim), 1+r.Intn(maxDim)
	c := NewCOO(m, n, nnz)
	for k := 0; k < nnz; k++ {
		v := r.NormFloat64() * 100
		if r.Intn(10) == 0 {
			v = float64(r.Intn(10)) // exact small integers hit the fast float path
		}
		c.Add(r.Intn(m), r.Intn(n), v)
	}
	return c.ToCSR()
}

// mmBytes renders a through the package's own writer.
func mmBytes(t *testing.T, a *CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelParseBitIdenticalToSequential(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		a := randomCSR(r, 50, 400)
		data := mmBytes(t, a)
		want, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []*sched.Pool{nil, pool} {
			got, err := ParseMatrixMarket(data, p)
			if err != nil {
				t.Fatalf("trial %d (pool=%v): %v", trial, p != nil, err)
			}
			if !Equal(want, got) {
				t.Fatalf("trial %d (pool=%v): parallel parse differs from sequential", trial, p != nil)
			}
		}
	}
}

// TestParallelParseManyChunks forces the multi-chunk path: the body must
// exceed parseChunkTarget so chunk splitting, per-chunk counting and the
// deterministic merge all run.
func TestParallelParseManyChunks(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := randomCSR(r, 400, 40000)
	data := mmBytes(t, a)
	if len(data) < 2*parseChunkTarget {
		t.Fatalf("test matrix renders to %d bytes, need > %d for multiple chunks", len(data), 2*parseChunkTarget)
	}
	pool := sched.NewPool(4)
	defer pool.Close()
	want, err := ReadMatrixMarket(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMatrixMarket(data, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(want, got) {
		t.Fatal("multi-chunk parallel parse differs from sequential")
	}
}

// TestParallelParseWithCommentsAndCRLF checks the messy-but-legal inputs
// real exports produce: interleaved comments, blank lines, CRLF endings,
// value-less pattern entries defaulting to 1, and a missing final newline.
func TestParallelParseWithCommentsAndCRLF(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate real general\r\n" +
		"% a comment\r\n" +
		"\r\n" +
		"3 4 5\r\n" +
		"1 2 1.5\r\n" +
		"% mid-stream comment\r\n" +
		"1 4 2.5\r\n" +
		"3 1 -1\r\n" +
		"2 3 4\r\n" +
		"3 4 7" // no trailing newline
	want, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMatrixMarket([]byte(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(want, got) {
		t.Fatal("CRLF parse differs from sequential")
	}
	if want.NNZ() != 5 {
		t.Fatalf("expected 5 entries, got %d", want.NNZ())
	}
}

func TestParsePatternAndIntegerFields(t *testing.T) {
	pat := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
	for _, parse := range []func() (*CSR, error){
		func() (*CSR, error) { return ReadMatrixMarket(strings.NewReader(pat)) },
		func() (*CSR, error) { return ParseMatrixMarket([]byte(pat), nil) },
	} {
		a, err := parse()
		if err != nil {
			t.Fatal(err)
		}
		if a.NNZ() != 2 || a.Val[0] != 1 || a.Val[1] != 1 {
			t.Fatalf("pattern entries should default to 1.0: %v", a.Val)
		}
	}
	intsrc := "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n"
	a, err := ParseMatrixMarket([]byte(intsrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Val[0] != 7 {
		t.Fatalf("integer field value = %v", a.Val[0])
	}
}

// TestToCSRParallelWithDuplicates drives the compaction path (duplicate
// coordinates shrink rows, so the scattered arrays must be re-packed).
func TestToCSRParallelWithDuplicates(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		m, n := 1+r.Intn(30), 1+r.Intn(10) // narrow: lots of duplicates
		c := NewCOO(m, n, 200)
		for k := 0; k < 200; k++ {
			c.Add(r.Intn(m), r.Intn(n), r.NormFloat64())
		}
		seq := c.ToCSR()
		par := toCSRParallel(&COO{M: m, N: n, Entries: c.Entries}, pool)
		if !Equal(seq, par) {
			t.Fatalf("trial %d: parallel CSR build differs", trial)
		}
	}
}

// TestParallelParseRejectsWhatSequentialRejects pins the two parsers to
// the same accept/reject decisions on malformed bodies.
func TestParallelParseRejectsWhatSequentialRejects(t *testing.T) {
	cases := []string{
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",    // row out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 5 1\n",    // col out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",    // zero index (1-based format)
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n-1 1 1\n",   // negative index
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 NaN\n",  // NaN value
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 +Inf\n", // infinite value
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",        // too few fields
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",    // garbage index
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",   // garbage value
		"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",    // count mismatch
		"%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1\n",      // bad size line
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 1\n",  // unsupported symmetry
		"%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1 0\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n1\n1\n1\n",
		"%%MatrixMarket vector coordinate real general\n2 2 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n999999999999 2 1\n1 1 1\n", // dim over cap
		"%%MatrixMarket matrix coordinate real general\n2 2 -1\n",                  // negative nnz
		"not a matrix\n",
		"",
		// A line past the 1 MiB cap: the sequential scanner's buffer
		// rejects it, so the in-memory parser must too.
		"%%MatrixMarket matrix coordinate real general\n% " + strings.Repeat("x", 2<<20) + "\n1 1 1\n1 1 1\n",
	}
	for i, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: sequential parser accepted %q", i, src)
		}
		if _, err := ParseMatrixMarket([]byte(src), nil); err == nil {
			t.Errorf("case %d: parallel parser accepted %q", i, src)
		}
	}
}

// TestParseIntBytesMatchesAtoi pins the manual integer scanner to the
// strconv accept set on representative tokens (the fallback path in
// parseEntryBytes relies on the two agreeing).
func TestParseIntBytesMatchesAtoi(t *testing.T) {
	tokens := []string{"0", "7", "+7", "-7", "007", "123456789", "", "+", "-", "1x", "x1", "1.5", "1e3", " 1", "--1"}
	for _, tok := range tokens {
		v, err := parseIntBytes([]byte(tok))
		want, werr := strconv.Atoi(tok)
		if (err != nil) != (werr != nil) {
			t.Errorf("token %q: manual err=%v, Atoi err=%v", tok, err, werr)
			continue
		}
		if err == nil && int(v) != want {
			t.Errorf("token %q: manual=%d, Atoi=%d", tok, v, want)
		}
	}
}
