package sparse

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sched"
)

// parallel.go is the ingestion fast path: a MatrixMarket parser that
// splits the byte stream on line boundaries and parses chunks
// concurrently on a sched.Pool, with manual field scanning instead of
// fmt/strings tokenization on the hot path. The resulting CSR is
// bit-identical to ReadMatrixMarket on the same bytes: per-chunk entry
// runs are merged in file order, so the duplicate-summation order and
// the canonical per-row column sort see exactly the sequence the
// sequential parser produces.

// parseChunkTarget is the minimum chunk size worth scheduling as its own
// task; smaller bodies parse in fewer (down to one) chunks.
const parseChunkTarget = 256 << 10

// ParseMatrixMarket parses a whole MatrixMarket file held in memory.
// A nil pool parses on the calling goroutine (same chunked code path,
// still allocation-lean); otherwise chunks run concurrently on the pool.
// Semantics — accepted headers, rejected entries, the final matrix —
// are identical to ReadMatrixMarket.
func ParseMatrixMarket(data []byte, pool *sched.Pool) (*CSR, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	// Header line.
	line, rest := nextLine(data)
	if err := checkLineLen(line); err != nil {
		return nil, err
	}
	if err := validateMMHeader(string(line)); err != nil {
		return nil, err
	}
	// Comments, then the size line.
	var m, n, nnz int
	sized := false
	for !sized && len(rest) > 0 {
		line, rest = nextLine(rest)
		if err := checkLineLen(line); err != nil {
			return nil, err
		}
		if isMMSkipLine(line) {
			continue
		}
		var err error
		m, n, nnz, err = parseMMSize(strings.TrimSpace(string(line)))
		if err != nil {
			return nil, err
		}
		sized = true
	}
	if !sized {
		return nil, fmt.Errorf("sparse: MatrixMarket stream has no size line")
	}
	body := rest

	// Split the body into chunks on line boundaries. The chunk count is a
	// function of size and worker count only; the parse result does not
	// depend on it (entries are merged in file order regardless).
	workers := 1
	if pool != nil {
		workers = pool.NumWorkers()
	}
	nchunks := len(body) / parseChunkTarget
	if nchunks < 1 {
		nchunks = 1
	}
	if max := 4 * workers; nchunks > max {
		nchunks = max
	}
	bounds := make([]int, nchunks+1)
	bounds[nchunks] = len(body)
	for k := 1; k < nchunks; k++ {
		// int64 product: k*len(body) can pass MaxInt32 on 32-bit builds.
		at := int(int64(k) * int64(len(body)) / int64(nchunks))
		if at < bounds[k-1] {
			at = bounds[k-1]
		}
		if nl := bytes.IndexByte(body[at:], '\n'); nl >= 0 {
			at += nl + 1
		} else {
			at = len(body)
		}
		bounds[k] = at
	}

	// Phase A: count entry lines per chunk (checking the shared line
	// cap), so every chunk can parse straight into its own window of one
	// exact-size entry slice.
	counts := make([]int, nchunks)
	errs := make([]error, nchunks)
	forChunks(pool, nchunks, func(k int) {
		c := 0
		chunk := body[bounds[k]:bounds[k+1]]
		for len(chunk) > 0 {
			var ln []byte
			ln, chunk = nextLine(chunk)
			if err := checkLineLen(ln); err != nil {
				errs[k] = err
				return
			}
			if !isMMSkipLine(ln) {
				c++
			}
		}
		counts[k] = c
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	offsets := make([]int, nchunks+1)
	for k := 0; k < nchunks; k++ {
		offsets[k+1] = offsets[k] + counts[k]
	}
	total := offsets[nchunks]

	// Phase B: parse each chunk into its window.
	entries := make([]Entry, total)
	forChunks(pool, nchunks, func(k int) {
		w := offsets[k]
		chunk := body[bounds[k]:bounds[k+1]]
		for len(chunk) > 0 {
			var ln []byte
			ln, chunk = nextLine(chunk)
			if isMMSkipLine(ln) {
				continue
			}
			e, err := parseEntryBytes(ln, m, n)
			if err != nil {
				errs[k] = err
				return
			}
			entries[w] = e
			w++
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if total != nnz {
		return nil, fmt.Errorf("sparse: header promised %d entries, found %d", nnz, total)
	}
	coo := &COO{M: m, N: n, Entries: entries}
	if pool == nil {
		return coo.ToCSR(), nil
	}
	return toCSRParallel(coo, pool), nil
}

// checkLineLen enforces the shared per-line cap: the streaming readers'
// bufio.Scanner fails on longer tokens, so the in-memory parser must
// reject them too to keep the accept set identical.
func checkLineLen(line []byte) error {
	if len(line) > maxMMLine {
		return fmt.Errorf("sparse: line longer than %d bytes", maxMMLine)
	}
	return nil
}

// nextLine splits off the first line (without its terminator) and
// returns the remainder after the '\n', mirroring bufio.ScanLines minus
// the trailing-\r strip (the field scanners treat '\r' as whitespace).
func nextLine(b []byte) (line, rest []byte) {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

// forChunks runs body(k) for every chunk index, on the pool when one is
// available and inline otherwise.
func forChunks(pool *sched.Pool, nchunks int, body func(k int)) {
	if pool == nil || nchunks == 1 {
		for k := 0; k < nchunks; k++ {
			body(k)
		}
		return
	}
	pool.ParallelFor(0, nchunks, 1, func(_ *sched.Worker, lo, hi int) {
		for k := lo; k < hi; k++ {
			body(k)
		}
	})
}

// toCSRParallel builds the same CSR as COO.ToCSR — identical scatter
// order, identical per-row sort, identical duplicate summation — but
// sorts and compacts rows concurrently. Row independence makes this
// trivially bit-exact: each row's final (cols, vals) is a pure function
// of that row's scattered segment.
func toCSRParallel(c *COO, pool *sched.Pool) *CSR {
	counts := make([]int64, c.M+1)
	for _, e := range c.Entries {
		counts[e.Row+1]++
	}
	for i := 0; i < c.M; i++ {
		counts[i+1] += counts[i]
	}
	nnz := len(c.Entries)
	col := make([]int32, nnz)
	val := make([]float64, nnz)
	next := make([]int64, c.M)
	copy(next, counts[:c.M])
	for _, e := range c.Entries {
		p := next[e.Row]
		col[p] = e.Col
		val[p] = e.Val
		next[e.Row] = p + 1
	}
	// Sort + dedup each row segment in place, recording surviving widths.
	width := make([]int64, c.M)
	pool.ParallelFor(0, c.M, 256, func(_ *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := counts[i], counts[i+1]
			cols := col[s:e]
			vals := val[s:e]
			sort.Sort(&rowSorter{cols, vals})
			w := int64(0)
			for k := 0; k < len(cols); k++ {
				if k > 0 && cols[k] == cols[k-1] {
					vals[w-1] += vals[k]
					continue
				}
				cols[w] = cols[k]
				vals[w] = vals[k]
				w++
			}
			width[i] = w
		}
	})
	outPtr := make([]int64, c.M+1)
	for i := 0; i < c.M; i++ {
		outPtr[i+1] = outPtr[i] + width[i]
	}
	w := outPtr[c.M]
	if w == int64(nnz) {
		// No duplicates anywhere: every segment is already dense and in
		// place, so outPtr == counts and the arrays are final.
		return &CSR{M: c.M, N: c.N, RowPtr: outPtr, Col: col, Val: val}
	}
	outCol := make([]int32, w)
	outVal := make([]float64, w)
	pool.ParallelFor(0, c.M, 256, func(_ *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			s, d, wd := counts[i], outPtr[i], width[i]
			copy(outCol[d:d+wd], col[s:s+wd])
			copy(outVal[d:d+wd], val[s:s+wd])
		}
	})
	return &CSR{M: c.M, N: c.N, RowPtr: outPtr, Col: outCol, Val: outVal}
}
