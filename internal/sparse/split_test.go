package sparse

import (
	"math/rand"
	"testing"
)

// TestSplitRowsResumeMatchesGlobalSplit is the property the shard-native
// distributed loader rests on: splitting a matrix panel-by-panel with
// carried state reproduces SplitTrainTest's global decisions exactly,
// for any panel decomposition.
func TestSplitRowsResumeMatchesGlobalSplit(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 12; trial++ {
		a := randomCSR(r, 40+r.Intn(30), 400)
		seed := uint64(r.Int63())
		frac := 0.1 + 0.4*r.Float64()
		wantTrain, wantTest := SplitTrainTest(a, frac, seed)

		// Random contiguous panel decomposition, plus one deliberately
		// empty panel (a rank that owns no rows must pass the state
		// through unchanged).
		cuts := []int{0}
		for cuts[len(cuts)-1] < a.M {
			next := cuts[len(cuts)-1] + 1 + r.Intn(a.M/3+1)
			if next > a.M {
				next = a.M
			}
			cuts = append(cuts, next)
		}
		dup := 1 + r.Intn(len(cuts)-1)
		cuts = append(cuts[:dup], append([]int{cuts[dup]}, cuts[dup:]...)...)

		st := NewSplitState(a.N)
		var gotTest []Entry
		train := NewCOO(a.M, a.N, a.NNZ())
		for p := 0; p+1 < len(cuts); p++ {
			// Round-trip the state through its wire encoding each panel,
			// as the rank pipeline does, and resume from a fresh stream.
			enc := st.Encode()
			dec, err := DecodeSplitState(enc, a.N)
			if err != nil {
				t.Fatal(err)
			}
			SplitRowsResume(a, cuts[p], cuts[p+1], frac, seed, dec,
				func(e Entry) { train.Add(int(e.Row), int(e.Col), e.Val) },
				func(e Entry) { gotTest = append(gotTest, e) })
			st = dec
		}
		gotTrain := train.ToCSR()

		if !Equal(wantTrain, gotTrain) {
			t.Fatalf("trial %d: resumed train matrix differs (panels %v)", trial, cuts)
		}
		if len(gotTest) != len(wantTest) {
			t.Fatalf("trial %d: %d test entries, want %d", trial, len(gotTest), len(wantTest))
		}
		for i := range gotTest {
			if gotTest[i] != wantTest[i] {
				t.Fatalf("trial %d: test entry %d = %+v, want %+v", trial, i, gotTest[i], wantTest[i])
			}
		}
	}
}

func TestDecodeSplitStateRejectsWrongLength(t *testing.T) {
	if _, err := DecodeSplitState(make([]byte, 12), 10); err == nil {
		t.Fatal("wrong-length state accepted")
	}
	st := NewSplitState(6)
	st.Started = true
	st.RNG = [4]uint64{1, 1 << 60, 42, ^uint64(0)}
	st.ColSeen[2] = true
	back, err := DecodeSplitState(st.Encode(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Started || back.RNG != st.RNG || !back.ColSeen[2] || back.ColSeen[3] {
		t.Fatalf("state round trip broken: %+v vs %+v", back, st)
	}
}
