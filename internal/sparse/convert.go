package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// DedupPolicy selects what a Converter does with duplicate (row, col)
// entries in its input stream.
type DedupPolicy int

const (
	// DedupSum adds duplicate entries together — the MatrixMarket/COO
	// convention this converter has always applied (COO.ToCSR sums on
	// collision), appropriate when duplicates are partial observations
	// of one value.
	DedupSum DedupPolicy = iota
	// DedupLast keeps only the value that appeared last in stream
	// order — the compaction semantics of an append-only rating log,
	// where a re-rated (user, item) pair must supersede, not add to,
	// the earlier rating.
	DedupLast
)

// Converter turns an entry stream (a MatrixMarket text file via
// Convert, or any re-streamable source via ConvertEntries) into a
// .bcsr shard file in bounded memory, however large the input: a
// counting pass sizes the row panels, a bucketing pass spills entries
// to one temp file per shard, and a shard pass sorts each spill into
// its panel and writes it with its CRC. Peak memory is O(rows +
// largest shard), never O(total entries).
type Converter struct {
	// ShardNNZ is the target entries per shard (0 = DefaultShardNNZ).
	ShardNNZ int
	// TmpDir holds the spill files (empty = the output file's directory,
	// so spills land on the same filesystem as the result).
	TmpDir string
	// Dedup says what to do with duplicate (row, col) entries. The zero
	// value is DedupSum, the historical behavior.
	Dedup DedupPolicy
}

// EntryStream re-streams a sequence of entries through visit. A
// Converter calls it twice — a counting pass and a spill pass — and
// both calls must yield the same entries; the second pass's order
// relative to the first does not matter to DedupSum, but DedupLast
// resolves duplicates by the spill pass's stream order.
type EntryStream func(visit func(Entry) error) error

// ConvertStats reports what a conversion produced.
type ConvertStats struct {
	M, N   int
	NNZ    int64 // post-dedup entries written
	Shards int
}

// Convert streams the MatrixMarket file at mmPath into a .bcsr file at
// outPath (written via a temp file + rename, so a crash never leaves a
// half-written shard file behind).
func (cv Converter) Convert(mmPath, outPath string) (ConvertStats, error) {
	// Pass 1: count entries per row (and fully validate the stream).
	var rowNNZ []int64
	m, n, _, err := streamMM(mmPath, func(hm, hn, hnnz int) error {
		rowNNZ = make([]int64, hm)
		return nil
	}, func(e Entry) error {
		rowNNZ[e.Row]++
		return nil
	})
	if err != nil {
		return ConvertStats{}, err
	}
	// Pass 2 re-reads the file, so guard against it having been swapped
	// between passes (an upstream export job rewriting in place): a row
	// outside pass 1's panels must surface as an error, not an
	// out-of-range shard index.
	stream := func(visit func(Entry) error) error {
		_, _, _, err := streamMM(mmPath, func(m2, n2, _ int) error {
			if m2 != m || n2 != n {
				return fmt.Errorf("sparse: %s changed between conversion passes (%dx%d, was %dx%d)", mmPath, m2, n2, m, n)
			}
			return nil
		}, visit)
		return err
	}
	return cv.convertCounted(m, n, rowNNZ, stream, outPath)
}

// ConvertEntries runs the same bounded-memory panel/spill/sort pipeline
// over an arbitrary re-streamable entry source — e.g. a feed.Log being
// compacted into a delta shard. Entries must lie in [0, m) x [0, n)
// with finite values; violations are reported, never spilled.
func (cv Converter) ConvertEntries(m, n int, stream EntryStream, outPath string) (ConvertStats, error) {
	if m < 1 || n < 1 {
		return ConvertStats{}, fmt.Errorf("sparse: conversion needs positive dimensions, got %dx%d", m, n)
	}
	// Pass 1: validate and count entries per row.
	rowNNZ := make([]int64, m)
	err := stream(func(e Entry) error {
		if e.Row < 0 || int(e.Row) >= m || e.Col < 0 || int(e.Col) >= n {
			return fmt.Errorf("sparse: entry (%d, %d) outside %dx%d", e.Row, e.Col, m, n)
		}
		if math.IsNaN(e.Val) || math.IsInf(e.Val, 0) {
			return fmt.Errorf("sparse: entry (%d, %d) has non-finite value", e.Row, e.Col)
		}
		rowNNZ[e.Row]++
		return nil
	})
	if err != nil {
		return ConvertStats{}, err
	}
	return cv.convertCounted(m, n, rowNNZ, stream, outPath)
}

// convertCounted is the shared spill + sort + write tail behind Convert
// and ConvertEntries: pass 1 (counting) is done, rowNNZ sizes the
// panels, and stream replays the entries for the spill pass.
func (cv Converter) convertCounted(m, n int, rowNNZ []int64, stream EntryStream, outPath string) (ConvertStats, error) {
	target := cv.ShardNNZ
	if target < 1 {
		target = DefaultShardNNZ
	}
	lo, hi := panelBounds(rowNNZ, target)

	// Spill pass: bucket entries into per-shard spill files.
	tmpDir := cv.TmpDir
	if tmpDir == "" {
		tmpDir = filepath.Dir(outPath)
	}
	spills := make([]*os.File, len(lo))
	spillW := make([]*bufio.Writer, len(lo))
	defer func() {
		for _, f := range spills {
			if f != nil {
				f.Close()
				os.Remove(f.Name())
			}
		}
	}()
	for s := range lo {
		f, err := os.CreateTemp(tmpDir, "bcsr-spill-*")
		if err != nil {
			return ConvertStats{}, fmt.Errorf("sparse: creating spill file: %w", err)
		}
		spills[s] = f
		spillW[s] = bufio.NewWriterSize(f, 256<<10)
	}
	// A stream that yields a row pass 1 never counted (a swapped file, a
	// non-stable source) must surface as an error, not an out-of-range
	// shard index.
	var rec [16]byte
	err := stream(func(e Entry) error {
		if e.Row < 0 || int(e.Row) >= m {
			return fmt.Errorf("sparse: entry row %d appeared in the spill pass but not the counting pass", e.Row)
		}
		s := sort.Search(len(lo), func(s int) bool { return hi[s] > int(e.Row) })
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Row))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Col))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.Val))
		_, werr := spillW[s].Write(rec[:])
		return werr
	})
	if err != nil {
		return ConvertStats{}, err
	}
	for s := range spillW {
		if err := spillW[s].Flush(); err != nil {
			return ConvertStats{}, fmt.Errorf("sparse: flushing spill file: %w", err)
		}
	}

	// Pass 3: sort each spill into its row panel and write the output.
	out, err := os.CreateTemp(filepath.Dir(outPath), filepath.Base(outPath)+".tmp*")
	if err != nil {
		return ConvertStats{}, err
	}
	defer func() {
		if out != nil {
			out.Close()
			os.Remove(out.Name())
		}
	}()
	bw := bufio.NewWriterSize(out, 1<<20)
	var werr error
	writeU64 := func(v uint64) {
		if werr == nil {
			werr = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	if _, err := bw.WriteString(bcsrMagic); err != nil {
		return ConvertStats{}, fmt.Errorf("sparse: writing bcsr magic: %w", err)
	}
	writeU64(uint64(m))
	writeU64(uint64(n))
	// NNZ is not known until every panel has deduplicated; write a
	// placeholder at a remembered offset and patch it before the rename.
	nnzOffset := int64(len(bcsrMagic)) + 16
	writeU64(0)
	writeU64(uint64(len(lo)))
	for s := range lo {
		writeU64(uint64(lo[s]))
		writeU64(uint64(hi[s]))
	}
	var totalNNZ int64
	var payload []byte
	for s := range lo {
		panel, err := loadSpill(spills[s], lo[s], hi[s], n, cv.Dedup)
		if err != nil {
			return ConvertStats{}, fmt.Errorf("sparse: shard %d spill: %w", s, err)
		}
		spills[s].Close()
		os.Remove(spills[s].Name())
		spills[s] = nil
		totalNNZ += int64(panel.NNZ())
		payload = encodePanel(payload[:0], panel, 0, panel.M)
		writeU64(uint64(panel.NNZ()))
		writeU64(uint64(crc32.ChecksumIEEE(payload)))
		if werr == nil {
			_, werr = bw.Write(payload)
		}
		if werr != nil {
			return ConvertStats{}, fmt.Errorf("sparse: writing bcsr shard %d: %w", s, werr)
		}
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr != nil {
		return ConvertStats{}, fmt.Errorf("sparse: writing bcsr: %w", werr)
	}
	if _, err := out.WriteAt(binary.LittleEndian.AppendUint64(nil, uint64(totalNNZ)), nnzOffset); err != nil {
		return ConvertStats{}, fmt.Errorf("sparse: patching bcsr entry count: %w", err)
	}
	if err := out.Close(); err != nil {
		return ConvertStats{}, err
	}
	if err := os.Rename(out.Name(), outPath); err != nil {
		return ConvertStats{}, err
	}
	out = nil
	return ConvertStats{M: m, N: n, NNZ: totalNNZ, Shards: len(lo)}, nil
}

// loadSpill reads one shard's spilled entries (file order preserved)
// and builds its row panel with the canonical sort plus the requested
// duplicate resolution.
func loadSpill(f *os.File, lo, hi, n int, dedup DedupPolicy) (*CSR, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	if len(data)%16 != 0 {
		return nil, fmt.Errorf("spill size %d not a whole number of records", len(data))
	}
	coo := &COO{M: hi - lo, N: n, Entries: make([]Entry, len(data)/16)}
	for k := range coo.Entries {
		rec := data[k*16:]
		coo.Entries[k] = Entry{
			Row: int32(binary.LittleEndian.Uint32(rec[0:])) - int32(lo),
			Col: int32(binary.LittleEndian.Uint32(rec[4:])),
			Val: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
		}
	}
	if dedup == DedupLast {
		dedupLastInPlace(coo)
	}
	return coo.ToCSR(), nil
}

// dedupLastInPlace resolves duplicate (row, col) pairs by keeping only
// the entry that appeared last in stream order, so the subsequent
// ToCSR (which would sum) sees each pair once. The sort is stable:
// equal keys keep their spill-file order, which is the stream order.
func dedupLastInPlace(coo *COO) {
	es := coo.Entries
	sort.SliceStable(es, func(i, j int) bool {
		if es[i].Row != es[j].Row {
			return es[i].Row < es[j].Row
		}
		return es[i].Col < es[j].Col
	})
	w := 0
	for k := range es {
		if w > 0 && es[w-1].Row == es[k].Row && es[w-1].Col == es[k].Col {
			es[w-1] = es[k]
			continue
		}
		es[w] = es[k]
		w++
	}
	coo.Entries = es[:w]
}

// panelBounds greedily packs rows into contiguous panels of about
// target entries each (always at least one row per panel).
func panelBounds(rowNNZ []int64, target int) (lo, hi []int) {
	for r := 0; r < len(rowNNZ); {
		end := r
		nnz := int64(0)
		for end < len(rowNNZ) && (end == r || nnz < int64(target)) {
			nnz += rowNNZ[end]
			end++
		}
		lo = append(lo, r)
		hi = append(hi, end)
		r = end
	}
	return lo, hi
}

// streamMM streams the entries of a MatrixMarket file in file order
// through visit, after announcing the parsed size line via header (may
// be nil). It shares every validation rule with ReadMatrixMarket.
func streamMM(path string, header func(m, n, nnz int) error, visit func(Entry) error) (m, n, count int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(bufio.NewReaderSize(f, 1<<20))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, 0, 0, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
		}
		return 0, 0, 0, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	if err := validateMMHeader(sc.Text()); err != nil {
		return 0, 0, 0, err
	}
	var nnz int
	sized := false
	for sc.Scan() {
		line := sc.Bytes()
		if isMMSkipLine(line) {
			continue
		}
		if m, n, nnz, err = parseMMSize(string(line)); err != nil {
			return 0, 0, 0, err
		}
		sized = true
		break
	}
	if !sized {
		if err := sc.Err(); err != nil {
			return 0, 0, 0, fmt.Errorf("sparse: reading MatrixMarket size line: %w", err)
		}
		return 0, 0, 0, fmt.Errorf("sparse: MatrixMarket stream has no size line")
	}
	if header != nil {
		if err := header(m, n, nnz); err != nil {
			return 0, 0, 0, err
		}
	}
	for sc.Scan() {
		line := sc.Bytes()
		if isMMSkipLine(line) {
			continue
		}
		e, err := parseEntryBytes(line, m, n)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := visit(e); err != nil {
			return 0, 0, 0, err
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, 0, err
	}
	if count != nnz {
		return 0, 0, 0, fmt.Errorf("sparse: header promised %d entries, found %d", nnz, count)
	}
	return m, n, count, nil
}
