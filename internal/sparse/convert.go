package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Converter turns a MatrixMarket text file into a .bcsr shard file in
// bounded memory, however large the input: a counting pass sizes the
// row panels, a bucketing pass spills entries to one temp file per
// shard, and a shard pass sorts each spill into its panel and writes
// it with its CRC. Peak memory is O(rows + largest shard), never
// O(total entries).
type Converter struct {
	// ShardNNZ is the target entries per shard (0 = DefaultShardNNZ).
	ShardNNZ int
	// TmpDir holds the spill files (empty = the output file's directory,
	// so spills land on the same filesystem as the result).
	TmpDir string
}

// ConvertStats reports what a conversion produced.
type ConvertStats struct {
	M, N   int
	NNZ    int64 // post-dedup entries written
	Shards int
}

// Convert streams the MatrixMarket file at mmPath into a .bcsr file at
// outPath (written via a temp file + rename, so a crash never leaves a
// half-written shard file behind).
func (cv Converter) Convert(mmPath, outPath string) (ConvertStats, error) {
	target := cv.ShardNNZ
	if target < 1 {
		target = DefaultShardNNZ
	}
	// Pass 1: count entries per row (and fully validate the stream).
	var rowNNZ []int64
	m, n, _, err := streamMM(mmPath, func(hm, hn, hnnz int) error {
		rowNNZ = make([]int64, hm)
		return nil
	}, func(e Entry) error {
		rowNNZ[e.Row]++
		return nil
	})
	if err != nil {
		return ConvertStats{}, err
	}
	lo, hi := panelBounds(rowNNZ, target)

	// Pass 2: bucket entries into per-shard spill files.
	tmpDir := cv.TmpDir
	if tmpDir == "" {
		tmpDir = filepath.Dir(outPath)
	}
	spills := make([]*os.File, len(lo))
	spillW := make([]*bufio.Writer, len(lo))
	defer func() {
		for _, f := range spills {
			if f != nil {
				f.Close()
				os.Remove(f.Name())
			}
		}
	}()
	for s := range lo {
		f, err := os.CreateTemp(tmpDir, "bcsr-spill-*")
		if err != nil {
			return ConvertStats{}, fmt.Errorf("sparse: creating spill file: %w", err)
		}
		spills[s] = f
		spillW[s] = bufio.NewWriterSize(f, 256<<10)
	}
	// Pass 2 re-reads the file, so guard against it having been swapped
	// between passes (an upstream export job rewriting in place): a row
	// outside pass 1's panels must surface as an error, not an
	// out-of-range shard index.
	var rec [16]byte
	_, _, _, err = streamMM(mmPath, func(m2, n2, _ int) error {
		if m2 != m || n2 != n {
			return fmt.Errorf("sparse: %s changed between conversion passes (%dx%d, was %dx%d)", mmPath, m2, n2, m, n)
		}
		return nil
	}, func(e Entry) error {
		s := sort.Search(len(lo), func(s int) bool { return hi[s] > int(e.Row) })
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Row))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Col))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.Val))
		_, werr := spillW[s].Write(rec[:])
		return werr
	})
	if err != nil {
		return ConvertStats{}, err
	}
	for s := range spillW {
		if err := spillW[s].Flush(); err != nil {
			return ConvertStats{}, fmt.Errorf("sparse: flushing spill file: %w", err)
		}
	}

	// Pass 3: sort each spill into its row panel and write the output.
	out, err := os.CreateTemp(filepath.Dir(outPath), filepath.Base(outPath)+".tmp*")
	if err != nil {
		return ConvertStats{}, err
	}
	defer func() {
		if out != nil {
			out.Close()
			os.Remove(out.Name())
		}
	}()
	bw := bufio.NewWriterSize(out, 1<<20)
	var werr error
	writeU64 := func(v uint64) {
		if werr == nil {
			werr = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	if _, err := bw.WriteString(bcsrMagic); err != nil {
		return ConvertStats{}, fmt.Errorf("sparse: writing bcsr magic: %w", err)
	}
	writeU64(uint64(m))
	writeU64(uint64(n))
	// NNZ is not known until every panel has deduplicated; write a
	// placeholder at a remembered offset and patch it before the rename.
	nnzOffset := int64(len(bcsrMagic)) + 16
	writeU64(0)
	writeU64(uint64(len(lo)))
	for s := range lo {
		writeU64(uint64(lo[s]))
		writeU64(uint64(hi[s]))
	}
	var totalNNZ int64
	var payload []byte
	for s := range lo {
		panel, err := loadSpill(spills[s], lo[s], hi[s], n)
		if err != nil {
			return ConvertStats{}, fmt.Errorf("sparse: shard %d spill: %w", s, err)
		}
		spills[s].Close()
		os.Remove(spills[s].Name())
		spills[s] = nil
		totalNNZ += int64(panel.NNZ())
		payload = encodePanel(payload[:0], panel, 0, panel.M)
		writeU64(uint64(panel.NNZ()))
		writeU64(uint64(crc32.ChecksumIEEE(payload)))
		if werr == nil {
			_, werr = bw.Write(payload)
		}
		if werr != nil {
			return ConvertStats{}, fmt.Errorf("sparse: writing bcsr shard %d: %w", s, werr)
		}
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr != nil {
		return ConvertStats{}, fmt.Errorf("sparse: writing bcsr: %w", werr)
	}
	if _, err := out.WriteAt(binary.LittleEndian.AppendUint64(nil, uint64(totalNNZ)), nnzOffset); err != nil {
		return ConvertStats{}, fmt.Errorf("sparse: patching bcsr entry count: %w", err)
	}
	if err := out.Close(); err != nil {
		return ConvertStats{}, err
	}
	if err := os.Rename(out.Name(), outPath); err != nil {
		return ConvertStats{}, err
	}
	out = nil
	return ConvertStats{M: m, N: n, NNZ: totalNNZ, Shards: len(lo)}, nil
}

// loadSpill reads one shard's spilled entries (file order preserved)
// and builds its row panel with the canonical sort + duplicate-sum.
func loadSpill(f *os.File, lo, hi, n int) (*CSR, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	if len(data)%16 != 0 {
		return nil, fmt.Errorf("spill size %d not a whole number of records", len(data))
	}
	coo := &COO{M: hi - lo, N: n, Entries: make([]Entry, len(data)/16)}
	for k := range coo.Entries {
		rec := data[k*16:]
		coo.Entries[k] = Entry{
			Row: int32(binary.LittleEndian.Uint32(rec[0:])) - int32(lo),
			Col: int32(binary.LittleEndian.Uint32(rec[4:])),
			Val: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
		}
	}
	return coo.ToCSR(), nil
}

// panelBounds greedily packs rows into contiguous panels of about
// target entries each (always at least one row per panel).
func panelBounds(rowNNZ []int64, target int) (lo, hi []int) {
	for r := 0; r < len(rowNNZ); {
		end := r
		nnz := int64(0)
		for end < len(rowNNZ) && (end == r || nnz < int64(target)) {
			nnz += rowNNZ[end]
			end++
		}
		lo = append(lo, r)
		hi = append(hi, end)
		r = end
	}
	return lo, hi
}

// streamMM streams the entries of a MatrixMarket file in file order
// through visit, after announcing the parsed size line via header (may
// be nil). It shares every validation rule with ReadMatrixMarket.
func streamMM(path string, header func(m, n, nnz int) error, visit func(Entry) error) (m, n, count int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(bufio.NewReaderSize(f, 1<<20))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, 0, 0, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
		}
		return 0, 0, 0, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	if err := validateMMHeader(sc.Text()); err != nil {
		return 0, 0, 0, err
	}
	var nnz int
	sized := false
	for sc.Scan() {
		line := sc.Bytes()
		if isMMSkipLine(line) {
			continue
		}
		if m, n, nnz, err = parseMMSize(string(line)); err != nil {
			return 0, 0, 0, err
		}
		sized = true
		break
	}
	if !sized {
		if err := sc.Err(); err != nil {
			return 0, 0, 0, fmt.Errorf("sparse: reading MatrixMarket size line: %w", err)
		}
		return 0, 0, 0, fmt.Errorf("sparse: MatrixMarket stream has no size line")
	}
	if header != nil {
		if err := header(m, n, nnz); err != nil {
			return 0, 0, 0, err
		}
	}
	for sc.Scan() {
		line := sc.Bytes()
		if isMMSkipLine(line) {
			continue
		}
		e, err := parseEntryBytes(line, m, n)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := visit(e); err != nil {
			return 0, 0, 0, err
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, 0, err
	}
	if count != nnz {
		return 0, 0, 0, fmt.Errorf("sparse: header promised %d entries, found %d", nnz, count)
	}
	return m, n, count, nil
}
