//go:build !unix

package sparse

import "os"

// openMapSource on platforms without syscall.Mmap keeps the file open
// and serves shards through pread; the Mapped reader behaves
// identically (lazy per-shard verification, same errors), it just
// caches touched shard payloads instead of handing out mapping views.
func openMapSource(f *os.File, size int64) (mapSource, error) {
	return fileSource{f: f}, nil
}
