package sparse

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzz_test.go is the loader-hardening corpus: no byte stream, however
// corrupt, may panic either MatrixMarket parser or the bcsr reader, and
// the two MatrixMarket parsers must stay decision-identical (the
// parallel parser's contract is "bit-identical to the sequential
// parse", which includes rejecting exactly the same inputs). The
// f.Add seeds double as a regression corpus that plain `go test` (and
// the CI loader job) runs without the fuzz engine.

func mmSeeds() [][]byte {
	seeds := [][]byte{
		[]byte(""),
		[]byte("not a matrix"),
		[]byte("%%MatrixMarket matrix coordinate real general\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n% c\n\n2 2 1\n1 1 1.5"),
		[]byte("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 2\n"),
		[]byte("%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 9\n"),
		[]byte("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 1\n"),
		[]byte("%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1 0\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 NaN\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 Inf\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n99999999999999 2 1\n1 1 1\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 99\n1 1 1\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1\t2\t3\r\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n1 1 2\n"), // duplicate: summed
		[]byte("%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2 3\n"),        // unicode space: fallback path
	}
	return seeds
}

// FuzzReadMatrixMarket is the differential fuzz target: sequential and
// parallel parsers must agree on accept/reject, and on acceptance the
// matrices must be bit-identical.
func FuzzReadMatrixMarket(f *testing.F) {
	for _, s := range mmSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			// The sequential scanner caps line length at 1 MiB; keep fuzz
			// inputs well under it so the two parsers see the same lines.
			return
		}
		seq, seqErr := ReadMatrixMarket(bytes.NewReader(data))
		par, parErr := ParseMatrixMarket(data, nil)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("parsers disagree: sequential err=%v, parallel err=%v", seqErr, parErr)
		}
		if seqErr == nil && !Equal(seq, par) {
			t.Fatalf("parsers accept but matrices differ (%dx%d nnz=%d vs %dx%d nnz=%d)",
				seq.M, seq.N, seq.NNZ(), par.M, par.N, par.NNZ())
		}
	})
}

// FuzzReadBinary hammers the bcsr readers differentially: arbitrary
// bytes must error or yield a matrix that survives a write/read round
// trip, and the streaming, mapped and stream-iterator readers must
// agree on accept/reject (with identical matrices on accept).
func FuzzReadBinary(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	a := randomCSR(r, 12, 40)
	var buf bytes.Buffer
	if err := WriteBinarySharded(&buf, a, 10); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(bcsrMagic)])
	f.Add(valid[:len(valid)/2])
	for off := 0; off < len(valid); off += 7 {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x81
		f.Add(mut)
	}
	f.Add([]byte("BPMFBCSR1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256<<10 {
			return
		}
		got, err := ReadBinary(bytes.NewReader(data))

		// Mapped reader: open (eager framing checks) + full lazy decode
		// must reach the same verdict as the streaming read.
		var mapGot *CSR
		mapErr := error(nil)
		if mp, oerr := openBinaryBytes(data); oerr != nil {
			mapErr = oerr
		} else {
			mapGot, mapErr = mp.Matrix()
		}
		if (err == nil) != (mapErr == nil) {
			t.Fatalf("readers disagree: ReadBinary err=%v, mapped err=%v", err, mapErr)
		}

		// Stream iterator: panel-at-a-time decode, same verdict again.
		var itGot *CSR
		itErr := error(nil)
		if it, oerr := NewShardIter(bytes.NewReader(data)); oerr != nil {
			itErr = oerr
		} else {
			m, n, _, _ := it.Dims()
			itGot = &CSR{M: m, N: n, RowPtr: make([]int64, m+1)}
			for it.Next() {
				p := it.Panel()
				base := int64(len(itGot.Col))
				itGot.Col = append(itGot.Col, p.A.Col...)
				itGot.Val = append(itGot.Val, p.A.Val...)
				for r := 0; r <= p.A.M; r++ {
					itGot.RowPtr[p.RowLo+r] = base + p.A.RowPtr[r]
				}
			}
			itErr = it.Err()
		}
		if (err == nil) != (itErr == nil) {
			t.Fatalf("readers disagree: ReadBinary err=%v, stream err=%v", err, itErr)
		}
		if err != nil {
			return
		}
		if !Equal(got, mapGot) || !Equal(got, itGot) {
			t.Fatal("readers accept but matrices differ")
		}
		var rt bytes.Buffer
		if err := WriteBinary(&rt, got); err != nil {
			t.Fatalf("accepted matrix fails to re-serialize: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(rt.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized matrix fails to parse: %v", err)
		}
		if !Equal(got, back) {
			t.Fatal("accepted matrix does not round-trip")
		}
	})
}
