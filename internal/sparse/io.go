package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes a in MatrixMarket coordinate real general
// format (1-based indices), the interchange format the ChEMBL and
// MovieLens preprocessing pipelines of the paper's toolchain use.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.M, a.N, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.M; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, c+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate real general matrix.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Header.
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "%%MatrixMarket") {
		return nil, fmt.Errorf("sparse: missing MatrixMarket header, got %q", header)
	}
	if !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header)
	}
	// Skip comments, read size line.
	var m, n, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &m, &n, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	coo := NewCOO(m, n, nnz)
	count := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %w", f[1], err)
		}
		v := 1.0
		if len(f) >= 3 {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %w", f[2], err)
			}
		}
		coo.Add(i-1, j-1, v)
		count++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if count != nnz {
		return nil, fmt.Errorf("sparse: header promised %d entries, found %d", nnz, count)
	}
	return coo.ToCSR(), nil
}
